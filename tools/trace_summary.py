#!/usr/bin/env python3
"""Summarize sps request-trace / flight-recorder artifacts.

Reads either artifact the request tracer (DESIGN.md §16) produces and
prints the top-N slowest requests with a per-stage time breakdown:

  * a --reqtrace-out JSON (sniffed by its top-level "sps_reqtrace" key):
    the tail-sampled span trees — slowest-K plus the "interesting"
    (ladder / fallback / diverged) requests;
  * a flight-<pid>.json crash dump (sniffed by its "threads" key): the
    per-thread rings of the last span records before the dump, grouped
    back into requests by trace id.

Usage:
  tools/trace_summary.py reqtrace.json [-n 10] [--stages]
  tools/trace_summary.py checkpoints/flight-12345.json

Exit codes: 0 on success, 2 on a malformed artifact. Wall-clock data:
for humans debugging a slow or crashed replay, never for byte-compares.
"""

import argparse
import collections
import json
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def fmt_us(ns):
    return f"{ns / 1e3:.1f}us"


def stage_breakdown(spans):
    """Per-stage totals (ns) over a request's span records, excluding the
    root stage so the rows sum to roughly the root duration."""
    by_stage = collections.Counter()
    for s in spans:
        if s.get("parent", -1) == -1:
            continue
        by_stage[s["stage"]] += s["dur_ns"]
    return by_stage


def print_request(rank, head, spans, show_stages):
    flags = "".join(
        tag
        for cond, tag in (
            (head.get("via_ladder"), " ladder"),
            (head.get("via_fallback"), " fallback"),
            (head.get("diverged"), " DIVERGED"),
        )
        if cond
    )
    print(
        f"{rank:3d}. seq {head['seq']:>8} {head['kind']:<5} "
        f"root {fmt_us(head['root_dur_ns']):>12} "
        f"spans {len(spans):>5} [{head.get('sampled', 'flight')}]{flags}"
    )
    if not show_stages:
        return
    total = max(head["root_dur_ns"], 1)
    for stage, ns in stage_breakdown(spans).most_common():
        print(f"       {stage:<18} {fmt_us(ns):>12}  {100.0 * ns / total:5.1f}%")


def summarize_reqtrace(doc, top_n, show_stages):
    meta = doc["sps_reqtrace"]
    traces = meta.get("traces", [])
    print(
        f"request traces: {meta.get('traces_seen', 0)} requests seen, "
        f"{len(traces)} retained (K={meta.get('k')}), "
        f"peak {meta.get('peak_retained_spans', 0)} spans held"
    )
    traces = sorted(traces, key=lambda t: t["root_dur_ns"], reverse=True)
    for rank, t in enumerate(traces[:top_n], 1):
        print_request(rank, t, t.get("spans", []), show_stages)
    return 0


def summarize_flight(doc, top_n, show_stages):
    threads = doc.get("threads", [])
    n_records = sum(len(t.get("records", [])) for t in threads)
    print(
        f"flight dump: reason={doc.get('reason', '?')} pid={doc.get('pid')} "
        f"{len(threads)} thread ring(s), {n_records} records, "
        f"{doc.get('traces_seen', 0)} requests seen"
    )
    # Group span records back into requests by trace id; the ring holds
    # only the tail of history, so requests may be partial (no root).
    by_trace = collections.defaultdict(list)
    epochs = []
    for t in threads:
        for r in t.get("records", []):
            if r.get("kind") == "epoch":
                epochs.append(r)
            elif r.get("trace_id", 0) != 0:
                by_trace[r["trace_id"]].append(r)
    if epochs:
        e = max(epochs, key=lambda r: r["epoch"])
        print(
            f"last epoch {e['epoch']}: admits={e['admits']} "
            f"rejects={e['rejects']} leaves={e['leaves']} "
            f"resident={e['resident']}"
        )
    requests = []
    for tid, spans in by_trace.items():
        roots = [s for s in spans if s["stage"] in ("admit_total", "leave")]
        root_dur = max((s["dur_ns"] for s in roots), default=max(s["dur_ns"] for s in spans))
        requests.append(
            (
                {
                    "seq": spans[0].get("seq", 0),
                    "kind": "admit" if any(s["stage"] == "admit_total" for s in roots) else "leave" if roots else "?",
                    "root_dur_ns": root_dur,
                    "trace_id": tid,
                },
                spans,
            )
        )
    requests.sort(key=lambda pair: pair[0]["root_dur_ns"], reverse=True)
    print(f"{len(requests)} request(s) reconstructed from the ring tail:")
    for rank, (head, spans) in enumerate(requests[:top_n], 1):
        # Flight records carry no parent links; approximate the
        # breakdown by excluding the root records themselves.
        tagged = [
            dict(s, parent=(-1 if s["stage"] in ("admit_total", "leave") else 0))
            for s in spans
        ]
        print_request(rank, head, tagged, show_stages)
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("artifact", help="reqtrace JSON or flight-<pid>.json")
    ap.add_argument("-n", "--top", type=int, default=10, help="rows to print")
    ap.add_argument(
        "--stages",
        action="store_true",
        help="per-stage breakdown under each request",
    )
    args = ap.parse_args()

    doc = load(args.artifact)
    if isinstance(doc, dict) and "sps_reqtrace" in doc:
        return summarize_reqtrace(doc, args.top, args.stages)
    if isinstance(doc, dict) and "threads" in doc:
        return summarize_flight(doc, args.top, args.stages)
    print(
        f"error: {args.artifact} is neither a --reqtrace-out document "
        "(no 'sps_reqtrace' key) nor a flight dump (no 'threads' key)",
        file=sys.stderr,
    )
    return 2


if __name__ == "__main__":
    sys.exit(main())
