#!/usr/bin/env python3
"""Perf-regression smoke over the BENCH_*.json records.

Compares a freshly produced bench JSON against the committed baseline in
bench/baselines/ and fails (exit 1) when a variant regressed by more
than the tolerance.

The comparison is RATIO-based, not absolute: CI runners and developer
machines differ in raw speed by integer factors, so absolute wall-clock
thresholds would be pure noise. Instead, within each workload every
variant's wall time is normalized by the workload's reference variant
(the variant literally named "serial" if present, else the first one
recorded), and the normalized ratios are compared baseline-vs-current.
That catches the regressions this repo actually cares about — "the
devirtualized path lost its edge over the type-erased one", "sharding
got slower relative to serial" — on any machine.

The check is one-sided by default: getting FASTER relative to the
reference never fails (a beefier CI runner makes the sharded variants
look better, which is fine). --two-sided [PATTERN] also fails when a
matching variant's ratio DROPS beyond tolerance — which is how a
slowdown of the reference variant itself (the NullSink hot path, whose
ratio to itself is always 1.0) becomes visible: the other serial
variants' ratios shrink in unison. PATTERN (fnmatch, default '*')
should exclude variants whose ratio legitimately depends on the
machine — e.g. '--two-sided "serial*"' guards the serial kernel-path
family while letting the sharded variants enjoy multi-core runners.
Variants present in only one of the files are reported but do not fail
the check (benches gain and lose variants across PRs).

Variants present in only one file are reported but do not fail the
check by default — benches gain and lose variants across PRs. When a
variant IS the gate (e.g. the obs bench's "profiled" ratio pins the
profiling-off hook cost), pass --require PATTERN: a matching variant
missing from either file then fails with a pointer at the stale file,
instead of the gate silently evaporating.

Usage:
  check_bench_regression.py CURRENT.json BASELINE.json [--tolerance 0.25]
                            [--two-sided [PATTERN]] [--require PATTERN]

Expected JSON shape (what util/json_writer.hpp emits from the benches):
  { ..., "runs": [ {"workload": "...", "variant": "...",
                    "wall_s": 1.23, ...}, ... ] }
"""

import argparse
import fnmatch
import json
import sys


def fail(msg):
    print(f"error: {msg}", file=sys.stderr)
    print("hint: regenerate the baseline by running the bench binary in "
          "build/ and copying its BENCH_*.json into bench/baselines/",
          file=sys.stderr)
    sys.exit(2)


def load_runs(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except FileNotFoundError:
        fail(f"{path}: no such file — was the bench run / the baseline "
             f"committed?")
    except json.JSONDecodeError as e:
        fail(f"{path}: not valid JSON ({e}) — truncated bench run?")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        fail(f"{path}: no \"runs\" array — not a BENCH_*.json document?")
    by_workload = {}
    for i, r in enumerate(runs):
        if "wall_s" not in r:
            continue  # informational rows (ratios, counters) are fine
        for key in ("workload", "variant"):
            if key not in r:
                fail(f"{path}: runs[{i}] has wall_s but no \"{key}\" — "
                     f"every timed row needs workload+variant for the "
                     f"ratio match")
        by_workload.setdefault(r["workload"], []).append(r)
    if not by_workload:
        fail(f"{path}: no timed rows (wall_s) in \"runs\"")
    return by_workload


def reference_wall(entries):
    for r in entries:
        if r["variant"] == "serial":
            return r["wall_s"]
    return entries[0]["wall_s"]


def ratios(by_workload):
    out = {}
    for workload, entries in by_workload.items():
        ref = reference_wall(entries)
        if ref <= 0:
            continue
        for r in entries:
            out[(workload, r["variant"])] = r["wall_s"] / ref
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("current")
    ap.add_argument("baseline")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed relative slowdown vs baseline (0.25 = 25%%)")
    ap.add_argument("--two-sided", nargs="?", const="*", default=None,
                    metavar="PATTERN",
                    help="also fail when a matching variant's ratio "
                         "IMPROVES beyond tolerance (catches the reference "
                         "variant itself slowing down); fnmatch pattern, "
                         "default '*'")
    ap.add_argument("--require", default=None, metavar="PATTERN",
                    help="fail if a variant matching PATTERN is missing "
                         "from either file (a gated variant must not "
                         "silently disappear)")
    args = ap.parse_args()

    current = ratios(load_runs(args.current))
    baseline = ratios(load_runs(args.baseline))

    if args.require is not None:
        for name, keys in (("current", current), ("baseline", baseline)):
            if not any(fnmatch.fnmatch(v, args.require)
                       for _, v in keys):
                path = args.current if name == "current" else args.baseline
                fail(f"{path}: no variant matches required pattern "
                     f"'{args.require}' — the gated variant is missing "
                     f"from the {name} file")

    failures = []
    for key, base_ratio in sorted(baseline.items()):
        if key not in current:
            print(f"note: {key[0]}/{key[1]} in baseline only (skipped)")
            continue
        cur_ratio = current[key]
        limit = base_ratio * (1.0 + args.tolerance)
        floor = base_ratio / (1.0 + args.tolerance)
        two_sided = (args.two_sided is not None
                     and fnmatch.fnmatch(key[1], args.two_sided))
        status = "OK "
        if cur_ratio > limit or (two_sided and cur_ratio < floor):
            status = "FAIL"
            failures.append(key)
        print(f"{status} {key[0]:12s} {key[1]:20s} "
              f"baseline x{base_ratio:6.3f}  current x{cur_ratio:6.3f}  "
              f"limit x{limit:6.3f}")
    for key in sorted(set(current) - set(baseline)):
        print(f"note: {key[0]}/{key[1]} is new (no baseline)")

    if failures:
        print(f"\n{len(failures)} perf regression(s) beyond "
              f"{args.tolerance:.0%} tolerance", file=sys.stderr)
        return 1
    print("\nperf smoke clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
