// Example: an automotive-flavoured workload — the embedded systems the
// paper's introduction motivates ("future real-time systems will be
// deployed on multi-core processors"). Periods come from the classic
// AUTOSAR benchmark menu (1/2/5/10/20/50/100/200/1000 ms), utilization is
// pushed to 92% of a quad-core, and we ask the question the paper asks:
// does the system fit partitioned, or does it need task splitting — and
// what does the splitting actually cost at run time?
//
// Build & run:  ./build/examples/automotive

#include <cstdio>

#include "exp/acceptance.hpp"
#include "overhead/model.hpp"
#include "partition/binpack.hpp"
#include "partition/spa.hpp"
#include "partition/verify.hpp"
#include "rt/generator.hpp"
#include "sim/engine.hpp"

using namespace sps;

int main() {
  rt::GeneratorConfig gen;
  gen.num_tasks = 20;
  gen.total_utilization = 0.92 * 4;
  gen.period_choices = {Millis(1),  Millis(2),  Millis(5),   Millis(10),
                        Millis(20), Millis(50), Millis(100), Millis(200),
                        Millis(1000)};
  gen.max_task_utilization = 0.8;
  rt::Rng rng(171);
  const rt::TaskSet ts = rt::GenerateTaskSet(gen, rng);

  std::printf("Automotive-style system: %zu runnables, U=%.2f on 4 cores, "
              "periods from the AUTOSAR menu\n",
              ts.size(), ts.total_utilization());
  const auto hp = ts.hyperperiod();
  if (hp.has_value()) {
    std::printf("hyperperiod: %.0f ms (harmonic menu keeps it small)\n\n",
                ToMillis(*hp));
  }

  const overhead::OverheadModel model = overhead::OverheadModel::PaperCoreI7();

  // 1) Try plain partitioning first — the industry default.
  partition::BinPackConfig bp;
  bp.num_cores = 4;
  bp.admission = partition::AdmissionTest::kRta;
  bp.model = model;
  const auto ffd = partition::Ffd(ts, bp);
  if (ffd.success) {
    std::printf("FFD fits the system without splitting — done.\n%s",
                ffd.partition.summary().c_str());
  } else {
    std::printf("FFD fails: %s\n", ffd.failure_reason.c_str());
  }

  // 2) FP-TS with splitting.
  partition::SpaConfig spa;
  spa.num_cores = 4;
  spa.model = model;
  spa.preassign_heavy = true;
  const auto fpts = partition::SpaPartition(ts, spa);
  if (!fpts.success) {
    std::printf("FP-TS also fails (%s) — the system is genuinely "
                "oversubscribed.\n",
                fpts.failure_reason.c_str());
    return 1;
  }
  std::printf("\n%s schedules it:\n%s\n", fpts.algorithm.c_str(),
              fpts.partition.summary().c_str());

  // 3) What does splitting cost at run time? One simulated minute.
  sim::SimConfig cfg;
  cfg.horizon = Millis(60000);
  cfg.overheads = model;
  cfg.arrivals.kind = sim::ArrivalModel::Kind::kSporadicUniformDelay;
  cfg.arrivals.max_delay_fraction = 0.05;
  const sim::SimResult r = Simulate(fpts.partition, cfg);

  Time total_overhead = r.total_overhead();
  Time cpmd = 0;
  for (const auto& c : r.cores) cpmd += c.cpmd_charged;
  std::printf("one simulated minute (sporadic arrivals): %llu misses, "
              "%llu migrations, %llu preemptions\n",
              static_cast<unsigned long long>(r.total_misses),
              static_cast<unsigned long long>(r.total_migrations),
              static_cast<unsigned long long>(r.total_preemptions));
  std::printf("scheduler overhead: %.1f ms + %.1f ms cache reloads = "
              "%.3f%% of the machine-minute\n",
              ToMillis(total_overhead), ToMillis(cpmd),
              100.0 * static_cast<double>(total_overhead + cpmd) /
                  (4.0 * static_cast<double>(cfg.horizon)));
  std::printf("\nThe paper's bottom line, on an automotive-shaped system: "
              "partitioning strands a runnable that splitting places; at "
              "automotive rates (1-2ms periods) the full scheduler "
              "machinery costs a few percent of the machine, of which the "
              "splitting-specific part (migrations) is a vanishing "
              "sliver.\n");
  return r.total_misses == 0 ? 0 : 1;
}
