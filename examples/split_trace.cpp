// Example: watch a split task live. Builds a small system where one task
// is split across three cores (two migrations per period), runs it in the
// simulator with the paper's overheads, and prints the event log plus a
// Gantt chart — the runtime behaviour of §2 of the paper made visible.
//
// Build & run:  ./build/examples/split_trace

#include <cstdio>

#include "obs/report.hpp"
#include "overhead/model.hpp"
#include "partition/placement.hpp"
#include "partition/verify.hpp"
#include "rt/task.hpp"
#include "sim/engine.hpp"
#include "trace/gantt.hpp"
#include "trace/trace.hpp"

using namespace sps;

int main() {
  // Hand-built placement: tau0 is split 4ms + 3ms + 2ms across cores
  // 0-1-2 (T = 20ms); each core also runs a local normal task.
  partition::Partition p;
  p.num_cores = 3;
  {
    partition::PlacedTask split;
    split.task = rt::MakeTask(0, Millis(9), Millis(20));
    split.parts = {{0, Millis(4), 0},   // body subtask 1 (elevated)
                   {1, Millis(3), 0},   // body subtask 2
                   {2, Millis(2), 0}};  // tail subtask
    p.tasks.push_back(split);
  }
  for (partition::CoreId c = 0; c < 3; ++c) {
    partition::PlacedTask normal;
    normal.task = rt::MakeTask(static_cast<rt::TaskId>(1 + c),
                               Millis(6), Millis(25 + 5 * c));
    normal.parts = {{c, Millis(6),
                     partition::kNormalPriorityBase + 1 + c}};
    p.tasks.push_back(normal);
  }

  const overhead::OverheadModel model = overhead::OverheadModel::PaperCoreI7();
  const partition::PartitionAnalysis pa = AnalyzePartition(p, model);
  std::printf("verifier: %s\n\n", pa.schedulable
                                      ? "schedulable"
                                      : pa.failure_reason.c_str());

  sim::SimConfig cfg;
  cfg.horizon = Millis(40);  // two periods of the split task
  cfg.overheads = model;
  // The observability sink (DESIGN.md §10) delivers the canonical trace
  // and the streaming metrics in the SimResult itself; no recorder
  // object, and the same two flags work under --shards in sps_cli.
  cfg.record_trace = true;
  cfg.record_metrics = true;
  const sim::SimResult r = Simulate(p, cfg);

  std::printf("--- first period: the split task's journey ---\n");
  for (const trace::Event& e : r.trace_events) {
    if (e.time > Millis(20)) break;
    if (e.task != 0 && e.kind != trace::EventKind::kMigrateIn) continue;
    if (e.kind == trace::EventKind::kOverheadBegin ||
        e.kind == trace::EventKind::kOverheadEnd) {
      continue;
    }
    std::printf("%s\n", trace::FormatEvent(e).c_str());
  }

  std::printf("\n--- Gantt (40ms; tau0 = '0' hopping between cores) ---\n%s",
              trace::RenderGantt(r.trace_events,
                                 {.start = 0, .end = Millis(40),
                                  .columns = 110, .num_cores = 3})
                  .c_str());

  std::printf("\n--- stats ---\n%s", r.summary().c_str());
  const obs::MetricsReport rep = obs::BuildMetricsReport(r);
  std::printf("\n--- per-core occupancy (busy+overhead+idle == span) ---\n%s",
              rep.CoreCsv().c_str());
  std::printf("\nNote the paper's semantics: budget exhaustion on core 0/1 "
              "inserts tau0 into the NEXT core's ready queue "
              "(MIGRATE_OUT/MIGRATE_IN pairs); the tail finish on core 2 "
              "returns it to core 0's sleep queue, so the next RELEASE is "
              "again on core 0.\n");
  return 0;
}
