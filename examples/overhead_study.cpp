// Example: the paper's §3 measurement campaign as an API walkthrough —
// measure this machine's queue-operation costs and handler costs, build
// an OverheadModel from them, compare against the paper's published
// model, and show how the model parameters feed the analysis.
//
// Build & run:  ./build/examples/overhead_study

#include <cstdio>

#include "analysis/overhead_aware.hpp"
#include "cache/cpmd.hpp"
#include "overhead/calibrate.hpp"
#include "overhead/model.hpp"
#include "overhead/table1.hpp"
#include "partition/placement.hpp"

using namespace sps;

int main() {
  std::printf("== 1. Published measurements (paper, Core-i7, kernel) ==\n\n");
  std::printf("%s\n",
              overhead::FormatTable1(overhead::PaperTable1(),
                                     "Table 1 (paper)")
                  .c_str());

  std::printf("== 2. Live calibration of this library's queues ==\n\n");
  overhead::CalibrationConfig cfg;
  cfg.samples = 2000;
  const overhead::Table1 mine = overhead::MeasureTable1(cfg);
  std::printf("%s\n",
              overhead::FormatTable1(mine, "Table 1 (this machine)")
                  .c_str());
  const overhead::HandlerCosts h = overhead::MeasureHandlerCosts(cfg);
  std::printf("handler bodies: release()=%.2fus sch()=%.2fus "
              "cnt_swth()=%.2fus (paper: 3.00 / 5.00 / 1.50)\n\n",
              ToMicros(h.release_exec), ToMicros(h.sched_exec),
              ToMicros(h.ctxsw_exec));

  std::printf("== 3. CPMD from the cache model ==\n\n");
  const cache::CpmdModel cpmd(cache::CacheConfig::CoreI7());
  for (const std::size_t wss : {16u << 10, 64u << 10, 256u << 10}) {
    std::printf("  WSS %4zuK: local resume %6.1fus, migration resume "
                "%6.1fus\n",
                wss >> 10, ToMicros(cpmd.local_resume_delay(wss, wss)),
                ToMicros(cpmd.migration_resume_delay(wss)));
  }

  std::printf("\n== 4. Full model + what the analysis charges ==\n\n");
  const overhead::OverheadModel calibrated = overhead::Calibrate(cfg);
  const overhead::OverheadModel paper = overhead::OverheadModel::PaperCoreI7();
  std::printf("%28s %12s %12s\n", "derived cost", "calibrated", "paper");
  struct Row {
    const char* name;
    Time a, b;
  } rows[] = {
      {"rls (timer release, N=4)", calibrated.release_overhead(4),
       paper.release_overhead(4)},
      {"sch (preempting, N=4)", calibrated.sched_overhead(4, true),
       paper.sched_overhead(4, true)},
      {"cnt1 (switch-in)", calibrated.ctxsw_in_overhead(),
       paper.ctxsw_in_overhead()},
      {"cnt2 (normal finish, N=4)", calibrated.finish_overhead_normal(4),
       paper.finish_overhead_normal(4)},
      {"cnt2 (migration, N_dest=4)", calibrated.migrate_overhead(4),
       paper.migrate_overhead(4)},
      {"cnt2 (tail return, N=4)", calibrated.finish_overhead_tail(4),
       paper.finish_overhead_tail(4)},
      {"delta (N=64)", calibrated.delta(64), paper.delta(64)},
      {"theta (N=64)", calibrated.theta(64), paper.theta(64)},
  };
  for (const Row& r : rows) {
    std::printf("%28s %10.2fus %10.2fus\n", r.name, ToMicros(r.a),
                ToMicros(r.b));
  }

  std::printf("\n== 5. Effect on one inflated task ==\n\n");
  analysis::CoreEntry e;
  e.exec = Millis(1);
  e.period = Millis(10);
  e.deadline = Millis(10);
  e.priority = partition::kNormalPriorityBase;
  std::printf("C = 1000.0us -> C' = %.1fus (paper model), %.1fus "
              "(calibrated)\n",
              ToMicros(analysis::InflatedExec(e, paper, 4)),
              ToMicros(analysis::InflatedExec(e, calibrated, 4)));
  return 0;
}
