// sps_cli — command-line driver for one-off experiments with the library:
// generate (or densely parameterize) a task set, run a chosen partitioning
// algorithm, verify, simulate, and report. The fifth runnable example and
// the quickest way to poke at the system without writing code.
//
// Usage:
//   sps_cli [--algo=spa2|spa1|ffd|wfd|bfd|edf-ffd|edf-wm]
//           [--cores=4] [--tasks=16] [--util=0.85] [--seed=1]
//           [--overheads=paper|zero|calibrated] [--scale=1.0]
//           [--sim-ms=2000] [--trace] [--metrics]
//           [--trace-out=FILE.json] [--metrics-out=FILE.json]
//           [--arrivals=periodic|sporadic|jittered|bursty] [--sporadic]
//           [--ready-queue=binomial|pairing|rbtree|vector|calendar]
//           [--sleep-queue=...] [--event-queue=...] [--shards=N]
//           [--acceptance] [--acceptance-validate] [--sets=50] [--jobs=N]
//           [--online] [--online-requests=128] [--online-leave=0.5]
//           [--online-epoch-ms=1000] [--online-place=ff|wf|spa]
//           [--online-policy=edf|fp] [--online-no-split]
//           [--online-no-fallback] [--online-unsplit] [--online-validate]
//           [--online-soft=0.4] [--online-drain=N]
//           [--spike-window-ms=A,B] [--spike-prob=0.2] [--spike-mag=1.3]
//           [--storm-window-ms=A,B] [--storm-burst=0.9]
//           [--no-ladder] [--no-hysteresis]
//           [--stream-in=FILE] [--stream-out=FILE]
//           [--exec=wcet|spiky]
//           [--analysis-cache=off|<N>]
//           [--checkpoint-dir=DIR] [--checkpoint-every=K] [--recover]
//           [--fsync=off|every-epoch|every-n[:N]] [--crash-after=N]
//           [--profile] [--profile-out=FILE.json] [--stats-out=FILE.json]
//           [--heartbeat=K] [--verbose] [--trace-stream[=WINDOW]]
//           [--trace-requests[=K]] [--reqtrace-out=FILE.json]
//           [--flight-dump]
//
// Durable online service (DESIGN.md §14): --checkpoint-dir turns on the
// write-ahead journal + every-K-epochs checkpoint for the --online
// replay; --recover resumes a crashed run from DIR (newest valid
// checkpoint + journal redo) instead of starting fresh — the recovered
// run's stdout is byte-identical to the uninterrupted one (pass
// --analysis-cache=off to also match the cache counters; recovery info
// prints on stderr). --fsync picks the journal's disk-sync policy;
// --crash-after=N SIGKILLs the process right after the N-th journal
// append (the crash-injection hook the CI smoke test drives). Corrupt
// or mismatched durability artifacts exit 2 with a typed error.
//
// --analysis-cache controls the shared schedulability-verdict
// transposition table (analysis/memo.hpp, DESIGN.md §12): "off"
// disables memoization, a number N sizes the shared table at N slots
// (rounded up to a power of two; default 32768). Decisions are
// identical either way — the knob trades memory for analysis speed.
// The --online and --acceptance modes report hit/miss/evict counters.
//
// --online switches to the ONLINE ADMISSION mode (DESIGN.md §11): a
// timestamped ADMIT/LEAVE request stream (generated from --seed, or
// loaded with --stream-in) is replayed through the incremental admission
// controller on --cores cores, reporting per-epoch admits / rejects /
// churn and the final placement. --online-validate simulates the
// partition standing at every epoch boundary (horizon --sim-ms) and
// reports its deadline misses. --stream-out saves the request trace for
// replay elsewhere; with --trace-out the per-epoch churn / resident /
// utilization / shed / degraded series are written as Perfetto counter
// tracks.
//
// Overload axis (DESIGN.md §13): --online-soft generates that fraction
// of admits as SOFT tasks (with value classes and degraded modes) —
// the shed/degrade ladder's victims. --spike-window-ms injects an
// exec-time spike window [A,B) (per-job overrun probability
// --spike-prob, magnitude --spike-mag); --storm-window-ms injects a
// burst-arrival storm (burst probability --storm-burst). Epoch
// validation inside a window simulates the FAULTED models, and the
// report separates misses attributed to HARD tasks. --no-ladder /
// --no-hysteresis switch the degradation ladder / repartition
// hysteresis off; --online-drain keeps closing empty epochs after the
// last request so shed-re-admission retries can drain.
//
// --exec=spiky makes the --acceptance-validate simulations run the
// kSpiky execution model (--spike-prob / --spike-mag), i.e. the
// acceptance sweep's schedulable-but-overrunning robustness axis.
//
// --acceptance switches from the single-run mode to the paper's
// acceptance-ratio sweep (exp/acceptance.*) over the default utilization
// grid, parallelized over --jobs threads (0 = one per hardware thread;
// results are bit-identical for every value). --acceptance-validate
// additionally SIMULATES every accepted partition (horizon --sim-ms)
// and reports the fraction that run without a deadline miss.
//
// --shards=N runs the per-core sharded simulator with N total threads
// (this process counts as one; 0 = one per hardware thread) for
// single-run mode and the validation simulations; results are
// bit-identical to --shards=1 — including traces and metrics
// (DESIGN.md §10), so every observability flag composes with --shards.
//
// Observability (DESIGN.md §10):
//   --trace             record the scheduler event stream, print Gantt
//   --trace-out=F.json  write the trace as Perfetto-loadable JSON
//                       (open at ui.perfetto.dev); implies recording
//   --metrics           record streaming metrics, print the per-task /
//                       per-core report tables
//   --metrics-out=F.json  write the MetricsReport JSON; implies --metrics
//
// Service observability (DESIGN.md §15):
//   --profile           wall-clock span profiler over the --online
//                       pipeline stages (admission screen, memo probe,
//                       analysis, placement, ladder steps, epoch
//                       phases). Report (p50/p99/p999 per stage), the
//                       per-epoch p99/memo-hit columns, and the
//                       heartbeat all go to STDERR — never stdout, so
//                       profiled stdout stays byte-identical.
//   --profile-out=F     write the profiler report as JSON to F instead
//                       of the stderr table; implies --profile
//   --stats-out=F       write the unified stats registry snapshot
//                       (deterministic counters only) as JSON; the CI
//                       cmp's it across --profile on/off
//   --heartbeat=K       heartbeat every K closed epochs (default 10,
//                       0 = off; needs --profile)
//   --trace-requests[=K] request-scoped span trees over the --online
//                       replay (DESIGN.md §16): tail-based sampling
//                       retains the K slowest admits/leaves (default 32)
//                       plus up to K recent shed/degrade/fallback/
//                       diverged requests, written as Perfetto async
//                       slices + an "sps_reqtrace" sidecar to
//                       --reqtrace-out (default reqtrace.json; inspect
//                       with tools/trace_summary.py). Also arms the
//                       crash-dump flight recorder: fatal signals,
//                       journal divergence, and injected crashes dump
//                       flight-<pid>.json (in --checkpoint-dir when
//                       durable, else the cwd). Narration goes to
//                       stderr; stdout / --stats-out / --trace-out /
//                       checkpoints stay byte-identical with it on.
//   --reqtrace-out=F    where --trace-requests writes the trace JSON
//   --flight-dump       dump the flight ring at end of run ("on_demand")
//                       even without a crash; implies the recorder
//   --verbose           SPS_LOG_LEVEL=debug for this run
//   --trace-stream[=W]  stream the single-run trace through the
//                       bounded-memory window (W stamped records,
//                       default 65536) into the SAME Perfetto document
//                       --trace-out would write — byte-identical, any
//                       --shards value
//
// Examples:
//   ./build/examples/sps_cli --algo=spa2 --util=0.95
//   ./build/examples/sps_cli --algo=edf-wm --tasks=24 --sim-ms=5000
//   ./build/examples/sps_cli --algo=ffd --overheads=zero --trace
//   ./build/examples/sps_cli --ready-queue=pairing --event-queue=calendar
//   ./build/examples/sps_cli --arrivals=bursty --util=0.7
//   ./build/examples/sps_cli --cores=16 --tasks=96 --shards=0
//   ./build/examples/sps_cli --acceptance --jobs=0 --sets=100
//   ./build/examples/sps_cli --acceptance --acceptance-validate \
//       --sim-ms=200 --sets=20
//   ./build/examples/sps_cli --cores=8 --tasks=48 --shards=0 \
//       --trace-out=run.json --metrics-out=metrics.json

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

#include <memory>

#include "analysis/memo.hpp"
#include "containers/queue_traits.hpp"
#include "exp/acceptance.hpp"
#include "obs/perfetto.hpp"
#include "obs/registry.hpp"
#include "obs/reqtrace.hpp"
#include "obs/spans.hpp"
#include "util/thread_pool.hpp"
#include "online/controller.hpp"
#include "online/workload_stream.hpp"
#include "obs/report.hpp"
#include "util/log.hpp"
#include "overhead/calibrate.hpp"
#include "overhead/model.hpp"
#include "partition/binpack.hpp"
#include "partition/edf_wm.hpp"
#include "partition/spa.hpp"
#include "partition/verify.hpp"
#include "rt/generator.hpp"
#include "sim/engine.hpp"
#include "trace/gantt.hpp"
#include "util/json_writer.hpp"

using namespace sps;

namespace {

struct Options {
  std::string algo = "spa2";
  unsigned cores = 4;
  std::size_t tasks = 16;
  double util = 0.85;
  std::uint64_t seed = 1;
  std::string overheads = "paper";
  double scale = 1.0;
  Time sim_ms = Millis(2000);
  std::string arrivals = "periodic";
  bool trace = false;
  bool metrics = false;
  std::string trace_out;
  std::string metrics_out;
  bool acceptance = false;
  bool acceptance_validate = false;
  int sets = 50;
  unsigned jobs = 1;
  unsigned shards = 1;
  bool online = false;
  std::size_t online_requests = 128;
  double online_leave = 0.5;
  Time online_epoch = Millis(1000);
  std::string online_place = "ff";
  std::string online_policy = "edf";
  bool online_split = true;
  bool online_fallback = true;
  bool online_unsplit = false;
  bool online_validate = false;
  double online_soft = 0.0;
  std::uint32_t online_drain = 0;
  bool overload_ladder = true;
  bool overload_hysteresis = true;
  bool have_spike = false;
  Time spike_start = 0;
  Time spike_end = 0;
  double spike_prob = 0.2;
  double spike_mag = 1.3;
  bool have_storm = false;
  Time storm_start = 0;
  Time storm_end = 0;
  double storm_burst = 0.9;
  std::string exec_model = "wcet";
  std::string stream_in;
  std::string stream_out;
  online::DurabilityConfig durability;  // --checkpoint-dir etc.
  analysis::MemoConfig memo;  // --analysis-cache=off|<N>
  bool profile = false;
  std::string profile_out;
  std::string stats_out;
  bool trace_requests = false;
  std::uint32_t trace_requests_k = 32;
  std::string reqtrace_out = "reqtrace.json";
  bool flight_dump = false;
  std::uint32_t heartbeat = 10;
  bool verbose = false;
  bool trace_stream = false;
  std::size_t trace_stream_window = 1u << 16;
  containers::QueueBackend ready_queue =
      containers::QueueBackend::kBinomialHeap;
  containers::QueueBackend sleep_queue = containers::QueueBackend::kRbTree;
  containers::QueueBackend event_queue =
      containers::QueueBackend::kBinomialHeap;
};

bool ParseArg(const char* arg, Options& o) {
  auto value = [&](const char* key) -> const char* {
    const std::size_t n = std::strlen(key);
    if (std::strncmp(arg, key, n) == 0 && arg[n] == '=') return arg + n + 1;
    return nullptr;
  };
  if (const char* v = value("--algo")) { o.algo = v; return true; }
  if (const char* v = value("--cores")) { o.cores = std::strtoul(v, nullptr, 10); return true; }
  if (const char* v = value("--tasks")) { o.tasks = std::strtoul(v, nullptr, 10); return true; }
  if (const char* v = value("--util")) { o.util = std::strtod(v, nullptr); return true; }
  if (const char* v = value("--seed")) { o.seed = std::strtoull(v, nullptr, 10); return true; }
  if (const char* v = value("--overheads")) { o.overheads = v; return true; }
  if (const char* v = value("--scale")) { o.scale = std::strtod(v, nullptr); return true; }
  if (const char* v = value("--sim-ms")) { o.sim_ms = Millis(std::strtod(v, nullptr)); return true; }
  auto parse_backend = [](const char* v, containers::QueueBackend& out) {
    if (containers::ParseQueueBackend(v, out)) return true;
    std::fprintf(stderr, "invalid queue backend '%s'; one of:", v);
    for (containers::QueueBackend b : containers::kAllQueueBackends) {
      std::fprintf(stderr, " %s", std::string(containers::to_string(b)).c_str());
    }
    std::fprintf(stderr, "\n");
    return false;
  };
  if (const char* v = value("--ready-queue")) {
    return parse_backend(v, o.ready_queue);
  }
  if (const char* v = value("--sleep-queue")) {
    return parse_backend(v, o.sleep_queue);
  }
  if (const char* v = value("--event-queue")) {
    return parse_backend(v, o.event_queue);
  }
  if (const char* v = value("--arrivals")) { o.arrivals = v; return true; }
  if (const char* v = value("--sets")) { o.sets = std::atoi(v); return true; }
  if (const char* v = value("--jobs")) {
    o.jobs = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    return true;
  }
  if (const char* v = value("--shards")) {
    o.shards = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    return true;
  }
  if (std::strcmp(arg, "--sporadic") == 0) {
    o.arrivals = "sporadic";
    return true;
  }
  if (std::strcmp(arg, "--acceptance") == 0) {
    o.acceptance = true;
    return true;
  }
  if (std::strcmp(arg, "--acceptance-validate") == 0) {
    o.acceptance = true;
    o.acceptance_validate = true;
    return true;
  }
  if (std::strcmp(arg, "--online") == 0) { o.online = true; return true; }
  if (const char* v = value("--online-requests")) {
    o.online = true;
    o.online_requests = std::strtoul(v, nullptr, 10);
    return true;
  }
  if (const char* v = value("--online-leave")) {
    o.online = true;
    o.online_leave = std::strtod(v, nullptr);
    return true;
  }
  if (const char* v = value("--online-epoch-ms")) {
    o.online = true;
    o.online_epoch = Millis(std::strtod(v, nullptr));
    return true;
  }
  if (const char* v = value("--online-place")) {
    o.online = true;
    o.online_place = v;
    return true;
  }
  if (const char* v = value("--online-policy")) {
    o.online = true;
    o.online_policy = v;
    return true;
  }
  if (std::strcmp(arg, "--online-no-split") == 0) {
    o.online = true;
    o.online_split = false;
    return true;
  }
  if (std::strcmp(arg, "--online-no-fallback") == 0) {
    o.online = true;
    o.online_fallback = false;
    return true;
  }
  if (std::strcmp(arg, "--online-unsplit") == 0) {
    o.online = true;
    o.online_unsplit = true;
    return true;
  }
  if (std::strcmp(arg, "--online-validate") == 0) {
    o.online = true;
    o.online_validate = true;
    return true;
  }
  if (const char* v = value("--online-soft")) {
    o.online = true;
    o.online_soft = std::strtod(v, nullptr);
    return true;
  }
  if (const char* v = value("--online-drain")) {
    o.online = true;
    o.online_drain = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    return true;
  }
  auto parse_window = [](const char* v, Time& start, Time& end) {
    char* sep = nullptr;
    const double a = std::strtod(v, &sep);
    if (sep == v || *sep != ',') return false;
    const char* second = sep + 1;
    char* tail = nullptr;
    const double b = std::strtod(second, &tail);
    if (tail == second || *tail != '\0' || b <= a) return false;
    start = Millis(a);
    end = Millis(b);
    return true;
  };
  if (const char* v = value("--spike-window-ms")) {
    o.online = true;
    o.have_spike = true;
    if (!parse_window(v, o.spike_start, o.spike_end)) {
      std::fprintf(stderr, "invalid --spike-window-ms=%s (want A,B ms)\n", v);
      return false;
    }
    return true;
  }
  if (const char* v = value("--spike-prob")) {
    o.spike_prob = std::strtod(v, nullptr);
    return true;
  }
  if (const char* v = value("--spike-mag")) {
    o.spike_mag = std::strtod(v, nullptr);
    return true;
  }
  if (const char* v = value("--storm-window-ms")) {
    o.online = true;
    o.have_storm = true;
    if (!parse_window(v, o.storm_start, o.storm_end)) {
      std::fprintf(stderr, "invalid --storm-window-ms=%s (want A,B ms)\n", v);
      return false;
    }
    return true;
  }
  if (const char* v = value("--storm-burst")) {
    o.storm_burst = std::strtod(v, nullptr);
    return true;
  }
  if (std::strcmp(arg, "--no-ladder") == 0) {
    o.overload_ladder = false;
    return true;
  }
  if (std::strcmp(arg, "--no-hysteresis") == 0) {
    o.overload_hysteresis = false;
    return true;
  }
  if (const char* v = value("--exec")) {
    o.exec_model = v;
    return true;
  }
  if (const char* v = value("--stream-in")) {
    o.online = true;
    o.stream_in = v;
    return true;
  }
  if (const char* v = value("--stream-out")) {
    o.online = true;
    o.stream_out = v;
    return true;
  }
  if (const char* v = value("--checkpoint-dir")) {
    o.online = true;
    o.durability.dir = v;
    return true;
  }
  if (const char* v = value("--checkpoint-every")) {
    o.online = true;
    o.durability.checkpoint_every =
        static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    return true;
  }
  if (std::strcmp(arg, "--recover") == 0) {
    o.online = true;
    o.durability.recover = true;
    return true;
  }
  if (const char* v = value("--fsync")) {
    o.online = true;
    if (!online::ParseFsyncPolicy(v, o.durability.fsync,
                                  o.durability.fsync_every_n)) {
      std::fprintf(stderr, "invalid --fsync=%s (off|every-epoch|"
                           "every-n[:N])\n",
                   v);
      return false;
    }
    return true;
  }
  if (const char* v = value("--crash-after")) {
    o.online = true;
    o.durability.crash_after_appends =
        static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    return true;
  }
  if (const char* v = value("--analysis-cache")) {
    if (std::strcmp(v, "off") == 0) {
      o.memo.enabled = false;
      return true;
    }
    char* end = nullptr;
    const unsigned long long n = std::strtoull(v, &end, 10);
    if (end == v || *end != '\0' || n == 0) {
      std::fprintf(stderr, "invalid --analysis-cache=%s (off or a slot "
                           "count)\n",
                   v);
      return false;
    }
    o.memo.entries = static_cast<std::size_t>(n);
    analysis::ResizeSharedMemo(o.memo.entries);
    return true;
  }
  if (std::strcmp(arg, "--profile") == 0) { o.profile = true; return true; }
  if (const char* v = value("--profile-out")) {
    o.profile = true;
    o.profile_out = v;
    return true;
  }
  if (const char* v = value("--stats-out")) {
    o.stats_out = v;
    return true;
  }
  if (const char* v = value("--heartbeat")) {
    o.heartbeat = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    return true;
  }
  if (std::strcmp(arg, "--trace-requests") == 0) {
    o.online = true;
    o.trace_requests = true;
    return true;
  }
  if (const char* v = value("--trace-requests")) {
    o.online = true;
    o.trace_requests = true;
    const unsigned long long k = std::strtoull(v, nullptr, 10);
    if (k == 0) {
      std::fprintf(stderr, "invalid --trace-requests=%s (K must be a "
                           "positive trace count)\n",
                   v);
      return false;
    }
    o.trace_requests_k = static_cast<std::uint32_t>(k);
    return true;
  }
  if (const char* v = value("--reqtrace-out")) {
    o.online = true;
    o.trace_requests = true;
    o.reqtrace_out = v;
    return true;
  }
  if (std::strcmp(arg, "--flight-dump") == 0) {
    o.online = true;
    o.flight_dump = true;
    return true;
  }
  if (std::strcmp(arg, "--verbose") == 0) { o.verbose = true; return true; }
  if (std::strcmp(arg, "--trace-stream") == 0) {
    o.trace_stream = true;
    return true;
  }
  if (const char* v = value("--trace-stream")) {
    o.trace_stream = true;
    const unsigned long long w = std::strtoull(v, nullptr, 10);
    if (w == 0) {
      std::fprintf(stderr, "invalid --trace-stream=%s (window must be a "
                           "positive record count)\n",
                   v);
      return false;
    }
    o.trace_stream_window = static_cast<std::size_t>(w);
    return true;
  }
  if (std::strcmp(arg, "--trace") == 0) { o.trace = true; return true; }
  if (std::strcmp(arg, "--metrics") == 0) { o.metrics = true; return true; }
  if (const char* v = value("--trace-out")) {
    o.trace_out = v;
    return true;
  }
  if (const char* v = value("--metrics-out")) {
    o.metrics_out = v;
    o.metrics = true;
    return true;
  }
  return false;
}

bool ParseArrivals(const std::string& name, sim::ArrivalModel& out) {
  if (name == "periodic") {
    out.kind = sim::ArrivalModel::Kind::kPeriodic;
  } else if (name == "sporadic") {
    out.kind = sim::ArrivalModel::Kind::kSporadicUniformDelay;
  } else if (name == "jittered") {
    out.kind = sim::ArrivalModel::Kind::kJittered;
  } else if (name == "bursty") {
    out.kind = sim::ArrivalModel::Kind::kBursty;
  } else {
    std::fprintf(stderr, "unknown --arrivals=%s (periodic|sporadic|"
                         "jittered|bursty)\n",
                 name.c_str());
    return false;
  }
  return true;
}

partition::PartitionResult RunAlgo(const Options& o, const rt::TaskSet& ts,
                                   const overhead::OverheadModel& m) {
  if (o.algo == "spa1" || o.algo == "spa2") {
    partition::SpaConfig cfg;
    cfg.num_cores = o.cores;
    cfg.model = m;
    cfg.preassign_heavy = (o.algo == "spa2");
    return partition::SpaPartition(ts, cfg);
  }
  if (o.algo == "ffd" || o.algo == "wfd" || o.algo == "bfd") {
    partition::BinPackConfig cfg;
    cfg.num_cores = o.cores;
    cfg.admission = partition::AdmissionTest::kRta;
    cfg.model = m;
    cfg.memo = o.memo;
    const auto policy = o.algo == "ffd" ? partition::FitPolicy::kFirstFit
                        : o.algo == "wfd" ? partition::FitPolicy::kWorstFit
                                          : partition::FitPolicy::kBestFit;
    return partition::BinPackDecreasing(ts, policy, cfg);
  }
  if (o.algo == "edf-ffd" || o.algo == "edf-wm") {
    partition::EdfPartitionConfig cfg;
    cfg.num_cores = o.cores;
    cfg.model = m;
    cfg.memo = o.memo;
    return o.algo == "edf-wm"
               ? partition::EdfWm(ts, cfg)
               : partition::EdfBinPack(ts, partition::FitPolicy::kFirstFit,
                                       cfg);
  }
  partition::PartitionResult r;
  r.failure_reason = "unknown --algo=" + o.algo;
  return r;
}

int RunOnline(const Options& o, const overhead::OverheadModel& model) {
  std::string err;
  online::WorkloadStream stream;
  if (!o.stream_in.empty()) {
    if (!online::LoadStream(o.stream_in, stream, &err)) {
      std::fprintf(stderr, "%s\n", err.c_str());
      return 2;
    }
    std::printf("loaded request trace %s: %zu requests (%zu admits)\n",
                o.stream_in.c_str(), stream.size(), stream.num_admits());
  } else {
    online::StreamConfig scfg;
    scfg.num_admits = o.online_requests;
    scfg.leave_fraction = o.online_leave;
    scfg.soft_fraction = o.online_soft;
    scfg.seed = o.seed;
    stream = online::GenerateStream(scfg);
    std::printf("generated stream: %zu requests (%zu admits), seed %llu\n",
                stream.size(), stream.num_admits(),
                static_cast<unsigned long long>(o.seed));
  }
  if (!o.stream_out.empty()) {
    if (!online::SaveStream(stream, o.stream_out, &err)) {
      std::fprintf(stderr, "%s\n", err.c_str());
      return 2;
    }
    std::printf("wrote request trace to %s\n", o.stream_out.c_str());
  }

  online::ReplayConfig rcfg;
  rcfg.controller.admission.num_cores = o.cores;
  rcfg.controller.admission.model = model;
  rcfg.controller.admission.memo = o.memo;
  if (o.online_policy == "edf") {
    rcfg.controller.admission.policy = partition::SchedPolicy::kEdf;
  } else if (o.online_policy == "fp") {
    rcfg.controller.admission.policy = partition::SchedPolicy::kFixedPriority;
  } else {
    std::fprintf(stderr, "unknown --online-policy=%s (edf|fp)\n",
                 o.online_policy.c_str());
    return 2;
  }
  if (o.online_place == "ff") {
    rcfg.controller.place = online::PlacePolicy::kFirstFit;
  } else if (o.online_place == "wf") {
    rcfg.controller.place = online::PlacePolicy::kWorstFit;
  } else if (o.online_place == "spa") {
    rcfg.controller.place = online::PlacePolicy::kSpaOrder;
  } else {
    std::fprintf(stderr, "unknown --online-place=%s (ff|wf|spa)\n",
                 o.online_place.c_str());
    return 2;
  }
  rcfg.controller.allow_split = o.online_split;
  rcfg.controller.repartition_fallback = o.online_fallback;
  rcfg.controller.unsplit_on_leave = o.online_unsplit;
  rcfg.controller.overload.ladder = o.overload_ladder;
  rcfg.controller.overload.hysteresis = o.overload_hysteresis;
  rcfg.epoch = o.online_epoch;
  rcfg.seed = o.seed;
  rcfg.drain_epochs = o.online_drain;
  if (o.durability.recover && !o.durability.enabled()) {
    std::fprintf(stderr, "--recover needs --checkpoint-dir=DIR\n");
    return 2;
  }
  rcfg.durability = o.durability;
  if (o.have_spike) {
    rcfg.faults.spikes.push_back(online::SpikeEpoch{
        o.spike_start, o.spike_end, o.spike_prob, o.spike_mag});
    rcfg.controller.overload.spike_magnitude = o.spike_mag;
  }
  if (o.have_storm) {
    rcfg.faults.storms.push_back(
        online::BurstStorm{o.storm_start, o.storm_end, o.storm_burst});
  }
  if (o.online_validate) {
    rcfg.validate_by_simulation = true;
    rcfg.validate_sim.horizon = o.sim_ms;
    rcfg.validate_sim.ready_backend = o.ready_queue;
    rcfg.validate_sim.sleep_backend = o.sleep_queue;
    rcfg.validate_sim.event_backend = o.event_queue;
    rcfg.validate_sim.shards = o.shards;
    if (o.exec_model == "spiky") {
      rcfg.validate_sim.exec.kind = sim::ExecModel::Kind::kSpiky;
      rcfg.validate_sim.exec.spike_prob = o.spike_prob;
      rcfg.validate_sim.exec.spike_magnitude = o.spike_mag;
    }
  }

  // --profile (DESIGN.md §15): wall-clock span profiler, heartbeat, and
  // the augmented per-epoch columns — all on the stderr / --profile-out
  // channel, so profiled stdout is byte-identical to an unprofiled run.
  obs::SpanProfiler profiler;
  std::string prof_table;
  obs::LogHistogram admit_hist_prev;
  analysis::MemoStats memo_prev;
  obs::LogHistogram hb_hist_prev;
  analysis::MemoStats hb_memo_prev;
  std::uint64_t hb_decided_prev = 0;
  std::uint64_t hb_ns_prev = 0;
  if (o.profile) {
    rcfg.obs.profiler = &profiler;
    prof_table = "epoch   p99-admit-us   memo-hit%\n";
    if (o.memo.enabled) {
      memo_prev = analysis::SharedMemo(o.memo.entries).stats();
      hb_memo_prev = memo_prev;
    }
    hb_ns_prev = profiler.NowNs();
    rcfg.obs.on_epoch = [&](std::size_t idx, const online::EpochStats& e,
                            const online::ReplayResult& so_far) {
      obs::LogHistogram admit =
          profiler.StageHistogram(obs::SpanStage::kAdmitTotal);
      obs::LogHistogram d = admit;
      d -= admit_hist_prev;
      admit_hist_prev = admit;
      analysis::MemoStats mnow;
      double hit_pct = 0.0;
      if (o.memo.enabled) {
        mnow = analysis::SharedMemo(o.memo.entries).stats();
        analysis::MemoStats md = mnow;
        md -= memo_prev;
        memo_prev = mnow;
        hit_pct = 100.0 * md.hit_rate();
      }
      const double p99_us = static_cast<double>(d.Quantile(0.99)) / 1e3;
      char buf[96];
      std::snprintf(buf, sizeof(buf), "%5zu %14.1f %11.1f\n", idx, p99_us,
                    hit_pct);
      prof_table += buf;
      if (o.heartbeat > 0 && (idx + 1) % o.heartbeat == 0) {
        // The heartbeat spans the whole K-epoch interval, so its p99 /
        // memo-hit% are deltas against the PREVIOUS HEARTBEAT, not the
        // previous epoch (the per-epoch deltas above would make every
        // heartbeat report only its final epoch).
        obs::LogHistogram hb = admit;
        hb -= hb_hist_prev;
        hb_hist_prev = admit;
        double hb_hit_pct = 0.0;
        if (o.memo.enabled) {
          analysis::MemoStats hbd = mnow;
          hbd -= hb_memo_prev;
          hb_memo_prev = mnow;
          hb_hit_pct = 100.0 * hbd.hit_rate();
        }
        const double hb_p99_us =
            static_cast<double>(hb.Quantile(0.99)) / 1e3;
        const std::uint64_t now = profiler.NowNs();
        const double secs = static_cast<double>(now - hb_ns_prev) / 1e9;
        const std::uint64_t decided =
            so_far.admits + so_far.rejects + so_far.leaves;
        util::Log(util::LogLevel::kInfo,
                  "heartbeat epoch %zu: %.0f req/s, resident %zu, "
                  "memo-hit %.1f%%, p99 admit %.1fus",
                  idx,
                  secs > 0.0 ? static_cast<double>(decided - hb_decided_prev) /
                                   secs
                             : 0.0,
                  e.resident, hb_hit_pct, hb_p99_us);
        hb_decided_prev = decided;
        hb_ns_prev = now;
      }
    };
  }

  // --trace-requests / --flight-dump (DESIGN.md §16): request-scoped
  // tracing and the crash-dump flight recorder. The tracer borrows the
  // profiler's clock, so the profiler is installed even without
  // --profile — but its reports only print when --profile asked for
  // them, and none of this touches stdout or a byte-compared artifact.
  std::unique_ptr<obs::RequestTracer> tracer;
  if (o.trace_requests || o.flight_dump) {
    obs::RequestTracer::Options topt;
    topt.top_k = o.trace_requests_k;
    if (o.durability.enabled()) topt.flight_dir = o.durability.dir;
    tracer = std::make_unique<obs::RequestTracer>(topt);
    rcfg.obs.profiler = &profiler;
    rcfg.obs.tracer = tracer.get();
    obs::SetCrashDumpTracer(tracer.get());
    obs::InstallCrashSignalHandlers();
  }

  std::printf("online replay: m=%u, policy=%s, place=%s%s%s%s%s%s%s\n\n",
              o.cores, o.online_policy.c_str(),
              online::ToString(rcfg.controller.place),
              rcfg.controller.allow_split ? ", split" : "",
              rcfg.controller.repartition_fallback ? ", fallback" : "",
              rcfg.controller.overload.ladder ? ", ladder" : "",
              rcfg.controller.overload.hysteresis ? ", hysteresis" : "",
              rcfg.faults.any() ? ", fault-injected" : "",
              o.online_validate ? ", validating epochs" : "");
  const online::ReplayResult res = online::ReplayStream(stream, rcfg);
  if (!res.durability_error.ok()) {
    util::Log(util::LogLevel::kError, "durability error [%s]: %s",
              online::ToString(res.durability_error.kind),
              res.durability_error.message.c_str());
    return 2;
  }
  if (res.recovery.attempted) {
    // Recovery narration goes through the leveled stderr logger
    // (util/log.hpp) so a recovered run's stdout is byte-comparable
    // against the uninterrupted run's (the CI smoke test cmp's them)
    // and SPS_LOG_LEVEL=error silences it entirely.
    if (res.recovery.recovered) {
      util::Log(util::LogLevel::kInfo,
                "recovered from checkpoint epoch %llu (resume at "
                "request %llu, %llu journal records, %llu torn bytes "
                "truncated, %u corrupt checkpoints skipped)",
                static_cast<unsigned long long>(
                    res.recovery.checkpoint_epoch),
                static_cast<unsigned long long>(res.recovery.resume_seq),
                static_cast<unsigned long long>(
                    res.recovery.journal_records),
                static_cast<unsigned long long>(
                    res.recovery.journal_truncated_bytes),
                res.recovery.checkpoints_skipped);
    } else {
      util::Log(util::LogLevel::kInfo,
                "no usable checkpoint; replayed from scratch "
                "(%llu journal records, %u corrupt checkpoints skipped)",
                static_cast<unsigned long long>(
                    res.recovery.journal_records),
                res.recovery.checkpoints_skipped);
    }
    // Flight-recorder narration (DESIGN.md §16): if the crashed process
    // left a flight dump next to the durability artifacts, point the
    // operator at it — it says what the service was doing when it died.
    std::error_code ec;
    for (const auto& entry :
         std::filesystem::directory_iterator(o.durability.dir, ec)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("flight-", 0) != 0 ||
          name.size() < 6 || name.substr(name.size() - 5) != ".json") {
        continue;
      }
      std::error_code size_ec;
      const std::uintmax_t bytes =
          std::filesystem::file_size(entry.path(), size_ec);
      util::Log(util::LogLevel::kInfo,
                "crashed run left a flight-recorder dump: %s (%llu "
                "bytes) — inspect with tools/trace_summary.py",
                entry.path().string().c_str(),
                static_cast<unsigned long long>(size_ec ? 0 : bytes));
    }
  }
  std::printf("%s\n", res.Table().c_str());
  const std::uint64_t decided = res.admits + res.rejects;
  std::printf("admits %llu / %llu (acceptance %.3f), leaves %llu\n",
              static_cast<unsigned long long>(res.admits),
              static_cast<unsigned long long>(decided),
              res.acceptance_ratio(),
              static_cast<unsigned long long>(res.leaves));
  std::printf("churn: %llu moved, %llu split, %llu unsplit "
              "(%llu repartitions, %.3f churn/admit)\n",
              static_cast<unsigned long long>(res.churn.moved),
              static_cast<unsigned long long>(res.churn.split),
              static_cast<unsigned long long>(res.churn.unsplit),
              static_cast<unsigned long long>(res.churn.repartitions),
              res.admits > 0 ? static_cast<double>(res.churn.total()) /
                                   static_cast<double>(res.admits)
                             : 0.0);
  std::printf("overload ladder: %llu degrades (%llu restored), %llu sheds "
              "(%llu restored, %llu retry misses), %llu hysteresis blocks, "
              "%zu shed outstanding\n",
              static_cast<unsigned long long>(res.overload.degrades),
              static_cast<unsigned long long>(res.overload.degrade_restores),
              static_cast<unsigned long long>(res.overload.sheds),
              static_cast<unsigned long long>(res.overload.shed_restores),
              static_cast<unsigned long long>(res.overload.retry_attempts),
              static_cast<unsigned long long>(res.overload.hysteresis_blocks),
              res.shed_outstanding);
  std::printf("admission decisions: %llu O(1) util-rejects, %llu O(n) "
              "density-accepts, %llu full demand tests\n",
              static_cast<unsigned long long>(res.admission.util_rejects),
              static_cast<unsigned long long>(res.admission.density_accepts),
              static_cast<unsigned long long>(res.admission.full_tests));
  if (o.memo.enabled) {
    const std::uint64_t probes =
        res.admission.memo_hits + res.admission.memo_misses;
    std::printf("analysis cache: %llu hits / %llu lookups (%.1f%%), "
                "%llu evictions\n",
                static_cast<unsigned long long>(res.admission.memo_hits),
                static_cast<unsigned long long>(probes),
                probes > 0 ? 100.0 *
                                 static_cast<double>(
                                     res.admission.memo_hits) /
                                 static_cast<double>(probes)
                           : 0.0,
                static_cast<unsigned long long>(res.admission.memo_evicts));
  } else {
    std::printf("analysis cache: off\n");
  }
  std::printf("\nfinal placement:\n%s",
              res.final_partition.summary().c_str());

  if (o.profile) {
    // Wall-clock data stays off stdout (§15 firewall): the JSON report
    // goes to --profile-out, everything else to stderr.
    if (!o.profile_out.empty()) {
      if (!util::WriteTextFile(o.profile_out, profiler.ToJson(), &err)) {
        std::fprintf(stderr, "%s\n", err.c_str());
        return 2;
      }
      util::Log(util::LogLevel::kInfo, "wrote span profile to %s",
                o.profile_out.c_str());
    } else {
      std::fprintf(stderr, "\n--- wall-clock span profile ---\n%s",
                   profiler.ToText().c_str());
    }
    std::fprintf(stderr, "\n%s", prof_table.c_str());
    // Pool observability (DESIGN.md §16): how the sharded-validation /
    // batch work actually spread over the shared pool's workers.
    // Scheduling-dependent, hence wall-channel: stderr only, in its own
    // registry, never the byte-compared --stats-out one.
    obs::StatsRegistry pool_reg;
    obs::FillPoolStatsRegistry(pool_reg, util::SharedPool());
    std::fprintf(stderr, "\n--- thread-pool stats ---\n%s",
                 pool_reg.snapshot().ToCsv().c_str());
  }

  if (tracer != nullptr) {
    if (o.trace_requests) {
      // Pool gauges ride along as Perfetto counter tracks (one sample,
      // stamped at the retained span horizon).
      const util::ThreadPool::PoolStats ps = util::SharedPool().Stats();
      obs::CounterSeries stolen{"pool stolen indices", {}};
      obs::CounterSeries caller{"pool caller indices", {}};
      obs::CounterSeries peak{"pool one-off queue peak", {}};
      stolen.points.emplace_back(0, static_cast<double>(ps.stolen_indices()));
      caller.points.emplace_back(0, static_cast<double>(ps.caller.indices));
      peak.points.emplace_back(0, static_cast<double>(ps.queue_peak));
      if (!util::WriteTextFile(o.reqtrace_out,
                               tracer->ToPerfettoJson({stolen, caller, peak}),
                               &err)) {
        std::fprintf(stderr, "%s\n", err.c_str());
        return 2;
      }
      const obs::RequestTracer::RetainStats rs = tracer->retain_stats();
      util::Log(util::LogLevel::kInfo,
                "wrote request traces to %s (%llu requests seen, %llu "
                "slow + %llu interesting retained, peak %llu spans held) "
                "— summarize with tools/trace_summary.py",
                o.reqtrace_out.c_str(),
                static_cast<unsigned long long>(rs.traces_seen),
                static_cast<unsigned long long>(rs.retained_slow),
                static_cast<unsigned long long>(rs.retained_interesting),
                static_cast<unsigned long long>(rs.peak_retained_spans));
    }
    if (o.flight_dump) {
      std::string flight_path;
      if (!tracer->DumpFlight("on_demand", &flight_path, &err)) {
        std::fprintf(stderr, "%s\n", err.c_str());
        return 2;
      }
      util::Log(util::LogLevel::kInfo,
                "wrote flight-recorder dump to %s", flight_path.c_str());
    }
  }
  if (!o.stats_out.empty()) {
    obs::StatsRegistry reg;
    online::FillStatsRegistry(reg, res);
    if (!util::WriteTextFile(o.stats_out, reg.snapshot().ToJson(), &err)) {
      std::fprintf(stderr, "%s\n", err.c_str());
      return 2;
    }
    std::printf("wrote stats registry to %s\n", o.stats_out.c_str());
  }

  if (!o.trace_out.empty()) {
    // Epoch series as Perfetto counter tracks (stamped at epoch ends).
    obs::PerfettoOptions popt;
    popt.num_cores = o.cores;
    popt.process_name = "sps online replay";
    popt.counter_tracks = false;  // no scheduler events in this mode
    obs::CounterSeries churn{"online churn", {}};
    obs::CounterSeries resident{"resident tasks", {}};
    obs::CounterSeries util{"total utilization", {}};
    obs::CounterSeries shed{"shed tasks", {}};
    obs::CounterSeries degraded{"degraded tasks", {}};
    for (const online::EpochStats& e : res.epochs) {
      churn.points.emplace_back(e.end,
                                static_cast<double>(e.churn.total()));
      resident.points.emplace_back(e.end,
                                   static_cast<double>(e.resident));
      util.points.emplace_back(e.end, e.utilization);
      shed.points.emplace_back(e.end,
                               static_cast<double>(e.shed_resident));
      degraded.points.emplace_back(
          e.end, static_cast<double>(e.degraded_resident));
    }
    popt.extra_counters = {churn, resident, util, shed, degraded};
    if (!obs::WritePerfettoJson({}, o.trace_out, popt, &err)) {
      std::fprintf(stderr, "%s\n", err.c_str());
      return 2;
    }
    std::printf("wrote epoch counter tracks to %s — open at "
                "ui.perfetto.dev\n",
                o.trace_out.c_str());
  }

  std::uint64_t misses = 0;
  std::uint64_t hard_misses = 0;
  for (const online::EpochStats& e : res.epochs) {
    misses += e.sim_misses;
    hard_misses += e.hard_misses;
  }
  if (o.online_validate) {
    std::printf("epoch validation: %llu simulated deadline misses "
                "(%llu on HARD tasks)\n",
                static_cast<unsigned long long>(misses),
                static_cast<unsigned long long>(hard_misses));
  }
  // Fault-injected replays run soft tasks past their deadlines by
  // design; the pass/fail line is the hard-criticality one there.
  if (rcfg.faults.any()) return hard_misses == 0 ? 0 : 1;
  return misses == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    if (!ParseArg(argv[i], o)) {
      std::fprintf(stderr, "unknown argument: %s\n(see the usage comment "
                           "at the top of examples/sps_cli.cpp)\n",
                   argv[i]);
      return 2;
    }
  }

  if (o.verbose) util::SetGlobalLogLevel(util::LogLevel::kDebug);

  overhead::OverheadModel model = overhead::OverheadModel::Zero();
  if (o.overheads == "paper") {
    model = overhead::OverheadModel::PaperScaled(o.scale);
  } else if (o.overheads == "calibrated") {
    std::printf("calibrating against this machine's queues...\n");
    overhead::CalibrationConfig ccfg;
    ccfg.ready_backend = o.ready_queue;
    ccfg.sleep_backend = o.sleep_queue;
    model = overhead::Calibrate(ccfg);
    model.scale = o.scale;
  } else if (o.overheads != "zero") {
    std::fprintf(stderr, "unknown --overheads=%s\n", o.overheads.c_str());
    return 2;
  }

  if (o.online) return RunOnline(o, model);

  if (o.acceptance) {
    exp::AcceptanceConfig acfg;
    acfg.num_cores = o.cores;
    acfg.num_tasks = o.tasks;
    acfg.norm_util_points = exp::AcceptanceConfig::DefaultGrid();
    acfg.sets_per_point = o.sets;
    acfg.seed = o.seed;
    acfg.model = model;
    acfg.jobs = o.jobs;
    acfg.memo = o.memo;
    if (o.acceptance_validate) {
      acfg.validate_by_simulation = true;
      acfg.validate_sim.horizon = o.sim_ms;
      if (!ParseArrivals(o.arrivals, acfg.validate_sim.arrivals)) return 2;
      // Overload axis (DESIGN.md §13): validate accepted partitions
      // under per-job execution spikes instead of exact WCET.
      if (o.exec_model == "spiky") {
        acfg.validate_sim.exec.kind = sim::ExecModel::Kind::kSpiky;
        acfg.validate_sim.exec.spike_prob = o.spike_prob;
        acfg.validate_sim.exec.spike_magnitude = o.spike_mag;
      } else if (o.exec_model != "wcet") {
        std::fprintf(stderr, "unknown --exec=%s (wcet|spiky)\n",
                     o.exec_model.c_str());
        return 2;
      }
      acfg.validate_sim.ready_backend = o.ready_queue;
      acfg.validate_sim.sleep_backend = o.sleep_queue;
      acfg.validate_sim.event_backend = o.event_queue;
      acfg.validate_sim.shards = o.shards;
    }
    std::printf("acceptance sweep: m=%u, n=%zu, %d sets/point, jobs=%u%s%s\n\n",
                o.cores, o.tasks, o.sets, o.jobs,
                o.acceptance_validate ? ", validating by simulation" : "",
                o.acceptance_validate && o.exec_model == "spiky"
                    ? " (spiky exec)"
                    : "");
    // The sweep has no per-unit AdmitStats plumbing, so the cache
    // counters come from whole-table snapshots around the run.
    const analysis::MemoStats before =
        o.memo.enabled ? analysis::SharedMemo(o.memo.entries).stats()
                       : analysis::MemoStats{};
    const exp::AcceptanceResult res = exp::RunAcceptance(acfg);
    std::printf("%s\n", res.Table().c_str());
    const auto w = res.WeightedAcceptance();
    for (std::size_t ai = 0; ai < acfg.algorithms.size(); ++ai) {
      std::printf("weighted %-12s %.3f\n",
                  exp::ToString(acfg.algorithms[ai]), w[ai]);
    }
    if (o.memo.enabled) {
      analysis::MemoStats d = analysis::SharedMemo(o.memo.entries).stats();
      d -= before;
      std::printf("analysis cache: %llu hits / %llu lookups (%.1f%%), "
                  "%llu evictions\n",
                  static_cast<unsigned long long>(d.hits),
                  static_cast<unsigned long long>(d.hits + d.misses),
                  100.0 * d.hit_rate(),
                  static_cast<unsigned long long>(d.evicts));
    } else {
      std::printf("analysis cache: off\n");
    }
    return 0;
  }

  rt::GeneratorConfig gen;
  gen.num_tasks = o.tasks;
  gen.total_utilization = o.util * o.cores;
  rt::Rng rng(o.seed);
  const rt::TaskSet ts = rt::GenerateTaskSet(gen, rng);
  std::printf("generated %zu tasks, U=%.3f on %u cores (norm %.3f), "
              "seed %llu\n",
              ts.size(), ts.total_utilization(), o.cores, o.util,
              static_cast<unsigned long long>(o.seed));

  const partition::PartitionResult pr = RunAlgo(o, ts, model);
  if (!pr.success) {
    std::printf("%s REJECTED the set: %s\n", pr.algorithm.c_str(),
                pr.failure_reason.c_str());
    return 1;
  }
  std::printf("\n%s accepted:\n%s\n", pr.algorithm.c_str(),
              pr.partition.summary().c_str());

  sim::SimConfig cfg;
  cfg.horizon = o.sim_ms;
  cfg.overheads = model;
  if (!ParseArrivals(o.arrivals, cfg.arrivals)) return 2;
  cfg.record_trace = o.trace || !o.trace_out.empty();
  cfg.record_metrics = o.metrics;
  cfg.ready_backend = o.ready_queue;
  cfg.sleep_backend = o.sleep_queue;
  cfg.event_backend = o.event_queue;
  cfg.shards = o.shards;
  // Streaming trace window (DESIGN.md §15): drain the trace into the
  // incremental Perfetto serializer DURING the run — byte-identical
  // document, O(window) stamped-record memory.
  std::unique_ptr<obs::PerfettoStreamDrain> stream_drain;
  if (o.trace_stream) {
    if (o.trace_out.empty()) {
      std::fprintf(stderr, "--trace-stream needs --trace-out=FILE\n");
      return 2;
    }
    cfg.record_trace = true;
    obs::PerfettoOptions popt;
    popt.num_cores = o.cores;
    stream_drain = std::make_unique<obs::PerfettoStreamDrain>(popt);
    cfg.trace_drain = stream_drain.get();
    cfg.trace_window = o.trace_stream_window;
  }
  const sim::SimResult r = Simulate(pr.partition, cfg);
  std::printf("queues: ready=%s (%llu ops) sleep=%s (%llu ops) "
              "event=%s (%llu ops)\n",
              std::string(containers::to_string(o.ready_queue)).c_str(),
              static_cast<unsigned long long>(r.ready_ops.total()),
              std::string(containers::to_string(o.sleep_queue)).c_str(),
              static_cast<unsigned long long>(r.sleep_ops.total()),
              std::string(containers::to_string(o.event_queue)).c_str(),
              static_cast<unsigned long long>(r.event_ops.total()));
  std::printf("%s\n", r.summary().c_str());
  if (o.trace) {
    trace::GanttOptions gopt;
    gopt.end = std::min<Time>(o.sim_ms, Millis(100));
    gopt.columns = 110;
    std::printf("%s", trace::RenderGantt(r.trace_events, gopt).c_str());
  }
  if (!o.trace_out.empty()) {
    std::string err;
    if (o.trace_stream) {
      if (!util::WriteTextFile(o.trace_out, stream_drain->document(),
                               &err)) {
        std::fprintf(stderr, "%s\n", err.c_str());
        return 2;
      }
      const obs::TraceStreamStats& ts = stream_drain->stats();
      std::printf("wrote Perfetto trace (%llu events streamed in %llu "
                  "batches, peak %zu resident) to %s — open at "
                  "ui.perfetto.dev\n",
                  static_cast<unsigned long long>(ts.events),
                  static_cast<unsigned long long>(ts.batches),
                  ts.peak_resident, o.trace_out.c_str());
    } else {
      if (!obs::WritePerfettoJson(r.trace_events, o.trace_out,
                                  {.num_cores = o.cores}, &err)) {
        std::fprintf(stderr, "%s\n", err.c_str());
        return 2;
      }
      std::printf("wrote Perfetto trace (%zu events) to %s — open at "
                  "ui.perfetto.dev\n",
                  r.trace_events.size(), o.trace_out.c_str());
    }
  }
  if (o.metrics) {
    const obs::MetricsReport rep = obs::BuildMetricsReport(r);
    std::printf("\n--- metrics report (span %.1fms) ---\n%s\n%s",
                ToMillis(rep.span), rep.TaskCsv().c_str(),
                rep.CoreCsv().c_str());
    if (!o.metrics_out.empty()) {
      std::string err;
      if (!util::WriteTextFile(o.metrics_out, rep.ToJson(), &err)) {
        std::fprintf(stderr, "%s\n", err.c_str());
        return 2;
      }
      std::printf("wrote metrics report to %s\n", o.metrics_out.c_str());
    }
  }
  return r.total_misses == 0 ? 0 : 1;
}
