// sps_cli — command-line driver for one-off experiments with the library:
// generate (or densely parameterize) a task set, run a chosen partitioning
// algorithm, verify, simulate, and report. The fifth runnable example and
// the quickest way to poke at the system without writing code.
//
// Usage:
//   sps_cli [--algo=spa2|spa1|ffd|wfd|bfd|edf-ffd|edf-wm]
//           [--cores=4] [--tasks=16] [--util=0.85] [--seed=1]
//           [--overheads=paper|zero|calibrated] [--scale=1.0]
//           [--sim-ms=2000] [--sporadic] [--trace]
//           [--ready-queue=binomial|pairing|rbtree|vector]
//           [--sleep-queue=rbtree|vector|binomial|pairing]
//
// Examples:
//   ./build/examples/sps_cli --algo=spa2 --util=0.95
//   ./build/examples/sps_cli --algo=edf-wm --tasks=24 --sim-ms=5000
//   ./build/examples/sps_cli --algo=ffd --overheads=zero --trace
//   ./build/examples/sps_cli --ready-queue=pairing --sleep-queue=vector

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "containers/queue_traits.hpp"
#include "overhead/calibrate.hpp"
#include "overhead/model.hpp"
#include "partition/binpack.hpp"
#include "partition/edf_wm.hpp"
#include "partition/spa.hpp"
#include "partition/verify.hpp"
#include "rt/generator.hpp"
#include "sim/engine.hpp"
#include "trace/gantt.hpp"

using namespace sps;

namespace {

struct Options {
  std::string algo = "spa2";
  unsigned cores = 4;
  std::size_t tasks = 16;
  double util = 0.85;
  std::uint64_t seed = 1;
  std::string overheads = "paper";
  double scale = 1.0;
  Time sim_ms = Millis(2000);
  bool sporadic = false;
  bool trace = false;
  containers::QueueBackend ready_queue =
      containers::QueueBackend::kBinomialHeap;
  containers::QueueBackend sleep_queue = containers::QueueBackend::kRbTree;
};

bool ParseArg(const char* arg, Options& o) {
  auto value = [&](const char* key) -> const char* {
    const std::size_t n = std::strlen(key);
    if (std::strncmp(arg, key, n) == 0 && arg[n] == '=') return arg + n + 1;
    return nullptr;
  };
  if (const char* v = value("--algo")) { o.algo = v; return true; }
  if (const char* v = value("--cores")) { o.cores = std::strtoul(v, nullptr, 10); return true; }
  if (const char* v = value("--tasks")) { o.tasks = std::strtoul(v, nullptr, 10); return true; }
  if (const char* v = value("--util")) { o.util = std::strtod(v, nullptr); return true; }
  if (const char* v = value("--seed")) { o.seed = std::strtoull(v, nullptr, 10); return true; }
  if (const char* v = value("--overheads")) { o.overheads = v; return true; }
  if (const char* v = value("--scale")) { o.scale = std::strtod(v, nullptr); return true; }
  if (const char* v = value("--sim-ms")) { o.sim_ms = Millis(std::strtod(v, nullptr)); return true; }
  auto parse_backend = [](const char* v, containers::QueueBackend& out) {
    if (containers::ParseQueueBackend(v, out)) return true;
    std::fprintf(stderr, "invalid queue backend '%s'; one of:", v);
    for (containers::QueueBackend b : containers::kAllQueueBackends) {
      std::fprintf(stderr, " %s", std::string(containers::to_string(b)).c_str());
    }
    std::fprintf(stderr, "\n");
    return false;
  };
  if (const char* v = value("--ready-queue")) {
    return parse_backend(v, o.ready_queue);
  }
  if (const char* v = value("--sleep-queue")) {
    return parse_backend(v, o.sleep_queue);
  }
  if (std::strcmp(arg, "--sporadic") == 0) { o.sporadic = true; return true; }
  if (std::strcmp(arg, "--trace") == 0) { o.trace = true; return true; }
  return false;
}

partition::PartitionResult RunAlgo(const Options& o, const rt::TaskSet& ts,
                                   const overhead::OverheadModel& m) {
  if (o.algo == "spa1" || o.algo == "spa2") {
    partition::SpaConfig cfg;
    cfg.num_cores = o.cores;
    cfg.model = m;
    cfg.preassign_heavy = (o.algo == "spa2");
    return partition::SpaPartition(ts, cfg);
  }
  if (o.algo == "ffd" || o.algo == "wfd" || o.algo == "bfd") {
    partition::BinPackConfig cfg;
    cfg.num_cores = o.cores;
    cfg.admission = partition::AdmissionTest::kRta;
    cfg.model = m;
    const auto policy = o.algo == "ffd" ? partition::FitPolicy::kFirstFit
                        : o.algo == "wfd" ? partition::FitPolicy::kWorstFit
                                          : partition::FitPolicy::kBestFit;
    return partition::BinPackDecreasing(ts, policy, cfg);
  }
  if (o.algo == "edf-ffd" || o.algo == "edf-wm") {
    partition::EdfPartitionConfig cfg;
    cfg.num_cores = o.cores;
    cfg.model = m;
    return o.algo == "edf-wm"
               ? partition::EdfWm(ts, cfg)
               : partition::EdfBinPack(ts, partition::FitPolicy::kFirstFit,
                                       cfg);
  }
  partition::PartitionResult r;
  r.failure_reason = "unknown --algo=" + o.algo;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    if (!ParseArg(argv[i], o)) {
      std::fprintf(stderr, "unknown argument: %s\n(see the usage comment "
                           "at the top of examples/sps_cli.cpp)\n",
                   argv[i]);
      return 2;
    }
  }

  overhead::OverheadModel model = overhead::OverheadModel::Zero();
  if (o.overheads == "paper") {
    model = overhead::OverheadModel::PaperScaled(o.scale);
  } else if (o.overheads == "calibrated") {
    std::printf("calibrating against this machine's queues...\n");
    overhead::CalibrationConfig ccfg;
    ccfg.ready_backend = o.ready_queue;
    ccfg.sleep_backend = o.sleep_queue;
    model = overhead::Calibrate(ccfg);
    model.scale = o.scale;
  } else if (o.overheads != "zero") {
    std::fprintf(stderr, "unknown --overheads=%s\n", o.overheads.c_str());
    return 2;
  }

  rt::GeneratorConfig gen;
  gen.num_tasks = o.tasks;
  gen.total_utilization = o.util * o.cores;
  rt::Rng rng(o.seed);
  const rt::TaskSet ts = rt::GenerateTaskSet(gen, rng);
  std::printf("generated %zu tasks, U=%.3f on %u cores (norm %.3f), "
              "seed %llu\n",
              ts.size(), ts.total_utilization(), o.cores, o.util,
              static_cast<unsigned long long>(o.seed));

  const partition::PartitionResult pr = RunAlgo(o, ts, model);
  if (!pr.success) {
    std::printf("%s REJECTED the set: %s\n", pr.algorithm.c_str(),
                pr.failure_reason.c_str());
    return 1;
  }
  std::printf("\n%s accepted:\n%s\n", pr.algorithm.c_str(),
              pr.partition.summary().c_str());

  sim::SimConfig cfg;
  cfg.horizon = o.sim_ms;
  cfg.overheads = model;
  if (o.sporadic) {
    cfg.arrivals.kind = sim::ArrivalModel::Kind::kSporadicUniformDelay;
  }
  cfg.record_trace = o.trace;
  cfg.ready_backend = o.ready_queue;
  cfg.sleep_backend = o.sleep_queue;
  trace::Recorder rec(o.trace);
  const sim::SimResult r = Simulate(pr.partition, cfg, &rec);
  std::printf("queues: ready=%s (%llu ops) sleep=%s (%llu ops)\n",
              std::string(containers::to_string(o.ready_queue)).c_str(),
              static_cast<unsigned long long>(r.ready_ops.total()),
              std::string(containers::to_string(o.sleep_queue)).c_str(),
              static_cast<unsigned long long>(r.sleep_ops.total()));
  std::printf("%s\n", r.summary().c_str());
  if (o.trace) {
    trace::GanttOptions gopt;
    gopt.end = std::min<Time>(o.sim_ms, Millis(100));
    gopt.columns = 110;
    std::printf("%s", trace::RenderGantt(rec.events(), gopt).c_str());
  }
  return r.total_misses == 0 ? 0 : 1;
}
