// Example: compare every partitioning algorithm on one task set — the
// paper's §1 motivation made concrete. The set is the classic bin-packing
// pathology (m+1 tasks of utilization 0.6 on m cores): partitioned
// scheduling wastes nearly half the machine, semi-partitioned splits one
// task and schedules it.
//
// Build & run:  ./build/examples/partition_compare

#include <cstdio>

#include "overhead/model.hpp"
#include "partition/binpack.hpp"
#include "partition/spa.hpp"
#include "rt/taskset.hpp"

using namespace sps;

namespace {

void Report(const partition::PartitionResult& r) {
  if (r.success) {
    std::printf("%-16s SCHEDULABLE (%u split task(s), %u migration(s)/"
                "period)\n",
                r.algorithm.c_str(), r.partition.num_split_tasks(),
                r.partition.migrations_per_period());
    std::printf("%s", r.partition.summary().c_str());
  } else {
    std::printf("%-16s FAILED: %s\n", r.algorithm.c_str(),
                r.failure_reason.c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  // The pathology: 5 tasks of utilization 0.6 on 4 cores (total U = 3.0,
  // i.e. only 75% of the machine) — yet no two tasks share a core.
  rt::TaskSet ts;
  for (rt::TaskId i = 0; i < 5; ++i) {
    ts.add(rt::MakeTask(i, Millis(60), Millis(100)));
  }
  rt::AssignRateMonotonic(ts);
  std::printf("Task set: 5 x (C=60ms, T=100ms), total U=3.0 on 4 cores\n\n");

  const overhead::OverheadModel model = overhead::OverheadModel::PaperCoreI7();

  partition::BinPackConfig bp;
  bp.num_cores = 4;
  bp.admission = partition::AdmissionTest::kRta;
  bp.model = model;
  Report(partition::BinPackDecreasing(ts, partition::FitPolicy::kFirstFit, bp));
  Report(partition::BinPackDecreasing(ts, partition::FitPolicy::kBestFit, bp));
  Report(partition::BinPackDecreasing(ts, partition::FitPolicy::kWorstFit, bp));
  Report(partition::BinPackDecreasing(ts, partition::FitPolicy::kNextFit, bp));

  partition::SpaConfig spa;
  spa.num_cores = 4;
  spa.model = model;
  Report(partition::Spa1(ts, spa));
  Report(partition::Spa2(ts, spa));

  std::printf("Takeaway: every partitioned policy strands the fifth task "
              "although a full core of capacity is free in aggregate; "
              "FP-TS splits one task across the cores' leftover slack and "
              "schedules everything — the paper's case for "
              "semi-partitioned scheduling.\n");
  return 0;
}
