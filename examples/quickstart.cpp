// Quickstart: the 60-second tour of the library.
//
//   1. generate a random implicit-deadline task set (UUniFast),
//   2. partition it with FP-TS (semi-partitioned, SPA2) under the paper's
//      measured overhead model,
//   3. verify schedulability with the overhead-aware analysis,
//   4. execute it on the multicore scheduler simulator,
//   5. print what happened.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "exp/acceptance.hpp"
#include "overhead/model.hpp"
#include "partition/spa.hpp"
#include "partition/verify.hpp"
#include "rt/generator.hpp"
#include "sim/engine.hpp"

using namespace sps;

int main() {
  // 1. A task set: 12 tasks, total utilization 3.4 of 4 cores (85%).
  rt::GeneratorConfig gen;
  gen.num_tasks = 12;
  gen.total_utilization = 3.4;
  gen.period_min = Millis(10);
  gen.period_max = Millis(200);
  rt::Rng rng(2011);
  const rt::TaskSet ts = rt::GenerateTaskSet(gen, rng);
  std::printf("Task set (U=%.2f):\n", ts.total_utilization());
  for (const rt::Task& t : ts) std::printf("  %s\n", ToString(t).c_str());

  // 2. Partition with FP-TS under the paper's overhead model.
  const overhead::OverheadModel model = overhead::OverheadModel::PaperCoreI7();
  partition::SpaConfig cfg;
  cfg.num_cores = 4;
  cfg.model = model;
  cfg.preassign_heavy = true;  // SPA2
  const partition::PartitionResult pr = partition::SpaPartition(ts, cfg);
  if (!pr.success) {
    std::printf("\n%s could not schedule this set: %s\n",
                pr.algorithm.c_str(), pr.failure_reason.c_str());
    return 1;
  }
  std::printf("\n%s produced:\n%s", pr.algorithm.c_str(),
              pr.partition.summary().c_str());

  // 3. Independent verification (the partitioner already ran this gate,
  //    shown here as the API you would call on your own placements).
  const partition::PartitionAnalysis pa =
      AnalyzePartition(pr.partition, model);
  std::printf("\nverifier: %s\n",
              pa.schedulable ? "schedulable (all deadlines provable)"
                             : pa.failure_reason.c_str());
  for (const partition::TaskVerdict& v : pa.verdicts) {
    std::printf("  tau%-3u worst completion %8.3fms of deadline %8.3fms\n",
                v.id, ToMillis(v.completion), ToMillis(v.deadline));
  }

  // 4. Run it: 5 simulated seconds with full overhead injection.
  sim::SimConfig sim_cfg;
  sim_cfg.horizon = Millis(5000);
  sim_cfg.overheads = model;
  const sim::SimResult r = Simulate(pr.partition, sim_cfg);

  // 5. Report.
  std::printf("\nsimulation: %s", r.summary().c_str());
  std::printf("\nobserved vs analysis bound (max response):\n");
  for (std::size_t i = 0; i < r.tasks.size(); ++i) {
    std::printf("  tau%-3u observed %8.3fms  <=  bound %8.3fms\n",
                r.tasks[i].id, ToMillis(r.tasks[i].max_response),
                ToMillis(pa.verdicts[i].completion));
  }
  return 0;
}
