// E6 — overhead sensitivity: "would the extra overhead caused by task
// splitting counteract the theoretical performance gain of
// semi-partitioned scheduling?" (paper §1). We scale the entire measured
// overhead model by {0, 1, 2, 5, 10, 20} and track the FP-TS vs FFD
// acceptance gap.
//
// Paper answer to reproduce: the gap survives — splitting overhead is a
// few microseconds against millisecond periods, so even an order of
// magnitude more overhead barely moves acceptance.
//
// Environment knobs: SPS_SETS (default 30), SPS_TASKS (default 16),
// SPS_JOBS / --jobs=N (default: one per hardware thread) — the sweep is
// re-hosted on the parallel acceptance harness; results are identical
// for any job count (per-(point, set) seeds).

#include <cstdio>

#include "bench_common.hpp"
#include "exp/acceptance.hpp"
#include "overhead/model.hpp"

using namespace sps;
using sps::bench::EnvInt;

int main(int argc, char** argv) {
  std::printf("=== E6: overhead sensitivity of the FP-TS advantage ===\n\n");
  const int sets = EnvInt("SPS_SETS", 50);
  const int tasks = EnvInt("SPS_TASKS", 16);
  unsigned jobs = 1;
  if (!bench::ParseJobs(argc, argv, jobs)) return 2;

  std::printf("%8s | %8s %8s %8s | %10s\n", "scale", "FFD", "WFD",
              "FP-TS", "gap(TS-FFD)");
  for (const double scale : {0.0, 1.0, 2.0, 5.0, 10.0, 20.0}) {
    exp::AcceptanceConfig cfg;
    cfg.num_cores = 4;
    cfg.num_tasks = static_cast<std::size_t>(tasks);
    // Focus on the interesting band where partitioned scheduling starts
    // to fail.
    cfg.norm_util_points = {0.80, 0.85, 0.90, 0.95, 1.00};
    cfg.sets_per_point = sets;
    cfg.model = overhead::OverheadModel::PaperScaled(scale);
    cfg.algorithms = {exp::Algo::kFfd, exp::Algo::kWfd, exp::Algo::kSpa2};
    cfg.jobs = jobs;
    const exp::AcceptanceResult res = exp::RunAcceptance(cfg);
    const auto w = res.WeightedAcceptance();
    std::printf("%7.1fx | %8.3f %8.3f %8.3f | %+10.3f\n", scale, w[0],
                w[1], w[2], w[2] - w[0]);
  }
  std::printf("\nShape check: the FP-TS advantage (gap > 0) persists at "
              "every overhead scale; absolute acceptance of ALL algorithms "
              "degrades slowly because overheads are microseconds against "
              "millisecond periods.\n");
  return 0;
}
