// E2 — Figure 1 of the paper: the annotated overhead timeline of one
// preemption. A lower-priority task tau2 is executing; a higher-priority
// tau1 is released at b; the paper marks:
//
//     a..b  tau2 executing
//     b..e  rls + sch + cnt1           (release of tau1, switch to it)
//     e..f  tau1 executing
//     f..i  sch + cnt2                 (tau1 finished, switch back)
//     i..   tau2 resumes (cache reload = the "cache" overhead)
//
// We replay exactly that scenario in the simulator under the paper's
// measured overhead model and print the resulting event log, the overhead
// segments with their durations, and an ASCII Gantt chart.

#include <algorithm>
#include <cstdio>

#include "overhead/model.hpp"
#include "partition/placement.hpp"
#include "rt/time.hpp"
#include "sim/engine.hpp"
#include "trace/gantt.hpp"
#include "trace/trace.hpp"

using namespace sps;

int main() {
  std::printf("=== E2: Figure 1 — run-time overhead timeline ===\n\n");

  partition::Partition p;
  p.num_cores = 1;
  {
    partition::PlacedTask tau1;  // higher priority, short period
    tau1.task = rt::MakeTask(1, Millis(2), Millis(10));
    tau1.parts = {{0, Millis(2), partition::kNormalPriorityBase + 0}};
    p.tasks.push_back(tau1);
  }
  {
    partition::PlacedTask tau2;  // lower priority, long job
    tau2.task = rt::MakeTask(2, Millis(9), Millis(40));
    tau2.parts = {{0, Millis(9), partition::kNormalPriorityBase + 1}};
    p.tasks.push_back(tau2);
  }

  sim::SimConfig cfg;
  cfg.horizon = Millis(20);
  cfg.overheads = overhead::OverheadModel::PaperCoreI7();
  cfg.record_trace = true;  // canonical trace lands in r.trace_events
  const sim::SimResult r = Simulate(p, cfg);

  // The Figure-1 moment is tau1's release at t = 10ms, mid-tau2.
  std::printf("Scenario: tau2 (C=9ms, T=40ms) executing; tau1 (C=2ms, "
              "T=10ms) released at t=10ms.\n");
  std::printf("Overhead model: paper Table 1 + 3/5/1.5us handler costs + "
              "20us CPMD.\n\n");

  std::printf("--- event log around the preemption (9.9ms .. 13ms) ---\n%s\n",
              trace::RenderEventLog(r.trace_events, Millis(9.9), Millis(13))
                  .c_str());

  std::printf("--- overhead segments after the release at b = 10ms ---\n");
  const char* labels[] = {"b..c  rls  (sleep-del + release() + ready-add)",
                          "c..d  sch  (pop + requeue preempted tau2)",
                          "d..e  cnt1 (context store/load)"};
  int seg = 0;
  Time preempt_end = 0;
  for (const trace::Event& e : r.trace_events) {
    if (e.time < Millis(10)) continue;
    if (e.kind == trace::EventKind::kOverheadBegin && seg < 3) {
      std::printf("  %-50s %6.2f us\n", labels[seg], ToMicros(e.duration));
      preempt_end = e.time + e.duration;
      ++seg;
    }
    if (seg == 3) break;
  }
  std::printf("  => release-to-execution delay (b..e)            %6.2f us "
              "(paper structure: rls+sch+cnt1)\n\n",
              ToMicros(preempt_end - Millis(10)));

  // Finish path: after tau1 completes, sch + cnt2, then tau2's cache
  // reload.
  std::printf("--- finish path after tau1 completes (f..i + cache) ---\n");
  bool after_finish = false;
  for (const trace::Event& e : r.trace_events) {
    if (e.kind == trace::EventKind::kFinish && e.task == 1 &&
        e.time > Millis(10)) {
      after_finish = true;
      continue;
    }
    if (!after_finish) continue;
    if (e.kind == trace::EventKind::kOverheadBegin) {
      std::printf("  %-6s %6.2f us\n", trace::ToString(e.overhead),
                  ToMicros(e.duration));
      if (e.overhead == trace::OverheadKind::kCache) break;
    }
  }

  std::printf("\n--- Gantt (0..20ms, '#' = scheduler overhead) ---\n%s\n",
              trace::RenderGantt(r.trace_events,
                                 {.start = 0, .end = Millis(20),
                                  .columns = 100, .num_cores = 1})
                  .c_str());

  std::printf("--- totals over 20ms ---\n%s\n", r.summary().c_str());
  std::printf("per-category core-0 overhead: rls=%.1fus sch=%.1fus "
              "cnt1=%.1fus cnt2=%.1fus cache=%.1fus\n",
              ToMicros(r.cores[0].overhead_rls),
              ToMicros(r.cores[0].overhead_sch),
              ToMicros(r.cores[0].overhead_cnt1),
              ToMicros(r.cores[0].overhead_cnt2),
              ToMicros(r.cores[0].cpmd_charged));
  return 0;
}
