// E4 — the paper's §3 cache finding: cache-related preemption/migration
// delay (CPMD) as a function of working-set size (WSS).
//
// Paper claims reproduced here:
//   (1) "the cache-related overhead due to task migrations and local
//       context switches is in the same order of magnitude" for realistic
//       working sets, because evicted lines survive in the shared L3;
//   (2) "if an application has generally very small working space ... the
//       cache-related delay of local context switches would be
//       significantly smaller than task migrations" — the crossover sits
//       near the private cache capacity;
//   (3) (ablation) without a shared LLC, migration pays memory latency
//       and the equivalence disappears.
//
// Output: one row per WSS with the analytical model's local/migration
// delays and ratio, the LRU-simulator's empirical delays and ratio, and
// the private-LLC ablation ratio.

#include <cstdio>

#include "cache/cache_model.hpp"
#include "cache/cpmd.hpp"
#include "cache/lru_sim.hpp"
#include "rt/time.hpp"

using namespace sps;

int main() {
  std::printf("=== E4: cache-related preemption/migration delay ===\n\n");
  const cache::CacheConfig i7 = cache::CacheConfig::CoreI7();
  const cache::CacheConfig no_llc = cache::CacheConfig::PrivateLlcOnly();
  const cache::CpmdModel model(i7);
  const cache::CpmdModel ablation(no_llc);
  std::printf("machine model: %zuK+%zuK private, %zuM shared L3 "
              "(Core-i7); preemptor footprint 512K\n\n",
              i7.l1_bytes >> 10, i7.l2_bytes >> 10, i7.l3_bytes >> 20);

  std::printf("%10s | %12s %12s %7s | %12s %12s %7s | %12s\n", "WSS",
              "model local", "model migr", "ratio", "sim local",
              "sim migr", "ratio", "no-LLC migr");
  std::printf("%10s | %12s %12s %7s | %12s %12s %7s | %12s\n", "", "[us]",
              "[us]", "", "[us]", "[us]", "", "[us]");

  const std::size_t preemptor = 512u << 10;
  for (std::size_t wss = 4u << 10; wss <= 8u << 20; wss *= 2) {
    const Time ml = model.local_resume_delay(wss, preemptor);
    const Time mm = model.migration_resume_delay(wss);
    const cache::CpmdProbeResult probe =
        cache::ProbeCpmd(i7, wss, preemptor);
    const Time am = ablation.migration_resume_delay(wss);
    const double model_ratio =
        static_cast<double>(mm) / static_cast<double>(ml > 0 ? ml : 1);
    const double sim_ratio =
        static_cast<double>(probe.migration_resume_cost) /
        static_cast<double>(
            probe.local_resume_cost > 0 ? probe.local_resume_cost : 1);
    char size[32];
    if (wss >= 1u << 20) {
      std::snprintf(size, sizeof(size), "%zuM", wss >> 20);
    } else {
      std::snprintf(size, sizeof(size), "%zuK", wss >> 10);
    }
    std::printf("%10s | %12.1f %12.1f %7.2f | %12.1f %12.1f %7.2f | %12.1f\n",
                size, ToMicros(ml), ToMicros(mm), model_ratio,
                ToMicros(probe.local_resume_cost),
                ToMicros(probe.migration_resume_cost), sim_ratio,
                ToMicros(am));
  }

  std::printf("\n--- tiny-preemptor regime (the paper's 'rather rare' case: "
              "local << migration) ---\n");
  std::printf("%10s | %12s %12s %7s\n", "WSS", "model local", "model migr",
              "ratio");
  const std::size_t tiny_preemptor = 8u << 10;
  for (std::size_t wss = 4u << 10; wss <= 256u << 10; wss *= 2) {
    const Time ml = model.local_resume_delay(wss, tiny_preemptor);
    const Time mm = model.migration_resume_delay(wss);
    std::printf("%9zuK | %12.1f %12.1f %7.2f\n", wss >> 10, ToMicros(ml),
                ToMicros(mm),
                static_cast<double>(mm) /
                    static_cast<double>(ml > 0 ? ml : 1));
  }
  std::printf("\nShape check: ratio ~1 for WSS/preemptor above private "
              "capacity (~288K); ratio >> 1 only for tiny working sets; "
              "no-LLC migration several times costlier.\n");
  return 0;
}
