// E5 — THE headline experiment (paper §4): acceptance ratio of FP-TS
// (semi-partitioned) vs FFD and WFD (partitioned RM) over randomly
// generated task sets, WITH the measured run-time overheads integrated
// into the schedulability analysis — and, for contrast, the same sweep
// with zero overheads ("theoretical").
//
// Paper result to reproduce (shape): FP-TS dominates FFD and WFD; the
// partitioned algorithms collapse as normalized utilization approaches 1
// while FP-TS keeps accepting; and the FP-TS advantage survives the
// overhead charges essentially intact ("the extra overhead caused by task
// splitting is very low, and its effect on the system schedulability is
// very small").
//
// Since the batch harness landed, the sweep is PARALLEL: thousands of
// independent task-set evaluations distributed over a worker pool, with
// per-(point, set) seeds so the result is bit-identical at any thread
// count. This bench runs the with-overheads sweep twice — --jobs=1 and
// --jobs=N — asserts the results agree bit-for-bit, and writes the
// wall-clock comparison to BENCH_acceptance.json (the perf trajectory
// the CI tracks across PRs).
//
// Knobs: --jobs=N (default: SPS_JOBS env, else one per hardware thread),
// SPS_SETS (task sets per grid point, default 100), SPS_TASKS (tasks per
// set, default 16).

#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "exp/acceptance.hpp"
#include "overhead/model.hpp"
#include "util/json_writer.hpp"

using namespace sps;
using sps::bench::EnvInt;

namespace {

exp::AcceptanceConfig MakeConfig(const overhead::OverheadModel& model,
                                 int sets, int tasks, unsigned jobs) {
  exp::AcceptanceConfig cfg;
  cfg.num_cores = 4;  // the paper's quad-core Core-i7
  cfg.num_tasks = static_cast<std::size_t>(tasks);
  cfg.norm_util_points = exp::AcceptanceConfig::DefaultGrid();
  cfg.sets_per_point = sets;
  cfg.model = model;
  cfg.algorithms = {exp::Algo::kFfd, exp::Algo::kWfd, exp::Algo::kSpa1,
                    exp::Algo::kSpa2};
  cfg.jobs = jobs;
  return cfg;
}

bool SameResult(const exp::AcceptanceResult& a,
                const exp::AcceptanceResult& b) {
  if (a.points.size() != b.points.size()) return false;
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    if (a.points[i].norm_util != b.points[i].norm_util) return false;
    if (a.points[i].acceptance != b.points[i].acceptance) return false;
    if (a.points[i].mean_splits != b.points[i].mean_splits) return false;
  }
  return true;
}

void PrintSweep(const char* title, const exp::AcceptanceResult& res,
                int sets, int tasks) {
  std::printf("--- %s (m=4, n=%d, %d sets/point) ---\n%s\n", title, tasks,
              sets, res.Table().c_str());
  const auto w = res.WeightedAcceptance();
  std::printf("weighted acceptance: FFD=%.3f WFD=%.3f FP-TS(SPA1)=%.3f "
              "FP-TS(SPA2)=%.3f\n\n",
              w[0], w[1], w[2], w[3]);
  std::printf("csv:\n%s\n", res.Csv().c_str());
}

double Seconds(std::chrono::steady_clock::time_point t0,
               std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  unsigned jobs = 1;
  if (!bench::ParseJobs(argc, argv, jobs)) return 2;

  std::printf("=== E5: acceptance ratio — FP-TS vs FFD vs WFD ===\n\n");
  const int sets = EnvInt("SPS_SETS", 100);
  const int tasks = EnvInt("SPS_TASKS", 16);

  // The with-overheads sweep, serial then parallel: the timed pair of
  // the throughput headline, and the determinism check in one.
  const auto model = overhead::OverheadModel::PaperCoreI7();
  exp::AcceptanceConfig cfg = MakeConfig(model, sets, tasks, 1);
  const auto s0 = std::chrono::steady_clock::now();
  const exp::AcceptanceResult serial = exp::RunAcceptance(cfg);
  const auto s1 = std::chrono::steady_clock::now();

  cfg.jobs = jobs;
  const auto p0 = std::chrono::steady_clock::now();
  const exp::AcceptanceResult parallel = exp::RunAcceptance(cfg);
  const auto p1 = std::chrono::steady_clock::now();

  const bool identical = SameResult(serial, parallel);
  const double wall_serial = Seconds(s0, s1);
  const double wall_parallel = Seconds(p0, p1);
  std::printf("jobs=1: %.3fs   jobs=%u: %.3fs   speedup: %.2fx   "
              "bit-identical: %s\n\n",
              wall_serial, jobs, wall_parallel,
              wall_serial / wall_parallel, identical ? "yes" : "NO");
  if (!identical) {
    std::fprintf(stderr,
                 "FATAL: parallel sweep diverged from the serial one\n");
    return 1;
  }

  PrintSweep("WITH measured overheads (paper Core-i7 model, N-aware)",
             parallel, sets, tasks);

  exp::AcceptanceConfig zcfg =
      MakeConfig(overhead::OverheadModel::Zero(), sets, tasks, jobs);
  const exp::AcceptanceResult zero = exp::RunAcceptance(zcfg);
  PrintSweep("zero overheads (theoretical)", zero, sets, tasks);

  std::printf("Shape check: FP-TS columns dominate FFD/WFD at every point; "
              "partitioned acceptance collapses above ~0.9 normalized "
              "utilization while FP-TS keeps accepting; the with-overheads "
              "table is only marginally below the theoretical one.\n");

  const auto w = parallel.WeightedAcceptance();
  util::JsonWriter json;
  json.BeginObject();
  json.Key("bench").Value("acceptance_ratio");
  json.Key("cores").Value(4);
  json.Key("tasks_per_set").Value(tasks);
  json.Key("sets_per_point").Value(sets);
  json.Key("grid_points")
      .Value(static_cast<std::uint64_t>(cfg.norm_util_points.size()));
  json.Key("jobs").Value(jobs);
  json.Key("wall_serial_s").Value(wall_serial);
  json.Key("wall_parallel_s").Value(wall_parallel);
  json.Key("speedup").Value(wall_serial / wall_parallel);
  json.Key("bit_identical").Value(identical);
  json.Key("weighted_acceptance").BeginObject();
  for (std::size_t ai = 0; ai < cfg.algorithms.size(); ++ai) {
    json.Key(exp::ToString(cfg.algorithms[ai])).Value(w[ai]);
  }
  json.EndObject();
  json.EndObject();
  if (!json.WriteFile("BENCH_acceptance.json")) {
    std::fprintf(stderr, "could not write BENCH_acceptance.json\n");
    return 1;
  }
  std::printf("\nwrote BENCH_acceptance.json\n");
  return 0;
}
