// E5 — THE headline experiment (paper §4): acceptance ratio of FP-TS
// (semi-partitioned) vs FFD and WFD (partitioned RM) over randomly
// generated task sets, WITH the measured run-time overheads integrated
// into the schedulability analysis — and, for contrast, the same sweep
// with zero overheads ("theoretical").
//
// Paper result to reproduce (shape): FP-TS dominates FFD and WFD; the
// partitioned algorithms collapse as normalized utilization approaches 1
// while FP-TS keeps accepting; and the FP-TS advantage survives the
// overhead charges essentially intact ("the extra overhead caused by task
// splitting is very low, and its effect on the system schedulability is
// very small").
//
// Environment knobs: SPS_SETS (task sets per grid point, default 40),
// SPS_TASKS (tasks per set, default 16).

#include <cstdio>
#include <cstdlib>

#include "exp/acceptance.hpp"
#include "overhead/model.hpp"

using namespace sps;

namespace {

int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : fallback;
}

void RunSweep(const char* title, const overhead::OverheadModel& model,
              int sets, int tasks) {
  exp::AcceptanceConfig cfg;
  cfg.num_cores = 4;  // the paper's quad-core Core-i7
  cfg.num_tasks = static_cast<std::size_t>(tasks);
  cfg.norm_util_points = exp::AcceptanceConfig::DefaultGrid();
  cfg.sets_per_point = sets;
  cfg.model = model;
  cfg.algorithms = {exp::Algo::kFfd, exp::Algo::kWfd, exp::Algo::kSpa1,
                    exp::Algo::kSpa2};
  const exp::AcceptanceResult res = exp::RunAcceptance(cfg);
  std::printf("--- %s (m=4, n=%d, %d sets/point) ---\n%s\n", title, tasks,
              sets, res.Table().c_str());
  const auto w = res.WeightedAcceptance();
  std::printf("weighted acceptance: FFD=%.3f WFD=%.3f FP-TS(SPA1)=%.3f "
              "FP-TS(SPA2)=%.3f\n\n",
              w[0], w[1], w[2], w[3]);
  std::printf("csv:\n%s\n", res.Csv().c_str());
}

}  // namespace

int main() {
  std::printf("=== E5: acceptance ratio — FP-TS vs FFD vs WFD ===\n\n");
  const int sets = EnvInt("SPS_SETS", 100);
  const int tasks = EnvInt("SPS_TASKS", 16);

  RunSweep("WITH measured overheads (paper Core-i7 model, N-aware)",
           overhead::OverheadModel::PaperCoreI7(), sets, tasks);
  RunSweep("zero overheads (theoretical)",
           overhead::OverheadModel::Zero(), sets, tasks);

  std::printf("Shape check: FP-TS columns dominate FFD/WFD at every point; "
              "partitioned acceptance collapses above ~0.9 normalized "
              "utilization while FP-TS keeps accepting; the with-overheads "
              "table is only marginally below the theoretical one.\n");
  return 0;
}
