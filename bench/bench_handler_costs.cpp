// E3 — pure execution times of the scheduler handlers (paper §3 text):
// release() = 3 us, sch() = 5 us, cnt_swth() = 1.5 us on the paper's
// machine. We measure this library's handler-body stand-ins (max over
// samples, as the paper reports maxima) and microbenchmark them for
// steady-state means.
//
// Reproduction target: all three in the low-microsecond-or-below band,
// with sch() >= release() >= cnt_swth() NOT required (ours are user-space
// function bodies, far cheaper than kernel paths) — what matters for the
// paper's argument is that handler costs are small constants, independent
// of queue size.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "overhead/calibrate.hpp"
#include "rt/time.hpp"

namespace {

void BM_CalibrationReleaseBody(benchmark::State& state) {
  // MeasureHandlerCosts exercises the bodies; here we time the whole
  // 1-sample measurement to bound its cost per call.
  sps::overhead::CalibrationConfig cfg;
  cfg.samples = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sps::overhead::MeasureHandlerCosts(cfg));
  }
}
BENCHMARK(BM_CalibrationReleaseBody);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== E3: pure handler execution times ===\n\n");
  std::printf("[paper]     release() = 3.00 us, sch() = 5.00 us, "
              "cnt_swth() = 1.50 us\n");

  sps::overhead::CalibrationConfig cfg;
  cfg.samples = 5000;
  const sps::overhead::HandlerCosts h =
      sps::overhead::MeasureHandlerCosts(cfg);
  std::printf("[measured]  release() = %.2f us, sch() = %.2f us, "
              "cnt_swth() = %.2f us   (max of %d samples, user-space "
              "handler bodies)\n\n",
              sps::ToMicros(h.release_exec), sps::ToMicros(h.sched_exec),
              sps::ToMicros(h.ctxsw_exec), cfg.samples);
  std::printf("Note: kernel handlers include mode switches and locking the "
              "user-space bodies do not; the paper's argument needs only "
              "that these are small, queue-size-independent constants.\n\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
