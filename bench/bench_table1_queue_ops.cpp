// E1 — Table 1 of the paper: maximal duration of single ready-queue
// (binomial heap) and sleep-queue (red-black tree) operations, local vs
// remote, at queue sizes N = 4 and N = 64.
//
// Output, in order:
//   1. the paper's published Table 1 (Core-i7, kernel space),
//   2. the same table measured live against THIS library's queues
//      ("remote" = cold-cache emulation; see overhead/calibrate.hpp),
//   3. google-benchmark microbenchmarks of the underlying operation pairs
//      for steady-state (mean, not max) numbers.
//
// Reproduction target (shape, not absolute us): costs grow ~log N,
// remote >= local, ready-add is the cheapest op at small N, and
// everything stays within a few microseconds — the paper's premise that
// queue manipulation is cheap enough to make task splitting viable.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <random>

#include "containers/binomial_heap.hpp"
#include "containers/rb_tree.hpp"
#include "overhead/calibrate.hpp"
#include "overhead/table1.hpp"

namespace {

using sps::containers::BinomialHeap;
using sps::containers::RbTree;

struct Payload {
  std::uint64_t prio;
  std::uint64_t data[6];
  bool operator<(const Payload& o) const { return prio < o.prio; }
};

void BM_ReadyQueueAddRemovePair(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::mt19937_64 rng(7);
  BinomialHeap<Payload> heap;
  for (std::size_t i = 0; i + 1 < n; ++i) heap.push(Payload{rng(), {}});
  for (auto _ : state) {
    auto h = heap.push(Payload{rng(), {}});
    heap.erase(h);
  }
  state.SetLabel("push+erase at size N");
}
BENCHMARK(BM_ReadyQueueAddRemovePair)->Arg(4)->Arg(64)->Arg(256);

void BM_ReadyQueuePopPushPair(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::mt19937_64 rng(11);
  BinomialHeap<Payload> heap;
  for (std::size_t i = 0; i < n; ++i) heap.push(Payload{rng(), {}});
  for (auto _ : state) {
    Payload p = heap.pop();
    heap.push(p);
  }
  state.SetLabel("pop+push at size N");
}
BENCHMARK(BM_ReadyQueuePopPushPair)->Arg(4)->Arg(64)->Arg(256);

void BM_SleepQueueInsertErasePair(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::mt19937_64 rng(13);
  RbTree<std::uint64_t, Payload> tree;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    tree.insert(rng(), Payload{i, {}});
  }
  for (auto _ : state) {
    auto h = tree.insert(rng(), Payload{0, {}});
    tree.erase(h);
  }
  state.SetLabel("insert+erase at size N");
}
BENCHMARK(BM_SleepQueueInsertErasePair)->Arg(4)->Arg(64)->Arg(256);

void BM_SleepQueuePopMinReinsertPair(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::mt19937_64 rng(17);
  RbTree<std::uint64_t, Payload> tree;
  for (std::size_t i = 0; i < n; ++i) tree.insert(rng(), Payload{i, {}});
  for (auto _ : state) {
    auto [k, v] = tree.pop_min();
    tree.insert(k + 1000, v);
  }
  state.SetLabel("pop_min+insert at size N");
}
BENCHMARK(BM_SleepQueuePopMinReinsertPair)->Arg(4)->Arg(64)->Arg(256);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== E1: Table 1 — queue operation durations ===\n\n");
  std::printf("%s\n",
              sps::overhead::FormatTable1(
                  sps::overhead::PaperTable1(),
                  "[paper] Table 1 (Intel Core-i7, Linux 2.6.32 kernel)")
                  .c_str());

  sps::overhead::CalibrationConfig cfg;
  cfg.samples = 3000;
  const sps::overhead::Table1 measured =
      sps::overhead::MeasureTable1(cfg);
  std::printf("%s\n",
              sps::overhead::FormatTable1(
                  measured,
                  "[measured] this library's binomial heap / red-black "
                  "tree (max of 3000 samples, user space)")
                  .c_str());

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
