// E7 — single-run speed (DESIGN.md §9): how fast is ONE big simulation,
// end-to-end, under the PR-3 kernel changes? Four configurations of the
// SAME workload, bit-identity enforced between them:
//
//   serial_pr2_kernel   type-erased event queue + unique_ptr-per-release
//                       job allocation — the PR-2 hot path, kept behind
//                       SimConfig::{force_dynamic_event_queue,job_arena}
//                       precisely for this A/B;
//   serial_dynamic      type-erased event queue, arena-recycled jobs
//                       (isolates the allocation win);
//   serial              the devirtualized default path (static event
//                       queue + job arena + NullSink) — what every
//                       default-config simulation now runs on;
//   sharded             the per-core parallel runner (shards=0: one
//                       worker per hardware thread);
//   serial_traced       serial with the RecordSink (trace + metrics
//                       recording, DESIGN.md §10) — the
//                       NullSink-vs-recording A/B;
//   sharded_traced      the sharded runner with per-lane RecordSinks and
//                       the post-run canonical merge.
//
// On top of the SimResult bit-identity check, the two traced variants'
// merged traces are compared BYTE-FOR-BYTE (the §10 determinism
// contract re-proved on every perf run).
//
// Workloads are the queue-ablation partitions at m=16 and m=64 — the
// scales where the ROADMAP flagged single-run latency as the remaining
// serial bottleneck. Wall times are best-of-SPS_REPS; results land in
// BENCH_single_run.json, which tools/check_bench_regression.py compares
// (ratio-wise, per workload) against bench/baselines/.
//
// The bench FAILS (non-zero exit) if any configuration's SimResult
// deviates from the serial default's — the determinism contract is
// checked on every perf run, not only in ctest.
//
// NOTE on expectations: the sharded runner only pays off when the
// machine has cores to spare AND the partition's split-task coupling is
// sparse (DESIGN.md §9). On a single-hardware-thread host it degrades
// to the serial schedule plus round overhead — the JSON records
// hardware_threads so the trajectory is interpretable.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "overhead/model.hpp"
#include "partition/spa.hpp"
#include "rt/generator.hpp"
#include "sim/engine.hpp"
#include "trace/gantt.hpp"
#include "util/json_writer.hpp"

namespace {

using namespace sps;

partition::Partition MakeWorkload(unsigned cores, std::size_t tasks,
                                  double norm_util, std::uint64_t seed) {
  rt::GeneratorConfig gen;
  gen.num_tasks = tasks;
  gen.total_utilization = norm_util * cores;
  rt::Rng rng(seed);
  const rt::TaskSet ts = rt::GenerateTaskSet(gen, rng);
  partition::SpaConfig cfg;
  cfg.num_cores = cores;
  cfg.model = overhead::OverheadModel::PaperCoreI7();
  cfg.preassign_heavy = true;
  auto pr = partition::SpaPartition(ts, cfg);
  if (!pr.success) {
    std::fprintf(stderr, "workload (m=%u, n=%zu) rejected: %s\n", cores,
                 tasks, pr.failure_reason.c_str());
    std::abort();
  }
  return pr.partition;
}

struct Variant {
  const char* name;
  sim::SimConfig cfg;
};

std::vector<Variant> Variants(Time horizon) {
  sim::SimConfig base;
  base.horizon = horizon;
  base.overheads = overhead::OverheadModel::PaperCoreI7();

  Variant pr2{"serial_pr2_kernel", base};
  pr2.cfg.force_dynamic_event_queue = true;
  pr2.cfg.job_arena = false;

  Variant dyn{"serial_dynamic", base};
  dyn.cfg.force_dynamic_event_queue = true;

  Variant serial{"serial", base};

  Variant sharded{"sharded", base};
  sharded.cfg.shards = 0;  // one worker per hardware thread

  Variant traced{"serial_traced", base};
  traced.cfg.record_trace = true;
  traced.cfg.record_metrics = true;

  Variant sharded_traced{"sharded_traced", base};
  sharded_traced.cfg.shards = 0;
  sharded_traced.cfg.record_trace = true;
  sharded_traced.cfg.record_metrics = true;

  return {pr2, dyn, serial, sharded, traced, sharded_traced};
}

/// The fields the differential tests compare, flattened for equality.
bool SameResult(const sim::SimResult& a, const sim::SimResult& b) {
  if (a.total_misses != b.total_misses ||
      a.total_migrations != b.total_migrations ||
      a.total_preemptions != b.total_preemptions ||
      a.simulated != b.simulated || !(a.ready_ops == b.ready_ops) ||
      !(a.sleep_ops == b.sleep_ops) || !(a.event_ops == b.event_ops) ||
      a.tasks.size() != b.tasks.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    if (a.tasks[i].released != b.tasks[i].released ||
        a.tasks[i].completed != b.tasks[i].completed ||
        a.tasks[i].deadline_misses != b.tasks[i].deadline_misses ||
        a.tasks[i].max_response != b.tasks[i].max_response ||
        a.tasks[i].avg_response != b.tasks[i].avg_response) {
      return false;
    }
  }
  return true;
}

struct Measured {
  std::string name;
  double wall_s = 0.0;
  sim::SimResult result;
};

bool RunWorkload(util::JsonWriter& json, const char* label,
                 const partition::Partition& p, Time horizon, int reps) {
  std::vector<Measured> out;
  for (const Variant& v : Variants(horizon)) {
    Measured m;
    m.name = v.name;
    m.wall_s = 1e100;
    for (int rep = 0; rep < reps; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      sim::SimResult r = sim::Simulate(p, v.cfg);
      const auto t1 = std::chrono::steady_clock::now();
      m.wall_s = std::min(m.wall_s,
                          std::chrono::duration<double>(t1 - t0).count());
      m.result = std::move(r);
    }
    out.push_back(std::move(m));
  }

  // Bit-identity across every configuration (the serial default is the
  // specification).
  const Measured* serial = nullptr;
  for (const Measured& m : out) {
    if (m.name == "serial") serial = &m;
  }
  bool ok = true;
  for (const Measured& m : out) {
    if (!SameResult(serial->result, m.result)) {
      std::fprintf(stderr, "FAIL %s: %s deviates from serial\n", label,
                   m.name.c_str());
      ok = false;
    }
  }
  // Byte-identity of the canonical traces and equality of the metrics
  // across serial and sharded recording (DESIGN.md §10).
  const Measured* traced = nullptr;
  const Measured* sharded_traced = nullptr;
  for (const Measured& m : out) {
    if (m.name == "serial_traced") traced = &m;
    if (m.name == "sharded_traced") sharded_traced = &m;
  }
  if (traced != nullptr && sharded_traced != nullptr) {
    if (traced->result.trace_events.empty()) {
      std::fprintf(stderr, "FAIL %s: traced run recorded no events\n",
                   label);
      ok = false;
    }
    if (trace::ToCsv(traced->result.trace_events) !=
        trace::ToCsv(sharded_traced->result.trace_events)) {
      std::fprintf(stderr,
                   "FAIL %s: sharded trace deviates from serial trace\n",
                   label);
      ok = false;
    }
    if (!(traced->result.metrics == sharded_traced->result.metrics)) {
      std::fprintf(stderr,
                   "FAIL %s: sharded metrics deviate from serial\n", label);
      ok = false;
    }
  }

  for (const Measured& m : out) {
    json.BeginObject();
    json.Key("workload").Value(label);
    json.Key("variant").Value(m.name);
    json.Key("wall_s").Value(m.wall_s);
    json.Key("events_per_sec")
        .Value(static_cast<double>(m.result.event_ops.pops) / m.wall_s);
    json.Key("speedup_vs_serial").Value(serial->wall_s / m.wall_s);
    json.Key("misses").Value(m.result.total_misses);
    json.EndObject();
    std::printf("  %-18s %-18s %8.3f ms  %10.0f ev/s  x%.2f\n", label,
                m.name.c_str(), m.wall_s * 1e3,
                static_cast<double>(m.result.event_ops.pops) / m.wall_s,
                serial->wall_s / m.wall_s);
  }
  return ok;
}

}  // namespace

int main() {
  using sps::bench::EnvInt;
  const int reps = std::max(1, EnvInt("SPS_REPS", 5));
  const Time horizon = Millis(std::max(1, EnvInt("SPS_HORIZON_MS", 200)));

  util::JsonWriter json;
  json.BeginObject();
  json.Key("bench").Value("single_run");
  json.Key("hardware_threads")
      .Value(static_cast<std::uint64_t>(
          std::max(1u, std::thread::hardware_concurrency())));
  json.Key("reps").Value(static_cast<std::uint64_t>(reps));
  json.Key("runs").BeginArray();

  std::printf("single-run speed (best of %d reps, horizon %.0f ms)\n", reps,
              ToMillis(horizon));
  bool ok = RunWorkload(json, "m16", MakeWorkload(16, 96, 0.80, 777),
                        horizon, reps);
  ok = RunWorkload(json, "m64", MakeWorkload(64, 384, 0.75, 777), horizon,
                   reps) &&
       ok;

  json.EndArray();
  json.EndObject();
  if (!json.WriteFile("BENCH_single_run.json")) {
    std::fprintf(stderr, "could not write BENCH_single_run.json\n");
    return 1;
  }
  std::printf("wrote BENCH_single_run.json\n");
  return ok ? 0 : 1;
}
