// Ablation A3 — how tight is the overhead-aware analysis? For accepted
// FP-TS partitions, compare each task's analytic worst-case completion
// bound against the worst response actually OBSERVED in long simulations
// under three progressively nastier run-time conditions:
//
//   1. periodic arrivals, full WCET  (the analysis' critical instant),
//   2. sporadic arrivals, full WCET,
//   3. sporadic arrivals, uniform execution in [0.5, 1.0] x WCET.
//
// Sound analysis requires observed <= bound everywhere (enforced as a
// hard check here and in the test suite); the ratio distribution shows
// how much capacity the conservative terms (jitter chains, per-arrival
// CPMD, victim re-dispatch) leave on the table.
//
// Environment knobs: SPS_SETS (default 10), SPS_TASKS (default 12).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "exp/acceptance.hpp"
#include "overhead/model.hpp"
#include "partition/verify.hpp"
#include "rt/generator.hpp"
#include "sim/engine.hpp"

using namespace sps;

namespace {

int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : fallback;
}

struct Ratios {
  double max = 0.0;
  double sum = 0.0;
  int n = 0;
  int violations = 0;
};

void Observe(const partition::PartitionResult& pr,
             const partition::PartitionAnalysis& pa,
             const sim::SimConfig& cfg, Ratios& out) {
  const sim::SimResult r = Simulate(pr.partition, cfg);
  for (std::size_t i = 0; i < r.tasks.size(); ++i) {
    if (r.tasks[i].completed == 0) continue;
    const double bound =
        static_cast<double>(pa.verdicts[i].completion);
    const double seen = static_cast<double>(r.tasks[i].max_response);
    const double ratio = seen / bound;
    out.max = std::max(out.max, ratio);
    out.sum += ratio;
    ++out.n;
    if (seen > bound) ++out.violations;
  }
}

}  // namespace

int main() {
  const int sets = EnvInt("SPS_SETS", 10);
  const int tasks = EnvInt("SPS_TASKS", 12);
  const overhead::OverheadModel model = overhead::OverheadModel::PaperCoreI7();
  std::printf("=== A3: observed worst response vs analytic bound "
              "(FP-TS(SPA2), m=4, n=%d, %d sets x 5s sim) ===\n\n",
              tasks, sets);

  rt::GeneratorConfig gen;
  gen.num_tasks = static_cast<std::size_t>(tasks);
  gen.total_utilization = 0.9 * 4;
  rt::Rng rng(321);

  Ratios periodic, sporadic, sporadic_varying;
  int accepted = 0;
  for (int s = 0; s < sets; ++s) {
    const rt::TaskSet ts = rt::GenerateTaskSet(gen, rng);
    const partition::PartitionResult pr =
        exp::RunAlgorithm(exp::Algo::kSpa2, ts, 4, model);
    if (!pr.success) continue;
    ++accepted;
    const partition::PartitionAnalysis pa =
        AnalyzePartition(pr.partition, model);

    sim::SimConfig cfg;
    cfg.horizon = Millis(5000);
    cfg.overheads = model;
    Observe(pr, pa, cfg, periodic);

    cfg.arrivals.kind = sim::ArrivalModel::Kind::kSporadicUniformDelay;
    Observe(pr, pa, cfg, sporadic);

    cfg.exec.kind = sim::ExecModel::Kind::kUniform;
    Observe(pr, pa, cfg, sporadic_varying);
  }

  auto report = [](const char* name, const Ratios& r) {
    std::printf("%-34s observed/bound: mean %.3f, max %.3f, "
                "violations %d/%d\n",
                name, r.n > 0 ? r.sum / r.n : 0.0, r.max, r.violations,
                r.n);
  };
  std::printf("accepted %d/%d sets\n", accepted, sets);
  report("periodic + WCET (critical instant)", periodic);
  report("sporadic + WCET", sporadic);
  report("sporadic + varying execution", sporadic_varying);
  std::printf("\nShape check: zero violations (soundness); the critical-"
              "instant scenario comes closest to the bound; relaxing "
              "arrivals/execution widens the safety margin.\n");
  return (periodic.violations + sporadic.violations +
          sporadic_varying.violations) == 0
             ? 0
             : 1;
}
