// Ablation A4 — the queue-size dimension of Table 1. The paper measures
// its overheads at N = 4 and N = 64 because queue operations are
// O(log N): delta grows from 3.3 to 4.6 us and theta from 3.3 to 5.8 us.
// Does that growth matter for schedulability?
//
// We sweep the number of tasks per set (which drives per-core queue
// sizes) and compare acceptance under
//   (a) the N-aware model (costs interpolated at each core's actual N),
//   (b) a model frozen at the N=4 costs,
//   (c) a model frozen at the N=64 costs (pessimistic for small systems).
//
// Expected shape: the three columns are nearly identical at every n —
// the log-N growth of a few microseconds is immaterial against
// millisecond periods, reinforcing the paper's conclusion that the
// semi-partitioned machinery is cheap at any realistic queue size.
//
// Environment knobs: SPS_SETS (default 50).

#include <cstdio>
#include <cstdlib>

#include "exp/acceptance.hpp"
#include "overhead/model.hpp"

using namespace sps;

namespace {

int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : fallback;
}

/// Freeze an OpCost at one anchor (flat in N).
overhead::OpCost Flat(Time v) { return overhead::OpCost{v, v}; }

overhead::OverheadModel FrozenAt(bool n64) {
  overhead::OverheadModel m = overhead::OverheadModel::PaperCoreI7();
  auto freeze = [&](overhead::OpCost& c) {
    c = Flat(n64 ? c.at_n64 : c.at_n4);
  };
  freeze(m.ready_add_local);
  freeze(m.ready_add_remote);
  freeze(m.ready_del_local);
  freeze(m.sleep_add_local);
  freeze(m.sleep_add_remote);
  freeze(m.sleep_del_local);
  return m;
}

double Weighted(const overhead::OverheadModel& model, std::size_t tasks,
                int sets) {
  exp::AcceptanceConfig cfg;
  cfg.num_cores = 4;
  cfg.num_tasks = tasks;
  cfg.norm_util_points = {0.85, 0.90, 0.925, 0.95};
  cfg.sets_per_point = sets;
  cfg.model = model;
  cfg.algorithms = {exp::Algo::kSpa2};
  const auto res = exp::RunAcceptance(cfg);
  return res.WeightedAcceptance()[0];
}

}  // namespace

int main() {
  const int sets = EnvInt("SPS_SETS", 50);
  std::printf("=== A4: does the O(log N) queue-cost growth matter? "
              "(FP-TS(SPA2), m=4, util band 0.85-0.95, %d sets/point) "
              "===\n\n",
              sets);
  std::printf("%8s | %12s %12s %12s\n", "n tasks", "N-aware",
              "frozen@N=4", "frozen@N=64");
  for (const std::size_t n : {8u, 16u, 32u, 64u}) {
    const double aware =
        Weighted(overhead::OverheadModel::PaperCoreI7(), n, sets);
    const double small = Weighted(FrozenAt(false), n, sets);
    const double big = Weighted(FrozenAt(true), n, sets);
    std::printf("%8zu | %12.3f %12.3f %12.3f\n", n, aware, small, big);
  }
  std::printf("\nShape check: columns within a few points of each other "
              "at every n — Table 1's delta/theta growth from N=4 to N=64 "
              "(3.3->4.6us, 3.3->5.8us) is schedulability-irrelevant at "
              "millisecond periods.\n");
  return 0;
}
