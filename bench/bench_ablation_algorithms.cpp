// Ablation A2 (DESIGN.md §6) — algorithmic design choices of the
// partitioning layer, all at the paper's m=4 with measured overheads:
//
//   * admission test inside the bin packers: Liu&Layland vs hyperbolic vs
//     exact RTA (how much acceptance the cheap closed-form tests cost);
//   * SPA1 vs SPA2 (heavy-task pre-assignment);
//   * split-subtask priority: elevated vs native RM;
//   * fill mode: exact-RTA first-fit-with-splitting vs the literal
//     Liu&Layland threshold fill of the RTAS'10 proofs.
//
// Environment knobs: SPS_SETS (default 25), SPS_TASKS (default 16).

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <vector>

#include "overhead/model.hpp"
#include "partition/binpack.hpp"
#include "partition/spa.hpp"
#include "rt/generator.hpp"

using namespace sps;

namespace {

int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : fallback;
}

using Runner = std::function<partition::PartitionResult(const rt::TaskSet&)>;

void Sweep(const char* title, const std::vector<std::pair<const char*, Runner>>&
                                  algos,
           int sets, int tasks) {
  std::printf("--- %s ---\n%10s", title, "norm.util");
  for (const auto& [name, fn] : algos) std::printf(" %16s", name);
  std::printf("\n");
  rt::GeneratorConfig gen;
  gen.num_tasks = static_cast<std::size_t>(tasks);
  for (const double nu : {0.70, 0.80, 0.85, 0.90, 0.95, 1.00}) {
    gen.total_utilization = nu * 4;
    std::vector<int> wins(algos.size(), 0);
    rt::Rng rng(static_cast<std::uint64_t>(nu * 1e6) + 17);
    for (int s = 0; s < sets; ++s) {
      const rt::TaskSet ts = rt::GenerateTaskSet(gen, rng);
      for (std::size_t a = 0; a < algos.size(); ++a) {
        if (algos[a].second(ts).success) ++wins[a];
      }
    }
    std::printf("%10.2f", nu);
    for (const int w : wins) {
      std::printf(" %16.3f", static_cast<double>(w) / sets);
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  const int sets = EnvInt("SPS_SETS", 50);
  const int tasks = EnvInt("SPS_TASKS", 16);
  const overhead::OverheadModel m = overhead::OverheadModel::PaperCoreI7();
  std::printf("=== Ablations: partitioning design choices (m=4, n=%d, %d "
              "sets/point, paper overheads) ===\n\n",
              tasks, sets);

  auto binpack = [&m](partition::FitPolicy p,
                      partition::AdmissionTest t) -> Runner {
    return [p, t, &m](const rt::TaskSet& ts) {
      partition::BinPackConfig cfg;
      cfg.num_cores = 4;
      cfg.admission = t;
      cfg.model = m;
      return partition::BinPackDecreasing(ts, p, cfg);
    };
  };
  auto spa = [&m](bool heavy, partition::SplitPriorityMode mode,
                  partition::FillMode fill) -> Runner {
    return [=, &m](const rt::TaskSet& ts) {
      partition::SpaConfig cfg;
      cfg.num_cores = 4;
      cfg.model = m;
      cfg.preassign_heavy = heavy;
      cfg.split_mode = mode;
      cfg.fill = fill;
      return partition::SpaPartition(ts, cfg);
    };
  };

  using partition::AdmissionTest;
  using partition::FillMode;
  using partition::FitPolicy;
  using partition::SplitPriorityMode;

  Sweep("A2a: admission test inside FFD",
        {{"FFD/L&L", binpack(FitPolicy::kFirstFit, AdmissionTest::kLiuLayland)},
         {"FFD/hyperbolic",
          binpack(FitPolicy::kFirstFit, AdmissionTest::kHyperbolic)},
         {"FFD/exact-RTA", binpack(FitPolicy::kFirstFit, AdmissionTest::kRta)}},
        sets, tasks);

  Sweep("A2b: fit policy under exact RTA",
        {{"FFD", binpack(FitPolicy::kFirstFit, AdmissionTest::kRta)},
         {"BFD", binpack(FitPolicy::kBestFit, AdmissionTest::kRta)},
         {"WFD", binpack(FitPolicy::kWorstFit, AdmissionTest::kRta)},
         {"NFD", binpack(FitPolicy::kNextFit, AdmissionTest::kRta)}},
        sets, tasks);

  Sweep("A2c: SPA1 vs SPA2 (heavy pre-assignment)",
        {{"FP-TS(SPA1)",
          spa(false, SplitPriorityMode::kElevated, FillMode::kExactRta)},
         {"FP-TS(SPA2)",
          spa(true, SplitPriorityMode::kElevated, FillMode::kExactRta)}},
        sets, tasks);

  Sweep("A2d: split-subtask priority mode",
        {{"elevated",
          spa(true, SplitPriorityMode::kElevated, FillMode::kExactRta)},
         {"native-RM",
          spa(true, SplitPriorityMode::kNative, FillMode::kExactRta)}},
        sets, tasks);

  Sweep("A2e: fill mode (exact RTA vs literal L&L threshold fill)",
        {{"exact-RTA",
          spa(true, SplitPriorityMode::kElevated, FillMode::kExactRta)},
         {"L&L-fill",
          spa(true, SplitPriorityMode::kElevated,
              FillMode::kLiuLaylandFill)}},
        sets, tasks);

  std::printf("Shape check: exact RTA admission dominates hyperbolic "
              "dominates L&L; SPA2 >= SPA1; elevated >= native; exact-RTA "
              "fill far above the ~0.7 ceiling of the literal L&L "
              "threshold fill.\n");
  return 0;
}
