// Extension bench — the EDF side of the paper's §2 remark that the
// scheduler "can be easily extended to support a wide range of
// semi-partitioned algorithms based on both fixed-priority and EDF
// scheduling". Acceptance-ratio comparison, all under the measured
// overhead model:
//
//   partitioned:       FFD (RM)      vs  EDF-FFD
//   semi-partitioned:  FP-TS (SPA2)  vs  EDF-WM
//
// Expected shape: EDF variants dominate their fixed-priority twins (cores
// fill to ~100% instead of the RM ceiling), the semi-partitioned variant
// dominates the partitioned one within each policy, and EDF-WM is the
// overall winner — consistent with the Kato-line results the paper cites.
//
// Environment knobs: SPS_SETS (default 50), SPS_TASKS (default 16).

#include <cstdio>
#include <cstdlib>

#include "overhead/model.hpp"
#include "partition/binpack.hpp"
#include "partition/edf_wm.hpp"
#include "partition/spa.hpp"
#include "rt/generator.hpp"

using namespace sps;

namespace {

int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : fallback;
}

}  // namespace

int main() {
  const int sets = EnvInt("SPS_SETS", 50);
  const int tasks = EnvInt("SPS_TASKS", 16);
  const overhead::OverheadModel m = overhead::OverheadModel::PaperCoreI7();
  std::printf("=== Extension: fixed-priority vs EDF, partitioned vs "
              "semi-partitioned (m=4, n=%d, %d sets/point, paper "
              "overheads) ===\n\n",
              tasks, sets);
  std::printf("%10s %10s %10s %12s %10s\n", "norm.util", "FFD(RM)",
              "FP-TS", "EDF-FFD", "EDF-WM");

  rt::GeneratorConfig gen;
  gen.num_tasks = static_cast<std::size_t>(tasks);
  for (const double nu :
       {0.70, 0.80, 0.85, 0.90, 0.925, 0.95, 0.975, 1.00}) {
    gen.total_utilization = nu * 4;
    int ffd = 0, spa = 0, edf_ffd = 0, edf_wm = 0;
    rt::Rng rng(static_cast<std::uint64_t>(nu * 1e6) + 2011);
    for (int s = 0; s < sets; ++s) {
      const rt::TaskSet ts = rt::GenerateTaskSet(gen, rng);
      partition::BinPackConfig bp;
      bp.num_cores = 4;
      bp.admission = partition::AdmissionTest::kRta;
      bp.model = m;
      if (partition::Ffd(ts, bp).success) ++ffd;
      partition::SpaConfig spa_cfg;
      spa_cfg.num_cores = 4;
      spa_cfg.model = m;
      spa_cfg.preassign_heavy = true;
      if (partition::SpaPartition(ts, spa_cfg).success) ++spa;
      partition::EdfPartitionConfig ecfg;
      ecfg.num_cores = 4;
      ecfg.model = m;
      if (partition::EdfBinPack(ts, partition::FitPolicy::kFirstFit, ecfg)
              .success) {
        ++edf_ffd;
      }
      if (partition::EdfWm(ts, ecfg).success) ++edf_wm;
    }
    std::printf("%10.3f %10.3f %10.3f %12.3f %10.3f\n", nu,
                static_cast<double>(ffd) / sets,
                static_cast<double>(spa) / sets,
                static_cast<double>(edf_ffd) / sets,
                static_cast<double>(edf_wm) / sets);
  }
  std::printf("\nShape check: within each policy, semi-partitioned >= "
              "partitioned; EDF columns >= their RM counterparts; EDF-WM "
              "highest overall.\n");
  return 0;
}
