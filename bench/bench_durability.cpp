// E10 — durable online service (DESIGN.md §14): what does carrying the
// write-ahead journal + periodic checkpoints cost on the calm path, and
// does crash recovery actually reproduce the uninterrupted run?
//
//   1) CALM-PATH OVERHEAD: a 600-admit stream on m=8 replayed three ways:
//        - "plain":         durability off — the PR-7 path, the
//                           reference variant.
//        - "durable":       journal every request + checkpoint every 4th
//                           epoch, fsync off (crash-consistent, not
//                           power-durable — the documented calm-path
//                           configuration). GATED in-bench: best-of-reps
//                           wall must stay within 5% of "plain", and the
//                           CI regression check re-gates the committed
//                           ratio two-sided.
//        - "durable-fsync": fsync=every-epoch, informational — the
//                           power-durability premium is the page-cache
//                           flush, not the journaling.
//      The durable replay's DECISIONS must equal the plain replay's
//      exactly (epochs, counters, final partition) — durability is an
//      observer, never a participant.
//
//   2) RECOVERY DIFFERENTIAL: the durable replay is halted mid-service
//      (the in-process analogue of the CI lane's real SIGKILL), then
//      recovered from its artifacts; the stitched run must be
//      decision-identical to the never-crashed one. The recovered-tail
//      wall lands in the JSON as "recover" (informational: it re-runs
//      only the tail, so its ratio is machine- and crash-point-shaped).
//
// Wall times are best-of-SPS_REPS (min 5: a 5% gate needs the noise
// floor down); results land in BENCH_durability.json.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "online/controller.hpp"
#include "online/workload_stream.hpp"
#include "util/json_writer.hpp"

namespace {

using namespace sps;

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr unsigned kCores = 8;
constexpr double kOverheadBudget = 0.05;

online::WorkloadStream BenchStream() {
  online::StreamConfig cfg;
  cfg.num_admits = 600;
  cfg.leave_fraction = 0.5;
  cfg.soft_fraction = 0.3;
  cfg.seed = 20110814;
  return online::GenerateStream(cfg);
}

online::ReplayConfig BaseConfig() {
  online::ReplayConfig cfg;
  cfg.controller.admission.num_cores = kCores;
  cfg.controller.unsplit_on_leave = true;
  cfg.epoch = Millis(500);
  cfg.drain_epochs = 2;
  return cfg;
}

/// The durability knobs of the gated variant (fsync off; the journal
/// still survives a process crash — the page cache outlives it).
online::DurabilityConfig DurableKnobs(const std::string& dir) {
  online::DurabilityConfig d;
  d.dir = dir;
  d.checkpoint_every = 4;
  d.fsync = online::FsyncPolicy::kOff;
  return d;
}

/// Decision identity between two replays: everything except wall time
/// and the cache-dependent memo counters (DESIGN.md §12).
bool SameDecisions(const online::ReplayResult& a,
                   const online::ReplayResult& b, const char* what) {
  const bool same =
      a.epochs == b.epochs && a.admits == b.admits &&
      a.rejects == b.rejects && a.leaves == b.leaves &&
      a.churn == b.churn && a.overload == b.overload &&
      a.shed_outstanding == b.shed_outstanding &&
      a.admission.util_rejects == b.admission.util_rejects &&
      a.admission.density_accepts == b.admission.density_accepts &&
      a.admission.full_tests == b.admission.full_tests &&
      a.final_partition.summary() == b.final_partition.summary();
  if (!same) {
    std::fprintf(stderr, "FAIL durability: %s diverges from the plain "
                         "replay\n",
                 what);
  }
  return same;
}

}  // namespace

int main() {
  using sps::bench::EnvInt;
  const int reps = std::max(5, EnvInt("SPS_REPS", 5));
  namespace fs = std::filesystem;

  util::JsonWriter json;
  json.BeginObject();
  json.Key("bench").Value("durability");
  json.Key("hardware_threads")
      .Value(static_cast<std::uint64_t>(
          std::max(1u, std::thread::hardware_concurrency())));
  json.Key("reps").Value(static_cast<std::uint64_t>(reps));
  json.Key("runs").BeginArray();

  bool ok = true;
  const online::WorkloadStream stream = BenchStream();
  const std::string dir = fs::temp_directory_path() / "sps_bench_dur";

  // ---- 1) calm-path overhead ----------------------------------------------
  const online::ReplayConfig plain_cfg = BaseConfig();
  online::ReplayConfig durable_cfg = BaseConfig();
  durable_cfg.durability = DurableKnobs(dir);
  online::ReplayConfig fsync_cfg = durable_cfg;
  fsync_cfg.durability.fsync = online::FsyncPolicy::kEveryEpoch;

  // Interleave the variants inside each rep so frequency scaling and
  // cache state perturb them alike; keep the best wall of each.
  double plain_wall = 1e100, durable_wall = 1e100, fsync_wall = 1e100;
  online::ReplayResult plain_res, durable_res;
  for (int rep = 0; rep < reps; ++rep) {
    double t0 = Now();
    plain_res = online::ReplayStream(stream, plain_cfg);
    plain_wall = std::min(plain_wall, Now() - t0);

    fs::remove_all(dir);
    t0 = Now();
    durable_res = online::ReplayStream(stream, durable_cfg);
    durable_wall = std::min(durable_wall, Now() - t0);

    fs::remove_all(dir);
    t0 = Now();
    const online::ReplayResult fr = online::ReplayStream(stream, fsync_cfg);
    fsync_wall = std::min(fsync_wall, Now() - t0);
    if (!fr.durability_error.ok() || !durable_res.durability_error.ok()) {
      std::fprintf(stderr, "FAIL durability: durable replay errored: %s\n",
                   (!fr.durability_error.ok() ? fr : durable_res)
                       .durability_error.message.c_str());
      return 1;
    }
  }

  struct Row {
    const char* variant;
    double wall;
  };
  const Row rows[] = {{"plain", plain_wall},       // reference first
                      {"durable", durable_wall},
                      {"durable-fsync", fsync_wall}};
  std::printf("calm path: %zu requests on m=%u, checkpoint every 4 epochs "
              "(best of %d)\n",
              stream.size(), kCores, reps);
  for (const Row& r : rows) {
    json.BeginObject();
    json.Key("workload").Value("calm_path");
    json.Key("variant").Value(r.variant);
    json.Key("wall_s").Value(r.wall);
    json.EndObject();
    std::printf("  %-14s %8.2f ms  (x%.3f of plain)\n", r.variant,
                r.wall * 1e3, r.wall / plain_wall);
  }

  // Gate: the journaled, checkpointed, fsync-less replay stays within 5%.
  const double overhead = durable_wall / plain_wall - 1.0;
  if (overhead > kOverheadBudget) {
    std::fprintf(stderr, "FAIL durability: calm-path overhead %.1f%% "
                         "exceeds the %.0f%% budget\n",
                 100.0 * overhead, 100.0 * kOverheadBudget);
    ok = false;
  }
  // And it must never have CHANGED anything.
  ok = SameDecisions(plain_res, durable_res, "durable replay") && ok;

  // ---- 2) recovery differential -------------------------------------------
  fs::remove_all(dir);
  online::ReplayConfig crash_cfg = durable_cfg;
  crash_cfg.durability.halt_after_appends =
      static_cast<std::uint32_t>(stream.size() / 2);
  const online::ReplayResult halted = online::ReplayStream(stream, crash_cfg);
  if (!halted.durability_error.ok() || !halted.recovery.halted_by_injection) {
    std::fprintf(stderr, "FAIL durability: halt injection did not fire\n");
    ok = false;
  }
  online::ReplayConfig recover_cfg = durable_cfg;
  recover_cfg.durability.recover = true;
  const double t0 = Now();
  const online::ReplayResult recovered =
      online::ReplayStream(stream, recover_cfg);
  const double recover_wall = Now() - t0;
  if (!recovered.durability_error.ok()) {
    std::fprintf(stderr, "FAIL durability: recovery errored: %s\n",
                 recovered.durability_error.message.c_str());
    ok = false;
  } else {
    ok = SameDecisions(plain_res, recovered, "recovered replay") && ok;
    std::printf("recovery: checkpoint epoch %llu + %llu journal records "
                "-> identical run in %.2f ms\n",
                static_cast<unsigned long long>(
                    recovered.recovery.checkpoint_epoch),
                static_cast<unsigned long long>(
                    recovered.recovery.journal_records),
                recover_wall * 1e3);
    json.BeginObject();
    json.Key("workload").Value("recovery");
    json.Key("variant").Value("recover");
    json.Key("wall_s").Value(recover_wall);
    json.Key("resume_seq").Value(recovered.recovery.resume_seq);
    json.Key("journal_records").Value(recovered.recovery.journal_records);
    json.EndObject();
  }
  fs::remove_all(dir);

  json.EndArray();
  json.EndObject();
  std::string err;
  if (!util::WriteTextFile("BENCH_durability.json", json.str(), &err)) {
    std::fprintf(stderr, "%s\n", err.c_str());
    return 1;
  }
  std::printf("wrote BENCH_durability.json\n");
  return ok ? 0 : 1;
}
