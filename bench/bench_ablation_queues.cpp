// Ablation A1 (DESIGN.md §6) — ready-queue and sleep-queue data-structure
// choices. The paper picked a binomial heap (ready) and a red-black tree
// (sleep); this bench compares them against a pairing heap and a sorted
// vector at the paper's queue sizes, using google-benchmark steady-state
// timing of the scheduler's canonical operation pairs.
//
// Expected outcome: at N = 4..64 all structures are within small constant
// factors — the paper's design is not load-bearing on the container
// choice, the log-N costs stay in the microsecond band regardless.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <random>
#include <vector>

#include "containers/binomial_heap.hpp"
#include "containers/pairing_heap.hpp"
#include "containers/rb_tree.hpp"
#include "containers/sorted_vector_queue.hpp"

namespace {

using namespace sps::containers;

struct Payload {
  std::uint64_t prio;
  std::uint64_t data[6];
  bool operator<(const Payload& o) const { return prio < o.prio; }
  bool operator==(const Payload& o) const { return prio == o.prio; }
};

template <typename Heap>
void ReadyPairBench(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::mt19937_64 rng(5);
  Heap heap;
  for (std::size_t i = 0; i < n; ++i) heap.push(Payload{rng(), {}});
  for (auto _ : state) {
    Payload p = heap.pop();
    p.prio += 1000;  // re-arm like a next-period job
    heap.push(p);
  }
}

void BM_Ready_BinomialHeap(benchmark::State& s) {
  ReadyPairBench<BinomialHeap<Payload>>(s);
}
void BM_Ready_PairingHeap(benchmark::State& s) {
  ReadyPairBench<PairingHeap<Payload>>(s);
}
void BM_Ready_StdPriorityQueue(benchmark::State& s) {
  // The std baseline: vector-backed binary heap (no stable handles, so a
  // real scheduler could not use it for erase; speed reference only).
  const auto n = static_cast<std::size_t>(s.range(0));
  std::mt19937_64 rng(5);
  std::vector<Payload> v;
  auto cmp = [](const Payload& a, const Payload& b) { return b < a; };
  for (std::size_t i = 0; i < n; ++i) v.push_back(Payload{rng(), {}});
  std::make_heap(v.begin(), v.end(), cmp);
  for (auto _ : s) {
    std::pop_heap(v.begin(), v.end(), cmp);
    v.back().prio += 1000;
    std::push_heap(v.begin(), v.end(), cmp);
  }
}
BENCHMARK(BM_Ready_BinomialHeap)->Arg(4)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_Ready_PairingHeap)->Arg(4)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_Ready_StdPriorityQueue)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_Sleep_RbTree(benchmark::State& s) {
  const auto n = static_cast<std::size_t>(s.range(0));
  std::mt19937_64 rng(9);
  RbTree<std::uint64_t, Payload> tree;
  for (std::size_t i = 0; i < n; ++i) tree.insert(rng(), Payload{i, {}});
  for (auto _ : s) {
    auto [k, v] = tree.pop_min();
    tree.insert(k + 100000, v);  // wake and re-sleep one period later
  }
}
void BM_Sleep_SortedVector(benchmark::State& s) {
  const auto n = static_cast<std::size_t>(s.range(0));
  std::mt19937_64 rng(9);
  SortedVectorQueue<std::uint64_t, Payload> q;
  for (std::size_t i = 0; i < n; ++i) q.insert(rng(), Payload{i, {}});
  for (auto _ : s) {
    auto [k, v] = q.pop_min();
    q.insert(k + 100000, v);
  }
}
BENCHMARK(BM_Sleep_RbTree)->Arg(4)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_Sleep_SortedVector)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
