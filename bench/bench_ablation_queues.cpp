// Ablation A1 (DESIGN.md §6) — ready-queue and sleep-queue data-structure
// choices. The paper picked a binomial heap (ready) and a red-black tree
// (sleep); this bench compares them against a pairing heap and a sorted
// vector at the paper's queue sizes.
//
// Two tiers of measurement, both through the SAME queue concept
// (containers/queue_traits.hpp) the scheduler uses:
//
//   1. single-operation pairs (google-benchmark steady state) — the
//      microscopic Table-1 view;
//   2. WHOLE SIMULATIONS per backend: the partitioned engine runs a
//      fixed SPA2 partition end-to-end with each ready/sleep backend
//      (SimConfig::ready_backend / sleep_backend), reporting simulated
//      time and queue ops per wall second. This is the macroscopic view
//      the container-only benches could never give: containers, policy,
//      and engine composing through one kernel.
//
// Expected outcome: at N = 4..64 all structures are within small constant
// factors — the paper's design is not load-bearing on the container
// choice, the log-N costs stay in the microsecond band regardless.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <vector>

#include "containers/queue_traits.hpp"
#include "overhead/model.hpp"
#include "partition/spa.hpp"
#include "rt/generator.hpp"
#include "sim/engine.hpp"

namespace {

using namespace sps;
using namespace sps::containers;

struct Payload {
  std::uint64_t data[6];
};

// ---- Tier 1: single-operation pairs through the concept -------------------

template <typename Queue>
void ReadyPairBench(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::mt19937_64 rng(5);
  Queue q;
  for (std::size_t i = 0; i < n; ++i) q.push(rng(), Payload{});
  for (auto _ : state) {
    auto [key, v] = q.pop_min();
    q.push(key + 1000, v);  // re-arm like a next-period job
  }
  // Timed work only (one pop + one push per iteration); the N setup
  // pushes also sit in counters() and must not inflate items/s.
  state.SetItemsProcessed(2 * state.iterations());
}

void BM_Ready_BinomialHeap(benchmark::State& s) {
  ReadyPairBench<BinomialHeapQueue<std::uint64_t, Payload>>(s);
}
void BM_Ready_PairingHeap(benchmark::State& s) {
  ReadyPairBench<PairingHeapQueue<std::uint64_t, Payload>>(s);
}
void BM_Ready_RbTree(benchmark::State& s) {
  ReadyPairBench<RbTreeQueue<std::uint64_t, Payload>>(s);
}
void BM_Ready_SortedVector(benchmark::State& s) {
  ReadyPairBench<SortedVectorStableQueue<std::uint64_t, Payload>>(s);
}
void BM_Ready_StdPriorityQueue(benchmark::State& s) {
  // The std baseline: vector-backed binary heap (no stable handles, so a
  // real scheduler could not use it for erase; speed reference only).
  const auto n = static_cast<std::size_t>(s.range(0));
  std::mt19937_64 rng(5);
  using Item = std::pair<std::uint64_t, Payload>;
  std::vector<Item> v;
  auto cmp = [](const Item& a, const Item& b) { return b.first < a.first; };
  for (std::size_t i = 0; i < n; ++i) v.push_back({rng(), Payload{}});
  std::make_heap(v.begin(), v.end(), cmp);
  for (auto _ : s) {
    std::pop_heap(v.begin(), v.end(), cmp);
    v.back().first += 1000;
    std::push_heap(v.begin(), v.end(), cmp);
  }
}
BENCHMARK(BM_Ready_BinomialHeap)->Arg(4)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_Ready_PairingHeap)->Arg(4)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_Ready_RbTree)->Arg(4)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_Ready_SortedVector)->Arg(4)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_Ready_StdPriorityQueue)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

// The sleep-queue pattern differs from the ready pattern only in key
// distribution (monotonically advancing wake-ups) — same concept calls.
template <typename Queue>
void SleepPairBench(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::mt19937_64 rng(9);
  Queue q;
  for (std::size_t i = 0; i < n; ++i) q.push(rng(), Payload{});
  for (auto _ : state) {
    auto [k, v] = q.pop_min();
    q.push(k + 100000, v);  // wake and re-sleep one period later
  }
  state.SetItemsProcessed(2 * state.iterations());
}

void BM_Sleep_RbTree(benchmark::State& s) {
  SleepPairBench<RbTreeQueue<std::uint64_t, Payload>>(s);
}
void BM_Sleep_SortedVector(benchmark::State& s) {
  SleepPairBench<SortedVectorStableQueue<std::uint64_t, Payload>>(s);
}
void BM_Sleep_BinomialHeap(benchmark::State& s) {
  SleepPairBench<BinomialHeapQueue<std::uint64_t, Payload>>(s);
}
void BM_Sleep_PairingHeap(benchmark::State& s) {
  SleepPairBench<PairingHeapQueue<std::uint64_t, Payload>>(s);
}
BENCHMARK(BM_Sleep_RbTree)->Arg(4)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_Sleep_SortedVector)->Arg(4)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_Sleep_BinomialHeap)->Arg(4)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_Sleep_PairingHeap)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

// ---- Tier 2: whole simulations per backend --------------------------------

/// A fixed, reproducible workload: 24 tasks at 85% of 4 cores, SPA2
/// partition (split tasks included), paper overheads, 200 ms horizon.
const partition::Partition& AblationPartition() {
  static const partition::Partition p = [] {
    rt::GeneratorConfig gen;
    gen.num_tasks = 24;
    gen.total_utilization = 0.85 * 4;
    rt::Rng rng(12345);
    const rt::TaskSet ts = rt::GenerateTaskSet(gen, rng);
    partition::SpaConfig cfg;
    cfg.num_cores = 4;
    cfg.model = overhead::OverheadModel::PaperCoreI7();
    cfg.preassign_heavy = true;
    auto pr = partition::SpaPartition(ts, cfg);
    if (!pr.success) {
      // pr.partition is meaningless on rejection; fail loudly rather
      // than benchmark garbage.
      std::fprintf(stderr, "ablation workload rejected by SPA2: %s\n",
                   pr.failure_reason.c_str());
      std::abort();
    }
    return pr.partition;
  }();
  return p;
}

void SimEndToEnd(benchmark::State& state, QueueBackend ready,
                 QueueBackend sleep) {
  const partition::Partition& p = AblationPartition();
  sim::SimConfig cfg;
  cfg.horizon = Millis(200);
  cfg.overheads = overhead::OverheadModel::PaperCoreI7();
  cfg.ready_backend = ready;
  cfg.sleep_backend = sleep;
  std::uint64_t queue_ops = 0;
  Time simulated = 0;
  for (auto _ : state) {
    const sim::SimResult r = Simulate(p, cfg);
    benchmark::DoNotOptimize(r.total_misses);
    queue_ops += r.ready_ops.total() + r.sleep_ops.total();
    simulated += r.simulated;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(queue_ops));
  state.counters["sim_ms_per_iter"] = benchmark::Counter(
      ToMillis(simulated) / static_cast<double>(state.iterations()));
}

// Ready-queue sweep (sleep fixed at the paper's RB tree) and sleep-queue
// sweep (ready fixed at the paper's binomial heap). The all-paper
// baseline of the sleep sweep IS BM_Sim_Ready_Binomial — not registered
// twice.
void BM_Sim_Ready_Binomial(benchmark::State& s) {
  SimEndToEnd(s, QueueBackend::kBinomialHeap, QueueBackend::kRbTree);
}
void BM_Sim_Ready_Pairing(benchmark::State& s) {
  SimEndToEnd(s, QueueBackend::kPairingHeap, QueueBackend::kRbTree);
}
void BM_Sim_Ready_RbTree(benchmark::State& s) {
  SimEndToEnd(s, QueueBackend::kRbTree, QueueBackend::kRbTree);
}
void BM_Sim_Ready_SortedVector(benchmark::State& s) {
  SimEndToEnd(s, QueueBackend::kSortedVector, QueueBackend::kRbTree);
}
void BM_Sim_Sleep_SortedVector(benchmark::State& s) {
  SimEndToEnd(s, QueueBackend::kBinomialHeap, QueueBackend::kSortedVector);
}
void BM_Sim_Sleep_Binomial(benchmark::State& s) {
  SimEndToEnd(s, QueueBackend::kBinomialHeap, QueueBackend::kBinomialHeap);
}
void BM_Sim_Sleep_Pairing(benchmark::State& s) {
  SimEndToEnd(s, QueueBackend::kBinomialHeap, QueueBackend::kPairingHeap);
}
BENCHMARK(BM_Sim_Ready_Binomial);
BENCHMARK(BM_Sim_Ready_Pairing);
BENCHMARK(BM_Sim_Ready_RbTree);
BENCHMARK(BM_Sim_Ready_SortedVector);
BENCHMARK(BM_Sim_Sleep_SortedVector);
BENCHMARK(BM_Sim_Sleep_Binomial);
BENCHMARK(BM_Sim_Sleep_Pairing);

}  // namespace

BENCHMARK_MAIN();
