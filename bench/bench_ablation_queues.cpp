// Ablation A1 (DESIGN.md §6) — ready-queue and sleep-queue data-structure
// choices. The paper picked a binomial heap (ready) and a red-black tree
// (sleep); this bench compares them against a pairing heap and a sorted
// vector at the paper's queue sizes.
//
// Two tiers of measurement, both through the SAME queue concept
// (containers/queue_traits.hpp) the scheduler uses:
//
//   1. single-operation pairs (google-benchmark steady state) — the
//      microscopic Table-1 view;
//   2. WHOLE SIMULATIONS per backend: the partitioned engine runs a
//      fixed SPA2 partition end-to-end with each ready/sleep backend
//      (SimConfig::ready_backend / sleep_backend), reporting simulated
//      time and queue ops per wall second. This is the macroscopic view
//      the container-only benches could never give: containers, policy,
//      and engine composing through one kernel.
//
// Expected outcome: at N = 4..64 all structures are within small constant
// factors — the paper's design is not load-bearing on the container
// choice, the log-N costs stay in the microsecond band regardless.
//
// A third tier joined with the kernel's EventQueue slot: BM_SimLarge_*
// runs a 16-core partition end-to-end per EVENT-queue backend — the DES
// throughput hot path the ROADMAP flags at large core counts, where the
// bucketed calendar queue is the contender. After the google-benchmark
// pass, a batch sweep (sim/batch.hpp, SPS_JOBS workers) re-runs every
// role x backend combination once and writes BENCH_queues.json —
// wall-clock, dispatched events/sec, and per-backend op counts — so the
// perf trajectory is tracked across PRs.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <vector>

#include "bench_common.hpp"
#include "containers/queue_traits.hpp"
#include "overhead/model.hpp"
#include "partition/spa.hpp"
#include "rt/generator.hpp"
#include "sim/batch.hpp"
#include "sim/engine.hpp"
#include "util/json_writer.hpp"

namespace {

using namespace sps;
using namespace sps::containers;

struct Payload {
  std::uint64_t data[6];
};

// ---- Tier 1: single-operation pairs through the concept -------------------

template <typename Queue>
void ReadyPairBench(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::mt19937_64 rng(5);
  Queue q;
  for (std::size_t i = 0; i < n; ++i) q.push(rng(), Payload{});
  for (auto _ : state) {
    auto [key, v] = q.pop_min();
    q.push(key + 1000, v);  // re-arm like a next-period job
  }
  // Timed work only (one pop + one push per iteration); the N setup
  // pushes also sit in counters() and must not inflate items/s.
  state.SetItemsProcessed(2 * state.iterations());
}

void BM_Ready_BinomialHeap(benchmark::State& s) {
  ReadyPairBench<BinomialHeapQueue<std::uint64_t, Payload>>(s);
}
void BM_Ready_PairingHeap(benchmark::State& s) {
  ReadyPairBench<PairingHeapQueue<std::uint64_t, Payload>>(s);
}
void BM_Ready_RbTree(benchmark::State& s) {
  ReadyPairBench<RbTreeQueue<std::uint64_t, Payload>>(s);
}
void BM_Ready_SortedVector(benchmark::State& s) {
  ReadyPairBench<SortedVectorStableQueue<std::uint64_t, Payload>>(s);
}
void BM_Ready_StdPriorityQueue(benchmark::State& s) {
  // The std baseline: vector-backed binary heap (no stable handles, so a
  // real scheduler could not use it for erase; speed reference only).
  const auto n = static_cast<std::size_t>(s.range(0));
  std::mt19937_64 rng(5);
  using Item = std::pair<std::uint64_t, Payload>;
  std::vector<Item> v;
  auto cmp = [](const Item& a, const Item& b) { return b.first < a.first; };
  for (std::size_t i = 0; i < n; ++i) v.push_back({rng(), Payload{}});
  std::make_heap(v.begin(), v.end(), cmp);
  for (auto _ : s) {
    std::pop_heap(v.begin(), v.end(), cmp);
    v.back().first += 1000;
    std::push_heap(v.begin(), v.end(), cmp);
  }
}
BENCHMARK(BM_Ready_BinomialHeap)->Arg(4)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_Ready_PairingHeap)->Arg(4)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_Ready_RbTree)->Arg(4)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_Ready_SortedVector)->Arg(4)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_Ready_StdPriorityQueue)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

// The sleep-queue pattern differs from the ready pattern only in key
// distribution (monotonically advancing wake-ups) — same concept calls.
template <typename Queue>
void SleepPairBench(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::mt19937_64 rng(9);
  Queue q;
  for (std::size_t i = 0; i < n; ++i) q.push(rng(), Payload{});
  for (auto _ : state) {
    auto [k, v] = q.pop_min();
    q.push(k + 100000, v);  // wake and re-sleep one period later
  }
  state.SetItemsProcessed(2 * state.iterations());
}

void BM_Sleep_RbTree(benchmark::State& s) {
  SleepPairBench<RbTreeQueue<std::uint64_t, Payload>>(s);
}
void BM_Sleep_SortedVector(benchmark::State& s) {
  SleepPairBench<SortedVectorStableQueue<std::uint64_t, Payload>>(s);
}
void BM_Sleep_BinomialHeap(benchmark::State& s) {
  SleepPairBench<BinomialHeapQueue<std::uint64_t, Payload>>(s);
}
void BM_Sleep_PairingHeap(benchmark::State& s) {
  SleepPairBench<PairingHeapQueue<std::uint64_t, Payload>>(s);
}
BENCHMARK(BM_Sleep_RbTree)->Arg(4)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_Sleep_SortedVector)->Arg(4)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_Sleep_BinomialHeap)->Arg(4)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_Sleep_PairingHeap)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

// ---- Tier 2: whole simulations per backend --------------------------------

/// A fixed, reproducible SPA2 workload (split tasks included), paper
/// overheads. Fails loudly on rejection rather than benchmark garbage.
partition::Partition MakeAblationPartition(unsigned cores,
                                           std::size_t tasks,
                                           double norm_util,
                                           std::uint64_t seed) {
  rt::GeneratorConfig gen;
  gen.num_tasks = tasks;
  gen.total_utilization = norm_util * cores;
  rt::Rng rng(seed);
  const rt::TaskSet ts = rt::GenerateTaskSet(gen, rng);
  partition::SpaConfig cfg;
  cfg.num_cores = cores;
  cfg.model = overhead::OverheadModel::PaperCoreI7();
  cfg.preassign_heavy = true;
  auto pr = partition::SpaPartition(ts, cfg);
  if (!pr.success) {
    std::fprintf(stderr,
                 "ablation workload (m=%u, n=%zu) rejected by SPA2: %s\n",
                 cores, tasks, pr.failure_reason.c_str());
    std::abort();
  }
  return pr.partition;
}

/// The paper-scale workload: 24 tasks at 85% of 4 cores, 200 ms horizon.
const partition::Partition& AblationPartition() {
  static const partition::Partition p =
      MakeAblationPartition(4, 24, 0.85, 12345);
  return p;
}

/// The large-core-count workload for the EVENT-queue tier: 16 cores keep
/// ~4x the events in flight, which is where the event queue dominates.
const partition::Partition& LargeAblationPartition() {
  static const partition::Partition p =
      MakeAblationPartition(16, 96, 0.80, 777);
  return p;
}

/// 64 cores / 384 tasks: the event population where bucketed O(1)
/// calendar access should clear the O(log n) heaps (JSON sweep only —
/// too slow for a registered google-benchmark).
const partition::Partition& HugeAblationPartition() {
  static const partition::Partition p =
      MakeAblationPartition(64, 384, 0.75, 777);
  return p;
}

void SimWithConfig(benchmark::State& state, const partition::Partition& p,
                   const sim::SimConfig& cfg) {
  std::uint64_t queue_ops = 0;
  Time simulated = 0;
  for (auto _ : state) {
    const sim::SimResult r = Simulate(p, cfg);
    benchmark::DoNotOptimize(r.total_misses);
    queue_ops += r.ready_ops.total() + r.sleep_ops.total() +
                 r.event_ops.total();
    simulated += r.simulated;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(queue_ops));
  state.counters["sim_ms_per_iter"] = benchmark::Counter(
      ToMillis(simulated) / static_cast<double>(state.iterations()));
}

void SimEndToEnd(benchmark::State& state, QueueBackend ready,
                 QueueBackend sleep) {
  sim::SimConfig cfg;
  cfg.horizon = Millis(200);
  cfg.overheads = overhead::OverheadModel::PaperCoreI7();
  cfg.ready_backend = ready;
  cfg.sleep_backend = sleep;
  SimWithConfig(state, AblationPartition(), cfg);
}

void SimLargeWithEventBackend(benchmark::State& state, QueueBackend event) {
  sim::SimConfig cfg;
  cfg.horizon = Millis(200);
  cfg.overheads = overhead::OverheadModel::PaperCoreI7();
  cfg.event_backend = event;
  SimWithConfig(state, LargeAblationPartition(), cfg);
}

// Ready-queue sweep (sleep fixed at the paper's RB tree) and sleep-queue
// sweep (ready fixed at the paper's binomial heap). The all-paper
// baseline of the sleep sweep IS BM_Sim_Ready_Binomial — not registered
// twice.
void BM_Sim_Ready_Binomial(benchmark::State& s) {
  SimEndToEnd(s, QueueBackend::kBinomialHeap, QueueBackend::kRbTree);
}
void BM_Sim_Ready_Pairing(benchmark::State& s) {
  SimEndToEnd(s, QueueBackend::kPairingHeap, QueueBackend::kRbTree);
}
void BM_Sim_Ready_RbTree(benchmark::State& s) {
  SimEndToEnd(s, QueueBackend::kRbTree, QueueBackend::kRbTree);
}
void BM_Sim_Ready_SortedVector(benchmark::State& s) {
  SimEndToEnd(s, QueueBackend::kSortedVector, QueueBackend::kRbTree);
}
void BM_Sim_Sleep_SortedVector(benchmark::State& s) {
  SimEndToEnd(s, QueueBackend::kBinomialHeap, QueueBackend::kSortedVector);
}
void BM_Sim_Sleep_Binomial(benchmark::State& s) {
  SimEndToEnd(s, QueueBackend::kBinomialHeap, QueueBackend::kBinomialHeap);
}
void BM_Sim_Sleep_Pairing(benchmark::State& s) {
  SimEndToEnd(s, QueueBackend::kBinomialHeap, QueueBackend::kPairingHeap);
}
void BM_Sim_Ready_Calendar(benchmark::State& s) {
  SimEndToEnd(s, QueueBackend::kCalendar, QueueBackend::kRbTree);
}
void BM_Sim_Sleep_Calendar(benchmark::State& s) {
  SimEndToEnd(s, QueueBackend::kBinomialHeap, QueueBackend::kCalendar);
}
BENCHMARK(BM_Sim_Ready_Binomial);
BENCHMARK(BM_Sim_Ready_Pairing);
BENCHMARK(BM_Sim_Ready_RbTree);
BENCHMARK(BM_Sim_Ready_SortedVector);
BENCHMARK(BM_Sim_Ready_Calendar);
BENCHMARK(BM_Sim_Sleep_SortedVector);
BENCHMARK(BM_Sim_Sleep_Binomial);
BENCHMARK(BM_Sim_Sleep_Pairing);
BENCHMARK(BM_Sim_Sleep_Calendar);

// ---- Tier 3: the EVENT queue at the largest core count --------------------
// The acceptance headline: the calendar event queue vs the binomial-heap
// default on the 16-core workload.

void BM_SimLarge_Event_Binomial(benchmark::State& s) {
  SimLargeWithEventBackend(s, QueueBackend::kBinomialHeap);
}
void BM_SimLarge_Event_Pairing(benchmark::State& s) {
  SimLargeWithEventBackend(s, QueueBackend::kPairingHeap);
}
void BM_SimLarge_Event_RbTree(benchmark::State& s) {
  SimLargeWithEventBackend(s, QueueBackend::kRbTree);
}
void BM_SimLarge_Event_Calendar(benchmark::State& s) {
  SimLargeWithEventBackend(s, QueueBackend::kCalendar);
}
BENCHMARK(BM_SimLarge_Event_Binomial);
BENCHMARK(BM_SimLarge_Event_Pairing);
BENCHMARK(BM_SimLarge_Event_RbTree);
BENCHMARK(BM_SimLarge_Event_Calendar);

// ---- BENCH_queues.json: one batch sweep over every role x backend ---------

using sps::bench::EnvInt;

void AppendSweep(util::JsonWriter& json, const char* workload,
                 const partition::Partition& p,
                 const std::vector<sim::BatchVariant>& variants,
                 unsigned jobs) {
  // Best-of-reps wall time per variant: one-shot runs are too noisy to
  // track a perf trajectory across PRs.
  const int reps = std::max(1, EnvInt("SPS_REPS", 5));
  auto runs = sim::RunConfigSweep(p, variants, {.jobs = jobs});
  for (int rep = 1; rep < reps; ++rep) {
    const auto again = sim::RunConfigSweep(p, variants, {.jobs = jobs});
    for (std::size_t i = 0; i < runs.size(); ++i) {
      runs[i].wall_seconds =
          std::min(runs[i].wall_seconds, again[i].wall_seconds);
    }
  }
  for (const sim::BatchRun& run : runs) {
    json.BeginObject();
    json.Key("workload").Value(workload);
    json.Key("variant").Value(run.name);
    json.Key("wall_s").Value(run.wall_seconds);
    // Dispatched events per wall second — the DES throughput number.
    json.Key("events_per_sec")
        .Value(static_cast<double>(run.result.event_ops.pops) /
               run.wall_seconds);
    json.Key("ready_ops").Value(run.result.ready_ops.total());
    json.Key("sleep_ops").Value(run.result.sleep_ops.total());
    json.Key("event_ops").Value(run.result.event_ops.total());
    json.Key("misses").Value(run.result.total_misses);
    json.EndObject();
  }
}

void WriteQueuesJson() {
  // jobs=1 by default: per-variant wall times stay honest on a loaded
  // machine; raise SPS_JOBS to trade timing fidelity for speed.
  const auto jobs = static_cast<unsigned>(std::max(1, EnvInt("SPS_JOBS", 1)));
  sim::SimConfig base;
  base.horizon = Millis(200);
  base.overheads = overhead::OverheadModel::PaperCoreI7();

  util::JsonWriter json;
  json.BeginObject();
  json.Key("bench").Value("ablation_queues");
  json.Key("jobs").Value(jobs);
  json.Key("runs").BeginArray();
  for (const sim::QueueRole role :
       {sim::QueueRole::kReady, sim::QueueRole::kSleep,
        sim::QueueRole::kEvent}) {
    AppendSweep(json, "m4", AblationPartition(),
                sim::BackendVariants(base, role), jobs);
  }
  // The headline tier: event backends at the largest core counts.
  AppendSweep(json, "m16", LargeAblationPartition(),
              sim::BackendVariants(base, sim::QueueRole::kEvent), jobs);
  AppendSweep(json, "m64", HugeAblationPartition(),
              sim::BackendVariants(base, sim::QueueRole::kEvent), jobs);
  json.EndArray();
  json.EndObject();
  if (!json.WriteFile("BENCH_queues.json")) {
    std::fprintf(stderr, "could not write BENCH_queues.json\n");
    std::exit(1);
  }
  std::printf("wrote BENCH_queues.json\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  WriteQueuesJson();
  return 0;
}
