// E9 — overload resilience (DESIGN.md §13): what does the shed/degrade
// controller actually buy when a transient fault window hits a loaded
// system, and what does carrying the machinery cost when nothing is
// wrong?
//
//   1) TRANSIENT 1.3x WINDOW: m=4 cores at ~0.9 utilization each (8 hard
//      + 8 soft residents), a [500ms, 900ms) spike window inflating every
//      job to 1.3x C. Three replay variants land in the JSON:
//        - "nofault":        overload policies OFF, no fault — the PR-6
//                            replay path, the reference variant.
//        - "nofault-policy": ladder + hysteresis ON, no fault. Gated
//                            --two-sided in CI: the policy machinery must
//                            be free on the calm path, in BOTH directions.
//        - "faulted":        the spike window, policies ON, epoch
//                            validation ON.
//      The bench FAILS unless, across the faulted replay:
//        a) ZERO hard-task deadline misses in every validated epoch —
//           the simulator runs the spiky execution model inside the
//           window, so this is survival-by-simulation, not by analysis;
//        b) the controller sheds no more than the greedy oracle's
//           minimal soft set +10% (the oracle repacks from scratch,
//           dropping largest-utilization soft tasks until the inflated
//           set partitions);
//        c) >= 95% of shed tasks are re-admitted by the retry path
//           within the drain window (recovery, not just survival).
//
//   2) JOBS-INVARIANCE: fault-injected batches (spike + burst storm +
//      validation) replayed with jobs=1 vs jobs=8 must be bit-identical —
//      the DESIGN.md §8 determinism contract extended to the fault axis.
//
// Wall times are best-of-SPS_REPS; results land in BENCH_overload.json.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "online/controller.hpp"
#include "online/workload_stream.hpp"
#include "partition/edf_wm.hpp"
#include "rt/taskset.hpp"
#include "util/json_writer.hpp"

namespace {

using namespace sps;

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr unsigned kCores = 4;
constexpr double kMagnitude = 1.3;
constexpr Time kWindowStart = Millis(500);
constexpr Time kWindowEnd = Millis(900);

/// 8 hard (u=.25) + 8 soft (u=.20) admits, all up-front: ~0.9/core once
/// placed, 1.17/core inside the 1.3x window — survivable only by
/// shedding. Soft tasks carry no degraded mode so the controller's shed
/// count is directly comparable to the oracle's removal count.
online::WorkloadStream OverloadStream() {
  std::vector<online::Request> reqs;
  online::Request r;
  r.kind = online::RequestKind::kAdmit;
  for (rt::TaskId i = 0; i < 8; ++i) {
    r.at = Millis(1) * i;
    r.id = i;
    r.task = rt::MakeTask(i, Millis(25), Millis(100));
    reqs.push_back(r);
  }
  for (rt::TaskId j = 0; j < 8; ++j) {
    r.at = Millis(8 + j);
    r.id = 100 + j;
    r.task = rt::MakeSoftTask(100 + j, Millis(20), Millis(100), /*value=*/1,
                              /*tardiness_bound=*/Millis(100));
    reqs.push_back(r);
  }
  return online::WorkloadStream(std::move(reqs));
}

online::ReplayConfig MakeReplayConfig(bool policies, bool faulted) {
  online::ReplayConfig cfg;
  cfg.controller.admission.num_cores = kCores;
  cfg.controller.allow_split = false;
  cfg.controller.repartition_fallback = false;
  // Spread the residents (first-fit would pack whole cores with HARD
  // tasks, which no amount of soft shedding can save from a 1.3x spike).
  cfg.controller.place = online::PlacePolicy::kWorstFit;
  cfg.controller.overload.ladder = policies;
  cfg.controller.overload.hysteresis = policies;
  cfg.epoch = Millis(100);
  cfg.drain_epochs = 14;  // past the window + retry backoff
  cfg.validate_by_simulation = true;
  cfg.validate_sim.horizon = Millis(400);
  if (faulted) {
    cfg.faults.spikes.push_back(online::SpikeEpoch{
        kWindowStart, kWindowEnd, /*prob=*/1.0, kMagnitude});
  }
  return cfg;
}

/// Greedy oracle: how many soft tasks must leave so that the WHOLE
/// resident set, every budget inflated by the spike magnitude, still
/// partitions from scratch (no-split first-fit decreasing — the same
/// placement class the controller runs incrementally)? Drops the
/// largest-utilization soft task per round (newest on ties).
std::size_t OracleMinimalSheds(const online::WorkloadStream& stream) {
  std::vector<rt::Task> resident;
  for (const online::Request& r : stream.requests()) {
    if (r.kind == online::RequestKind::kAdmit) resident.push_back(r.task);
  }
  const auto fits = [](const std::vector<rt::Task>& tasks) {
    std::vector<rt::Task> inflated = tasks;
    for (rt::Task& t : inflated) {
      t.wcet = std::min<Time>(
          t.deadline, static_cast<Time>(std::ceil(
                          kMagnitude * static_cast<double>(t.wcet))));
    }
    partition::EdfPartitionConfig cfg;
    cfg.num_cores = kCores;
    return partition::EdfBinPack(rt::TaskSet(std::move(inflated)),
                                 partition::FitPolicy::kFirstFit, cfg)
        .success;
  };
  std::size_t sheds = 0;
  while (!fits(resident)) {
    std::size_t victim = resident.size();
    for (std::size_t i = 0; i < resident.size(); ++i) {
      if (!resident[i].soft()) continue;
      if (victim == resident.size() ||
          resident[i].utilization() >= resident[victim].utilization()) {
        victim = i;  // >= keeps the NEWEST among equals, like the ladder
      }
    }
    if (victim == resident.size()) break;  // nothing left to drop
    resident.erase(resident.begin() + static_cast<std::ptrdiff_t>(victim));
    ++sheds;
  }
  return sheds;
}

std::uint64_t TotalHardMisses(const online::ReplayResult& res) {
  std::uint64_t misses = 0;
  for (const online::EpochStats& e : res.epochs) misses += e.hard_misses;
  return misses;
}

bool CheckJobsInvariance() {
  std::vector<online::WorkloadStream> streams;
  for (std::uint64_t s = 0; s < 4; ++s) {
    online::StreamConfig scfg;
    scfg.num_admits = 32;
    scfg.leave_fraction = 0.5;
    scfg.soft_fraction = 0.5;
    scfg.seed = 700 + s;
    streams.push_back(online::GenerateStream(scfg));
  }
  online::ReplayConfig rcfg;
  rcfg.controller.admission.num_cores = kCores;
  rcfg.validate_by_simulation = true;
  rcfg.validate_sim.horizon = Millis(150);
  rcfg.faults.spikes.push_back(
      online::SpikeEpoch{Millis(2000), Millis(4000), 0.5, 1.5});
  rcfg.faults.storms.push_back(
      online::BurstStorm{Millis(6000), Millis(7000), 0.9});
  rcfg.drain_epochs = 3;
  const auto serial = online::ReplayBatch(streams, rcfg, 1);
  const auto wide = online::ReplayBatch(streams, rcfg, 8);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    if (!(serial[i].epochs == wide[i].epochs) ||
        serial[i].admits != wide[i].admits ||
        serial[i].rejects != wide[i].rejects ||
        !(serial[i].churn == wide[i].churn) ||
        !(serial[i].overload == wide[i].overload) ||
        serial[i].shed_outstanding != wide[i].shed_outstanding ||
        serial[i].final_partition.summary() !=
            wide[i].final_partition.summary()) {
      std::fprintf(stderr,
                   "FAIL jobs-invariance: faulted stream %zu diverges "
                   "between jobs=1 and jobs=8\n",
                   i);
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  using sps::bench::EnvInt;
  const int reps = std::max(1, EnvInt("SPS_REPS", 3));

  util::JsonWriter json;
  json.BeginObject();
  json.Key("bench").Value("overload");
  json.Key("hardware_threads")
      .Value(static_cast<std::uint64_t>(
          std::max(1u, std::thread::hardware_concurrency())));
  json.Key("reps").Value(static_cast<std::uint64_t>(reps));
  json.Key("runs").BeginArray();

  bool ok = true;
  const online::WorkloadStream stream = OverloadStream();

  // ---- 1) transient 1.3x window ------------------------------------------
  struct Variant {
    const char* name;
    bool policies;
    bool faulted;
  };
  const Variant variants[] = {
      {"nofault", false, false},  // reference variant first
      {"nofault-policy", true, false},
      {"faulted", true, true},
  };
  std::printf("transient %.1fx window [%0.f, %0.f) ms on m=%u at ~0.9 "
              "util/core (best of %d)\n",
              kMagnitude, ToMillis(kWindowStart), ToMillis(kWindowEnd),
              kCores, reps);
  online::ReplayResult faulted_res;
  for (const Variant& v : variants) {
    const online::ReplayConfig cfg = MakeReplayConfig(v.policies, v.faulted);
    double wall = 1e100;
    online::ReplayResult res;
    for (int rep = 0; rep < reps; ++rep) {
      const double t0 = Now();
      res = online::ReplayStream(stream, cfg);
      wall = std::min(wall, Now() - t0);
    }
    if (v.faulted) faulted_res = res;
    json.BeginObject();
    json.Key("workload").Value("transient_1p3x");
    json.Key("variant").Value(v.name);
    json.Key("wall_s").Value(wall);
    json.Key("hard_misses").Value(TotalHardMisses(res));
    json.Key("sheds").Value(res.overload.sheds);
    json.Key("shed_restores").Value(res.overload.shed_restores);
    json.EndObject();
    std::printf("  %-15s %7.2f ms  %3llu sheds  %3llu restored  %llu hard "
                "misses\n",
                v.name, wall * 1e3,
                static_cast<unsigned long long>(res.overload.sheds),
                static_cast<unsigned long long>(res.overload.shed_restores),
                static_cast<unsigned long long>(TotalHardMisses(res)));
  }

  // Gate (a): survival by simulation — no hard task missed a deadline in
  // any epoch, including the ones validated UNDER the spike model.
  if (TotalHardMisses(faulted_res) != 0) {
    std::fprintf(stderr, "FAIL overload: %llu hard misses under the "
                         "%.1fx window\n",
                 static_cast<unsigned long long>(
                     TotalHardMisses(faulted_res)),
                 kMagnitude);
    ok = false;
  }
  for (const online::EpochStats& e : faulted_res.epochs) {
    if (!e.validated) {
      std::fprintf(stderr, "FAIL overload: epoch [%0.f, %0.f) was not "
                           "validated by simulation\n",
                   ToMillis(e.start), ToMillis(e.end));
      ok = false;
      break;
    }
  }

  // Gate (b): shed minimality vs the greedy repacking oracle.
  const std::size_t oracle = OracleMinimalSheds(stream);
  const std::size_t budgeted = static_cast<std::size_t>(
      std::ceil(static_cast<double>(oracle) * 1.1));
  std::printf("  oracle minimal sheds: %zu (budget %zu), controller: "
              "%llu\n",
              oracle, budgeted,
              static_cast<unsigned long long>(faulted_res.overload.sheds));
  if (oracle == 0) {
    std::fprintf(stderr, "FAIL overload: oracle sheds nothing — the "
                         "window is not an overload\n");
    ok = false;
  }
  if (faulted_res.overload.sheds > budgeted) {
    std::fprintf(stderr, "FAIL overload: controller shed %llu > oracle "
                         "budget %zu\n",
                 static_cast<unsigned long long>(
                     faulted_res.overload.sheds),
                 budgeted);
    ok = false;
  }

  // Gate (c): recovery — the retry path re-admits >= 95% of the shed
  // tasks inside the drain window.
  const double recovered =
      faulted_res.overload.sheds == 0
          ? 1.0
          : static_cast<double>(faulted_res.overload.shed_restores) /
                static_cast<double>(faulted_res.overload.sheds);
  std::printf("  recovery: %.0f%% of shed tasks re-admitted (%llu "
              "outstanding at drain end)\n",
              100.0 * recovered,
              static_cast<unsigned long long>(
                  faulted_res.shed_outstanding));
  if (recovered < 0.95) {
    std::fprintf(stderr, "FAIL overload: only %.0f%% of shed tasks "
                         "recovered (>= 95%% required)\n",
                 100.0 * recovered);
    ok = false;
  }

  // ---- 2) jobs-invariance -------------------------------------------------
  if (CheckJobsInvariance()) {
    std::printf("jobs-invariance: faulted batches bit-identical for jobs=1 "
                "and jobs=8\n");
  } else {
    ok = false;
  }

  json.EndArray();
  json.EndObject();
  std::string err;
  if (!util::WriteTextFile("BENCH_overload.json", json.str(), &err)) {
    std::fprintf(stderr, "%s\n", err.c_str());
    return 1;
  }
  std::printf("wrote BENCH_overload.json\n");
  return ok ? 0 : 1;
}
