#pragma once
// Shared knob parsing for the standalone bench binaries: the SPS_* env
// integers and the --jobs=N flag (one implementation so the benches
// cannot drift on the jobs-resolution rules).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

namespace sps::bench {

inline int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : fallback;
}

/// Resolve the job count: SPS_JOBS env overridden by a --jobs=N flag,
/// default (and the meaning of 0) one thread per hardware thread.
/// Returns false (after printing the offender) on any other argument.
inline bool ParseJobs(int argc, char** argv, unsigned& jobs) {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  jobs = static_cast<unsigned>(EnvInt("SPS_JOBS", static_cast<int>(hw)));
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      jobs = static_cast<unsigned>(std::strtoul(argv[i] + 7, nullptr, 10));
    } else {
      std::fprintf(stderr, "unknown argument: %s (only --jobs=N)\n",
                   argv[i]);
      return false;
    }
  }
  if (jobs == 0) jobs = hw;
  return true;
}

}  // namespace sps::bench
