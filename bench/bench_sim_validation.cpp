// E7 — simulation cross-check: the paper implemented its scheduler and
// ran it; we do the analog end-to-end. Task sets accepted by the
// overhead-aware analysis are executed in the discrete-event scheduler
// (binomial-heap ready queues, red-black-tree sleep queues, split-task
// budgets, full overhead injection) and must produce ZERO deadline
// misses, while the observed overhead totals and migration counts show
// how small the splitting cost actually is — the paper's practicability
// argument.

#include <cstdio>

#include "exp/acceptance.hpp"
#include "overhead/model.hpp"
#include "rt/generator.hpp"
#include "sim/engine.hpp"

using namespace sps;

int main() {
  std::printf("=== E7: simulation validation of accepted partitions ===\n\n");
  const overhead::OverheadModel model = overhead::OverheadModel::PaperCoreI7();

  rt::GeneratorConfig gen;
  gen.num_tasks = 16;
  gen.period_min = Millis(10);
  gen.period_max = Millis(200);
  rt::Rng rng(20110318);

  std::printf("%6s | %8s %8s | %9s %11s %11s %11s %9s\n", "util",
              "accepted", "misses", "migr/sec", "ovh[us/sec]",
              "cpmd[us/s]", "ovh/budget", "splits");

  for (const double nu : {0.70, 0.80, 0.85, 0.90, 0.95}) {
    gen.total_utilization = nu * 4;
    int accepted = 0;
    std::uint64_t misses = 0;
    double migr_per_sec = 0, ovh_us_per_sec = 0, cpmd_us_per_sec = 0;
    double splits = 0;
    const int kSets = 15;
    for (int i = 0; i < kSets; ++i) {
      const rt::TaskSet ts = rt::GenerateTaskSet(gen, rng);
      const partition::PartitionResult pr =
          exp::RunAlgorithm(exp::Algo::kSpa2, ts, 4, model);
      if (!pr.success) continue;
      ++accepted;
      splits += pr.partition.num_split_tasks();
      sim::SimConfig cfg;
      cfg.horizon = Millis(3000);
      cfg.overheads = model;
      const sim::SimResult r = Simulate(pr.partition, cfg);
      misses += r.total_misses;
      const double secs = ToMillis(r.simulated) / 1000.0;
      migr_per_sec += static_cast<double>(r.total_migrations) / secs;
      ovh_us_per_sec += ToMicros(r.total_overhead()) / secs;
      Time cpmd = 0;
      Time busy = 0;
      for (const sim::CoreStats& c : r.cores) {
        cpmd += c.cpmd_charged;
        busy += c.busy_exec;
      }
      cpmd_us_per_sec += ToMicros(cpmd) / secs;
      (void)busy;
    }
    if (accepted > 0) {
      migr_per_sec /= accepted;
      ovh_us_per_sec /= accepted;
      cpmd_us_per_sec /= accepted;
      splits /= accepted;
    }
    // Overhead as a fraction of one core-second (4 cores = 4e6 us/sec).
    const double ovh_frac = ovh_us_per_sec / 4e6;
    std::printf("%6.2f | %5d/%-2d %8llu | %9.1f %11.1f %11.1f %10.4f%% %9.2f\n",
                nu, accepted, kSets,
                static_cast<unsigned long long>(misses), migr_per_sec,
                ovh_us_per_sec, cpmd_us_per_sec, 100.0 * ovh_frac, splits);
  }

  std::printf("\nShape check: zero misses everywhere (analysis soundness); "
              "total scheduler overhead well under 1%% of capacity; "
              "migrations only appear at high utilization where splitting "
              "kicks in — the paper's 'extra overhead ... is very low'.\n\n");

  // Negative control: an overloaded set must produce misses.
  rt::GeneratorConfig over;
  over.num_tasks = 8;
  over.total_utilization = 4.6;  // > 4 cores' capacity
  rt::Rng rng2(7);
  const rt::TaskSet ts = rt::GenerateTaskSet(over, rng2);
  partition::Partition naive;
  naive.num_cores = 4;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    partition::PlacedTask pt;
    pt.task = ts[i];
    pt.parts = {{static_cast<partition::CoreId>(i % 4), ts[i].wcet,
                 ts[i].priority + partition::kNormalPriorityBase}};
    naive.tasks.push_back(pt);
  }
  sim::SimConfig cfg;
  cfg.horizon = Millis(2000);
  cfg.overheads = model;
  const sim::SimResult r = Simulate(naive, cfg);
  std::printf("negative control (U=4.6 on 4 cores, naive round-robin "
              "placement): %llu misses+shed — the simulator does catch "
              "overload.\n",
              static_cast<unsigned long long>(
                  r.total_misses +
                  [&r] {
                    std::uint64_t s = 0;
                    for (const auto& t : r.tasks) s += t.shed;
                    return s;
                  }()));
  return 0;
}
