// E11 — service observability (DESIGN.md §15): what does the span
// profiler cost, both OFF and ON, along the calm online path?
//
//   A 600-admit stream on m=8 replayed three ways, interleaved per rep:
//     - "plain":    no profiler installed. The instrumented hooks still
//                   execute their null path (one thread-local load + two
//                   branches per span) — this variant IS the
//                   profiling-off product configuration, the reference.
//     - "profiled": a SpanProfiler installed for the whole replay
//                   (slices off — the histogram-only steady state). The
//                   diagnostic mode pays two clock reads per span, so a
//                   low-double-digit ratio over plain is EXPECTED; the
//                   in-bench gate only rejects a pathological blowup.
//     - "reqtraced": profiler + RequestTracer (K=32, DESIGN.md §16) —
//                   span trees, tail sampling, flight ring. Rides on
//                   top of "profiled"; the in-bench gate holds it to
//                   ≤1.10x of profiled (the tracer adds a tree append
//                   and a ring push per span, no locks on the span
//                   path).
//
//   The <3% acceptance gate is on the PROFILING-OFF path, and it lives
//   in CI: check_bench_regression.py --two-sided 'profiled'
//   --tolerance 0.03 pins the profiled/plain ratio against the
//   committed baseline from both sides — if the null-path hooks get
//   heavier, plain slows down and the ratio DROPS below the floor; if
//   the profiler itself bloats, the ratio climbs past the limit. Either
//   drift beyond 3% fails the build.
//
//   The profiled replay's DECISIONS must equal the plain replay's
//   exactly — wall-clock observation is an observer, never a
//   participant (the §15 firewall).
//
// Wall times are best-of-SPS_REPS (min 5: a 3% ratio gate needs the
// noise floor down); results land in BENCH_obs.json.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "obs/reqtrace.hpp"
#include "obs/spans.hpp"
#include "online/controller.hpp"
#include "online/workload_stream.hpp"
#include "util/json_writer.hpp"

namespace {

using namespace sps;

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr unsigned kCores = 8;
/// In-bench sanity ceiling on the INSTALLED profiler (the tight 3%
/// profiling-off gate is ratio-based against the committed baseline in
/// CI — see the header).
constexpr double kProfiledCeiling = 0.50;
/// Tracing rides on the profiled path; it may cost at most 10% more
/// (one tree append + one flight-ring push per span, lock-free).
constexpr double kReqtracedOverProfiledCeiling = 1.10;

online::WorkloadStream BenchStream() {
  online::StreamConfig cfg;
  cfg.num_admits = 600;
  cfg.leave_fraction = 0.5;
  cfg.soft_fraction = 0.3;
  cfg.seed = 20110814;
  return online::GenerateStream(cfg);
}

online::ReplayConfig BaseConfig() {
  online::ReplayConfig cfg;
  cfg.controller.admission.num_cores = kCores;
  cfg.controller.unsplit_on_leave = true;
  cfg.epoch = Millis(500);
  cfg.drain_epochs = 2;
  return cfg;
}

/// Decision identity between two replays: everything except wall time
/// and the cache-dependent memo counters (DESIGN.md §12).
bool SameDecisions(const online::ReplayResult& a,
                   const online::ReplayResult& b, const char* what) {
  const bool same =
      a.epochs == b.epochs && a.admits == b.admits &&
      a.rejects == b.rejects && a.leaves == b.leaves &&
      a.churn == b.churn && a.overload == b.overload &&
      a.shed_outstanding == b.shed_outstanding &&
      a.admission.util_rejects == b.admission.util_rejects &&
      a.admission.density_accepts == b.admission.density_accepts &&
      a.admission.full_tests == b.admission.full_tests &&
      a.final_partition.summary() == b.final_partition.summary();
  if (!same) {
    std::fprintf(stderr,
                 "FAIL obs_overhead: %s diverges from the plain replay\n",
                 what);
  }
  return same;
}

}  // namespace

int main() {
  using sps::bench::EnvInt;
  const int reps = std::max(5, EnvInt("SPS_REPS", 5));

  util::JsonWriter json;
  json.BeginObject();
  json.Key("bench").Value("obs_overhead");
  json.Key("hardware_threads")
      .Value(static_cast<std::uint64_t>(
          std::max(1u, std::thread::hardware_concurrency())));
  json.Key("reps").Value(static_cast<std::uint64_t>(reps));
  json.Key("runs").BeginArray();

  bool ok = true;
  const online::WorkloadStream stream = BenchStream();
  const online::ReplayConfig plain_cfg = BaseConfig();

  // Interleave the variants inside each rep so frequency scaling and
  // cache state perturb them alike; keep the best wall of each.
  double plain_wall = 1e100, profiled_wall = 1e100, reqtraced_wall = 1e100;
  online::ReplayResult plain_res, profiled_res, reqtraced_res;
  obs::SpanProfiler profiler;  // accumulates across reps; fine — only
                               // the replay walls are compared
  obs::RequestTracer tracer(/*top_k=*/32);
  for (int rep = 0; rep < reps; ++rep) {
    double t0 = Now();
    plain_res = online::ReplayStream(stream, plain_cfg);
    plain_wall = std::min(plain_wall, Now() - t0);

    online::ReplayConfig prof_cfg = plain_cfg;
    prof_cfg.obs.profiler = &profiler;
    t0 = Now();
    profiled_res = online::ReplayStream(stream, prof_cfg);
    profiled_wall = std::min(profiled_wall, Now() - t0);

    online::ReplayConfig trace_cfg = prof_cfg;
    trace_cfg.obs.tracer = &tracer;
    t0 = Now();
    reqtraced_res = online::ReplayStream(stream, trace_cfg);
    reqtraced_wall = std::min(reqtraced_wall, Now() - t0);
  }

  struct Row {
    const char* variant;
    double wall;
  };
  const Row rows[] = {{"plain", plain_wall},  // reference first
                      {"profiled", profiled_wall},
                      {"reqtraced", reqtraced_wall}};
  std::printf("calm path: %zu requests on m=%u (best of %d)\n",
              stream.size(), kCores, reps);
  for (const Row& r : rows) {
    json.BeginObject();
    json.Key("workload").Value("calm_path");
    json.Key("variant").Value(r.variant);
    json.Key("wall_s").Value(r.wall);
    json.EndObject();
    std::printf("  %-10s %8.2f ms  (x%.3f of plain)\n", r.variant,
                r.wall * 1e3, r.wall / plain_wall);
  }

  // Sanity ceiling: diagnostic-mode cost must stay in the expected
  // band (the tight two-sided gate runs in CI against the baseline).
  const double overhead = profiled_wall / plain_wall - 1.0;
  if (overhead > kProfiledCeiling) {
    std::fprintf(stderr,
                 "FAIL obs_overhead: profiled overhead %.1f%% exceeds "
                 "the %.0f%% sanity ceiling\n",
                 100.0 * overhead, 100.0 * kProfiledCeiling);
    ok = false;
  }
  // Tracing rides on the profiled path; gate its marginal cost here
  // (absolute ratio, not baseline-relative — the two variants run in
  // the same process seconds apart, so the ratio is machine-stable).
  const double traced_ratio = reqtraced_wall / profiled_wall;
  if (traced_ratio > kReqtracedOverProfiledCeiling) {
    std::fprintf(stderr,
                 "FAIL obs_overhead: reqtraced is x%.3f of profiled "
                 "(ceiling x%.2f)\n",
                 traced_ratio, kReqtracedOverProfiledCeiling);
    ok = false;
  }
  // And observation must never have CHANGED anything.
  ok = SameDecisions(plain_res, profiled_res, "profiled replay") && ok;
  ok = SameDecisions(plain_res, reqtraced_res, "reqtraced replay") && ok;

  // Sanity: the tracer actually retained request trees.
  const obs::RequestTracer::RetainStats rstats = tracer.retain_stats();
  if (rstats.traces_seen == 0 || rstats.retained_slow == 0) {
    std::fprintf(stderr, "FAIL obs_overhead: tracer retained nothing\n");
    ok = false;
  }

  // Sanity: the profiler actually saw the pipeline (otherwise the gate
  // is measuring nothing).
  const auto report = profiler.Report();
  std::uint64_t spans = 0;
  for (const auto& row : report) spans += row.count;
  if (spans == 0) {
    std::fprintf(stderr, "FAIL obs_overhead: profiler recorded no spans\n");
    ok = false;
  }
  std::printf("profiled spans: %llu across %zu stages\n",
              static_cast<unsigned long long>(spans), report.size());

  json.EndArray();
  json.EndObject();
  std::string err;
  if (!util::WriteTextFile("BENCH_obs.json", json.str(), &err)) {
    std::fprintf(stderr, "%s\n", err.c_str());
    return 1;
  }
  std::printf("wrote BENCH_obs.json\n");
  return ok ? 0 : 1;
}
