// Premise bench — paper §1: "Recent studies showed that the partitioned
// approach is superior in scheduling hard real-time systems". We make the
// three-way comparison executable:
//
//   global:           G-RM (ABJ test)  /  G-EDF (GFB test)
//   partitioned:      FFD (exact overhead-aware RTA)
//   semi-partitioned: FP-TS (SPA2)
//
// plus the Dhall effect run live in both engines.
//
// Expected shape: the global tests' acceptance collapses far earlier than
// partitioned RM (their utilization bounds cap at m^2/(3m-2) ~ 0.4m and
// m(1-umax)+umax); FP-TS dominates everything — the paper's motivation
// chain reproduced end to end.
//
// Environment knobs: SPS_SETS (default 50), SPS_TASKS (default 16).

#include <cstdio>
#include <cstdlib>

#include "analysis/global_tests.hpp"
#include "overhead/model.hpp"
#include "partition/binpack.hpp"
#include "partition/spa.hpp"
#include "rt/generator.hpp"
#include "sim/engine.hpp"
#include "sim/global_engine.hpp"

using namespace sps;

namespace {

int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : fallback;
}

}  // namespace

int main() {
  const int sets = EnvInt("SPS_SETS", 50);
  const int tasks = EnvInt("SPS_TASKS", 16);
  const overhead::OverheadModel m = overhead::OverheadModel::PaperCoreI7();

  std::printf("=== Premise: global vs partitioned vs semi-partitioned "
              "(m=4, n=%d, %d sets/point) ===\n\n",
              tasks, sets);
  std::printf("%10s %10s %10s %10s %10s\n", "norm.util", "G-RM(ABJ)",
              "G-EDF(GFB)", "FFD(RTA)", "FP-TS");

  rt::GeneratorConfig gen;
  gen.num_tasks = static_cast<std::size_t>(tasks);
  for (const double nu : {0.20, 0.30, 0.40, 0.50, 0.60, 0.70, 0.80, 0.90}) {
    gen.total_utilization = nu * 4;
    int grm = 0, gedf = 0, ffd = 0, spa = 0;
    rt::Rng rng(static_cast<std::uint64_t>(nu * 1e6) + 42);
    for (int s = 0; s < sets; ++s) {
      const rt::TaskSet ts = rt::GenerateTaskSet(gen, rng);
      if (analysis::GlobalRmAbjTest(ts.tasks(), 4)) ++grm;
      if (analysis::GlobalEdfGfbTest(ts.tasks(), 4)) ++gedf;
      partition::BinPackConfig bp;
      bp.num_cores = 4;
      bp.admission = partition::AdmissionTest::kRta;
      bp.model = m;
      if (partition::Ffd(ts, bp).success) ++ffd;
      partition::SpaConfig spa_cfg;
      spa_cfg.num_cores = 4;
      spa_cfg.model = m;
      spa_cfg.preassign_heavy = true;
      if (partition::SpaPartition(ts, spa_cfg).success) ++spa;
    }
    std::printf("%10.2f %10.3f %10.3f %10.3f %10.3f\n", nu,
                static_cast<double>(grm) / sets,
                static_cast<double>(gedf) / sets,
                static_cast<double>(ffd) / sets,
                static_cast<double>(spa) / sets);
  }

  std::printf("\n--- the Dhall effect, executed (m=4) ---\n");
  const rt::TaskSet dhall = analysis::DhallEffectSet(4);
  std::printf("set: 4 x (C=4ms, T=100ms) + 1 x (C=100ms, T=102ms), "
              "U=%.3f\n",
              dhall.total_utilization());
  sim::GlobalSimConfig g;
  g.num_cores = 4;
  g.horizon = Millis(1000);
  const sim::SimResult grun = SimulateGlobal(dhall, g);
  std::printf("global RM   : %llu deadline misses in 1s\n",
              static_cast<unsigned long long>(grun.total_misses));
  g.policy = sim::GlobalPolicy::kGlobalEdf;
  const sim::SimResult erun = SimulateGlobal(dhall, g);
  std::printf("global EDF  : %llu deadline misses in 1s\n",
              static_cast<unsigned long long>(erun.total_misses));
  partition::BinPackConfig bp;
  bp.num_cores = 4;
  bp.admission = partition::AdmissionTest::kRta;
  const partition::PartitionResult pr = partition::Ffd(dhall, bp);
  if (pr.success) {
    sim::SimConfig pc;
    pc.horizon = Millis(1000);
    const sim::SimResult prun = Simulate(pr.partition, pc);
    std::printf("partitioned : %llu deadline misses in 1s (FFD placed it "
                "whole)\n",
                static_cast<unsigned long long>(prun.total_misses));
  }
  std::printf("\nShape check: BOTH global policies miss on the Dhall set "
              "(the heavy task's deadline loses the synchronous race on "
              "every core) while the partitioned placement runs clean; the "
              "acceptance table shows the global tests collapsing around "
              "0.3-0.5 normalized utilization while FFD/FP-TS hold to "
              "0.9+.\n");
  return 0;
}
