// E8 — online admission control (DESIGN.md §11): what does ONE admission
// decision cost while the system keeps running, and what would the
// offline alternative pay?
//
//   1) SCALING: per-admit cost at resident-set sizes N = 64..384 on 16
//      cores. Variant "oracle" re-partitions the whole resident set +
//      candidate from scratch (EdfWm — the only offline answer to "does
//      this fit"), variant "incremental" asks the admission controller
//      (one placement step against the cached per-core state, probed as
//      admit+leave cycles so the resident size stays pinned at N). The
//      acceptance criterion of the PR: incremental per-admit cost stays
//      roughly FLAT as N grows while the oracle's grows — the JSON
//      records both so the trajectory is checkable.
//
//   2) MIXED STREAM: the default ADMIT/LEAVE mix replayed through the
//      incremental controller (fallback on) vs an oracle that decides
//      every ADMIT by a from-scratch EdfWm on ITS OWN surviving set.
//      The bench FAILS if the two acceptance ratios diverge by more
//      than SPS_ONLINE_TOL_PCT percent (integer, default 2) — the
//      incremental path must not buy its speed with meaningfully worse
//      decisions. Churn per admit is reported alongside.
//
//   3) ANALYSIS CACHE A/B: the same replay run uncached vs cached
//      (analysis/memo.hpp, dedicated table, one unmeasured warm-up rep)
//      on two cache-friendly workloads — "fallback_replay" (utilization
//      pressure keeps triggering the full-repartition fallback, which
//      re-analyzes the resident set from scratch) and "epoch_replay" (a
//      long admit/leave stream). The bench FAILS unless the cached
//      replay is >= 2x faster AND decision-identical (same admits /
//      rejects / churn / decision counters) to the uncached one. The
//      hit rate is reported next to the speedup. Phases 1-2 run with
//      the cache DISABLED in BOTH variants so their oracle/incremental
//      ratios keep measuring algorithmic cost, not cache state.
//
//   4) JOBS-INVARIANCE: a batch of streams replayed with jobs=1 and
//      jobs=8 (validation simulations included) must be bit-identical —
//      the §8 determinism contract, enforced on every perf run.
//
// Wall times are best-of-SPS_REPS; results land in BENCH_online.json
// ("oracle" is each workload's reference variant — and "uncached" for
// the cache A/B workloads — so tools/check_bench_regression.py flags
// the incremental path or the cache losing its edge as a ratio
// INCREASE; the uncached reference itself is gated --two-sided).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "analysis/memo.hpp"
#include "bench_common.hpp"
#include "online/controller.hpp"
#include "online/workload_stream.hpp"
#include "overhead/model.hpp"
#include "partition/edf_wm.hpp"
#include "rt/taskset.hpp"
#include "util/json_writer.hpp"
#include "util/rng.hpp"

namespace {

using namespace sps;

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Deterministic small task (the scaling phase wants hundreds resident).
rt::Task TinyTask(rt::TaskId id, std::uint64_t seed) {
  util::SplitMix64 rng(util::DeriveSeed(seed, id, 17));
  const Time periods[] = {Millis(20), Millis(50), Millis(100), Millis(200)};
  const Time period = periods[rng() % 4];
  // u in [0.015, 0.035]
  const double u = 0.015 + 0.020 * (static_cast<double>(rng() % 1000) / 999.0);
  const Time wcet = std::max<Time>(
      1, static_cast<Time>(u * static_cast<double>(period)));
  return rt::MakeTask(id, wcet, period);
}

struct ScalingRow {
  std::size_t resident = 0;
  double oracle_wall = 0.0;
  double incr_wall = 0.0;
  int probes = 0;
};

ScalingRow RunScaling(std::size_t n_resident, int probes, int reps,
                      unsigned cores) {
  ScalingRow row;
  row.resident = n_resident;
  row.probes = probes;

  online::ControllerConfig cfg;
  cfg.admission.num_cores = cores;
  cfg.admission.memo.enabled = false;  // phase measures algorithmic cost
  cfg.repartition_fallback = false;
  online::Controller ctrl(cfg);
  std::vector<rt::Task> resident;
  for (std::size_t i = 0; i < n_resident; ++i) {
    const rt::Task t = TinyTask(static_cast<rt::TaskId>(i), 11);
    if (ctrl.Admit(t).accepted) resident.push_back(t);
  }
  if (ctrl.resident() != n_resident) {
    std::fprintf(stderr,
                 "FAIL scaling setup: only %zu of %zu residents admitted\n",
                 ctrl.resident(), n_resident);
    std::exit(1);
  }

  // Incremental: admit+leave cycles keep the resident size pinned at N.
  // A single incremental decision is MICROSECONDS — far below wall-clock
  // noise — so each measured rep runs `cycles` passes over the probe set
  // and the recorded wall is normalized back to the probe count, putting
  // the measurement in the same milliseconds regime as the oracle's.
  // One unmeasured warm-up pass first: the first probes at a fresh size
  // pay allocator/cache cold starts that would skew the growth ratios.
  const int cycles = std::max(1, 2000 / probes);
  for (int p = 0; p < probes; ++p) {
    const rt::Task probe =
        TinyTask(static_cast<rt::TaskId>(1000000 + p), 23);
    if (ctrl.Admit(probe).accepted) ctrl.Leave(probe.id);
  }
  row.incr_wall = 1e100;
  for (int rep = 0; rep < reps; ++rep) {
    const double t0 = Now();
    for (int cy = 0; cy < cycles; ++cy) {
      for (int p = 0; p < probes; ++p) {
        const rt::Task probe =
            TinyTask(static_cast<rt::TaskId>(1000000 + p), 23);
        if (ctrl.Admit(probe).accepted) ctrl.Leave(probe.id);
      }
    }
    row.incr_wall =
        std::min(row.incr_wall, (Now() - t0) / static_cast<double>(cycles));
  }

  // Oracle: a from-scratch repartition of resident + probe per decision
  // (one unmeasured warm-up run first, as above).
  partition::EdfPartitionConfig ecfg;
  ecfg.num_cores = cores;
  ecfg.memo.enabled = false;  // same footing as the incremental variant
  {
    std::vector<rt::Task> tasks = resident;
    tasks.push_back(TinyTask(1000000, 23));
    (void)partition::EdfWm(rt::TaskSet(std::move(tasks)), ecfg);
  }
  row.oracle_wall = 1e100;
  for (int rep = 0; rep < reps; ++rep) {
    const double t0 = Now();
    for (int p = 0; p < probes; ++p) {
      std::vector<rt::Task> tasks = resident;
      tasks.push_back(TinyTask(static_cast<rt::TaskId>(1000000 + p), 23));
      const rt::TaskSet ts(std::move(tasks));
      if (!partition::EdfWm(ts, ecfg).success) {
        std::fprintf(stderr, "FAIL scaling: oracle rejected a probe at "
                             "N=%zu\n",
                     n_resident);
        std::exit(1);
      }
    }
    row.oracle_wall = std::min(row.oracle_wall, Now() - t0);
  }
  return row;
}

struct MixedRow {
  double incr_wall = 0.0;
  double oracle_wall = 0.0;
  double incr_acceptance = 0.0;
  double oracle_acceptance = 0.0;
  double churn_per_admit = 0.0;
  std::uint64_t decisions = 0;
};

MixedRow RunMixed(const online::WorkloadStream& stream, unsigned cores,
                  int reps) {
  MixedRow row;
  online::ReplayConfig rcfg;
  rcfg.controller.admission.num_cores = cores;
  rcfg.controller.admission.memo.enabled = false;  // algorithmic cost only
  // This phase measures the PR-6 admission path head-to-head against the
  // oracle; the overload policies (bench_overload's subject) would skew
  // both the acceptance ratio and the churn it reports.
  rcfg.controller.overload.ladder = false;
  rcfg.controller.overload.hysteresis = false;

  row.incr_wall = 1e100;
  online::ReplayResult res;
  for (int rep = 0; rep < reps; ++rep) {
    const double t0 = Now();
    res = online::ReplayStream(stream, rcfg);
    row.incr_wall = std::min(row.incr_wall, Now() - t0);
  }
  row.incr_acceptance = res.acceptance_ratio();
  row.decisions = res.admits + res.rejects;
  row.churn_per_admit =
      res.admits > 0 ? static_cast<double>(res.churn.total()) /
                           static_cast<double>(res.admits)
                     : 0.0;

  // Oracle: EdfWm from scratch on its own surviving set per ADMIT.
  partition::EdfPartitionConfig ecfg;
  ecfg.num_cores = cores;
  ecfg.memo.enabled = false;
  row.oracle_wall = 1e100;
  for (int rep = 0; rep < reps; ++rep) {
    const double t0 = Now();
    std::vector<rt::Task> surviving;
    std::uint64_t admits = 0, rejects = 0;
    for (const online::Request& r : stream.requests()) {
      if (r.kind == online::RequestKind::kAdmit) {
        std::vector<rt::Task> probe = surviving;
        probe.push_back(r.task);
        if (partition::EdfWm(rt::TaskSet(std::move(probe)), ecfg)
                .success) {
          surviving.push_back(r.task);
          ++admits;
        } else {
          ++rejects;
        }
      } else {
        std::erase_if(surviving, [&](const rt::Task& t) {
          return t.id == r.id;
        });
      }
    }
    row.oracle_wall = std::min(row.oracle_wall, Now() - t0);
    row.oracle_acceptance =
        admits + rejects == 0
            ? 1.0
            : static_cast<double>(admits) /
                  static_cast<double>(admits + rejects);
  }
  return row;
}

struct CacheRow {
  double uncached_wall = 0.0;
  double cached_wall = 0.0;
  double hit_rate = 0.0;
  std::uint64_t lookups = 0;
  std::uint64_t evicts = 0;
  std::uint64_t repartitions = 0;
  bool identical = false;  ///< cached decisions == uncached decisions
};

/// Replay `stream` uncached vs cached through identical controllers.
/// The cached variant owns a dedicated table (never the process-wide
/// singleton — reps must not warm each other across workloads) and runs
/// one unmeasured warm-up replay first: the steady state a long-running
/// controller reaches, which is what the memo is for. Both variants get
/// the same warm-up treatment; both walls are best-of-reps.
CacheRow RunCacheAB(const online::WorkloadStream& stream,
                    online::ReplayConfig rcfg, int reps) {
  CacheRow row;

  // "fallback_replay" is CALIBRATED around its repartition count (that is
  // what re-asks the memo); hysteresis would suppress exactly those, so
  // this phase pins the overload policies off (bench_overload owns them).
  rcfg.controller.overload.ladder = false;
  rcfg.controller.overload.hysteresis = false;
  rcfg.controller.admission.memo.enabled = false;
  online::ReplayResult base = online::ReplayStream(stream, rcfg);
  row.uncached_wall = 1e100;
  for (int rep = 0; rep < reps; ++rep) {
    const double t0 = Now();
    base = online::ReplayStream(stream, rcfg);
    row.uncached_wall = std::min(row.uncached_wall, Now() - t0);
  }

  // Sized to the workload: a replay's distinct-query working set (the
  // budget binary searches alone ask hundreds of questions per admit)
  // runs to ~2e5 here, and replace-on-collision thrash at the 2^15
  // shared default would evict the warm-up before the measured reps
  // re-ask it. Deployments size the shared table the same way via
  // --analysis-cache=N; 2^20 slots is 24 MiB.
  analysis::AnalysisMemo table(std::size_t{1} << 20);
  rcfg.controller.admission.memo.enabled = true;
  rcfg.controller.admission.memo.table = &table;
  online::ReplayResult res = online::ReplayStream(stream, rcfg);
  row.cached_wall = 1e100;
  for (int rep = 0; rep < reps; ++rep) {
    const double t0 = Now();
    res = online::ReplayStream(stream, rcfg);
    row.cached_wall = std::min(row.cached_wall, Now() - t0);
  }

  // The memo contract: identical decisions, identical DECISION counters
  // (util_rejects / density_accepts / full_tests — a hit bumps the
  // stage its verdict came from). Only memo_* counters may differ.
  row.identical =
      res.admits == base.admits && res.rejects == base.rejects &&
      res.churn == base.churn &&
      res.admission.util_rejects == base.admission.util_rejects &&
      res.admission.density_accepts == base.admission.density_accepts &&
      res.admission.full_tests == base.admission.full_tests &&
      res.final_partition.summary() == base.final_partition.summary();
  row.lookups = res.admission.memo_hits + res.admission.memo_misses;
  row.hit_rate = row.lookups == 0
                     ? 0.0
                     : static_cast<double>(res.admission.memo_hits) /
                           static_cast<double>(row.lookups);
  row.evicts = res.admission.memo_evicts;
  row.repartitions = res.churn.repartitions;
  return row;
}

bool CheckJobsInvariance() {
  std::vector<online::WorkloadStream> streams;
  for (std::uint64_t s = 0; s < 4; ++s) {
    online::StreamConfig scfg;
    scfg.num_admits = 32;
    scfg.seed = 500 + s;
    streams.push_back(online::GenerateStream(scfg));
  }
  online::ReplayConfig rcfg;
  rcfg.controller.admission.num_cores = 4;
  rcfg.controller.admission.model = overhead::OverheadModel::PaperCoreI7();
  rcfg.validate_by_simulation = true;
  rcfg.validate_sim.horizon = Millis(100);
  const auto serial = online::ReplayBatch(streams, rcfg, 1);
  const auto wide = online::ReplayBatch(streams, rcfg, 8);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    if (!(serial[i].epochs == wide[i].epochs) ||
        serial[i].admits != wide[i].admits ||
        serial[i].rejects != wide[i].rejects ||
        !(serial[i].churn == wide[i].churn) ||
        serial[i].final_partition.summary() !=
            wide[i].final_partition.summary()) {
      std::fprintf(stderr,
                   "FAIL jobs-invariance: stream %zu diverges between "
                   "jobs=1 and jobs=8\n",
                   i);
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  using sps::bench::EnvInt;
  const int reps = std::max(1, EnvInt("SPS_REPS", 3));
  const int probes = std::max(1, EnvInt("SPS_ONLINE_PROBES", 12));
  const double tol =
      std::max(0.0, EnvInt("SPS_ONLINE_TOL_PCT", 2) / 100.0);
  const unsigned cores = 16;

  util::JsonWriter json;
  json.BeginObject();
  json.Key("bench").Value("online_admission");
  json.Key("hardware_threads")
      .Value(static_cast<std::uint64_t>(
          std::max(1u, std::thread::hardware_concurrency())));
  json.Key("reps").Value(static_cast<std::uint64_t>(reps));
  json.Key("runs").BeginArray();

  bool ok = true;

  // ---- 1) per-admit scaling --------------------------------------------
  std::printf("per-admit cost vs resident size (m=%u, %d probes, best of "
              "%d)\n",
              cores, probes, reps);
  const std::size_t sizes[] = {64, 128, 256, 384};
  double first_incr = 0.0, last_incr = 0.0;
  double first_oracle = 0.0, last_oracle = 0.0;
  for (const std::size_t n : sizes) {
    const ScalingRow row = RunScaling(n, probes, reps, cores);
    const double incr_per = row.incr_wall / row.probes;
    const double oracle_per = row.oracle_wall / row.probes;
    if (n == sizes[0]) {
      first_incr = incr_per;
      first_oracle = oracle_per;
    }
    last_incr = incr_per;
    last_oracle = oracle_per;
    char label[32];
    std::snprintf(label, sizeof(label), "admit_res%zu", n);
    // "oracle" first: it is the reference variant of the ratio check.
    json.BeginObject();
    json.Key("workload").Value(label);
    json.Key("variant").Value("oracle");
    json.Key("wall_s").Value(row.oracle_wall);
    json.Key("admits_per_sec").Value(row.probes / row.oracle_wall);
    json.EndObject();
    json.BeginObject();
    json.Key("workload").Value(label);
    json.Key("variant").Value("incremental");
    json.Key("wall_s").Value(row.incr_wall);
    json.Key("admits_per_sec").Value(row.probes / row.incr_wall);
    json.EndObject();
    std::printf("  N=%4zu  incremental %9.1f us/admit (%9.0f adm/s)   "
                "oracle %9.1f us/admit (%7.0f adm/s)   x%.0f\n",
                n, incr_per * 1e6, 1.0 / incr_per, oracle_per * 1e6,
                1.0 / oracle_per, oracle_per / incr_per);
  }
  // The asymptotic claim, enforced with noise headroom: across a 6x
  // resident-set growth the incremental per-admit cost must grow less
  // than HALF as much as the oracle's (observed: ~x1.2 vs ~x6-7.5, so
  // the 2x margin tolerates a badly-timed scheduler hiccup on a CI
  // runner without ever letting "incremental became as super-linear as
  // the oracle" through).
  const double incr_growth = last_incr / std::max(first_incr, 1e-12);
  const double oracle_growth = last_oracle / std::max(first_oracle, 1e-12);
  std::printf("  growth %zu->%zu: incremental x%.2f, oracle x%.2f\n",
              sizes[0], sizes[3], incr_growth, oracle_growth);
  if (incr_growth >= 0.5 * oracle_growth) {
    std::fprintf(stderr, "FAIL scaling: incremental per-admit cost grew "
                         "x%.2f >= half the oracle's x%.2f\n",
                 incr_growth, oracle_growth);
    ok = false;
  }

  // ---- 2) mixed stream: acceptance vs the oracle ------------------------
  online::StreamConfig scfg;  // the "default stream mix"
  scfg.num_admits = static_cast<std::size_t>(
      std::max(1, EnvInt("SPS_ONLINE_REQUESTS", 160)));
  const online::WorkloadStream stream = online::GenerateStream(scfg);
  const MixedRow mixed = RunMixed(stream, 4, reps);
  std::printf("\nmixed stream (m=4, %zu requests, %llu admit decisions)\n",
              stream.size(),
              static_cast<unsigned long long>(mixed.decisions));
  std::printf("  incremental: %.3f acceptance, %6.2f ms, %.3f churn/admit\n",
              mixed.incr_acceptance, mixed.incr_wall * 1e3,
              mixed.churn_per_admit);
  std::printf("  oracle:      %.3f acceptance, %6.2f ms\n",
              mixed.oracle_acceptance, mixed.oracle_wall * 1e3);
  json.BeginObject();
  json.Key("workload").Value("mixed_stream");
  json.Key("variant").Value("oracle");
  json.Key("wall_s").Value(mixed.oracle_wall);
  json.Key("acceptance").Value(mixed.oracle_acceptance);
  json.EndObject();
  json.BeginObject();
  json.Key("workload").Value("mixed_stream");
  json.Key("variant").Value("incremental");
  json.Key("wall_s").Value(mixed.incr_wall);
  json.Key("acceptance").Value(mixed.incr_acceptance);
  json.Key("churn_per_admit").Value(mixed.churn_per_admit);
  json.EndObject();
  if (std::abs(mixed.incr_acceptance - mixed.oracle_acceptance) > tol) {
    std::fprintf(stderr,
                 "FAIL acceptance: incremental %.3f vs oracle %.3f "
                 "diverges beyond %.2f\n",
                 mixed.incr_acceptance, mixed.oracle_acceptance, tol);
    ok = false;
  }

  // ---- 3) analysis-cache A/B -------------------------------------------
  // Two workloads where admission keeps re-asking questions it has
  // already answered: "fallback_replay" runs under utilization pressure
  // (every failed incremental placement triggers a full repartition of
  // the resident set — a from-scratch re-analysis of state the memo has
  // seen), "epoch_replay" is a long admit/leave stream. The PR's
  // acceptance bar: cached >= 2x faster, decisions identical.
  struct AbCase {
    const char* name;
    online::StreamConfig scfg;
    unsigned cores;
  };
  std::vector<AbCase> cases;
  {
    AbCase fb;
    fb.name = "fallback_replay";
    fb.scfg.num_admits = 160;
    fb.scfg.util_min = 0.20;  // pressure: incremental placement fails,
    fb.scfg.util_max = 0.60;  // the offline fallback keeps running
    fb.scfg.leave_fraction = 0.7;
    fb.scfg.seed = 20110318;
    fb.cores = 4;
    cases.push_back(fb);
    AbCase ep;
    ep.name = "epoch_replay";
    ep.scfg.num_admits = 384;
    ep.scfg.seed = 20110319;
    ep.cores = 8;
    cases.push_back(ep);
  }
  std::printf("\nanalysis cache A/B (best of %d, warm table)\n", reps);
  for (const AbCase& c : cases) {
    const online::WorkloadStream s = online::GenerateStream(c.scfg);
    online::ReplayConfig rcfg;
    rcfg.controller.admission.num_cores = c.cores;
    const CacheRow row = RunCacheAB(s, rcfg, reps);
    const double speedup = row.uncached_wall / row.cached_wall;
    json.BeginObject();  // "uncached" first: reference variant
    json.Key("workload").Value(c.name);
    json.Key("variant").Value("uncached");
    json.Key("wall_s").Value(row.uncached_wall);
    json.EndObject();
    json.BeginObject();
    json.Key("workload").Value(c.name);
    json.Key("variant").Value("cached");
    json.Key("wall_s").Value(row.cached_wall);
    json.Key("hit_rate").Value(row.hit_rate);
    json.Key("evictions").Value(row.evicts);
    json.EndObject();
    std::printf("  %-16s m=%u %4llu repart  uncached %7.2f ms  cached "
                "%7.2f ms  x%.1f  (%.1f%% of %llu lookups hit, %llu "
                "evictions)\n",
                c.name, c.cores,
                static_cast<unsigned long long>(row.repartitions),
                row.uncached_wall * 1e3, row.cached_wall * 1e3, speedup,
                100.0 * row.hit_rate,
                static_cast<unsigned long long>(row.lookups),
                static_cast<unsigned long long>(row.evicts));
    if (!row.identical) {
      std::fprintf(stderr, "FAIL cache A/B: %s cached decisions diverge "
                           "from uncached\n",
                   c.name);
      ok = false;
    }
    if (speedup < 2.0) {
      std::fprintf(stderr, "FAIL cache A/B: %s cached speedup x%.2f < "
                           "x2.0\n",
                   c.name, speedup);
      ok = false;
    }
  }

  // ---- 4) jobs-invariance ----------------------------------------------
  if (CheckJobsInvariance()) {
    std::printf("\njobs-invariance: replay batches bit-identical for "
                "jobs=1 and jobs=8\n");
  } else {
    ok = false;
  }

  json.EndArray();
  json.EndObject();
  std::string err;
  if (!util::WriteTextFile("BENCH_online.json", json.str(), &err)) {
    std::fprintf(stderr, "%s\n", err.c_str());
    return 1;
  }
  std::printf("wrote BENCH_online.json\n");
  return ok ? 0 : 1;
}
