// Durable online service (DESIGN.md §14): CRC32 vectors, atomic file
// writes, the stream CRC footer, controller snapshot round-trips, the
// crash/recover differential (halt-injection matrix across placement
// policies, scheduling policies and fault windows, plus a real
// fork+SIGKILL), and the corrupted-artifact ladder — bit-flipped
// checkpoints, torn journal tails, stale-checkpoint-long-tail,
// wrong-stream fingerprints. Recovery must be decision- and
// byte-identical to the never-crashed run; corruption must map to typed
// errors, never UB.

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "online/controller.hpp"
#include "online/durability.hpp"
#include "online/workload_stream.hpp"
#include "util/crc32.hpp"
#include "util/file_io.hpp"

namespace sps::online {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// util: CRC32 + atomic writes
// ---------------------------------------------------------------------------

TEST(Crc32, KnownVectorsAndIncrementalUpdates) {
  // The IEEE reflected-polynomial check value.
  EXPECT_EQ(util::Crc32Of("123456789"), 0xCBF43926u);
  EXPECT_EQ(util::Crc32Of(""), 0x00000000u);
  EXPECT_EQ(util::Crc32Of("The quick brown fox jumps over the lazy dog"),
            0x414FA339u);

  // Chunked updates equal the one-shot digest.
  util::Crc32 c;
  c.Update("12345");
  c.Update("6789");
  EXPECT_EQ(c.value(), 0xCBF43926u);
}

TEST(FileIo, AtomicWriteRoundTripsAndFailsWithPathAndReason) {
  const std::string path = ::testing::TempDir() + "atomic_roundtrip.bin";
  const std::string payload("ab\0cd\n\xFFz", 8);  // binary-exact
  std::string err;
  ASSERT_TRUE(util::WriteFileAtomic(path, payload, false, &err)) << err;
  std::string back;
  ASSERT_TRUE(util::ReadFileBytes(path, back, &err)) << err;
  EXPECT_EQ(back, payload);
  // Overwrite is atomic too: afterwards only the new content exists and
  // no temp file is left behind.
  ASSERT_TRUE(util::WriteFileAtomic(path, "second", true, &err)) << err;
  ASSERT_TRUE(util::ReadFileBytes(path, back, &err));
  EXPECT_EQ(back, "second");
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  std::remove(path.c_str());

  err.clear();
  EXPECT_FALSE(util::WriteFileAtomic("/nonexistent/dir/x.bin", "x", false,
                                     &err));
  EXPECT_NE(err.find("/nonexistent/dir/x.bin"), std::string::npos) << err;
  EXPECT_NE(err.find("No such file"), std::string::npos) << err;
}

TEST(FileIo, WriteTextFileIsAtomicAndKeepsTheOldContentOnFailure) {
  const std::string path = ::testing::TempDir() + "atomic_text.txt";
  std::string err;
  ASSERT_TRUE(util::WriteTextFile(path, "hello", &err)) << err;
  std::string back;
  ASSERT_TRUE(util::ReadFileBytes(path, back, &err));
  EXPECT_EQ(back, "hello\n");  // the writer appends the newline
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Stream CRC footer (back-compat pinned)
// ---------------------------------------------------------------------------

WorkloadStream SmallStream(std::uint64_t seed = 7, std::size_t n = 24,
                           double soft = 0.4) {
  StreamConfig cfg;
  cfg.num_admits = n;
  cfg.leave_fraction = 0.5;
  cfg.soft_fraction = soft;
  cfg.seed = seed;
  return GenerateStream(cfg);
}

TEST(StreamCrcFooter, WrittenVerifiedAndCorruptionIsTyped) {
  const WorkloadStream s = SmallStream();
  const std::string path = ::testing::TempDir() + "stream_crc.txt";
  std::string err;
  ASSERT_TRUE(SaveStream(s, path, &err)) << err;

  std::string bytes;
  ASSERT_TRUE(util::ReadFileBytes(path, bytes, &err));
  EXPECT_NE(bytes.find("\n# crc32 "), std::string::npos);

  WorkloadStream loaded;
  ASSERT_TRUE(LoadStream(path, loaded, &err)) << err;
  EXPECT_EQ(s.requests(), loaded.requests());

  // Flip one digit inside a request line: the footer no longer covers
  // the bytes — a typed kCrcMismatch naming the footer's line.
  std::string corrupt = bytes;
  const std::size_t pos = corrupt.find("admit ") + 6;
  corrupt[pos] = corrupt[pos] == '1' ? '2' : '1';
  ASSERT_TRUE(util::WriteFileAtomic(path, corrupt, false, &err));
  StreamError serr;
  // The flip may instead trip the semantic validators (duplicate admit /
  // non-monotone time) before the footer is reached; any of those is a
  // correct rejection, but an untouched-request corruption must land on
  // the CRC check.
  EXPECT_FALSE(LoadStream(path, loaded, &serr));
  EXPECT_NE(serr.kind, StreamError::Kind::kNone);

  // Corrupting only the footer itself is unambiguous.
  std::string bad_footer = bytes;
  const std::size_t f = bad_footer.rfind("# crc32 ");
  bad_footer[f + 8] = bad_footer[f + 8] == 'a' ? 'b' : 'a';
  ASSERT_TRUE(util::WriteFileAtomic(path, bad_footer, false, &err));
  EXPECT_FALSE(LoadStream(path, loaded, &serr));
  EXPECT_EQ(serr.kind, StreamError::Kind::kCrcMismatch);
  EXPECT_NE(serr.message.find("crc32"), std::string::npos);
  std::remove(path.c_str());
}

TEST(StreamCrcFooter, FooterlessFilesStillLoad) {
  // Pre-§14 captures have no footer; they must keep loading unchanged.
  const WorkloadStream s = SmallStream();
  const std::string path = ::testing::TempDir() + "stream_nofooter.txt";
  std::string err;
  ASSERT_TRUE(SaveStream(s, path, &err)) << err;
  std::string bytes;
  ASSERT_TRUE(util::ReadFileBytes(path, bytes, &err));
  const std::size_t f = bytes.rfind("# crc32 ");
  ASSERT_NE(f, std::string::npos);
  ASSERT_TRUE(util::WriteFileAtomic(path, bytes.substr(0, f), false, &err));
  WorkloadStream loaded;
  ASSERT_TRUE(LoadStream(path, loaded, &err)) << err;
  EXPECT_EQ(s.requests(), loaded.requests());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Controller snapshot round-trip
// ---------------------------------------------------------------------------

ControllerConfig MakeControllerConfig(
    PlacePolicy place = PlacePolicy::kFirstFit,
    partition::SchedPolicy policy = partition::SchedPolicy::kEdf) {
  ControllerConfig cfg;
  cfg.admission.num_cores = 3;
  cfg.admission.policy = policy;
  cfg.admission.memo.enabled = false;
  cfg.place = place;
  cfg.unsplit_on_leave = true;
  return cfg;
}

TEST(ControllerSnapshot, RoundTripPreservesEveryFutureDecision) {
  const WorkloadStream s = SmallStream(11, 32);
  const ControllerConfig cfg = MakeControllerConfig();
  Controller a(cfg);
  const auto& reqs = s.requests();
  const std::size_t half = reqs.size() / 2;
  for (std::size_t i = 0; i < half; ++i) {
    if (reqs[i].kind == RequestKind::kAdmit) {
      (void)a.Admit(reqs[i].task);
    } else {
      (void)a.Leave(reqs[i].id);
    }
  }
  a.AdvanceEpoch(false);

  Controller b(cfg);
  ASSERT_TRUE(b.ImportState(a.ExportState()));
  EXPECT_EQ(b.resident(), a.resident());
  EXPECT_EQ(b.total_utilization(), a.total_utilization());  // exact bits

  // Both controllers must now make IDENTICAL decisions on the tail.
  for (std::size_t i = half; i < reqs.size(); ++i) {
    if (reqs[i].kind == RequestKind::kAdmit) {
      const AdmitOutcome oa = a.Admit(reqs[i].task);
      const AdmitOutcome ob = b.Admit(reqs[i].task);
      EXPECT_EQ(oa.accepted, ob.accepted) << "request " << i;
      EXPECT_EQ(oa.parts, ob.parts) << "request " << i;
    } else {
      EXPECT_EQ(a.Leave(reqs[i].id), b.Leave(reqs[i].id)) << "request " << i;
    }
  }
  a.AdvanceEpoch(false);
  b.AdvanceEpoch(false);
  EXPECT_EQ(a.CurrentPartition().summary(), b.CurrentPartition().summary());
  EXPECT_EQ(a.churn(), b.churn());
  EXPECT_EQ(a.overload_stats(), b.overload_stats());
}

TEST(ControllerSnapshot, ImportRejectsMismatchedCoreLayout) {
  Controller a(MakeControllerConfig());
  const ControllerSnapshot snap = a.ExportState();
  ControllerConfig other = MakeControllerConfig();
  other.admission.num_cores = 5;
  Controller b(other);
  EXPECT_FALSE(b.ImportState(snap));
  ControllerConfig fp = MakeControllerConfig(
      PlacePolicy::kFirstFit, partition::SchedPolicy::kFixedPriority);
  Controller c(fp);
  EXPECT_FALSE(c.ImportState(snap));
}

// ---------------------------------------------------------------------------
// Crash / recover differential
// ---------------------------------------------------------------------------

void ExpectSamePartition(const partition::Partition& a,
                         const partition::Partition& b) {
  EXPECT_EQ(a.num_cores, b.num_cores);
  EXPECT_EQ(a.policy, b.policy);
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    EXPECT_EQ(a.tasks[i].task, b.tasks[i].task);
    ASSERT_EQ(a.tasks[i].parts.size(), b.tasks[i].parts.size());
    for (std::size_t k = 0; k < a.tasks[i].parts.size(); ++k) {
      EXPECT_EQ(a.tasks[i].parts[k].core, b.tasks[i].parts[k].core);
      EXPECT_EQ(a.tasks[i].parts[k].budget, b.tasks[i].parts[k].budget);
      EXPECT_EQ(a.tasks[i].parts[k].local_priority,
                b.tasks[i].parts[k].local_priority);
      EXPECT_EQ(a.tasks[i].parts[k].rel_deadline,
                b.tasks[i].parts[k].rel_deadline);
    }
  }
}

/// The recovered run must match the uninterrupted one in every logical
/// field — per-epoch rows with their exact utilization bits, totals,
/// churn/overload ledgers, decision counters (memo hit/miss counters are
/// cache state, legitimately cold after recovery, and excluded by §12's
/// cache-independence contract), and the final placement.
void ExpectSameReplay(const ReplayResult& a, const ReplayResult& b) {
  EXPECT_EQ(a.epochs, b.epochs);
  EXPECT_EQ(a.admits, b.admits);
  EXPECT_EQ(a.rejects, b.rejects);
  EXPECT_EQ(a.leaves, b.leaves);
  EXPECT_EQ(a.churn, b.churn);
  EXPECT_EQ(a.overload, b.overload);
  EXPECT_EQ(a.shed_outstanding, b.shed_outstanding);
  EXPECT_EQ(a.admission.util_rejects, b.admission.util_rejects);
  EXPECT_EQ(a.admission.density_accepts, b.admission.density_accepts);
  EXPECT_EQ(a.admission.full_tests, b.admission.full_tests);
  ExpectSamePartition(a.final_partition, b.final_partition);
}

ReplayConfig MakeReplayConfig(PlacePolicy place,
                              partition::SchedPolicy policy, bool faults,
                              bool validate = false) {
  ReplayConfig cfg;
  cfg.controller = MakeControllerConfig(place, policy);
  cfg.epoch = Millis(1000);
  cfg.seed = 97;
  cfg.drain_epochs = 2;
  if (faults) {
    cfg.faults.spikes.push_back(
        SpikeEpoch{Millis(2000), Millis(4000), 0.3, 1.4});
  }
  if (validate) {
    cfg.validate_by_simulation = true;
    cfg.validate_sim.horizon = Millis(50);
  }
  return cfg;
}

std::string FreshDir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "sps_dur_" + tag;
  fs::remove_all(dir);
  return dir;
}

/// Run to completion plain; run durable halting after `halt` appends;
/// recover from the artifacts; expect the stitched run == the plain run.
void RunHaltRecoverDifferential(const ReplayConfig& base,
                                const WorkloadStream& s,
                                std::uint32_t halt, std::uint32_t every,
                                const std::string& tag) {
  SCOPED_TRACE(tag + " halt=" + std::to_string(halt));
  const ReplayResult plain = ReplayStream(s, base);

  ReplayConfig durable = base;
  durable.durability.dir = FreshDir(tag);
  durable.durability.checkpoint_every = every;
  durable.durability.halt_after_appends = halt;
  const ReplayResult crashed = ReplayStream(s, durable);
  ASSERT_TRUE(crashed.durability_error.ok())
      << crashed.durability_error.message;
  ASSERT_TRUE(crashed.recovery.halted_by_injection);

  ReplayConfig rec = base;
  rec.durability.dir = durable.durability.dir;
  rec.durability.checkpoint_every = every;
  rec.durability.recover = true;
  const ReplayResult recovered = ReplayStream(s, rec);
  ASSERT_TRUE(recovered.durability_error.ok())
      << recovered.durability_error.message;
  EXPECT_TRUE(recovered.recovery.attempted);
  ExpectSameReplay(plain, recovered);
  fs::remove_all(durable.durability.dir);
}

TEST(CrashRecovery, DifferentialAcrossPlacementsPoliciesAndFaults) {
  const WorkloadStream s = SmallStream(23, 40);
  int n = 0;
  for (const PlacePolicy place :
       {PlacePolicy::kFirstFit, PlacePolicy::kWorstFit,
        PlacePolicy::kSpaOrder}) {
    for (const partition::SchedPolicy policy :
         {partition::SchedPolicy::kEdf,
          partition::SchedPolicy::kFixedPriority}) {
      for (const bool faults : {false, true}) {
        const ReplayConfig cfg = MakeReplayConfig(place, policy, faults);
        const std::string tag = std::string(ToString(place)) +
                                (policy == partition::SchedPolicy::kEdf
                                     ? "_edf"
                                     : "_fp") +
                                (faults ? "_flt" : "") + std::to_string(n);
        // Early crash (journal-dominated redo) and late crash
        // (checkpoint-dominated).
        RunHaltRecoverDifferential(cfg, s, 5, 2, tag);
        RunHaltRecoverDifferential(cfg, s, 35, 2, tag);
        ++n;
      }
    }
  }
}

TEST(CrashRecovery, DifferentialWithEpochValidationAndMemoOn) {
  // Validation simulations (exec generations included) and a warm memo
  // must not perturb the recovered decisions or the per-epoch rows.
  const WorkloadStream s = SmallStream(31, 28);
  ReplayConfig cfg = MakeReplayConfig(PlacePolicy::kFirstFit,
                                      partition::SchedPolicy::kEdf,
                                      /*faults=*/true, /*validate=*/true);
  cfg.controller.admission.memo.enabled = true;
  RunHaltRecoverDifferential(cfg, s, 12, 3, "validated");
}

TEST(CrashRecovery, StaleCheckpointWithLongJournalTail) {
  // A sparse checkpoint cadence forces recovery to redo a long journal
  // tail — the redo cross-check path, not the checkpoint fast path.
  const WorkloadStream s = SmallStream(41, 40);
  const ReplayConfig cfg = MakeReplayConfig(
      PlacePolicy::kWorstFit, partition::SchedPolicy::kEdf, true);
  RunHaltRecoverDifferential(cfg, s, 48, 16, "staletail");
}

TEST(CrashRecovery, EmptyDirectoryRecoversFromScratch) {
  const WorkloadStream s = SmallStream(5, 16);
  const ReplayConfig base = MakeReplayConfig(
      PlacePolicy::kFirstFit, partition::SchedPolicy::kEdf, false);
  const ReplayResult plain = ReplayStream(s, base);
  ReplayConfig rec = base;
  rec.durability.dir = FreshDir("emptydir");
  rec.durability.recover = true;
  const ReplayResult r = ReplayStream(s, rec);
  ASSERT_TRUE(r.durability_error.ok()) << r.durability_error.message;
  EXPECT_TRUE(r.recovery.attempted);
  EXPECT_FALSE(r.recovery.recovered);
  EXPECT_EQ(r.recovery.journal_records, 0u);
  ExpectSameReplay(plain, r);
  fs::remove_all(rec.durability.dir);
}

TEST(CrashRecovery, SigkillMidReplayThenRecover) {
  // The real thing: a forked child replays with crash injection and dies
  // by SIGKILL mid-service; the parent recovers from its artifacts.
  const WorkloadStream s = SmallStream(53, 36);
  const ReplayConfig base = MakeReplayConfig(
      PlacePolicy::kFirstFit, partition::SchedPolicy::kEdf, true);
  const ReplayResult plain = ReplayStream(s, base);

  ReplayConfig crash = base;
  crash.durability.dir = FreshDir("sigkill");
  crash.durability.checkpoint_every = 2;
  crash.durability.crash_after_appends = 20;
  const pid_t pid = fork();
  ASSERT_NE(pid, -1);
  if (pid == 0) {
    (void)ReplayStream(s, crash);  // raises SIGKILL at append 20
    _exit(3);                      // only reached if injection failed
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  ASSERT_EQ(WTERMSIG(status), SIGKILL);

  ReplayConfig rec = base;
  rec.durability.dir = crash.durability.dir;
  rec.durability.recover = true;
  const ReplayResult recovered = ReplayStream(s, rec);
  ASSERT_TRUE(recovered.durability_error.ok())
      << recovered.durability_error.message;
  EXPECT_TRUE(recovered.recovery.recovered);
  EXPECT_GE(recovered.recovery.journal_records, 20u);
  ExpectSameReplay(plain, recovered);
  fs::remove_all(crash.durability.dir);
}

// ---------------------------------------------------------------------------
// Corrupted artifacts: typed errors or correct recovery, never UB
// ---------------------------------------------------------------------------

/// Leave crash artifacts in a fresh dir and return it.
std::string MakeCrashArtifacts(const WorkloadStream& s,
                               const ReplayConfig& base, std::uint32_t halt,
                               std::uint32_t every, const std::string& tag) {
  ReplayConfig durable = base;
  durable.durability.dir = FreshDir(tag);
  durable.durability.checkpoint_every = every;
  durable.durability.halt_after_appends = halt;
  const ReplayResult r = ReplayStream(s, durable);
  EXPECT_TRUE(r.durability_error.ok()) << r.durability_error.message;
  return durable.durability.dir;
}

void FlipByteAt(const std::string& path, std::size_t offset) {
  std::string bytes;
  std::string err;
  ASSERT_TRUE(util::ReadFileBytes(path, bytes, &err)) << err;
  ASSERT_LT(offset, bytes.size());
  bytes[offset] = static_cast<char>(bytes[offset] ^ 0x40);
  ASSERT_TRUE(util::WriteFileAtomic(path, bytes, false, &err)) << err;
}

TEST(CorruptArtifacts, BitFlippedCheckpointFallsBackToOlderOne) {
  const WorkloadStream s = SmallStream(61, 40);
  const ReplayConfig base = MakeReplayConfig(
      PlacePolicy::kFirstFit, partition::SchedPolicy::kEdf, false);
  const ReplayResult plain = ReplayStream(s, base);
  const std::string dir = MakeCrashArtifacts(s, base, 35, 2, "flipckpt");

  const std::vector<std::string> ckpts = ListCheckpoints(dir);
  ASSERT_GE(ckpts.size(), 2u);
  FlipByteAt(ckpts.front(), fs::file_size(ckpts.front()) / 2);

  ReplayConfig rec = base;
  rec.durability.dir = dir;
  rec.durability.recover = true;
  const ReplayResult r = ReplayStream(s, rec);
  ASSERT_TRUE(r.durability_error.ok()) << r.durability_error.message;
  EXPECT_TRUE(r.recovery.recovered);
  EXPECT_GE(r.recovery.checkpoints_skipped, 1u);
  ExpectSameReplay(plain, r);
  fs::remove_all(dir);
}

TEST(CorruptArtifacts, AllCheckpointsCorruptRecoversFromJournalAlone) {
  const WorkloadStream s = SmallStream(67, 32);
  const ReplayConfig base = MakeReplayConfig(
      PlacePolicy::kWorstFit, partition::SchedPolicy::kEdf, false);
  const ReplayResult plain = ReplayStream(s, base);
  const std::string dir = MakeCrashArtifacts(s, base, 30, 2, "allcorrupt");

  for (const std::string& p : ListCheckpoints(dir)) {
    FlipByteAt(p, fs::file_size(p) / 3);
  }
  ReplayConfig rec = base;
  rec.durability.dir = dir;
  rec.durability.recover = true;
  const ReplayResult r = ReplayStream(s, rec);
  ASSERT_TRUE(r.durability_error.ok()) << r.durability_error.message;
  EXPECT_FALSE(r.recovery.recovered);  // scratch redo
  EXPECT_GE(r.recovery.checkpoints_skipped, 1u);
  ExpectSameReplay(plain, r);
  fs::remove_all(dir);
}

TEST(CorruptArtifacts, TornJournalTailIsTruncatedAndRecovered) {
  const WorkloadStream s = SmallStream(71, 32);
  const ReplayConfig base = MakeReplayConfig(
      PlacePolicy::kFirstFit, partition::SchedPolicy::kEdf, false);
  const ReplayResult plain = ReplayStream(s, base);
  const std::string dir = MakeCrashArtifacts(s, base, 25, 4, "torn");

  // Tear the tail: chop the last 5 bytes (mid-record), then append
  // garbage that can't frame — both must be dropped at the last valid
  // record boundary.
  const std::string journal = dir + "/journal.wal";
  std::string bytes;
  std::string err;
  ASSERT_TRUE(util::ReadFileBytes(journal, bytes, &err));
  const std::string torn = bytes.substr(0, bytes.size() - 5) + "GARBAGE!";
  ASSERT_TRUE(util::WriteFileAtomic(journal, torn, false, &err));

  JournalScan scan;
  ASSERT_TRUE(ScanJournal(journal, scan));
  EXPECT_LT(scan.valid_bytes, scan.total_bytes);
  EXPECT_GE(scan.records, 1u);

  ReplayConfig rec = base;
  rec.durability.dir = dir;
  rec.durability.recover = true;
  const ReplayResult r = ReplayStream(s, rec);
  ASSERT_TRUE(r.durability_error.ok()) << r.durability_error.message;
  EXPECT_GT(r.recovery.journal_truncated_bytes, 0u);
  ExpectSameReplay(plain, r);
  // The torn tail was physically truncated and the redo re-appended the
  // lost suffix: the journal now frame-validates end to end.
  JournalScan after;
  ASSERT_TRUE(ScanJournal(journal, after));
  EXPECT_EQ(after.valid_bytes, after.total_bytes);
  EXPECT_GT(after.records, scan.records);
  fs::remove_all(dir);
}

TEST(CorruptArtifacts, JournalRecordDivergenceIsATypedError) {
  // A record whose CRC verifies but whose decision was tampered with:
  // the redo cross-check must refuse to silently absorb it.
  const WorkloadStream s = SmallStream(73, 24);
  ReplayConfig base = MakeReplayConfig(PlacePolicy::kFirstFit,
                                       partition::SchedPolicy::kEdf, false);
  const std::string dir = MakeCrashArtifacts(s, base, 15, 0, "diverge");

  const std::string journal = dir + "/journal.wal";
  std::string bytes;
  std::string err;
  ASSERT_TRUE(util::ReadFileBytes(journal, bytes, &err));
  // Frame: 20-byte header, then [len u32][payload][crc u32]. Flip the
  // first record's flags byte (payload offset 9) and re-seal its CRC so
  // the framing stays valid.
  ASSERT_GT(bytes.size(), 24u);
  const auto u32_at = [&](std::size_t off) {
    return static_cast<std::uint32_t>(
               static_cast<unsigned char>(bytes[off])) |
           (static_cast<std::uint32_t>(
                static_cast<unsigned char>(bytes[off + 1]))
            << 8) |
           (static_cast<std::uint32_t>(
                static_cast<unsigned char>(bytes[off + 2]))
            << 16) |
           (static_cast<std::uint32_t>(
                static_cast<unsigned char>(bytes[off + 3]))
            << 24);
  };
  const std::uint32_t len = u32_at(20);
  ASSERT_GT(bytes.size(), 24u + len + 4u);
  bytes[24 + 9] = static_cast<char>(bytes[24 + 9] ^ 0x01);  // flags
  const std::uint32_t crc =
      util::Crc32Of(std::string_view(bytes).substr(24, len));
  for (int i = 0; i < 4; ++i) {
    bytes[24 + len + i] = static_cast<char>((crc >> (8 * i)) & 0xFFu);
  }
  ASSERT_TRUE(util::WriteFileAtomic(journal, bytes, false, &err));

  ReplayConfig rec = base;
  rec.durability.dir = dir;
  rec.durability.recover = true;
  const ReplayResult r = ReplayStream(s, rec);
  EXPECT_EQ(r.durability_error.kind,
            DurabilityError::Kind::kJournalDivergence);
  EXPECT_NE(r.durability_error.message.find("diverges"),
            std::string::npos);
  fs::remove_all(dir);
}

TEST(CorruptArtifacts, WrongStreamFingerprintIsATypedError) {
  const WorkloadStream s = SmallStream(79, 24);
  const ReplayConfig base = MakeReplayConfig(
      PlacePolicy::kFirstFit, partition::SchedPolicy::kEdf, false);
  const std::string dir = MakeCrashArtifacts(s, base, 15, 2, "wrongfp");

  // Recover against a DIFFERENT stream: both the checkpoints and the
  // journal carry the original fingerprint.
  const WorkloadStream other = SmallStream(80, 24);
  ReplayConfig rec = base;
  rec.durability.dir = dir;
  rec.durability.recover = true;
  const ReplayResult r = ReplayStream(other, rec);
  EXPECT_EQ(r.durability_error.kind,
            DurabilityError::Kind::kFingerprintMismatch);

  // Same stream but a different controller config fingerprints
  // differently too.
  ReplayConfig cfg2 = rec;
  cfg2.controller.place = PlacePolicy::kWorstFit;
  const ReplayResult r2 = ReplayStream(s, cfg2);
  EXPECT_EQ(r2.durability_error.kind,
            DurabilityError::Kind::kFingerprintMismatch);
  fs::remove_all(dir);
}

TEST(CorruptArtifacts, GarbageFilesYieldTypedErrorsNeverUB) {
  const std::string dir = FreshDir("garbage");
  fs::create_directories(dir);
  std::string err;
  // A journal that is not a journal.
  const std::string journal = dir + "/journal.wal";
  ASSERT_TRUE(util::WriteFileAtomic(journal, "not a journal at all", false,
                                    &err));
  JournalScan scan;
  DurabilityError derr;
  EXPECT_FALSE(ScanJournal(journal, scan, &derr));
  EXPECT_EQ(derr.kind, DurabilityError::Kind::kBadMagic);

  // Too short for its own header.
  ASSERT_TRUE(util::WriteFileAtomic(journal, "xy", false, &err));
  EXPECT_FALSE(ScanJournal(journal, scan, &derr));
  EXPECT_EQ(derr.kind, DurabilityError::Kind::kTruncated);

  // A checkpoint full of zeros is skipped, not trusted: recovery falls
  // back to scratch and still completes.
  const WorkloadStream s = SmallStream(83, 12);
  const ReplayConfig base = MakeReplayConfig(
      PlacePolicy::kFirstFit, partition::SchedPolicy::kEdf, false);
  const ReplayResult plain = ReplayStream(s, base);
  fs::remove(journal);
  ASSERT_TRUE(util::WriteFileAtomic(dir + "/ckpt-0000000002.sps",
                                    std::string(256, '\0'), false, &err));
  ReplayConfig rec = base;
  rec.durability.dir = dir;
  rec.durability.recover = true;
  const ReplayResult r = ReplayStream(s, rec);
  ASSERT_TRUE(r.durability_error.ok()) << r.durability_error.message;
  EXPECT_FALSE(r.recovery.recovered);
  EXPECT_EQ(r.recovery.checkpoints_skipped, 1u);
  ExpectSameReplay(plain, r);
  fs::remove_all(dir);
}

TEST(Durability, FsyncPolicyParsesAllSpellings) {
  FsyncPolicy p = FsyncPolicy::kOff;
  std::uint32_t n = 0;
  EXPECT_TRUE(ParseFsyncPolicy("every-epoch", p, n));
  EXPECT_EQ(p, FsyncPolicy::kEveryEpoch);
  EXPECT_TRUE(ParseFsyncPolicy("off", p, n));
  EXPECT_EQ(p, FsyncPolicy::kOff);
  EXPECT_TRUE(ParseFsyncPolicy("every-n", p, n));
  EXPECT_EQ(p, FsyncPolicy::kEveryN);
  EXPECT_TRUE(ParseFsyncPolicy("every-n:8", p, n));
  EXPECT_EQ(n, 8u);
  EXPECT_FALSE(ParseFsyncPolicy("every-n:", p, n));
  EXPECT_FALSE(ParseFsyncPolicy("sometimes", p, n));
  EXPECT_FALSE(ParseFsyncPolicy("every-n:0", p, n));
}

TEST(Durability, FreshRunWipesStaleArtifacts) {
  // recover=false means "start a NEW run": artifacts from a previous one
  // must not leak into (or poison) the directory.
  const WorkloadStream s = SmallStream(89, 16);
  ReplayConfig durable = MakeReplayConfig(
      PlacePolicy::kFirstFit, partition::SchedPolicy::kEdf, false);
  durable.durability.dir = FreshDir("wipe");
  durable.durability.checkpoint_every = 2;
  const ReplayResult first = ReplayStream(s, durable);
  ASSERT_TRUE(first.durability_error.ok());
  ASSERT_FALSE(ListCheckpoints(durable.durability.dir).empty());

  // Second fresh run over a DIFFERENT stream in the same dir: must not
  // trip fingerprint checks (the stale journal was wiped).
  const WorkloadStream other = SmallStream(90, 16);
  const ReplayResult second = ReplayStream(other, durable);
  ASSERT_TRUE(second.durability_error.ok())
      << second.durability_error.message;
  fs::remove_all(durable.durability.dir);
}

TEST(Durability, BatchReplayGivesEachStreamItsOwnArtifacts) {
  std::vector<WorkloadStream> streams;
  streams.push_back(SmallStream(91, 12));
  streams.push_back(SmallStream(92, 12));
  ReplayConfig cfg = MakeReplayConfig(PlacePolicy::kFirstFit,
                                      partition::SchedPolicy::kEdf, false);
  cfg.durability.dir = FreshDir("batch");
  cfg.durability.checkpoint_every = 2;
  const std::vector<ReplayResult> rs = ReplayBatch(streams, cfg, 1);
  ASSERT_EQ(rs.size(), 2u);
  for (std::size_t i = 0; i < rs.size(); ++i) {
    EXPECT_TRUE(rs[i].durability_error.ok())
        << rs[i].durability_error.message;
    EXPECT_TRUE(
        fs::exists(cfg.durability.dir + "/stream-" + std::to_string(i) +
                   "/journal.wal"));
  }
  fs::remove_all(cfg.durability.dir);
}

}  // namespace
}  // namespace sps::online
