// Tests for the task model: time helpers, tasks, task sets, priority
// assignment, orderings, generators.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "rt/generator.hpp"
#include "rt/task.hpp"
#include "rt/taskset.hpp"
#include "rt/time.hpp"

namespace sps::rt {
namespace {

TEST(Time, UnitConversions) {
  EXPECT_EQ(Micros(1.5), 1500);
  EXPECT_EQ(Millis(2.0), 2'000'000);
  EXPECT_DOUBLE_EQ(ToMicros(3300), 3.3);
  EXPECT_DOUBLE_EQ(ToMillis(kSecond), 1000.0);
}

TEST(Time, CeilDiv) {
  EXPECT_EQ(CeilDiv(10, 5), 2);
  EXPECT_EQ(CeilDiv(11, 5), 3);
  EXPECT_EQ(CeilDiv(1, 5), 1);
  EXPECT_EQ(CeilDiv(0, 5), 0);
}

TEST(Task, UtilizationAndValidity) {
  const Task t = MakeTask(0, Millis(2), Millis(10));
  EXPECT_DOUBLE_EQ(t.utilization(), 0.2);
  EXPECT_TRUE(t.implicit_deadline());
  EXPECT_TRUE(t.valid());

  Task bad = t;
  bad.wcet = Millis(11);
  EXPECT_FALSE(bad.valid());
  Task zero = t;
  zero.wcet = 0;
  EXPECT_FALSE(zero.valid());
}

TEST(Task, DensityUsesMinOfDeadlineAndPeriod) {
  Task t = MakeTask(0, Millis(2), Millis(10));
  t.deadline = Millis(4);
  EXPECT_DOUBLE_EQ(t.density(), 0.5);
  EXPECT_FALSE(t.implicit_deadline());
}

TEST(TaskSet, TotalsAndLookup) {
  TaskSet ts({MakeTask(0, Millis(1), Millis(10)),
              MakeTask(1, Millis(3), Millis(10)),
              MakeTask(2, Millis(5), Millis(20))});
  EXPECT_DOUBLE_EQ(ts.total_utilization(), 0.1 + 0.3 + 0.25);
  EXPECT_DOUBLE_EQ(ts.max_utilization(), 0.3);
  ASSERT_NE(ts.find(2), nullptr);
  EXPECT_EQ(ts.find(2)->wcet, Millis(5));
  EXPECT_EQ(ts.find(99), nullptr);
  EXPECT_TRUE(ts.valid());
}

TEST(TaskSet, DuplicateIdsInvalid) {
  TaskSet ts({MakeTask(1, 1, 10), MakeTask(1, 1, 20)});
  EXPECT_FALSE(ts.valid());
}

TEST(TaskSet, Hyperperiod) {
  TaskSet ts({MakeTask(0, 1, 4), MakeTask(1, 1, 6), MakeTask(2, 1, 10)});
  ASSERT_TRUE(ts.hyperperiod().has_value());
  EXPECT_EQ(*ts.hyperperiod(), 60);
}

TEST(TaskSet, HyperperiodOverflowDetected) {
  TaskSet ts;
  // Large coprime periods whose LCM overflows int64.
  ts.add(MakeTask(0, 1, 1'000'000'007));
  ts.add(MakeTask(1, 1, 1'000'000'009));
  ts.add(MakeTask(2, 1, 998'244'353));
  ts.add(MakeTask(3, 1, 754'974'721));
  EXPECT_FALSE(ts.hyperperiod().has_value());
}

TEST(Priorities, RateMonotonicOrdersByPeriod) {
  TaskSet ts({MakeTask(0, 1, Millis(100)), MakeTask(1, 1, Millis(10)),
              MakeTask(2, 1, Millis(50))});
  AssignRateMonotonic(ts);
  EXPECT_TRUE(ts.priorities_assigned());
  EXPECT_EQ(ts[1].priority, 0u);  // shortest period -> highest priority
  EXPECT_EQ(ts[2].priority, 1u);
  EXPECT_EQ(ts[0].priority, 2u);
}

TEST(Priorities, RateMonotonicTieBreaksById) {
  TaskSet ts({MakeTask(5, 1, Millis(10)), MakeTask(3, 1, Millis(10))});
  AssignRateMonotonic(ts);
  EXPECT_EQ(ts[1].priority, 0u);  // id 3 beats id 5 on equal periods
  EXPECT_EQ(ts[0].priority, 1u);
}

TEST(Priorities, DeadlineMonotonic) {
  TaskSet ts;
  Task a = MakeTask(0, 1, Millis(100));
  a.deadline = Millis(20);
  Task b = MakeTask(1, 1, Millis(10));  // D = 10
  ts.add(a);
  ts.add(b);
  AssignDeadlineMonotonic(ts);
  EXPECT_EQ(ts[1].priority, 0u);
  EXPECT_EQ(ts[0].priority, 1u);
}

TEST(Orderings, DecreasingUtilization) {
  TaskSet ts({MakeTask(0, Millis(1), Millis(10)),    // 0.1
              MakeTask(1, Millis(8), Millis(10)),    // 0.8
              MakeTask(2, Millis(4), Millis(10))});  // 0.4
  const auto order = OrderByDecreasingUtilization(ts);
  EXPECT_EQ(order, (std::vector<std::size_t>{1, 2, 0}));
}

TEST(Orderings, ByPriority) {
  TaskSet ts({MakeTask(0, 1, Millis(100)), MakeTask(1, 1, Millis(10))});
  AssignRateMonotonic(ts);
  const auto order = OrderByPriority(ts);
  EXPECT_EQ(order, (std::vector<std::size_t>{1, 0}));
}

// ---- generators ----------------------------------------------------------

TEST(UUniFast, SumsToTarget) {
  Rng rng(7);
  for (const double target : {0.5, 1.0, 2.5, 3.9}) {
    const auto u = UUniFast(8, target, rng);
    double sum = 0;
    for (double x : u) {
      sum += x;
      EXPECT_GE(x, 0.0);
    }
    EXPECT_NEAR(sum, target, 1e-9);
  }
}

TEST(UUniFast, SingleTaskGetsEverything) {
  Rng rng(1);
  const auto u = UUniFast(1, 0.7, rng);
  ASSERT_EQ(u.size(), 1u);
  EXPECT_DOUBLE_EQ(u[0], 0.7);
}

TEST(UUniFastDiscard, RespectsCap) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const auto u = UUniFastDiscard(6, 3.0, 0.8, rng);
    for (double x : u) EXPECT_LE(x, 0.8 + 1e-12);
    double sum = 0;
    for (double x : u) sum += x;
    EXPECT_NEAR(sum, 3.0, 1e-9);
  }
}

TEST(UUniFastDiscard, RejectsImpossible) {
  Rng rng(3);
  EXPECT_THROW(UUniFastDiscard(4, 3.0, 0.5, rng), std::invalid_argument);
}

TEST(Generator, ProducesValidPrioritizedSets) {
  GeneratorConfig cfg;
  cfg.num_tasks = 12;
  cfg.total_utilization = 2.4;
  Rng rng(99);
  for (int i = 0; i < 20; ++i) {
    const TaskSet ts = GenerateTaskSet(cfg, rng);
    EXPECT_EQ(ts.size(), 12u);
    EXPECT_TRUE(ts.valid());
    EXPECT_TRUE(ts.priorities_assigned());
    EXPECT_NEAR(ts.total_utilization(), 2.4, 0.05);  // integer rounding
    for (const Task& t : ts) {
      EXPECT_GE(t.period, cfg.period_min);
      EXPECT_LE(t.period, cfg.period_max);
      EXPECT_TRUE(t.implicit_deadline());
    }
  }
}

TEST(Generator, DeterministicPerSeed) {
  GeneratorConfig cfg;
  Rng a(42), b(42), c(43);
  const TaskSet s1 = GenerateTaskSet(cfg, a);
  const TaskSet s2 = GenerateTaskSet(cfg, b);
  const TaskSet s3 = GenerateTaskSet(cfg, c);
  ASSERT_EQ(s1.size(), s2.size());
  for (std::size_t i = 0; i < s1.size(); ++i) {
    EXPECT_EQ(s1[i], s2[i]);
  }
  bool any_diff = false;
  for (std::size_t i = 0; i < s1.size(); ++i) {
    if (!(s1[i] == s3[i])) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Generator, ConstrainedDeadlinesStayInRange) {
  GeneratorConfig cfg;
  cfg.implicit_deadlines = false;
  Rng rng(5);
  for (int i = 0; i < 10; ++i) {
    const TaskSet ts = GenerateTaskSet(cfg, rng);
    for (const Task& t : ts) {
      EXPECT_GE(t.deadline, t.wcet);
      EXPECT_LE(t.deadline, t.period);
    }
  }
}

TEST(Generator, DiscretePeriodMenu) {
  GeneratorConfig cfg;
  cfg.num_tasks = 40;
  cfg.total_utilization = 2.0;
  cfg.period_choices = {Millis(1), Millis(5), Millis(10), Millis(100)};
  Rng rng(8);
  const TaskSet ts = GenerateTaskSet(cfg, rng);
  for (const Task& t : ts) {
    const bool in_menu =
        t.period == Millis(1) || t.period == Millis(5) ||
        t.period == Millis(10) || t.period == Millis(100);
    EXPECT_TRUE(in_menu) << ToString(t);
  }
  // The harmonic menu keeps the hyperperiod tiny.
  ASSERT_TRUE(ts.hyperperiod().has_value());
  EXPECT_EQ(*ts.hyperperiod(), Millis(100));
}

class GeneratorUtilSweep : public ::testing::TestWithParam<double> {};

TEST_P(GeneratorUtilSweep, HitsTargetUtilization) {
  GeneratorConfig cfg;
  cfg.num_tasks = 16;
  cfg.total_utilization = GetParam() * 4;  // 4 cores normalized
  cfg.max_task_utilization = 1.0;
  Rng rng(1234);
  const TaskSet ts = GenerateTaskSet(cfg, rng);
  EXPECT_NEAR(ts.total_utilization(), cfg.total_utilization, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Grid, GeneratorUtilSweep,
                         ::testing::Values(0.3, 0.5, 0.7, 0.8, 0.9, 0.95));

}  // namespace
}  // namespace sps::rt
