// util/arena.hpp — the slab/free-list arena every container backend and
// the kernel's job recycling draw from (DESIGN.md §9). The contract
// under test: stable addresses for the lifetime of an object, O(1)
// free-list reuse (released storage is handed out again), correct
// construction/destruction, alignment, and survival under heavy churn
// and move.

#include "util/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace sps::util {
namespace {

TEST(SlabArena, CreatePassesConstructorArguments) {
  SlabArena<std::pair<int, std::string>> a;
  auto* p = a.create(7, std::string("seven"));
  EXPECT_EQ(p->first, 7);
  EXPECT_EQ(p->second, "seven");
  a.destroy(p);
}

TEST(SlabArena, ReusesReleasedStorage) {
  SlabArena<std::uint64_t> a;
  std::uint64_t* first = a.create(1);
  a.destroy(first);
  // LIFO free list: the very next create gets the same slot back.
  std::uint64_t* second = a.create(2);
  EXPECT_EQ(first, second);
  EXPECT_EQ(*second, 2u);
  a.destroy(second);
  EXPECT_EQ(a.live(), 0u);
}

TEST(SlabArena, AddressesStableAcrossGrowth) {
  SlabArena<std::uint64_t> a;
  std::vector<std::uint64_t*> ptrs;
  // Far past several slab growths; every earlier pointer must survive.
  for (std::uint64_t i = 0; i < 5000; ++i) ptrs.push_back(a.create(i));
  for (std::uint64_t i = 0; i < 5000; ++i) {
    ASSERT_EQ(*ptrs[i], i) << "value clobbered by slab growth at " << i;
  }
  EXPECT_EQ(a.live(), 5000u);
  EXPECT_GE(a.capacity(), 5000u);
  for (auto* p : ptrs) a.destroy(p);
  EXPECT_EQ(a.live(), 0u);
}

TEST(SlabArena, DistinctLiveObjectsNeverAlias) {
  SlabArena<int> a;
  std::set<int*> live;
  for (int i = 0; i < 1000; ++i) {
    int* p = a.create(i);
    EXPECT_TRUE(live.insert(p).second) << "slot handed out twice";
  }
  for (int* p : live) a.destroy(p);
}

TEST(SlabArena, AlignmentRespected) {
  struct alignas(64) Wide {
    double d[8];
  };
  SlabArena<Wide> a;
  std::vector<Wide*> ptrs;
  for (int i = 0; i < 100; ++i) {
    Wide* p = a.create();
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u);
    ptrs.push_back(p);
  }
  for (Wide* p : ptrs) a.destroy(p);
}

TEST(SlabArena, RunsDestructors) {
  struct Counted {
    explicit Counted(int* c) : counter(c) { ++*counter; }
    ~Counted() { --*counter; }
    int* counter;
  };
  int alive = 0;
  SlabArena<Counted> a;
  std::vector<Counted*> ptrs;
  for (int i = 0; i < 300; ++i) ptrs.push_back(a.create(&alive));
  EXPECT_EQ(alive, 300);
  for (Counted* p : ptrs) a.destroy(p);
  EXPECT_EQ(alive, 0);
}

TEST(SlabArena, FreeListChurnStaysBounded) {
  // Steady-state churn at a fixed live population must not grow
  // capacity: every create after warm-up is a free-list pop.
  SlabArena<std::uint64_t> a;
  std::vector<std::uint64_t*> live;
  std::mt19937_64 rng(42);
  for (std::uint64_t i = 0; i < 256; ++i) live.push_back(a.create(i));
  const std::size_t warm_capacity = a.capacity();
  for (int step = 0; step < 100000; ++step) {
    const std::size_t victim = rng() % live.size();
    a.destroy(live[victim]);
    live[victim] = a.create(static_cast<std::uint64_t>(step));
  }
  EXPECT_EQ(a.capacity(), warm_capacity) << "churn leaked slots";
  EXPECT_EQ(a.live(), 256u);
  for (auto* p : live) a.destroy(p);
}

TEST(SlabArena, MoveTransfersStorage) {
  SlabArena<std::uint64_t> a;
  std::uint64_t* p = a.create(99);
  SlabArena<std::uint64_t> b(std::move(a));
  EXPECT_EQ(*p, 99u);  // address survives the arena move
  EXPECT_EQ(b.live(), 1u);
  b.destroy(p);
}

}  // namespace
}  // namespace sps::util
