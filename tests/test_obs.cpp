// Tests for the observability subsystem (DESIGN.md §10): log2 histogram
// semantics, stamped trace buffers and their deterministic merge, the
// streaming-metrics invariants (histogram totals == completions,
// per-core busy + overhead + idle == span), serial-vs-sharded metrics
// equality, the MetricsReport writers, and the Perfetto exporter
// (golden-file + structural checks).

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "obs/metrics.hpp"
#include "obs/perfetto.hpp"
#include "obs/report.hpp"
#include "obs/sink.hpp"
#include "obs/trace_buffer.hpp"
#include "overhead/model.hpp"
#include "partition/placement.hpp"
#include "partition/spa.hpp"
#include "rt/generator.hpp"
#include "sim/engine.hpp"
#include "sim/global_engine.hpp"
#include "trace/gantt.hpp"

namespace sps::obs {
namespace {

using partition::kNormalPriorityBase;
using rt::MakeTask;

// ---------------------------------------------------------------------------
// LogHistogram
// ---------------------------------------------------------------------------

TEST(LogHistogram, BucketsByBitWidth) {
  LogHistogram h;
  h.Add(0);    // bucket 0
  h.Add(-5);   // bucket 0 (clamped)
  h.Add(1);    // bit_width(1)=1 -> bucket 1: [1,2)
  h.Add(2);    // bucket 2: [2,4)
  h.Add(3);    // bucket 2
  h.Add(4);    // bucket 3: [4,8)
  h.Add(1023); // bucket 10
  h.Add(1024); // bucket 11
  EXPECT_EQ(h.buckets[0], 2u);
  EXPECT_EQ(h.buckets[1], 1u);
  EXPECT_EQ(h.buckets[2], 2u);
  EXPECT_EQ(h.buckets[3], 1u);
  EXPECT_EQ(h.buckets[10], 1u);
  EXPECT_EQ(h.buckets[11], 1u);
  EXPECT_EQ(h.count(), 8u);
}

TEST(LogHistogram, SaturatesIntoLastBucket) {
  LogHistogram h;
  h.Add(kTimeNever);
  EXPECT_EQ(h.buckets[kHistBuckets - 1], 1u);
}

TEST(LogHistogram, QuantileReturnsBucketUpperBound) {
  LogHistogram h;
  EXPECT_EQ(h.Quantile(0.5), 0);  // empty
  for (int i = 0; i < 99; ++i) h.Add(3);  // bucket 2, upper bound 4
  h.Add(1000);                            // bucket 10, upper bound 1024
  EXPECT_EQ(h.Quantile(0.5), 4);
  EXPECT_EQ(h.Quantile(0.99), 4);
  EXPECT_EQ(h.Quantile(1.0), 1024);
}

TEST(LogHistogram, MergeIsElementwiseSum) {
  LogHistogram a, b;
  a.Add(1);
  b.Add(1);
  b.Add(100);
  a += b;
  EXPECT_EQ(a.buckets[1], 2u);
  EXPECT_EQ(a.count(), 3u);
}

// ---------------------------------------------------------------------------
// TraceBuffer + merge
// ---------------------------------------------------------------------------

trace::Event Ev(Time t, unsigned core, trace::EventKind k) {
  trace::Event e;
  e.time = t;
  e.core = core;
  e.kind = k;
  return e;
}

TEST(TraceBuffer, MergeOrdersByStampAcrossLanes) {
  // Lane 0 holds stamps {1, 5}; lane 1 holds {2, 3, 5'} where 5' ties
  // the key but loses on the tiebreak. The merge must interleave them
  // into stamp order regardless of lane layout.
  TraceBuffer l0, l1;
  l0.Append(Stamp{5, 0, 0, 0}, Ev(5, 0, trace::EventKind::kStart));
  l0.Append(Stamp{1, 0, 0, 0}, Ev(1, 0, trace::EventKind::kRelease));
  l1.Append(Stamp{2, 1, 0, 0}, Ev(2, 1, trace::EventKind::kRelease));
  l1.Append(Stamp{3, 1, 0, 0}, Ev(3, 1, trace::EventKind::kStart));
  l1.Append(Stamp{5, 1, 0, 0}, Ev(5, 1, trace::EventKind::kFinish));

  const std::vector<trace::Event> merged = MergeTraceBuffers({&l0, &l1});
  ASSERT_EQ(merged.size(), 5u);
  EXPECT_EQ(merged[0].time, 1);
  EXPECT_EQ(merged[1].time, 2);
  EXPECT_EQ(merged[2].time, 3);
  EXPECT_EQ(merged[3].time, 5);
  EXPECT_EQ(merged[3].core, 0u);  // tiebreak 0 before tiebreak 1
  EXPECT_EQ(merged[4].core, 1u);
}

TEST(TraceBuffer, ChainAndOrdinalRefineEqualKeys) {
  TraceBuffer b;
  b.Append(Stamp{7, 2, 1, 0}, Ev(7, 2, trace::EventKind::kStart));
  b.Append(Stamp{7, 2, 0, 1}, Ev(7, 2, trace::EventKind::kPreempt));
  b.Append(Stamp{7, 2, 0, 0}, Ev(7, 2, trace::EventKind::kRelease));
  const std::vector<trace::Event> merged = MergeTraceBuffers({&b});
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].kind, trace::EventKind::kRelease);
  EXPECT_EQ(merged[1].kind, trace::EventKind::kPreempt);
  EXPECT_EQ(merged[2].kind, trace::EventKind::kStart);
}

TEST(TraceBuffer, SurvivesChunkGrowth) {
  TraceBuffer b;
  const int n = 5000;  // multiple chunks
  for (int i = n - 1; i >= 0; --i) {
    b.Append(Stamp{static_cast<std::uint64_t>(i), 0, 0, 0},
             Ev(i, 0, trace::EventKind::kRelease));
  }
  EXPECT_EQ(b.size(), static_cast<std::size_t>(n));
  const std::vector<trace::Event> merged = MergeTraceBuffers({&b});
  ASSERT_EQ(merged.size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) EXPECT_EQ(merged[i].time, i);
}

// ---------------------------------------------------------------------------
// Streaming-metrics invariants
// ---------------------------------------------------------------------------

partition::Partition GeneratedSpa2Partition(unsigned cores,
                                            std::size_t tasks, double util,
                                            std::uint64_t seed) {
  rt::GeneratorConfig gen;
  gen.num_tasks = tasks;
  gen.total_utilization = util;
  rt::Rng rng(seed);
  const rt::TaskSet ts = rt::GenerateTaskSet(gen, rng);
  partition::SpaConfig scfg;
  scfg.num_cores = cores;
  scfg.preassign_heavy = true;
  const auto pr = partition::SpaPartition(ts, scfg);
  EXPECT_TRUE(pr.success);
  return pr.partition;
}

void CheckInvariants(const sim::SimResult& r, Time horizon) {
  ASSERT_TRUE(r.metrics.enabled());
  EXPECT_EQ(r.metrics.span, horizon);
  ASSERT_EQ(r.metrics.tasks.size(), r.tasks.size());
  for (std::size_t i = 0; i < r.tasks.size(); ++i) {
    SCOPED_TRACE("task " + std::to_string(i));
    // Histogram totals == job count: every completion lands in exactly
    // one response bucket; tardiness only counts late completions.
    EXPECT_EQ(r.metrics.tasks[i].response.count(), r.tasks[i].completed);
    EXPECT_LE(r.metrics.tasks[i].tardiness.count(),
              r.tasks[i].deadline_misses);
  }
  ASSERT_EQ(r.metrics.cores.size(), r.cores.size());
  for (std::size_t c = 0; c < r.metrics.cores.size(); ++c) {
    SCOPED_TRACE("core " + std::to_string(c));
    const CoreMetrics& m = r.metrics.cores[c];
    // Wall conservation: every nanosecond of the span is exactly one of
    // busy / overhead / idle.
    EXPECT_EQ(m.busy + m.overhead + m.idle, r.metrics.span);
    // Metrics busy covers at least the booked progress (it additionally
    // includes the truncated in-flight segment at the horizon).
    EXPECT_GE(m.busy, 0);
    EXPECT_GE(m.idle, 0);
  }
}

TEST(MetricsInvariants, HoldOnGeneratedWorkloadWithOverheads) {
  const partition::Partition p = GeneratedSpa2Partition(4, 24, 3.4, 2024);
  sim::SimConfig cfg;
  cfg.horizon = Millis(400);
  cfg.overheads = overhead::OverheadModel::PaperCoreI7();
  cfg.exec.kind = sim::ExecModel::Kind::kUniform;
  cfg.arrivals.kind = sim::ArrivalModel::Kind::kSporadicUniformDelay;
  cfg.record_metrics = true;
  const sim::SimResult r = Simulate(p, cfg);
  CheckInvariants(r, cfg.horizon);
  // The workload completes jobs and keeps cores busy.
  EXPECT_GT(r.metrics.tasks[0].response.count(), 0u);
  EXPECT_GT(r.metrics.cores[0].busy, 0);
}

TEST(MetricsInvariants, HoldUnderEveryArrivalModel) {
  const partition::Partition p = GeneratedSpa2Partition(4, 20, 3.2, 77);
  for (const sim::ArrivalModel::Kind kind :
       {sim::ArrivalModel::Kind::kPeriodic,
        sim::ArrivalModel::Kind::kSporadicUniformDelay,
        sim::ArrivalModel::Kind::kJittered,
        sim::ArrivalModel::Kind::kBursty}) {
    SCOPED_TRACE(static_cast<int>(kind));
    sim::SimConfig cfg;
    cfg.horizon = Millis(300);
    cfg.overheads = overhead::OverheadModel::PaperCoreI7();
    cfg.arrivals.kind = kind;
    cfg.record_metrics = true;
    CheckInvariants(Simulate(p, cfg), cfg.horizon);
  }
}

TEST(MetricsInvariants, TardinessRecordedOnOverload) {
  // One core, two tasks that cannot both fit: misses with tardiness.
  partition::Partition p;
  p.num_cores = 1;
  for (int i = 0; i < 2; ++i) {
    partition::PlacedTask pt;
    pt.task = MakeTask(static_cast<rt::TaskId>(i), Millis(6), Millis(10));
    pt.parts = {{0, Millis(6),
                 static_cast<rt::Priority>(i) + kNormalPriorityBase}};
    p.tasks.push_back(pt);
  }
  sim::SimConfig cfg;
  cfg.horizon = Millis(200);
  cfg.record_metrics = true;
  const sim::SimResult r = Simulate(p, cfg);
  CheckInvariants(r, cfg.horizon);
  EXPECT_GT(r.total_misses, 0u);
  const TaskMetrics& lp = r.metrics.tasks[1];
  EXPECT_GT(lp.tardiness.count(), 0u);
  EXPECT_GT(lp.max_tardiness, 0);
}

TEST(MetricsInvariants, HaltedRunSpanEndsAtHalt) {
  partition::Partition p;
  p.num_cores = 1;
  for (int i = 0; i < 2; ++i) {
    partition::PlacedTask pt;
    pt.task = MakeTask(static_cast<rt::TaskId>(i), Millis(6), Millis(10));
    pt.parts = {{0, Millis(6),
                 static_cast<rt::Priority>(i) + kNormalPriorityBase}};
    p.tasks.push_back(pt);
  }
  sim::SimConfig cfg;
  cfg.horizon = Millis(1000);
  cfg.stop_on_first_miss = true;
  cfg.record_metrics = true;
  const sim::SimResult r = Simulate(p, cfg);
  EXPECT_EQ(r.total_misses, 1u);
  ASSERT_TRUE(r.metrics.enabled());
  EXPECT_LT(r.metrics.span, Millis(1000));
  for (const CoreMetrics& m : r.metrics.cores) {
    EXPECT_EQ(m.busy + m.overhead + m.idle, r.metrics.span);
  }
}

TEST(MetricsInvariants, GlobalEngineRecordsMetricsToo) {
  rt::TaskSet ts;
  ts.add(MakeTask(0, Millis(1), Millis(10)));
  ts.add(MakeTask(1, Millis(1), Millis(10)));
  ts.add(MakeTask(2, Millis(8), Millis(11)));
  rt::AssignRateMonotonic(ts);
  sim::GlobalSimConfig cfg;
  cfg.num_cores = 2;
  cfg.horizon = Millis(300);
  cfg.overheads = overhead::OverheadModel::PaperCoreI7();
  cfg.record_metrics = true;
  const sim::SimResult r = SimulateGlobal(ts, cfg);
  ASSERT_TRUE(r.metrics.enabled());
  for (std::size_t i = 0; i < r.tasks.size(); ++i) {
    EXPECT_EQ(r.metrics.tasks[i].response.count(), r.tasks[i].completed);
  }
  for (const CoreMetrics& m : r.metrics.cores) {
    EXPECT_EQ(m.busy + m.overhead + m.idle, r.metrics.span);
  }
}

// ---------------------------------------------------------------------------
// Serial vs sharded metrics equality (the trace differentials live in
// test_queue_concept.cpp next to the other ShardedSim suites)
// ---------------------------------------------------------------------------

TEST(MetricsSharded, IdenticalReportAcrossShardCounts) {
  const partition::Partition p = GeneratedSpa2Partition(4, 24, 3.4, 99);
  sim::SimConfig cfg;
  cfg.horizon = Millis(300);
  cfg.overheads = overhead::OverheadModel::PaperCoreI7();
  cfg.exec.kind = sim::ExecModel::Kind::kUniform;
  cfg.record_metrics = true;
  cfg.shards = 1;
  const sim::SimResult serial = Simulate(p, cfg);
  const MetricsReport serial_rep = BuildMetricsReport(serial);
  for (const unsigned shards : {2u, 0u}) {
    SCOPED_TRACE(shards);
    cfg.shards = shards;
    const sim::SimResult sharded = Simulate(p, cfg);
    EXPECT_TRUE(serial.metrics == sharded.metrics);
    const MetricsReport rep = BuildMetricsReport(sharded);
    EXPECT_TRUE(serial_rep == rep);
    EXPECT_EQ(serial_rep.ToJson(), rep.ToJson());
    EXPECT_EQ(serial_rep.TaskCsv(), rep.TaskCsv());
    EXPECT_EQ(serial_rep.CoreCsv(), rep.CoreCsv());
  }
}

// ---------------------------------------------------------------------------
// MetricsReport writers
// ---------------------------------------------------------------------------

TEST(MetricsReport, JsonAndCsvCarryKeyFields) {
  const partition::Partition p = GeneratedSpa2Partition(2, 8, 1.4, 5);
  sim::SimConfig cfg;
  cfg.horizon = Millis(100);
  cfg.record_metrics = true;
  const sim::SimResult r = Simulate(p, cfg);
  const MetricsReport rep = BuildMetricsReport(r);
  ASSERT_EQ(rep.tasks.size(), r.tasks.size());
  ASSERT_EQ(rep.cores.size(), 2u);

  const std::string json = rep.ToJson();
  EXPECT_NE(json.find("\"span_ns\":100000000"), std::string::npos);
  EXPECT_NE(json.find("\"response_hist\""), std::string::npos);
  EXPECT_NE(json.find("\"busy_ns\""), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));

  const std::string tcsv = rep.TaskCsv();
  EXPECT_NE(tcsv.find("task,released,completed"), std::string::npos);
  EXPECT_EQ(std::count(tcsv.begin(), tcsv.end(), '\n'),
            static_cast<std::ptrdiff_t>(1 + rep.tasks.size()));
  const std::string ccsv = rep.CoreCsv();
  EXPECT_NE(ccsv.find("core,busy_ns,overhead_ns,idle_ns"),
            std::string::npos);
  EXPECT_EQ(std::count(ccsv.begin(), ccsv.end(), '\n'), 3);

  // p50 <= p99 <= 2 * max (log2 bucket upper bound) on every task row.
  for (const MetricsReport::TaskRow& t : rep.tasks) {
    EXPECT_LE(t.p50_response, t.p99_response);
    if (t.completed > 0) {
      EXPECT_LE(t.p99_response, 2 * std::max<Time>(t.max_response, 1));
    }
  }
}

// ---------------------------------------------------------------------------
// Perfetto exporter
// ---------------------------------------------------------------------------

TEST(Perfetto, GoldenDocumentForHandBuiltTrace) {
  // A minimal two-core scenario: release + overhead + exec + preempt +
  // finish. The expected document is the committed golden — it pins the
  // exporter's byte-level output (ordering, field set, formatting), so
  // any change to the format is a conscious diff here.
  std::vector<trace::Event> ev;
  {
    trace::Event e;
    e.time = Millis(1);
    e.core = 0;
    e.kind = trace::EventKind::kRelease;
    e.task = 3;
    e.job = 1;
    ev.push_back(e);
    e.kind = trace::EventKind::kOverheadBegin;
    e.overhead = trace::OverheadKind::kRls;
    e.duration = Micros(10);
    ev.push_back(e);
    e = trace::Event{};
    e.time = Millis(1) + Micros(10);
    e.core = 0;
    e.kind = trace::EventKind::kStart;
    e.task = 3;
    e.job = 1;
    ev.push_back(e);
    e = trace::Event{};
    e.time = Millis(2);
    e.core = 0;
    e.kind = trace::EventKind::kFinish;
    e.task = 3;
    e.job = 1;
    ev.push_back(e);
  }
  const std::string doc = ToPerfettoJson(ev, {.num_cores = 1});
  const std::string expected =
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":["
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
      "\"args\":{\"name\":\"sps simulation\"}},"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
      "\"args\":{\"name\":\"core 0\"}},"
      "{\"name\":\"release\",\"cat\":\"sched\",\"ph\":\"i\",\"s\":\"t\","
      "\"ts\":1000,\"pid\":0,\"tid\":0,\"args\":{\"task\":\"tau3 job1\"}},"
      "{\"name\":\"rls\",\"cat\":\"overhead\",\"ph\":\"X\",\"ts\":1000,"
      "\"dur\":10,\"pid\":0,\"tid\":0},"
      "{\"name\":\"tau3 job1\",\"cat\":\"exec\",\"ph\":\"X\",\"ts\":1010,"
      "\"dur\":990,\"pid\":0,\"tid\":0},"
      "{\"name\":\"ready core0\",\"ph\":\"C\",\"ts\":1000,\"pid\":0,"
      "\"args\":{\"value\":1}},"
      "{\"name\":\"jobs core0\",\"ph\":\"C\",\"ts\":1000,\"pid\":0,"
      "\"args\":{\"value\":1}},"
      "{\"name\":\"ready core0\",\"ph\":\"C\",\"ts\":1010,\"pid\":0,"
      "\"args\":{\"value\":0}},"
      "{\"name\":\"jobs core0\",\"ph\":\"C\",\"ts\":2000,\"pid\":0,"
      "\"args\":{\"value\":0}}"
      "]}";
  EXPECT_EQ(doc, expected);

  // Counter tracks off restores the slice-only document.
  PerfettoOptions no_counters;
  no_counters.num_cores = 1;
  no_counters.counter_tracks = false;
  const std::string plain = ToPerfettoJson(ev, no_counters);
  EXPECT_EQ(plain.find("\"ph\":\"C\""), std::string::npos);
}

TEST(Perfetto, CounterTracksFollowQueueAndJobLifecycles) {
  // Two releases back to back: depth climbs to 2, drains as each starts;
  // in-flight jobs only fall at the finishes.
  std::vector<trace::Event> ev;
  auto push = [&ev](Time t, trace::EventKind k, rt::TaskId task) {
    trace::Event e;
    e.time = t;
    e.kind = k;
    e.task = task;
    ev.push_back(e);
  };
  push(Millis(1), trace::EventKind::kRelease, 0);
  push(Millis(1), trace::EventKind::kRelease, 1);
  push(Millis(1), trace::EventKind::kStart, 0);
  push(Millis(2), trace::EventKind::kPreempt, 0);
  push(Millis(2), trace::EventKind::kStart, 1);
  push(Millis(3), trace::EventKind::kFinish, 1);
  push(Millis(3), trace::EventKind::kStart, 0);
  push(Millis(4), trace::EventKind::kFinish, 0);
  const std::string doc = ToPerfettoJson(ev, {.num_cores = 1});
  // Depth sequence 1,2,1,2,1,0; jobs 1,2,1,0. Spot-check the peaks and
  // the final zeros.
  EXPECT_NE(doc.find("\"name\":\"ready core0\",\"ph\":\"C\",\"ts\":1000,"
                     "\"pid\":0,\"args\":{\"value\":2}"),
            std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"jobs core0\",\"ph\":\"C\",\"ts\":3000,"
                     "\"pid\":0,\"args\":{\"value\":1}"),
            std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"jobs core0\",\"ph\":\"C\",\"ts\":4000,"
                     "\"pid\":0,\"args\":{\"value\":0}"),
            std::string::npos);
}

TEST(Perfetto, GlobalEngineCountersDoNotDrift) {
  // The global engine releases on the irq core, starts wherever the
  // dispatcher lands, and emits kMigrateIn with no kMigrateOut — the
  // per-TASK booking must keep every counter bounded and drain it by
  // the end of the trace (a naive per-core state machine drifts
  // upward without bound here).
  rt::TaskSet ts;
  ts.add(rt::MakeTask(0, Millis(1), Millis(10)));
  ts.add(rt::MakeTask(1, Millis(1), Millis(10)));
  ts.add(rt::MakeTask(2, Millis(8), Millis(11)));
  rt::AssignRateMonotonic(ts);
  sim::GlobalSimConfig cfg;
  cfg.num_cores = 2;
  cfg.horizon = Millis(300);
  cfg.record_trace = true;
  const sim::SimResult r = SimulateGlobal(ts, cfg);
  ASSERT_FALSE(r.trace_events.empty());
  const std::string doc = ToPerfettoJson(r.trace_events, {.num_cores = 2});
  // Every counter value in the document stays within the task count —
  // no monotone drift.
  const std::string needle = "\"value\":";
  for (std::size_t pos = doc.find(needle); pos != std::string::npos;
       pos = doc.find(needle, pos + 1)) {
    const double v = std::strtod(doc.c_str() + pos + needle.size(), nullptr);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 3.0) << "counter drifted at offset " << pos;
  }
}

TEST(Perfetto, ExtraCounterSeriesAreEmitted) {
  PerfettoOptions opt;
  opt.num_cores = 1;
  CounterSeries churn;
  churn.name = "online churn";
  churn.points = {{Millis(1), 0.0}, {Millis(2), 3.0}};
  opt.extra_counters.push_back(churn);
  const std::string doc = ToPerfettoJson({}, opt);
  EXPECT_NE(doc.find("\"name\":\"online churn\",\"ph\":\"C\",\"ts\":1000,"
                     "\"pid\":0,\"args\":{\"value\":0}"),
            std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"online churn\",\"ph\":\"C\",\"ts\":2000,"
                     "\"pid\":0,\"args\":{\"value\":3}"),
            std::string::npos);
}

TEST(Perfetto, RealSimulationExportIsStructurallySound) {
  const partition::Partition p = GeneratedSpa2Partition(4, 16, 2.8, 11);
  sim::SimConfig cfg;
  cfg.horizon = Millis(100);
  cfg.overheads = overhead::OverheadModel::PaperCoreI7();
  cfg.record_trace = true;
  const sim::SimResult r = Simulate(p, cfg);
  ASSERT_FALSE(r.trace_events.empty());
  const std::string doc = ToPerfettoJson(r.trace_events, {.num_cores = 4});
  EXPECT_EQ(doc.front(), '{');
  EXPECT_EQ(doc.back(), '}');
  EXPECT_EQ(std::count(doc.begin(), doc.end(), '{'),
            std::count(doc.begin(), doc.end(), '}'));
  EXPECT_EQ(std::count(doc.begin(), doc.end(), '['),
            std::count(doc.begin(), doc.end(), ']'));
  EXPECT_NE(doc.find("\"core 3\""), std::string::npos);
  EXPECT_NE(doc.find("\"cat\":\"exec\""), std::string::npos);
  EXPECT_NE(doc.find("\"cat\":\"overhead\""), std::string::npos);
  // Deterministic: exporting the same trace twice is byte-identical.
  EXPECT_EQ(doc, ToPerfettoJson(r.trace_events, {.num_cores = 4}));
}

}  // namespace
}  // namespace sps::obs
