// Cross-module integration properties — the contracts that make the
// reproduction trustworthy:
//
//  P1 (soundness): any partition ACCEPTED by any partitioner under
//     overhead model M never misses a deadline when SIMULATED under M,
//     with jobs running full WCET from a synchronous start.
//  P2: acceptance is monotone — a partitioner that accepts under the paper
//     model also accepts under the zero model.
//  P3: the experiment driver's counts equal what re-running the
//     partitioners yields (no bookkeeping drift).

#include <gtest/gtest.h>

#include "exp/acceptance.hpp"
#include "overhead/model.hpp"
#include "partition/binpack.hpp"
#include "partition/spa.hpp"
#include "rt/generator.hpp"
#include "sim/engine.hpp"

namespace sps {
namespace {

using exp::Algo;
using overhead::OverheadModel;

struct Scenario {
  std::uint64_t seed;
  double norm_util;
  std::size_t num_tasks;
};

class SoundnessSweep : public ::testing::TestWithParam<Scenario> {};

TEST_P(SoundnessSweep, AcceptedPartitionsNeverMissInSimulation) {
  const Scenario sc = GetParam();
  rt::GeneratorConfig gen;
  gen.num_tasks = sc.num_tasks;
  gen.total_utilization = sc.norm_util * 4;
  gen.period_min = Millis(5);
  gen.period_max = Millis(100);
  rt::Rng rng(sc.seed);
  const OverheadModel model = OverheadModel::PaperCoreI7();

  int accepted_any = 0;
  for (int set = 0; set < 6; ++set) {
    const rt::TaskSet ts = rt::GenerateTaskSet(gen, rng);
    for (const Algo algo : {Algo::kFfd, Algo::kWfd, Algo::kSpa1,
                            Algo::kSpa2}) {
      const partition::PartitionResult pr =
          exp::RunAlgorithm(algo, ts, 4, model);
      if (!pr.success) continue;
      ++accepted_any;
      sim::SimConfig cfg;
      cfg.overheads = model;
      // Simulate several hyper-ish periods; every job at full WCET from a
      // synchronous release (the analysis' critical instant).
      cfg.horizon = Millis(2000);
      const sim::SimResult r = Simulate(pr.partition, cfg);
      EXPECT_EQ(r.total_misses, 0u)
          << exp::ToString(algo) << " seed=" << sc.seed
          << " util=" << sc.norm_util << "\n"
          << pr.partition.summary() << r.summary();
      // Nothing was shed either (no overruns for schedulable sets).
      for (const sim::TaskStats& t : r.tasks) {
        EXPECT_EQ(t.shed, 0u);
      }
    }
  }
  // The sweep must actually exercise accepted partitions at least once at
  // the lighter utilizations.
  if (sc.norm_util <= 0.6) {
    EXPECT_GT(accepted_any, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SoundnessSweep,
    ::testing::Values(Scenario{101, 0.4, 8}, Scenario{202, 0.5, 12},
                      Scenario{303, 0.6, 8}, Scenario{404, 0.7, 16},
                      Scenario{505, 0.8, 12}, Scenario{606, 0.85, 8},
                      Scenario{707, 0.9, 16}));

TEST(Integration, ZeroOverheadAcceptanceIsWeaklyMorePermissive) {
  rt::GeneratorConfig gen;
  gen.num_tasks = 10;
  gen.total_utilization = 2.8;
  rt::Rng rng(999);
  const OverheadModel paper = OverheadModel::PaperCoreI7();
  for (int i = 0; i < 10; ++i) {
    const rt::TaskSet ts = rt::GenerateTaskSet(gen, rng);
    for (const Algo algo : {Algo::kFfd, Algo::kWfd, Algo::kSpa2}) {
      const bool with_ovh = exp::RunAlgorithm(algo, ts, 4, paper).success;
      const bool without =
          exp::RunAlgorithm(algo, ts, 4, OverheadModel::Zero()).success;
      EXPECT_LE(with_ovh, without) << exp::ToString(algo) << " set " << i;
    }
  }
}

TEST(Integration, SplitTasksSimulateWithExpectedMigrationCounts) {
  // Build a set that forces splitting, then check the simulator observes
  // exactly (parts-1) migrations per completed job of each split task.
  rt::TaskSet ts;
  for (int i = 0; i < 3; ++i) {
    ts.add(rt::MakeTask(static_cast<rt::TaskId>(i), Millis(60), Millis(100)));
  }
  rt::AssignRateMonotonic(ts);
  partition::SpaConfig cfg;
  cfg.num_cores = 2;
  const partition::PartitionResult pr = partition::Spa1(ts, cfg);
  ASSERT_TRUE(pr.success);
  ASSERT_GE(pr.partition.num_split_tasks(), 1u);

  sim::SimConfig sim_cfg;
  sim_cfg.horizon = Millis(1000);
  const sim::SimResult r = Simulate(pr.partition, sim_cfg);
  EXPECT_EQ(r.total_misses, 0u);
  for (std::size_t i = 0; i < pr.partition.tasks.size(); ++i) {
    const auto& pt = pr.partition.tasks[i];
    const auto& stats = r.tasks[i];
    if (pt.split()) {
      EXPECT_EQ(stats.migrations,
                stats.completed * (pt.parts.size() - 1))
          << "tau" << pt.task.id;
    } else {
      EXPECT_EQ(stats.migrations, 0u);
    }
  }
}

TEST(Integration, ExperimentDriverMatchesDirectRuns) {
  exp::AcceptanceConfig cfg;
  cfg.num_cores = 2;
  cfg.num_tasks = 6;
  cfg.norm_util_points = {0.65};
  cfg.sets_per_point = 12;
  cfg.seed = 4242;
  cfg.algorithms = {Algo::kFfd, Algo::kSpa1};
  const exp::AcceptanceResult res = exp::RunAcceptance(cfg);
  ASSERT_EQ(res.points.size(), 1u);
  // Re-run manually with the same RNG discipline.
  rt::GeneratorConfig gen;
  gen.num_tasks = cfg.num_tasks;
  gen.total_utilization = 0.65 * 2;
  gen.period_min = cfg.period_min;
  gen.period_max = cfg.period_max;
  rt::Rng rng(cfg.seed ^ 0x9e3779b97f4a7c15ull);
  int ffd = 0, spa = 0;
  for (int s = 0; s < cfg.sets_per_point; ++s) {
    const rt::TaskSet ts = rt::GenerateTaskSet(gen, rng);
    if (exp::RunAlgorithm(Algo::kFfd, ts, 2, cfg.model).success) ++ffd;
    if (exp::RunAlgorithm(Algo::kSpa1, ts, 2, cfg.model).success) ++spa;
  }
  EXPECT_NEAR(res.points[0].acceptance[0], ffd / 12.0, 1e-9);
  EXPECT_NEAR(res.points[0].acceptance[1], spa / 12.0, 1e-9);
}

TEST(Integration, AcceptanceCurveShape) {
  // The paper's qualitative result at mini scale: over a coarse grid,
  // FP-TS acceptance dominates FFD and WFD, and all curves are
  // (weakly) decreasing in utilization.
  exp::AcceptanceConfig cfg;
  cfg.num_cores = 4;
  cfg.num_tasks = 12;
  cfg.norm_util_points = {0.55, 0.7, 0.85};
  cfg.sets_per_point = 15;
  cfg.model = OverheadModel::PaperCoreI7();
  cfg.algorithms = {Algo::kFfd, Algo::kWfd, Algo::kSpa2};
  const exp::AcceptanceResult res = exp::RunAcceptance(cfg);
  const auto w = res.WeightedAcceptance();
  EXPECT_GE(w[2], w[0]);  // FP-TS >= FFD overall
  EXPECT_GE(w[2], w[1]);  // FP-TS >= WFD overall
  for (std::size_t a = 0; a < cfg.algorithms.size(); ++a) {
    EXPECT_GE(res.points[0].acceptance[a] + 0.2,
              res.points[2].acceptance[a]);
  }
  // Output formats include every algorithm column.
  const std::string table = res.Table();
  EXPECT_NE(table.find("FP-TS(SPA2)"), std::string::npos);
  const std::string csv = res.Csv();
  EXPECT_NE(csv.find("norm_util,FFD,WFD,FP-TS(SPA2)"), std::string::npos);
}

}  // namespace
}  // namespace sps
