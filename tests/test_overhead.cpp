// Tests for the overhead model: the published Table 1 numbers, the
// delta/theta condensation the paper derives from them, the log-N
// interpolation, and the composite per-action costs.

#include <gtest/gtest.h>

#include "overhead/calibrate.hpp"
#include "overhead/model.hpp"
#include "overhead/table1.hpp"

namespace sps::overhead {
namespace {

TEST(Table1, PaperValuesReproduced) {
  const Table1 t = PaperTable1();
  EXPECT_EQ(t.sleep_add.local_n4, Micros(2.5));
  EXPECT_EQ(t.sleep_add.remote_n4, Micros(2.9));
  EXPECT_EQ(t.sleep_add.local_n64, Micros(4.3));
  EXPECT_EQ(t.sleep_add.remote_n64, Micros(4.4));
  EXPECT_EQ(t.sleep_del.local_n4, Micros(3.3));
  EXPECT_EQ(t.sleep_del.local_n64, Micros(5.8));
  EXPECT_FALSE(t.sleep_del.remote_applicable);
  EXPECT_EQ(t.ready_add.local_n4, Micros(1.5));
  EXPECT_EQ(t.ready_add.remote_n4, Micros(3.3));
  EXPECT_EQ(t.ready_add.local_n64, Micros(4.4));
  EXPECT_EQ(t.ready_add.remote_n64, Micros(4.6));
  EXPECT_EQ(t.ready_del.local_n4, Micros(2.7));
  EXPECT_EQ(t.ready_del.local_n64, Micros(4.6));
}

TEST(Table1, DeltaThetaMatchPaperSection3) {
  // Paper: "when N = 4, delta = 3.3us and theta = 3.3us; when N = 64,
  // delta = 4.6us and theta = 5.8us".
  const Table1 t = PaperTable1();
  EXPECT_EQ(t.delta_n4(), Micros(3.3));
  EXPECT_EQ(t.theta_n4(), Micros(3.3));
  EXPECT_EQ(t.delta_n64(), Micros(4.6));
  EXPECT_EQ(t.theta_n64(), Micros(5.8));
}

TEST(Table1, FormatContainsAllCells) {
  const std::string s = FormatTable1(PaperTable1(), "Paper Table 1");
  EXPECT_NE(s.find("sleep queue - add"), std::string::npos);
  EXPECT_NE(s.find("ready queue - delete"), std::string::npos);
  EXPECT_NE(s.find("N/A"), std::string::npos);
  EXPECT_NE(s.find("3.30"), std::string::npos);
}

TEST(OpCost, ExactAtAnchors) {
  const OpCost c{Micros(1.5), Micros(4.4)};
  EXPECT_EQ(c.at(4), Micros(1.5));
  EXPECT_EQ(c.at(64), Micros(4.4));
}

TEST(OpCost, MonotoneInN) {
  const OpCost c{Micros(2.5), Micros(4.3)};
  Time last = 0;
  for (std::size_t n : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
    const Time v = c.at(n);
    EXPECT_GE(v, last);
    EXPECT_GE(v, 0);
    last = v;
  }
}

TEST(OpCost, InterpolatesBetweenAnchors) {
  const OpCost c{Micros(2.0), Micros(6.0)};  // slope = 1us per doubling
  EXPECT_EQ(c.at(8), Micros(3.0));
  EXPECT_EQ(c.at(16), Micros(4.0));
  EXPECT_EQ(c.at(32), Micros(5.0));
}

TEST(OverheadModel, PaperHandlerCosts) {
  const OverheadModel m = OverheadModel::PaperCoreI7();
  EXPECT_EQ(m.release_exec, Micros(3.0));
  EXPECT_EQ(m.sched_exec, Micros(5.0));
  EXPECT_EQ(m.ctxsw_exec, Micros(1.5));
}

TEST(OverheadModel, DeltaThetaAccessors) {
  const OverheadModel m = OverheadModel::PaperCoreI7();
  EXPECT_EQ(m.delta(4), Micros(3.3));
  EXPECT_EQ(m.theta(4), Micros(3.3));
  EXPECT_EQ(m.delta(64), Micros(4.6));
  EXPECT_EQ(m.theta(64), Micros(5.8));
}

TEST(OverheadModel, CompositeCosts) {
  const OverheadModel m = OverheadModel::PaperCoreI7();
  // rls at N=4: sleep_del(3.3) + release body(3.0) + ready_add(1.5).
  EXPECT_EQ(m.release_overhead(4), Micros(7.8));
  // sch without preemption at N=4: body(5.0) + ready_del(2.7).
  EXPECT_EQ(m.sched_overhead(4, false), Micros(7.7));
  // sch with preemption adds the ready re-insert (1.5).
  EXPECT_EQ(m.sched_overhead(4, true), Micros(9.2));
  EXPECT_EQ(m.ctxsw_in_overhead(), Micros(1.5));
  // finish normal at N=4: cnt(1.5) + local sleep add(2.5).
  EXPECT_EQ(m.finish_overhead_normal(4), Micros(4.0));
  // migrate to a 4-entry core: cnt(1.5) + remote ready add(3.3).
  EXPECT_EQ(m.migrate_overhead(4), Micros(4.8));
  // tail return to a 4-entry first core: cnt(1.5) + remote sleep add(2.9).
  EXPECT_EQ(m.finish_overhead_tail(4), Micros(4.4));
}

TEST(OverheadModel, ZeroModelAllZero) {
  const OverheadModel z = OverheadModel::Zero();
  EXPECT_EQ(z.release_overhead(64), 0);
  EXPECT_EQ(z.sched_overhead(64, true), 0);
  EXPECT_EQ(z.migrate_overhead(64), 0);
  EXPECT_EQ(z.cpmd(true), 0);
  EXPECT_EQ(z.delta(64), 0);
}

TEST(OverheadModel, ScaleMultipliesEverything) {
  const OverheadModel m1 = OverheadModel::PaperCoreI7();
  const OverheadModel m2 = OverheadModel::PaperScaled(2.0);
  EXPECT_EQ(m2.release_overhead(4), 2 * m1.release_overhead(4));
  EXPECT_EQ(m2.migrate_overhead(64), 2 * m1.migrate_overhead(64));
  EXPECT_EQ(m2.cpmd(false), 2 * m1.cpmd(false));
  const OverheadModel m0 = OverheadModel::PaperScaled(0.0);
  EXPECT_EQ(m0.release_overhead(4), 0);
}

TEST(OverheadModel, MigrationVsLocalCpmdSameOrder) {
  // The paper's qualitative cache finding encoded in the defaults.
  const OverheadModel m = OverheadModel::PaperCoreI7();
  EXPECT_GT(m.cpmd(true), 0);
  EXPECT_LE(m.cpmd(true), 2 * m.cpmd(false));
  EXPECT_LE(m.cpmd(false), 2 * m.cpmd(true));
}

// ---- live calibration (smoke: shapes, not absolute values) ---------------

TEST(Calibrate, MeasuredTableHasSaneShape) {
  CalibrationConfig cfg;
  cfg.samples = 200;  // keep the test fast
  const Table1 t = MeasureTable1(cfg);
  // All cells positive.
  for (const auto* row : {&t.ready_add, &t.sleep_add}) {
    EXPECT_GT(row->local_n4, 0);
    EXPECT_GT(row->remote_n4, 0);
    EXPECT_GT(row->local_n64, 0);
    EXPECT_GT(row->remote_n64, 0);
    // Remote (cold-cache) never beats local at the same size.
    EXPECT_GE(row->remote_n4, row->local_n4);
    EXPECT_GE(row->remote_n64, row->local_n64);
  }
  EXPECT_GT(t.ready_del.local_n4, 0);
  EXPECT_GT(t.sleep_del.local_n4, 0);
  EXPECT_FALSE(t.ready_del.remote_applicable);
  EXPECT_FALSE(t.sleep_del.remote_applicable);
}

TEST(Calibrate, HandlerCostsPositive) {
  CalibrationConfig cfg;
  cfg.samples = 200;
  const HandlerCosts h = MeasureHandlerCosts(cfg);
  EXPECT_GT(h.release_exec, 0);
  EXPECT_GT(h.sched_exec, 0);
  EXPECT_GT(h.ctxsw_exec, 0);
}

TEST(Calibrate, FullCalibrationProducesUsableModel) {
  CalibrationConfig cfg;
  cfg.samples = 100;
  const OverheadModel m = Calibrate(cfg);
  EXPECT_GT(m.release_overhead(4), 0);
  EXPECT_GT(m.sched_overhead(4, true), m.sched_overhead(4, false) - 1);
  EXPECT_GT(m.cpmd(true), 0);
}

TEST(ModelFromMeasurements, RoundTripsPaperTable) {
  const HandlerCosts h{Micros(3.0), Micros(5.0), Micros(1.5)};
  const OverheadModel m =
      ModelFromMeasurements(PaperTable1(), h, Micros(20), Micros(20));
  const OverheadModel paper = OverheadModel::PaperCoreI7();
  EXPECT_EQ(m.release_overhead(4), paper.release_overhead(4));
  EXPECT_EQ(m.migrate_overhead(64), paper.migrate_overhead(64));
  EXPECT_EQ(m.delta(4), paper.delta(4));
  EXPECT_EQ(m.theta(64), paper.theta(64));
}

}  // namespace
}  // namespace sps::overhead
