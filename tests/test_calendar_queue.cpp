// CalendarQueue-specific tests: the bucket-resizing policy and the
// event-queue access pattern (monotonically advancing minimum). The
// behavioural contract itself is covered by the typed conformance suite
// in test_queue_concept.cpp — this file exercises what is unique to the
// calendar structure.

#include "containers/calendar_queue.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

namespace sps::containers {
namespace {

TEST(CalendarQueue, GrowsAndShrinksWithSize) {
  CalendarQueue<std::uint64_t, int> q;
  const std::size_t initial = q.num_buckets();
  std::vector<CalendarQueue<std::uint64_t, int>::handle> handles;
  for (int i = 0; i < 1000; ++i) {
    handles.push_back(q.push(static_cast<std::uint64_t>(i) * 1000, i));
  }
  EXPECT_GE(q.num_buckets(), 512u);  // grow threshold: size > 2 * buckets
  ASSERT_TRUE(q.validate());
  while (!q.empty()) q.pop_min();
  EXPECT_EQ(q.num_buckets(), initial);  // shrank all the way back
  EXPECT_TRUE(q.validate());
}

TEST(CalendarQueue, WidthTracksKeySpacing) {
  // 1024 keys spaced 1e6 apart: after the growth resizes, the width must
  // land near the average spacing (one element per bucket-day), far from
  // the initial width of 1.
  CalendarQueue<std::uint64_t, int> q;
  for (int i = 0; i < 1024; ++i) {
    q.push(static_cast<std::uint64_t>(i) * 1'000'000, i);
  }
  EXPECT_GE(q.bucket_width(), 500'000u);
  EXPECT_LE(q.bucket_width(), 2'000'000u);
  EXPECT_TRUE(q.validate());
  // Drain in order — bucket hopping must not lose the total order.
  std::uint64_t last = 0;
  while (!q.empty()) {
    auto [k, v] = q.pop_min();
    EXPECT_GE(k, last);
    last = k;
  }
}

TEST(CalendarQueue, EventPatternHoldAndAdvance) {
  // The kernel's pattern: a near-constant population whose keys advance
  // monotonically (pop the earliest event, schedule a later one).
  CalendarQueue<std::uint64_t, std::size_t> q;
  std::mt19937_64 rng(42);
  std::uint64_t now = 0;
  for (std::size_t i = 0; i < 64; ++i) q.push(rng() % 10'000, i);
  for (int step = 0; step < 20'000; ++step) {
    auto [t, id] = q.pop_min();
    EXPECT_GE(t, now);
    now = t;
    q.push(now + 1 + rng() % 10'000, id);
    ASSERT_EQ(q.size(), 64u);
  }
  EXPECT_TRUE(q.validate());
}

TEST(CalendarQueue, SparseKeysFallBackToDirectSearch) {
  // Width adapted to dense keys, then only very distant keys remain: the
  // day scan finds nothing in a whole bucket round and must fall back to
  // a direct search instead of spinning.
  CalendarQueue<std::uint64_t, int> q;
  for (int i = 0; i < 64; ++i) q.push(static_cast<std::uint64_t>(i), i);
  auto far = q.push(1ull << 40, -1);
  (void)far;
  for (int i = 0; i < 64; ++i) q.pop_min();
  ASSERT_EQ(q.size(), 1u);
  EXPECT_EQ(q.min_value(), -1);
  EXPECT_EQ(q.pop_min().first, 1ull << 40);
  EXPECT_TRUE(q.validate());
}

TEST(CalendarQueue, PushBelowTheScanFloorIsFound) {
  // Pops advance the scan floor; a later push BELOW it (a "past" key)
  // must still surface first — the cursor has to jump back.
  CalendarQueue<std::uint64_t, int> q;
  for (int i = 10; i < 20; ++i) q.push(static_cast<std::uint64_t>(i * 100), i);
  (void)q.pop_min();  // floor is now at day(1000)
  q.push(5, -5);      // far below the floor
  EXPECT_EQ(q.min_value(), -5);
  EXPECT_EQ(q.pop_min().second, -5);
  EXPECT_TRUE(q.validate());
}

TEST(CalendarQueue, LazyScanDrainsExtremelySparseKeysInOrder) {
  // PR-3 lazy scan: keys spread over ~2^40 days with an (initially)
  // tiny width, so almost every day-round is empty. The occupancy-count
  // early exit must still return the exact (key, seq) order, including
  // FIFO among duplicated keys, and keep the structure valid. This
  // drains through the path that previously paid a full empty round
  // plus a rescan per pop.
  CalendarQueue<std::uint64_t, int> q;
  std::mt19937_64 rng(7);
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t k = (rng() % 64) * (1ull << 40);  // forced dups
    keys.push_back(k);
    q.push(k, i);
    ASSERT_TRUE(q.validate());
  }
  std::sort(keys.begin(), keys.end());
  std::uint64_t last_key = 0;
  int last_dup_value = -1;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    auto [k, v] = q.pop_min();
    EXPECT_EQ(k, keys[i]);
    if (k == last_key) {
      EXPECT_GT(v, last_dup_value);  // FIFO among equal keys
    }
    last_key = k;
    last_dup_value = v;
    ASSERT_TRUE(q.validate());
  }
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueue, CacheSurvivesInterleavedEraseAndPush) {
  // Regression: a push after a cache-invalidating erase must not install
  // a non-minimal node as the cached minimum.
  CalendarQueue<std::uint64_t, int> q;
  q.push(10, 1);
  auto h = q.push(20, 2);
  q.push(30, 3);
  q.erase(h);      // invalidates nothing visible, keeps min at 10
  q.push(40, 4);   // must NOT become the cached min
  EXPECT_EQ(q.min_key(), 10u);
  (void)q.pop_min();  // clears the cache
  q.push(50, 5);      // cache empty + non-minimal push
  EXPECT_EQ(q.min_key(), 30u);
  EXPECT_EQ(q.pop_min().second, 3);
  EXPECT_EQ(q.pop_min().second, 4);
  EXPECT_EQ(q.pop_min().second, 5);
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace sps::containers
