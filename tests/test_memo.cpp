// Tests for the analysis transposition table (analysis/memo.hpp):
// Zobrist maintenance, the lock-free table itself, forced-collision
// safety, and the memo contract — cached analysis is DECISION-IDENTICAL
// to uncached under every partitioner, policy and table size, down to
// the AdmitStats decision counters. The concurrent hammer runs in the
// TSan CI lane.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "analysis/memo.hpp"
#include "exp/acceptance.hpp"
#include "online/controller.hpp"
#include "online/workload_stream.hpp"
#include "overhead/model.hpp"
#include "partition/binpack.hpp"
#include "partition/edf_wm.hpp"
#include "rt/generator.hpp"
#include "rt/taskset.hpp"
#include "util/rng.hpp"

namespace sps {
namespace {

using overhead::OverheadModel;

/// Deterministic task from a small parameter space, so independent
/// threads / steps regularly rebuild the SAME analysis questions.
rt::Task SmallTask(rt::TaskId id, std::uint64_t v) {
  const Time periods[] = {Millis(10), Millis(20), Millis(50)};
  const Time period = periods[v % 3];
  const Time wcet =
      std::max<Time>(1, period / static_cast<Time>(4 + (v >> 8) % 7));
  return rt::MakeTask(id, wcet, period);
}

rt::TaskSet RandomSet(std::uint64_t seed, double norm_util, unsigned cores,
                      std::size_t n) {
  rt::GeneratorConfig gen;
  gen.num_tasks = n;
  gen.total_utilization = norm_util * cores;
  rt::Rng rng(seed);
  return rt::GenerateTaskSet(gen, rng);
}

// ---- Zobrist maintenance ---------------------------------------------------

TEST(MemoZobrist, EdfIncrementalMatchesScratch) {
  util::SplitMix64 rng(1);
  partition::EdfCoreState core;
  std::vector<rt::TaskId> resident;
  rt::TaskId next_id = 0;
  for (int step = 0; step < 200; ++step) {
    if (resident.empty() || rng() % 3 != 0) {
      const rt::TaskId id = next_id++;
      const rt::Task t = SmallTask(id, rng());
      if (rng() % 4 == 0) {
        core.Commit(partition::MakeEdfWindowEntry(
            t, std::max<Time>(1, t.wcet / 2), t.deadline / 2,
            rng() % 2 == 0, rng() % 2 == 0));
      } else {
        core.Commit(partition::MakeEdfEntry(t));
      }
      resident.push_back(id);
    } else {
      const std::size_t k = rng() % resident.size();
      core.RemoveTask(resident[k]);
      resident.erase(resident.begin() +
                     static_cast<std::ptrdiff_t>(k));
    }
    EXPECT_EQ(core.zobrist, analysis::ZobristOfEdfEntries(core.entries));
  }
  for (const rt::TaskId id : resident) core.RemoveTask(id);
  EXPECT_EQ(core.zobrist, analysis::MemoKey{});  // empty set hashes to 0
}

TEST(MemoZobrist, FpIncrementalMatchesScratch) {
  util::SplitMix64 rng(2);
  partition::FpCoreState core;
  std::vector<rt::TaskId> resident;
  rt::TaskId next_id = 0;
  for (int step = 0; step < 200; ++step) {
    if (resident.empty() || rng() % 3 != 0) {
      const rt::TaskId id = next_id++;
      core.Commit(SmallTask(id, rng()));
      resident.push_back(id);
    } else {
      const std::size_t k = rng() % resident.size();
      EXPECT_TRUE(core.RemoveTask(resident[k]));
      resident.erase(resident.begin() +
                     static_cast<std::ptrdiff_t>(k));
    }
    EXPECT_EQ(core.zobrist, analysis::ZobristOfFpTasks(core.tasks));
  }
}

TEST(MemoZobrist, CodesDependOnEveryField) {
  const rt::Task a = rt::MakeTask(1, Millis(2), Millis(10));
  rt::Task b = a;
  EXPECT_EQ(analysis::FpTaskCode(a), analysis::FpTaskCode(b));
  b.wcet += 1;
  EXPECT_NE(analysis::FpTaskCode(a), analysis::FpTaskCode(b));
  b = a;
  b.id = 2;  // id is hashed: equal-parameter tasks never cancel
  EXPECT_NE(analysis::FpTaskCode(a), analysis::FpTaskCode(b));
}

// ---- the table itself ------------------------------------------------------

TEST(MemoTable, RoundtripReplaceAndEvictCounters) {
  analysis::AnalysisMemo t(1);  // rounds up to exactly one slot
  EXPECT_EQ(t.capacity(), 1u);
  const analysis::MemoKey a{11, 0x100};
  const analysis::MemoKey b{22, 0x200};

  EXPECT_FALSE(t.Lookup(a.lo, a).has_value());
  EXPECT_FALSE(t.Store(a.lo, a, {.admitted = true, .via_density = false}));
  const auto ha = t.Lookup(a.lo, a);
  ASSERT_TRUE(ha.has_value());
  EXPECT_TRUE(ha->admitted);
  EXPECT_FALSE(ha->via_density);

  // Same (only) slot, different key: a verified miss, never a false hit.
  EXPECT_FALSE(t.Lookup(b.lo, b).has_value());
  EXPECT_TRUE(t.Store(b.lo, b, {.admitted = false, .via_density = true}));
  EXPECT_FALSE(t.Lookup(a.lo, a).has_value());  // a was displaced
  const auto hb = t.Lookup(b.lo, b);
  ASSERT_TRUE(hb.has_value());
  EXPECT_FALSE(hb->admitted);
  EXPECT_TRUE(hb->via_density);

  // Overwriting the SAME key is not an eviction.
  EXPECT_FALSE(t.Store(b.lo, b, {.admitted = false, .via_density = true}));

  const analysis::MemoStats st = t.stats();
  EXPECT_EQ(st.hits, 2u);
  EXPECT_EQ(st.misses, 3u);
  EXPECT_EQ(st.stores, 3u);
  EXPECT_EQ(st.evicts, 1u);
}

TEST(MemoTable, DegenerateSlotHashVerifiesFullKey) {
  // All queries forced into slot 0 of a large table: only the 128-bit
  // verification key may decide, and it must.
  analysis::AnalysisMemo t(64);
  std::vector<analysis::MemoKey> keys;
  for (std::uint64_t i = 0; i < 8; ++i) {
    keys.push_back({i * 977 + 1, i * 131071 + 4});
  }
  for (std::size_t i = 0; i < keys.size(); ++i) {
    // Slot 0 holds at most the previously stored key: every other key
    // must read as a verified miss, never a false hit.
    for (std::size_t j = 0; j < keys.size(); ++j) {
      if (i > 0 && j == i - 1) continue;  // the one live key
      EXPECT_FALSE(t.Lookup(0, keys[j]).has_value());
    }
    (void)t.Store(0, keys[i], {.admitted = (i % 2) != 0});
    const auto h = t.Lookup(0, keys[i]);
    ASSERT_TRUE(h.has_value());
    EXPECT_EQ(h->admitted, (i % 2) != 0);
  }
}

TEST(MemoTable, VerificationIgnoresPackedVerdictBits) {
  // The verdict lives in the low 2 bits of key.hi; keys differing only
  // there are the same 126-bit key by design (CombineQuery keys are
  // full-width hashes, so this costs 2 bits of discrimination, not
  // correctness).
  analysis::AnalysisMemo t(16);
  const analysis::MemoKey a{5, 0x40};
  analysis::MemoKey a2 = a;
  a2.hi |= 3;
  (void)t.Store(a.lo, a, {.admitted = true, .via_density = true});
  const auto h = t.Lookup(a2.lo, a2);
  ASSERT_TRUE(h.has_value());
  EXPECT_TRUE(h->admitted);
  EXPECT_TRUE(h->via_density);
}

// ---- differentials: cached == uncached, bit for bit ------------------------

TEST(MemoDifferential, EdfOfflinePartitioners) {
  const OverheadModel model = OverheadModel::PaperCoreI7();
  const partition::FitPolicy policies[] = {
      partition::FitPolicy::kFirstFit, partition::FitPolicy::kBestFit,
      partition::FitPolicy::kWorstFit, partition::FitPolicy::kNextFit};
  for (const double u : {0.6, 0.8, 0.95}) {
    for (std::uint64_t s = 0; s < 3; ++s) {
      const rt::TaskSet ts = RandomSet(100 + s, u, 4, 12);

      partition::EdfPartitionConfig off;
      off.num_cores = 4;
      off.model = model;
      off.memo.enabled = false;

      analysis::AnalysisMemo table(std::size_t{1} << 12);
      partition::EdfPartitionConfig on = off;
      on.memo.enabled = true;
      on.memo.table = &table;

      analysis::AnalysisMemo tiny(1);  // every store collides
      partition::EdfPartitionConfig forced = off;
      forced.memo.enabled = true;
      forced.memo.table = &tiny;

      const auto r0 = partition::EdfWm(ts, off);
      const auto r1 = partition::EdfWm(ts, on);  // cold
      const auto r2 = partition::EdfWm(ts, on);  // warm (hits)
      const auto r3 = partition::EdfWm(ts, forced);
      for (const auto* r : {&r1, &r2, &r3}) {
        EXPECT_EQ(r0.success, r->success);
        EXPECT_EQ(r0.partition.summary(), r->partition.summary());
      }
      EXPECT_GT(table.stats().hits, 0u);

      for (const partition::FitPolicy p : policies) {
        const auto b0 = partition::EdfBinPack(ts, p, off);
        const auto b1 = partition::EdfBinPack(ts, p, on);
        const auto b2 = partition::EdfBinPack(ts, p, forced);
        EXPECT_EQ(b0.success, b1.success);
        EXPECT_EQ(b0.partition.summary(), b1.partition.summary());
        EXPECT_EQ(b0.success, b2.success);
        EXPECT_EQ(b0.partition.summary(), b2.partition.summary());
      }
    }
  }
}

TEST(MemoDifferential, FpBinPackAllTestsAllPolicies) {
  const OverheadModel model = OverheadModel::PaperCoreI7();
  const partition::AdmissionTest tests[] = {
      partition::AdmissionTest::kLiuLayland,
      partition::AdmissionTest::kHyperbolic,
      partition::AdmissionTest::kRta};
  const partition::FitPolicy policies[] = {
      partition::FitPolicy::kFirstFit, partition::FitPolicy::kBestFit,
      partition::FitPolicy::kWorstFit, partition::FitPolicy::kNextFit};
  for (const double u : {0.5, 0.7}) {
    const rt::TaskSet ts = RandomSet(7, u, 4, 12);
    for (const partition::AdmissionTest at : tests) {
      for (const partition::FitPolicy p : policies) {
        partition::BinPackConfig off;
        off.num_cores = 4;
        off.admission = at;
        off.model = model;
        off.memo.enabled = false;

        analysis::AnalysisMemo table(std::size_t{1} << 10);
        partition::BinPackConfig on = off;
        on.memo.enabled = true;
        on.memo.table = &table;

        analysis::AnalysisMemo tiny(1);
        partition::BinPackConfig forced = off;
        forced.memo.enabled = true;
        forced.memo.table = &tiny;

        const auto r0 = partition::BinPackDecreasing(ts, p, off);
        const auto r1 = partition::BinPackDecreasing(ts, p, on);
        const auto r2 = partition::BinPackDecreasing(ts, p, on);
        const auto r3 = partition::BinPackDecreasing(ts, p, forced);
        for (const auto* r : {&r1, &r2, &r3}) {
          EXPECT_EQ(r0.success, r->success);
          EXPECT_EQ(r0.partition.summary(), r->partition.summary());
        }
      }
    }
  }
}

TEST(MemoDifferential, OnlineReplayAllPoliciesAndTableSizes) {
  online::StreamConfig scfg;
  scfg.num_admits = 48;
  const online::WorkloadStream stream = online::GenerateStream(scfg);

  struct Combo {
    partition::SchedPolicy policy;
    online::PlacePolicy place;
    bool allow_split;
    bool unsplit_on_leave;
  };
  const Combo combos[] = {
      {partition::SchedPolicy::kEdf, online::PlacePolicy::kFirstFit, true,
       false},
      {partition::SchedPolicy::kEdf, online::PlacePolicy::kWorstFit, false,
       true},
      {partition::SchedPolicy::kEdf, online::PlacePolicy::kSpaOrder, true,
       true},
      {partition::SchedPolicy::kFixedPriority,
       online::PlacePolicy::kFirstFit, false, false},
      {partition::SchedPolicy::kFixedPriority,
       online::PlacePolicy::kWorstFit, false, false},
  };
  for (const Combo& c : combos) {
    online::ReplayConfig rcfg;
    rcfg.controller.admission.num_cores = 4;
    rcfg.controller.admission.policy = c.policy;
    rcfg.controller.admission.model = OverheadModel::PaperCoreI7();
    rcfg.controller.place = c.place;
    rcfg.controller.allow_split = c.allow_split;
    rcfg.controller.unsplit_on_leave = c.unsplit_on_leave;
    rcfg.controller.repartition_fallback = true;

    rcfg.controller.admission.memo.enabled = false;
    const online::ReplayResult r0 = online::ReplayStream(stream, rcfg);

    analysis::AnalysisMemo table(std::size_t{1} << 12);
    analysis::AnalysisMemo tiny(16);  // heavy forced collisions
    for (analysis::AnalysisMemo* t : {&table, &tiny}) {
      rcfg.controller.admission.memo.enabled = true;
      rcfg.controller.admission.memo.table = t;
      const online::ReplayResult r1 = online::ReplayStream(stream, rcfg);
      EXPECT_EQ(r0.admits, r1.admits);
      EXPECT_EQ(r0.rejects, r1.rejects);
      EXPECT_EQ(r0.leaves, r1.leaves);
      EXPECT_TRUE(r0.churn == r1.churn);
      EXPECT_TRUE(r0.epochs == r1.epochs);
      EXPECT_EQ(r0.final_partition.summary(), r1.final_partition.summary());
      // The stage-recording contract: decision counters are
      // cache-oblivious; only memo_* counters may differ.
      EXPECT_EQ(r0.admission.util_rejects, r1.admission.util_rejects);
      EXPECT_EQ(r0.admission.density_accepts, r1.admission.density_accepts);
      EXPECT_EQ(r0.admission.full_tests, r1.admission.full_tests);
      EXPECT_EQ(r0.admission.memo_hits, 0u);
      EXPECT_GT(r1.admission.memo_hits + r1.admission.memo_misses, 0u);
    }
  }
}

TEST(MemoDifferential, AcceptanceSweepSharedTableAcrossPool) {
  exp::AcceptanceConfig a;
  a.num_cores = 4;
  a.num_tasks = 10;
  a.sets_per_point = 8;
  a.norm_util_points = {0.65, 0.85, 1.0};
  a.model = OverheadModel::PaperCoreI7();
  a.jobs = 4;  // units share the table across pool threads
  exp::AcceptanceConfig b = a;
  a.memo.enabled = false;
  analysis::AnalysisMemo table(std::size_t{1} << 12);
  b.memo.enabled = true;
  b.memo.table = &table;

  const exp::AcceptanceResult ra = exp::RunAcceptance(a);
  const exp::AcceptanceResult rb = exp::RunAcceptance(b);
  ASSERT_EQ(ra.points.size(), rb.points.size());
  for (std::size_t i = 0; i < ra.points.size(); ++i) {
    EXPECT_EQ(ra.points[i].acceptance, rb.points[i].acceptance);
    EXPECT_EQ(ra.points[i].mean_splits, rb.points[i].mean_splits);
  }
  EXPECT_GT(table.stats().stores, 0u);
}

// ---- concurrency (the TSan lane runs this binary) --------------------------

TEST(MemoConcurrent, HammerSharedTableStaysDecisionIdentical) {
  // Threads race EdfCoreAdmits on one small shared table (constant
  // collision + eviction pressure) and check every cached answer
  // against an uncached recompute. The tiny parameter space makes
  // cross-thread hits common, so hit / miss / evict / torn-read paths
  // all execute under TSan.
  analysis::AnalysisMemo table(std::size_t{1} << 8);
  const OverheadModel model = OverheadModel::PaperCoreI7();
  analysis::MemoConfig mc;
  mc.table = &table;
  const analysis::MemoContext ctx = analysis::MakeEdfMemoContext(mc, model);

  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int ti = 0; ti < kThreads; ++ti) {
    threads.emplace_back([&, ti] {
      util::SplitMix64 rng(util::DeriveSeed(99, ti, 7));
      for (int i = 0; i < kIters; ++i) {
        partition::EdfCoreState core;
        // Distinct ids per core — a legal resident set holds one entry
        // per task, which is what makes XOR cancellation unreachable.
        const std::uint64_t n = rng() % 4;
        for (std::uint64_t k = 0; k < n; ++k) {
          core.Commit(partition::MakeEdfEntry(
              SmallTask(static_cast<rt::TaskId>(k), rng())));
        }
        const analysis::EdfCoreEntry cand = partition::MakeEdfEntry(
            SmallTask(static_cast<rt::TaskId>(8 + rng() % 4), rng()));
        const bool cached =
            partition::EdfCoreAdmits(core, cand, model, nullptr, &ctx);
        const bool plain =
            partition::EdfCoreAdmits(core, cand, model, nullptr, nullptr);
        if (cached != plain) mismatches.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  const analysis::MemoStats st = table.stats();
  EXPECT_GT(st.hits, 0u);
  EXPECT_GT(st.evicts, 0u);  // the small table really was contended
}

}  // namespace
}  // namespace sps
