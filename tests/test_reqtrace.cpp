// Tests for request-scoped tracing, tail-based sampling, and the
// crash-dump flight recorder (DESIGN.md §16):
//
//  * tracer unit semantics under a fake clock — parent-linked span
//    trees, stage attributes, deterministic trace ids;
//  * the tail-sampling rule — slowest-K by root duration (heap
//    eviction order), "interesting" retention for ladder / fallback /
//    diverged requests, the O(K·depth) retained-memory bound held at
//    100k+ requests;
//  * the flight ring — wraparound, epoch records, dump-to-JSON, and a
//    DumpFlight racing live tracing threads (the TSan lane runs this
//    file);
//  * the §15/§16 wall-clock firewall, differentially: tracing ON vs
//    OFF must leave every decision, the stats registry dump, the
//    per-epoch table, and the durability artifacts (journal +
//    checkpoints) byte-identical — across shard counts and job counts.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "analysis/memo.hpp"
#include "obs/flight.hpp"
#include "obs/registry.hpp"
#include "obs/reqtrace.hpp"
#include "obs/spans.hpp"
#include "online/controller.hpp"
#include "online/workload_stream.hpp"
#include "util/rng.hpp"

namespace sps::obs {
namespace {

std::uint64_t g_fake_now = 0;
std::uint64_t FakeClock() { return g_fake_now; }

// ---------------------------------------------------------------------------
// Span trees under a fake clock
// ---------------------------------------------------------------------------

TEST(RequestTracer, RecordsParentLinkedTreeWithAttrs) {
  SpanProfiler prof(&FakeClock);
  RequestTracer tracer(/*top_k=*/4);
  ProfilerInstallation pi(&prof);
  TracerInstallation ti(&tracer);

  g_fake_now = 1000;
  tracer.BeginTrace(/*trace_id=*/77, /*seq=*/5, /*is_admit=*/true);
  {
    ScopedSpan root(&prof, SpanStage::kAdmitTotal);
    {
      ScopedSpan place(&prof, SpanStage::kPlacement);
      TraceAttr(3);  // cores probed
      {
        ScopedSpan screen(&prof, SpanStage::kUtilScreen);
        g_fake_now = 1100;
      }
      {
        ScopedSpan memo(&prof, SpanStage::kMemoProbe);
        TraceAttr(1);  // memo hit
        g_fake_now = 1250;
      }
      g_fake_now = 1300;
    }
    g_fake_now = 1500;
  }
  tracer.EndTrace(false, false, false);

  const std::vector<RequestTrace> traces = tracer.Retained();
  ASSERT_EQ(traces.size(), 1u);
  const RequestTrace& t = traces[0];
  EXPECT_EQ(t.trace_id, 77u);
  EXPECT_EQ(t.seq, 5u);
  EXPECT_TRUE(t.is_admit);
  EXPECT_TRUE(t.slow);  // first K traces always land in the top-K heap
  EXPECT_EQ(t.root_dur_ns, 500u);
  ASSERT_EQ(t.spans.size(), 4u);
  // Open order: admit_total(0) → placement(1) → util_screen(2) →
  // memo_probe(3); parents link the tree, children index above parents.
  EXPECT_EQ(t.spans[0].stage, SpanStage::kAdmitTotal);
  EXPECT_EQ(t.spans[0].parent, -1);
  EXPECT_EQ(t.spans[1].stage, SpanStage::kPlacement);
  EXPECT_EQ(t.spans[1].parent, 0);
  EXPECT_EQ(t.spans[1].attr, 3);
  EXPECT_EQ(t.spans[2].stage, SpanStage::kUtilScreen);
  EXPECT_EQ(t.spans[2].parent, 1);
  EXPECT_EQ(t.spans[2].dur_ns, 100u);
  EXPECT_EQ(t.spans[3].stage, SpanStage::kMemoProbe);
  EXPECT_EQ(t.spans[3].parent, 1);
  EXPECT_EQ(t.spans[3].attr, 1);
  EXPECT_EQ(t.spans[3].dur_ns, 150u);
}

TEST(RequestTracer, SpansOutsideATraceAreDroppedFromTrees) {
  SpanProfiler prof(&FakeClock);
  RequestTracer tracer(4);
  ProfilerInstallation pi(&prof);
  TracerInstallation ti(&tracer);
  {
    ScopedSpan orphan(&prof, SpanStage::kEpochApply);  // no BeginTrace
    g_fake_now += 10;
  }
  EXPECT_TRUE(tracer.Retained().empty());
  EXPECT_EQ(tracer.retain_stats().traces_seen, 0u);
}

TEST(RequestTracer, NoTracerInstalledIsANoOpEvenWithProfiler) {
  SpanProfiler prof(&FakeClock);
  ProfilerInstallation pi(&prof);
  ASSERT_EQ(InstalledTracer(), nullptr);
  ScopedSpan span(&prof, SpanStage::kAnalysis);
  TraceAttr(42);  // must not crash with no tracer installed
}

TEST(RequestTracer, TraceIdsDeriveFromSeqDeterministically) {
  // The replay loop derives trace ids as DeriveSeed(seed, seq, axis) —
  // pure, so the same (seed, seq) always names the same trace across
  // runs, recoveries, and machines.
  const std::uint64_t a = util::DeriveSeed(42, 812404, kTraceIdAxis);
  EXPECT_EQ(a, util::DeriveSeed(42, 812404, kTraceIdAxis));
  EXPECT_NE(a, util::DeriveSeed(42, 812405, kTraceIdAxis));
  EXPECT_NE(a, util::DeriveSeed(43, 812404, kTraceIdAxis));
}

// ---------------------------------------------------------------------------
// Tail-based sampling
// ---------------------------------------------------------------------------

/// Drive one whole trace through the tracer: `spans` nested spans, the
/// root lasting `root_ns`.
void OneTrace(SpanProfiler& prof, RequestTracer& tracer, std::uint64_t seq,
              std::uint64_t root_ns, bool interesting = false,
              int depth = 2) {
  tracer.BeginTrace(util::DeriveSeed(1, seq, kTraceIdAxis), seq, true);
  {
    ScopedSpan root(&prof, SpanStage::kAdmitTotal);
    for (int d = 1; d < depth; ++d) {
      ScopedSpan inner(&prof, SpanStage::kAnalysis);
      g_fake_now += 1;
    }
    g_fake_now += root_ns - static_cast<std::uint64_t>(depth - 1);
  }
  tracer.EndTrace(/*via_ladder=*/interesting, false, false);
}

TEST(RequestTracer, TopKKeepsTheSlowestAndEvictsTheFastest) {
  SpanProfiler prof(&FakeClock);
  RequestTracer tracer(/*top_k=*/3);
  ProfilerInstallation pi(&prof);
  TracerInstallation ti(&tracer);
  // Durations 10,20,...,80 — only {60,70,80} may survive with K=3.
  for (std::uint64_t i = 1; i <= 8; ++i) OneTrace(prof, tracer, i, i * 10);

  const std::vector<RequestTrace> kept = tracer.Retained();
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_EQ(kept[0].root_dur_ns, 60u);
  EXPECT_EQ(kept[1].root_dur_ns, 70u);
  EXPECT_EQ(kept[2].root_dur_ns, 80u);
  const RequestTracer::RetainStats rs = tracer.retain_stats();
  EXPECT_EQ(rs.traces_seen, 8u);
  EXPECT_EQ(rs.retained_slow, 3u);
  EXPECT_EQ(rs.retained_interesting, 0u);
}

TEST(RequestTracer, InterestingTracesSurviveEvenWhenFast) {
  SpanProfiler prof(&FakeClock);
  RequestTracer tracer(/*top_k=*/2);
  ProfilerInstallation pi(&prof);
  TracerInstallation ti(&tracer);
  OneTrace(prof, tracer, 1, 1000);
  OneTrace(prof, tracer, 2, 2000);
  OneTrace(prof, tracer, 3, 5, /*interesting=*/true);  // fast but laddered

  const std::vector<RequestTrace> kept = tracer.Retained();
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_TRUE(kept[2].via_ladder);
  EXPECT_FALSE(kept[2].slow);
  EXPECT_EQ(kept[2].root_dur_ns, 5u);
}

TEST(RequestTracer, InterestingReservoirKeepsTheMostRecentK) {
  SpanProfiler prof(&FakeClock);
  RequestTracer tracer(/*top_k=*/2);
  ProfilerInstallation pi(&prof);
  TracerInstallation ti(&tracer);
  for (std::uint64_t i = 1; i <= 5; ++i) {
    OneTrace(prof, tracer, i, 10, /*interesting=*/true);
  }
  const std::vector<RequestTrace> kept = tracer.Retained();
  // 5 interesting traces, reservoir of 2: seqs 4 and 5 survive (plus
  // nothing in the top-K heap — interesting traces never land there).
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].seq, 4u);
  EXPECT_EQ(kept[1].seq, 5u);
  EXPECT_EQ(tracer.retain_stats().retained_slow, 0u);
}

TEST(RequestTracer, TopKZeroRetainsNothingButCounts) {
  SpanProfiler prof(&FakeClock);
  RequestTracer tracer(/*top_k=*/0);
  ProfilerInstallation pi(&prof);
  TracerInstallation ti(&tracer);
  OneTrace(prof, tracer, 1, 100);
  OneTrace(prof, tracer, 2, 100, /*interesting=*/true);
  EXPECT_TRUE(tracer.Retained().empty());
  EXPECT_EQ(tracer.retain_stats().traces_seen, 2u);
}

TEST(RequestTracer, RetainedMemoryStaysBoundedAt100kRequests) {
  // The tail-sampling promise, asserted at scale: 100'000 finished
  // traces of depth `kDepth` through a K=16 tracer must never hold more
  // than (2K+1)·depth span records — K slow trees + K interesting trees
  // + the one in-flight tree being decided. That is the O(K·depth)
  // bound; with everything retained it would be 100'000·depth.
  constexpr std::uint32_t kK = 16;
  constexpr int kDepth = 8;
  constexpr std::uint64_t kRequests = 100'000;
  SpanProfiler prof(&FakeClock);
  RequestTracer tracer(kK);
  ProfilerInstallation pi(&prof);
  TracerInstallation ti(&tracer);
  util::SplitMix64 rng(7);
  for (std::uint64_t i = 0; i < kRequests; ++i) {
    const std::uint64_t dur = 20 + rng() % 1000;
    OneTrace(prof, tracer, i, dur, /*interesting=*/i % 97 == 0, kDepth);
  }
  const RequestTracer::RetainStats rs = tracer.retain_stats();
  EXPECT_EQ(rs.traces_seen, kRequests);
  EXPECT_EQ(rs.retained_slow, kK);
  EXPECT_EQ(rs.retained_interesting, kK);
  const std::uint64_t bound = (2u * kK + 1u) * kDepth;
  EXPECT_LE(rs.peak_retained_spans, bound);
  // In bytes, with generous slack for the vectors' own bookkeeping:
  // far below what retain-everything would cost (100k·depth records).
  EXPECT_LE(rs.peak_retained_spans * sizeof(SpanRecord),
            bound * sizeof(SpanRecord) + 4096u);
}

// ---------------------------------------------------------------------------
// Perfetto export
// ---------------------------------------------------------------------------

TEST(RequestTracer, GoldenPerfettoAsyncSliceDocument) {
  SpanProfiler prof(&FakeClock);
  RequestTracer tracer(2);
  ProfilerInstallation pi(&prof);
  TracerInstallation ti(&tracer);
  g_fake_now = 2000;
  tracer.BeginTrace(9, 1, true);
  {
    ScopedSpan root(&prof, SpanStage::kAdmitTotal);
    {
      ScopedSpan inner(&prof, SpanStage::kUtilScreen);
      TraceAttr(2);
      g_fake_now = 2500;
    }
    g_fake_now = 3000;
  }
  tracer.EndTrace(false, false, false);

  const std::string expected =
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":["
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
      "\"args\":{\"name\":\"sps request traces\"}},"
      "{\"name\":\"admit_total\",\"cat\":\"request\",\"ph\":\"b\","
      "\"id\":\"9\",\"ts\":2,\"pid\":1,"
      "\"args\":{\"seq\":1,\"span\":0,\"parent\":-1,\"attr\":-1}},"
      "{\"name\":\"util_screen\",\"cat\":\"request\",\"ph\":\"b\","
      "\"id\":\"9\",\"ts\":2,\"pid\":1,"
      "\"args\":{\"seq\":1,\"span\":1,\"parent\":0,\"attr\":2}},"
      "{\"name\":\"util_screen\",\"cat\":\"request\",\"ph\":\"e\","
      "\"id\":\"9\",\"ts\":2.5,\"pid\":1},"
      "{\"name\":\"admit_total\",\"cat\":\"request\",\"ph\":\"e\","
      "\"id\":\"9\",\"ts\":3,\"pid\":1},"
      "{\"name\":\"pool stolen\",\"ph\":\"C\",\"ts\":0,\"pid\":1,"
      "\"args\":{\"value\":5}}"
      "],\"sps_reqtrace\":{\"k\":2,\"traces_seen\":1,"
      "\"peak_retained_spans\":2,\"traces\":["
      "{\"trace_id\":9,\"seq\":1,\"kind\":\"admit\",\"root_dur_ns\":1000,"
      "\"sampled\":\"slow\",\"via_ladder\":false,\"via_fallback\":false,"
      "\"diverged\":false,\"spans\":["
      "{\"stage\":\"admit_total\",\"parent\":-1,\"t0\":2000,"
      "\"dur_ns\":1000,\"attr\":-1},"
      "{\"stage\":\"util_screen\",\"parent\":0,\"t0\":2000,"
      "\"dur_ns\":500,\"attr\":2}"
      "]}]}}";
  CounterSeries pool{"pool stolen", {{0, 5.0}}};
  EXPECT_EQ(tracer.ToPerfettoJson({pool}), expected);
}

// ---------------------------------------------------------------------------
// Flight ring + dumps
// ---------------------------------------------------------------------------

TEST(FlightRing, WrapsKeepingTheMostRecentRecords) {
  FlightRing ring(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    FlightRecord r;
    r.seq = i;
    r.t0 = i * 100;
    ring.Push(r);
  }
  EXPECT_EQ(ring.pushed(), 10u);
  EXPECT_EQ(ring.capacity(), 4u);
  const std::vector<FlightRecord> snap = ring.Snapshot();
  ASSERT_EQ(snap.size(), 4u);
  // Oldest-first among the surviving tail: 6,7,8,9.
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(snap[i].seq, 6u + i);
    EXPECT_EQ(snap[i].t0, (6u + i) * 100u);
  }
}

TEST(FlightRing, RoundTripsEveryRecordField) {
  FlightRing ring(2);
  FlightRecord r;
  r.kind = FlightRecord::Kind::kEpoch;
  r.stage = 7;
  r.trace_id = 0xABCDEF;
  r.seq = 3;
  r.t0 = 123;
  r.dur_ns = 456;
  r.attr = -9;
  r.aux0 = 11;
  r.aux1 = 22;
  ring.Push(r);
  const std::vector<FlightRecord> snap = ring.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].kind, FlightRecord::Kind::kEpoch);
  EXPECT_EQ(snap[0].stage, 7u);
  EXPECT_EQ(snap[0].trace_id, 0xABCDEFu);
  EXPECT_EQ(snap[0].seq, 3u);
  EXPECT_EQ(snap[0].t0, 123u);
  EXPECT_EQ(snap[0].dur_ns, 456u);
  EXPECT_EQ(snap[0].attr, -9);
  EXPECT_EQ(snap[0].aux0, 11u);
  EXPECT_EQ(snap[0].aux1, 22u);
}

TEST(RequestTracer, DumpFlightWritesSpanAndEpochRecords) {
  const std::string dir = ::testing::TempDir() + "sps_flight_dump";
  std::filesystem::create_directories(dir);
  SpanProfiler prof(&FakeClock);
  RequestTracer::Options opt;
  opt.top_k = 4;
  opt.flight_slots = 64;
  opt.flight_dir = dir;
  RequestTracer tracer(opt);
  ProfilerInstallation pi(&prof);
  TracerInstallation ti(&tracer);
  OneTrace(prof, tracer, 12, 300);
  tracer.NoteEpoch(/*epoch=*/2, /*admits=*/10, /*rejects=*/3, /*leaves=*/1,
                   /*resident=*/7);

  std::string path, err;
  ASSERT_TRUE(tracer.DumpFlight("unit_test", &path, &err)) << err;
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  const std::string doc((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  EXPECT_NE(doc.find("\"reason\":\"unit_test\""), std::string::npos);
  EXPECT_NE(doc.find("\"kind\":\"span\""), std::string::npos);
  EXPECT_NE(doc.find("\"stage\":\"admit_total\""), std::string::npos);
  EXPECT_NE(doc.find("\"kind\":\"epoch\",\"epoch\":2,\"admits\":10,"
                     "\"rejects\":3,\"leaves\":1,\"resident\":7"),
            std::string::npos);
  // Balanced JSON (the CI smoke json.load()s real dumps; keep the unit
  // check structural).
  EXPECT_EQ(std::count(doc.begin(), doc.end(), '{'),
            std::count(doc.begin(), doc.end(), '}'));
  std::filesystem::remove_all(dir);
}

TEST(RequestTracer, CrashDumpRegistrationClearsOnDestruction) {
  ASSERT_EQ(CrashDumpTracer(), nullptr);
  {
    RequestTracer tracer(2);
    SetCrashDumpTracer(&tracer);
    EXPECT_EQ(CrashDumpTracer(), &tracer);
  }  // dtor must deregister — a dangling crash-dump pointer would be UB
  EXPECT_EQ(CrashDumpTracer(), nullptr);
}

TEST(RequestTracer, DumpFlightRacesLiveTracingThreads) {
  // TSan target: concurrent per-thread tracing while another thread
  // snapshots and dumps the rings. Seqlock torn reads may DROP records,
  // never tear or race them.
  const std::string dir = ::testing::TempDir() + "sps_flight_race";
  std::filesystem::create_directories(dir);
  SpanProfiler prof;  // real clock: the race needs real interleaving
  RequestTracer::Options opt;
  opt.top_k = 8;
  opt.flight_slots = 32;
  opt.flight_dir = dir;
  RequestTracer tracer(opt);

  std::vector<std::thread> workers;
  for (int w = 0; w < 3; ++w) {
    workers.emplace_back([&, w] {
      ProfilerInstallation pi(&prof);
      TracerInstallation ti(&tracer);
      for (std::uint64_t i = 0; i < 500; ++i) {
        tracer.BeginTrace(util::DeriveSeed(9, i, kTraceIdAxis),
                          i * 4 + static_cast<std::uint64_t>(w), true);
        {
          ScopedSpan root(&prof, SpanStage::kAdmitTotal);
          ScopedSpan inner(&prof, SpanStage::kAnalysis);
          TraceAttr(static_cast<std::int64_t>(i));
        }
        tracer.EndTrace(i % 7 == 0, false, false);
      }
    });
  }
  std::string err;
  for (int d = 0; d < 10; ++d) {
    ASSERT_TRUE(tracer.DumpFlight("race", nullptr, &err)) << err;
  }
  for (std::thread& t : workers) t.join();
  ASSERT_TRUE(tracer.DumpFlight("race_final", nullptr, &err)) << err;
  EXPECT_EQ(tracer.retain_stats().traces_seen, 1500u);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace sps::obs

// ---------------------------------------------------------------------------
// Differential: the wall-clock firewall on the replay surface
// ---------------------------------------------------------------------------

namespace sps::online {
namespace {

WorkloadStream DiffStream(std::uint64_t seed) {
  StreamConfig cfg;
  cfg.num_admits = 120;
  cfg.leave_fraction = 0.5;
  cfg.soft_fraction = 0.4;
  cfg.seed = seed;
  return GenerateStream(cfg);
}

ReplayConfig DiffConfig(unsigned shards) {
  ReplayConfig cfg;
  cfg.controller.admission.num_cores = 4;
  cfg.epoch = Millis(500);
  cfg.seed = 11;
  if (shards > 0) {
    cfg.validate_by_simulation = true;
    cfg.validate_sim.horizon = Millis(100);
    cfg.validate_sim.shards = shards;
  }
  return cfg;
}

/// Everything a replay DECIDES, as comparable text: the per-epoch table
/// plus the unified stats registry dump (what --stats-out writes).
std::string DecisionFingerprint(const ReplayResult& r) {
  obs::StatsRegistry reg;
  FillStatsRegistry(reg, r);
  return r.Table() + "\n" + reg.snapshot().ToJson() + "\n" +
         r.final_partition.summary();
}

TEST(ReqtraceDifferential, TracingLeavesDecisionsByteIdenticalAcrossShards) {
  const WorkloadStream stream = DiffStream(31);
  // shards: 0 = hardware, 1 = serial, 2 = two sim threads; shards==0 in
  // DiffConfig means no epoch validation at all (the cheap lane).
  for (const unsigned shards : {1u, 2u, 0u}) {
    // Each replay gets its OWN cold memo table: the process-wide shared
    // cache would stay warm into the second replay and shift the
    // memo.* counters for reasons unrelated to tracing.
    analysis::AnalysisMemo memo_plain(1u << 12);
    analysis::AnalysisMemo memo_traced(1u << 12);
    ReplayConfig cfg = DiffConfig(shards);
    cfg.controller.admission.memo.table = &memo_plain;
    const ReplayResult plain = ReplayStream(stream, cfg);

    obs::SpanProfiler prof;
    obs::RequestTracer tracer(8);
    ReplayConfig traced_cfg = cfg;
    traced_cfg.controller.admission.memo.table = &memo_traced;
    traced_cfg.obs.profiler = &prof;
    traced_cfg.obs.tracer = &tracer;
    const ReplayResult traced = ReplayStream(stream, traced_cfg);

    EXPECT_EQ(DecisionFingerprint(plain), DecisionFingerprint(traced))
        << "shards=" << shards;
    EXPECT_GT(tracer.retain_stats().traces_seen, 0u);
  }
}

TEST(ReqtraceDifferential, TracedBatchBitIdenticalForAnyJobCount) {
  std::vector<WorkloadStream> streams;
  for (std::uint64_t i = 0; i < 6; ++i) streams.push_back(DiffStream(40 + i));
  ReplayConfig cfg = DiffConfig(/*shards=*/0);
  // Memo off for this comparison: concurrent probes against a shared
  // table race benignly (DESIGN.md §12), so the memo.* counters are
  // interleaving-dependent and would differ between jobs=1 and jobs=8
  // with tracing completely out of the picture.
  cfg.controller.admission.memo.enabled = false;

  const std::vector<ReplayResult> serial = ReplayBatch(streams, cfg, 1);

  obs::SpanProfiler prof;
  obs::RequestTracer tracer(8);
  ReplayConfig traced_cfg = cfg;
  traced_cfg.obs.profiler = &prof;
  traced_cfg.obs.tracer = &tracer;
  const std::vector<ReplayResult> traced8 = ReplayBatch(streams, traced_cfg, 8);

  ASSERT_EQ(serial.size(), traced8.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(DecisionFingerprint(serial[i]), DecisionFingerprint(traced8[i]))
        << "stream " << i;
  }
  // The parallel batch exercised per-thread tracer contexts.
  EXPECT_GT(tracer.retain_stats().traces_seen, 0u);
}

TEST(ReqtraceDifferential, DurabilityArtifactsByteIdenticalWithTracingOn) {
  namespace fs = std::filesystem;
  const std::string base = ::testing::TempDir() + "sps_reqtrace_dur";
  const std::string dir_off = base + "_off";
  const std::string dir_on = base + "_on";
  fs::remove_all(dir_off);
  fs::remove_all(dir_on);

  const WorkloadStream stream = DiffStream(77);
  analysis::AnalysisMemo memo_plain(1u << 12);
  analysis::AnalysisMemo memo_traced(1u << 12);
  ReplayConfig cfg = DiffConfig(/*shards=*/0);
  cfg.durability.checkpoint_every = 2;
  cfg.durability.fsync = FsyncPolicy::kOff;

  cfg.controller.admission.memo.table = &memo_plain;
  cfg.durability.dir = dir_off;
  const ReplayResult plain = ReplayStream(stream, cfg);
  ASSERT_TRUE(plain.durability_error.ok());

  obs::SpanProfiler prof;
  obs::RequestTracer::Options topt;
  topt.top_k = 8;
  topt.flight_dir = dir_on;
  obs::RequestTracer tracer(topt);
  ReplayConfig traced_cfg = cfg;
  traced_cfg.controller.admission.memo.table = &memo_traced;
  traced_cfg.durability.dir = dir_on;
  traced_cfg.obs.profiler = &prof;
  traced_cfg.obs.tracer = &tracer;
  const ReplayResult traced = ReplayStream(stream, traced_cfg);
  ASSERT_TRUE(traced.durability_error.ok());

  // Same artifact set, byte-identical files: the journal and every
  // checkpoint. (Flight dumps would only appear on crash/divergence.)
  std::vector<std::string> names;
  for (const auto& e : fs::directory_iterator(dir_off)) {
    names.push_back(e.path().filename().string());
  }
  ASSERT_FALSE(names.empty());
  std::sort(names.begin(), names.end());
  for (const std::string& name : names) {
    std::ifstream a(dir_off + "/" + name, std::ios::binary);
    std::ifstream b(dir_on + "/" + name, std::ios::binary);
    ASSERT_TRUE(a.good() && b.good()) << name;
    const std::string ab((std::istreambuf_iterator<char>(a)),
                         std::istreambuf_iterator<char>());
    const std::string bb((std::istreambuf_iterator<char>(b)),
                         std::istreambuf_iterator<char>());
    EXPECT_EQ(ab, bb) << "durability artifact diverged: " << name;
  }
  fs::remove_all(dir_off);
  fs::remove_all(dir_on);
}

}  // namespace
}  // namespace sps::online
