// Overload-resilience subsystem (DESIGN.md §13): typed loader
// fuzz-negatives, the kSpiky execution model and its admission-generation
// RNG salting, the controller's degrade/shed ladder (victim order,
// exact rollback, hard-task protection), repartition hysteresis, and the
// fault-injected replay's recovery invariants.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <tuple>
#include <vector>

#include "online/controller.hpp"
#include "online/workload_stream.hpp"
#include "overhead/model.hpp"
#include "partition/edf_wm.hpp"
#include "partition/verify.hpp"
#include "rt/task.hpp"
#include "sim/engine.hpp"

namespace sps::online {
namespace {

using overhead::OverheadModel;
using rt::MakeSoftTask;
using rt::MakeTask;

// ---------------------------------------------------------------------------
// Loader fuzz-negatives: every malformed input is a TYPED error with the
// offending line — never a crash, never a silent false.
// ---------------------------------------------------------------------------

std::string WriteFile(const std::string& name, const std::string& body) {
  const std::string path = ::testing::TempDir() + name;
  std::FILE* f = std::fopen(path.c_str(), "w");
  EXPECT_NE(f, nullptr);
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  return path;
}

void ExpectLoadError(const std::string& name, const std::string& body,
                     StreamError::Kind kind, int line) {
  const std::string path = WriteFile(name, body);
  WorkloadStream s;
  StreamError err;
  EXPECT_FALSE(LoadStream(path, s, &err));
  EXPECT_EQ(err.kind, kind) << ToString(err.kind) << ": " << err.message;
  EXPECT_EQ(err.line, line) << err.message;
  if (line > 0) {
    EXPECT_NE(err.message.find(path + ":" + std::to_string(line)),
              std::string::npos)
        << err.message;
  }
  std::remove(path.c_str());
}

constexpr char kHeader[] = "# sps-online-stream v1\n";

TEST(StreamLoaderFuzz, MissingHeaderIsTyped) {
  ExpectLoadError("fuzz_noheader.txt", "admit 0 1 10 100 100 0\n",
                  StreamError::Kind::kMissingHeader, 1);
  ExpectLoadError("fuzz_badheader.txt",
                  "# some other format\nadmit 0 1 10 100 100 0\n",
                  StreamError::Kind::kMissingHeader, 1);
}

TEST(StreamLoaderFuzz, TruncatedFileIsTyped) {
  // The writer always terminates the file with a newline; a file that
  // ends mid-line is a truncated capture.
  ExpectLoadError("fuzz_trunc.txt",
                  std::string(kHeader) + "admit 0 1 10 100 100",
                  StreamError::Kind::kTruncated, 2);
}

TEST(StreamLoaderFuzz, OverlongLineIsTyped) {
  ExpectLoadError("fuzz_overlong.txt",
                  std::string(kHeader) + std::string(400, 'x') + "\n",
                  StreamError::Kind::kOverlongLine, 2);
}

TEST(StreamLoaderFuzz, DuplicateAdmitIsTyped) {
  ExpectLoadError("fuzz_dup.txt",
                  std::string(kHeader) + "admit 0 1 10 100 100 0\n" +
                      "admit 5 1 10 100 100 1\n",
                  StreamError::Kind::kDuplicateAdmit, 3);
}

TEST(StreamLoaderFuzz, LeaveBeforeAdmitIsTyped) {
  ExpectLoadError("fuzz_leave.txt", std::string(kHeader) + "leave 5 9\n",
                  StreamError::Kind::kLeaveWithoutAdmit, 2);
  // Leave of an id that already left is the same class of error.
  ExpectLoadError("fuzz_releave.txt",
                  std::string(kHeader) + "admit 0 1 10 100 100 0\n" +
                      "leave 5 1\nleave 6 1\n",
                  StreamError::Kind::kLeaveWithoutAdmit, 4);
}

TEST(StreamLoaderFuzz, NonMonotoneTimestampIsTyped) {
  ExpectLoadError("fuzz_time.txt",
                  std::string(kHeader) + "admit 10 1 10 100 100 0\n" +
                      "admit 5 2 10 100 100 1\n",
                  StreamError::Kind::kNonMonotoneTime, 3);
}

TEST(StreamLoaderFuzz, MalformedTaskIsTyped) {
  // C > D violates 0 < C <= D <= T.
  ExpectLoadError("fuzz_badtask.txt",
                  std::string(kHeader) + "admit 0 1 200 100 100 0\n",
                  StreamError::Kind::kMalformedTask, 2);
  // v2 attributes: criticality must be 0/1, degraded WCET < full WCET.
  ExpectLoadError("fuzz_badcrit.txt",
                  "# sps-online-stream v2\n"
                  "admit 0 1 10 100 100 0 7 0 0 0\n",
                  StreamError::Kind::kMalformedTask, 2);
  ExpectLoadError("fuzz_baddeg.txt",
                  "# sps-online-stream v2\n"
                  "admit 0 1 10 100 100 0 1 2 100 10\n",
                  StreamError::Kind::kMalformedTask, 2);
}

TEST(StreamLoaderFuzz, UnparseableLineIsTyped) {
  ExpectLoadError("fuzz_parse.txt",
                  std::string(kHeader) + "frobnicate 1 2\n",
                  StreamError::Kind::kParse, 2);
}

TEST(StreamLoaderFuzz, LegacyOverloadRendersTheTypedMessage) {
  const std::string path = WriteFile(
      "fuzz_legacy.txt", std::string(kHeader) + "leave 5 9\n");
  WorkloadStream s;
  std::string err;
  EXPECT_FALSE(LoadStream(path, s, &err));
  EXPECT_NE(err.find(path + ":2"), std::string::npos) << err;
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// v2 stream format and the soft-task generation axis
// ---------------------------------------------------------------------------

TEST(StreamOverloadAxis, SoftStreamsRoundTripThroughV2) {
  StreamConfig cfg;
  cfg.num_admits = 48;
  cfg.leave_fraction = 0.4;
  cfg.soft_fraction = 0.6;
  const WorkloadStream s = GenerateStream(cfg);
  bool any_soft = false;
  bool any_degraded = false;
  for (const Request& r : s.requests()) {
    if (r.kind != RequestKind::kAdmit || !r.task.soft()) continue;
    any_soft = true;
    EXPECT_GT(r.task.tardiness_bound, 0);
    if (r.task.degraded_wcet > 0) {
      any_degraded = true;
      EXPECT_LT(r.task.degraded_wcet, r.task.wcet);
    }
  }
  EXPECT_TRUE(any_soft);
  EXPECT_TRUE(any_degraded);

  const std::string path = ::testing::TempDir() + "stream_v2.txt";
  std::string err;
  ASSERT_TRUE(SaveStream(s, path, &err)) << err;
  // Soft attributes force the v2 header...
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char first[64] = {};
  ASSERT_NE(std::fgets(first, sizeof(first), f), nullptr);
  std::fclose(f);
  EXPECT_STREQ(first, "# sps-online-stream v2\n");
  // ...and the file round-trips exactly, overload attributes included.
  WorkloadStream loaded;
  ASSERT_TRUE(LoadStream(path, loaded, &err)) << err;
  EXPECT_EQ(s.requests(), loaded.requests());
  std::remove(path.c_str());
}

TEST(StreamOverloadAxis, SoftDrawsDoNotPerturbBaseParameters) {
  // The soft attributes live on their own seed axes: switching the
  // fraction on must not change any request's timing or C/T/D.
  StreamConfig hard;
  hard.num_admits = 64;
  StreamConfig soft = hard;
  soft.soft_fraction = 0.5;
  const WorkloadStream a = GenerateStream(hard);
  const WorkloadStream b = GenerateStream(soft);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Request& ra = a.requests()[i];
    const Request& rb = b.requests()[i];
    EXPECT_EQ(ra.at, rb.at);
    EXPECT_EQ(ra.kind, rb.kind);
    EXPECT_EQ(ra.id, rb.id);
    EXPECT_EQ(ra.task.wcet, rb.task.wcet);
    EXPECT_EQ(ra.task.period, rb.task.period);
    EXPECT_EQ(ra.task.deadline, rb.task.deadline);
  }
}

// ---------------------------------------------------------------------------
// kSpiky execution model (sim/kernel.hpp)
// ---------------------------------------------------------------------------

partition::Partition SmallEdfPartition(std::vector<rt::Task> tasks,
                                       unsigned cores) {
  partition::EdfPartitionConfig cfg;
  cfg.num_cores = cores;
  const partition::PartitionResult pr = partition::EdfBinPack(
      rt::TaskSet(std::move(tasks)), partition::FitPolicy::kFirstFit, cfg);
  EXPECT_TRUE(pr.success) << pr.failure_reason;
  return pr.partition;
}

using TaskSignature = std::tuple<std::uint64_t, std::uint64_t,
                                 std::uint64_t, std::uint64_t, Time, double>;

TaskSignature Signature(const sim::TaskStats& t) {
  return {t.released, t.completed, t.deadline_misses, t.shed,
          t.max_response, t.avg_response};
}

TEST(SpikyExec, ZeroSpikeProbMatchesWcetModelExactly) {
  const partition::Partition p = SmallEdfPartition(
      {MakeTask(0, Millis(3), Millis(10)), MakeTask(1, Millis(4), Millis(20)),
       MakeTask(2, Millis(5), Millis(50))},
      1);
  sim::SimConfig wcet;
  wcet.horizon = Millis(500);
  sim::SimConfig spiky = wcet;
  spiky.exec.kind = sim::ExecModel::Kind::kSpiky;
  spiky.exec.spike_prob = 0.0;
  const sim::SimResult a = Simulate(p, wcet);
  const sim::SimResult b = Simulate(p, spiky);
  EXPECT_EQ(a.total_misses, b.total_misses);
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    EXPECT_EQ(Signature(a.tasks[i]), Signature(b.tasks[i])) << i;
  }
}

TEST(SpikyExec, OverrunsAreDeterministicAndAbsorbed) {
  // u = 0.8 with every job at 2x C is a sustained overload: the engine
  // must absorb it through its overrun/shed path (no crash, no UB) and
  // reproduce the exact same statistics on a second run.
  const partition::Partition p = SmallEdfPartition(
      {MakeTask(0, Millis(4), Millis(10)), MakeTask(1, Millis(8), Millis(20))},
      1);
  sim::SimConfig cfg;
  cfg.horizon = Millis(2000);
  cfg.exec.kind = sim::ExecModel::Kind::kSpiky;
  cfg.exec.spike_prob = 1.0;
  cfg.exec.spike_magnitude = 2.0;
  const sim::SimResult a = Simulate(p, cfg);
  const sim::SimResult b = Simulate(p, cfg);
  EXPECT_EQ(a.total_misses, b.total_misses);
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  std::uint64_t dropped_or_missed = 0;
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    EXPECT_EQ(Signature(a.tasks[i]), Signature(b.tasks[i])) << i;
    EXPECT_GE(a.tasks[i].released, a.tasks[i].completed);
    dropped_or_missed += a.tasks[i].deadline_misses + a.tasks[i].shed;
  }
  EXPECT_GT(dropped_or_missed, 0u);
}

TEST(SpikyExec, AdmissionGenerationSaltsTheRngStreams) {
  const partition::Partition p =
      SmallEdfPartition({MakeTask(0, Millis(5), Millis(10))}, 1);
  sim::SimConfig cfg;
  cfg.horizon = Millis(3000);
  cfg.exec.kind = sim::ExecModel::Kind::kSpiky;
  cfg.exec.spike_prob = 0.5;
  cfg.exec.spike_magnitude = 1.8;
  // Default (no generations) == explicit generation 0, bit-identically.
  sim::SimConfig gen0 = cfg;
  gen0.exec_generations = {0};
  const sim::SimResult a = Simulate(p, cfg);
  const sim::SimResult b = Simulate(p, gen0);
  EXPECT_EQ(Signature(a.tasks[0]), Signature(b.tasks[0]));
  // Generation 1 (the id was re-admitted) draws a DIFFERENT spike
  // pattern: ~300 jobs at p=0.5 cannot coincide.
  sim::SimConfig gen1 = cfg;
  gen1.exec_generations = {1};
  const sim::SimResult c = Simulate(p, gen1);
  EXPECT_NE(Signature(a.tasks[0]), Signature(c.tasks[0]));
}

TEST(OnlineController, ReadmissionBumpsExecGeneration) {
  ControllerConfig cfg;
  cfg.admission.num_cores = 1;
  cfg.allow_split = false;
  cfg.repartition_fallback = false;
  Controller ctrl(cfg);
  ASSERT_TRUE(ctrl.Admit(MakeTask(0, Millis(10), Millis(100))).accepted);
  ASSERT_TRUE(ctrl.Admit(MakeTask(1, Millis(10), Millis(100))).accepted);
  EXPECT_EQ(ctrl.ExecGenerations(), (std::vector<std::uint32_t>{0, 0}));
  // LEAVE then re-ADMIT the same id mid-stream: the new incarnation must
  // not resume the old one's RNG position.
  ASSERT_TRUE(ctrl.Leave(0));
  ASSERT_TRUE(ctrl.Admit(MakeTask(0, Millis(10), Millis(100))).accepted);
  EXPECT_EQ(ctrl.ExecGenerations(), (std::vector<std::uint32_t>{1, 0}));
  ASSERT_TRUE(ctrl.Leave(0));
  ASSERT_TRUE(ctrl.Admit(MakeTask(0, Millis(10), Millis(100))).accepted);
  EXPECT_EQ(ctrl.ExecGenerations(), (std::vector<std::uint32_t>{2, 0}));
}

// ---------------------------------------------------------------------------
// Degrade/shed ladder
// ---------------------------------------------------------------------------

ControllerConfig OneCoreLadder() {
  ControllerConfig cfg;
  cfg.admission.num_cores = 1;
  cfg.allow_split = false;
  cfg.repartition_fallback = false;
  return cfg;  // overload.ladder defaults ON
}

TEST(OverloadLadder, DegradesBeforeSheddingAndPicksLowestValue) {
  Controller ctrl(OneCoreLadder());
  const Time T = Millis(100);
  ASSERT_TRUE(ctrl.Admit(MakeTask(0, Millis(50), T)).accepted);  // hard .5
  ASSERT_TRUE(ctrl.Admit(MakeSoftTask(1, Millis(30), T, /*value=*/1, T,
                                      /*degraded=*/Millis(15)))
                  .accepted);                                    // soft .3
  ASSERT_TRUE(
      ctrl.Admit(MakeSoftTask(2, Millis(20), T, /*value=*/0, T)).accepted);
  EXPECT_NEAR(ctrl.total_utilization(), 1.0, 1e-9);

  // A hard candidate that fits nowhere: rung 1 degrades task 1 (the only
  // degradable resident), which is not enough; rung 2 sheds task 2 (the
  // LOWEST value class, even though task 1 was degraded first).
  const AdmitOutcome out = ctrl.Admit(MakeTask(3, Millis(25), T));
  EXPECT_TRUE(out.accepted);
  EXPECT_TRUE(out.via_ladder);
  EXPECT_FALSE(out.via_fallback);
  EXPECT_EQ(ctrl.overload_stats().degrades, 1u);
  EXPECT_EQ(ctrl.overload_stats().sheds, 1u);
  EXPECT_EQ(ctrl.shed_resident(), 1u);
  EXPECT_EQ(ctrl.degraded_resident(), 1u);
  EXPECT_EQ(ctrl.resident(), 3u);  // 0, 1 (degraded), 3
  EXPECT_NEAR(ctrl.total_utilization(), 0.90, 1e-9);

  const partition::Partition p = ctrl.CurrentPartition();
  ASSERT_EQ(p.tasks.size(), 3u);
  EXPECT_EQ(p.tasks[0].task.id, 0u);
  EXPECT_EQ(p.tasks[1].task.id, 1u);
  EXPECT_EQ(p.tasks[1].task.wcet, Millis(15));  // degraded service
  EXPECT_EQ(p.tasks[2].task.id, 3u);
  EXPECT_TRUE(
      partition::AnalyzePartition(p, OverheadModel::Zero()).schedulable);
}

TEST(OverloadLadder, HardResidentsAreNeverTouched) {
  Controller ctrl(OneCoreLadder());
  const Time T = Millis(100);
  ASSERT_TRUE(ctrl.Admit(MakeTask(0, Millis(60), T)).accepted);
  ASSERT_TRUE(ctrl.Admit(MakeTask(1, Millis(30), T)).accepted);
  EXPECT_FALSE(ctrl.Admit(MakeTask(2, Millis(30), T)).accepted);
  EXPECT_EQ(ctrl.resident(), 2u);
  EXPECT_EQ(ctrl.overload_stats().degrades, 0u);
  EXPECT_EQ(ctrl.overload_stats().sheds, 0u);
  EXPECT_EQ(ctrl.shed_resident(), 0u);
}

TEST(OverloadLadder, ShedsNewestFirstWithinAValueClass) {
  Controller ctrl(OneCoreLadder());
  const Time T = Millis(100);
  ASSERT_TRUE(ctrl.Admit(MakeSoftTask(1, Millis(45), T, 0, T)).accepted);
  ASSERT_TRUE(ctrl.Admit(MakeSoftTask(2, Millis(45), T, 0, T)).accepted);
  const AdmitOutcome out = ctrl.Admit(MakeTask(3, Millis(50), T));
  EXPECT_TRUE(out.accepted);
  EXPECT_TRUE(out.via_ladder);
  EXPECT_EQ(ctrl.overload_stats().sheds, 1u);
  // LIFO within the class: the NEWER admission (task 2) is shed first.
  const partition::Partition p = ctrl.CurrentPartition();
  ASSERT_EQ(p.tasks.size(), 2u);
  EXPECT_EQ(p.tasks[0].task.id, 1u);
  EXPECT_EQ(p.tasks[1].task.id, 3u);
}

TEST(OverloadLadder, EqualValueSoftCandidateCannotEvict) {
  Controller ctrl(OneCoreLadder());
  const Time T = Millis(100);
  ASSERT_TRUE(ctrl.Admit(MakeSoftTask(1, Millis(60), T, 2, T)).accepted);
  // Equal value: no thrash — the incumbent stays.
  EXPECT_FALSE(ctrl.Admit(MakeSoftTask(2, Millis(60), T, 2, T)).accepted);
  EXPECT_EQ(ctrl.overload_stats().sheds, 0u);
  EXPECT_EQ(ctrl.resident(), 1u);
  // Strictly higher value evicts.
  const AdmitOutcome out = ctrl.Admit(MakeSoftTask(3, Millis(60), T, 3, T));
  EXPECT_TRUE(out.accepted);
  EXPECT_TRUE(out.via_ladder);
  EXPECT_EQ(ctrl.overload_stats().sheds, 1u);
  EXPECT_EQ(ctrl.CurrentPartition().tasks[0].task.id, 3u);
}

TEST(OverloadLadder, RejectedCandidateRollsEveryActionBack) {
  Controller ctrl(OneCoreLadder());
  const Time T = Millis(100);
  ASSERT_TRUE(ctrl.Admit(MakeTask(0, Millis(50), T)).accepted);  // hard
  ASSERT_TRUE(
      ctrl.Admit(MakeSoftTask(1, Millis(20), T, 0, T, Millis(10))).accepted);
  ASSERT_TRUE(ctrl.Admit(MakeSoftTask(2, Millis(25), T, 1, T)).accepted);
  const partition::Partition before = ctrl.CurrentPartition();
  const double util_before = ctrl.total_utilization();

  // Even with every soft resident degraded AND shed, u=.8 cannot join
  // the u=.5 hard task: the ladder must undo everything it tried.
  EXPECT_FALSE(ctrl.Admit(MakeTask(3, Millis(80), T)).accepted);

  EXPECT_EQ(ctrl.resident(), 3u);
  EXPECT_EQ(ctrl.shed_resident(), 0u);
  EXPECT_EQ(ctrl.degraded_resident(), 0u);
  EXPECT_EQ(ctrl.overload_stats().degrades, 0u);
  EXPECT_EQ(ctrl.overload_stats().sheds, 0u);
  EXPECT_NEAR(ctrl.total_utilization(), util_before, 1e-9);
  const partition::Partition after = ctrl.CurrentPartition();
  ASSERT_EQ(after.tasks.size(), before.tasks.size());
  for (std::size_t i = 0; i < after.tasks.size(); ++i) {
    EXPECT_EQ(after.tasks[i].task, before.tasks[i].task) << i;
  }
  // The restored state still admits normally.
  EXPECT_TRUE(ctrl.Admit(MakeTask(4, Millis(5), T)).accepted);
}

// ---------------------------------------------------------------------------
// Repartition hysteresis
// ---------------------------------------------------------------------------

TEST(OverloadHysteresis, CutsRepartitionStormsAtSaturation) {
  // A churning near-saturation stream on 2 first-fit cores: without
  // hysteresis the fallback re-partitions over and over; with the
  // default-on cooldown/band gate the adoption count must collapse by
  // at least 5x (the satellite's regression bound).
  StreamConfig scfg;
  scfg.num_admits = 240;
  scfg.leave_fraction = 1.0;  // everyone churns
  scfg.min_lifetime = Millis(300);
  scfg.max_lifetime = Millis(900);
  scfg.util_min = 0.10;
  scfg.util_max = 0.30;
  scfg.seed = 99;
  const WorkloadStream s = GenerateStream(scfg);

  ReplayConfig rcfg;
  rcfg.controller.admission.num_cores = 2;
  rcfg.controller.allow_split = false;
  rcfg.controller.repartition_fallback = true;
  rcfg.controller.overload.ladder = false;  // isolate the hysteresis axis
  rcfg.controller.overload.hysteresis = false;
  const ReplayResult off = ReplayStream(s, rcfg);
  ASSERT_GE(off.churn.repartitions, 5u)
      << "stream does not saturate; the test needs a repartition storm";

  // Default knobs (cooldown 4 epochs, 0.10 util band) already suppress
  // adoptions on this stream...
  rcfg.controller.overload.hysteresis = true;
  const ReplayResult dflt = ReplayStream(s, rcfg);
  EXPECT_LT(dflt.churn.repartitions, off.churn.repartitions);
  EXPECT_GT(dflt.overload.hysteresis_blocks, 0u);
  // Suppressed adoptions mean strictly less placement churn.
  EXPECT_LT(dflt.churn.moved, off.churn.moved);

  // ...and a storm-suppression tuning (cooldown longer than the storm,
  // band wider than the churn swing) collapses the count >= 5x.
  rcfg.controller.overload.cooldown_epochs = 16;
  rcfg.controller.overload.util_band = 2.0;
  const ReplayResult strong = ReplayStream(s, rcfg);
  EXPECT_LE(strong.churn.repartitions * 5, off.churn.repartitions)
      << "hysteresis on: " << strong.churn.repartitions
      << ", off: " << off.churn.repartitions;
}

// ---------------------------------------------------------------------------
// Fault-injected replay: reaction, recovery, conservation
// ---------------------------------------------------------------------------

TEST(OverloadReplay, SpikeWindowShedsThenRecoversWithZeroHardMisses) {
  // One core at u=.9: hard .3 + degradable soft .3 + plain soft .3. A
  // 1.5x spike window makes that 1.35 — the reaction degrades the
  // degradable task, then sheds it (full task), landing on {hard,
  // soft2} = .6 (inflated .9, schedulable). After the window the shed
  // task's retry re-admits it.
  const Time T = Millis(100);
  std::vector<Request> reqs;
  Request r;
  r.kind = RequestKind::kAdmit;
  r.at = 0;
  r.id = 0;
  r.task = MakeTask(0, Millis(30), T);
  reqs.push_back(r);
  r.at = Millis(10);
  r.id = 1;
  r.task = MakeSoftTask(1, Millis(30), T, 0, T, Millis(10));
  reqs.push_back(r);
  r.at = Millis(20);
  r.id = 2;
  r.task = MakeSoftTask(2, Millis(30), T, 1, T);
  reqs.push_back(r);
  const WorkloadStream s{std::move(reqs)};

  ReplayConfig cfg;
  cfg.controller.admission.num_cores = 1;
  cfg.controller.allow_split = false;
  cfg.controller.repartition_fallback = false;
  cfg.epoch = Millis(100);
  cfg.drain_epochs = 8;
  cfg.validate_by_simulation = true;
  cfg.validate_sim.horizon = Millis(400);
  cfg.faults.spikes.push_back(
      SpikeEpoch{Millis(300), Millis(500), /*prob=*/1.0, /*magnitude=*/1.5});

  const ReplayResult res = ReplayStream(s, cfg);
  ASSERT_EQ(res.epochs.size(), 9u);  // [0,100) + 8 drain epochs

  // The reaction fired at the window onset: one degrade, one shed.
  EXPECT_EQ(res.overload.degrades, 1u);
  EXPECT_EQ(res.overload.sheds, 1u);
  const EpochStats& fault_epoch = res.epochs[3];  // [300, 400)
  EXPECT_TRUE(fault_epoch.fault_active);
  EXPECT_EQ(fault_epoch.overload.sheds, 1u);
  EXPECT_EQ(fault_epoch.shed_resident, 1u);
  EXPECT_FALSE(res.epochs[0].fault_active);

  // Zero hard misses in EVERY epoch — including the validated-under-
  // spike ones.
  for (const EpochStats& e : res.epochs) {
    EXPECT_TRUE(e.validated);
    EXPECT_EQ(e.hard_misses, 0u) << "[" << ToMillis(e.start) << ", "
                                 << ToMillis(e.end) << ")";
  }

  // Recovery: the shed set drained (the retry re-admitted task 1 at
  // full service once the window closed) and the degrade was either
  // undone by the shed or restored.
  EXPECT_EQ(res.shed_outstanding, 0u);
  EXPECT_EQ(res.overload.shed_restores, 1u);
  EXPECT_EQ(res.epochs.back().shed_resident, 0u);
  EXPECT_EQ(res.epochs.back().degraded_resident, 0u);
  EXPECT_EQ(res.epochs.back().resident, 3u);

  // Conservation: every accepted admit is resident, shed, or left.
  EXPECT_EQ(res.admits, res.final_partition.tasks.size() +
                            res.shed_outstanding + res.leaves);
  // And the standing partition re-validates clean.
  EXPECT_TRUE(partition::AnalyzePartition(res.final_partition,
                                          OverheadModel::Zero())
                  .schedulable);
}

TEST(OverloadReplay, AdmitsAreConservedAcrossResidentShedAndLeft) {
  // Generated soft workload + spike window: the id-conservation law
  // admits == resident + shed_outstanding + leaves must hold exactly.
  StreamConfig scfg;
  scfg.num_admits = 80;
  scfg.leave_fraction = 0.5;
  scfg.soft_fraction = 0.5;
  scfg.seed = 7;
  const WorkloadStream s = GenerateStream(scfg);

  ReplayConfig cfg;
  cfg.controller.admission.num_cores = 2;
  cfg.faults.spikes.push_back(
      SpikeEpoch{Millis(3000), Millis(5000), 0.3, 1.4});
  cfg.drain_epochs = 4;
  const ReplayResult res = ReplayStream(s, cfg);
  EXPECT_EQ(res.admits, res.final_partition.tasks.size() +
                            res.shed_outstanding + res.leaves);
  // Ladder bookkeeping balances: every restore had a shed/degrade.
  EXPECT_GE(res.overload.sheds, res.overload.shed_restores);
  EXPECT_GE(res.overload.degrades, res.overload.degrade_restores);
}

TEST(OverloadReplay, FaultedBatchesAreBitIdenticalForAnyJobCount) {
  StreamConfig scfg;
  scfg.num_admits = 40;
  scfg.leave_fraction = 0.5;
  scfg.soft_fraction = 0.5;
  std::vector<WorkloadStream> streams;
  for (std::uint64_t k = 0; k < 4; ++k) {
    scfg.seed = 1000 + k;
    streams.push_back(GenerateStream(scfg));
  }
  ReplayConfig cfg;
  cfg.controller.admission.num_cores = 2;
  cfg.validate_by_simulation = true;
  cfg.validate_sim.horizon = Millis(150);
  cfg.faults.spikes.push_back(
      SpikeEpoch{Millis(2000), Millis(4000), 0.5, 1.5});
  cfg.faults.storms.push_back(
      BurstStorm{Millis(6000), Millis(7000), 0.9});
  cfg.drain_epochs = 3;

  const std::vector<ReplayResult> serial = ReplayBatch(streams, cfg, 1);
  const std::vector<ReplayResult> pooled = ReplayBatch(streams, cfg, 8);
  ASSERT_EQ(serial.size(), pooled.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].epochs, pooled[i].epochs) << i;
    EXPECT_EQ(serial[i].admits, pooled[i].admits) << i;
    EXPECT_EQ(serial[i].rejects, pooled[i].rejects) << i;
    EXPECT_EQ(serial[i].leaves, pooled[i].leaves) << i;
    EXPECT_EQ(serial[i].churn, pooled[i].churn) << i;
    EXPECT_EQ(serial[i].overload, pooled[i].overload) << i;
    EXPECT_EQ(serial[i].shed_outstanding, pooled[i].shed_outstanding) << i;
    EXPECT_EQ(serial[i].final_partition.summary(),
              pooled[i].final_partition.summary())
        << i;
  }
}

}  // namespace
}  // namespace sps::online
