// Tests for the service-level observability layer (DESIGN.md §15):
// the wall-clock span profiler under an injected fake clock (report
// semantics + golden Perfetto slice document), the unified stats
// registry (delta / merge / export), the TraceBuffer streaming drain
// (prefix pop, strict watermark, chunk recycling), streaming-window
// trace export byte-identity against the full-buffer path across shard
// counts with the bounded-memory claim asserted, and differential
// profile-on/off replay identity (wall-clock must never leak into
// decisions or byte-compared artifacts).

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/perfetto.hpp"
#include "obs/registry.hpp"
#include "obs/spans.hpp"
#include "obs/trace_buffer.hpp"
#include "online/controller.hpp"
#include "online/workload_stream.hpp"
#include "overhead/model.hpp"
#include "partition/placement.hpp"
#include "partition/spa.hpp"
#include "rt/generator.hpp"
#include "sim/engine.hpp"

namespace sps::obs {
namespace {

// ---------------------------------------------------------------------------
// SpanProfiler under a fake clock
// ---------------------------------------------------------------------------

std::uint64_t g_fake_now = 0;
std::uint64_t FakeClock() { return g_fake_now; }

TEST(SpanProfiler, ScopedSpanRecordsWallDelta) {
  SpanProfiler prof(&FakeClock);
  g_fake_now = 100;
  {
    ScopedSpan span(&prof, SpanStage::kAnalysis);
    g_fake_now = 350;
  }
  const auto rows = prof.Report();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].stage, SpanStage::kAnalysis);
  EXPECT_EQ(rows[0].count, 1u);
  EXPECT_EQ(rows[0].total_ns, 250u);
}

TEST(SpanProfiler, NullProfilerIsANoOp) {
  // The profiling-off path: a null profiler must be droppable anywhere.
  ScopedSpan span(nullptr, SpanStage::kAdmitTotal);
  EXPECT_EQ(InstalledProfiler(), nullptr);
}

TEST(SpanProfiler, ReportQuantilesMatchLogHistogram) {
  SpanProfiler prof(&FakeClock);
  LogHistogram expect;
  for (int i = 0; i < 99; ++i) {
    prof.Record(SpanStage::kAdmitTotal, 0, 3);
    expect.Add(3);
  }
  prof.Record(SpanStage::kAdmitTotal, 0, 1000);
  expect.Add(1000);
  prof.Record(SpanStage::kLeave, 0, 7);

  const auto rows = prof.Report();
  ASSERT_EQ(rows.size(), 2u);  // zero-count stages omitted, enum order
  EXPECT_EQ(rows[0].stage, SpanStage::kAdmitTotal);
  EXPECT_EQ(rows[1].stage, SpanStage::kLeave);
  EXPECT_EQ(rows[0].count, 100u);
  EXPECT_EQ(rows[0].total_ns, 99u * 3u + 1000u);
  EXPECT_EQ(rows[0].p50, expect.Quantile(0.5));
  EXPECT_EQ(rows[0].p99, expect.Quantile(0.99));
  EXPECT_EQ(rows[0].p999, expect.Quantile(0.999));
  // StageHistogram returns the merged histogram itself.
  EXPECT_TRUE(prof.StageHistogram(SpanStage::kAdmitTotal) == expect);
  // Text / JSON reports carry the stage names.
  EXPECT_NE(prof.ToText().find("admit_total"), std::string::npos);
  EXPECT_NE(prof.ToJson().find("\"stage\":\"admit_total\""),
            std::string::npos);
}

TEST(SpanProfiler, InstallationIsScopedAndNests) {
  SpanProfiler outer(&FakeClock);
  SpanProfiler inner(&FakeClock);
  EXPECT_EQ(InstalledProfiler(), nullptr);
  {
    ProfilerInstallation a(&outer);
    EXPECT_EQ(InstalledProfiler(), &outer);
    {
      ProfilerInstallation b(&inner);
      EXPECT_EQ(InstalledProfiler(), &inner);
    }
    EXPECT_EQ(InstalledProfiler(), &outer);
  }
  EXPECT_EQ(InstalledProfiler(), nullptr);
}

TEST(SpanProfiler, GoldenPerfettoSliceDocumentUnderFakeClock) {
  SpanProfiler prof(&FakeClock);
  prof.set_collect_slices(true);
  prof.Record(SpanStage::kAnalysis, 1000, 2000);
  prof.Record(SpanStage::kUtilScreen, 500, 250);
  const std::string expected =
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":["
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
      "\"args\":{\"name\":\"sps wall profiler\"}},"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"wall\"}},"
      "{\"name\":\"util_screen\",\"cat\":\"wall\",\"ph\":\"X\","
      "\"ts\":0.5,\"dur\":0.25,\"pid\":1,\"tid\":0},"
      "{\"name\":\"analysis\",\"cat\":\"wall\",\"ph\":\"X\","
      "\"ts\":1,\"dur\":2,\"pid\":1,\"tid\":0}"
      "]}";
  EXPECT_EQ(prof.SlicesToPerfettoJson(), expected);
}

// ---------------------------------------------------------------------------
// StatsRegistry / StatsSnapshot
// ---------------------------------------------------------------------------

TEST(StatsRegistry, DeltaSubtractsCountersKeepsGauges) {
  StatsRegistry reg;
  reg.SetCounter("admit.accepted", 10);
  reg.SetGauge("resident.count", 4.0);
  LogHistogram h1;
  h1.Add(3);
  reg.SetHistogram("admit.latency", h1);
  const StatsSnapshot earlier = reg.TakeSnapshot();

  reg.SetCounter("admit.accepted", 17);
  reg.AddCounter("admit.rejected", 2);
  reg.SetGauge("resident.count", 9.0);
  LogHistogram h2 = h1;
  h2.Add(3);
  h2.Add(100);
  reg.SetHistogram("admit.latency", h2);

  const StatsSnapshot d = reg.snapshot().Delta(earlier);
  EXPECT_EQ(d.counters.at("admit.accepted"), 7u);
  EXPECT_EQ(d.counters.at("admit.rejected"), 2u);  // absent earlier
  EXPECT_EQ(d.gauges.at("resident.count"), 9.0);   // level, not rate
  EXPECT_EQ(d.hists.at("admit.latency").count(), 2u);

  // A counter that went backwards (restart) saturates at zero.
  StatsSnapshot later = reg.TakeSnapshot();
  later.counters["admit.accepted"] = 3;
  EXPECT_EQ(later.Delta(earlier).counters.at("admit.accepted"), 0u);
}

TEST(StatsRegistry, MergeSumsEverything) {
  StatsRegistry a, b;
  a.SetCounter("memo.hits", 5);
  a.SetGauge("resident.utilization", 1.5);
  b.SetCounter("memo.hits", 7);
  b.SetCounter("memo.misses", 1);
  b.SetGauge("resident.utilization", 0.5);
  LogHistogram h;
  h.Add(9);
  b.SetHistogram("admit.latency", h);

  StatsSnapshot merged = a.TakeSnapshot();
  merged.Merge(b.snapshot());
  EXPECT_EQ(merged.counters.at("memo.hits"), 12u);
  EXPECT_EQ(merged.counters.at("memo.misses"), 1u);
  EXPECT_EQ(merged.gauges.at("resident.utilization"), 2.0);
  EXPECT_EQ(merged.hists.at("admit.latency").count(), 1u);
}

TEST(StatsRegistry, ExportsAreDeterministicAndNameSorted) {
  StatsRegistry reg;
  reg.SetCounter("zeta", 1);
  reg.SetCounter("alpha", 2);
  reg.SetGauge("mid", 0.25);
  LogHistogram h;
  h.Add(3);
  reg.SetHistogram("lat", h);

  const std::string json = reg.snapshot().ToJson();
  const std::string expected_json =
      "{\"counters\":{\"alpha\":2,\"zeta\":1},"
      "\"gauges\":{\"mid\":0.25},"
      "\"hists\":{\"lat\":{\"count\":1,\"p50_ns\":4,\"p99_ns\":4,"
      "\"buckets\":[0,0,1]}}}";
  EXPECT_EQ(json, expected_json);

  const std::string csv = reg.snapshot().ToCsv();
  const std::string expected_csv =
      "name,kind,value\n"
      "alpha,counter,2\n"
      "zeta,counter,1\n"
      "mid,gauge,0.25\n"
      "lat.count,hist,1\n"
      "lat.p50_ns,hist,4\n"
      "lat.p99_ns,hist,4\n";
  EXPECT_EQ(csv, expected_csv);

  // Snapshots are values: equal content compares equal.
  EXPECT_TRUE(reg.TakeSnapshot() == reg.snapshot());
}

// ---------------------------------------------------------------------------
// TraceBuffer streaming drain
// ---------------------------------------------------------------------------

trace::Event Ev(Time t, unsigned core, trace::EventKind k) {
  trace::Event e;
  e.time = t;
  e.core = core;
  e.kind = k;
  return e;
}

TEST(TraceBufferDrain, DrainBelowPopsStrictPrefixOnly) {
  TraceBuffer b;
  for (std::uint64_t k = 0; k < 10; ++k) {
    b.Append(Stamp{k, 0, 0, 0}, Ev(static_cast<Time>(k), 0,
                                   trace::EventKind::kRelease));
  }
  std::vector<StampedEvent> out;
  b.DrainBelow(5, out);  // strictly below: key 5 must stay buffered
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(b.size(), 5u);
  for (std::uint64_t k = 0; k < 5; ++k) EXPECT_EQ(out[k].stamp.key, k);

  // Drains append to `out` and keep going from where they stopped.
  b.DrainBelow(kTimeNever, out);
  ASSERT_EQ(out.size(), 10u);
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(out[5].stamp.key, 5u);
  EXPECT_EQ(out[9].stamp.key, 9u);
}

TEST(TraceBufferDrain, SettlesSameKeyTiesByStamp) {
  TraceBuffer b;
  // Lane-local append order is key-monotone but may emit same-key
  // records out of (chain, ordinal) order; the drain sorts them.
  b.Append(Stamp{4, 2, 1, 0}, Ev(4, 2, trace::EventKind::kStart));
  b.Append(Stamp{4, 2, 0, 1}, Ev(4, 2, trace::EventKind::kPreempt));
  b.Append(Stamp{4, 2, 0, 0}, Ev(4, 2, trace::EventKind::kRelease));
  std::vector<StampedEvent> out;
  b.DrainBelow(5, out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].event.kind, trace::EventKind::kRelease);
  EXPECT_EQ(out[1].event.kind, trace::EventKind::kPreempt);
  EXPECT_EQ(out[2].event.kind, trace::EventKind::kStart);
}

TEST(TraceBufferDrain, InterleavedAppendDrainRecyclesChunks) {
  // Push far past one 512-event chunk while draining behind a moving
  // watermark: the buffer must stay small and lose nothing.
  TraceBuffer b;
  std::vector<StampedEvent> all;
  std::uint64_t next = 0;
  for (int round = 0; round < 40; ++round) {
    for (int i = 0; i < 100; ++i, ++next) {
      b.Append(Stamp{next, 0, 0, 0},
               Ev(static_cast<Time>(next), 0, trace::EventKind::kRelease));
    }
    b.DrainBelow(next >= 150 ? next - 150 : 0, all);
    EXPECT_LE(b.size(), 250u);
  }
  b.DrainBelow(kTimeNever, all);
  EXPECT_EQ(b.size(), 0u);
  ASSERT_EQ(all.size(), 4000u);
  for (std::uint64_t k = 0; k < all.size(); ++k) {
    EXPECT_EQ(all[k].stamp.key, k);
  }
  // A fully-drained buffer accepts fresh appends (tail-chunk reset).
  b.Append(Stamp{9999, 0, 0, 0}, Ev(9999, 0, trace::EventKind::kStart));
  EXPECT_EQ(b.size(), 1u);
  EXPECT_EQ(b.Sorted()[0].stamp.key, 9999u);
}

// ---------------------------------------------------------------------------
// Streaming-window trace export: byte identity + bounded memory
// ---------------------------------------------------------------------------

partition::Partition GeneratedSpa2Partition(unsigned cores,
                                            std::size_t tasks, double util,
                                            std::uint64_t seed) {
  rt::GeneratorConfig gen;
  gen.num_tasks = tasks;
  gen.total_utilization = util;
  rt::Rng rng(seed);
  const rt::TaskSet ts = rt::GenerateTaskSet(gen, rng);
  partition::SpaConfig scfg;
  scfg.num_cores = cores;
  scfg.preassign_heavy = true;
  const auto pr = partition::SpaPartition(ts, scfg);
  EXPECT_TRUE(pr.success);
  return pr.partition;
}

TEST(StreamingTrace, ByteIdenticalToFullBufferAcrossShardCounts) {
  const unsigned kCores = 4;
  const std::size_t kWindow = 512;
  const partition::Partition p = GeneratedSpa2Partition(kCores, 24, 3.4, 99);

  sim::SimConfig cfg;
  cfg.horizon = Millis(300);
  cfg.overheads = overhead::OverheadModel::PaperCoreI7();
  cfg.exec.kind = sim::ExecModel::Kind::kUniform;
  cfg.record_trace = true;

  PerfettoOptions opt;
  opt.num_cores = kCores;  // streaming cannot infer the track count

  // Reference: the canonical full-buffer trace (serial path).
  cfg.shards = 1;
  const sim::SimResult full = Simulate(p, cfg);
  ASSERT_GT(full.trace_events.size(), 2 * kWindow)
      << "workload too small to exercise streaming";
  const std::string full_doc = ToPerfettoJson(full.trace_events, opt);

  for (const unsigned shards : {1u, 2u, 0u}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    PerfettoStreamDrain drain(opt);
    sim::SimConfig scfg = cfg;
    scfg.shards = shards;
    scfg.trace_drain = &drain;
    scfg.trace_window = kWindow;
    const sim::SimResult r = Simulate(p, scfg);

    // Streaming mode hands every event to the drain instead.
    EXPECT_TRUE(r.trace_events.empty());
    EXPECT_EQ(drain.stats().events, full.trace_events.size());
    // The run actually streamed — multiple windows, not one final dump.
    EXPECT_GE(drain.stats().batches, 2u);
    // Bounded memory: peak live stamped records stay near the window
    // (the slack covers one dispatch's same-key emission burst per lane).
    EXPECT_LE(drain.stats().peak_resident, kWindow + 256);
    // And the document is byte-for-byte the full-buffer export.
    EXPECT_EQ(drain.document(), full_doc);

    // Decisions are untouched by streaming.
    EXPECT_EQ(r.total_misses, full.total_misses);
    EXPECT_EQ(r.summary(), full.summary());
  }
}

// ---------------------------------------------------------------------------
// Differential: profiling on/off replay identity
// ---------------------------------------------------------------------------

TEST(ProfiledReplay, DecisionsAndArtifactsIdenticalWithProfilerOn) {
  online::StreamConfig scfg;
  scfg.num_admits = 60;
  scfg.span = Millis(5000);
  scfg.seed = 41;
  const online::WorkloadStream stream = online::GenerateStream(scfg);

  online::ReplayConfig rcfg;
  rcfg.controller.admission.num_cores = 4;
  rcfg.controller.admission.model = overhead::OverheadModel::PaperCoreI7();
  rcfg.epoch = Millis(500);
  const online::ReplayResult plain = online::ReplayStream(stream, rcfg);

  SpanProfiler prof;  // real clock: only decisions are compared
  std::size_t epoch_hooks = 0;
  online::ReplayConfig pcfg = rcfg;
  pcfg.obs.profiler = &prof;
  pcfg.obs.on_epoch = [&epoch_hooks](std::size_t idx,
                                     const online::EpochStats&,
                                     const online::ReplayResult&) {
    EXPECT_EQ(idx, epoch_hooks);
    ++epoch_hooks;
  };
  const online::ReplayResult profiled = online::ReplayStream(stream, pcfg);

  // Wall-clock observation must not perturb a single decision: the
  // byte-compared artifacts (epoch table, final placement) are equal.
  EXPECT_EQ(plain.admits, profiled.admits);
  EXPECT_EQ(plain.rejects, profiled.rejects);
  EXPECT_EQ(plain.leaves, profiled.leaves);
  EXPECT_EQ(plain.Table(), profiled.Table());
  EXPECT_EQ(plain.final_partition.summary(),
            profiled.final_partition.summary());
  EXPECT_EQ(epoch_hooks, profiled.epochs.size());

  // The profiler saw the pipeline: every ADMIT/REJECT went through the
  // admit span (re-admission retries may add more), and the installed
  // profiler was uninstalled on the way out.
  EXPECT_GE(prof.StageHistogram(SpanStage::kAdmitTotal).count(),
            profiled.admits + profiled.rejects);
  EXPECT_GT(prof.StageHistogram(SpanStage::kUtilScreen).count(), 0u);
  EXPECT_EQ(InstalledProfiler(), nullptr);
}

TEST(ProfiledReplay, FillStatsRegistryMirrorsReplayResult) {
  online::StreamConfig scfg;
  scfg.num_admits = 40;
  scfg.span = Millis(4000);
  scfg.seed = 7;
  const online::WorkloadStream stream = online::GenerateStream(scfg);

  online::ReplayConfig rcfg;
  rcfg.controller.admission.num_cores = 4;
  rcfg.epoch = Millis(500);
  const online::ReplayResult res = online::ReplayStream(stream, rcfg);
  ASSERT_FALSE(res.epochs.empty());

  StatsRegistry reg;
  online::FillStatsRegistry(reg, res);
  const StatsSnapshot& s = reg.snapshot();
  EXPECT_EQ(s.counters.at("admit.accepted"), res.admits);
  EXPECT_EQ(s.counters.at("admit.rejected"), res.rejects);
  EXPECT_EQ(s.counters.at("admit.leaves"), res.leaves);
  EXPECT_EQ(s.counters.at("admit.full_tests"), res.admission.full_tests);
  EXPECT_EQ(s.counters.at("memo.hits"), res.admission.memo_hits);
  EXPECT_EQ(s.counters.at("churn.moved"), res.churn.moved);
  EXPECT_EQ(s.counters.at("epochs.closed"), res.epochs.size());
  EXPECT_EQ(s.gauges.at("resident.count"),
            static_cast<double>(res.epochs.back().resident));
  // The dump round-trips deterministically.
  EXPECT_EQ(s.ToJson(), reg.TakeSnapshot().ToJson());
}

// ---------------------------------------------------------------------------
// Counter-track splice edge cases (streaming writer vs one-shot)
// ---------------------------------------------------------------------------

TEST(Perfetto, CounterSpliceManySeriesOfUnequalLengths) {
  // The streaming writer buffers counter events separately and splices
  // them into the main array at Finish via JsonWriter::Raw — comma
  // placement has to survive any mix of series lengths, including an
  // EMPTY series sandwiched between non-empty ones.
  PerfettoOptions opt;
  opt.num_cores = 2;
  opt.extra_counters = {
      CounterSeries{"churn", {{Millis(1), 1.0}, {Millis(2), 2.0},
                              {Millis(3), 3.0}}},
      CounterSeries{"sheds", {{Millis(5), 1.0}}},
      CounterSeries{"empty track", {}},
      CounterSeries{"resident", {{Millis(1), 4.0}, {Millis(9), 5.0}}},
  };

  std::vector<trace::Event> events;
  trace::Event e;
  e.kind = trace::EventKind::kRelease;
  e.task = 1;
  e.time = Millis(1);
  events.push_back(e);
  e.kind = trace::EventKind::kStart;
  e.time = Millis(2);
  events.push_back(e);
  e.kind = trace::EventKind::kFinish;
  e.time = Millis(4);
  events.push_back(e);

  const std::string oneshot = ToPerfettoJson(events, opt);

  // Stream the same events in uneven batches; the document must come
  // out byte-identical (the two paths share one serializer).
  PerfettoStreamWriter w(opt);
  w.Append({events[0]});
  w.Append({});  // an empty batch must be harmless
  w.Append({events[1], events[2]});
  EXPECT_EQ(w.Finish(), oneshot);

  // All six points landed, as counter ("ph":"C") events.
  std::size_t counters = 0;
  const std::string needle = "\"ph\":\"C\"";
  for (std::size_t pos = oneshot.find(needle); pos != std::string::npos;
       pos = oneshot.find(needle, pos + 1)) {
    ++counters;
  }
  EXPECT_GE(counters, 6u);  // derived per-core tracks may add more
  EXPECT_NE(oneshot.find("\"name\":\"sheds\""), std::string::npos);
  EXPECT_NE(oneshot.find("\"name\":\"resident\""), std::string::npos);
  EXPECT_EQ(oneshot.find("\"name\":\"empty track\""), std::string::npos);
  EXPECT_EQ(std::count(oneshot.begin(), oneshot.end(), '{'),
            std::count(oneshot.begin(), oneshot.end(), '}'));
  EXPECT_EQ(std::count(oneshot.begin(), oneshot.end(), '['),
            std::count(oneshot.begin(), oneshot.end(), ']'));
}

TEST(Perfetto, ZeroEventStreamWriterEmitsValidDocument) {
  // A run that never produced a single event must still Finish into a
  // well-formed document: metadata only, no dangling comma from the
  // never-used event array.
  PerfettoOptions opt;
  opt.num_cores = 1;
  PerfettoStreamWriter w(opt);
  const std::string doc = w.Finish();
  EXPECT_EQ(doc,
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":["
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
            "\"args\":{\"name\":\"sps simulation\"}},"
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
            "\"args\":{\"name\":\"core 0\"}}]}");
  // And it is exactly what the one-shot path says about no events.
  EXPECT_EQ(doc, ToPerfettoJson({}, opt));
}

}  // namespace
}  // namespace sps::obs
