// The queue-concept conformance suite: ONE behavioural contract
// (containers/queue_traits.hpp), typed-tested against all four backend
// adapters — plus the differential simulations proving the contract is
// strong enough that whole scheduler runs are bit-identical across
// backends (the tentpole acceptance criterion).

#include "containers/queue_traits.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "overhead/model.hpp"
#include "partition/edf_wm.hpp"
#include "partition/placement.hpp"
#include "partition/spa.hpp"
#include "rt/generator.hpp"
#include "rt/task.hpp"
#include "sim/engine.hpp"
#include "sim/global_engine.hpp"
#include "trace/gantt.hpp"

namespace sps::containers {
namespace {

// ---------------------------------------------------------------------------
// Typed conformance suite
// ---------------------------------------------------------------------------

template <typename Q>
class QueueConcept : public ::testing::Test {};

using AllBackends =
    ::testing::Types<BinomialHeapQueue<std::uint64_t, int>,
                     PairingHeapQueue<std::uint64_t, int>,
                     RbTreeQueue<std::uint64_t, int>,
                     SortedVectorStableQueue<std::uint64_t, int>,
                     CalendarQueue<std::uint64_t, int>>;
TYPED_TEST_SUITE(QueueConcept, AllBackends);

// Compile-time: every backend models the concept, in both roles.
static_assert(ReadyQueueFor<BinomialHeapQueue<std::uint64_t, int>,
                            std::uint64_t, int>);
static_assert(ReadyQueueFor<PairingHeapQueue<std::uint64_t, int>,
                            std::uint64_t, int>);
static_assert(SleepQueueFor<RbTreeQueue<std::uint64_t, int>, std::uint64_t,
                            int>);
static_assert(SleepQueueFor<SortedVectorStableQueue<std::uint64_t, int>,
                            std::uint64_t, int>);
static_assert(ReadyQueueFor<CalendarQueue<std::uint64_t, int>,
                            std::uint64_t, int>);
static_assert(SleepQueueFor<CalendarQueue<std::uint64_t, int>,
                            std::uint64_t, int>);

TYPED_TEST(QueueConcept, StartsEmpty) {
  TypeParam q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_TRUE(q.validate());
  EXPECT_EQ(q.counters().total(), 0u);
}

TYPED_TEST(QueueConcept, PopMinDrainsInKeyOrder) {
  TypeParam q;
  for (std::uint64_t k : {5u, 2u, 9u, 1u, 7u, 3u, 8u}) {
    q.push(k, static_cast<int>(k) * 10);
  }
  EXPECT_EQ(q.min_key(), 1u);
  EXPECT_EQ(q.min_value(), 10);
  std::uint64_t last = 0;
  while (!q.empty()) {
    auto [k, v] = q.pop_min();
    EXPECT_GT(k, last);
    EXPECT_EQ(v, static_cast<int>(k) * 10);
    last = k;
    EXPECT_TRUE(q.validate());
  }
}

TYPED_TEST(QueueConcept, FifoAmongEqualKeys) {
  TypeParam q;
  // Interleave two key classes; each class must drain in insertion order.
  q.push(5, 1);
  q.push(3, 100);
  q.push(5, 2);
  q.push(3, 200);
  q.push(5, 3);
  EXPECT_EQ(q.pop_min().second, 100);
  EXPECT_EQ(q.pop_min().second, 200);
  EXPECT_EQ(q.pop_min().second, 1);
  EXPECT_EQ(q.pop_min().second, 2);
  EXPECT_EQ(q.pop_min().second, 3);
}

TYPED_TEST(QueueConcept, MinPeeksAgreeWithPop) {
  TypeParam q;
  std::mt19937_64 rng(7);
  for (int i = 0; i < 50; ++i) q.push(rng() % 100, i);
  while (!q.empty()) {
    const std::uint64_t k = q.min_key();
    const int v = q.min_value();
    auto [pk, pv] = q.pop_min();
    EXPECT_EQ(pk, k);
    EXPECT_EQ(pv, v);
  }
}

TYPED_TEST(QueueConcept, EraseByHandleKeepsOtherHandlesValid) {
  TypeParam q;
  std::vector<typename TypeParam::handle> handles;
  for (int i = 0; i < 32; ++i) {
    handles.push_back(q.push(static_cast<std::uint64_t>(i), i));
  }
  // Erase every third element THROUGH ITS HANDLE — the queue must keep
  // every other handle valid (this is what breaks naive positional
  // handles, and what the BinomialHeap relocation hooks exist for).
  for (int i = 0; i < 32; i += 3) {
    EXPECT_EQ(q.erase(handles[static_cast<std::size_t>(i)]), i);
    EXPECT_TRUE(q.validate());
  }
  // Erase a few of the survivors too, out of order.
  EXPECT_EQ(q.erase(handles[7]), 7);
  EXPECT_EQ(q.erase(handles[31]), 31);
  // The rest must drain in exact key order.
  std::vector<int> expected;
  for (int i = 0; i < 32; ++i) {
    if (i % 3 != 0 && i != 7 && i != 31) expected.push_back(i);
  }
  std::vector<int> drained;
  while (!q.empty()) drained.push_back(q.pop_min().second);
  EXPECT_EQ(drained, expected);
}

TYPED_TEST(QueueConcept, CountersTrackEveryOperation) {
  TypeParam q;
  q.push(1, 10);
  q.push(2, 20);
  auto h3 = q.push(3, 30);
  (void)q.pop_min();  // pops key 1; h3 stays valid
  (void)q.erase(h3);
  const QueueOpCounters& c = q.counters();
  EXPECT_EQ(c.pushes, 3u);
  EXPECT_EQ(c.pops, 1u);
  EXPECT_EQ(c.erases, 1u);
  EXPECT_EQ(c.total(), 5u);
}

TYPED_TEST(QueueConcept, RandomizedAgainstReferenceModel) {
  // Reference: a flat list of live (key, seq, value) records; expected
  // min = smallest (key, seq). Exercises push / pop_min / erase-by-handle
  // interleaved, checking values and structural validity throughout.
  struct Ref {
    std::uint64_t key;
    std::uint64_t seq;
    int value;
    typename TypeParam::handle h;
  };
  TypeParam q;
  std::vector<Ref> live;
  std::mt19937_64 rng(1234);
  std::uint64_t seq = 0;
  int next_value = 0;
  for (int step = 0; step < 2000; ++step) {
    const auto r = rng() % 10;
    if (r < 5 || live.empty()) {
      const std::uint64_t key = rng() % 50;
      const int v = next_value++;
      live.push_back(Ref{key, ++seq, v, q.push(key, v)});
    } else if (r < 8) {
      std::size_t best = 0;
      for (std::size_t i = 1; i < live.size(); ++i) {
        if (live[i].key < live[best].key ||
            (live[i].key == live[best].key &&
             live[i].seq < live[best].seq)) {
          best = i;
        }
      }
      EXPECT_EQ(q.min_key(), live[best].key);
      auto [k, v] = q.pop_min();
      EXPECT_EQ(k, live[best].key);
      EXPECT_EQ(v, live[best].value);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(best));
    } else {
      const std::size_t victim = rng() % live.size();
      EXPECT_EQ(q.erase(live[victim].h), live[victim].value);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
    }
    ASSERT_TRUE(q.validate());
    ASSERT_EQ(q.size(), live.size());
  }
}

TEST(QueueBackendEnum, ParseRoundTrips) {
  for (QueueBackend b : kAllQueueBackends) {
    QueueBackend out;
    EXPECT_TRUE(ParseQueueBackend(to_string(b), out));
    EXPECT_EQ(out, b);
  }
  QueueBackend out = QueueBackend::kRbTree;
  EXPECT_FALSE(ParseQueueBackend("std::map", out));
  EXPECT_EQ(out, QueueBackend::kRbTree);  // untouched on failure
}

}  // namespace
}  // namespace sps::containers

// ---------------------------------------------------------------------------
// Differential simulations: identical SimResult across queue backends
// ---------------------------------------------------------------------------

namespace sps::sim {
namespace {

using containers::QueueBackend;
using containers::kAllQueueBackends;
using partition::kNormalPriorityBase;
using rt::MakeTask;

void ExpectSameResult(const SimResult& a, const SimResult& b,
                      const std::string& what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(a.total_misses, b.total_misses);
  EXPECT_EQ(a.total_migrations, b.total_migrations);
  EXPECT_EQ(a.total_preemptions, b.total_preemptions);
  EXPECT_EQ(a.simulated, b.simulated);
  // The operation SEQUENCE is policy-determined, so even the op counters
  // must agree backend-to-backend — including the kernel's event queue.
  EXPECT_EQ(a.ready_ops, b.ready_ops);
  EXPECT_EQ(a.sleep_ops, b.sleep_ops);
  EXPECT_EQ(a.event_ops, b.event_ops);
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    SCOPED_TRACE("task " + std::to_string(i));
    EXPECT_EQ(a.tasks[i].released, b.tasks[i].released);
    EXPECT_EQ(a.tasks[i].completed, b.tasks[i].completed);
    EXPECT_EQ(a.tasks[i].deadline_misses, b.tasks[i].deadline_misses);
    EXPECT_EQ(a.tasks[i].shed, b.tasks[i].shed);
    EXPECT_EQ(a.tasks[i].preemptions, b.tasks[i].preemptions);
    EXPECT_EQ(a.tasks[i].migrations, b.tasks[i].migrations);
    EXPECT_EQ(a.tasks[i].max_response, b.tasks[i].max_response);
    EXPECT_DOUBLE_EQ(a.tasks[i].avg_response, b.tasks[i].avg_response);
  }
  ASSERT_EQ(a.cores.size(), b.cores.size());
  for (std::size_t c = 0; c < a.cores.size(); ++c) {
    SCOPED_TRACE("core " + std::to_string(c));
    EXPECT_EQ(a.cores[c].busy_exec, b.cores[c].busy_exec);
    EXPECT_EQ(a.cores[c].overhead_rls, b.cores[c].overhead_rls);
    EXPECT_EQ(a.cores[c].overhead_sch, b.cores[c].overhead_sch);
    EXPECT_EQ(a.cores[c].overhead_cnt1, b.cores[c].overhead_cnt1);
    EXPECT_EQ(a.cores[c].overhead_cnt2, b.cores[c].overhead_cnt2);
    EXPECT_EQ(a.cores[c].cpmd_charged, b.cores[c].cpmd_charged);
    EXPECT_EQ(a.cores[c].context_switches, b.cores[c].context_switches);
  }
}

/// A 2-core partition with preemptions, a split (migrating) task, and
/// equal-priority FIFO contention — every queue code path the engine has.
partition::Partition DifferentialPartition() {
  partition::Partition p;
  p.num_cores = 2;
  {
    partition::PlacedTask split;  // elevated split task over both cores
    split.task = MakeTask(0, Millis(4), Millis(10));
    split.parts = {{0, Millis(2), 0}, {1, Millis(2), 0}};
    p.tasks.push_back(split);
  }
  auto normal = [](rt::TaskId id, Time c, Time t, partition::CoreId core,
                   rt::Priority prio) {
    partition::PlacedTask pt;
    pt.task = MakeTask(id, c, t);
    pt.parts = {{core, c, prio + kNormalPriorityBase}};
    return pt;
  };
  p.tasks.push_back(normal(1, Millis(3), Millis(15), 0, 1));
  p.tasks.push_back(normal(2, Millis(5), Millis(40), 0, 2));
  p.tasks.push_back(normal(3, Millis(2), Millis(12), 1, 1));
  p.tasks.push_back(normal(4, Millis(6), Millis(35), 1, 2));
  return p;
}

TEST(DifferentialSim, PartitionedIdenticalAcrossReadyBackends) {
  const partition::Partition p = DifferentialPartition();
  SimConfig cfg;
  cfg.horizon = Millis(500);
  cfg.overheads = overhead::OverheadModel::Zero();
  cfg.ready_backend = QueueBackend::kBinomialHeap;
  const SimResult baseline = Simulate(p, cfg);
  EXPECT_GT(baseline.total_migrations, 0u);  // the split task migrates
  EXPECT_GT(baseline.ready_ops.total(), 0u);
  for (QueueBackend b : kAllQueueBackends) {
    cfg.ready_backend = b;
    ExpectSameResult(baseline, Simulate(p, cfg),
                     std::string("ready=") +
                         std::string(containers::to_string(b)));
  }
}

TEST(DifferentialSim, PartitionedIdenticalAcrossSleepBackends) {
  const partition::Partition p = DifferentialPartition();
  SimConfig cfg;
  cfg.horizon = Millis(500);
  cfg.overheads = overhead::OverheadModel::Zero();
  const SimResult baseline = Simulate(p, cfg);
  for (QueueBackend b : kAllQueueBackends) {
    cfg.sleep_backend = b;
    ExpectSameResult(baseline, Simulate(p, cfg),
                     std::string("sleep=") +
                         std::string(containers::to_string(b)));
  }
}

TEST(DifferentialSim, PartitionedIdenticalWithOverheadsAndSporadics) {
  // Stronger than the acceptance criterion: overhead charging is
  // model-based (costs don't depend on the container), so results stay
  // identical even with the paper's overheads and sporadic arrivals.
  const partition::Partition p = DifferentialPartition();
  SimConfig cfg;
  cfg.horizon = Millis(400);
  cfg.overheads = overhead::OverheadModel::PaperCoreI7();
  cfg.arrivals.kind = ArrivalModel::Kind::kSporadicUniformDelay;
  cfg.exec.kind = ExecModel::Kind::kUniform;
  const SimResult baseline = Simulate(p, cfg);
  for (QueueBackend rb : kAllQueueBackends) {
    for (QueueBackend sb : kAllQueueBackends) {
      cfg.ready_backend = rb;
      cfg.sleep_backend = sb;
      ExpectSameResult(baseline, Simulate(p, cfg),
                       std::string("ready=") +
                           std::string(containers::to_string(rb)) +
                           " sleep=" +
                           std::string(containers::to_string(sb)));
    }
  }
}

TEST(DifferentialSim, GeneratedWorkloadIdenticalAcrossBackends) {
  // A bigger, generator-produced workload through a real partitioner —
  // whatever structure SPA2 emits must stay backend-invariant too.
  rt::GeneratorConfig gen;
  gen.num_tasks = 20;
  gen.total_utilization = 3.4;
  rt::Rng rng(99);
  const rt::TaskSet ts = rt::GenerateTaskSet(gen, rng);
  partition::SpaConfig scfg;
  scfg.num_cores = 4;
  scfg.preassign_heavy = true;
  const auto pr = partition::SpaPartition(ts, scfg);
  ASSERT_TRUE(pr.success);

  SimConfig cfg;
  cfg.horizon = Millis(300);
  cfg.overheads = overhead::OverheadModel::Zero();
  const SimResult baseline = Simulate(pr.partition, cfg);
  for (QueueBackend b : kAllQueueBackends) {
    cfg.ready_backend = b;
    cfg.sleep_backend = b;
    ExpectSameResult(baseline, Simulate(pr.partition, cfg),
                     std::string("both=") +
                         std::string(containers::to_string(b)));
  }
}

TEST(DifferentialSim, PartitionedIdenticalAcrossEventBackends) {
  // The kernel's EVENT queue is the third policy slot: every backend
  // must produce the same simulation, overheads and sporadics included.
  const partition::Partition p = DifferentialPartition();
  SimConfig cfg;
  cfg.horizon = Millis(400);
  cfg.overheads = overhead::OverheadModel::PaperCoreI7();
  cfg.arrivals.kind = ArrivalModel::Kind::kSporadicUniformDelay;
  const SimResult baseline = Simulate(p, cfg);
  EXPECT_GT(baseline.event_ops.total(), 0u);
  for (QueueBackend b : kAllQueueBackends) {
    cfg.event_backend = b;
    ExpectSameResult(baseline, Simulate(p, cfg),
                     std::string("event=") +
                         std::string(containers::to_string(b)));
  }
}

TEST(DifferentialSim, IdenticalAcrossEventBackendsUnderJitterAndBursts) {
  // The scenario-diversity arrival models go through the same kernel
  // sampling path — backend invariance must hold there too.
  const partition::Partition p = DifferentialPartition();
  for (const ArrivalModel::Kind kind :
       {ArrivalModel::Kind::kJittered, ArrivalModel::Kind::kBursty}) {
    SimConfig cfg;
    cfg.horizon = Millis(300);
    cfg.arrivals.kind = kind;
    const SimResult baseline = Simulate(p, cfg);
    EXPECT_GT(baseline.tasks.at(0).released, 1u);
    for (QueueBackend b : kAllQueueBackends) {
      cfg.event_backend = b;
      cfg.ready_backend = b;
      ExpectSameResult(baseline, Simulate(p, cfg),
                       std::string("arrivals+event=") +
                           std::string(containers::to_string(b)));
    }
  }
}

// ---------------------------------------------------------------------------
// Sharded-vs-serial differentials: the per-core parallel runner
// (SimConfig::shards, DESIGN.md §9) is bit-identical to the classic
// serial event loop — per backend, per arrival model, with overheads
// and random execution times, for FP and EDF(-WM) partitions alike.
// ---------------------------------------------------------------------------

TEST(ShardedSim, IdenticalToSerialAcrossBackendsAndArrivals) {
  const partition::Partition p = DifferentialPartition();
  for (const ArrivalModel::Kind kind :
       {ArrivalModel::Kind::kPeriodic,
        ArrivalModel::Kind::kSporadicUniformDelay,
        ArrivalModel::Kind::kJittered, ArrivalModel::Kind::kBursty}) {
    for (QueueBackend b : kAllQueueBackends) {
      SimConfig cfg;
      cfg.horizon = Millis(300);
      cfg.overheads = overhead::OverheadModel::PaperCoreI7();
      cfg.exec.kind = ExecModel::Kind::kUniform;
      cfg.arrivals.kind = kind;
      cfg.ready_backend = b;
      cfg.sleep_backend = b;
      cfg.event_backend = b;
      cfg.shards = 1;
      const SimResult serial = Simulate(p, cfg);
      EXPECT_GT(serial.total_migrations, 0u);
      for (const unsigned shards : {2u, 0u}) {
        cfg.shards = shards;
        ExpectSameResult(
            serial, Simulate(p, cfg),
            std::string("sharded backend=") +
                std::string(containers::to_string(b)) + " arrivals=" +
                std::to_string(static_cast<int>(kind)) + " shards=" +
                std::to_string(shards));
      }
    }
  }
}

TEST(ShardedSim, IdenticalToSerialOnGeneratedSpa2Workload) {
  // A generator-produced 4-core SPA2 partition — whatever split
  // structure SPA2 emits, the sharded run must reproduce the serial one
  // exactly, devirtualized default backends included.
  rt::GeneratorConfig gen;
  gen.num_tasks = 24;
  gen.total_utilization = 3.4;
  rt::Rng rng(2024);
  const rt::TaskSet ts = rt::GenerateTaskSet(gen, rng);
  partition::SpaConfig scfg;
  scfg.num_cores = 4;
  scfg.preassign_heavy = true;
  const auto pr = partition::SpaPartition(ts, scfg);
  ASSERT_TRUE(pr.success);

  SimConfig cfg;
  cfg.horizon = Millis(400);
  cfg.overheads = overhead::OverheadModel::PaperCoreI7();
  cfg.exec.kind = ExecModel::Kind::kUniform;
  cfg.arrivals.kind = ArrivalModel::Kind::kSporadicUniformDelay;
  const SimResult serial = Simulate(pr.partition, cfg);
  cfg.shards = 0;
  ExpectSameResult(serial, Simulate(pr.partition, cfg),
                   "sharded generated SPA2");
}

TEST(ShardedSim, IdenticalToSerialUnderEdfWmWindows) {
  // EDF-WM split windows are THE cross-core coupling the window-barrier
  // protocol exists for; jittered arrivals stress the shed/overrun
  // paths on top.
  rt::GeneratorConfig gen;
  gen.num_tasks = 16;
  gen.total_utilization = 3.2;
  rt::Rng rng(77);
  const rt::TaskSet ts = rt::GenerateTaskSet(gen, rng);
  partition::EdfPartitionConfig ecfg;
  ecfg.num_cores = 4;
  const auto pr = partition::EdfWm(ts, ecfg);
  ASSERT_TRUE(pr.success) << pr.failure_reason;

  SimConfig cfg;
  cfg.horizon = Millis(400);
  cfg.overheads = overhead::OverheadModel::PaperCoreI7();
  cfg.arrivals.kind = ArrivalModel::Kind::kJittered;
  const SimResult serial = Simulate(pr.partition, cfg);
  for (const unsigned shards : {2u, 0u}) {
    SimConfig scfg2 = cfg;
    scfg2.shards = shards;
    ExpectSameResult(serial, Simulate(pr.partition, scfg2),
                     "sharded EDF-WM shards=" + std::to_string(shards));
  }
}

// ---------------------------------------------------------------------------
// Observability differentials (DESIGN.md §10): traced/metered sharded
// runs must produce BYTE-IDENTICAL canonical traces and identical
// metrics to the serial loop, for every shard count, backend, and
// arrival model. These run under TSan in CI together with the other
// ShardedSim suites.
// ---------------------------------------------------------------------------

partition::PlacedTask NormalOn(rt::TaskId id, Time c, Time t,
                               partition::CoreId core, rt::Priority prio) {
  partition::PlacedTask pt;
  pt.task = MakeTask(id, c, t);
  pt.parts = {{core, c, prio + kNormalPriorityBase}};
  return pt;
}

TEST(ShardedSim, TracedByteIdenticalAcrossShardCountsBackendsAndArrivals) {
  const partition::Partition p = DifferentialPartition();
  for (const ArrivalModel::Kind kind :
       {ArrivalModel::Kind::kPeriodic,
        ArrivalModel::Kind::kSporadicUniformDelay,
        ArrivalModel::Kind::kJittered, ArrivalModel::Kind::kBursty}) {
    for (QueueBackend b : kAllQueueBackends) {
      SimConfig cfg;
      cfg.horizon = Millis(250);
      cfg.overheads = overhead::OverheadModel::PaperCoreI7();
      cfg.exec.kind = ExecModel::Kind::kUniform;
      cfg.arrivals.kind = kind;
      cfg.ready_backend = b;
      cfg.sleep_backend = b;
      cfg.event_backend = b;
      cfg.record_trace = true;
      cfg.record_metrics = true;
      cfg.shards = 1;
      const SimResult serial = Simulate(p, cfg);
      ASSERT_FALSE(serial.trace_events.empty());
      const std::string serial_bytes = trace::ToCsv(serial.trace_events);
      for (const unsigned shards : {2u, 3u, 0u}) {
        cfg.shards = shards;
        const SimResult sharded = Simulate(p, cfg);
        const std::string what =
            std::string("traced backend=") +
            std::string(containers::to_string(b)) + " arrivals=" +
            std::to_string(static_cast<int>(kind)) + " shards=" +
            std::to_string(shards);
        ExpectSameResult(serial, sharded, what);
        // The acceptance criterion, literally: byte-identical traces.
        EXPECT_EQ(serial_bytes, trace::ToCsv(sharded.trace_events)) << what;
        EXPECT_TRUE(serial.metrics == sharded.metrics) << what;
      }
    }
  }
}

TEST(ShardedSim, TracedByteIdenticalOnGeneratedSpa2Workload) {
  // Bigger generated workload: whatever split structure SPA2 emits, the
  // merged sharded trace must reproduce the serial bytes.
  rt::GeneratorConfig gen;
  gen.num_tasks = 24;
  gen.total_utilization = 3.4;
  rt::Rng rng(2024);
  const rt::TaskSet ts = rt::GenerateTaskSet(gen, rng);
  partition::SpaConfig scfg;
  scfg.num_cores = 4;
  scfg.preassign_heavy = true;
  const auto pr = partition::SpaPartition(ts, scfg);
  ASSERT_TRUE(pr.success);

  SimConfig cfg;
  cfg.horizon = Millis(300);
  cfg.overheads = overhead::OverheadModel::PaperCoreI7();
  cfg.exec.kind = ExecModel::Kind::kUniform;
  cfg.arrivals.kind = ArrivalModel::Kind::kSporadicUniformDelay;
  cfg.record_trace = true;
  cfg.record_metrics = true;
  const SimResult serial = Simulate(pr.partition, cfg);
  cfg.shards = 0;
  const SimResult sharded = Simulate(pr.partition, cfg);
  ExpectSameResult(serial, sharded, "traced generated SPA2");
  EXPECT_EQ(trace::ToCsv(serial.trace_events),
            trace::ToCsv(sharded.trace_events));
  EXPECT_TRUE(serial.metrics == sharded.metrics);
}

TEST(ShardedSim, LegacyRecorderStillFilledUnderSharding) {
  // The recorder-pointer API remains a thin alias for record_trace.
  const partition::Partition p = DifferentialPartition();
  SimConfig cfg;
  cfg.horizon = Millis(100);
  const SimResult plain = Simulate(p, cfg);
  cfg.shards = 4;
  trace::Recorder rec(true);
  const SimResult traced = Simulate(p, cfg, &rec);
  ExpectSameResult(plain, traced, "recorder alias");
  EXPECT_FALSE(rec.events().empty());
  EXPECT_EQ(rec.events().size(), traced.trace_events.size());
}

TEST(ShardedSim, StopOnFirstMissMatchesSerialHaltExactly) {
  // An overloaded 2-core partition: core 0 misses. The sharded run
  // detects the miss at a drain barrier, abandons the attempt, and
  // reruns serially — so the result (including the halt instant and
  // the recorded trace) is the serial one, bit for bit.
  partition::Partition p;
  p.num_cores = 2;
  p.tasks.push_back(NormalOn(0, Millis(6), Millis(10), 0, 1));
  p.tasks.push_back(NormalOn(1, Millis(6), Millis(10), 0, 2));
  p.tasks.push_back(NormalOn(2, Millis(2), Millis(10), 1, 1));
  {
    partition::PlacedTask split;  // cross-core coupling for good measure
    split.task = MakeTask(3, Millis(4), Millis(12));
    split.parts = {{1, Millis(2), 0}, {0, Millis(2), 0}};
    p.tasks.push_back(split);
  }
  SimConfig cfg;
  cfg.horizon = Millis(1000);
  cfg.overheads = overhead::OverheadModel::PaperCoreI7();
  cfg.stop_on_first_miss = true;
  cfg.record_trace = true;
  const SimResult serial = Simulate(p, cfg);
  EXPECT_GT(serial.total_misses, 0u);
  EXPECT_LT(serial.simulated, Millis(1000));  // halted early
  for (const unsigned shards : {2u, 0u}) {
    cfg.shards = shards;
    const SimResult sharded = Simulate(p, cfg);
    ExpectSameResult(serial, sharded,
                     "stop-on-first-miss shards=" + std::to_string(shards));
    EXPECT_EQ(trace::ToCsv(serial.trace_events),
              trace::ToCsv(sharded.trace_events));
  }
}

TEST(ShardedSim, StopOnFirstMissWithoutMissStaysSharded) {
  // A feasible set under stop_on_first_miss must still return the
  // shard-identical result (the optimistic path never falls back).
  const partition::Partition p = DifferentialPartition();
  SimConfig cfg;
  cfg.horizon = Millis(300);
  const SimResult serial = Simulate(p, cfg);
  EXPECT_EQ(serial.total_misses, 0u);
  cfg.stop_on_first_miss = true;
  cfg.shards = 0;
  ExpectSameResult(serial, Simulate(p, cfg), "no-miss stop flag");
}

TEST(ShardedSim, WideEdfTieBreakShardsBeyond1024Tasks) {
  // PR-4 satellite: the EDF CurKey tie-break is 16 bits wide, so sets
  // past the old 1024-task limit shard (and stay bit-identical) instead
  // of silently running serial. Heavy same-period aliasing makes the
  // equal-deadline tie-break do real work, and a few split tasks keep
  // the cross-lane protocol engaged.
  partition::Partition p;
  p.num_cores = 8;
  p.policy = partition::SchedPolicy::kEdf;
  const std::size_t n = 1200;  // > 1024
  for (std::size_t i = 0; i < n; ++i) {
    partition::PlacedTask pt;
    // Two period classes only -> massive deadline ties at every grid
    // point; tiny WCETs keep each core feasible-ish.
    const Time period = (i % 2 == 0) ? Millis(20) : Millis(40);
    pt.task = MakeTask(static_cast<rt::TaskId>(i), Micros(40), period);
    pt.parts = {{static_cast<partition::CoreId>(i % 8), Micros(40), 0}};
    p.tasks.push_back(pt);
  }
  for (std::size_t s = 0; s < 4; ++s) {  // split tasks across lane pairs
    partition::PlacedTask pt;
    pt.task = MakeTask(static_cast<rt::TaskId>(n + s), Millis(2),
                       Millis(25));
    pt.parts = {
        {static_cast<partition::CoreId>(2 * s), Millis(1), 0, Millis(12)},
        {static_cast<partition::CoreId>(2 * s + 1), Millis(1), 0,
         Millis(25)}};
    p.tasks.push_back(pt);
  }
  SimConfig cfg;
  cfg.horizon = Millis(120);
  cfg.overheads = overhead::OverheadModel::PaperCoreI7();
  const SimResult serial = Simulate(p, cfg);
  EXPECT_GT(serial.total_migrations, 0u);
  for (const unsigned shards : {2u, 0u}) {
    cfg.shards = shards;
    ExpectSameResult(serial, Simulate(p, cfg),
                     "wide EDF shards=" + std::to_string(shards));
  }
}

TEST(DifferentialSim, GlobalIdenticalAcrossBackends) {
  rt::TaskSet ts;
  // Dhall-style contention: m tiny tasks + one heavy task on m cores.
  ts.add(MakeTask(0, Millis(1), Millis(10)));
  ts.add(MakeTask(1, Millis(1), Millis(10)));
  ts.add(MakeTask(2, Millis(1), Millis(10)));
  ts.add(MakeTask(3, Millis(8), Millis(11)));
  rt::AssignRateMonotonic(ts);
  for (GlobalPolicy pol : {GlobalPolicy::kGlobalRm, GlobalPolicy::kGlobalEdf}) {
    GlobalSimConfig cfg;
    cfg.num_cores = 3;
    cfg.horizon = Millis(300);
    cfg.policy = pol;
    cfg.overheads = overhead::OverheadModel::Zero();
    const SimResult baseline = SimulateGlobal(ts, cfg);
    for (QueueBackend b : kAllQueueBackends) {
      cfg.ready_backend = b;
      cfg.sleep_backend = b;
      ExpectSameResult(baseline, SimulateGlobal(ts, cfg),
                       std::string("global both=") +
                           std::string(containers::to_string(b)));
    }
  }
}

}  // namespace
}  // namespace sps::sim
