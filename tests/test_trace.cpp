// Tests for the trace module: recorder behaviour, event formatting, and
// the Gantt renderer on hand-built event streams.

#include <gtest/gtest.h>

#include <algorithm>

#include "trace/gantt.hpp"
#include "trace/trace.hpp"

namespace sps::trace {
namespace {

Event Ev(Time t, unsigned core, EventKind k, rt::TaskId task,
         OverheadKind ovh = OverheadKind::kNone, Time dur = 0) {
  Event e;
  e.time = t;
  e.core = core;
  e.kind = k;
  e.task = task;
  e.overhead = ovh;
  e.duration = dur;
  return e;
}

TEST(Recorder, DisabledRecorderDropsEvents) {
  Recorder r(false);
  r.record(Ev(0, 0, EventKind::kStart, 1));
  EXPECT_TRUE(r.events().empty());
  EXPECT_FALSE(r.enabled());
}

TEST(Recorder, EnabledRecorderKeepsOrder) {
  Recorder r;
  r.record(Ev(10, 0, EventKind::kRelease, 1));
  r.record(Ev(20, 0, EventKind::kStart, 1));
  ASSERT_EQ(r.events().size(), 2u);
  EXPECT_EQ(r.events()[0].kind, EventKind::kRelease);
  r.clear();
  EXPECT_TRUE(r.events().empty());
}

TEST(Format, EventStringsContainKeyFields) {
  const std::string s =
      FormatEvent(Ev(Millis(12.5), 1, EventKind::kMigrateIn, 3));
  EXPECT_NE(s.find("core1"), std::string::npos);
  EXPECT_NE(s.find("MIGRATE_IN"), std::string::npos);
  EXPECT_NE(s.find("tau3"), std::string::npos);

  const std::string o = FormatEvent(
      Ev(Millis(1), 0, EventKind::kOverheadBegin, 2, OverheadKind::kRls,
         Micros(7.8)));
  EXPECT_NE(o.find("rls"), std::string::npos);
  EXPECT_NE(o.find("7.8"), std::string::npos);
}

TEST(Format, AllKindsHaveNames) {
  for (int k = 0; k <= static_cast<int>(EventKind::kIdle); ++k) {
    EXPECT_STRNE(ToString(static_cast<EventKind>(k)), "?");
  }
  for (int k = 0; k <= static_cast<int>(OverheadKind::kCache); ++k) {
    EXPECT_STRNE(ToString(static_cast<OverheadKind>(k)), "?");
  }
}

TEST(Gantt, PaintsRunSegmentsAndOverheads) {
  std::vector<Event> ev;
  ev.push_back(Ev(0, 0, EventKind::kStart, 1));
  ev.push_back(Ev(Millis(5), 0, EventKind::kPreempt, 1));
  ev.push_back(Ev(Millis(5), 0, EventKind::kOverheadBegin, 2,
                  OverheadKind::kSch, Millis(1)));
  ev.push_back(Ev(Millis(6), 0, EventKind::kStart, 2));
  ev.push_back(Ev(Millis(10), 0, EventKind::kFinish, 2));
  GanttOptions opt;
  opt.columns = 20;
  opt.end = Millis(10);
  const std::string g = RenderGantt(ev, opt);
  EXPECT_NE(g.find('1'), std::string::npos);
  EXPECT_NE(g.find('2'), std::string::npos);
  EXPECT_NE(g.find('#'), std::string::npos);
  EXPECT_NE(g.find("core0"), std::string::npos);
}

TEST(Gantt, EmptyTraceHandled) {
  EXPECT_EQ(RenderGantt({}, {}), "(empty trace)\n");
}

TEST(Csv, ExportsHeaderAndRows) {
  std::vector<Event> ev = {
      Ev(Millis(1), 0, EventKind::kStart, 3),
      Ev(Millis(2), 1, EventKind::kOverheadBegin, 3, OverheadKind::kRls,
         Micros(7.8))};
  const std::string csv = ToCsv(ev);
  EXPECT_NE(csv.find("time_ns,core,kind,overhead,task,job,duration_ns"),
            std::string::npos);
  EXPECT_NE(csv.find("1000000,0,START,-,3,0,0"), std::string::npos);
  EXPECT_NE(csv.find("2000000,1,OVH_BEGIN,rls,3,0,7800"),
            std::string::npos);
  // One header + one line per event.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
}

TEST(Gantt, EventLogFiltersWindow) {
  std::vector<Event> ev = {Ev(Millis(1), 0, EventKind::kStart, 1),
                           Ev(Millis(5), 0, EventKind::kFinish, 1),
                           Ev(Millis(9), 0, EventKind::kStart, 2)};
  const std::string log = RenderEventLog(ev, Millis(2), Millis(8));
  EXPECT_EQ(log.find("START"), log.rfind("START"));  // only one START
  EXPECT_NE(log.find("FINISH"), std::string::npos);
}

}  // namespace
}  // namespace sps::trace
