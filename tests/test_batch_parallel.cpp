// The threading/determinism contract of the batch harness (DESIGN.md
// §8): the thread pool distributes but never reorders observable
// results, exceptions drain instead of abandoning workers, and every
// experiment driver built on the pool is bit-identical for any job
// count — the serial run is the specification of the parallel one.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "exp/acceptance.hpp"
#include "overhead/model.hpp"
#include "partition/spa.hpp"
#include "rt/generator.hpp"
#include "sim/batch.hpp"
#include "util/thread_pool.hpp"

namespace sps {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  util::ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  constexpr std::size_t kN = 10'000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ReusableAcrossBatches) {
  util::ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::uint64_t> sum{0};
    pool.ParallelFor(100, [&](std::size_t i) {
      sum += static_cast<std::uint64_t>(i);
    });
    EXPECT_EQ(sum.load(), 4950u);
  }
}

TEST(ThreadPool, DrainsUnderExceptions) {
  // A throwing body must not abandon the batch: every other index still
  // runs, and the first exception is rethrown on the caller.
  util::ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::atomic<std::size_t> ran{0};
  EXPECT_THROW(
      pool.ParallelFor(kN,
                       [&](std::size_t i) {
                         ++ran;
                         if (i % 100 == 7) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  EXPECT_EQ(ran.load(), kN);  // the pool drained
  // ... and the pool is still serviceable afterwards.
  std::atomic<std::size_t> again{0};
  pool.ParallelFor(64, [&](std::size_t) { ++again; });
  EXPECT_EQ(again.load(), 64u);
}

TEST(ThreadPool, SubmitReturnsFutures) {
  util::ThreadPool pool(2);
  auto a = pool.Submit([] { return 21 * 2; });
  auto b = pool.Submit([] { return std::string("ok"); });
  EXPECT_EQ(a.get(), 42);
  EXPECT_EQ(b.get(), "ok");
  auto boom = pool.Submit([]() -> int { throw std::logic_error("x"); });
  EXPECT_THROW(boom.get(), std::logic_error);
}

TEST(ThreadPool, FreeFunctionSerialAndZeroJobs) {
  // jobs=1 must run inline; jobs=0 sizes from the hardware.
  std::vector<int> order;
  util::ParallelFor(1, 5, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));  // unsynchronized: inline only
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  std::atomic<int> n{0};
  util::ParallelFor(0, 100, [&](std::size_t) { ++n; });
  EXPECT_EQ(n.load(), 100);
}

// ---------------------------------------------------------------------------
// Seed derivation
// ---------------------------------------------------------------------------

TEST(DeriveSeed, CoordinatesDecorrelate) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t p = 0; p < 20; ++p) {
    for (std::uint64_t s = 0; s < 50; ++s) {
      seen.insert(sim::DeriveSeed(123, p, s));
    }
  }
  EXPECT_EQ(seen.size(), 1000u);  // no collisions on a realistic grid
  // Pure function of its inputs, sensitive to each.
  EXPECT_EQ(sim::DeriveSeed(1, 2, 3), sim::DeriveSeed(1, 2, 3));
  EXPECT_NE(sim::DeriveSeed(1, 2, 3), sim::DeriveSeed(2, 2, 3));
  EXPECT_NE(sim::DeriveSeed(1, 2, 3), sim::DeriveSeed(1, 3, 2));
}

// ---------------------------------------------------------------------------
// RunAcceptance: identical results at any job count
// ---------------------------------------------------------------------------

exp::AcceptanceConfig SmallAcceptanceConfig() {
  exp::AcceptanceConfig cfg;
  cfg.num_cores = 2;
  cfg.num_tasks = 8;
  cfg.norm_util_points = {0.7, 0.85, 0.95};
  cfg.sets_per_point = 12;
  cfg.model = overhead::OverheadModel::PaperCoreI7();
  cfg.algorithms = {exp::Algo::kFfd, exp::Algo::kSpa2};
  return cfg;
}

void ExpectSameAcceptance(const exp::AcceptanceResult& a,
                          const exp::AcceptanceResult& b) {
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    SCOPED_TRACE("point " + std::to_string(i));
    EXPECT_EQ(a.points[i].norm_util, b.points[i].norm_util);
    EXPECT_EQ(a.points[i].acceptance, b.points[i].acceptance);
    EXPECT_EQ(a.points[i].mean_splits, b.points[i].mean_splits);
  }
}

TEST(BatchParallel, AcceptanceIdenticalAcrossJobCounts) {
  exp::AcceptanceConfig cfg = SmallAcceptanceConfig();
  cfg.jobs = 1;
  const exp::AcceptanceResult serial = exp::RunAcceptance(cfg);
  cfg.jobs = 8;
  const exp::AcceptanceResult parallel = exp::RunAcceptance(cfg);
  ExpectSameAcceptance(serial, parallel);
}

TEST(BatchParallel, AcceptanceProducesNontrivialResults) {
  exp::AcceptanceConfig cfg = SmallAcceptanceConfig();
  cfg.jobs = 4;
  const exp::AcceptanceResult res = exp::RunAcceptance(cfg);
  ASSERT_EQ(res.points.size(), 3u);
  // Low-utilization acceptance dominates high-utilization acceptance.
  for (std::size_t ai = 0; ai < cfg.algorithms.size(); ++ai) {
    EXPECT_GE(res.points[0].acceptance[ai] + 1e-12,
              res.points[2].acceptance[ai]);
  }
  // Something was accepted at the easy point.
  const double total = std::accumulate(res.points[0].acceptance.begin(),
                                       res.points[0].acceptance.end(), 0.0);
  EXPECT_GT(total, 0.0);
}

// ---------------------------------------------------------------------------
// RunConfigSweep: the batch driver equals direct Simulate calls
// ---------------------------------------------------------------------------

partition::Partition SweepPartition() {
  rt::GeneratorConfig gen;
  gen.num_tasks = 12;
  gen.total_utilization = 1.4;
  rt::Rng rng(7);
  const rt::TaskSet ts = rt::GenerateTaskSet(gen, rng);
  partition::SpaConfig cfg;
  cfg.num_cores = 2;
  cfg.preassign_heavy = true;
  const auto pr = partition::SpaPartition(ts, cfg);
  EXPECT_TRUE(pr.success);
  return pr.partition;
}

TEST(BatchParallel, ConfigSweepMatchesDirectSimulation) {
  const partition::Partition p = SweepPartition();
  sim::SimConfig base;
  base.horizon = Millis(250);
  base.overheads = overhead::OverheadModel::PaperCoreI7();

  auto variants = sim::BackendVariants(base, sim::QueueRole::kEvent);
  const auto extra = sim::OverheadScaleVariants(base, {0.0, 2.0});
  variants.insert(variants.end(), extra.begin(), extra.end());

  const auto serial = sim::RunConfigSweep(p, variants, {.jobs = 1});
  const auto parallel = sim::RunConfigSweep(p, variants, {.jobs = 6});
  ASSERT_EQ(serial.size(), variants.size());
  ASSERT_EQ(parallel.size(), variants.size());
  for (std::size_t i = 0; i < variants.size(); ++i) {
    SCOPED_TRACE(variants[i].name);
    const sim::SimResult direct = Simulate(p, variants[i].cfg);
    for (const auto* run : {&serial[i], &parallel[i]}) {
      EXPECT_EQ(run->name, variants[i].name);
      EXPECT_EQ(run->result.total_misses, direct.total_misses);
      EXPECT_EQ(run->result.total_preemptions, direct.total_preemptions);
      EXPECT_EQ(run->result.total_migrations, direct.total_migrations);
      EXPECT_EQ(run->result.ready_ops, direct.ready_ops);
      EXPECT_EQ(run->result.sleep_ops, direct.sleep_ops);
      EXPECT_EQ(run->result.event_ops, direct.event_ops);
      EXPECT_GE(run->wall_seconds, 0.0);
    }
  }
}

}  // namespace
}  // namespace sps
