// Tests for the EDF extension: demand-bound analysis, partitioned EDF,
// EDF-WM window splitting, the EDF simulator policy, and the end-to-end
// soundness property (accepted => no simulated misses).

#include <gtest/gtest.h>

#include "analysis/edf.hpp"
#include "overhead/model.hpp"
#include "partition/edf_wm.hpp"
#include "partition/verify.hpp"
#include "rt/generator.hpp"
#include "sim/engine.hpp"

namespace sps {
namespace {

using analysis::Dbf;
using analysis::EdfDemandTest;
using analysis::EdfTask;
using overhead::OverheadModel;
using rt::MakeTask;

EdfTask ET(Time c, Time t, Time d = 0, Time j = 0) {
  EdfTask e;
  e.wcet = c;
  e.period = t;
  e.deadline = d == 0 ? t : d;
  e.jitter = j;
  return e;
}

// ---- demand bound function ---------------------------------------------

TEST(EdfDbf, StepFunctionValues) {
  const EdfTask t = ET(2, 10);
  EXPECT_EQ(Dbf(t, 9), 0);
  EXPECT_EQ(Dbf(t, 10), 2);
  EXPECT_EQ(Dbf(t, 19), 2);
  EXPECT_EQ(Dbf(t, 20), 4);
  EXPECT_EQ(Dbf(t, 100), 20);
}

TEST(EdfDbf, ConstrainedDeadlineShiftsSteps) {
  const EdfTask t = ET(2, 10, 6);
  EXPECT_EQ(Dbf(t, 5), 0);
  EXPECT_EQ(Dbf(t, 6), 2);
  EXPECT_EQ(Dbf(t, 15), 2);
  EXPECT_EQ(Dbf(t, 16), 4);
}

TEST(EdfDbf, JitterWidensTheWindow) {
  const EdfTask no_j = ET(2, 10, 10, 0);
  const EdfTask with_j = ET(2, 10, 10, 4);
  EXPECT_EQ(Dbf(no_j, 6), 0);
  EXPECT_EQ(Dbf(with_j, 6), 2);  // 6 + 4 - 10 = 0 -> one job
  for (Time t = 1; t < 100; ++t) {
    EXPECT_GE(Dbf(with_j, t), Dbf(no_j, t));
  }
}

TEST(EdfDbf, MonotoneInT) {
  const EdfTask t = ET(3, 7, 5, 2);
  Time last = 0;
  for (Time x = 0; x < 200; ++x) {
    const Time d = Dbf(t, x);
    EXPECT_GE(d, last);
    last = d;
  }
}

// ---- demand test ----------------------------------------------------------

TEST(EdfTest, FullUtilizationImplicitDeadlinesSchedulable) {
  // EDF schedules any implicit-deadline set with U <= 1.
  std::vector<EdfTask> ts = {ET(2, 4), ET(3, 6)};  // U = 1.0
  EXPECT_TRUE(EdfDemandTest(ts).schedulable);
}

TEST(EdfTest, OverUtilizationFails) {
  std::vector<EdfTask> ts = {ET(3, 4), ET(3, 6)};  // U = 1.25
  EXPECT_FALSE(EdfDemandTest(ts).schedulable);
}

TEST(EdfTest, ConstrainedDeadlinesCanFailBelowFullUtilization) {
  // U = 0.75 but both deadlines at 4 with combined demand 5 at t=4.
  std::vector<EdfTask> ts = {ET(2, 8, 4), ET(3, 8, 4)};
  const auto res = EdfDemandTest(ts);
  EXPECT_FALSE(res.schedulable);
  EXPECT_EQ(res.violation_at, 4);
}

TEST(EdfTest, ConstrainedButFeasible) {
  std::vector<EdfTask> ts = {ET(1, 8, 2), ET(3, 8, 6)};
  EXPECT_TRUE(EdfDemandTest(ts).schedulable);
}

TEST(EdfTest, RtTaskConvenienceWrapper) {
  std::vector<rt::Task> ts = {MakeTask(0, Millis(2), Millis(4)),
                              MakeTask(1, Millis(3), Millis(6))};
  EXPECT_TRUE(analysis::EdfSchedulable(ts));
  ts[0].wcet = Millis(3);
  EXPECT_FALSE(analysis::EdfSchedulable(ts));
}

TEST(EdfTest, EdfBeatsRmOnTheClassicExample) {
  // C=(2,5), T=(5,10): RM unschedulable (R2 = 5+2+2... > 10? classic:
  // U = 0.9 > LL(2)), EDF fine.
  std::vector<rt::Task> ts = {MakeTask(0, Millis(2), Millis(5)),
                              MakeTask(1, Millis(5), Millis(10))};
  EXPECT_TRUE(analysis::EdfSchedulable(ts));
}

TEST(EdfTest, InflationMakesDemandStricter) {
  std::vector<analysis::EdfCoreEntry> entries(2);
  entries[0].exec = Micros(400);
  entries[0].period = Millis(1);
  entries[0].deadline = Millis(1);
  entries[1].exec = Micros(550);
  entries[1].period = Millis(1);
  entries[1].deadline = Millis(1);
  const auto zero = analysis::InflateEdfCore(entries, OverheadModel::Zero());
  EXPECT_TRUE(EdfDemandTest(zero).schedulable);  // U = 0.95
  const auto paper =
      analysis::InflateEdfCore(entries, OverheadModel::PaperCoreI7());
  EXPECT_FALSE(EdfDemandTest(paper).schedulable);  // ~60us/job extra
}

// ---- partitioners -----------------------------------------------------------

partition::EdfPartitionConfig ECfg(unsigned cores,
                                   OverheadModel m = OverheadModel::Zero()) {
  partition::EdfPartitionConfig cfg;
  cfg.num_cores = cores;
  cfg.model = m;
  return cfg;
}

rt::TaskSet Uniform(std::size_t n, double u, Time period) {
  rt::TaskSet ts;
  for (std::size_t i = 0; i < n; ++i) {
    ts.add(MakeTask(static_cast<rt::TaskId>(i),
                    static_cast<Time>(u * static_cast<double>(period)),
                    period));
  }
  rt::AssignRateMonotonic(ts);
  return ts;
}

TEST(EdfBinPack, PacksToFullCoreUtilization) {
  // EDF cores take U = 1.0: 4 x 0.5 fit on 2 cores exactly.
  const rt::TaskSet ts = Uniform(4, 0.5, Millis(100));
  const auto r = EdfBinPack(ts, partition::FitPolicy::kFirstFit, ECfg(2));
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_EQ(r.partition.policy, partition::SchedPolicy::kEdf);
  EXPECT_EQ(r.partition.num_split_tasks(), 0u);
  EXPECT_NEAR(r.partition.core_utilization(0), 1.0, 1e-9);
}

TEST(EdfBinPack, StillHitsTheBinPackingWall) {
  // 3 x 0.6 on 2 cores: impossible without splitting even under EDF.
  const rt::TaskSet ts = Uniform(3, 0.6, Millis(100));
  const auto r = EdfBinPack(ts, partition::FitPolicy::kFirstFit, ECfg(2));
  EXPECT_FALSE(r.success);
}

TEST(EdfWm, SplitsAcrossTheWall) {
  const rt::TaskSet ts = Uniform(3, 0.6, Millis(100));
  const auto r = EdfWm(ts, ECfg(2));
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_GE(r.partition.num_split_tasks(), 1u);
  EXPECT_TRUE(r.partition.valid());
  // Window deadlines are strictly increasing and end at the deadline.
  for (const auto& pt : r.partition.tasks) {
    if (!pt.split()) continue;
    EXPECT_EQ(pt.parts.back().rel_deadline, pt.task.deadline);
  }
}

TEST(EdfWm, AcceptsEverythingEdfFfdAccepts) {
  rt::GeneratorConfig gen;
  gen.num_tasks = 10;
  gen.total_utilization = 3.0;
  rt::Rng rng(555);
  for (int i = 0; i < 10; ++i) {
    const rt::TaskSet ts = rt::GenerateTaskSet(gen, rng);
    const bool ffd =
        EdfBinPack(ts, partition::FitPolicy::kFirstFit, ECfg(4)).success;
    const bool wm = EdfWm(ts, ECfg(4)).success;
    EXPECT_LE(ffd, wm) << "set " << i;
  }
}

TEST(EdfWm, OverheadAwareVariantStillWorks) {
  const rt::TaskSet ts = Uniform(3, 0.55, Millis(100));
  const auto r = EdfWm(ts, ECfg(2, OverheadModel::PaperCoreI7()));
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_TRUE(
      AnalyzePartition(r.partition, OverheadModel::PaperCoreI7())
          .schedulable);
}

TEST(EdfWm, PerWindowAnalysisIsTighterThanJitterizedBound) {
  // A late window of a split task next to a heavy normal task. Under the
  // tightened per-window analysis (window = sporadic (B, T, D_w), zero
  // jitter) the core is schedulable: demand at t=10 is 8 + 2 = 10. The
  // old conservative treatment (jitter = window start = 5) counted TWO
  // window jobs at t=10 (dbf = (10 + 5 - 5)/10 + 1 = 2), demand 12 > 10,
  // and rejected. The simulator agrees with the tight verdict
  // (EdfSoundness below covers the randomized version).
  const rt::Task split = MakeTask(0, Millis(4), Millis(10));
  partition::Partition p;
  p.num_cores = 2;
  p.policy = partition::SchedPolicy::kEdf;
  partition::PlacedTask s;
  s.task = split;
  s.parts = {{0, Millis(2), 0, Millis(5)},   // window [0, 5)
             {1, Millis(2), 0, Millis(10)}};  // window [5, 10)
  partition::PlacedTask heavy;
  heavy.task = MakeTask(1, Millis(8), Millis(10));
  heavy.parts = {{1, Millis(8), 0, 0}};
  p.tasks.push_back(s);
  p.tasks.push_back(heavy);
  ASSERT_TRUE(p.valid());

  // Tight verdict: schedulable (core 1 demand exactly meets supply).
  EXPECT_TRUE(AnalyzePartition(p, OverheadModel::Zero()).schedulable);

  // The legacy jitterized model of the same core rejects it — pinning
  // that the tightening actually changed the bound.
  std::vector<EdfTask> legacy = {
      ET(Millis(2), Millis(10), Millis(5), Millis(5)),  // jitter = wstart
      ET(Millis(8), Millis(10))};
  EXPECT_FALSE(EdfDemandTest(legacy).schedulable);

  // And the execution backs the tight analysis: no misses.
  sim::SimConfig cfg;
  cfg.horizon = Millis(200);
  EXPECT_EQ(Simulate(p, cfg).total_misses, 0u);
}

// ---- EDF in the simulator ----------------------------------------------------

TEST(EdfSim, EarliestDeadlineRunsFirst) {
  partition::Partition p;
  p.num_cores = 1;
  p.policy = partition::SchedPolicy::kEdf;
  // tau0: long period but short deadline — must preempt tau1 under EDF.
  partition::PlacedTask a;
  a.task = rt::Task{.id = 0, .wcet = Millis(2), .period = Millis(50),
                    .deadline = Millis(5), .priority = 0};
  a.parts = {{0, Millis(2), 0, 0}};
  partition::PlacedTask b;
  b.task = MakeTask(1, Millis(10), Millis(30));
  b.parts = {{0, Millis(10), 0, 0}};
  p.tasks.push_back(b);  // insertion order must not matter
  p.tasks.push_back(a);
  sim::SimConfig cfg;
  cfg.horizon = Millis(30);
  const sim::SimResult r = Simulate(p, cfg);
  EXPECT_EQ(r.total_misses, 0u);
  // tau0 (deadline 5ms) ran before tau1 finished.
  EXPECT_EQ(r.tasks[1].max_response, Millis(2));
  EXPECT_GE(r.tasks[0].preemptions, 0u);
}

TEST(EdfSim, FullUtilizationRunsWithoutMisses) {
  partition::Partition p;
  p.num_cores = 1;
  p.policy = partition::SchedPolicy::kEdf;
  partition::PlacedTask a;
  a.task = MakeTask(0, Millis(2), Millis(4));
  a.parts = {{0, Millis(2), 0, 0}};
  partition::PlacedTask b;
  b.task = MakeTask(1, Millis(3), Millis(6));
  b.parts = {{0, Millis(3), 0, 0}};
  p.tasks.push_back(a);
  p.tasks.push_back(b);
  sim::SimConfig cfg;
  cfg.horizon = Millis(120);  // 10 hyperperiods
  const sim::SimResult r = Simulate(p, cfg);
  EXPECT_EQ(r.total_misses, 0u);  // U = 1, EDF handles it
}

TEST(EdfSim, SplitTaskHonoursWindows) {
  // Split task: 3ms in window [0,5), 3ms in window [5,10) of T=10ms.
  partition::Partition p;
  p.num_cores = 2;
  p.policy = partition::SchedPolicy::kEdf;
  partition::PlacedTask split;
  split.task = MakeTask(0, Millis(6), Millis(10));
  split.parts = {{0, Millis(3), 0, Millis(5)},
                 {1, Millis(3), 0, Millis(10)}};
  p.tasks.push_back(split);
  sim::SimConfig cfg;
  cfg.horizon = Millis(50);
  const sim::SimResult r = Simulate(p, cfg);
  EXPECT_EQ(r.total_misses, 0u);
  EXPECT_EQ(r.tasks[0].migrations, 5u);
  EXPECT_EQ(r.cores[0].busy_exec, Millis(15));
  EXPECT_EQ(r.cores[1].busy_exec, Millis(15));
}

// ---- end-to-end soundness -------------------------------------------------

class EdfSoundness : public ::testing::TestWithParam<double> {};

TEST_P(EdfSoundness, AcceptedPartitionsNeverMissInSimulation) {
  rt::GeneratorConfig gen;
  gen.num_tasks = 12;
  gen.total_utilization = GetParam() * 4;
  gen.period_min = Millis(5);
  gen.period_max = Millis(100);
  rt::Rng rng(static_cast<std::uint64_t>(GetParam() * 10000));
  const OverheadModel model = OverheadModel::PaperCoreI7();
  for (int i = 0; i < 5; ++i) {
    const rt::TaskSet ts = rt::GenerateTaskSet(gen, rng);
    for (const bool wm : {false, true}) {
      const partition::PartitionResult pr =
          wm ? EdfWm(ts, ECfg(4, model))
             : EdfBinPack(ts, partition::FitPolicy::kFirstFit,
                          ECfg(4, model));
      if (!pr.success) continue;
      sim::SimConfig cfg;
      cfg.horizon = Millis(1500);
      cfg.overheads = model;
      const sim::SimResult r = Simulate(pr.partition, cfg);
      EXPECT_EQ(r.total_misses, 0u)
          << (wm ? "EDF-WM" : "EDF-FFD") << " util=" << GetParam()
          << "\n" << pr.partition.summary() << r.summary();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Utils, EdfSoundness,
                         ::testing::Values(0.5, 0.7, 0.8, 0.9, 0.95));

}  // namespace
}  // namespace sps
