// Unit + property tests for the binomial-heap ready queue.

#include "containers/binomial_heap.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <climits>
#include <random>
#include <set>
#include <vector>

namespace sps::containers {
namespace {

using Heap = BinomialHeap<int>;

TEST(BinomialHeap, StartsEmpty) {
  Heap h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.size(), 0u);
  EXPECT_TRUE(h.validate());
}

TEST(BinomialHeap, SingleElement) {
  Heap h;
  h.push(42);
  EXPECT_FALSE(h.empty());
  EXPECT_EQ(h.size(), 1u);
  EXPECT_EQ(h.top(), 42);
  EXPECT_EQ(h.pop(), 42);
  EXPECT_TRUE(h.empty());
}

TEST(BinomialHeap, PopsInSortedOrder) {
  Heap h;
  const std::vector<int> in = {5, 3, 9, 1, 7, 2, 8, 0, 6, 4};
  for (int v : in) h.push(v);
  EXPECT_TRUE(h.validate());
  for (int expect = 0; expect < 10; ++expect) {
    EXPECT_EQ(h.top(), expect);
    EXPECT_EQ(h.pop(), expect);
    EXPECT_TRUE(h.validate());
  }
  EXPECT_TRUE(h.empty());
}

TEST(BinomialHeap, HandlesDuplicates) {
  Heap h;
  for (int i = 0; i < 5; ++i) h.push(7);
  h.push(3);
  EXPECT_EQ(h.pop(), 3);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(h.pop(), 7);
}

TEST(BinomialHeap, EraseByHandle) {
  Heap h;
  std::vector<Heap::handle> handles;
  for (int v : {10, 20, 30, 40, 50}) handles.push_back(h.push(v));
  EXPECT_EQ(h.erase(handles[2]), 30);
  EXPECT_EQ(h.size(), 4u);
  EXPECT_TRUE(h.validate());
  std::vector<int> out;
  while (!h.empty()) out.push_back(h.pop());
  EXPECT_EQ(out, (std::vector<int>{10, 20, 40, 50}));
}

TEST(BinomialHeap, EraseRootAndLeaf) {
  Heap h;
  auto h1 = h.push(1);  // min -> will be a root after consolidation
  std::vector<Heap::handle> rest;
  for (int v = 2; v <= 8; ++v) rest.push_back(h.push(v));
  EXPECT_EQ(h.erase(h1), 1);
  EXPECT_TRUE(h.validate());
  EXPECT_EQ(h.erase(rest.back()), 8);
  EXPECT_TRUE(h.validate());
  EXPECT_EQ(h.top(), 2);
  EXPECT_EQ(h.size(), 6u);
}

TEST(BinomialHeap, MergeCombinesAllElements) {
  Heap a, b;
  for (int v : {1, 4, 6}) a.push(v);
  for (int v : {2, 3, 5}) b.push(v);
  a.merge(b);
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(a.size(), 6u);
  EXPECT_TRUE(a.validate());
  for (int expect = 1; expect <= 6; ++expect) EXPECT_EQ(a.pop(), expect);
}

TEST(BinomialHeap, MergeWithEmptyIsNoop) {
  Heap a, b;
  a.push(1);
  a.merge(b);
  EXPECT_EQ(a.size(), 1u);
  b.merge(a);
  EXPECT_EQ(b.size(), 1u);
  EXPECT_TRUE(a.empty());
}

TEST(BinomialHeap, MoveConstructionTransfersOwnership) {
  Heap a;
  for (int v : {3, 1, 2}) a.push(v);
  Heap b(std::move(a));
  EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(b.pop(), 1);
}

TEST(BinomialHeap, MaxHeapViaComparator) {
  BinomialHeap<int, std::greater<int>> h;
  for (int v : {5, 1, 9, 3}) h.push(v);
  EXPECT_EQ(h.pop(), 9);
  EXPECT_EQ(h.pop(), 5);
}

TEST(BinomialHeap, CustomStructOrdering) {
  struct Item {
    unsigned prio;
    int payload;
  };
  struct ByPrio {
    bool operator()(const Item& a, const Item& b) const {
      return a.prio < b.prio;
    }
  };
  BinomialHeap<Item, ByPrio> h;
  h.push({7, 70});
  h.push({2, 20});
  h.push({5, 50});
  EXPECT_EQ(h.pop().payload, 20);
  EXPECT_EQ(h.pop().payload, 50);
}

// Hooks: track node relocation so handles survive erase-induced swaps.
struct Tracked {
  int key = 0;
  void* node = nullptr;
  explicit Tracked(int k) : key(k) {}
  bool operator<(const Tracked& o) const { return key < o.key; }
};

struct TrackHooks {
  template <typename T, typename Node>
  static void moved(T& value, Node* n) noexcept {
    value.node = n;
  }
};

TEST(BinomialHeap, HooksKeepHandlesCurrentThroughErase) {
  BinomialHeap<Tracked, std::less<Tracked>, TrackHooks> h;
  std::vector<decltype(h)::handle> handles;
  for (int i = 0; i < 32; ++i) handles.push_back(h.push(Tracked(i)));
  // Erase a deep element; hooks must have updated every moved value.
  h.erase(handles[31]);
  // Walk by popping: each popped value's recorded node must be the node it
  // was last stored in — we can't observe that directly after pop, but we
  // can erase every remaining element VIA its tracked node pointer.
  // Collect current handles by scanning pops is destructive; instead erase
  // elements through their self-reported nodes.
  for (int i = 30; i >= 0; --i) {
    // The tracked node pointer of element i is maintained by the hook.
    // Find it by erasing from the top element's self pointer repeatedly.
    auto top_node =
        static_cast<decltype(h)::handle>(h.top().node);
    const Tracked out = h.erase(top_node);
    EXPECT_EQ(out.key, 30 - i);  // min first
    EXPECT_TRUE(h.validate());
  }
  EXPECT_TRUE(h.empty());
}

// ---- randomized property sweep ------------------------------------------

class BinomialHeapRandomized : public ::testing::TestWithParam<unsigned> {};

TEST_P(BinomialHeapRandomized, MatchesReferenceMultisetUnderRandomOps) {
  std::mt19937 rng(GetParam());
  Heap h;
  std::multiset<int> ref;
  std::vector<std::pair<Heap::handle, int>> live;  // handle -> value

  for (int step = 0; step < 2000; ++step) {
    const int action = static_cast<int>(rng() % 100);
    if (action < 55 || ref.empty()) {
      const int v = static_cast<int>(rng() % 1000);
      live.emplace_back(h.push(v), v);
      ref.insert(v);
    } else if (action < 85) {
      const int top = h.top();
      EXPECT_EQ(top, *ref.begin());
      const int popped = h.pop();
      EXPECT_EQ(popped, *ref.begin());
      ref.erase(ref.begin());
      // Drop one matching live handle (it is now dangling).
      auto it = std::find_if(live.begin(), live.end(),
                             [&](const auto& p) { return p.second == popped; });
      ASSERT_NE(it, live.end());
      live.erase(it);
      // After a pop, OTHER handles remain valid only if no erase-swaps
      // happened; this test only erases via pop from here on when handles
      // may be stale. To keep handles exact we rebuild the live list by
      // draining... instead, this branch invalidates nothing: pop removes
      // a root; handles never move nodes. (erase() is exercised with the
      // Hooks test above and the targeted tests.)
    } else {
      EXPECT_EQ(h.size(), ref.size());
    }
    if (step % 128 == 0) {
      ASSERT_TRUE(h.validate());
    }
  }
  // Drain and compare the full ordering.
  std::vector<int> out;
  while (!h.empty()) out.push_back(h.pop());
  std::vector<int> expect(ref.begin(), ref.end());
  EXPECT_EQ(out, expect);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BinomialHeapRandomized,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u));

class BinomialHeapSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BinomialHeapSizes, StructureValidAtEverySize) {
  const std::size_t n = GetParam();
  Heap h;
  for (std::size_t i = 0; i < n; ++i) {
    h.push(static_cast<int>((i * 2654435761u) % 10007));
  }
  EXPECT_EQ(h.size(), n);
  EXPECT_TRUE(h.validate());
  int last = INT_MIN;
  while (!h.empty()) {
    const int v = h.pop();
    EXPECT_GE(v, last);
    last = v;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BinomialHeapSizes,
                         ::testing::Values(0u, 1u, 2u, 3u, 4u, 7u, 8u, 15u,
                                           16u, 63u, 64u, 65u, 255u, 1024u));

}  // namespace
}  // namespace sps::containers
