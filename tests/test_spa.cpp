// Tests for the FP-TS (SPA1/SPA2) semi-partitioned algorithms — the
// paper's scheduler. The headline property: task sets that defeat every
// bin-packing partitioner are schedulable once splitting is allowed.

#include <gtest/gtest.h>

#include "overhead/model.hpp"
#include "partition/binpack.hpp"
#include "partition/spa.hpp"
#include "partition/verify.hpp"
#include "rt/generator.hpp"
#include "rt/taskset.hpp"

namespace sps::partition {
namespace {

using overhead::OverheadModel;
using rt::MakeTask;
using rt::TaskSet;

TaskSet Uniform(std::size_t n, double util_each, Time period) {
  TaskSet ts;
  for (std::size_t i = 0; i < n; ++i) {
    ts.add(MakeTask(static_cast<rt::TaskId>(i),
                    static_cast<Time>(util_each * static_cast<double>(period)),
                    period));
  }
  rt::AssignRateMonotonic(ts);
  return ts;
}

SpaConfig Cfg(unsigned cores, OverheadModel m = OverheadModel::Zero()) {
  SpaConfig cfg;
  cfg.num_cores = cores;
  cfg.model = m;
  return cfg;
}

TEST(Spa, TrivialSetNoSplitting) {
  const TaskSet ts = Uniform(4, 0.2, Millis(100));
  const PartitionResult r = Spa1(ts, Cfg(4));
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_EQ(r.partition.num_split_tasks(), 0u);
  EXPECT_TRUE(r.partition.valid());
}

TEST(Spa, HeadlineWin_SplitsWhatBinPackingCannotPlace) {
  // m+1 tasks of utilization 0.6 on m cores: impossible partitioned
  // (test_partition.cpp proves all four policies fail), trivial for FP-TS.
  const TaskSet ts = Uniform(3, 0.6, Millis(100));
  const PartitionResult r = Spa1(ts, Cfg(2));
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_TRUE(r.partition.valid());
  EXPECT_GE(r.partition.num_split_tasks(), 1u);
  // And the verifier independently agrees.
  EXPECT_TRUE(AnalyzePartition(r.partition, OverheadModel::Zero())
                  .schedulable);
}

TEST(Spa, BudgetsConserveWcet) {
  // 5 x 0.55 on 4 cores: forces at least one split (no pair fits a core).
  const TaskSet ts = Uniform(5, 0.55, Millis(80));
  const PartitionResult r = Spa1(ts, Cfg(4));
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_GE(r.partition.num_split_tasks(), 1u);
  for (const PlacedTask& pt : r.partition.tasks) {
    EXPECT_EQ(pt.total_budget(), pt.task.wcet);
  }
}

TEST(Spa, SplitPartsLandOnDistinctConsecutivelyFilledCores) {
  const TaskSet ts = Uniform(3, 0.6, Millis(100));
  const PartitionResult r = Spa1(ts, Cfg(2));
  ASSERT_TRUE(r.success);
  for (const PlacedTask& pt : r.partition.tasks) {
    for (std::size_t k = 1; k < pt.parts.size(); ++k) {
      // SPA fills cores in order; a later subtask is on a later core.
      EXPECT_GT(pt.parts[k].core, pt.parts[k - 1].core);
    }
  }
}

TEST(Spa, ElevatedSubtasksOutrankNormalTasks) {
  const TaskSet ts = Uniform(3, 0.6, Millis(100));
  const PartitionResult r = Spa1(ts, Cfg(2));
  ASSERT_TRUE(r.success);
  for (const PlacedTask& pt : r.partition.tasks) {
    if (pt.split()) {
      for (const SubtaskPlacement& sp : pt.parts) {
        EXPECT_LT(sp.local_priority, kNormalPriorityBase);
      }
    } else {
      EXPECT_GE(pt.parts[0].local_priority, kNormalPriorityBase);
    }
  }
}

TEST(Spa, NativeModeKeepsRmPriorities) {
  const TaskSet ts = Uniform(3, 0.6, Millis(100));
  SpaConfig cfg = Cfg(2);
  cfg.split_mode = SplitPriorityMode::kNative;
  const PartitionResult r = Spa1(ts, cfg);
  if (r.success) {
    for (const PlacedTask& pt : r.partition.tasks) {
      for (const SubtaskPlacement& sp : pt.parts) {
        EXPECT_GE(sp.local_priority, kNormalPriorityBase);
      }
    }
  }
  // Either way the call must terminate and produce a coherent result.
  EXPECT_EQ(r.success, r.failure_reason.empty());
}

TEST(Spa, FailsGracefullyWhenTrulyOverloaded) {
  const TaskSet ts = Uniform(5, 0.9, Millis(100));  // U = 4.5 on 2 cores
  const PartitionResult r = Spa1(ts, Cfg(2));
  EXPECT_FALSE(r.success);
  EXPECT_FALSE(r.failure_reason.empty());
}

TEST(Spa, RequiresPriorityAssignment) {
  TaskSet ts;
  ts.add(MakeTask(0, Millis(1), Millis(10)));  // no priority assigned
  const PartitionResult r = Spa1(ts, Cfg(1));
  EXPECT_FALSE(r.success);
  EXPECT_NE(r.failure_reason.find("priority"), std::string::npos);
}

TEST(Spa2, PreassignsHeavyTasksUnsplit) {
  // Two heavy tasks (0.8) + light dust; SPA2 must keep the heavy tasks
  // whole on dedicated (last) cores.
  TaskSet ts;
  ts.add(MakeTask(0, Millis(80), Millis(100)));
  ts.add(MakeTask(1, Millis(80), Millis(100)));
  for (int i = 2; i < 6; ++i) {
    ts.add(MakeTask(static_cast<rt::TaskId>(i), Millis(10), Millis(100)));
  }
  rt::AssignRateMonotonic(ts);
  const PartitionResult r = Spa2(ts, Cfg(4));
  ASSERT_TRUE(r.success) << r.failure_reason;
  const PlacedTask& h0 = r.partition.tasks[0];
  const PlacedTask& h1 = r.partition.tasks[1];
  EXPECT_FALSE(h0.split());
  EXPECT_FALSE(h1.split());
  // Highest-numbered cores host the heavy tasks.
  EXPECT_GE(h0.parts[0].core, 2u);
  EXPECT_GE(h1.parts[0].core, 2u);
  EXPECT_NE(h0.parts[0].core, h1.parts[0].core);
}

TEST(Spa2, MoreHeavyTasksThanCoresFails) {
  const TaskSet ts = Uniform(3, 0.8, Millis(100));
  const PartitionResult r = Spa2(ts, Cfg(2));
  EXPECT_FALSE(r.success);
}

TEST(Spa2, HandlesMixedSetBinPackingCannot) {
  // Heavy + medium mix engineered to defeat FFD/WFD on 4 cores but not
  // FP-TS: 4 x 0.55 + 4 x 0.45 (every pairing of two mediums > RTA bound
  // is fine actually; use 0.6/0.55 mix at total 3.45/4).
  TaskSet ts;
  rt::TaskId id = 0;
  for (int i = 0; i < 5; ++i) {
    ts.add(MakeTask(id++, Millis(60), Millis(100)));  // 0.6
  }
  for (int i = 0; i < 1; ++i) {
    ts.add(MakeTask(id++, Millis(45), Millis(100)));  // 0.45
  }
  rt::AssignRateMonotonic(ts);  // total U = 3.45 on 4 cores
  BinPackConfig bp;
  bp.num_cores = 4;
  bp.admission = AdmissionTest::kRta;
  // Same-period tasks: a core takes u <= 1.0 exactly; 5 x 0.6: two per
  // core is 1.2 > 1 -> each 0.6 needs its own core; the 0.45 then has no
  // home. All partitioned policies fail:
  EXPECT_FALSE(Ffd(ts, bp).success);
  EXPECT_FALSE(Wfd(ts, bp).success);
  // FP-TS splits and fits.
  const PartitionResult r = Spa2(ts, Cfg(4));
  ASSERT_TRUE(r.success) << r.failure_reason;
}

TEST(Spa, LiuLaylandFillModeStillVerifies) {
  const TaskSet ts = Uniform(4, 0.3, Millis(100));
  SpaConfig cfg = Cfg(2);
  cfg.fill = FillMode::kLiuLaylandFill;
  const PartitionResult r = Spa1(ts, cfg);
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_TRUE(
      AnalyzePartition(r.partition, OverheadModel::Zero()).schedulable);
}

TEST(Spa, HeavyThresholdValues) {
  // Theta(inf)/(1+Theta(inf)) = ln2/(1+ln2) ~= 0.4093.
  EXPECT_NEAR(HeavyThreshold(0), 0.4093, 1e-3);
  // Theta(1) = 1 -> 0.5.
  EXPECT_NEAR(HeavyThreshold(1), 0.5, 1e-9);
}

TEST(Spa, OverheadAwareSpaStillBeatsPartitioned) {
  // The paper's central claim at a small scale: with the measured
  // overheads charged, FP-TS still schedules the u x (m+1) pattern that
  // defeats every partitioner. (u = 0.55: at 0.6 the zero-overhead chain
  // is exactly tight, so any overhead tips it over — see HeadlineWin.)
  const TaskSet ts = Uniform(3, 0.55, Millis(100));
  const OverheadModel m = OverheadModel::PaperCoreI7();
  BinPackConfig bp;
  bp.num_cores = 2;
  bp.admission = AdmissionTest::kRta;
  bp.model = m;
  EXPECT_FALSE(Ffd(ts, bp).success);
  const PartitionResult r = Spa1(ts, Cfg(2, m));
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_TRUE(AnalyzePartition(r.partition, m).schedulable);
}

class SpaUtilizationSweep : public ::testing::TestWithParam<double> {};

TEST_P(SpaUtilizationSweep, AcceptedPartitionsAlwaysVerify) {
  // Property: whatever SPA returns as success must pass the verifier
  // under the same model (soundness of the partitioner).
  const double norm_util = GetParam();
  rt::GeneratorConfig gen;
  gen.num_tasks = 10;
  gen.total_utilization = norm_util * 4;
  gen.period_min = Millis(10);
  gen.period_max = Millis(200);
  rt::Rng rng(static_cast<std::uint64_t>(norm_util * 1000));
  const OverheadModel m = OverheadModel::PaperCoreI7();
  for (int i = 0; i < 5; ++i) {
    const TaskSet ts = rt::GenerateTaskSet(gen, rng);
    for (const bool heavy : {false, true}) {
      SpaConfig cfg = Cfg(4, m);
      cfg.preassign_heavy = heavy;
      const PartitionResult r = SpaPartition(ts, cfg);
      if (r.success) {
        EXPECT_TRUE(r.partition.valid());
        EXPECT_TRUE(AnalyzePartition(r.partition, m).schedulable);
        Time budget_sum = 0;
        for (const PlacedTask& pt : r.partition.tasks) {
          budget_sum += pt.total_budget();
        }
        EXPECT_GT(budget_sum, 0);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Utils, SpaUtilizationSweep,
                         ::testing::Values(0.4, 0.6, 0.7, 0.8, 0.9));

}  // namespace
}  // namespace sps::partition
