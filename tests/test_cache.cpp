// Tests for the cache substrate: the analytical CPMD model must encode the
// paper's §3 findings, and the empirical LRU simulator must agree with it
// qualitatively.

#include <gtest/gtest.h>

#include "cache/cache_model.hpp"
#include "cache/cpmd.hpp"
#include "cache/lru_sim.hpp"

namespace sps::cache {
namespace {

TEST(CacheConfig, CoreI7Defaults) {
  const CacheConfig c = CacheConfig::CoreI7();
  EXPECT_EQ(c.private_bytes(), (32u + 256u) << 10);
  EXPECT_EQ(c.l3_bytes, 8u << 20);
  EXPECT_EQ(c.lines(64), 1u);
  EXPECT_EQ(c.lines(65), 2u);
  EXPECT_EQ(c.lines(0), 0u);
}

TEST(Cpmd, MigrationDelayGrowsWithWss) {
  const CpmdModel m(CacheConfig::CoreI7());
  Time last = -1;
  for (std::size_t wss = 1u << 10; wss <= 16u << 20; wss *= 2) {
    const Time d = m.migration_resume_delay(wss);
    EXPECT_GT(d, last);
    last = d;
  }
}

TEST(Cpmd, PaperFinding_RealisticWssMakesMigrationAndLocalComparable) {
  // "in general the cache-related overhead due to task migrations and
  // local context switches is in the same order of magnitude" — because a
  // realistic preemptor footprint flushes the private levels either way.
  const CpmdModel m(CacheConfig::CoreI7());
  const std::size_t wss = 512u << 10;        // larger than private (288K)
  const std::size_t preemptor = 512u << 10;  // realistic application
  const double ratio = m.migration_penalty_ratio(wss, preemptor);
  EXPECT_LT(ratio, 2.0);  // same order of magnitude
  EXPECT_GE(ratio, 1.0);  // migration never cheaper
}

TEST(Cpmd, PaperFinding_TinyWssMakesLocalMuchCheaper) {
  // "if an application has generally very small working space ... the
  // cache-related delay of local context switches would be significantly
  // smaller than task migrations".
  const CpmdModel m(CacheConfig::CoreI7());
  const std::size_t wss = 16u << 10;       // fits in private cache
  const std::size_t preemptor = 8u << 10;  // tiny preemptor footprint
  const double ratio = m.migration_penalty_ratio(wss, preemptor);
  EXPECT_GT(ratio, 3.0);
}

TEST(Cpmd, SharedLlcIsWhatKeepsMigrationCheap) {
  // Ablation: without a shared L3, migration reloads from memory and the
  // "same order of magnitude" finding disappears even at realistic sizes.
  const CpmdModel shared(CacheConfig::CoreI7());
  const CpmdModel priv(CacheConfig::PrivateLlcOnly());
  const std::size_t wss = 256u << 10;
  EXPECT_GT(priv.migration_resume_delay(wss),
            2 * shared.migration_resume_delay(wss));
}

TEST(Cpmd, LocalDelayMonotoneInPreemptorFootprint) {
  const CpmdModel m(CacheConfig::CoreI7());
  const std::size_t wss = 128u << 10;
  Time last = -1;
  for (std::size_t fp = 0; fp <= 1u << 20; fp += 64u << 10) {
    const Time d = m.local_resume_delay(wss, fp);
    EXPECT_GE(d, last);
    last = d;
  }
  // Saturates once the private levels are fully flushed.
  EXPECT_EQ(m.local_resume_delay(wss, 1u << 20),
            m.local_resume_delay(wss, 2u << 20));
}

TEST(Cpmd, LocalNeverExceedsMigration) {
  const CpmdModel m(CacheConfig::CoreI7());
  for (std::size_t wss = 4u << 10; wss <= 4u << 20; wss *= 4) {
    for (std::size_t fp = 0; fp <= 2u << 20; fp += 512u << 10) {
      EXPECT_LE(m.local_resume_delay(wss, fp),
                m.migration_resume_delay(wss) + 1);
    }
  }
}

// ---- LRU cache simulator ---------------------------------------------------

TEST(LruCache, HitsAfterFill) {
  LruCache c(4096, 4, 64);
  EXPECT_FALSE(c.access(0));
  EXPECT_TRUE(c.access(0));
  EXPECT_TRUE(c.access(63));   // same line
  EXPECT_FALSE(c.access(64));  // next line
}

TEST(LruCache, EvictsLeastRecentlyUsed) {
  // Direct-mapped-ish tiny cache: 2 sets x 2 ways x 64B = 256B.
  LruCache c(256, 2, 64);
  // Three lines mapping to set 0: line numbers 0, 2, 4 (even -> set 0).
  c.access(0 * 64);
  c.access(2 * 64);
  c.access(0 * 64);      // 0 is now MRU
  c.access(4 * 64);      // evicts line 2 (LRU)
  EXPECT_TRUE(c.contains(0 * 64));
  EXPECT_FALSE(c.contains(2 * 64));
  EXPECT_TRUE(c.contains(4 * 64));
}

TEST(LruCache, NullCacheMissesEverything) {
  LruCache c(0, 4, 64);
  EXPECT_FALSE(c.access(0));
  EXPECT_FALSE(c.access(0));
  EXPECT_FALSE(c.contains(0));
}

TEST(LruCache, FlushEmpties) {
  LruCache c(4096, 4, 64);
  c.access(0);
  c.flush();
  EXPECT_FALSE(c.contains(0));
}

TEST(TwoLevelSim, PrivateHitIsCheapest) {
  const CacheConfig cfg = CacheConfig::CoreI7();
  TwoLevelCacheSim sim(cfg, 2);
  const Time first = sim.access(0, 0);    // memory
  const Time second = sim.access(0, 0);   // private hit
  EXPECT_EQ(first, cfg.memory_per_line);
  EXPECT_EQ(second, cfg.l2_hit_per_line);
}

TEST(TwoLevelSim, CrossCoreServedByShared) {
  const CacheConfig cfg = CacheConfig::CoreI7();
  TwoLevelCacheSim sim(cfg, 2);
  sim.access(0, 0);                      // fill both levels via core 0
  const Time other = sim.access(1, 0);   // core 1 misses private, hits L3
  EXPECT_EQ(other, cfg.l3_hit_per_line);
}

TEST(ProbeCpmd, EmpiricalMatchesAnalyticalShape) {
  const CacheConfig cfg = CacheConfig::CoreI7();
  // Realistic: both costs within 2x of each other.
  {
    const CpmdProbeResult r = ProbeCpmd(cfg, 512u << 10, 512u << 10);
    EXPECT_GT(r.local_resume_cost, 0);
    EXPECT_LE(r.migration_resume_cost, 2 * r.local_resume_cost);
  }
  // Tiny working set + tiny preemptor: migration clearly worse.
  {
    const CpmdProbeResult r = ProbeCpmd(cfg, 16u << 10, 4u << 10);
    EXPECT_GT(r.migration_resume_cost, 2 * r.local_resume_cost);
  }
}

class CpmdWssSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CpmdWssSweep, AnalyticalAndEmpiricalAgreeOnRatioRegime) {
  const std::size_t wss = GetParam();
  const CacheConfig cfg = CacheConfig::CoreI7();
  const CpmdModel model(cfg);
  const std::size_t preemptor = 512u << 10;  // realistic preemptor
  const double analytical = model.migration_penalty_ratio(wss, preemptor);
  const CpmdProbeResult probe = ProbeCpmd(cfg, wss, preemptor);
  const double empirical =
      static_cast<double>(probe.migration_resume_cost) /
      static_cast<double>(std::max<Time>(1, probe.local_resume_cost));
  // Same regime: either both say "comparable" (< 2x) or both say
  // "migration much worse" (>= 2x).
  EXPECT_EQ(analytical < 2.0, empirical < 2.0)
      << "wss=" << wss << " analytical=" << analytical
      << " empirical=" << empirical;
}

INSTANTIATE_TEST_SUITE_P(WorkingSets, CpmdWssSweep,
                         ::testing::Values(64u << 10, 128u << 10,
                                           512u << 10, 1u << 20, 4u << 20));

}  // namespace
}  // namespace sps::cache
