// Tests for the pairing-heap ablation ready queue; mirrors the binomial
// heap suite so both structures are held to the same contract.

#include "containers/pairing_heap.hpp"

#include <gtest/gtest.h>

#include <random>
#include <set>
#include <vector>

namespace sps::containers {
namespace {

using Heap = PairingHeap<int>;

TEST(PairingHeap, StartsEmpty) {
  Heap h;
  EXPECT_TRUE(h.empty());
  EXPECT_TRUE(h.validate());
}

TEST(PairingHeap, PopsInSortedOrder) {
  Heap h;
  for (int v : {5, 3, 9, 1, 7, 2, 8, 0, 6, 4}) h.push(v);
  EXPECT_TRUE(h.validate());
  for (int expect = 0; expect < 10; ++expect) {
    EXPECT_EQ(h.top(), expect);
    EXPECT_EQ(h.pop(), expect);
    EXPECT_TRUE(h.validate());
  }
}

TEST(PairingHeap, EraseByHandleLeavesOthersValid) {
  Heap h;
  std::vector<Heap::handle> hs;
  for (int v = 0; v < 16; ++v) hs.push_back(h.push(v));
  EXPECT_EQ(h.erase(hs[7]), 7);
  EXPECT_EQ(h.erase(hs[0]), 0);   // root
  EXPECT_EQ(h.erase(hs[15]), 15); // leaf
  EXPECT_TRUE(h.validate());
  EXPECT_EQ(h.size(), 13u);
  int last = -1;
  while (!h.empty()) {
    const int v = h.pop();
    EXPECT_GT(v, last);
    EXPECT_NE(v, 7);
    last = v;
  }
}

TEST(PairingHeap, EraseOnlyElement) {
  Heap h;
  auto hd = h.push(1);
  EXPECT_EQ(h.erase(hd), 1);
  EXPECT_TRUE(h.empty());
  EXPECT_TRUE(h.validate());
}

class PairingHeapRandomized : public ::testing::TestWithParam<unsigned> {};

TEST_P(PairingHeapRandomized, MatchesReferenceMultiset) {
  std::mt19937 rng(GetParam());
  Heap h;
  std::multiset<int> ref;
  for (int step = 0; step < 2000; ++step) {
    if (rng() % 100 < 60 || ref.empty()) {
      const int v = static_cast<int>(rng() % 1000);
      h.push(v);
      ref.insert(v);
    } else {
      EXPECT_EQ(h.top(), *ref.begin());
      EXPECT_EQ(h.pop(), *ref.begin());
      ref.erase(ref.begin());
    }
    EXPECT_EQ(h.size(), ref.size());
    if (step % 200 == 0) {
      ASSERT_TRUE(h.validate());
    }
  }
  while (!h.empty()) {
    EXPECT_EQ(h.pop(), *ref.begin());
    ref.erase(ref.begin());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PairingHeapRandomized,
                         ::testing::Values(7u, 17u, 27u, 37u));

}  // namespace
}  // namespace sps::containers
