// Tests for the discrete-event scheduler simulator: single-core behaviour,
// the Figure-1 preemption sequence, split-task migration semantics, and
// overhead accounting.

#include <gtest/gtest.h>

#include <algorithm>

#include "overhead/model.hpp"
#include "partition/placement.hpp"
#include "sim/engine.hpp"
#include "trace/gantt.hpp"
#include "trace/trace.hpp"

namespace sps::sim {
namespace {

using overhead::OverheadModel;
using partition::kNormalPriorityBase;
using partition::Partition;
using partition::PlacedTask;
using rt::MakeTask;

PlacedTask Normal(rt::TaskId id, Time c, Time t, partition::CoreId core,
                  rt::Priority prio) {
  PlacedTask pt;
  pt.task = MakeTask(id, c, t);
  pt.parts = {{core, c, prio + kNormalPriorityBase}};
  return pt;
}

TEST(Sim, SingleTaskRunsEveryPeriod) {
  Partition p;
  p.num_cores = 1;
  p.tasks.push_back(Normal(0, Millis(2), Millis(10), 0, 0));
  SimConfig cfg;
  cfg.horizon = Millis(99);  // releases at 0,10,...,90: ten jobs
  const SimResult r = Simulate(p, cfg);
  ASSERT_EQ(r.tasks.size(), 1u);
  EXPECT_EQ(r.tasks[0].released, 10u);
  EXPECT_EQ(r.tasks[0].completed, 10u);
  EXPECT_EQ(r.tasks[0].deadline_misses, 0u);
  EXPECT_EQ(r.tasks[0].max_response, Millis(2));
  EXPECT_EQ(r.total_misses, 0u);
  EXPECT_EQ(r.cores[0].busy_exec, Millis(20));
}

TEST(Sim, RateMonotonicPreemption) {
  // tau0: C=2,T=5 (high prio); tau1: C=4,T=20. tau1 is preempted by tau0.
  Partition p;
  p.num_cores = 1;
  p.tasks.push_back(Normal(0, Millis(2), Millis(5), 0, 0));
  p.tasks.push_back(Normal(1, Millis(4), Millis(20), 0, 1));
  SimConfig cfg;
  cfg.horizon = Millis(20);
  const SimResult r = Simulate(p, cfg);
  EXPECT_EQ(r.total_misses, 0u);
  // tau1 runs [2,5] and [7,8]: response 8ms, preempted once at t=5.
  EXPECT_EQ(r.tasks[1].max_response, Millis(8));
  EXPECT_EQ(r.tasks[1].preemptions, 1u);
}

TEST(Sim, Figure1SequenceWithOverheads) {
  // Reproduce Figure 1: tau2 (lp) executing, tau1 (hp) released mid-run.
  // Expected overhead segments in order: rls, sch, cnt1 around tau1's
  // start; sch, cnt2 after tau1 finishes; then tau2 resumes (cache).
  Partition p;
  p.num_cores = 1;
  p.tasks.push_back(Normal(1, Millis(2), Millis(10), 0, 0));  // tau1 hp
  p.tasks.push_back(Normal(2, Millis(9), Millis(40), 0, 1));  // tau2 lp
  // Synchronous start: tau1 job1 runs [0,2], tau2 runs [2,11] minus the
  // preemption by tau1's SECOND release at t=10ms — Figure 1's scenario.
  SimConfig cfg;
  cfg.horizon = Millis(40);
  cfg.overheads = OverheadModel::PaperCoreI7();
  cfg.record_trace = true;
  trace::Recorder rec;
  const SimResult r = Simulate(p, cfg, &rec);
  EXPECT_EQ(r.total_misses, 0u);
  EXPECT_GE(r.tasks[1].preemptions, 1u);

  // Find tau1's release at t=10ms and verify the overhead chain after it.
  const auto& ev = rec.events();
  auto it = std::find_if(ev.begin(), ev.end(), [](const trace::Event& e) {
    return e.kind == trace::EventKind::kRelease && e.task == 1 &&
           e.time == Millis(10);
  });
  ASSERT_NE(it, ev.end());
  std::vector<trace::OverheadKind> kinds;
  for (auto j = it; j != ev.end() && kinds.size() < 3; ++j) {
    if (j->kind == trace::EventKind::kOverheadBegin) {
      kinds.push_back(j->overhead);
    }
  }
  ASSERT_EQ(kinds.size(), 3u);
  EXPECT_EQ(kinds[0], trace::OverheadKind::kRls);
  EXPECT_EQ(kinds[1], trace::OverheadKind::kSch);
  EXPECT_EQ(kinds[2], trace::OverheadKind::kCnt1);

  // Overhead totals are accounted per category.
  EXPECT_GT(r.cores[0].overhead_rls, 0);
  EXPECT_GT(r.cores[0].overhead_sch, 0);
  EXPECT_GT(r.cores[0].overhead_cnt1, 0);
  EXPECT_GT(r.cores[0].overhead_cnt2, 0);
  EXPECT_GT(r.cores[0].cpmd_charged, 0);  // tau2's reload after preemption
}

TEST(Sim, SplitTaskMigratesBetweenCores) {
  // tau0 split: 3ms on core0 + 2ms on core1, T=10ms.
  Partition p;
  p.num_cores = 2;
  PlacedTask pt;
  pt.task = MakeTask(0, Millis(5), Millis(10));
  pt.parts = {{0, Millis(3), 0}, {1, Millis(2), 0}};
  p.tasks.push_back(pt);
  SimConfig cfg;
  cfg.horizon = Millis(50);
  cfg.record_trace = true;
  trace::Recorder rec;
  const SimResult r = Simulate(p, cfg, &rec);
  EXPECT_EQ(r.total_misses, 0u);
  EXPECT_EQ(r.tasks[0].completed, 5u);
  EXPECT_EQ(r.tasks[0].migrations, 5u);  // one per period
  EXPECT_EQ(r.total_migrations, 5u);
  // Execution time lands on the right cores: 3ms/period on 0, 2 on 1.
  EXPECT_EQ(r.cores[0].busy_exec, Millis(15));
  EXPECT_EQ(r.cores[1].busy_exec, Millis(10));
  // Trace contains the migration pair each period.
  const auto& ev = rec.events();
  const auto outs = std::count_if(ev.begin(), ev.end(), [](const auto& e) {
    return e.kind == trace::EventKind::kMigrateOut;
  });
  const auto ins = std::count_if(ev.begin(), ev.end(), [](const auto& e) {
    return e.kind == trace::EventKind::kMigrateIn;
  });
  EXPECT_EQ(outs, 5);
  EXPECT_EQ(ins, 5);
}

TEST(Sim, TailReturnsToFirstCoreSleepQueueAndReleasesThere) {
  // After the tail finishes on core1 the next release must again start on
  // core0 — the paper's "sleep queue of the core hosting the first
  // subtask". Observable: releases all happen on core 0.
  Partition p;
  p.num_cores = 2;
  PlacedTask pt;
  pt.task = MakeTask(0, Millis(4), Millis(10));
  pt.parts = {{0, Millis(2), 0}, {1, Millis(2), 0}};
  p.tasks.push_back(pt);
  SimConfig cfg;
  cfg.horizon = Millis(30);
  cfg.record_trace = true;
  trace::Recorder rec;
  Simulate(p, cfg, &rec);
  for (const trace::Event& e : rec.events()) {
    if (e.kind == trace::EventKind::kRelease) {
      EXPECT_EQ(e.core, 0u);
    }
    if (e.kind == trace::EventKind::kMigrateIn) {
      EXPECT_EQ(e.core, 1u);
    }
  }
}

TEST(Sim, ElevatedSubtaskPreemptsNormalWork) {
  // Core1 runs a long normal task; the migrated-in subtask (elevated
  // priority) preempts it on arrival.
  Partition p;
  p.num_cores = 2;
  PlacedTask split;
  split.task = MakeTask(0, Millis(4), Millis(10));
  split.parts = {{0, Millis(2), 0}, {1, Millis(2), 0}};  // elevated
  p.tasks.push_back(split);
  p.tasks.push_back(Normal(1, Millis(6), Millis(10), 1, 0));
  SimConfig cfg;
  cfg.horizon = Millis(10);
  const SimResult r = Simulate(p, cfg);
  EXPECT_EQ(r.total_misses, 0u);
  // The normal task on core1 was preempted by the tail's arrival at 2ms.
  EXPECT_GE(r.tasks[1].preemptions, 1u);
  // Tail completes at 4ms (2ms body + 2ms tail, no waiting).
  EXPECT_EQ(r.tasks[0].max_response, Millis(4));
}

TEST(Sim, DeadlineMissDetectedOnOverload) {
  Partition p;
  p.num_cores = 1;
  p.tasks.push_back(Normal(0, Millis(6), Millis(10), 0, 0));
  p.tasks.push_back(Normal(1, Millis(6), Millis(10), 0, 1));
  SimConfig cfg;
  cfg.horizon = Millis(100);
  const SimResult r = Simulate(p, cfg);
  EXPECT_GT(r.total_misses, 0u);
  EXPECT_GT(r.tasks[1].deadline_misses + r.tasks[1].shed, 0u);
}

TEST(Sim, StopOnFirstMissHaltsEarly) {
  Partition p;
  p.num_cores = 1;
  p.tasks.push_back(Normal(0, Millis(6), Millis(10), 0, 0));
  p.tasks.push_back(Normal(1, Millis(6), Millis(10), 0, 1));
  SimConfig cfg;
  cfg.horizon = Millis(1000);
  cfg.stop_on_first_miss = true;
  const SimResult r = Simulate(p, cfg);
  EXPECT_EQ(r.total_misses, 1u);
  EXPECT_LT(r.simulated, Millis(1000));
}

TEST(Sim, ExecModelFractionShortensResponses) {
  Partition p;
  p.num_cores = 1;
  p.tasks.push_back(Normal(0, Millis(4), Millis(10), 0, 0));
  SimConfig cfg;
  cfg.horizon = Millis(50);
  cfg.exec.kind = ExecModel::Kind::kFraction;
  cfg.exec.fraction = 0.5;
  const SimResult r = Simulate(p, cfg);
  EXPECT_EQ(r.tasks[0].max_response, Millis(2));
}

TEST(Sim, EarlyFinishOnBodyPartSkipsMigration) {
  // Split 3+3 but actual execution only 2ms: never leaves core 0.
  Partition p;
  p.num_cores = 2;
  PlacedTask pt;
  pt.task = MakeTask(0, Millis(6), Millis(10));
  pt.parts = {{0, Millis(3), 0}, {1, Millis(3), 0}};
  p.tasks.push_back(pt);
  SimConfig cfg;
  cfg.horizon = Millis(30);
  cfg.exec.kind = ExecModel::Kind::kFraction;
  cfg.exec.fraction = 0.3;  // 1.8ms < 3ms body budget
  const SimResult r = Simulate(p, cfg);
  EXPECT_EQ(r.total_migrations, 0u);
  EXPECT_EQ(r.cores[1].busy_exec, 0);
  EXPECT_EQ(r.total_misses, 0u);
}

TEST(Sim, UniformExecModelIsSeededDeterministic) {
  Partition p;
  p.num_cores = 1;
  p.tasks.push_back(Normal(0, Millis(4), Millis(10), 0, 0));
  SimConfig cfg;
  cfg.horizon = Millis(200);
  cfg.exec.kind = ExecModel::Kind::kUniform;
  cfg.exec.seed = 77;
  const SimResult a = Simulate(p, cfg);
  const SimResult b = Simulate(p, cfg);
  EXPECT_EQ(a.tasks[0].max_response, b.tasks[0].max_response);
  EXPECT_EQ(a.tasks[0].avg_response, b.tasks[0].avg_response);
  cfg.exec.seed = 78;
  const SimResult c = Simulate(p, cfg);
  EXPECT_NE(a.tasks[0].avg_response, c.tasks[0].avg_response);
}

TEST(Sim, OverheadsExtendResponseTimes) {
  Partition p;
  p.num_cores = 1;
  p.tasks.push_back(Normal(0, Millis(2), Millis(10), 0, 0));
  p.tasks.push_back(Normal(1, Millis(3), Millis(10), 0, 1));
  SimConfig cfg;
  cfg.horizon = Millis(100);
  const SimResult zero = Simulate(p, cfg);
  cfg.overheads = OverheadModel::PaperCoreI7();
  const SimResult paper = Simulate(p, cfg);
  EXPECT_GT(paper.tasks[1].max_response, zero.tasks[1].max_response);
  EXPECT_GT(paper.total_overhead(), 0);
  EXPECT_EQ(paper.total_misses, 0u);
}

TEST(Sim, GanttRendersSplitExecution) {
  Partition p;
  p.num_cores = 2;
  PlacedTask pt;
  pt.task = MakeTask(3, Millis(5), Millis(10));
  pt.parts = {{0, Millis(3), 0}, {1, Millis(2), 0}};
  p.tasks.push_back(pt);
  SimConfig cfg;
  cfg.horizon = Millis(10);
  cfg.record_trace = true;
  trace::Recorder rec;
  Simulate(p, cfg, &rec);
  const std::string g = trace::RenderGantt(rec.events(), {});
  EXPECT_NE(g.find("core0"), std::string::npos);
  EXPECT_NE(g.find("core1"), std::string::npos);
  EXPECT_NE(g.find('3'), std::string::npos);  // task glyph on both rows
}

TEST(Sim, TimeConservationPerCore) {
  // busy + overhead <= horizon on every core, with equality (minus the
  // final partial period) for a fully loaded core.
  Partition p;
  p.num_cores = 1;
  p.tasks.push_back(Normal(0, Millis(1), Millis(2), 0, 0));
  p.tasks.push_back(Normal(1, Millis(2), Millis(4), 0, 1));  // U = 1.0
  SimConfig cfg;
  cfg.horizon = Millis(100);
  const SimResult r = Simulate(p, cfg);
  EXPECT_EQ(r.total_misses, 0u);
  const CoreStats& c = r.cores[0];
  const Time accounted = c.busy_exec + c.overhead_rls + c.overhead_sch +
                         c.overhead_cnt1 + c.overhead_cnt2;
  EXPECT_EQ(accounted, Millis(100));  // zero-overhead model: all busy
  EXPECT_EQ(c.busy_exec, Millis(100));
}

TEST(Sim, TimeConservationWithOverheads) {
  Partition p;
  p.num_cores = 1;
  p.tasks.push_back(Normal(0, Millis(1), Millis(5), 0, 0));
  p.tasks.push_back(Normal(1, Millis(2), Millis(10), 0, 1));
  SimConfig cfg;
  cfg.horizon = Millis(1000);
  cfg.overheads = OverheadModel::PaperCoreI7();
  const SimResult r = Simulate(p, cfg);
  const CoreStats& c = r.cores[0];
  const Time accounted = c.busy_exec + c.overhead_rls + c.overhead_sch +
                         c.overhead_cnt1 + c.overhead_cnt2;
  EXPECT_LE(accounted, Millis(1000));
  // Overheads appear in every category and CPMD sits inside busy_exec.
  EXPECT_GT(c.overhead_rls, 0);
  EXPECT_GT(c.overhead_sch, 0);
  EXPECT_GT(c.overhead_cnt1, 0);
  EXPECT_GT(c.overhead_cnt2, 0);
  EXPECT_LE(c.cpmd_charged, c.busy_exec);
  // Expected busy work: 200 jobs of 1ms + 100 jobs of 2ms + CPMD.
  EXPECT_EQ(c.busy_exec - c.cpmd_charged, Millis(400));
}

TEST(Sim, SporadicArrivalsReleaseFewerJobs) {
  Partition p;
  p.num_cores = 1;
  p.tasks.push_back(Normal(0, Millis(2), Millis(10), 0, 0));
  SimConfig cfg;
  cfg.horizon = Millis(1000);
  const SimResult periodic = Simulate(p, cfg);
  cfg.arrivals.kind = ArrivalModel::Kind::kSporadicUniformDelay;
  cfg.arrivals.max_delay_fraction = 0.5;
  const SimResult sporadic = Simulate(p, cfg);
  // Inter-arrivals stretch, so strictly fewer releases; still no misses
  // (sporadic separation >= T only reduces load).
  EXPECT_LT(sporadic.tasks[0].released, periodic.tasks[0].released);
  EXPECT_GE(sporadic.tasks[0].released, 60u);  // >= horizon / (1.5 T)
  EXPECT_EQ(sporadic.total_misses, 0u);
}

TEST(Sim, SporadicArrivalsDeterministicPerSeed) {
  Partition p;
  p.num_cores = 1;
  p.tasks.push_back(Normal(0, Millis(2), Millis(10), 0, 0));
  SimConfig cfg;
  cfg.horizon = Millis(500);
  cfg.arrivals.kind = ArrivalModel::Kind::kSporadicUniformDelay;
  cfg.arrivals.seed = 9;
  const SimResult a = Simulate(p, cfg);
  const SimResult b = Simulate(p, cfg);
  EXPECT_EQ(a.tasks[0].released, b.tasks[0].released);
  cfg.arrivals.seed = 10;
  const SimResult c = Simulate(p, cfg);
  EXPECT_NE(a.tasks[0].released, c.tasks[0].released);
}

TEST(Sim, SporadicScheduleStaysSoundForSplitTasks) {
  // A split task under sporadic arrivals: budgets and migration behave
  // identically per job; only the release pattern changes.
  Partition p;
  p.num_cores = 2;
  PlacedTask pt;
  pt.task = MakeTask(0, Millis(5), Millis(10));
  pt.parts = {{0, Millis(3), 0}, {1, Millis(2), 0}};
  p.tasks.push_back(pt);
  SimConfig cfg;
  cfg.horizon = Millis(500);
  cfg.arrivals.kind = ArrivalModel::Kind::kSporadicUniformDelay;
  const SimResult r = Simulate(p, cfg);
  EXPECT_EQ(r.total_misses, 0u);
  EXPECT_EQ(r.tasks[0].migrations, r.tasks[0].completed);
}

}  // namespace
}  // namespace sps::sim
