// Tests for the placement model, the FFD/WFD/BFD bin-packers, and the
// partition verifier.

#include <gtest/gtest.h>

#include "overhead/model.hpp"
#include "partition/binpack.hpp"
#include "partition/placement.hpp"
#include "partition/verify.hpp"
#include "rt/taskset.hpp"

namespace sps::partition {
namespace {

using overhead::OverheadModel;
using rt::MakeTask;
using rt::TaskSet;

TaskSet Uniform(std::size_t n, double util_each, Time period) {
  TaskSet ts;
  for (std::size_t i = 0; i < n; ++i) {
    ts.add(MakeTask(static_cast<rt::TaskId>(i),
                    static_cast<Time>(util_each * static_cast<double>(period)),
                    period));
  }
  rt::AssignRateMonotonic(ts);
  return ts;
}

// ---- placement model -------------------------------------------------------

TEST(Placement, ValidityChecks) {
  Partition p;
  p.num_cores = 2;
  PlacedTask pt;
  pt.task = MakeTask(0, Millis(4), Millis(10));
  pt.parts = {{0, Millis(3), 0}, {1, Millis(1), 0}};
  p.tasks.push_back(pt);
  EXPECT_TRUE(p.valid());
  EXPECT_EQ(p.num_split_tasks(), 1u);
  EXPECT_EQ(p.migrations_per_period(), 1u);
  EXPECT_EQ(p.entries_on(0), 1u);
  EXPECT_NEAR(p.core_utilization(0), 0.3, 1e-9);
  EXPECT_NEAR(p.core_utilization(1), 0.1, 1e-9);

  // Budgets must sum to the WCET.
  p.tasks[0].parts[1].budget = Millis(2);
  EXPECT_FALSE(p.valid());
  p.tasks[0].parts[1].budget = Millis(1);

  // Parts on the same core are invalid.
  p.tasks[0].parts[1].core = 0;
  EXPECT_FALSE(p.valid());
  p.tasks[0].parts[1].core = 1;

  // Out-of-range core.
  p.tasks[0].parts[1].core = 5;
  EXPECT_FALSE(p.valid());
}

TEST(Placement, DuplicatePrioritiesOnCoreInvalid) {
  Partition p;
  p.num_cores = 1;
  for (int i = 0; i < 2; ++i) {
    PlacedTask pt;
    pt.task = MakeTask(static_cast<rt::TaskId>(i), Millis(1), Millis(10));
    pt.parts = {{0, Millis(1), 7}};  // same priority twice
    p.tasks.push_back(pt);
  }
  EXPECT_FALSE(p.valid());
}

TEST(Placement, SummaryMentionsSplitBudgets) {
  Partition p;
  p.num_cores = 2;
  PlacedTask pt;
  pt.task = MakeTask(7, Millis(4), Millis(10));
  pt.parts = {{0, Millis(3), 0}, {1, Millis(1), 0}};
  p.tasks.push_back(pt);
  const std::string s = p.summary();
  EXPECT_NE(s.find("2 cores"), std::string::npos);
  EXPECT_NE(s.find("1 split"), std::string::npos);
  EXPECT_NE(s.find("tau7[1/2"), std::string::npos);
  EXPECT_NE(s.find("tau7[2/2"), std::string::npos);
}

TEST(Placement, EdfPolicyValidation) {
  Partition p;
  p.num_cores = 2;
  p.policy = SchedPolicy::kEdf;
  PlacedTask pt;
  pt.task = MakeTask(0, Millis(4), Millis(10));
  pt.parts = {{0, Millis(2), 0, Millis(5)}, {1, Millis(2), 0, Millis(10)}};
  p.tasks.push_back(pt);
  EXPECT_TRUE(p.valid());
  // Windows must be strictly increasing...
  p.tasks[0].parts[1].rel_deadline = Millis(5);
  EXPECT_FALSE(p.valid());
  // ... and end exactly at the task deadline.
  p.tasks[0].parts[1].rel_deadline = Millis(9);
  EXPECT_FALSE(p.valid());
  p.tasks[0].parts[1].rel_deadline = Millis(10);
  EXPECT_TRUE(p.valid());
  // Under EDF, duplicate local priorities are fine (keys are deadlines).
  Partition q = p;
  PlacedTask other;
  other.task = MakeTask(1, Millis(1), Millis(20));
  other.parts = {{0, Millis(1), 0}};  // same local_priority as pt's part
  q.tasks.push_back(other);
  EXPECT_TRUE(q.valid());
}

// ---- bin packers ------------------------------------------------------------

TEST(BinPack, FfdPlacesGreedilyOnFirstCore) {
  // Four tasks of u=0.3 on 2 cores with the L&L test: bound for 3 tasks is
  // 0.7798 -> core 0 takes only 2 (0.9 > bound), so FFD gives 2+2.
  const TaskSet ts = Uniform(4, 0.3, Millis(100));
  BinPackConfig cfg;
  cfg.num_cores = 2;
  cfg.admission = AdmissionTest::kLiuLayland;
  const PartitionResult r = Ffd(ts, cfg);
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_EQ(r.partition.entries_on(0), 2u);
  EXPECT_EQ(r.partition.entries_on(1), 2u);
  EXPECT_EQ(r.partition.num_split_tasks(), 0u);
}

TEST(BinPack, WfdBalancesLoad) {
  const TaskSet ts = Uniform(4, 0.2, Millis(100));
  BinPackConfig cfg;
  cfg.num_cores = 2;
  cfg.admission = AdmissionTest::kRta;
  const PartitionResult r = Wfd(ts, cfg);
  ASSERT_TRUE(r.success);
  // Worst-fit alternates between the emptiest cores: 2 + 2.
  EXPECT_EQ(r.partition.entries_on(0), 2u);
  EXPECT_EQ(r.partition.entries_on(1), 2u);
}

TEST(BinPack, FfdConcentratesWithExactRta) {
  // With exact RTA and harmonic periods a core can be filled to U=1.
  TaskSet ts;
  ts.add(MakeTask(0, Millis(1), Millis(2)));
  ts.add(MakeTask(1, Millis(1), Millis(4)));
  ts.add(MakeTask(2, Millis(2), Millis(8)));  // exactly fills core 0
  ts.add(MakeTask(3, Millis(1), Millis(4)));
  rt::AssignRateMonotonic(ts);
  BinPackConfig cfg;
  cfg.num_cores = 2;
  cfg.admission = AdmissionTest::kRta;
  const PartitionResult r = Ffd(ts, cfg);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.partition.entries_on(0), 3u);
  EXPECT_EQ(r.partition.entries_on(1), 1u);
}

TEST(BinPack, FailsWhenNothingFits) {
  // The classic bin-packing waste: m+1 tasks of utilization 0.6 cannot be
  // partitioned on m cores, although total utilization is only 0.6(m+1).
  const TaskSet ts = Uniform(3, 0.6, Millis(100));
  BinPackConfig cfg;
  cfg.num_cores = 2;
  cfg.admission = AdmissionTest::kRta;
  for (const FitPolicy policy :
       {FitPolicy::kFirstFit, FitPolicy::kWorstFit, FitPolicy::kBestFit,
        FitPolicy::kNextFit}) {
    const PartitionResult r = BinPackDecreasing(ts, policy, cfg);
    EXPECT_FALSE(r.success) << ToString(policy);
    EXPECT_FALSE(r.failure_reason.empty());
  }
}

TEST(BinPack, OverheadAwareAdmissionIsStricter) {
  // A set that fits exactly with zero overheads must fail once every job
  // carries tens of microseconds of scheduler overhead at millisecond
  // periods... choose tight parameters to expose it.
  TaskSet ts;
  ts.add(MakeTask(0, Micros(500), Millis(1)));
  ts.add(MakeTask(1, Micros(490), Millis(1)));
  rt::AssignRateMonotonic(ts);
  BinPackConfig cfg;
  cfg.num_cores = 1;
  cfg.admission = AdmissionTest::kRta;
  cfg.model = OverheadModel::Zero();
  EXPECT_TRUE(Ffd(ts, cfg).success);
  cfg.model = OverheadModel::PaperCoreI7();
  EXPECT_FALSE(Ffd(ts, cfg).success);
}

TEST(BinPack, AdmissionTestsOrderedByPermissiveness) {
  // RTA accepts everything L&L accepts; hyperbolic sits in between.
  for (double u = 0.05; u <= 0.5; u += 0.05) {
    const TaskSet ts = Uniform(3, u, Millis(50));
    BinPackConfig cfg;
    cfg.num_cores = 1;
    cfg.admission = AdmissionTest::kLiuLayland;
    const bool ll = Ffd(ts, cfg).success;
    cfg.admission = AdmissionTest::kHyperbolic;
    const bool hyp = Ffd(ts, cfg).success;
    cfg.admission = AdmissionTest::kRta;
    const bool rta = Ffd(ts, cfg).success;
    EXPECT_LE(ll, hyp) << u;
    EXPECT_LE(hyp, rta) << u;
  }
}

// ---- verifier ---------------------------------------------------------------

TEST(Verify, AcceptsFeasibleSplitChain) {
  // tau0 split across two idle cores: trivially schedulable.
  Partition p;
  p.num_cores = 2;
  PlacedTask pt;
  pt.task = MakeTask(0, Millis(4), Millis(10));
  pt.parts = {{0, Millis(2), 0}, {1, Millis(2), 0}};
  p.tasks.push_back(pt);
  const PartitionAnalysis a = AnalyzePartition(p, OverheadModel::Zero());
  EXPECT_TRUE(a.schedulable) << a.failure_reason;
  ASSERT_EQ(a.verdicts.size(), 1u);
  EXPECT_EQ(a.verdicts[0].completion, Millis(4));
}

TEST(Verify, RejectsOverloadedCore) {
  Partition p;
  p.num_cores = 1;
  for (int i = 0; i < 2; ++i) {
    PlacedTask pt;
    pt.task = MakeTask(static_cast<rt::TaskId>(i), Millis(6), Millis(10));
    pt.parts = {{0, Millis(6), static_cast<rt::Priority>(i)}};
    p.tasks.push_back(pt);
  }
  const PartitionAnalysis a = AnalyzePartition(p, OverheadModel::Zero());
  EXPECT_FALSE(a.schedulable);
  EXPECT_FALSE(a.failure_reason.empty());
}

TEST(Verify, SplitChainAccountsPredecessorDelay) {
  // Core 1 hosts a higher-priority task that delays the tail; the chain
  // must still fit in the period.
  Partition p;
  p.num_cores = 2;
  {
    PlacedTask pt;  // split task: 3ms on core0 + 3ms on core1, T=10ms
    pt.task = MakeTask(0, Millis(6), Millis(10));
    pt.parts = {{0, Millis(3), 0}, {1, Millis(3), 100}};  // tail native prio
    p.tasks.push_back(pt);
  }
  {
    PlacedTask pt;  // hp task on core 1: 4ms / 10ms
    pt.task = MakeTask(1, Millis(4), Millis(10));
    pt.parts = {{1, Millis(4), 10}};
    p.tasks.push_back(pt);
  }
  const PartitionAnalysis a = AnalyzePartition(p, OverheadModel::Zero());
  ASSERT_TRUE(a.schedulable) << a.failure_reason;
  // Tail: released after body (3ms), waits for hp (4ms), runs 3ms -> 10ms.
  EXPECT_EQ(a.verdicts[0].completion, Millis(10));
}

TEST(Verify, RejectsInfeasibleChain) {
  // Same as above but the hp task leaves too little room.
  Partition p;
  p.num_cores = 2;
  {
    PlacedTask pt;
    pt.task = MakeTask(0, Millis(6), Millis(10));
    pt.parts = {{0, Millis(3), 0}, {1, Millis(3), 100}};
    p.tasks.push_back(pt);
  }
  {
    PlacedTask pt;
    pt.task = MakeTask(1, Millis(5), Millis(10));
    pt.parts = {{1, Millis(5), 10}};
    p.tasks.push_back(pt);
  }
  const PartitionAnalysis a = AnalyzePartition(p, OverheadModel::Zero());
  EXPECT_FALSE(a.schedulable);
}

TEST(Verify, ElevatedTailBeatsNormalTasks) {
  // With the tail at elevated priority the same layout becomes feasible:
  // the tail preempts the 5ms task instead of waiting behind it.
  Partition p;
  p.num_cores = 2;
  {
    PlacedTask pt;
    pt.task = MakeTask(0, Millis(6), Millis(10));
    pt.parts = {{0, Millis(3), 0},
                {1, Millis(3), 0}};  // elevated (< kNormalPriorityBase)
    p.tasks.push_back(pt);
  }
  {
    PlacedTask pt;
    pt.task = MakeTask(1, Millis(4), Millis(10));
    pt.parts = {{1, Millis(4), kNormalPriorityBase + 10}};
    p.tasks.push_back(pt);
  }
  const PartitionAnalysis a = AnalyzePartition(p, OverheadModel::Zero());
  ASSERT_TRUE(a.schedulable) << a.failure_reason;
  EXPECT_EQ(a.verdicts[0].completion, Millis(6));
  // ... and the normal task absorbs the tail's interference: 4 + 3 = 7ms.
  EXPECT_EQ(a.verdicts[1].completion, Millis(7));
}

TEST(Verify, OverheadsTightenTheVerdict) {
  // Feasible with zero overheads, infeasible at 10x paper overheads with
  // microsecond-scale budgets.
  Partition p;
  p.num_cores = 2;
  PlacedTask pt;
  pt.task = MakeTask(0, Micros(900), Millis(1));
  pt.parts = {{0, Micros(450), 0}, {1, Micros(450), 0}};
  p.tasks.push_back(pt);
  EXPECT_TRUE(AnalyzePartition(p, OverheadModel::Zero()).schedulable);
  EXPECT_FALSE(
      AnalyzePartition(p, OverheadModel::PaperScaled(10.0)).schedulable);
}

}  // namespace
}  // namespace sps::partition
