// Online admission subsystem (DESIGN.md §11): stream generation and
// round-trip, the offline/online placement differentials, capacity
// reclaim, fallback churn accounting, unsplit consolidation, epoch
// replay soundness, and the jobs-invariance of stream batches.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "online/controller.hpp"
#include "online/workload_stream.hpp"
#include "overhead/model.hpp"
#include "partition/binpack.hpp"
#include "partition/edf_wm.hpp"
#include "partition/verify.hpp"
#include "rt/generator.hpp"

namespace sps::online {
namespace {

using overhead::OverheadModel;
using rt::MakeTask;

// ---------------------------------------------------------------------------
// Stream model
// ---------------------------------------------------------------------------

TEST(WorkloadStream, GenerationIsDeterministicAndValid) {
  StreamConfig cfg;
  cfg.num_admits = 64;
  cfg.seed = 42;
  const WorkloadStream a = GenerateStream(cfg);
  const WorkloadStream b = GenerateStream(cfg);
  EXPECT_EQ(a.requests(), b.requests());
  EXPECT_TRUE(a.valid());
  EXPECT_EQ(a.num_admits(), 64u);
  // Timestamps non-decreasing, priorities unique DM over admits.
  cfg.seed = 43;
  const WorkloadStream c = GenerateStream(cfg);
  EXPECT_NE(a.requests(), c.requests());
}

TEST(WorkloadStream, SaveLoadRoundTripsByteExactly) {
  StreamConfig cfg;
  cfg.num_admits = 32;
  cfg.leave_fraction = 0.7;
  const WorkloadStream s = GenerateStream(cfg);
  const std::string path = ::testing::TempDir() + "stream_roundtrip.txt";
  std::string err;
  ASSERT_TRUE(SaveStream(s, path, &err)) << err;
  WorkloadStream loaded;
  ASSERT_TRUE(LoadStream(path, loaded, &err)) << err;
  EXPECT_EQ(s.requests(), loaded.requests());
  std::remove(path.c_str());
}

TEST(WorkloadStream, FileErrorsNameThePathAndReason) {
  std::string err;
  WorkloadStream s;
  EXPECT_FALSE(LoadStream("/nonexistent/dir/stream.txt", s, &err));
  EXPECT_NE(err.find("/nonexistent/dir/stream.txt"), std::string::npos);
  EXPECT_NE(err.find("No such file"), std::string::npos) << err;

  err.clear();
  EXPECT_FALSE(SaveStream(s, "/nonexistent/dir/stream.txt", &err));
  EXPECT_NE(err.find("/nonexistent/dir/stream.txt"), std::string::npos);

  // Parse errors name the offending line.
  const std::string bad = ::testing::TempDir() + "stream_bad.txt";
  std::FILE* f = std::fopen(bad.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fprintf(f, "# sps-online-stream v1\nadmit 1 2 3\n");
  std::fclose(f);
  err.clear();
  EXPECT_FALSE(LoadStream(bad, s, &err));
  EXPECT_NE(err.find(bad + ":2"), std::string::npos) << err;
  std::remove(bad.c_str());
}

// ---------------------------------------------------------------------------
// Offline/online differentials
// ---------------------------------------------------------------------------

bool SamePartition(const partition::Partition& a,
                   const partition::Partition& b) {
  if (a.num_cores != b.num_cores || a.policy != b.policy ||
      a.tasks.size() != b.tasks.size()) {
    return false;
  }
  auto find = [&](rt::TaskId id) -> const partition::PlacedTask* {
    for (const partition::PlacedTask& pt : b.tasks) {
      if (pt.task.id == id) return &pt;
    }
    return nullptr;
  };
  for (const partition::PlacedTask& pa : a.tasks) {
    const partition::PlacedTask* pb = find(pa.task.id);
    if (pb == nullptr || pa.parts.size() != pb->parts.size()) return false;
    for (std::size_t k = 0; k < pa.parts.size(); ++k) {
      if (pa.parts[k].core != pb->parts[k].core ||
          pa.parts[k].budget != pb->parts[k].budget ||
          pa.parts[k].rel_deadline != pb->parts[k].rel_deadline) {
        return false;
      }
    }
  }
  return true;
}

TEST(OnlineDifferential, AdmitOnlyReplayEqualsOfflineEdfWm) {
  // Feed the offline heuristic order (decreasing utilization) through an
  // ADMIT-only stream: the incremental controller must reproduce the
  // offline EDF-WM partition placement-for-placement — they literally
  // share the per-task step (partition::PlaceEdfTask).
  rt::GeneratorConfig gen;
  gen.num_tasks = 14;
  gen.total_utilization = 3.2;
  rt::Rng rng(2026);
  int compared = 0;
  for (int i = 0; i < 8; ++i) {
    const rt::TaskSet ts = rt::GenerateTaskSet(gen, rng);
    partition::EdfPartitionConfig ecfg;
    ecfg.num_cores = 4;
    ecfg.model = (i % 2 == 0) ? OverheadModel::Zero()
                              : OverheadModel::PaperCoreI7();
    const partition::PartitionResult pr = partition::EdfWm(ts, ecfg);
    if (!pr.success) continue;
    ++compared;

    ReplayConfig rcfg;
    rcfg.controller.admission.num_cores = 4;
    rcfg.controller.admission.model = ecfg.model;
    rcfg.controller.repartition_fallback = false;  // pure incremental
    const WorkloadStream stream =
        MakeAdmitOnlyStream(ts, rt::OrderByDecreasingUtilization(ts));
    const ReplayResult res = ReplayStream(stream, rcfg);
    EXPECT_EQ(res.rejects, 0u) << "set " << i;
    EXPECT_TRUE(SamePartition(res.final_partition, pr.partition))
        << "set " << i << "\noffline:\n" << pr.partition.summary()
        << "online:\n" << res.final_partition.summary();
    // And the replayed placement is verifier-schedulable on its own.
    EXPECT_TRUE(partition::AnalyzePartition(res.final_partition, ecfg.model)
                    .schedulable);
  }
  EXPECT_GE(compared, 3);
}

TEST(OnlineDifferential, AdmitOnlyReplayEqualsOfflineFfdUnderFp) {
  rt::GeneratorConfig gen;
  gen.num_tasks = 12;
  gen.total_utilization = 2.6;
  rt::Rng rng(777);
  int compared = 0;
  for (int i = 0; i < 8; ++i) {
    const rt::TaskSet ts = rt::GenerateTaskSet(gen, rng);
    partition::BinPackConfig bcfg;
    bcfg.num_cores = 4;
    bcfg.model = OverheadModel::Zero();
    const partition::PartitionResult pr =
        partition::BinPackDecreasing(ts, partition::FitPolicy::kFirstFit,
                                     bcfg);
    if (!pr.success) continue;
    ++compared;

    ReplayConfig rcfg;
    rcfg.controller.admission.num_cores = 4;
    rcfg.controller.admission.policy =
        partition::SchedPolicy::kFixedPriority;
    rcfg.controller.repartition_fallback = false;
    const WorkloadStream stream =
        MakeAdmitOnlyStream(ts, rt::OrderByDecreasingUtilization(ts));
    const ReplayResult res = ReplayStream(stream, rcfg);
    EXPECT_EQ(res.rejects, 0u) << "set " << i;
    EXPECT_TRUE(SamePartition(res.final_partition, pr.partition))
        << "set " << i << "\noffline:\n" << pr.partition.summary()
        << "online:\n" << res.final_partition.summary();
  }
  EXPECT_GE(compared, 3);
}

// ---------------------------------------------------------------------------
// Capacity reclaim / churn
// ---------------------------------------------------------------------------

ControllerConfig OneCore() {
  ControllerConfig cfg;
  cfg.admission.num_cores = 1;
  cfg.allow_split = false;
  cfg.repartition_fallback = false;
  return cfg;
}

TEST(OnlineController, LeaveReclaimsCapacityForReAdmit) {
  Controller ctrl(OneCore());
  // Fill the core to 0.9.
  EXPECT_TRUE(ctrl.Admit(MakeTask(0, Millis(30), Millis(100))).accepted);
  EXPECT_TRUE(ctrl.Admit(MakeTask(1, Millis(30), Millis(100))).accepted);
  EXPECT_TRUE(ctrl.Admit(MakeTask(2, Millis(30), Millis(100))).accepted);
  // u = 0.2 cannot fit any more.
  EXPECT_FALSE(ctrl.Admit(MakeTask(3, Millis(20), Millis(100))).accepted);
  EXPECT_EQ(ctrl.resident(), 3u);
  // Retire one resident (u = 0.3): the rejected task now fits.
  EXPECT_TRUE(ctrl.Leave(1));
  EXPECT_FALSE(ctrl.Leave(1));  // already gone
  EXPECT_TRUE(ctrl.Admit(MakeTask(3, Millis(20), Millis(100))).accepted);
  EXPECT_EQ(ctrl.resident(), 3u);
  EXPECT_NEAR(ctrl.total_utilization(), 0.8, 1e-9);
  // No churn was ever charged: plain admits and leaves move nothing.
  EXPECT_EQ(ctrl.churn().total(), 0u);
}

TEST(OnlineController, DuplicateOrInvalidAdmitsAreRejected) {
  Controller ctrl(OneCore());
  EXPECT_TRUE(ctrl.Admit(MakeTask(7, Millis(10), Millis(100))).accepted);
  EXPECT_FALSE(ctrl.Admit(MakeTask(7, Millis(10), Millis(100))).accepted);
  rt::Task bad = MakeTask(8, Millis(0), Millis(100));  // C = 0
  EXPECT_FALSE(ctrl.Admit(bad).accepted);
  EXPECT_FALSE(ctrl.Leave(999));
}

TEST(OnlineController, FallbackRepartitionAdoptsAndChargesChurn) {
  // Adversarial increasing-utilization arrivals on 2 cores: first-fit
  // wedges (0.75 | 0.75 with a 0.4 pending), the offline decreasing-
  // utilization repartition unwedges to (1.0 | 0.9).
  ControllerConfig cfg;
  cfg.admission.num_cores = 2;
  cfg.allow_split = false;
  cfg.repartition_fallback = true;
  Controller ctrl(cfg);
  const Time T = Millis(100);
  const double us[] = {0.2, 0.25, 0.3, 0.35, 0.4};
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(ctrl
                    .Admit(MakeTask(static_cast<rt::TaskId>(i),
                                    Millis(100 * us[i]), T))
                    .accepted)
        << i;
  }
  EXPECT_EQ(ctrl.churn().total(), 0u);
  const AdmitOutcome out = ctrl.Admit(MakeTask(5, Millis(40), T));
  EXPECT_TRUE(out.accepted);
  EXPECT_TRUE(out.via_fallback);
  EXPECT_EQ(ctrl.churn().repartitions, 1u);
  // FFD on {0.4, 0.4, 0.35, 0.3, 0.25, 0.2} -> c0 = {4,5,0}, c1 = {3,2,1}:
  // tasks 1, 2, 4 changed cores.
  EXPECT_EQ(ctrl.churn().moved, 3u);
  EXPECT_NEAR(ctrl.total_utilization(), 1.9, 1e-9);
  // And the adopted placement is verifier-clean.
  EXPECT_TRUE(partition::AnalyzePartition(ctrl.CurrentPartition(),
                                          OverheadModel::Zero())
                  .schedulable);
}

TEST(OnlineController, UnsplitOnLeaveConsolidatesASplitTask) {
  // 3 x u=0.6 on 2 cores forces one split (the EDF-WM wall); retiring a
  // whole task then lets the split consolidate.
  ControllerConfig cfg;
  cfg.admission.num_cores = 2;
  cfg.unsplit_on_leave = true;
  Controller ctrl(cfg);
  const Time T = Millis(100);
  ASSERT_TRUE(ctrl.Admit(MakeTask(0, Millis(60), T)).accepted);
  ASSERT_TRUE(ctrl.Admit(MakeTask(1, Millis(60), T)).accepted);
  const AdmitOutcome split = ctrl.Admit(MakeTask(2, Millis(60), T));
  ASSERT_TRUE(split.accepted);
  ASSERT_GT(split.parts, 1u);
  EXPECT_EQ(ctrl.churn().split, 1u);
  EXPECT_EQ(ctrl.CurrentPartition().num_split_tasks(), 1u);

  EXPECT_TRUE(ctrl.Leave(0));
  EXPECT_EQ(ctrl.churn().unsplit, 1u);
  EXPECT_EQ(ctrl.CurrentPartition().num_split_tasks(), 0u);
  EXPECT_TRUE(partition::AnalyzePartition(ctrl.CurrentPartition(),
                                          OverheadModel::Zero())
                  .schedulable);
}

TEST(OnlineController, UnsplitOnLeaveConsolidatesEveryEligibleSplit) {
  // The consolidation pass is multi-task: one LEAVE can free enough
  // capacity for SEVERAL split residents to come back whole, and the
  // pass loops until it makes no more progress. 3 cores at u=0.8 each
  // force two u=0.25 arrivals to split; retiring one 0.8 task must
  // consolidate BOTH (the recovery-time re-admission shares this path).
  ControllerConfig cfg;
  cfg.admission.num_cores = 3;
  cfg.unsplit_on_leave = true;
  Controller ctrl(cfg);
  const Time T = Millis(100);
  ASSERT_TRUE(ctrl.Admit(MakeTask(0, Millis(80), T)).accepted);
  ASSERT_TRUE(ctrl.Admit(MakeTask(1, Millis(80), T)).accepted);
  ASSERT_TRUE(ctrl.Admit(MakeTask(2, Millis(80), T)).accepted);
  const AdmitOutcome s3 = ctrl.Admit(MakeTask(3, Millis(25), T));
  ASSERT_TRUE(s3.accepted);
  ASSERT_GT(s3.parts, 1u);
  const AdmitOutcome s4 = ctrl.Admit(MakeTask(4, Millis(25), T));
  ASSERT_TRUE(s4.accepted);
  ASSERT_GT(s4.parts, 1u);
  EXPECT_EQ(ctrl.churn().split, 2u);
  EXPECT_EQ(ctrl.CurrentPartition().num_split_tasks(), 2u);

  EXPECT_TRUE(ctrl.Leave(0));
  EXPECT_EQ(ctrl.churn().unsplit, 2u);
  EXPECT_EQ(ctrl.CurrentPartition().num_split_tasks(), 0u);
  EXPECT_TRUE(partition::AnalyzePartition(ctrl.CurrentPartition(),
                                          OverheadModel::Zero())
                  .schedulable);
}

// ---------------------------------------------------------------------------
// Epoch replay
// ---------------------------------------------------------------------------

TEST(OnlineReplay, AcceptedEpochsSimulateWithoutMisses) {
  // The admission analysis is sound: every partition standing at an
  // epoch boundary must execute miss-free.
  StreamConfig scfg;
  scfg.num_admits = 40;
  scfg.span = Millis(4000);
  scfg.seed = 99;
  const WorkloadStream stream = GenerateStream(scfg);

  ReplayConfig rcfg;
  rcfg.controller.admission.num_cores = 4;
  rcfg.controller.admission.model = OverheadModel::PaperCoreI7();
  rcfg.epoch = Millis(500);
  rcfg.validate_by_simulation = true;
  rcfg.validate_sim.horizon = Millis(300);
  const ReplayResult res = ReplayStream(stream, rcfg);
  ASSERT_FALSE(res.epochs.empty());
  std::uint64_t validated = 0;
  for (const EpochStats& e : res.epochs) {
    if (e.validated) ++validated;
    EXPECT_EQ(e.sim_misses, 0u) << "epoch [" << ToMillis(e.start) << ", "
                                << ToMillis(e.end) << ")";
  }
  EXPECT_GT(validated, 0u);
  EXPECT_GT(res.admits, 0u);
  // Epoch totals reconcile with the run totals.
  std::uint64_t admits = 0, rejects = 0, leaves = 0;
  ChurnStats churn;
  for (const EpochStats& e : res.epochs) {
    admits += e.admits;
    rejects += e.rejects;
    leaves += e.leaves;
    churn += e.churn;
  }
  EXPECT_EQ(admits, res.admits);
  EXPECT_EQ(rejects, res.rejects);
  EXPECT_EQ(leaves, res.leaves);
  EXPECT_EQ(churn.total(), res.churn.total());
}

bool SameReplay(const ReplayResult& a, const ReplayResult& b) {
  return a.epochs == b.epochs && a.admits == b.admits &&
         a.rejects == b.rejects && a.leaves == b.leaves &&
         a.churn == b.churn &&
         a.admission.util_rejects == b.admission.util_rejects &&
         a.admission.density_accepts == b.admission.density_accepts &&
         a.admission.full_tests == b.admission.full_tests &&
         a.final_partition.summary() == b.final_partition.summary();
}

TEST(OnlineReplay, StreamBatchesAreBitIdenticalForAnyJobCount) {
  // The §8 determinism contract extended to the online layer: a batch of
  // independent streams produces identical results for jobs = 1 and a
  // wide pool — including the validation simulations, whose seeds derive
  // from (seed, stream index, epoch).
  std::vector<WorkloadStream> streams;
  for (std::uint64_t s = 0; s < 6; ++s) {
    StreamConfig scfg;
    scfg.num_admits = 24;
    scfg.span = Millis(2000);
    scfg.seed = 1000 + s;
    streams.push_back(GenerateStream(scfg));
  }
  ReplayConfig rcfg;
  rcfg.controller.admission.num_cores = 4;
  rcfg.controller.admission.model = OverheadModel::PaperCoreI7();
  rcfg.epoch = Millis(400);
  rcfg.validate_by_simulation = true;
  rcfg.validate_sim.horizon = Millis(100);

  const std::vector<ReplayResult> serial = ReplayBatch(streams, rcfg, 1);
  const std::vector<ReplayResult> wide = ReplayBatch(streams, rcfg, 8);
  ASSERT_EQ(serial.size(), wide.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(SameReplay(serial[i], wide[i])) << "stream " << i;
  }
}

}  // namespace
}  // namespace sps::online
