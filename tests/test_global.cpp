// Tests for the global-scheduling baseline: the ABJ/GFB utilization
// tests, the global simulator engine, and the Dhall effect — the paper's
// §1 reason to prefer (semi-)partitioned scheduling.

#include <gtest/gtest.h>

#include "analysis/global_tests.hpp"
#include "overhead/model.hpp"
#include "partition/binpack.hpp"
#include "rt/generator.hpp"
#include "sim/global_engine.hpp"

namespace sps {
namespace {

using analysis::DhallEffectSet;
using analysis::GlobalEdfGfbTest;
using analysis::GlobalRmAbjBound;
using analysis::GlobalRmAbjTest;
using rt::MakeTask;

TEST(GlobalTests, AbjBoundValues) {
  EXPECT_NEAR(GlobalRmAbjBound(1), 1.0, 1e-12);
  EXPECT_NEAR(GlobalRmAbjBound(2), 1.0, 1e-12);       // 4/4
  EXPECT_NEAR(GlobalRmAbjBound(4), 1.6, 1e-12);       // 16/10
  EXPECT_NEAR(GlobalRmAbjBound(8), 64.0 / 22.0, 1e-12);
}

TEST(GlobalTests, AbjAcceptsLightSets) {
  rt::TaskSet ts;
  for (int i = 0; i < 8; ++i) {
    ts.add(MakeTask(static_cast<rt::TaskId>(i), Millis(10), Millis(100)));
  }
  rt::AssignRateMonotonic(ts);  // U = 0.8, all u_i = 0.1
  EXPECT_TRUE(GlobalRmAbjTest(ts.tasks(), 4));
}

TEST(GlobalTests, AbjRejectsHeavyTask) {
  rt::TaskSet ts;
  ts.add(MakeTask(0, Millis(50), Millis(100)));  // u = 0.5 > 4/10
  rt::AssignRateMonotonic(ts);
  EXPECT_FALSE(GlobalRmAbjTest(ts.tasks(), 4));
}

TEST(GlobalTests, GfbDependsOnUmax) {
  rt::TaskSet light;
  for (int i = 0; i < 30; ++i) {
    light.add(MakeTask(static_cast<rt::TaskId>(i), Millis(10), Millis(100)));
  }
  EXPECT_TRUE(GlobalEdfGfbTest(light.tasks(), 4));  // U=3.0, umax=0.1:
                                                    // 4*0.9+0.1 = 3.7
  rt::TaskSet heavy;
  heavy.add(MakeTask(0, Millis(90), Millis(100)));
  heavy.add(MakeTask(1, Millis(90), Millis(100)));
  heavy.add(MakeTask(2, Millis(90), Millis(100)));
  // U=2.7 <= 4*(0.1)+0.9 = 1.3? No -> reject.
  EXPECT_FALSE(GlobalEdfGfbTest(heavy.tasks(), 4));
}

TEST(GlobalSim, SingleTaskBehavesLikeUniprocessor) {
  rt::TaskSet ts;
  ts.add(MakeTask(0, Millis(2), Millis(10)));
  rt::AssignRateMonotonic(ts);
  sim::GlobalSimConfig cfg;
  cfg.num_cores = 2;
  cfg.horizon = Millis(99);
  const sim::SimResult r = SimulateGlobal(ts, cfg);
  EXPECT_EQ(r.tasks[0].released, 10u);
  EXPECT_EQ(r.tasks[0].completed, 10u);
  EXPECT_EQ(r.total_misses, 0u);
  EXPECT_EQ(r.tasks[0].max_response, Millis(2));
}

TEST(GlobalSim, ParallelismUsesAllCores) {
  // 4 tasks x (C=6ms, T=10ms) on 4 cores: only feasible with one task per
  // core at a time; global dispatch must spread them.
  rt::TaskSet ts;
  for (int i = 0; i < 4; ++i) {
    ts.add(MakeTask(static_cast<rt::TaskId>(i), Millis(6), Millis(10)));
  }
  rt::AssignRateMonotonic(ts);
  sim::GlobalSimConfig cfg;
  cfg.num_cores = 4;
  cfg.horizon = Millis(100);
  const sim::SimResult r = SimulateGlobal(ts, cfg);
  EXPECT_EQ(r.total_misses, 0u);
  for (const auto& c : r.cores) EXPECT_EQ(c.busy_exec, Millis(60));
}

TEST(GlobalSim, PreemptsLowestPriorityCore) {
  // Two long low-priority jobs occupy both cores; a short high-priority
  // release must preempt one of them.
  rt::TaskSet ts;
  ts.add(MakeTask(0, Millis(1), Millis(5)));    // high prio (T=5)
  ts.add(MakeTask(1, Millis(8), Millis(20)));
  ts.add(MakeTask(2, Millis(8), Millis(20)));
  rt::AssignRateMonotonic(ts);
  sim::GlobalSimConfig cfg;
  cfg.num_cores = 2;
  cfg.horizon = Millis(20);
  const sim::SimResult r = SimulateGlobal(ts, cfg);
  EXPECT_EQ(r.total_misses, 0u);
  EXPECT_GE(r.total_preemptions, 1u);
  EXPECT_EQ(r.tasks[0].max_response, Millis(1));
}

TEST(GlobalSim, EdfPolicyOrdersByDeadline) {
  rt::TaskSet ts;
  // Same period, distinct offsets impossible (synchronous), so use
  // distinct deadlines via periods: EDF runs the 4ms-deadline task before
  // the 20ms one even though ids/priorities say otherwise.
  ts.add(MakeTask(7, Millis(2), Millis(20)));
  ts.add(MakeTask(3, Millis(2), Millis(4)));
  rt::AssignRateMonotonic(ts);
  sim::GlobalSimConfig cfg;
  cfg.num_cores = 1;
  cfg.policy = sim::GlobalPolicy::kGlobalEdf;
  cfg.horizon = Millis(20);
  const sim::SimResult r = SimulateGlobal(ts, cfg);
  EXPECT_EQ(r.total_misses, 0u);
  // The short-deadline task ran first: its response is exactly C.
  EXPECT_EQ(r.tasks[1].max_response, Millis(2));
}

TEST(GlobalSim, MigrationsCountedAndChargeCpmd) {
  rt::TaskSet ts;
  ts.add(MakeTask(0, Millis(1), Millis(4)));   // ping: preempts
  ts.add(MakeTask(1, Millis(7), Millis(16)));  // victim: bounced around
  ts.add(MakeTask(2, Millis(7), Millis(16)));
  rt::AssignRateMonotonic(ts);
  sim::GlobalSimConfig cfg;
  cfg.num_cores = 2;
  cfg.horizon = Millis(160);
  cfg.overheads = overhead::OverheadModel::PaperCoreI7();
  const sim::SimResult r = SimulateGlobal(ts, cfg);
  EXPECT_EQ(r.total_misses, 0u);
  EXPECT_GT(r.total_preemptions, 0u);
  Time cpmd = 0;
  for (const auto& c : r.cores) cpmd += c.cpmd_charged;
  EXPECT_GT(cpmd, 0);
}

TEST(GlobalSim, DhallEffect) {
  // The classic failure: U barely above 1 on m=4 cores, global RM misses;
  // FFD partitioned RM schedules the same set — the paper's §1 argument
  // for (semi-)partitioned scheduling, executed.
  const rt::TaskSet ts = DhallEffectSet(4);
  sim::GlobalSimConfig g;
  g.num_cores = 4;
  g.horizon = Millis(500);
  const sim::SimResult global_run = SimulateGlobal(ts, g);
  EXPECT_GT(global_run.total_misses, 0u);

  partition::BinPackConfig bp;
  bp.num_cores = 4;
  bp.admission = partition::AdmissionTest::kRta;
  const partition::PartitionResult pr = partition::Ffd(ts, bp);
  ASSERT_TRUE(pr.success) << pr.failure_reason;
  sim::SimConfig pcfg;
  pcfg.horizon = Millis(500);
  const sim::SimResult part_run = Simulate(pr.partition, pcfg);
  EXPECT_EQ(part_run.total_misses, 0u);
}

TEST(GlobalSim, GlobalEdfAlsoSuffersDhall) {
  // Dhall & Liu's original observation covers global EDF as well: at the
  // synchronous release the short tasks' deadlines (100ms) precede the
  // heavy task's (102ms), so they hog every core and the heavy task
  // cannot finish 100ms of work in the 98ms that remain. Only a
  // (semi-)partitioned placement fixes this.
  const rt::TaskSet ts = DhallEffectSet(4);
  sim::GlobalSimConfig g;
  g.num_cores = 4;
  g.policy = sim::GlobalPolicy::kGlobalEdf;
  g.horizon = Millis(500);
  const sim::SimResult r = SimulateGlobal(ts, g);
  EXPECT_GT(r.total_misses, 0u);
}

TEST(GlobalSim, AbjAcceptedSetsDoNotMiss) {
  // Soundness spot-check of the ABJ test against the engine.
  rt::GeneratorConfig gen;
  gen.num_tasks = 12;
  gen.total_utilization = 1.5;  // below ABJ bound 1.6 for m=4
  gen.max_task_utilization = 0.38;  // below per-task cap 0.4
  rt::Rng rng(31337);
  for (int i = 0; i < 5; ++i) {
    const rt::TaskSet ts = rt::GenerateTaskSet(gen, rng);
    if (!GlobalRmAbjTest(ts.tasks(), 4)) continue;
    sim::GlobalSimConfig cfg;
    cfg.num_cores = 4;
    cfg.horizon = Millis(2000);
    const sim::SimResult r = SimulateGlobal(ts, cfg);
    EXPECT_EQ(r.total_misses, 0u) << "set " << i;
  }
}

}  // namespace
}  // namespace sps
