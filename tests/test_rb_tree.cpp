// Unit + property tests for the red-black-tree sleep queue.

#include "containers/rb_tree.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <vector>

namespace sps::containers {
namespace {

using Tree = RbTree<long, int>;

TEST(RbTree, StartsEmpty) {
  Tree t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(t.validate());
}

TEST(RbTree, InsertAndMin) {
  Tree t;
  t.insert(30, 3);
  t.insert(10, 1);
  t.insert(20, 2);
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.min_key(), 10);
  EXPECT_EQ(t.min_value(), 1);
  EXPECT_TRUE(t.validate());
}

TEST(RbTree, PopMinDrainsInKeyOrder) {
  Tree t;
  const std::vector<long> keys = {5, 3, 9, 1, 7, 2, 8, 0, 6, 4};
  for (long k : keys) t.insert(k, static_cast<int>(k * 10));
  for (long expect = 0; expect < 10; ++expect) {
    auto [k, v] = t.pop_min();
    EXPECT_EQ(k, expect);
    EXPECT_EQ(v, expect * 10);
    EXPECT_TRUE(t.validate());
  }
  EXPECT_TRUE(t.empty());
}

TEST(RbTree, DuplicateKeysAreFifo) {
  Tree t;
  t.insert(5, 1);
  t.insert(5, 2);
  t.insert(5, 3);
  EXPECT_EQ(t.pop_min().second, 1);
  EXPECT_EQ(t.pop_min().second, 2);
  EXPECT_EQ(t.pop_min().second, 3);
}

TEST(RbTree, EraseByHandleKeepsOtherHandlesValid) {
  Tree t;
  std::vector<Tree::handle> hs;
  for (long k = 0; k < 20; ++k) hs.push_back(t.insert(k, static_cast<int>(k)));
  // Erase all even keys via their handles, in a scrambled order.
  const std::vector<int> order = {18, 2, 10, 0, 14, 6, 4, 12, 16, 8};
  for (int i : order) {
    EXPECT_EQ(t.erase(hs[static_cast<size_t>(i)]), i);
    EXPECT_TRUE(t.validate());
  }
  // Odd keys remain, reachable through their ORIGINAL handles.
  for (long k = 1; k < 20; k += 2) {
    EXPECT_EQ(hs[static_cast<size_t>(k)]->key, k);
  }
  EXPECT_EQ(t.size(), 10u);
  for (long expect = 1; expect < 20; expect += 2) {
    EXPECT_EQ(t.pop_min().first, expect);
  }
}

TEST(RbTree, FindGeReturnsCeiling) {
  Tree t;
  for (long k : {10, 20, 30, 40}) t.insert(k, 0);
  ASSERT_NE(t.find_ge(15), nullptr);
  EXPECT_EQ(t.find_ge(15)->key, 20);
  EXPECT_EQ(t.find_ge(20)->key, 20);
  EXPECT_EQ(t.find_ge(41), nullptr);
  EXPECT_EQ(t.find_ge(-100)->key, 10);
}

TEST(RbTree, NextIteratesInOrder) {
  Tree t;
  for (long k : {4, 2, 6, 1, 3, 5, 7}) t.insert(k, 0);
  Tree::handle h = t.min_handle();
  std::vector<long> seen;
  while (h != nullptr) {
    seen.push_back(h->key);
    h = t.next(h);
  }
  EXPECT_EQ(seen, (std::vector<long>{1, 2, 3, 4, 5, 6, 7}));
}

TEST(RbTree, ClearThenReuse) {
  Tree t;
  for (long k = 0; k < 100; ++k) t.insert(k, 0);
  t.clear();
  EXPECT_TRUE(t.empty());
  EXPECT_TRUE(t.validate());
  t.insert(1, 1);
  EXPECT_EQ(t.min_key(), 1);
}

TEST(RbTree, MoveConstruction) {
  Tree a;
  a.insert(1, 10);
  a.insert(2, 20);
  Tree b(std::move(a));
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(b.pop_min().second, 10);
}

// ---- randomized property sweep ------------------------------------------

class RbTreeRandomized : public ::testing::TestWithParam<unsigned> {};

TEST_P(RbTreeRandomized, MatchesReferenceMultimapUnderRandomOps) {
  std::mt19937 rng(GetParam());
  Tree t;
  std::multimap<long, int> ref;
  struct Live {
    Tree::handle h;
    long key;
    int val;
  };
  std::vector<Live> live;  // metadata kept outside the tree: a popped
                           // node's handle dangles and must not be read

  int next_val = 0;
  for (int step = 0; step < 3000; ++step) {
    const int action = static_cast<int>(rng() % 100);
    if (action < 50 || ref.empty()) {
      const long k = static_cast<long>(rng() % 500);
      live.push_back(Live{t.insert(k, next_val), k, next_val});
      ref.emplace(k, next_val);
      ++next_val;
    } else if (action < 75) {
      auto [k, v] = t.pop_min();
      EXPECT_EQ(k, ref.begin()->first);
      auto range = ref.equal_range(k);
      auto it = std::find_if(range.first, range.second,
                             [&](const auto& p) { return p.second == v; });
      ASSERT_NE(it, range.second);
      ref.erase(it);
      live.erase(std::find_if(live.begin(), live.end(),
                              [&](const Live& l) {
                                return l.key == k && l.val == v;
                              }));
    } else if (!live.empty()) {
      const std::size_t idx = rng() % live.size();
      const Live l = live[idx];
      EXPECT_EQ(t.erase(l.h), l.val);
      auto range = ref.equal_range(l.key);
      auto it = std::find_if(range.first, range.second,
                             [&](const auto& p) { return p.second == l.val; });
      ASSERT_NE(it, range.second);
      ref.erase(it);
      live.erase(live.begin() + static_cast<long>(idx));
    }
    EXPECT_EQ(t.size(), ref.size());
    if (step % 256 == 0) {
      ASSERT_TRUE(t.validate());
    }
  }
  ASSERT_TRUE(t.validate());
  while (!t.empty()) {
    auto [k, v] = t.pop_min();
    EXPECT_EQ(k, ref.begin()->first);
    ref.erase(ref.begin());
  }
  EXPECT_TRUE(ref.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RbTreeRandomized,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u));

}  // namespace
}  // namespace sps::containers
