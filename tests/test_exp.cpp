// Tests for the experiment driver (exp/acceptance.*): configuration
// plumbing, output formats, determinism, and the algorithm dispatch.

#include <gtest/gtest.h>

#include <algorithm>

#include "exp/acceptance.hpp"
#include "overhead/model.hpp"
#include "rt/taskset.hpp"

namespace sps::exp {
namespace {

TEST(AcceptanceConfig, DefaultGridCoversThePapersBand) {
  const auto grid = AcceptanceConfig::DefaultGrid();
  ASSERT_FALSE(grid.empty());
  EXPECT_DOUBLE_EQ(grid.front(), 0.60);
  EXPECT_NEAR(grid.back(), 1.0, 1e-9);
  for (std::size_t i = 1; i < grid.size(); ++i) {
    EXPECT_NEAR(grid[i] - grid[i - 1], 0.025, 1e-9);
  }
}

TEST(Acceptance, AlgorithmNames) {
  EXPECT_STREQ(ToString(Algo::kFfd), "FFD");
  EXPECT_STREQ(ToString(Algo::kWfd), "WFD");
  EXPECT_STREQ(ToString(Algo::kBfd), "BFD");
  EXPECT_STREQ(ToString(Algo::kSpa1), "FP-TS(SPA1)");
  EXPECT_STREQ(ToString(Algo::kSpa2), "FP-TS(SPA2)");
}

TEST(Acceptance, RunAlgorithmDispatchesEveryAlgo) {
  rt::TaskSet ts;
  ts.add(rt::MakeTask(0, Millis(1), Millis(10)));
  rt::AssignRateMonotonic(ts);
  for (const Algo a : {Algo::kFfd, Algo::kWfd, Algo::kBfd, Algo::kSpa1,
                       Algo::kSpa2}) {
    const auto r =
        RunAlgorithm(a, ts, 2, overhead::OverheadModel::Zero());
    EXPECT_TRUE(r.success) << ToString(a);
    EXPECT_FALSE(r.algorithm.empty());
  }
}

TEST(Acceptance, DeterministicAcrossRuns) {
  AcceptanceConfig cfg;
  cfg.num_cores = 2;
  cfg.num_tasks = 6;
  cfg.norm_util_points = {0.7, 0.9};
  cfg.sets_per_point = 8;
  cfg.algorithms = {Algo::kFfd, Algo::kSpa1};
  const auto a = RunAcceptance(cfg);
  const auto b = RunAcceptance(cfg);
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].acceptance, b.points[i].acceptance);
  }
}

TEST(Acceptance, SeedChangesOutcomesSomewhere) {
  AcceptanceConfig cfg;
  cfg.num_cores = 2;
  cfg.num_tasks = 6;
  cfg.norm_util_points = {0.9};  // contested band
  cfg.sets_per_point = 20;
  cfg.algorithms = {Algo::kFfd};
  const auto a = RunAcceptance(cfg);
  cfg.seed += 1;
  const auto b = RunAcceptance(cfg);
  // Not a hard guarantee per-point, but at 20 sets in the contested band
  // identical acceptance for different seeds would indicate the seed is
  // ignored. Compare with tolerance: they may coincide, so just assert
  // both are valid probabilities and the run completed.
  for (const auto& res : {a, b}) {
    ASSERT_EQ(res.points.size(), 1u);
    EXPECT_GE(res.points[0].acceptance[0], 0.0);
    EXPECT_LE(res.points[0].acceptance[0], 1.0);
  }
}

TEST(Acceptance, TableAndCsvWellFormed) {
  AcceptanceConfig cfg;
  cfg.num_cores = 2;
  cfg.num_tasks = 5;
  cfg.norm_util_points = {0.65, 0.95};
  cfg.sets_per_point = 5;
  cfg.algorithms = {Algo::kFfd, Algo::kSpa2};
  const auto res = RunAcceptance(cfg);

  const std::string table = res.Table();
  EXPECT_NE(table.find("norm.util"), std::string::npos);
  EXPECT_NE(table.find("FFD"), std::string::npos);
  EXPECT_NE(table.find("0.650"), std::string::npos);
  EXPECT_NE(table.find("0.950"), std::string::npos);

  const std::string csv = res.Csv();
  EXPECT_NE(csv.find("norm_util,FFD,FP-TS(SPA2),mean_splits"),
            std::string::npos);
  // Header + one row per point.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);

  const auto w = res.WeightedAcceptance();
  ASSERT_EQ(w.size(), 2u);
  for (const double x : w) {
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 1.0);
  }
  // Acceptance at 0.65 should dominate 0.95 for each algorithm.
  for (std::size_t ai = 0; ai < 2; ++ai) {
    EXPECT_GE(res.points[0].acceptance[ai] + 1e-9,
              res.points[1].acceptance[ai]);
  }
}

TEST(Acceptance, MeanSplitsOnlyCountsSpaAcceptances) {
  AcceptanceConfig cfg;
  cfg.num_cores = 2;
  cfg.num_tasks = 5;
  cfg.norm_util_points = {0.5};
  cfg.sets_per_point = 5;
  cfg.algorithms = {Algo::kFfd};  // no SPA algorithm in the mix
  const auto res = RunAcceptance(cfg);
  EXPECT_DOUBLE_EQ(res.points[0].mean_splits, 0.0);
}

}  // namespace
}  // namespace sps::exp
