// Tests for the analysis layer: utilization bounds, exact RTA (with
// jitter and release costs), and the overhead-aware inflation.

#include <gtest/gtest.h>

#include <vector>

#include "analysis/bounds.hpp"
#include "analysis/overhead_aware.hpp"
#include "analysis/rta.hpp"
#include "overhead/model.hpp"
#include "rt/task.hpp"

namespace sps::analysis {
namespace {

using overhead::OverheadModel;

TEST(Bounds, LiuLaylandKnownValues) {
  EXPECT_DOUBLE_EQ(LiuLaylandBound(1), 1.0);
  EXPECT_NEAR(LiuLaylandBound(2), 0.8284, 1e-4);
  EXPECT_NEAR(LiuLaylandBound(3), 0.7798, 1e-4);
  EXPECT_NEAR(LiuLaylandBound(4), 0.7568, 1e-4);
  EXPECT_NEAR(LiuLaylandBound(1000), kLiuLaylandLimit, 1e-3);
}

TEST(Bounds, LiuLaylandMonotoneDecreasing) {
  for (std::size_t n = 1; n < 64; ++n) {
    EXPECT_GT(LiuLaylandBound(n), LiuLaylandBound(n + 1));
  }
}

TEST(Bounds, HyperbolicDominatesLiuLayland) {
  // A set accepted by L&L is always accepted by the hyperbolic bound.
  const std::vector<double> u = {0.25, 0.25, 0.25};  // sum 0.75 < 0.7798
  EXPECT_TRUE(LiuLaylandTest(u));
  EXPECT_TRUE(HyperbolicTest(u));
  // The classic case hyperbolic accepts but L&L rejects.
  const std::vector<double> v = {0.5, 0.5};  // sum 1.0 > 0.8284
  EXPECT_FALSE(LiuLaylandTest(v));
  // prod(1.5 * 1.5) = 2.25 > 2 -> also rejected; pick asymmetric instead:
  const std::vector<double> w = {0.6, 0.25};  // sum 0.85 > 0.8284
  EXPECT_FALSE(LiuLaylandTest(w));
  EXPECT_TRUE(HyperbolicTest(w));  // 1.6 * 1.25 = 2.0
}

// ---- exact RTA ------------------------------------------------------------

RtaTask T(Time c, Time t, rt::Priority p, Time d = 0) {
  RtaTask x;
  x.wcet = c;
  x.period = t;
  x.deadline = d == 0 ? t : d;
  x.priority = p;
  return x;
}

TEST(Rta, TextbookExample) {
  // Classic: C=(1,2,3), T=(4,6,10): R1=1, R2=3, R3=10 (schedulable).
  std::vector<RtaTask> ts = {T(1, 4, 0), T(2, 6, 1), T(3, 10, 2)};
  const RtaResult r = AnalyzeCore(ts);
  EXPECT_TRUE(r.schedulable);
  EXPECT_EQ(r.response[0], 1);
  EXPECT_EQ(r.response[1], 3);
  EXPECT_EQ(r.response[2], 10);
}

TEST(Rta, DetectsUnschedulable) {
  // Overload: C=(2,3,4), T=(4,6,8) -> U = 1.5. Already tau1 fails:
  // R = 3 + 2*ceil(R/4) -> 7 > 6.
  std::vector<RtaTask> ts = {T(2, 4, 0), T(3, 6, 1), T(4, 8, 2)};
  const RtaResult r = AnalyzeCore(ts);
  EXPECT_FALSE(r.schedulable);
  EXPECT_EQ(r.first_failure, 1u);
  EXPECT_EQ(r.response[1], kTimeNever);
  EXPECT_EQ(r.response[2], kTimeNever);
}

TEST(Rta, ExactlyFullUtilizationHarmonicIsSchedulable) {
  // Harmonic periods reach U=1: C=(1,1,2), T=(2,4,8).
  std::vector<RtaTask> ts = {T(1, 2, 0), T(1, 4, 1), T(2, 8, 2)};
  const RtaResult r = AnalyzeCore(ts);
  EXPECT_TRUE(r.schedulable);
  EXPECT_EQ(r.response[2], 8);
}

TEST(Rta, JitterIncreasesInterferenceOnOthers) {
  // Higher-priority task with jitter can hit twice in a short window.
  std::vector<RtaTask> ts = {T(2, 10, 0), T(7, 12, 1)};
  EXPECT_TRUE(AnalyzeCore(ts).schedulable);
  ts[0].jitter = 9;  // arrivals at R+9 -> two hits within R2's window
  const RtaResult r = AnalyzeCore(ts);
  EXPECT_EQ(r.response[1], 11);  // 7 + 2*2
}

TEST(Rta, JitterCountsAgainstOwnDeadline) {
  std::vector<RtaTask> ts = {T(5, 10, 0)};
  ts[0].jitter = 6;  // R + J = 11 > D = 10
  EXPECT_FALSE(AnalyzeCore(ts).schedulable);
  ts[0].jitter = 5;
  EXPECT_TRUE(AnalyzeCore(ts).schedulable);
}

TEST(Rta, ReleaseCostChargedForLowerPriorityTasksToo) {
  // tau0 (high prio) is delayed by tau1's release overhead even though
  // tau1 cannot preempt it.
  std::vector<RtaTask> ts = {T(5, 10, 0), T(1, 10, 1)};
  EXPECT_EQ(AnalyzeCore(ts).response[0], 5);
  ts[1].release_cost = 2;
  EXPECT_EQ(AnalyzeCore(ts).response[0], 7);
}

TEST(Rta, InterferenceOnlyEntriesAreNotChecked) {
  // An interference-only entry with an impossible deadline must not fail
  // the analysis, but must still delay others.
  std::vector<RtaTask> ts = {T(4, 10, 0), T(5, 10, 1)};
  ts[0].check = false;
  ts[0].deadline = 1;  // would fail if checked
  const RtaResult r = AnalyzeCore(ts);
  EXPECT_TRUE(r.schedulable);
  EXPECT_EQ(r.response[1], 9);
}

TEST(Rta, ResponseMonotoneInWcet) {
  for (Time c = 1; c <= 6; ++c) {
    std::vector<RtaTask> ts = {T(c, 10, 0), T(3, 15, 1)};
    const Time prev_c = c - 1;
    if (prev_c >= 1) {
      std::vector<RtaTask> prev = {T(prev_c, 10, 0), T(3, 15, 1)};
      EXPECT_LE(AnalyzeCore(prev).response[1], AnalyzeCore(ts).response[1]);
    }
  }
}

// ---- arbitrary-deadline (busy-window) RTA ---------------------------------

TEST(RtaArbitrary, MatchesSingleJobAnalysisForConstrainedSets) {
  std::vector<RtaTask> ts = {T(1, 4, 0), T(2, 6, 1), T(3, 10, 2)};
  for (std::size_t i = 0; i < ts.size(); ++i) {
    EXPECT_EQ(ResponseTimeArbitrary(ts, i, Millis(1)),
              ResponseTime(ts, i, Millis(1)));
  }
}

TEST(RtaArbitrary, LehoczkyExample) {
  // THE classic busy-window example: (C=26,T=70) + (C=62,T=100,D=118).
  // The level-2 busy window is 694 long and holds SEVEN jobs of tau2 with
  // responses 114, 102, 116, 104, 118, 106, 94 — the worst (118) is the
  // FIFTH instance; any single-job analysis underestimates at 114.
  std::vector<RtaTask> ts = {T(26, 70, 0), T(62, 100, 1, 118)};
  EXPECT_EQ(ResponseTimeArbitrary(ts, 1, Millis(1)), 118);
  EXPECT_TRUE(AnalyzeCore(ts).schedulable);  // exactly meets D = 118
  ts[1].deadline = 117;
  EXPECT_FALSE(AnalyzeCore(ts).schedulable);
}

TEST(RtaArbitrary, BacklogCarriesAcrossPeriodBoundary) {
  // (C=52,T=100) hp + (C=52,T=140,D=300) lp: the first job finishes at
  // 156 — after its own period — so the second job starts backlogged
  // (window 260, responses 156 and 120).
  std::vector<RtaTask> ts = {T(52, 100, 0), T(52, 140, 1, 300)};
  const Time r = ResponseTimeArbitrary(ts, 1, Millis(10));
  EXPECT_EQ(r, 156);
  EXPECT_GT(r, ts[1].period);
  const RtaResult res = AnalyzeCore(ts);
  EXPECT_TRUE(res.schedulable);
  EXPECT_EQ(res.response[1], 156);
}

TEST(RtaArbitrary, DetectsOverloadByWindowDivergence) {
  std::vector<RtaTask> ts = {T(60, 100, 0), T(60, 100, 1, 500)};
  EXPECT_EQ(ResponseTimeArbitrary(ts, 1, Millis(1)), kTimeNever);
  EXPECT_FALSE(AnalyzeCore(ts).schedulable);
}

TEST(RtaArbitrary, DeadlineBeyondPeriodAcceptsWhatConstrainedCannot) {
  // U = 1.0 exactly, non-harmonic: tau2's busy window spans 3 jobs with
  // responses (11, 12, 10) — infeasible under D = T = 10, fine at D = 20.
  std::vector<RtaTask> ts = {T(3, 6, 0), T(5, 10, 1, 20)};
  const RtaResult res = AnalyzeCore(ts);
  EXPECT_TRUE(res.schedulable) << res.response[1];
  EXPECT_EQ(res.response[1], 12);
  EXPECT_GT(res.response[1], ts[1].period);  // genuinely arbitrary
}

// ---- overhead-aware inflation ----------------------------------------------

CoreEntry E(Time exec, Time period, rt::Priority prio,
            EntryKind kind = EntryKind::kNormal) {
  CoreEntry e;
  e.exec = exec;
  e.period = period;
  e.deadline = period;
  e.priority = prio;
  e.kind = kind;
  return e;
}

TEST(OverheadAware, ZeroModelIsIdentity) {
  const OverheadModel zero = OverheadModel::Zero();
  std::vector<CoreEntry> entries = {E(Millis(1), Millis(10), 0),
                                    E(Millis(2), Millis(20), 1)};
  const auto inflated = InflateCore(entries, zero);
  ASSERT_EQ(inflated.size(), 2u);
  EXPECT_EQ(inflated[0].wcet, Millis(1));
  EXPECT_EQ(inflated[0].release_cost, 0);
  EXPECT_EQ(inflated[1].wcet, Millis(2));
}

TEST(OverheadAware, PaperModelInflatesEverything) {
  const OverheadModel m = OverheadModel::PaperCoreI7();
  std::vector<CoreEntry> entries = {E(Millis(1), Millis(10), 0)};
  const auto inflated = InflateCore(entries, m);
  EXPECT_GT(inflated[0].wcet, Millis(1));
  EXPECT_GT(inflated[0].release_cost, 0);
  // Inflation must contain at least the start path (sch + cnt1) and the
  // finish path (sch + cnt2).
  const Time floor = m.sched_overhead(1, true) + m.ctxsw_in_overhead() +
                     m.sched_overhead(1, false) +
                     m.finish_overhead_normal(1);
  EXPECT_GE(inflated[0].wcet - Millis(1), floor);
}

TEST(OverheadAware, MigratedEntriesPayMigrationCpmd) {
  const OverheadModel m = OverheadModel::PaperCoreI7();
  const Time normal = InflatedExec(E(Millis(1), Millis(10), 0), m, 4);
  CoreEntry tail = E(Millis(1), Millis(10), 0, EntryKind::kTail);
  const Time tail_cost = InflatedExec(tail, m, 4);
  // Tail pays migration CPMD on top and a remote (not local) sleep insert.
  EXPECT_GT(tail_cost, normal);
}

TEST(OverheadAware, BodyChargesRemoteInsertAtDestinationSize) {
  const OverheadModel m = OverheadModel::PaperCoreI7();
  CoreEntry small = E(Millis(1), Millis(10), 0, EntryKind::kBodyFirst);
  small.dest_queue_size = 4;
  CoreEntry big = small;
  big.dest_queue_size = 64;
  EXPECT_LT(InflatedExec(small, m, 4), InflatedExec(big, m, 4));
}

TEST(OverheadAware, ReleaseCostDiffersByArrivalType) {
  const OverheadModel m = OverheadModel::PaperCoreI7();
  std::vector<CoreEntry> entries = {
      E(Millis(1), Millis(10), 0),                        // timer release
      E(Millis(1), Millis(10), 1, EntryKind::kTail)};     // migration
  const auto inflated = InflateCore(entries, m);
  EXPECT_EQ(inflated[0].release_cost, m.release_overhead(2));
  EXPECT_EQ(inflated[1].release_cost, m.sched_overhead(2, true));
}

TEST(OverheadAware, ScaledModelScalesMonotonically) {
  std::vector<CoreEntry> entries = {E(Millis(1), Millis(5), 0),
                                    E(Millis(1), Millis(8), 1),
                                    E(Millis(2), Millis(20), 2)};
  Time last_response = 0;
  for (const double scale : {0.0, 1.0, 2.0, 5.0}) {
    const OverheadModel m = OverheadModel::PaperScaled(scale);
    const RtaResult r = AnalyzeCoreWithOverheads(entries, m);
    ASSERT_TRUE(r.schedulable) << "scale " << scale;
    EXPECT_GE(r.response[2], last_response);
    last_response = r.response[2];
  }
}

}  // namespace
}  // namespace sps::analysis
