// Tests for the sorted-vector sleep-queue ablation container. Held to the
// same behavioural contract as RbTree (minus stable handles).

#include "containers/sorted_vector_queue.hpp"

#include <gtest/gtest.h>

#include <random>
#include <map>

namespace sps::containers {
namespace {

using Queue = SortedVectorQueue<long, int>;

TEST(SortedVectorQueue, StartsEmpty) {
  Queue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_TRUE(q.validate());
}

TEST(SortedVectorQueue, PopMinDrainsInOrder) {
  Queue q;
  for (long k : {5, 2, 9, 1, 7}) q.insert(k, static_cast<int>(k) * 10);
  EXPECT_EQ(q.min_key(), 1);
  EXPECT_EQ(q.min_value(), 10);
  long last = -1;
  while (!q.empty()) {
    auto [k, v] = q.pop_min();
    EXPECT_GT(k, last);
    EXPECT_EQ(v, k * 10);
    last = k;
    EXPECT_TRUE(q.validate());
  }
}

TEST(SortedVectorQueue, DuplicatesAreFifo) {
  Queue q;
  q.insert(5, 1);
  q.insert(5, 2);
  q.insert(5, 3);
  EXPECT_EQ(q.pop_min().second, 1);
  EXPECT_EQ(q.pop_min().second, 2);
  EXPECT_EQ(q.pop_min().second, 3);
}

TEST(SortedVectorQueue, EraseByKeyValue) {
  Queue q;
  q.insert(1, 10);
  q.insert(2, 20);
  q.insert(2, 21);
  EXPECT_TRUE(q.erase(2, 20));
  EXPECT_FALSE(q.erase(2, 20));  // already gone
  EXPECT_FALSE(q.erase(9, 0));   // never existed
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pop_min().second, 10);
  EXPECT_EQ(q.pop_min().second, 21);
}

TEST(SortedVectorQueue, MatchesReferenceMultimap) {
  std::mt19937 rng(77);
  Queue q;
  std::multimap<long, int> ref;
  int val = 0;
  for (int step = 0; step < 1500; ++step) {
    if (rng() % 100 < 55 || ref.empty()) {
      const long k = static_cast<long>(rng() % 300);
      q.insert(k, val);
      ref.emplace(k, val);
      ++val;
    } else {
      auto [k, v] = q.pop_min();
      EXPECT_EQ(k, ref.begin()->first);
      // FIFO among duplicates matches multimap insertion order.
      EXPECT_EQ(v, ref.begin()->second);
      ref.erase(ref.begin());
    }
    EXPECT_EQ(q.size(), ref.size());
  }
  EXPECT_TRUE(q.validate());
}

}  // namespace
}  // namespace sps::containers
