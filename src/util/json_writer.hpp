#pragma once
// Minimal JSON emitter for the machine-readable bench result files
// (BENCH_acceptance.json / BENCH_queues.json — the perf trajectory the
// CI tracks across PRs). A value-at-a-time writer with explicit
// object/array scoping and automatic comma placement; not a general
// serializer, just enough structure for flat metric dumps.

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

// The one write-and-verify implementation behind every text artifact the
// tools emit (bench JSON, Perfetto documents, metrics reports) lives in
// util/file_io.hpp since the durability PR made it atomic (temp-file +
// rename); this include keeps every existing util::WriteTextFile caller
// compiling unchanged.
#include "util/file_io.hpp"

namespace sps::util {

class JsonWriter {
 public:
  JsonWriter& BeginObject() {
    Separator();
    out_ += '{';
    first_.push_back(true);
    return *this;
  }
  JsonWriter& EndObject() {
    first_.pop_back();
    out_ += '}';
    return *this;
  }
  JsonWriter& BeginArray() {
    Separator();
    out_ += '[';
    first_.push_back(true);
    return *this;
  }
  JsonWriter& EndArray() {
    first_.pop_back();
    out_ += ']';
    return *this;
  }

  /// Object key; the next Begin*/Value call is its value.
  JsonWriter& Key(std::string_view k) {
    Separator();
    Quote(k);
    out_ += ':';
    pending_value_ = true;
    return *this;
  }

  JsonWriter& Value(std::string_view s) {
    Separator();
    Quote(s);
    return *this;
  }
  JsonWriter& Value(const char* s) { return Value(std::string_view(s)); }
  JsonWriter& Value(bool b) {
    Separator();
    out_ += b ? "true" : "false";
    return *this;
  }
  JsonWriter& Value(double d) {
    Separator();
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.9g", d);
    out_ += buf;
    return *this;
  }
  JsonWriter& Value(std::int64_t v) {
    Separator();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& Value(std::uint64_t v) {
    Separator();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& Value(int v) { return Value(static_cast<std::int64_t>(v)); }
  JsonWriter& Value(unsigned v) {
    return Value(static_cast<std::uint64_t>(v));
  }

  /// Splice pre-serialized JSON as the next element of the enclosing
  /// container (comma placement handled like any Value). `raw` must be a
  /// non-empty, comma-separated run of valid JSON values — the streaming
  /// Perfetto writer uses this to graft its separately-buffered counter
  /// events into the main event array.
  JsonWriter& Raw(std::string_view raw) {
    Separator();
    out_ += raw;
    return *this;
  }

  [[nodiscard]] const std::string& str() const { return out_; }

  /// Write to `path` (with a trailing newline); returns success.
  [[nodiscard]] bool WriteFile(const std::string& path) const {
    return WriteTextFile(path, out_);
  }

 private:
  /// Comma before every element of the enclosing container except the
  /// first — unless this token completes a Key's pending value.
  void Separator() {
    if (pending_value_) {
      pending_value_ = false;
      return;
    }
    if (!first_.empty()) {
      if (!first_.back()) out_ += ',';
      first_.back() = false;
    }
  }

  void Quote(std::string_view s) {
    out_ += '"';
    for (const char c : s) {
      switch (c) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\n': out_ += "\\n"; break;
        case '\t': out_ += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out_ += buf;
          } else {
            out_ += c;
          }
      }
    }
    out_ += '"';
  }

  std::string out_;
  std::vector<bool> first_;
  bool pending_value_ = false;
};

}  // namespace sps::util
