#pragma once
// Minimal leveled stderr logger for the service-side narration (recovery
// progress, validation notes, heartbeats). Everything here writes to
// stderr ONLY: stdout and every file artifact the tools emit stay
// byte-comparable (the determinism firewall of DESIGN.md §15), while the
// narration gains an off switch and a --verbose tier.
//
// Level resolution: SetGlobalLogLevel() wins (the CLI's --verbose /
// --quiet mapping); otherwise the SPS_LOG_LEVEL environment variable
// (error | warn | info | debug) is read once on first use; the default
// is kInfo, which keeps the pre-existing narration visible.

#include <cstdarg>
#include <string_view>

namespace sps::util {

enum class LogLevel : int {
  kError = 0,
  kWarn = 1,
  kInfo = 2,
  kDebug = 3,
};

/// Parse "error"/"warn"/"info"/"debug" (case-sensitive). Returns false
/// and leaves *out untouched on anything else.
bool ParseLogLevel(std::string_view s, LogLevel* out);

/// The process-wide threshold: messages above it are dropped.
[[nodiscard]] LogLevel GlobalLogLevel();
void SetGlobalLogLevel(LogLevel level);

/// printf-style message to stderr, prefixed "[sps <level>] ", newline
/// appended. Dropped (cheaply) when `level` is above the threshold.
void Log(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

}  // namespace sps::util
