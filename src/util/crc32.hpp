#pragma once
// CRC-32 (IEEE 802.3: reflected, polynomial 0xEDB88320, init and final
// xor 0xFFFFFFFF) — the integrity frame of every durability artifact
// (online/durability.* checkpoint and journal records, the optional
// stream-file footer). Table-driven, one 1 KiB constexpr table computed
// at compile time; the classic check vector CRC32("123456789") ==
// 0xCBF43926 is pinned by tests/test_durability.cpp.

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace sps::util {

namespace detail {

consteval std::array<std::uint32_t, 256> MakeCrc32Table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table =
    MakeCrc32Table();

}  // namespace detail

/// Incremental CRC-32 accumulator (for framing multi-part payloads
/// without concatenating them first).
class Crc32 {
 public:
  void Update(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    std::uint32_t c = state_;
    for (std::size_t i = 0; i < n; ++i) {
      c = detail::kCrc32Table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
    }
    state_ = c;
  }
  void Update(std::string_view s) { Update(s.data(), s.size()); }

  [[nodiscard]] std::uint32_t value() const { return state_ ^ 0xFFFFFFFFu; }

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

[[nodiscard]] inline std::uint32_t Crc32Of(const void* data,
                                           std::size_t n) {
  Crc32 c;
  c.Update(data, n);
  return c.value();
}

[[nodiscard]] inline std::uint32_t Crc32Of(std::string_view s) {
  return Crc32Of(s.data(), s.size());
}

}  // namespace sps::util
