#pragma once
// Slab / free-list arena — the single allocation story behind every hot
// path of the simulator (DESIGN.md §9). A discrete-event run performs
// millions of queue-node and job-object churn cycles at a near-steady
// live population; paying the global allocator per node (PR-2 did, via
// per-node `new` in the heap/tree backends and a `make_unique<Job>` per
// release) puts malloc/free on the measured path of every scheduling
// event. The arena replaces that with:
//
//   * slabs: storage is carved from geometrically growing chunks, so a
//     population of n live objects costs O(log n) real allocations over
//     the arena's lifetime — effectively O(1) in steady state;
//   * an intrusive free list: a destroyed object's storage holds the
//     next-pointer, so acquire/release are a pointer swap each, no
//     headers, no per-object metadata;
//   * stable addresses: slabs never move or shrink, so an object pointer
//     is valid until destroy() — exactly the stable-handle guarantee the
//     queue concept requires of every backend (queue_traits.hpp).
//
// create()/destroy() run real constructors/destructors (objects may own
// resources); the free list only ever threads through DEAD storage.
// The arena is single-owner and NOT thread-safe — the sharded simulator
// gives each core its own arenas and never crosses them (DESIGN.md §9).

#include <cassert>
#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace sps::util {

template <typename T>
class SlabArena {
  // A slot is raw storage big enough for T and for the free-list link.
  union Slot {
    Slot* next_free;
    alignas(T) unsigned char storage[sizeof(T)];
  };

 public:
  SlabArena() = default;
  SlabArena(const SlabArena&) = delete;
  SlabArena& operator=(const SlabArena&) = delete;
  SlabArena(SlabArena&& other) noexcept
      : slabs_(std::move(other.slabs_)),
        free_(std::exchange(other.free_, nullptr)),
        live_(std::exchange(other.live_, 0)),
        capacity_(std::exchange(other.capacity_, 0)),
        next_slab_size_(other.next_slab_size_) {}
  SlabArena& operator=(SlabArena&& other) noexcept {
    if (this != &other) {
      assert(live_ == 0 && "arena replaced while objects are live");
      slabs_ = std::move(other.slabs_);
      free_ = std::exchange(other.free_, nullptr);
      live_ = std::exchange(other.live_, 0);
      capacity_ = std::exchange(other.capacity_, 0);
      next_slab_size_ = other.next_slab_size_;
    }
    return *this;
  }

  /// Storage-only teardown: the OWNER must destroy() every live object
  /// first (the containers do, in their clear()/destructor walks) — the
  /// arena cannot know which slots hold constructed objects. Exception:
  /// trivially destructible objects may simply be abandoned (the
  /// kernel's recycled job slots are, at end of run).
  ~SlabArena() {
    assert((live_ == 0 || std::is_trivially_destructible_v<T>) &&
           "arena destroyed with live non-trivial objects");
  }

  template <typename... Args>
  [[nodiscard]] T* create(Args&&... args) {
    Slot* s = AcquireSlot();
    T* p = ::new (static_cast<void*>(s->storage)) T(std::forward<Args>(args)...);
    ++live_;
    return p;
  }

  void destroy(T* p) noexcept {
    assert(p != nullptr && live_ > 0);
    p->~T();
    Slot* s = reinterpret_cast<Slot*>(p);
    s->next_free = free_;
    free_ = s;
    --live_;
  }

  [[nodiscard]] std::size_t live() const { return live_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  Slot* AcquireSlot() {
    if (free_ == nullptr) Grow();
    Slot* s = free_;
    free_ = s->next_free;
    return s;
  }

  void Grow() {
    const std::size_t n = next_slab_size_;
    // Geometric growth, capped: big enough to amortize, small enough not
    // to overshoot a steady population by more than a slab.
    next_slab_size_ = std::min<std::size_t>(n * 2, kMaxSlab);
    auto slab = std::make_unique<Slot[]>(n);
    // Thread the fresh slots in address order so first allocations walk
    // the slab sequentially (cache-friendly warm-up).
    for (std::size_t i = n; i > 0; --i) {
      slab[i - 1].next_free = free_;
      free_ = &slab[i - 1];
    }
    capacity_ += n;
    slabs_.push_back(std::move(slab));
  }

  static constexpr std::size_t kFirstSlab = 64;
  static constexpr std::size_t kMaxSlab = 8192;

  std::vector<std::unique_ptr<Slot[]>> slabs_;
  Slot* free_ = nullptr;
  std::size_t live_ = 0;
  std::size_t capacity_ = 0;
  std::size_t next_slab_size_ = kFirstSlab;
};

}  // namespace sps::util
