#include "util/thread_pool.hpp"

#include <algorithm>

namespace sps::util {

ThreadPool::ThreadPool(unsigned num_threads) {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  if (num_threads == 0) num_threads = hw;
  // Guard against nonsense from CLI/env parsing (e.g. --jobs=-1 wrapped
  // to ~4e9): more workers than 4x the hardware never helps a
  // compute-bound sweep and thread spawning would die trying.
  num_threads = std::min(num_threads, 4 * hw);
  counters_ = std::make_unique<WorkerCounters[]>(num_threads + 1);
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::WorkerLoop(std::size_t worker) {
  WorkerCounters& mine = counters_[worker];
  std::uint64_t seen_gen = 0;
  for (;;) {
    std::function<void()> oneoff;
    Batch* batch = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stop_ || !oneoffs_.empty() ||
               (current_ != nullptr && batch_gen_ != seen_gen);
      });
      if (stop_) return;
      if (!oneoffs_.empty()) {
        oneoff = std::move(oneoffs_.back());
        oneoffs_.pop_back();
      } else {
        // Join the in-flight batch exactly once per generation. The
        // batch's attach count keeps its caller from destroying it
        // while this worker still holds the pointer.
        seen_gen = batch_gen_;
        batch = current_;
        ++batch->attached;
      }
    }
    if (oneoff) {
      oneoff();  // packaged_task: exceptions land in the future
      mine.oneoffs.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    mine.batches.fetch_add(1, std::memory_order_relaxed);
    RunIndices(*batch, mine);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --batch->attached;
    }
    done_cv_.notify_all();
  }
}

void ThreadPool::RunIndices(Batch& b, WorkerCounters& counters) {
  std::uint64_t ran = 0;
  for (;;) {
    const std::size_t i = b.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= b.end) break;
    ++ran;
    try {
      (*b.body)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!b.first_error) b.first_error = std::current_exception();
    }
    // Count attempts (success or not): the batch is done when every
    // index has RUN, which is what the drain guarantee means.
    b.completed.fetch_add(1, std::memory_order_release);
  }
  // One relaxed add per BATCH, not per index — the gauges must not tax
  // the fetch-add claim loop they observe.
  if (ran > 0) counters.indices.fetch_add(ran, std::memory_order_relaxed);
}

void ThreadPool::ParallelFor(
    std::size_t n, const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  Batch b;
  b.body = &body;
  b.end = n;
  {
    std::lock_guard<std::mutex> lock(mu_);
    current_ = &b;
    ++batch_gen_;
    ++batches_submitted_;
  }
  work_cv_.notify_all();
  // The caller is a worker too; its indices land in the shared caller
  // slot (workers_.size()).
  RunIndices(b, counters_[workers_.size()]);
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] {
      return b.attached == 0 &&
             b.completed.load(std::memory_order_acquire) == n;
    });
    // Retire the batch, but only if a concurrent caller has not already
    // published its own — their batch must stay joinable.
    if (current_ == &b) current_ = nullptr;
  }
  if (b.first_error) std::rethrow_exception(b.first_error);
}

void ParallelFor(unsigned jobs, std::size_t n,
                 const std::function<void(std::size_t)>& body) {
  if (jobs == 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  // `jobs` counts TOTAL threads working; the caller is one of them.
  if (jobs == 0) jobs = std::max(1u, std::thread::hardware_concurrency());
  if (jobs == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  ThreadPool pool(jobs - 1);
  pool.ParallelFor(n, body);
}

std::uint64_t ThreadPool::PoolStats::stolen_indices() const {
  std::uint64_t n = 0;
  for (const Worker& w : workers) n += w.indices;
  return n;
}

std::uint64_t ThreadPool::PoolStats::total_indices() const {
  return stolen_indices() + caller.indices;
}

double ThreadPool::PoolStats::steal_ratio() const {
  const std::uint64_t total = total_indices();
  if (total == 0) return 0.0;
  return static_cast<double>(stolen_indices()) / static_cast<double>(total);
}

ThreadPool::PoolStats ThreadPool::Stats() const {
  PoolStats s;
  s.workers.resize(workers_.size());
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    s.workers[i].indices = counters_[i].indices.load(std::memory_order_relaxed);
    s.workers[i].batches = counters_[i].batches.load(std::memory_order_relaxed);
    s.workers[i].oneoffs = counters_[i].oneoffs.load(std::memory_order_relaxed);
  }
  const WorkerCounters& c = counters_[workers_.size()];
  s.caller.indices = c.indices.load(std::memory_order_relaxed);
  s.caller.batches = c.batches.load(std::memory_order_relaxed);
  s.caller.oneoffs = c.oneoffs.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.batches = batches_submitted_;
    s.oneoffs = oneoffs_submitted_;
    s.queue_peak = queue_peak_;
  }
  return s;
}

ThreadPool& SharedPool() {
  // At least one worker even on a single-hardware-thread host: callers
  // (the sharded simulator) are correct for ANY worker count, but a
  // zero-worker pool would silently run every batch inline and leave
  // the cross-thread paths untested wherever CI happens to be narrow.
  static ThreadPool pool(
      std::max(2u, std::thread::hardware_concurrency()) - 1);
  return pool;
}

}  // namespace sps::util
