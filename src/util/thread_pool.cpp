#include "util/thread_pool.hpp"

#include <algorithm>

namespace sps::util {

ThreadPool::ThreadPool(unsigned num_threads) {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  if (num_threads == 0) num_threads = hw;
  // Guard against nonsense from CLI/env parsing (e.g. --jobs=-1 wrapped
  // to ~4e9): more workers than 4x the hardware never helps a
  // compute-bound sweep and thread spawning would die trying.
  num_threads = std::min(num_threads, 4 * hw);
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  std::uint64_t seen_gen = 0;
  for (;;) {
    std::function<void()> oneoff;
    Batch* batch = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stop_ || !oneoffs_.empty() ||
               (current_ != nullptr && batch_gen_ != seen_gen);
      });
      if (stop_) return;
      if (!oneoffs_.empty()) {
        oneoff = std::move(oneoffs_.back());
        oneoffs_.pop_back();
      } else {
        // Join the in-flight batch exactly once per generation. The
        // batch's attach count keeps its caller from destroying it
        // while this worker still holds the pointer.
        seen_gen = batch_gen_;
        batch = current_;
        ++batch->attached;
      }
    }
    if (oneoff) {
      oneoff();  // packaged_task: exceptions land in the future
      continue;
    }
    RunIndices(*batch);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --batch->attached;
    }
    done_cv_.notify_all();
  }
}

void ThreadPool::RunIndices(Batch& b) {
  for (;;) {
    const std::size_t i = b.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= b.end) return;
    try {
      (*b.body)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!b.first_error) b.first_error = std::current_exception();
    }
    // Count attempts (success or not): the batch is done when every
    // index has RUN, which is what the drain guarantee means.
    b.completed.fetch_add(1, std::memory_order_release);
  }
}

void ThreadPool::ParallelFor(
    std::size_t n, const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  Batch b;
  b.body = &body;
  b.end = n;
  {
    std::lock_guard<std::mutex> lock(mu_);
    current_ = &b;
    ++batch_gen_;
  }
  work_cv_.notify_all();
  RunIndices(b);  // the caller is a worker too
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] {
      return b.attached == 0 &&
             b.completed.load(std::memory_order_acquire) == n;
    });
    // Retire the batch, but only if a concurrent caller has not already
    // published its own — their batch must stay joinable.
    if (current_ == &b) current_ = nullptr;
  }
  if (b.first_error) std::rethrow_exception(b.first_error);
}

void ParallelFor(unsigned jobs, std::size_t n,
                 const std::function<void(std::size_t)>& body) {
  if (jobs == 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  // `jobs` counts TOTAL threads working; the caller is one of them.
  if (jobs == 0) jobs = std::max(1u, std::thread::hardware_concurrency());
  if (jobs == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  ThreadPool pool(jobs - 1);
  pool.ParallelFor(n, body);
}

ThreadPool& SharedPool() {
  // At least one worker even on a single-hardware-thread host: callers
  // (the sharded simulator) are correct for ANY worker count, but a
  // zero-worker pool would silently run every batch inline and leave
  // the cross-thread paths untested wherever CI happens to be narrow.
  static ThreadPool pool(
      std::max(2u, std::thread::hardware_concurrency()) - 1);
  return pool;
}

}  // namespace sps::util
