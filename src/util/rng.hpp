#pragma once
// Small deterministic RNG utilities shared by the batch harness and the
// simulation kernel.
//
// DeriveSeed is the seed-derivation scheme of the whole system
// (DESIGN.md §8): mix (base, a, b) into an independent 64-bit stream id
// with a splitmix64-style finalizer. Distinct coordinates give
// decorrelated streams and the mapping is pure, so WHERE a unit of work
// runs never matters — the property behind the bit-identical parallel
// experiment sweeps AND the per-task RNG streams of the sharded
// simulator (each task draws from rngs seeded by (config seed, task
// index), never from a shared generator whose draw order would depend on
// the global event interleaving).
//
// SplitMix64 is the matching generator: 16 bytes of state, one
// finalizer step per draw, models std::uniform_random_bit_generator so
// the std <random> distributions accept it. The kernel keeps two per
// task (execution time, inter-arrival), where a mersenne twister's 2.5KB
// state per stream would be waste.

#include <cstdint>
#include <limits>

namespace sps::util {

[[nodiscard]] constexpr std::uint64_t DeriveSeed(std::uint64_t base,
                                                 std::uint64_t a,
                                                 std::uint64_t b) {
  // splitmix64 finalizer over a coordinate-mixed state. The +1 offsets
  // keep (0, 0) from collapsing onto the bare base seed.
  std::uint64_t z = base;
  z += 0x9e3779b97f4a7c15ull * (a + 1);
  z += 0xd1b54a32d192ed03ull * (b + 1);
  z ^= z >> 30;
  z *= 0xbf58476d1ce4e5b9ull;
  z ^= z >> 27;
  z *= 0x94d049bb133111ebull;
  z ^= z >> 31;
  return z;
}

/// Vigna's splitmix64: full-period 64-bit generator, passes BigCrush.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  SplitMix64() = default;
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr result_type operator()() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

 private:
  std::uint64_t state_ = 0;
};

}  // namespace sps::util
