#include "util/file_io.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace sps::util {

namespace {

void SetError(std::string* error, const std::string& path,
              const char* verb) {
  if (error != nullptr) {
    *error = path + ": " + verb + ": " + std::strerror(errno);
  }
}

/// fsync the directory containing `path`, so the rename that just landed
/// there survives power loss (POSIX requires syncing the directory entry
/// separately from the file's own data).
bool FsyncParentDir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

bool WriteAtomicImpl(const std::string& path, const std::string& bytes,
                     bool trailing_newline, bool durable,
                     std::string* error) {
  // The temp file must live in the SAME directory as the target:
  // rename(2) is only atomic within a filesystem.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) {
    SetError(error, path, "cannot open for writing");
    return false;
  }
  bool wrote =
      std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  if (wrote && trailing_newline) wrote = std::fputc('\n', f) != EOF;
  if (wrote) wrote = std::fflush(f) == 0;
  if (!wrote) {
    SetError(error, path, "write failed");
    std::fclose(f);
    std::remove(tmp.c_str());
    return false;
  }
  if (durable && ::fsync(::fileno(f)) != 0) {
    SetError(error, path, "fsync failed");
    std::fclose(f);
    std::remove(tmp.c_str());
    return false;
  }
  if (std::fclose(f) != 0) {
    SetError(error, path, "close failed");
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    SetError(error, path, "rename failed");
    std::remove(tmp.c_str());
    return false;
  }
  if (durable && !FsyncParentDir(path)) {
    SetError(error, path, "directory fsync failed");
    return false;
  }
  return true;
}

}  // namespace

bool WriteTextFile(const std::string& path, const std::string& body,
                   std::string* error) {
  return WriteAtomicImpl(path, body, /*trailing_newline=*/true,
                         /*durable=*/false, error);
}

bool WriteFileAtomic(const std::string& path, const std::string& bytes,
                     bool durable, std::string* error) {
  return WriteAtomicImpl(path, bytes, /*trailing_newline=*/false, durable,
                         error);
}

bool ReadFileBytes(const std::string& path, std::string& out,
                   std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    SetError(error, path, "cannot open for reading");
    return false;
  }
  out.clear();
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  const bool ok = std::ferror(f) == 0;
  if (!ok) SetError(error, path, "read failed");
  std::fclose(f);
  return ok;
}

}  // namespace sps::util
