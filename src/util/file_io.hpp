#pragma once
// Crash-consistent file writing (DESIGN.md §14). Every text artifact the
// tools emit (bench JSON, Perfetto traces, metrics reports, stream
// captures) and every durability artifact (checkpoints) goes through the
// atomic temp-file + rename protocol here: the bytes are written to
// `<path>.tmp` in the SAME directory, optionally fsync'd, and rename(2)'d
// over the target — so a reader (or a crash) never observes a
// half-written file at `path`; it sees the old content or the new,
// nothing in between. On any failure the temp file is removed, the
// original target is left untouched, and a non-null `error` receives the
// failing path and errno — no caller ever reports "could not write"
// without saying WHY.

#include <string>

namespace sps::util {

/// Write `body` plus a trailing newline to `path` atomically (temp-file +
/// rename). Returns success; on failure `error` (if non-null) gets the
/// path + errno rendering and `path` is untouched.
[[nodiscard]] bool WriteTextFile(const std::string& path,
                                 const std::string& body,
                                 std::string* error = nullptr);

/// Atomic byte-exact write (no trailing newline appended). With `durable`
/// the temp file is fsync'd before the rename and the containing
/// directory fsync'd after it — the crash-durability contract the
/// checkpoint writer needs; without it the write is still ATOMIC (no torn
/// file) but may be lost wholesale on power failure.
[[nodiscard]] bool WriteFileAtomic(const std::string& path,
                                   const std::string& bytes, bool durable,
                                   std::string* error = nullptr);

/// Slurp a whole file into `out` (binary-exact). Returns success; on
/// failure `error` (if non-null) gets the path + errno rendering.
[[nodiscard]] bool ReadFileBytes(const std::string& path, std::string& out,
                                 std::string* error = nullptr);

}  // namespace sps::util
