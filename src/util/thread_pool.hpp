#pragma once
// Fixed worker thread pool for the batch-experiment harness (DESIGN.md
// §8). Two entry points:
//
//   * ParallelFor(n, body) — the steady-state path the experiment
//     drivers use. ONE shared batch descriptor lives on the caller's
//     stack; workers (and the calling thread, which participates) claim
//     indices with an atomic fetch-add. No queue nodes, no closures, no
//     futures — zero per-index allocation, so a sweep of thousands of
//     task-set simulations schedules work at the cost of one atomic op
//     each.
//   * Submit(f) — convenience futures for one-off tasks (allocates a
//     shared task state; not the hot path).
//
// Exception semantics: a throwing ParallelFor body never abandons the
// batch — every remaining index still runs (the pool DRAINS), then the
// FIRST captured exception is rethrown on the caller. This is what makes
// a 10'000-simulation sweep abortable without leaving detached workers
// touching dead stack frames.
//
// Determinism contract: ParallelFor promises nothing about index order —
// callers must write results only into per-index slots. Every harness
// built on top (sim/batch.*, exp/acceptance.*) derives per-unit RNG
// seeds so outputs are bit-identical for ANY thread count, including 0.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace sps::util {

class ThreadPool {
 public:
  /// Spawn `num_threads` workers (0 = one per hardware thread). The pool
  /// is fixed-size for its lifetime; workers sleep when idle.
  explicit ThreadPool(unsigned num_threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Worker count (the calling thread additionally participates in
  /// ParallelFor, so total concurrency is num_threads() + 1).
  [[nodiscard]] unsigned num_threads() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Run body(i) for every i in [0, n); returns when all n completed.
  /// The calling thread participates. See header: drains on exceptions,
  /// rethrows the first one; body must only write per-index state.
  void ParallelFor(std::size_t n,
                   const std::function<void(std::size_t)>& body);

  /// One-off task with a future (allocates; not the steady-state path).
  template <typename F>
  auto Submit(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      oneoffs_.push_back([task] { (*task)(); });
      ++oneoffs_submitted_;
      if (oneoffs_.size() > queue_peak_) queue_peak_ = oneoffs_.size();
    }
    work_cv_.notify_one();
    return fut;
  }

  /// Pool observability counters (DESIGN.md §16): how the work actually
  /// spread across workers. Scheduling-dependent, hence NOT
  /// deterministic — wall-channel data only (stderr, --profile-out,
  /// Perfetto tracks), never a byte-compared artifact.
  struct PoolStats {
    struct Worker {
      std::uint64_t indices = 0;  ///< ParallelFor indices executed
      std::uint64_t batches = 0;  ///< batches this worker joined
      std::uint64_t oneoffs = 0;  ///< Submit() tasks executed
    };
    std::vector<Worker> workers;  ///< one row per pool worker
    Worker caller;  ///< aggregate over submitting callers' participation
    std::uint64_t batches = 0;     ///< ParallelFor batches published
    std::uint64_t oneoffs = 0;     ///< Submit() tasks enqueued
    std::uint64_t queue_peak = 0;  ///< deepest one-off backlog observed

    /// Indices executed by pool workers — "stolen" from the caller, who
    /// would have run them all inline in a poolless world.
    [[nodiscard]] std::uint64_t stolen_indices() const;
    [[nodiscard]] std::uint64_t total_indices() const;
    /// stolen/total in [0,1]; 0 when no indices ran.
    [[nodiscard]] double steal_ratio() const;
  };
  [[nodiscard]] PoolStats Stats() const;

 private:
  /// One in-flight ParallelFor. Lives on the submitting caller's stack;
  /// `attached` (guarded by mu_) keeps it alive until every worker that
  /// saw it has let go. The attach count is per-batch so CONCURRENT
  /// callers don't block on each other's workers: each caller waits
  /// only for its own batch's stragglers (since PR 3 the sharded
  /// simulator makes concurrent ParallelFor on the shared pool an
  /// ordinary occurrence).
  struct Batch {
    const std::function<void(std::size_t)>* body = nullptr;
    std::size_t end = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> completed{0};
    std::size_t attached = 0;        ///< workers inside; guarded by mu_
    std::exception_ptr first_error;  ///< guarded by mu_
  };

  /// Per-worker counters, padded so neighbouring workers' relaxed
  /// increments never share a cache line. Slot workers_.size() is the
  /// shared CALLER slot (ParallelFor callers are transient threads — a
  /// per-caller row would be unbounded).
  struct alignas(64) WorkerCounters {
    std::atomic<std::uint64_t> indices{0};
    std::atomic<std::uint64_t> batches{0};
    std::atomic<std::uint64_t> oneoffs{0};
  };

  void WorkerLoop(std::size_t worker);
  /// Claim and run indices until the batch is exhausted, charging the
  /// work to `counters`.
  void RunIndices(Batch& b, WorkerCounters& counters);

  mutable std::mutex mu_;  ///< mutable: Stats() is logically const
  std::condition_variable work_cv_;  ///< workers: new batch / one-off / stop
  std::condition_variable done_cv_;  ///< caller: batch fully finished
  std::vector<std::function<void()>> oneoffs_;
  Batch* current_ = nullptr;
  std::uint64_t batch_gen_ = 0;  ///< bumped per batch so workers join once
  std::uint64_t batches_submitted_ = 0;  ///< guarded by mu_
  std::uint64_t oneoffs_submitted_ = 0;  ///< guarded by mu_
  std::uint64_t queue_peak_ = 0;         ///< guarded by mu_
  bool stop_ = false;
  std::unique_ptr<WorkerCounters[]> counters_;  ///< workers + caller slot
  std::vector<std::thread> workers_;
};

/// Run body over [0, n) with `jobs` total threads of concurrency:
/// jobs == 1 runs inline (no pool, no synchronization), jobs == 0 uses
/// one thread per hardware thread. Results are identical for any value —
/// the serial path IS the specification of the parallel one. Spins up a
/// TRANSIENT pool per call (microseconds — noise next to any experiment
/// sweep); hold a ThreadPool yourself if that ever shows up.
void ParallelFor(unsigned jobs, std::size_t n,
                 const std::function<void(std::size_t)>& body);

/// Process-wide lazily-created pool with one worker per hardware thread
/// minus one (the caller of ParallelFor participates, so total
/// concurrency is the hardware). The sharded simulator's round protocol
/// (DESIGN.md §9) dispatches two small batches per window — spawning a
/// transient pool per simulation would put thread creation on the
/// measured path, so those batches run here. Concurrent ParallelFor
/// calls on this pool are safe (each caller drains its own batch) but
/// serialize worker help; callers needing guaranteed width should own a
/// ThreadPool.
ThreadPool& SharedPool();

}  // namespace sps::util
