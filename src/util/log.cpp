#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace sps::util {

namespace {

const char* LevelName(LogLevel l) {
  switch (l) {
    case LogLevel::kError: return "error";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kInfo: return "info";
    case LogLevel::kDebug: return "debug";
  }
  return "?";
}

LogLevel LevelFromEnv() {
  LogLevel l = LogLevel::kInfo;
  if (const char* env = std::getenv("SPS_LOG_LEVEL")) {
    (void)ParseLogLevel(env, &l);  // unparsable values keep the default
  }
  return l;
}

/// -1 = unset (resolve from the environment on first read).
std::atomic<int> g_level{-1};

}  // namespace

bool ParseLogLevel(std::string_view s, LogLevel* out) {
  if (s == "error") *out = LogLevel::kError;
  else if (s == "warn") *out = LogLevel::kWarn;
  else if (s == "info") *out = LogLevel::kInfo;
  else if (s == "debug") *out = LogLevel::kDebug;
  else return false;
  return true;
}

LogLevel GlobalLogLevel() {
  int v = g_level.load(std::memory_order_relaxed);
  if (v < 0) {
    v = static_cast<int>(LevelFromEnv());
    g_level.store(v, std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(v);
}

void SetGlobalLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void Log(LogLevel level, const char* fmt, ...) {
  if (level > GlobalLogLevel()) return;
  std::va_list args;
  va_start(args, fmt);
  std::fprintf(stderr, "[sps %s] ", LevelName(level));
  std::vfprintf(stderr, fmt, args);
  std::fputc('\n', stderr);
  va_end(args);
}

}  // namespace sps::util
