#include "overhead/calibrate.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <memory>
#include <vector>

#include "cache/cpmd.hpp"
#include "containers/queue_traits.hpp"

namespace sps::overhead {

namespace {

using Clock = std::chrono::steady_clock;

Time Now() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}

/// Payload sized like a scheduler queue entry (a task_struct pointer's
/// worth of bookkeeping), so node size is realistic. The ordering key
/// lives in the queue concept's key, not in the payload.
struct FakeJob {
  std::uint64_t payload[6];
};

/// Max-after-trim over collected samples (the paper's "maximal measured
/// duration", with an optional guard against timer-interrupt outliers).
Time TrimmedMax(std::vector<Time>& samples, double trim) {
  std::sort(samples.begin(), samples.end());
  const auto keep = static_cast<std::size_t>(
      static_cast<double>(samples.size()) * (1.0 - trim));
  const std::size_t idx = keep == 0 ? 0 : keep - 1;
  return samples[std::min(idx, samples.size() - 1)];
}

/// Sweep a buffer to push the queue's nodes out of the private cache
/// levels — the user-space stand-in for a cross-core ("remote") access.
class CacheEvictor {
 public:
  explicit CacheEvictor(std::size_t bytes) : buf_(bytes, 1) {}

  void evict() {
    volatile unsigned char sink = 0;
    for (std::size_t i = 0; i < buf_.size(); i += 64) {
      buf_[i] = static_cast<unsigned char>(buf_[i] + 1);
      sink = static_cast<unsigned char>(sink + buf_[i]);
    }
    (void)sink;
  }

 private:
  std::vector<unsigned char> buf_;
};

std::uint64_t SplitMix(std::uint64_t& s) {
  s += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

template <typename MakeQueue, typename TimedOp, typename Restore>
Time MeasureOp(int samples, double trim, bool remote,
               CacheEvictor& evictor, MakeQueue make, TimedOp op,
               Restore restore) {
  auto queue = make();
  std::vector<Time> durations;
  durations.reserve(static_cast<std::size_t>(samples));
  for (int i = 0; i < samples; ++i) {
    if (remote) evictor.evict();
    const Time t0 = Now();
    op(queue, i);
    const Time t1 = Now();
    restore(queue, i);
    durations.push_back(t1 - t0);
  }
  return TrimmedMax(durations, trim);
}

// Any queue backend is measured through the SAME concept interface the
// simulator schedules with (queue_traits.hpp) — the measurement and the
// scheduler exercise identical code paths. Q is one of the adapters, keyed
// by a synthetic priority / wake-up time.

/// One "add" measurement cell: timed push into a queue of n-1 elements,
/// restored by erasing through the returned handle (the scheduler's
/// release path). Fills the (n, locality) cells of `base`.
template <typename Q>
Table1::Row MeasureAdd(const CalibrationConfig& cfg, CacheEvictor& evictor,
                       std::size_t n, bool both_localities, std::uint64_t seed0,
                       Table1::Row base) {
  std::uint64_t seed = seed0;
  auto make = [&] {
    auto q = std::make_unique<Q>();
    for (std::size_t i = 0; i + 1 < n; ++i) {
      q->push(SplitMix(seed), FakeJob{});
    }
    return q;
  };
  typename Q::handle last{};
  auto op = [&](std::unique_ptr<Q>& q, int i) {
    last = q->push(SplitMix(seed) + static_cast<std::uint64_t>(i), FakeJob{});
  };
  auto restore = [&](std::unique_ptr<Q>& q, int) { q->erase(last); };

  const Time local =
      MeasureOp(cfg.samples, cfg.outlier_trim, false, evictor, make, op,
                restore);
  Time remote = 0;
  if (both_localities) {
    remote = MeasureOp(cfg.samples, cfg.outlier_trim, true, evictor, make,
                       op, restore);
    remote = std::max(remote, local);  // coherence can only add cost
  }
  if (n == 4) {
    base.local_n4 = local;
    base.remote_n4 = remote;
  } else {
    base.local_n64 = local;
    base.remote_n64 = remote;
  }
  return base;
}

/// One "delete" measurement cell: timed pop_min from a queue of n
/// elements, restored by re-pushing the popped pair (the scheduler's
/// dispatch path). Deletes are only ever local (a core pops its own
/// queues), matching the N/A cells of the paper's table.
template <typename Q>
Table1::Row MeasureDel(const CalibrationConfig& cfg, CacheEvictor& evictor,
                       std::size_t n, std::uint64_t seed0, Table1::Row base) {
  std::uint64_t seed = seed0;
  auto make = [&] {
    auto q = std::make_unique<Q>();
    for (std::size_t i = 0; i < n; ++i) q->push(SplitMix(seed), FakeJob{});
    return q;
  };
  std::pair<std::uint64_t, FakeJob> popped;
  auto op = [&](std::unique_ptr<Q>& q, int) { popped = q->pop_min(); };
  auto restore = [&](std::unique_ptr<Q>& q, int) {
    q->push(popped.first, popped.second);
  };

  const Time local = MeasureOp(cfg.samples, cfg.outlier_trim, false, evictor,
                               make, op, restore);
  if (n == 4) {
    base.local_n4 = local;
  } else {
    base.local_n64 = local;
  }
  return base;
}

/// Both rows (add + del) of one queue's half of Table 1.
template <typename Q>
void MeasureQueueRows(const CalibrationConfig& cfg, CacheEvictor& evictor,
                      std::uint64_t add_seed, std::uint64_t del_seed,
                      Table1::Row& add, Table1::Row& del) {
  add = MeasureAdd<Q>(cfg, evictor, 4, true, add_seed, {});
  add = MeasureAdd<Q>(cfg, evictor, 64, true, add_seed, add);
  del = MeasureDel<Q>(cfg, evictor, 4, del_seed, {});
  del = MeasureDel<Q>(cfg, evictor, 64, del_seed, del);
  del.remote_applicable = false;
}

// ---- Handler-body emulations -------------------------------------------
// Stand-ins for the paper's release()/sch()/cnt_swth() bodies with the
// queue accesses stripped out (those are measured above). Sized to do the
// same kind of work the kernel handlers do.

struct TaskControlBlock {
  std::uint64_t next_release;
  std::uint64_t abs_deadline;
  std::uint64_t period;
  std::uint64_t budget;
  std::uint32_t prio;
  std::uint32_t core;
  std::uint64_t stats[4];
};

struct CpuContext {
  std::uint64_t regs[32];   // GPRs + segment bookkeeping
  std::uint64_t fpstate[64];  // x87/SSE save area stand-in
};

void ReleaseBody(TaskControlBlock& tcb) {
  tcb.next_release += tcb.period;
  tcb.abs_deadline = tcb.next_release + tcb.period;
  tcb.budget = tcb.stats[0];
  ++tcb.stats[1];
}

std::uint32_t SchedBody(const TaskControlBlock* tcbs, std::size_t n,
                        std::uint32_t running_prio) {
  // Priority comparison + preemption decision, as in sch().
  std::uint32_t best = UINT32_MAX;
  std::uint32_t best_idx = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (tcbs[i].prio < best) {
      best = tcbs[i].prio;
      best_idx = static_cast<std::uint32_t>(i);
    }
  }
  return best < running_prio ? best_idx : UINT32_MAX;
}

void CtxSwitchBody(CpuContext& from, CpuContext& to, CpuContext& cpu) {
  std::memcpy(&from, &cpu, sizeof(CpuContext));  // store old context
  std::memcpy(&cpu, &to, sizeof(CpuContext));    // load new context
}

}  // namespace

Table1 MeasureTable1(const CalibrationConfig& cfg) {
  CacheEvictor evictor(cfg.eviction_buffer_bytes);
  Table1 t;
  containers::WithQueueBackend(cfg.ready_backend, [&](auto rb) {
    using ReadyQ =
        containers::QueueOf<decltype(rb)::value, std::uint64_t, FakeJob>;
    MeasureQueueRows<ReadyQ>(cfg, evictor, 42, 99, t.ready_add, t.ready_del);
  });
  containers::WithQueueBackend(cfg.sleep_backend, [&](auto sb) {
    using SleepQ =
        containers::QueueOf<decltype(sb)::value, std::uint64_t, FakeJob>;
    MeasureQueueRows<SleepQ>(cfg, evictor, 7, 13, t.sleep_add, t.sleep_del);
  });
  return t;
}

HandlerCosts MeasureHandlerCosts(const CalibrationConfig& cfg) {
  HandlerCosts h;
  std::vector<Time> samples;
  samples.reserve(static_cast<std::size_t>(cfg.samples));

  TaskControlBlock tcb{1000, 2000, 1000, 10, 3, 0, {10, 0, 0, 0}};
  for (int i = 0; i < cfg.samples; ++i) {
    const Time t0 = Now();
    ReleaseBody(tcb);
    samples.push_back(Now() - t0);
  }
  h.release_exec = TrimmedMax(samples, cfg.outlier_trim);

  samples.clear();
  std::vector<TaskControlBlock> tcbs(8, tcb);
  for (std::size_t i = 0; i < tcbs.size(); ++i) {
    tcbs[i].prio = static_cast<std::uint32_t>(17 * (i + 1) % 23);
  }
  volatile std::uint32_t sink = 0;
  for (int i = 0; i < cfg.samples; ++i) {
    const Time t0 = Now();
    sink = SchedBody(tcbs.data(), tcbs.size(),
                     static_cast<std::uint32_t>(i % 23));
    samples.push_back(Now() - t0);
  }
  (void)sink;
  h.sched_exec = TrimmedMax(samples, cfg.outlier_trim);

  samples.clear();
  CpuContext a{}, b{}, cpu{};
  for (int i = 0; i < cfg.samples; ++i) {
    const Time t0 = Now();
    CtxSwitchBody(a, b, cpu);
    samples.push_back(Now() - t0);
  }
  h.ctxsw_exec = TrimmedMax(samples, cfg.outlier_trim);
  return h;
}

OverheadModel ModelFromMeasurements(const Table1& t, const HandlerCosts& h,
                                    Time cpmd_local, Time cpmd_migration) {
  OverheadModel m;
  m.ready_add_local = {t.ready_add.local_n4, t.ready_add.local_n64};
  m.ready_add_remote = {t.ready_add.remote_n4, t.ready_add.remote_n64};
  m.ready_del_local = {t.ready_del.local_n4, t.ready_del.local_n64};
  m.sleep_add_local = {t.sleep_add.local_n4, t.sleep_add.local_n64};
  m.sleep_add_remote = {t.sleep_add.remote_n4, t.sleep_add.remote_n64};
  m.sleep_del_local = {t.sleep_del.local_n4, t.sleep_del.local_n64};
  m.release_exec = h.release_exec;
  m.sched_exec = h.sched_exec;
  m.ctxsw_exec = h.ctxsw_exec;
  m.cpmd_local = cpmd_local;
  m.cpmd_migration = cpmd_migration;
  return m;
}

OverheadModel Calibrate(const CalibrationConfig& cfg) {
  const Table1 t = MeasureTable1(cfg);
  const HandlerCosts h = MeasureHandlerCosts(cfg);
  const cache::CpmdModel cpmd{cache::CacheConfig::CoreI7()};
  // Representative working set: 64 KiB (the paper's "realistic
  // application" regime, larger than L1, well inside L3).
  constexpr std::size_t kWss = 64u << 10;
  return ModelFromMeasurements(t, h, cpmd.local_resume_delay(kWss, kWss),
                               cpmd.migration_resume_delay(kWss));
}

}  // namespace sps::overhead
