#pragma once
// Run-time overhead model (paper §3).
//
// The paper measures, on an Intel Core-i7 quad-core running the patched
// Linux 2.6.32 scheduler:
//
//   Table 1 — maximal duration of a single queue operation (µs):
//     operation            local(N=4) remote(N=4) local(N=64) remote(N=64)
//     sleep queue  add        2.5        2.9         4.3         4.4
//     sleep queue  delete     3.3        N/A         5.8         N/A
//     ready queue  add        1.5        3.3         4.4         4.6
//     ready queue  delete     2.7        N/A         4.6         N/A
//
//   "delete" is only ever local: a core pops work from its *own* queues.
//   "remote add" happens when a split task's body subtask migrates (insert
//   into the destination core's ready queue) or a tail subtask finishes
//   (insert into the first core's sleep queue).
//
//   Pure handler execution times: release() = 3 µs, sch() = 5 µs,
//   cnt_swth() = 1.5 µs.
//
//   The paper condenses Table 1 into two parameters: delta = worst ready-
//   queue op, theta = worst sleep-queue op (N=4: delta = theta = 3.3 µs;
//   N=64: delta = 4.6 µs, theta = 5.8 µs).
//
// This model reproduces all of that and interpolates between the two
// published queue sizes with an a + b*log2(N) law (both queue structures
// are O(log N)). `OverheadModel::PaperCoreI7()` is the paper's machine;
// `Calibrate()` (calibrate.hpp) fills the same structure from live
// measurements of this library's own queue implementations.

#include <cstddef>

#include "rt/time.hpp"

namespace sps::overhead {

/// Cost of one queue operation at the two queue sizes the paper reports.
/// Interpolated/extrapolated log-linearly elsewhere.
struct OpCost {
  Time at_n4 = 0;
  Time at_n64 = 0;

  /// Cost at queue size n, clamped to be non-negative; log-linear in n
  /// through the two anchors (exact at n = 4 and n = 64).
  [[nodiscard]] Time at(std::size_t n) const;
};

struct OverheadModel {
  // Queue operations (Table 1).
  OpCost ready_add_local;
  OpCost ready_add_remote;
  OpCost ready_del_local;
  OpCost sleep_add_local;
  OpCost sleep_add_remote;
  OpCost sleep_del_local;

  // Pure handler execution times (§3 text).
  Time release_exec = 0;  ///< release() body, excluding queue access
  Time sched_exec = 0;    ///< sch() body
  Time ctxsw_exec = 0;    ///< cnt_swth() body

  // Cache-related preemption/migration delay (§3 "cache"). The paper's
  // finding: local and migration delays are the same order of magnitude
  // for realistic working sets (shared L3 backstop).
  Time cpmd_local = 0;      ///< resume after a local preemption
  Time cpmd_migration = 0;  ///< resume on a different core

  /// Uniform scale factor, used by the overhead-sensitivity experiment
  /// (E6). All accessors below apply it.
  double scale = 1.0;

  // -- Derived quantities (all scaled) -----------------------------------

  /// delta of the paper: worst-case single ready-queue operation at size n.
  [[nodiscard]] Time delta(std::size_t n) const;
  /// theta of the paper: worst-case single sleep-queue operation at size n.
  [[nodiscard]] Time theta(std::size_t n) const;

  /// rls: the full timer-release path = sleep-queue delete (the timer
  /// handler pops the task from this core's sleep queue) + release() body
  /// + local ready-queue insert.
  [[nodiscard]] Time release_overhead(std::size_t n) const;

  /// sch: scheduling overhead = sch() body + ready-queue pop, plus a
  /// ready-queue re-insert when the decision preempts a running task.
  [[nodiscard]] Time sched_overhead(std::size_t n, bool preemption) const;

  /// cnt1: context-switch-in overhead (store + load contexts).
  [[nodiscard]] Time ctxsw_in_overhead() const;

  /// cnt2 for a normal task that finished: switch + local sleep insert.
  [[nodiscard]] Time finish_overhead_normal(std::size_t n) const;

  /// cnt2 for a body subtask whose budget ran out: switch + insert into
  /// the *destination* core's ready queue (remote add).
  [[nodiscard]] Time migrate_overhead(std::size_t n_dest) const;

  /// cnt2 for a tail subtask that finished: switch + insert into the
  /// *first* core's sleep queue (remote add).
  [[nodiscard]] Time finish_overhead_tail(std::size_t n_first) const;

  [[nodiscard]] Time cpmd(bool migration) const;

  [[nodiscard]] Time scaled(Time t) const {
    return static_cast<Time>(static_cast<double>(t) * scale + 0.5);
  }

  // -- Factories ----------------------------------------------------------

  /// The paper's published measurements (Intel Core-i7, Linux 2.6.32).
  static OverheadModel PaperCoreI7();

  /// All-zero model: recovers overhead-oblivious (purely theoretical)
  /// schedulability analysis.
  static OverheadModel Zero();

  /// PaperCoreI7 scaled by `factor` (sensitivity experiment E6).
  static OverheadModel PaperScaled(double factor);
};

}  // namespace sps::overhead
