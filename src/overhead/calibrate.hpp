#pragma once
// Live calibration: measure THIS library's queue single-operation
// latencies, reproducing the measurement protocol behind Table 1 of the
// paper. The measured containers default to the paper's choices (binomial
// heap ready queue, red-black-tree sleep queue) and are selectable per
// CalibrationConfig::ready_backend / sleep_backend; measurement goes
// through the same queue concept the simulator schedules with, so the
// timed code path IS the scheduler's code path.
//
// Protocol (mirrors §3 of the paper):
//   * For each operation kind, queue size N is held at 4 or 64; one
//     add/delete is timed in isolation; the MAXIMUM over `samples`
//     repetitions is reported (the paper reports "maximal measured
//     duration").
//   * "local"  — the queue's nodes are warm in this core's cache, the
//     normal case of a core operating on its own queues.
//   * "remote" — in the kernel the cost of touching ANOTHER core's queue is
//     cache-coherence misses on the queue nodes (plus lock transfer). In
//     user space (and on a single-core CI box) we reproduce the dominant
//     term by evicting the queue's nodes from the private cache levels
//     before the timed op, so every pointer chase misses to shared
//     cache/DRAM exactly as a cross-core access would.
//   * Deletes are only measured locally (a core never pops a remote
//     queue), matching the N/A cells of the paper's table.
//
// Absolute numbers will differ from the paper's kernel-space Core-i7
// values; what must reproduce is the SHAPE: costs grow ~log N, remote >=
// local, and everything stays in the handful-of-microseconds band that
// makes semi-partitioning cheap. EXPERIMENTS.md E1 records both.

#include <cstddef>

#include "containers/queue_traits.hpp"
#include "overhead/model.hpp"
#include "overhead/table1.hpp"

namespace sps::overhead {

struct CalibrationConfig {
  /// Repetitions per (operation, size, locality) cell; the max is kept.
  int samples = 2000;
  /// Trimming: ignore this top fraction of samples as timer outliers
  /// (interrupts etc.); 0 reproduces the paper's strict max.
  double outlier_trim = 0.01;
  /// Bytes swept to evict queue nodes for "remote" emulation.
  std::size_t eviction_buffer_bytes = 8u << 20;
  /// Which containers to measure. Defaults are the paper's choices; the
  /// ablation sweeps these. Measurement goes through the same queue
  /// concept (containers/queue_traits.hpp) the simulator schedules with.
  containers::QueueBackend ready_backend =
      containers::QueueBackend::kBinomialHeap;
  containers::QueueBackend sleep_backend = containers::QueueBackend::kRbTree;
};

/// Measure the queue-operation half of Table 1 on this machine.
Table1 MeasureTable1(const CalibrationConfig& cfg = {});

/// Measured pure handler costs of this library's simulator handlers
/// (release / schedule / context switch bodies, queue access excluded),
/// the analog of the paper's 3 / 5 / 1.5 µs.
struct HandlerCosts {
  Time release_exec = 0;
  Time sched_exec = 0;
  Time ctxsw_exec = 0;
};

HandlerCosts MeasureHandlerCosts(const CalibrationConfig& cfg = {});

/// Full calibration: Table 1 measurement + handler costs folded into an
/// OverheadModel ready for the analysis layer. CPMD fields are filled from
/// the analytical cache model's default working set (see cache/cpmd.hpp).
OverheadModel Calibrate(const CalibrationConfig& cfg = {});

/// Build an OverheadModel from an arbitrary Table1 + handler costs
/// (used both by Calibrate() and to reconstruct the paper's model).
OverheadModel ModelFromMeasurements(const Table1& t, const HandlerCosts& h,
                                    Time cpmd_local, Time cpmd_migration);

}  // namespace sps::overhead
