#include "overhead/table1.hpp"

#include <algorithm>
#include <cstdio>

namespace sps::overhead {

Time Table1::delta_n4() const {
  return std::max({ready_add.local_n4, ready_add.remote_n4,
                   ready_del.local_n4});
}

Time Table1::delta_n64() const {
  return std::max({ready_add.local_n64, ready_add.remote_n64,
                   ready_del.local_n64});
}

Time Table1::theta_n4() const {
  return std::max({sleep_add.local_n4, sleep_add.remote_n4,
                   sleep_del.local_n4});
}

Time Table1::theta_n64() const {
  return std::max({sleep_add.local_n64, sleep_add.remote_n64,
                   sleep_del.local_n64});
}

Table1 PaperTable1() {
  Table1 t;
  t.sleep_add = {Micros(2.5), Micros(2.9), Micros(4.3), Micros(4.4), true};
  t.sleep_del = {Micros(3.3), 0, Micros(5.8), 0, false};
  t.ready_add = {Micros(1.5), Micros(3.3), Micros(4.4), Micros(4.6), true};
  t.ready_del = {Micros(2.7), 0, Micros(4.6), 0, false};
  return t;
}

namespace {

void FormatRow(std::string& out, const char* name, const Table1::Row& r) {
  char buf[160];
  if (r.remote_applicable) {
    std::snprintf(buf, sizeof(buf),
                  "%-22s %9.2f %10.2f %10.2f %10.2f\n", name,
                  ToMicros(r.local_n4), ToMicros(r.remote_n4),
                  ToMicros(r.local_n64), ToMicros(r.remote_n64));
  } else {
    std::snprintf(buf, sizeof(buf),
                  "%-22s %9.2f %10s %10.2f %10s\n", name,
                  ToMicros(r.local_n4), "N/A", ToMicros(r.local_n64), "N/A");
  }
  out += buf;
}

}  // namespace

std::string FormatTable1(const Table1& t, const std::string& title) {
  std::string out;
  out += title + "\n";
  out +=
      "Operation              local(N=4) remote(N=4) local(N=64) "
      "remote(N=64)   [us]\n";
  FormatRow(out, "sleep queue - add", t.sleep_add);
  FormatRow(out, "sleep queue - delete", t.sleep_del);
  FormatRow(out, "ready queue - add", t.ready_add);
  FormatRow(out, "ready queue - delete", t.ready_del);
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "=> delta (ready worst): %.2f us (N=4), %.2f us (N=64); "
                "theta (sleep worst): %.2f us (N=4), %.2f us (N=64)\n",
                ToMicros(t.delta_n4()), ToMicros(t.delta_n64()),
                ToMicros(t.theta_n4()), ToMicros(t.theta_n64()));
  out += buf;
  return out;
}

}  // namespace sps::overhead
