#include "overhead/model.hpp"

#include <algorithm>
#include <cmath>

namespace sps::overhead {

Time OpCost::at(std::size_t n) const {
  n = std::max<std::size_t>(n, 1);
  // Anchors: log2(4) = 2, log2(64) = 6. Slope per doubling.
  const double slope = static_cast<double>(at_n64 - at_n4) / 4.0;
  const double x = std::log2(static_cast<double>(n));
  const double cost = static_cast<double>(at_n4) + slope * (x - 2.0);
  return std::max<Time>(0, static_cast<Time>(cost + 0.5));
}

Time OverheadModel::delta(std::size_t n) const {
  const Time worst = std::max({ready_add_local.at(n), ready_add_remote.at(n),
                               ready_del_local.at(n)});
  return scaled(worst);
}

Time OverheadModel::theta(std::size_t n) const {
  const Time worst = std::max({sleep_add_local.at(n), sleep_add_remote.at(n),
                               sleep_del_local.at(n)});
  return scaled(worst);
}

Time OverheadModel::release_overhead(std::size_t n) const {
  return scaled(sleep_del_local.at(n) + release_exec +
                ready_add_local.at(n));
}

Time OverheadModel::sched_overhead(std::size_t n, bool preemption) const {
  Time t = sched_exec + ready_del_local.at(n);
  if (preemption) t += ready_add_local.at(n);
  return scaled(t);
}

Time OverheadModel::ctxsw_in_overhead() const { return scaled(ctxsw_exec); }

Time OverheadModel::finish_overhead_normal(std::size_t n) const {
  return scaled(ctxsw_exec + sleep_add_local.at(n));
}

Time OverheadModel::migrate_overhead(std::size_t n_dest) const {
  return scaled(ctxsw_exec + ready_add_remote.at(n_dest));
}

Time OverheadModel::finish_overhead_tail(std::size_t n_first) const {
  return scaled(ctxsw_exec + sleep_add_remote.at(n_first));
}

Time OverheadModel::cpmd(bool migration) const {
  return scaled(migration ? cpmd_migration : cpmd_local);
}

OverheadModel OverheadModel::PaperCoreI7() {
  OverheadModel m;
  // Table 1, all values in microseconds.
  m.ready_add_local = {Micros(1.5), Micros(4.4)};
  m.ready_add_remote = {Micros(3.3), Micros(4.6)};
  m.ready_del_local = {Micros(2.7), Micros(4.6)};
  m.sleep_add_local = {Micros(2.5), Micros(4.3)};
  m.sleep_add_remote = {Micros(2.9), Micros(4.4)};
  m.sleep_del_local = {Micros(3.3), Micros(5.8)};
  // §3 text.
  m.release_exec = Micros(3.0);
  m.sched_exec = Micros(5.0);
  m.ctxsw_exec = Micros(1.5);
  // The paper reports no absolute CPMD number (it is workload-dependent)
  // but finds local ~= migration on its shared-L3 machine. 20 µs is the
  // cache model's (src/cache) prediction for a 64 KiB working set reloaded
  // from L3; see EXPERIMENTS.md E4 for the full WSS sweep.
  m.cpmd_local = Micros(20.0);
  m.cpmd_migration = Micros(20.0);
  return m;
}

OverheadModel OverheadModel::Zero() { return OverheadModel{}; }

OverheadModel OverheadModel::PaperScaled(double factor) {
  OverheadModel m = PaperCoreI7();
  m.scale = factor;
  return m;
}

}  // namespace sps::overhead
