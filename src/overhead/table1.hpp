#pragma once
// Table 1 of the paper as a first-class object: the measured maximal
// duration of single ready-/sleep-queue operations, local and remote, at
// queue sizes N = 4 and N = 64.
//
// Two sources fill this structure:
//   * PaperTable1()    — the numbers published in the paper (Core-i7,
//                        kernel-space, Linux 2.6.32);
//   * MeasureTable1()  — live measurement of THIS library's binomial heap
//                        and red-black tree (calibrate.hpp).
// The bench bench_table1_queue_ops prints both side by side.

#include <string>

#include "rt/time.hpp"

namespace sps::overhead {

struct Table1 {
  struct Row {
    Time local_n4 = 0;
    Time remote_n4 = 0;
    Time local_n64 = 0;
    Time remote_n64 = 0;
    /// Deletes are always local in the scheduler (a core only pops its own
    /// queues), so their remote columns are N/A — matching the paper.
    bool remote_applicable = true;
  };

  Row sleep_add;
  Row sleep_del;
  Row ready_add;
  Row ready_del;

  /// delta of the paper: worst single ready-queue op at the given size.
  [[nodiscard]] Time delta_n4() const;
  [[nodiscard]] Time delta_n64() const;
  /// theta of the paper: worst single sleep-queue op at the given size.
  [[nodiscard]] Time theta_n4() const;
  [[nodiscard]] Time theta_n64() const;
};

/// The published Table 1 (all values µs in the paper; stored as Time).
Table1 PaperTable1();

/// Render in the paper's layout. `title` becomes the caption line.
std::string FormatTable1(const Table1& t, const std::string& title);

}  // namespace sps::overhead
