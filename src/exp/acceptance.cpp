#include "exp/acceptance.hpp"

#include <algorithm>
#include <cstdio>

#include "obs/metrics.hpp"
#include "partition/binpack.hpp"
#include "partition/spa.hpp"
#include "sim/batch.hpp"
#include "util/thread_pool.hpp"

namespace sps::exp {

const char* ToString(Algo a) {
  switch (a) {
    case Algo::kFfd: return "FFD";
    case Algo::kWfd: return "WFD";
    case Algo::kBfd: return "BFD";
    case Algo::kSpa1: return "FP-TS(SPA1)";
    case Algo::kSpa2: return "FP-TS(SPA2)";
  }
  return "?";
}

partition::PartitionResult RunAlgorithm(Algo a, const rt::TaskSet& ts,
                                        unsigned num_cores,
                                        const overhead::OverheadModel& model,
                                        const analysis::MemoConfig& memo) {
  switch (a) {
    case Algo::kFfd:
    case Algo::kWfd:
    case Algo::kBfd: {
      partition::BinPackConfig cfg;
      cfg.num_cores = num_cores;
      cfg.admission = partition::AdmissionTest::kRta;
      cfg.model = model;
      cfg.memo = memo;
      const auto policy = a == Algo::kFfd   ? partition::FitPolicy::kFirstFit
                          : a == Algo::kWfd ? partition::FitPolicy::kWorstFit
                                            : partition::FitPolicy::kBestFit;
      return partition::BinPackDecreasing(ts, policy, cfg);
    }
    case Algo::kSpa1:
    case Algo::kSpa2: {
      partition::SpaConfig cfg;
      cfg.num_cores = num_cores;
      cfg.model = model;
      cfg.preassign_heavy = (a == Algo::kSpa2);
      return partition::SpaPartition(ts, cfg);
    }
  }
  return {};
}

std::vector<double> AcceptanceConfig::DefaultGrid() {
  std::vector<double> g;
  for (int i = 600; i <= 1000; i += 25) {
    g.push_back(static_cast<double>(i) / 1000.0);
  }
  return g;
}

AcceptanceResult RunAcceptance(const AcceptanceConfig& cfg) {
  AcceptanceResult result;
  result.config = cfg;

  const std::size_t npoints = cfg.norm_util_points.size();
  const std::size_t nsets = static_cast<std::size_t>(
      std::max(0, cfg.sets_per_point));
  const std::size_t nalgo = cfg.algorithms.size();

  // One (point, set) pair is one unit of parallel work; every unit owns
  // an RNG derived from its coordinates and writes only its own slots,
  // so the sweep is bit-identical for any job count.
  std::vector<std::uint8_t> accepted(npoints * nsets * nalgo, 0);
  std::vector<std::uint8_t> sim_ok(npoints * nsets * nalgo, 0);
  std::vector<std::uint32_t> spa_accepts(npoints * nsets, 0);
  std::vector<std::uint32_t> spa_splits(npoints * nsets, 0);
  // Per-unit streaming-metrics slices (validate_by_simulation): the
  // cell's response histogram (all tasks merged) and worst tardiness.
  // Fixed-size per-cell storage, merged per point after the joins —
  // the same own-slot discipline that keeps the sweep jobs-invariant.
  std::vector<obs::LogHistogram> resp_hist;
  std::vector<Time> max_tard;
  if (cfg.validate_by_simulation) {
    resp_hist.resize(npoints * nsets * nalgo);
    max_tard.assign(npoints * nsets * nalgo, 0);
  }

  util::ParallelFor(cfg.jobs, npoints * nsets, [&](std::size_t u) {
    const std::size_t pi = u / nsets;
    const std::size_t si = u % nsets;

    rt::GeneratorConfig gen;
    gen.num_tasks = cfg.num_tasks;
    gen.max_task_utilization = cfg.max_task_utilization;
    gen.period_min = cfg.period_min;
    gen.period_max = cfg.period_max;
    gen.total_utilization = cfg.norm_util_points[pi] * cfg.num_cores;

    rt::Rng rng(sim::DeriveSeed(cfg.seed, pi, si));
    const rt::TaskSet ts = rt::GenerateTaskSet(gen, rng);
    for (std::size_t ai = 0; ai < nalgo; ++ai) {
      const partition::PartitionResult pr =
          RunAlgorithm(cfg.algorithms[ai], ts, cfg.num_cores, cfg.model,
                       cfg.memo);
      if (pr.success) {
        accepted[u * nalgo + ai] = 1;
        if (cfg.algorithms[ai] == Algo::kSpa1 ||
            cfg.algorithms[ai] == Algo::kSpa2) {
          ++spa_accepts[u];
          spa_splits[u] += static_cast<std::uint32_t>(
              pr.partition.num_split_tasks());
        }
        if (cfg.validate_by_simulation) {
          // Execute the accepted placement through the batch layer. The
          // unit already runs on a pool worker, so the inner sweep stays
          // serial; simulation seeds derive from unit coordinates in a
          // range DISJOINT from the generator streams (whose first
          // coordinate is a point index < npoints <= npoints*nsets), so
          // validation is deterministic, jobs-invariant, and never
          // correlated with any cell's task-set generation.
          sim::SimConfig scfg = cfg.validate_sim;
          scfg.overheads = cfg.model;
          scfg.record_metrics = true;  // per-point aggregation below
          const std::uint64_t vcoord = npoints * nsets + u;
          scfg.exec.seed = sim::DeriveSeed(cfg.seed, vcoord, ai);
          scfg.arrivals.seed =
              sim::DeriveSeed(cfg.seed, vcoord, nalgo + ai);
          const std::vector<sim::BatchRun> runs = sim::RunConfigSweep(
              pr.partition,
              {{std::string(ToString(cfg.algorithms[ai])), scfg}},
              {.jobs = 1});
          const sim::SimResult& vr = runs.front().result;
          sim_ok[u * nalgo + ai] = vr.total_misses == 0 ? 1 : 0;
          obs::LogHistogram& h = resp_hist[u * nalgo + ai];
          Time& tard = max_tard[u * nalgo + ai];
          for (const obs::TaskMetrics& tm : vr.metrics.tasks) {
            h += tm.response;
            tard = std::max(tard, tm.max_tardiness);
          }
        }
      }
    }
  });

  for (std::size_t pi = 0; pi < npoints; ++pi) {
    AcceptancePoint ap;
    ap.norm_util = cfg.norm_util_points[pi];
    ap.acceptance.assign(nalgo, 0.0);
    std::vector<std::uint64_t> point_sim_ok(nalgo, 0);
    std::uint64_t point_spa_accepts = 0;
    std::uint64_t point_spa_splits = 0;
    for (std::size_t si = 0; si < nsets; ++si) {
      const std::size_t u = pi * nsets + si;
      for (std::size_t ai = 0; ai < nalgo; ++ai) {
        ap.acceptance[ai] += accepted[u * nalgo + ai];
        point_sim_ok[ai] += sim_ok[u * nalgo + ai];
      }
      point_spa_accepts += spa_accepts[u];
      point_spa_splits += spa_splits[u];
    }
    if (cfg.validate_by_simulation) {
      ap.sim_validated.assign(nalgo, 1.0);
      ap.sim_p99_response.assign(nalgo, 0);
      ap.sim_max_tardiness.assign(nalgo, 0);
      for (std::size_t ai = 0; ai < nalgo; ++ai) {
        if (ap.acceptance[ai] > 0) {
          ap.sim_validated[ai] = static_cast<double>(point_sim_ok[ai]) /
                                 ap.acceptance[ai];
        }
        obs::LogHistogram merged;
        for (std::size_t si = 0; si < nsets; ++si) {
          const std::size_t u = pi * nsets + si;
          merged += resp_hist[u * nalgo + ai];
          ap.sim_max_tardiness[ai] = std::max(
              ap.sim_max_tardiness[ai], max_tard[u * nalgo + ai]);
        }
        ap.sim_p99_response[ai] = merged.Quantile(0.99);
      }
    }
    if (nsets > 0) {
      for (double& acc : ap.acceptance) {
        acc /= static_cast<double>(nsets);
      }
    }
    if (point_spa_accepts > 0) {
      ap.mean_splits = static_cast<double>(point_spa_splits) /
                       static_cast<double>(point_spa_accepts);
    }
    result.points.push_back(std::move(ap));
  }
  return result;
}

std::string AcceptanceResult::Table() const {
  std::string out = "norm.util ";
  char buf[160];
  for (const Algo a : config.algorithms) {
    std::snprintf(buf, sizeof(buf), "%12s", ToString(a));
    out += buf;
  }
  out += "   mean-splits";
  if (config.validate_by_simulation) {
    for (const Algo a : config.algorithms) {
      std::snprintf(buf, sizeof(buf), "  sim:%-8s", ToString(a));
      out += buf;
    }
    for (const Algo a : config.algorithms) {
      std::snprintf(buf, sizeof(buf), "  p99ms:%-6s", ToString(a));
      out += buf;
    }
  }
  out += "\n";
  for (const AcceptancePoint& p : points) {
    std::snprintf(buf, sizeof(buf), "%9.3f ", p.norm_util);
    out += buf;
    for (const double a : p.acceptance) {
      std::snprintf(buf, sizeof(buf), "%12.3f", a);
      out += buf;
    }
    std::snprintf(buf, sizeof(buf), "   %8.2f", p.mean_splits);
    out += buf;
    for (const double v : p.sim_validated) {
      std::snprintf(buf, sizeof(buf), "  %12.3f", v);
      out += buf;
    }
    for (const Time t : p.sim_p99_response) {
      std::snprintf(buf, sizeof(buf), "  %12.2f", ToMillis(t));
      out += buf;
    }
    out += "\n";
  }
  return out;
}

std::string AcceptanceResult::Csv() const {
  std::string out = "norm_util";
  for (const Algo a : config.algorithms) {
    out += ",";
    out += ToString(a);
  }
  out += ",mean_splits";
  if (config.validate_by_simulation) {
    for (const Algo a : config.algorithms) {
      out += ",sim_";
      out += ToString(a);
    }
    for (const Algo a : config.algorithms) {
      out += ",p99_response_ms_";
      out += ToString(a);
    }
    for (const Algo a : config.algorithms) {
      out += ",max_tardiness_us_";
      out += ToString(a);
    }
  }
  out += "\n";
  char buf[64];
  for (const AcceptancePoint& p : points) {
    std::snprintf(buf, sizeof(buf), "%.4f", p.norm_util);
    out += buf;
    for (const double a : p.acceptance) {
      std::snprintf(buf, sizeof(buf), ",%.4f", a);
      out += buf;
    }
    std::snprintf(buf, sizeof(buf), ",%.3f", p.mean_splits);
    out += buf;
    for (const double v : p.sim_validated) {
      std::snprintf(buf, sizeof(buf), ",%.4f", v);
      out += buf;
    }
    for (const Time t : p.sim_p99_response) {
      std::snprintf(buf, sizeof(buf), ",%.3f", ToMillis(t));
      out += buf;
    }
    for (const Time t : p.sim_max_tardiness) {
      std::snprintf(buf, sizeof(buf), ",%.1f", ToMicros(t));
      out += buf;
    }
    out += "\n";
  }
  return out;
}

std::vector<double> AcceptanceResult::WeightedAcceptance() const {
  std::vector<double> w(config.algorithms.size(), 0.0);
  if (points.empty()) return w;
  for (const AcceptancePoint& p : points) {
    for (std::size_t i = 0; i < w.size(); ++i) w[i] += p.acceptance[i];
  }
  for (double& x : w) x /= static_cast<double>(points.size());
  return w;
}

}  // namespace sps::exp
