#include "exp/acceptance.hpp"

#include <cstdio>

#include "partition/binpack.hpp"
#include "partition/spa.hpp"

namespace sps::exp {

const char* ToString(Algo a) {
  switch (a) {
    case Algo::kFfd: return "FFD";
    case Algo::kWfd: return "WFD";
    case Algo::kBfd: return "BFD";
    case Algo::kSpa1: return "FP-TS(SPA1)";
    case Algo::kSpa2: return "FP-TS(SPA2)";
  }
  return "?";
}

partition::PartitionResult RunAlgorithm(Algo a, const rt::TaskSet& ts,
                                        unsigned num_cores,
                                        const overhead::OverheadModel& model) {
  switch (a) {
    case Algo::kFfd:
    case Algo::kWfd:
    case Algo::kBfd: {
      partition::BinPackConfig cfg;
      cfg.num_cores = num_cores;
      cfg.admission = partition::AdmissionTest::kRta;
      cfg.model = model;
      const auto policy = a == Algo::kFfd   ? partition::FitPolicy::kFirstFit
                          : a == Algo::kWfd ? partition::FitPolicy::kWorstFit
                                            : partition::FitPolicy::kBestFit;
      return partition::BinPackDecreasing(ts, policy, cfg);
    }
    case Algo::kSpa1:
    case Algo::kSpa2: {
      partition::SpaConfig cfg;
      cfg.num_cores = num_cores;
      cfg.model = model;
      cfg.preassign_heavy = (a == Algo::kSpa2);
      return partition::SpaPartition(ts, cfg);
    }
  }
  return {};
}

std::vector<double> AcceptanceConfig::DefaultGrid() {
  std::vector<double> g;
  for (double u = 0.60; u <= 1.0 + 1e-9; u += 0.025) g.push_back(u);
  return g;
}

AcceptanceResult RunAcceptance(const AcceptanceConfig& cfg) {
  AcceptanceResult result;
  result.config = cfg;

  rt::GeneratorConfig gen;
  gen.num_tasks = cfg.num_tasks;
  gen.max_task_utilization = cfg.max_task_utilization;
  gen.period_min = cfg.period_min;
  gen.period_max = cfg.period_max;

  for (const double point : cfg.norm_util_points) {
    AcceptancePoint ap;
    ap.norm_util = point;
    ap.acceptance.assign(cfg.algorithms.size(), 0.0);
    gen.total_utilization = point * cfg.num_cores;

    unsigned spa_accepts = 0;
    unsigned spa_split_sum = 0;

    // One RNG per grid point, seeded from (seed, point index), so points
    // are independent and the whole sweep is reproducible.
    rt::Rng rng(cfg.seed ^
                (0x9e3779b97f4a7c15ull *
                 static_cast<std::uint64_t>(&point - cfg.norm_util_points.data() + 1)));

    for (int s = 0; s < cfg.sets_per_point; ++s) {
      const rt::TaskSet ts = rt::GenerateTaskSet(gen, rng);
      for (std::size_t ai = 0; ai < cfg.algorithms.size(); ++ai) {
        const partition::PartitionResult pr =
            RunAlgorithm(cfg.algorithms[ai], ts, cfg.num_cores, cfg.model);
        if (pr.success) {
          ap.acceptance[ai] += 1.0;
          if (cfg.algorithms[ai] == Algo::kSpa1 ||
              cfg.algorithms[ai] == Algo::kSpa2) {
            ++spa_accepts;
            spa_split_sum += pr.partition.num_split_tasks();
          }
        }
      }
    }
    for (double& acc : ap.acceptance) {
      acc /= static_cast<double>(cfg.sets_per_point);
    }
    if (spa_accepts > 0) {
      ap.mean_splits = static_cast<double>(spa_split_sum) /
                       static_cast<double>(spa_accepts);
    }
    result.points.push_back(std::move(ap));
  }
  return result;
}

std::string AcceptanceResult::Table() const {
  std::string out = "norm.util ";
  char buf[160];
  for (const Algo a : config.algorithms) {
    std::snprintf(buf, sizeof(buf), "%12s", ToString(a));
    out += buf;
  }
  out += "   mean-splits\n";
  for (const AcceptancePoint& p : points) {
    std::snprintf(buf, sizeof(buf), "%9.3f ", p.norm_util);
    out += buf;
    for (const double a : p.acceptance) {
      std::snprintf(buf, sizeof(buf), "%12.3f", a);
      out += buf;
    }
    std::snprintf(buf, sizeof(buf), "   %8.2f\n", p.mean_splits);
    out += buf;
  }
  return out;
}

std::string AcceptanceResult::Csv() const {
  std::string out = "norm_util";
  for (const Algo a : config.algorithms) {
    out += ",";
    out += ToString(a);
  }
  out += ",mean_splits\n";
  char buf[64];
  for (const AcceptancePoint& p : points) {
    std::snprintf(buf, sizeof(buf), "%.4f", p.norm_util);
    out += buf;
    for (const double a : p.acceptance) {
      std::snprintf(buf, sizeof(buf), ",%.4f", a);
      out += buf;
    }
    std::snprintf(buf, sizeof(buf), ",%.3f\n", p.mean_splits);
    out += buf;
  }
  return out;
}

std::vector<double> AcceptanceResult::WeightedAcceptance() const {
  std::vector<double> w(config.algorithms.size(), 0.0);
  if (points.empty()) return w;
  for (const AcceptancePoint& p : points) {
    for (std::size_t i = 0; i < w.size(); ++i) w[i] += p.acceptance[i];
  }
  for (double& x : w) x /= static_cast<double>(points.size());
  return w;
}

}  // namespace sps::exp
