#pragma once
// Acceptance-ratio experiment (paper §4): generate random task sets over a
// grid of total utilizations, run each partitioning algorithm (FP-TS
// semi-partitioned vs FFD/WFD partitioned RM), and report the fraction of
// sets each algorithm schedules — with the measured overhead model charged
// everywhere. This is the harness behind benches E5 (headline comparison)
// and E6 (overhead sensitivity).

#include <cstdint>
#include <string>
#include <vector>

#include "overhead/model.hpp"
#include "partition/placement.hpp"
#include "rt/generator.hpp"

namespace sps::exp {

enum class Algo {
  kFfd,   ///< first-fit decreasing partitioned RM (paper baseline)
  kWfd,   ///< worst-fit decreasing partitioned RM (paper baseline)
  kBfd,   ///< best-fit decreasing (ablation)
  kSpa1,  ///< FP-TS without heavy-task pre-assignment
  kSpa2,  ///< FP-TS with heavy-task pre-assignment (the full algorithm)
};

const char* ToString(Algo a);

/// Run one algorithm on one task set under one overhead model.
partition::PartitionResult RunAlgorithm(Algo a, const rt::TaskSet& ts,
                                        unsigned num_cores,
                                        const overhead::OverheadModel& model);

struct AcceptanceConfig {
  unsigned num_cores = 4;
  std::size_t num_tasks = 16;
  double max_task_utilization = 1.0;
  /// Normalized utilization grid (total utilization = point * num_cores).
  std::vector<double> norm_util_points;
  int sets_per_point = 100;
  std::uint64_t seed = 20110318;  // PPES 2011 workshop date
  overhead::OverheadModel model = overhead::OverheadModel::Zero();
  std::vector<Algo> algorithms = {Algo::kFfd, Algo::kWfd, Algo::kSpa2};
  /// Period range for the generator (log-uniform).
  Time period_min = Millis(10);
  Time period_max = Millis(1000);

  /// The default grid of the field's acceptance plots: 0.60 .. 1.00 in
  /// steps of 0.025.
  static std::vector<double> DefaultGrid();
};

struct AcceptancePoint {
  double norm_util = 0.0;
  /// Acceptance ratio per algorithm, aligned with config.algorithms.
  std::vector<double> acceptance;
  /// Mean number of split tasks among accepted FP-TS partitions (if an
  /// SPA algorithm is present; else 0).
  double mean_splits = 0.0;
};

struct AcceptanceResult {
  AcceptanceConfig config;
  std::vector<AcceptancePoint> points;

  /// Fixed-width table, one row per utilization point.
  [[nodiscard]] std::string Table() const;
  /// Machine-readable CSV with a header row.
  [[nodiscard]] std::string Csv() const;
  /// Weighted acceptance (area under the curve) per algorithm — a single
  /// scalar for comparisons.
  [[nodiscard]] std::vector<double> WeightedAcceptance() const;
};

AcceptanceResult RunAcceptance(const AcceptanceConfig& cfg);

}  // namespace sps::exp
