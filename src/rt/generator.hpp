#pragma once
// Random task-set generation for the acceptance-ratio experiments
// (paper §4: "randomly generated task sets").
//
// The PPES paper does not spell out its generation parameters; it inherits
// the setup of the FP-TS paper (Guan et al., RTAS 2010), which is the
// standard recipe of the field:
//   - per-task utilizations by UUniFast (Bini & Buttazzo 2005), giving a
//     uniform distribution over the simplex of utilizations summing to U;
//   - periods drawn log-uniformly from a decade-spanning range, so that
//     short- and long-period tasks are equally represented;
//   - WCET_i = round(u_i * T_i), implicit deadlines, RM priorities.
//
// All generators take an explicit RNG so every experiment is reproducible
// from its seed.

#include <cstdint>
#include <random>
#include <vector>

#include "rt/task.hpp"
#include "rt/taskset.hpp"
#include "rt/time.hpp"

namespace sps::rt {

using Rng = std::mt19937_64;

/// UUniFast (Bini & Buttazzo): n utilizations uniformly distributed over
/// the simplex { u : sum(u) = total_util, u_i >= 0 }. Individual values may
/// exceed 1 when total_util > 1; use UUniFastDiscard to forbid that.
std::vector<double> UUniFast(std::size_t n, double total_util, Rng& rng);

/// UUniFast, redrawing the whole vector until every u_i <= max_task_util.
/// Needed for multiprocessor experiments where total_util can exceed 1.
/// Throws std::invalid_argument if n * max_task_util < total_util
/// (impossible to satisfy).
std::vector<double> UUniFastDiscard(std::size_t n, double total_util,
                                    double max_task_util, Rng& rng);

struct GeneratorConfig {
  std::size_t num_tasks = 16;
  double total_utilization = 2.0;
  /// Upper bound on any single task's utilization. FP-TS distinguishes
  /// light/heavy tasks; experiments sweep this too.
  double max_task_utilization = 1.0;
  /// Periods drawn log-uniformly from [period_min, period_max] ...
  Time period_min = Millis(10);
  Time period_max = Millis(1000);
  /// ... unless this is non-empty: then periods are drawn uniformly from
  /// the given discrete set. Industrial (e.g. automotive) systems use a
  /// small menu of harmonic periods — 1/2/5/10/20/50/100/200/1000 ms is
  /// the classic benchmark distribution — which also keeps hyperperiods
  /// tiny for the simulator.
  std::vector<Time> period_choices;
  /// ... then rounded down to a multiple of this (keeps hyperperiods sane
  /// for the simulator). Must divide period_min.
  Time period_granularity = Millis(1);
  /// If true (default) deadlines are implicit (D = T); otherwise drawn
  /// uniformly from [C + deadline_factor_min*(T-C), T].
  bool implicit_deadlines = true;
  double constrained_deadline_min_factor = 0.5;
};

/// Generate one task set per the config, with RM priorities assigned.
/// Every task has wcet >= 1 ns; the achieved total utilization can deviate
/// slightly from the target because of integer rounding of WCETs.
TaskSet GenerateTaskSet(const GeneratorConfig& cfg, Rng& rng);

/// Draw one period log-uniformly per the config.
Time DrawPeriod(const GeneratorConfig& cfg, Rng& rng);

}  // namespace sps::rt
