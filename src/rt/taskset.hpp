#pragma once
// Task set: an ordered collection of tasks plus the whole-set queries the
// partitioning and analysis layers need (total utilization, hyperperiod,
// priority assignment, orderings).

#include <cstdint>
#include <optional>
#include <vector>

#include "rt/task.hpp"
#include "rt/time.hpp"

namespace sps::rt {

class TaskSet {
 public:
  TaskSet() = default;
  explicit TaskSet(std::vector<Task> tasks) : tasks_(std::move(tasks)) {}

  [[nodiscard]] bool empty() const { return tasks_.empty(); }
  [[nodiscard]] std::size_t size() const { return tasks_.size(); }
  [[nodiscard]] const Task& operator[](std::size_t i) const {
    return tasks_[i];
  }
  [[nodiscard]] Task& operator[](std::size_t i) { return tasks_[i]; }

  [[nodiscard]] auto begin() const { return tasks_.begin(); }
  [[nodiscard]] auto end() const { return tasks_.end(); }
  [[nodiscard]] auto begin() { return tasks_.begin(); }
  [[nodiscard]] auto end() { return tasks_.end(); }

  void add(Task t) { tasks_.push_back(t); }

  [[nodiscard]] const std::vector<Task>& tasks() const { return tasks_; }

  /// Sum of C_i / T_i.
  [[nodiscard]] double total_utilization() const;

  /// Largest single-task utilization (0 for an empty set).
  [[nodiscard]] double max_utilization() const;

  /// Least common multiple of all periods. Returns nullopt on overflow —
  /// callers (the simulator) then fall back to a fixed horizon.
  [[nodiscard]] std::optional<Time> hyperperiod() const;

  /// Find a task by id; nullptr if absent.
  [[nodiscard]] const Task* find(TaskId id) const;

  /// All tasks well-formed and ids unique?
  [[nodiscard]] bool valid() const;

  /// True if every task has a priority and no two tasks share one.
  [[nodiscard]] bool priorities_assigned() const;

 private:
  std::vector<Task> tasks_;
};

/// Assign unique Rate-Monotonic priorities: shorter period = higher
/// priority (lower number), ties broken by task id for determinism.
void AssignRateMonotonic(TaskSet& ts);

/// Assign unique Deadline-Monotonic priorities: shorter relative deadline =
/// higher priority, ties by period then id.
void AssignDeadlineMonotonic(TaskSet& ts);

/// Indices of tasks sorted by decreasing utilization (the "decreasing
/// size" order of FFD/WFD in the paper), ties by id.
std::vector<std::size_t> OrderByDecreasingUtilization(const TaskSet& ts);

/// Indices sorted by increasing priority value (highest priority first).
/// Requires priorities_assigned().
std::vector<std::size_t> OrderByPriority(const TaskSet& ts);

}  // namespace sps::rt
