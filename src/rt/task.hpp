#pragma once
// Sporadic/periodic task model.
//
// The paper schedules implicit-deadline sporadic tasks (the FP-TS
// algorithm of Guan et al., RTAS 2010, targets Liu & Layland's bound,
// which is stated for implicit deadlines). We carry an explicit deadline
// field anyway so the analysis layer can also handle constrained
// deadlines; generators default to D = T.

#include <cstdint>
#include <string>
#include <vector>

#include "rt/time.hpp"

namespace sps::rt {

using TaskId = std::uint32_t;

/// Numeric scheduling priority. LOWER value = HIGHER priority (matches the
/// "priority order" wording of the paper's scheduler and the usual RTOS
/// convention). Unique per task within a task set once assigned.
using Priority = std::uint32_t;

inline constexpr Priority kPriorityUnassigned = UINT32_MAX;

/// Criticality of a task under overload (DESIGN.md §13). Hard tasks are
/// protected at all costs; soft tasks tolerate bounded tardiness and are
/// the degrade/shed candidates of the online controller's ladder.
enum class Criticality : std::uint8_t {
  kHard,  ///< must never miss; never degraded or shed
  kSoft,  ///< tardiness-tolerant; eligible for degraded service / shedding
};

struct Task {
  TaskId id = 0;
  Time wcet = 0;      ///< C: worst-case execution time
  Time period = 0;    ///< T: period / minimum inter-arrival
  Time deadline = 0;  ///< D: relative deadline (= period if implicit)
  Priority priority = kPriorityUnassigned;
  Criticality crit = Criticality::kHard;
  /// Soft only: tolerated lateness beyond D (informational for the
  /// analysis; the overload reaction treats soft misses as acceptable
  /// up to this bound).
  Time tardiness_bound = 0;
  /// Soft only: reduced-service WCET of the task's degraded mode
  /// (0 < degraded_wcet < wcet), or 0 when the task has no such mode.
  Time degraded_wcet = 0;
  /// Shed order under overload: LOWER value is shed first. Hard tasks
  /// ignore it.
  std::uint32_t value = 0;

  [[nodiscard]] double utilization() const {
    return static_cast<double>(wcet) / static_cast<double>(period);
  }

  /// Density C/min(D,T); equals utilization for implicit deadlines.
  [[nodiscard]] double density() const {
    const Time d = deadline < period ? deadline : period;
    return static_cast<double>(wcet) / static_cast<double>(d);
  }

  [[nodiscard]] bool implicit_deadline() const { return deadline == period; }

  /// A task is well-formed if 0 < C <= D <= T.
  [[nodiscard]] bool valid() const {
    return wcet > 0 && wcet <= deadline && deadline <= period;
  }

  [[nodiscard]] bool soft() const { return crit == Criticality::kSoft; }

  /// Soft tasks with a well-formed reduced-service mode can be degraded
  /// instead of shed (rung 1 of the controller's ladder).
  [[nodiscard]] bool can_degrade() const {
    return soft() && degraded_wcet > 0 && degraded_wcet < wcet;
  }

  friend bool operator==(const Task&, const Task&) = default;
};

/// Construct an implicit-deadline task.
inline Task MakeTask(TaskId id, Time wcet, Time period) {
  return Task{.id = id, .wcet = wcet, .period = period, .deadline = period};
}

/// Construct an implicit-deadline SOFT task with its overload attributes.
inline Task MakeSoftTask(TaskId id, Time wcet, Time period,
                         std::uint32_t value, Time tardiness_bound,
                         Time degraded_wcet = 0) {
  Task t = MakeTask(id, wcet, period);
  t.crit = Criticality::kSoft;
  t.value = value;
  t.tardiness_bound = tardiness_bound;
  t.degraded_wcet = degraded_wcet;
  return t;
}

/// Human-readable one-liner, e.g. "tau3(C=2ms, T=10ms, U=0.200)".
std::string ToString(const Task& t);

}  // namespace sps::rt
