#pragma once
// Sporadic/periodic task model.
//
// The paper schedules implicit-deadline sporadic tasks (the FP-TS
// algorithm of Guan et al., RTAS 2010, targets Liu & Layland's bound,
// which is stated for implicit deadlines). We carry an explicit deadline
// field anyway so the analysis layer can also handle constrained
// deadlines; generators default to D = T.

#include <cstdint>
#include <string>
#include <vector>

#include "rt/time.hpp"

namespace sps::rt {

using TaskId = std::uint32_t;

/// Numeric scheduling priority. LOWER value = HIGHER priority (matches the
/// "priority order" wording of the paper's scheduler and the usual RTOS
/// convention). Unique per task within a task set once assigned.
using Priority = std::uint32_t;

inline constexpr Priority kPriorityUnassigned = UINT32_MAX;

struct Task {
  TaskId id = 0;
  Time wcet = 0;      ///< C: worst-case execution time
  Time period = 0;    ///< T: period / minimum inter-arrival
  Time deadline = 0;  ///< D: relative deadline (= period if implicit)
  Priority priority = kPriorityUnassigned;

  [[nodiscard]] double utilization() const {
    return static_cast<double>(wcet) / static_cast<double>(period);
  }

  /// Density C/min(D,T); equals utilization for implicit deadlines.
  [[nodiscard]] double density() const {
    const Time d = deadline < period ? deadline : period;
    return static_cast<double>(wcet) / static_cast<double>(d);
  }

  [[nodiscard]] bool implicit_deadline() const { return deadline == period; }

  /// A task is well-formed if 0 < C <= D <= T.
  [[nodiscard]] bool valid() const {
    return wcet > 0 && wcet <= deadline && deadline <= period;
  }

  friend bool operator==(const Task&, const Task&) = default;
};

/// Construct an implicit-deadline task.
inline Task MakeTask(TaskId id, Time wcet, Time period) {
  return Task{.id = id, .wcet = wcet, .period = period, .deadline = period};
}

/// Human-readable one-liner, e.g. "tau3(C=2ms, T=10ms, U=0.200)".
std::string ToString(const Task& t);

}  // namespace sps::rt
