#include "rt/taskset.hpp"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <unordered_set>

#include "rt/task.hpp"

namespace sps::rt {

std::string ToString(const Task& t) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "tau%u(C=%.3fms, T=%.3fms, U=%.3f)",
                t.id, ToMillis(t.wcet), ToMillis(t.period), t.utilization());
  return buf;
}

double TaskSet::total_utilization() const {
  double u = 0.0;
  for (const Task& t : tasks_) u += t.utilization();
  return u;
}

double TaskSet::max_utilization() const {
  double u = 0.0;
  for (const Task& t : tasks_) u = std::max(u, t.utilization());
  return u;
}

std::optional<Time> TaskSet::hyperperiod() const {
  Time lcm = 1;
  for (const Task& t : tasks_) {
    const Time g = std::gcd(lcm, t.period);
    const Time quotient = t.period / g;
    if (lcm > kTimeNever / quotient) return std::nullopt;  // would overflow
    lcm *= quotient;
  }
  return lcm;
}

const Task* TaskSet::find(TaskId id) const {
  for (const Task& t : tasks_) {
    if (t.id == id) return &t;
  }
  return nullptr;
}

bool TaskSet::valid() const {
  std::unordered_set<TaskId> seen;
  for (const Task& t : tasks_) {
    if (!t.valid()) return false;
    if (!seen.insert(t.id).second) return false;
  }
  return true;
}

bool TaskSet::priorities_assigned() const {
  std::unordered_set<Priority> seen;
  for (const Task& t : tasks_) {
    if (t.priority == kPriorityUnassigned) return false;
    if (!seen.insert(t.priority).second) return false;
  }
  return true;
}

namespace {

/// Assign priorities 0..n-1 following the given strict-weak order.
template <typename Less>
void AssignByOrder(TaskSet& ts, Less less) {
  std::vector<std::size_t> idx(ts.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::sort(idx.begin(), idx.end(),
            [&](std::size_t a, std::size_t b) { return less(ts[a], ts[b]); });
  for (std::size_t rank = 0; rank < idx.size(); ++rank) {
    ts[idx[rank]].priority = static_cast<Priority>(rank);
  }
}

}  // namespace

void AssignRateMonotonic(TaskSet& ts) {
  AssignByOrder(ts, [](const Task& a, const Task& b) {
    if (a.period != b.period) return a.period < b.period;
    return a.id < b.id;
  });
}

void AssignDeadlineMonotonic(TaskSet& ts) {
  AssignByOrder(ts, [](const Task& a, const Task& b) {
    if (a.deadline != b.deadline) return a.deadline < b.deadline;
    if (a.period != b.period) return a.period < b.period;
    return a.id < b.id;
  });
}

std::vector<std::size_t> OrderByDecreasingUtilization(const TaskSet& ts) {
  std::vector<std::size_t> idx(ts.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    const double ua = ts[a].utilization();
    const double ub = ts[b].utilization();
    if (ua != ub) return ua > ub;
    return ts[a].id < ts[b].id;
  });
  return idx;
}

std::vector<std::size_t> OrderByPriority(const TaskSet& ts) {
  std::vector<std::size_t> idx(ts.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return ts[a].priority < ts[b].priority;
  });
  return idx;
}

}  // namespace sps::rt
