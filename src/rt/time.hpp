#pragma once
// Discrete time base for the whole library.
//
// All times are integer nanoseconds (`sps::Time`). The paper reports
// overheads in microseconds with 0.1 µs resolution (e.g. cnt_swth = 1.5 µs),
// so nanoseconds give exact representation of every published value while
// keeping event-time arithmetic free of floating-point drift — the
// discrete-event simulator relies on exact equality of event times.

#include <cstdint>

namespace sps {

/// Time instant or duration, in nanoseconds.
using Time = std::int64_t;

inline constexpr Time kNanosecond = 1;
inline constexpr Time kMicrosecond = 1'000;
inline constexpr Time kMillisecond = 1'000'000;
inline constexpr Time kSecond = 1'000'000'000;

/// Largest representable instant; used as "never" by the simulator.
inline constexpr Time kTimeNever = INT64_MAX;

constexpr Time Micros(double us) {
  return static_cast<Time>(us * static_cast<double>(kMicrosecond) + 0.5);
}

constexpr Time Millis(double ms) {
  return static_cast<Time>(ms * static_cast<double>(kMillisecond) + 0.5);
}

constexpr double ToMicros(Time t) {
  return static_cast<double>(t) / static_cast<double>(kMicrosecond);
}

constexpr double ToMillis(Time t) {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}

/// Ceiling division for non-negative integers: how many whole periods of
/// length `b` fit (partially) into an interval of length `a`. The
/// fundamental operation of response-time analysis.
constexpr std::int64_t CeilDiv(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

}  // namespace sps
