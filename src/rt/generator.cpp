#include "rt/generator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sps::rt {

std::vector<double> UUniFast(std::size_t n, double total_util, Rng& rng) {
  std::vector<double> u(n);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  double sum = total_util;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    // Bini & Buttazzo: nextSum = sum * rand^(1/(n-i-1)).
    const double next =
        sum * std::pow(unit(rng), 1.0 / static_cast<double>(n - i - 1));
    u[i] = sum - next;
    sum = next;
  }
  if (n > 0) u[n - 1] = sum;
  return u;
}

std::vector<double> UUniFastDiscard(std::size_t n, double total_util,
                                    double max_task_util, Rng& rng) {
  if (static_cast<double>(n) * max_task_util < total_util) {
    throw std::invalid_argument(
        "UUniFastDiscard: n * max_task_util < total_util is unsatisfiable");
  }
  constexpr int kMaxAttempts = 100000;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    std::vector<double> u = UUniFast(n, total_util, rng);
    const bool ok = std::all_of(u.begin(), u.end(), [&](double x) {
      return x <= max_task_util;
    });
    if (ok) return u;
  }
  throw std::runtime_error(
      "UUniFastDiscard: gave up after too many redraws (parameters too "
      "tight; increase n or max_task_util)");
}

Time DrawPeriod(const GeneratorConfig& cfg, Rng& rng) {
  if (!cfg.period_choices.empty()) {
    std::uniform_int_distribution<std::size_t> pick(
        0, cfg.period_choices.size() - 1);
    return cfg.period_choices[pick(rng)];
  }
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  const double lo = std::log(static_cast<double>(cfg.period_min));
  const double hi = std::log(static_cast<double>(cfg.period_max));
  const double raw = std::exp(lo + (hi - lo) * unit(rng));
  Time period = static_cast<Time>(raw);
  if (cfg.period_granularity > 1) {
    period -= period % cfg.period_granularity;
    period = std::max(period, cfg.period_min);
  }
  return std::min(period, cfg.period_max);
}

TaskSet GenerateTaskSet(const GeneratorConfig& cfg, Rng& rng) {
  const std::vector<double> utils = UUniFastDiscard(
      cfg.num_tasks, cfg.total_utilization, cfg.max_task_utilization, rng);

  TaskSet ts;
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  for (std::size_t i = 0; i < cfg.num_tasks; ++i) {
    const Time period = DrawPeriod(cfg, rng);
    Time wcet = static_cast<Time>(
        std::llround(utils[i] * static_cast<double>(period)));
    wcet = std::clamp<Time>(wcet, 1, period);

    Time deadline = period;
    if (!cfg.implicit_deadlines) {
      const double span = static_cast<double>(period - wcet);
      const double lo = cfg.constrained_deadline_min_factor * span;
      deadline = wcet + static_cast<Time>(lo + (span - lo) * unit(rng));
      deadline = std::clamp(deadline, wcet, period);
    }

    ts.add(Task{.id = static_cast<TaskId>(i),
                .wcet = wcet,
                .period = period,
                .deadline = deadline});
  }
  AssignRateMonotonic(ts);
  return ts;
}

}  // namespace sps::rt
