#include "cache/cpmd.hpp"

#include <algorithm>

namespace sps::cache {

Time CpmdModel::reload_cost(std::size_t bytes) const {
  // The working set competes with everything else for L3; model the L3-
  // resident share as whatever fits.
  const std::size_t from_l3 = std::min(bytes, cfg_.l3_bytes);
  const std::size_t from_mem = bytes - from_l3;
  return static_cast<Time>(cfg_.lines(from_l3)) * cfg_.l3_hit_per_line +
         static_cast<Time>(cfg_.lines(from_mem)) * cfg_.memory_per_line;
}

Time CpmdModel::migration_resume_delay(std::size_t wss_bytes) const {
  // Cold private cache at the destination: the whole working set reloads
  // from the shared level (or memory beyond it).
  return reload_cost(wss_bytes);
}

Time CpmdModel::local_resume_delay(std::size_t wss_bytes,
                                   std::size_t preemptor_bytes) const {
  // The preemptor's footprint displaces private-level contents (LRU-ish:
  // the oldest — i.e. the preempted task's — lines go first). Whatever
  // private capacity the preemptor did not claim still holds the task's
  // hottest lines.
  const std::size_t priv = cfg_.private_bytes();
  const std::size_t surviving_capacity =
      preemptor_bytes >= priv ? 0 : priv - preemptor_bytes;
  const std::size_t surviving = std::min(wss_bytes, surviving_capacity);
  const std::size_t evicted = wss_bytes - surviving;
  // Surviving lines are L2-speed touches; evicted lines reload from L3.
  return static_cast<Time>(cfg_.lines(surviving)) * cfg_.l2_hit_per_line +
         reload_cost(evicted);
}

double CpmdModel::migration_penalty_ratio(std::size_t wss_bytes,
                                          std::size_t preemptor_bytes) const {
  const Time local = local_resume_delay(wss_bytes, preemptor_bytes);
  const Time migration = migration_resume_delay(wss_bytes);
  if (local <= 0) return migration > 0 ? 1e9 : 1.0;
  return static_cast<double>(migration) / static_cast<double>(local);
}

}  // namespace sps::cache
