#include "cache/lru_sim.hpp"

#include <algorithm>
#include <cassert>

namespace sps::cache {

LruCache::LruCache(std::size_t size_bytes, std::size_t assoc,
                   std::size_t line_bytes)
    : assoc_(assoc), line_bytes_(line_bytes) {
  if (size_bytes == 0) {
    sets_ = 0;
    return;
  }
  assert(assoc > 0 && line_bytes > 0);
  sets_ = std::max<std::size_t>(1, size_bytes / (assoc * line_bytes));
  ways_.resize(sets_ * assoc_);
}

bool LruCache::access(std::uint64_t addr) {
  if (sets_ == 0) return false;
  const std::uint64_t line = addr / line_bytes_;
  const std::size_t set = static_cast<std::size_t>(line % sets_);
  Way* base = &ways_[set * assoc_];
  ++tick_;
  Way* victim = base;
  for (std::size_t w = 0; w < assoc_; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == line) {
      way.lru = tick_;
      return true;
    }
    if (!way.valid) {
      victim = &way;  // prefer an empty way
    } else if (victim->valid && way.lru < victim->lru) {
      victim = &way;
    }
  }
  victim->tag = line;
  victim->valid = true;
  victim->lru = tick_;
  return false;
}

bool LruCache::contains(std::uint64_t addr) const {
  if (sets_ == 0) return false;
  const std::uint64_t line = addr / line_bytes_;
  const std::size_t set = static_cast<std::size_t>(line % sets_);
  const Way* base = &ways_[set * assoc_];
  for (std::size_t w = 0; w < assoc_; ++w) {
    if (base[w].valid && base[w].tag == line) return true;
  }
  return false;
}

void LruCache::flush() {
  for (Way& w : ways_) w.valid = false;
  tick_ = 0;
}

TwoLevelCacheSim::TwoLevelCacheSim(const CacheConfig& cfg, unsigned num_cores,
                                   std::size_t private_assoc,
                                   std::size_t shared_assoc)
    : cfg_(cfg),
      shared_(cfg.l3_bytes, shared_assoc, cfg.line_bytes) {
  private_.reserve(num_cores);
  for (unsigned c = 0; c < num_cores; ++c) {
    private_.emplace_back(cfg.private_bytes(), private_assoc,
                          cfg.line_bytes);
  }
}

Time TwoLevelCacheSim::access(unsigned core, std::uint64_t addr) {
  assert(core < private_.size());
  if (private_[core].access(addr)) {
    return cfg_.l2_hit_per_line;  // private-level hit
  }
  if (shared_.access(addr)) {
    return cfg_.l3_hit_per_line;  // served by shared LLC, fill private
  }
  return cfg_.memory_per_line;  // memory; both levels now filled
}

Time TwoLevelCacheSim::touch_range(unsigned core, std::uint64_t base,
                                   std::size_t bytes) {
  Time total = 0;
  for (std::size_t off = 0; off < bytes; off += cfg_.line_bytes) {
    total += access(core, base + off);
  }
  return total;
}

void TwoLevelCacheSim::flush_all() {
  for (LruCache& p : private_) p.flush();
  shared_.flush();
}

CpmdProbeResult ProbeCpmd(const CacheConfig& cfg, std::size_t wss_bytes,
                          std::size_t preemptor_bytes) {
  // Disjoint address ranges for the task and the preemptor.
  constexpr std::uint64_t kTaskBase = 0;
  const std::uint64_t preemptor_base = 1ull << 32;

  CpmdProbeResult r;
  {
    // Local preemption: warm up on core 0, preempt on core 0, resume on 0.
    TwoLevelCacheSim sim(cfg, 2);
    sim.touch_range(0, kTaskBase, wss_bytes);   // A warms its set
    sim.touch_range(0, kTaskBase, wss_bytes);   // steady state
    sim.touch_range(0, preemptor_base, preemptor_bytes);  // preemptor runs
    r.local_resume_cost = sim.touch_range(0, kTaskBase, wss_bytes);
  }
  {
    // Migration: warm up on core 0, preemptor on core 0, resume on core 1.
    TwoLevelCacheSim sim(cfg, 2);
    sim.touch_range(0, kTaskBase, wss_bytes);
    sim.touch_range(0, kTaskBase, wss_bytes);
    sim.touch_range(0, preemptor_base, preemptor_bytes);
    r.migration_resume_cost = sim.touch_range(1, kTaskBase, wss_bytes);
  }
  return r;
}

}  // namespace sps::cache
