#pragma once
// Analytical cache-related preemption/migration delay (CPMD) model —
// reproduces the reasoning of the paper's §3 "cache" paragraph.
//
// When a task resumes after being preempted (locally) or after migrating
// (to another core), it must reload the part of its working set that is no
// longer in the caches it now runs over:
//
//   * migration: the destination core's private levels hold none of the
//     task's lines; every working-set line reloads from the shared L3 (or
//     memory, for the part of the working set exceeding L3).
//
//   * local preemption: the preempting task(s) evicted part of the private
//     levels. Lines the preemptor did NOT evict are still private-level
//     hits (nearly free); evicted lines reload from the shared L3, exactly
//     as in the migration case.
//
// Consequences, which the paper states and our E4 bench plots:
//   - preemptor footprint >= private capacity  =>  local ~= migration
//     (everything reloads from L3 either way — "same order of magnitude");
//   - tiny working set and tiny preemptor footprint => local << migration
//     (the paper's "rather rare in realistic applications" case);
//   - without a shared L3 (CacheConfig::PrivateLlcOnly), migration pays
//     memory latency and is far more expensive — the ablation showing the
//     finding is architecture-dependent.

#include <cstddef>

#include "cache/cache_model.hpp"
#include "rt/time.hpp"

namespace sps::cache {

class CpmdModel {
 public:
  explicit CpmdModel(CacheConfig cfg) : cfg_(cfg) {}

  /// Delay to resume on a core whose private cache holds none of the
  /// task's working set (task migration; also a cold start).
  [[nodiscard]] Time migration_resume_delay(std::size_t wss_bytes) const;

  /// Delay to resume on the same core after preemption by tasks whose
  /// combined working-set footprint is `preemptor_bytes`.
  [[nodiscard]] Time local_resume_delay(std::size_t wss_bytes,
                                        std::size_t preemptor_bytes) const;

  /// Ratio migration/local for the given scenario (>= 1); the paper's
  /// "same order of magnitude" claim is ratio ~ 1 for realistic sizes.
  [[nodiscard]] double migration_penalty_ratio(
      std::size_t wss_bytes, std::size_t preemptor_bytes) const;

  [[nodiscard]] const CacheConfig& config() const { return cfg_; }

 private:
  /// Cost of reloading `bytes` of working set assuming `l3_resident` of it
  /// is served by the shared L3 and the rest by memory.
  [[nodiscard]] Time reload_cost(std::size_t bytes) const;

  CacheConfig cfg_;
};

}  // namespace sps::cache
