#pragma once
// Set-associative LRU cache simulator — the empirical counterpart of the
// analytical CPMD model. Used by tests and the E4 bench to *demonstrate*
// (rather than assume) the paper's §3 finding: replay a preemption or a
// migration over a modelled two-level hierarchy and count where the
// resumed task's misses are served from.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cache/cache_model.hpp"
#include "rt/time.hpp"

namespace sps::cache {

/// One physical cache: set-associative, true-LRU replacement.
class LruCache {
 public:
  /// `size_bytes` = 0 makes a null cache that misses everything.
  LruCache(std::size_t size_bytes, std::size_t assoc, std::size_t line_bytes);

  /// Touch one line; returns true on hit. On miss the line is filled.
  bool access(std::uint64_t addr);

  /// Is the line currently resident (no state change)?
  [[nodiscard]] bool contains(std::uint64_t addr) const;

  void flush();

  [[nodiscard]] std::size_t num_sets() const { return sets_; }
  [[nodiscard]] std::size_t associativity() const { return assoc_; }

 private:
  struct Way {
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;  // higher = more recently used
    bool valid = false;
  };

  std::size_t sets_;
  std::size_t assoc_;
  std::size_t line_bytes_;
  std::uint64_t tick_ = 0;
  std::vector<Way> ways_;  // sets_ * assoc_, row-major by set
};

/// Private-per-core + shared-LLC hierarchy for `num_cores` cores.
/// Access cost follows CacheConfig's per-line penalties.
class TwoLevelCacheSim {
 public:
  TwoLevelCacheSim(const CacheConfig& cfg, unsigned num_cores,
                   std::size_t private_assoc = 8, std::size_t shared_assoc = 16);

  /// Touch one address from `core`; returns the time this access costs
  /// (0-ish for private hit, l3 penalty, or memory penalty).
  Time access(unsigned core, std::uint64_t addr);

  /// Sequentially touch a working set of `bytes` starting at `base`.
  /// Returns total cost.
  Time touch_range(unsigned core, std::uint64_t base, std::size_t bytes);

  void flush_all();

  [[nodiscard]] const CacheConfig& config() const { return cfg_; }

 private:
  CacheConfig cfg_;
  std::vector<LruCache> private_;  // one per core
  LruCache shared_;
};

/// Experiment used by tests and bench E4: task A streams over its working
/// set (warm-up), a preemptor streams over its footprint, then A resumes
/// either on the same core (local) or another core (migration). Returns
/// the cost of A's resume pass — the empirical CPMD.
struct CpmdProbeResult {
  Time local_resume_cost = 0;
  Time migration_resume_cost = 0;
};

CpmdProbeResult ProbeCpmd(const CacheConfig& cfg, std::size_t wss_bytes,
                          std::size_t preemptor_bytes);

}  // namespace sps::cache
