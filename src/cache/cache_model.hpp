#pragma once
// Cache hierarchy description used by both the analytical CPMD model
// (cpmd.hpp) and the empirical LRU simulator (lru_sim.hpp).
//
// Defaults model the paper's machine, an Intel Core-i7 (Nehalem) quad
// core: 32 KiB private L1D + 256 KiB private L2 per core, 8 MiB L3 shared
// by all cores. The paper's §3 cache finding hinges exactly on this split:
// whatever a preemption/migration evicts from the PRIVATE levels is still
// in the SHARED L3, so local context switches and cross-core migrations
// pay a similar reload bill.

#include <cstddef>

#include "rt/time.hpp"

namespace sps::cache {

struct CacheConfig {
  std::size_t line_bytes = 64;
  std::size_t l1_bytes = 32u << 10;    ///< private, per core
  std::size_t l2_bytes = 256u << 10;   ///< private, per core
  std::size_t l3_bytes = 8u << 20;     ///< shared across cores

  /// Reload penalties per cache line, by the level that serves the miss.
  Time l2_hit_per_line = 3;     ///< ~10 cycles
  Time l3_hit_per_line = 13;    ///< ~40 cycles at ~3 GHz
  Time memory_per_line = 60;    ///< DRAM

  /// Total private capacity per core (what a preemptor can evict without
  /// touching the shared level).
  [[nodiscard]] std::size_t private_bytes() const {
    return l1_bytes + l2_bytes;
  }

  [[nodiscard]] std::size_t lines(std::size_t bytes) const {
    return (bytes + line_bytes - 1) / line_bytes;
  }

  /// The paper's machine (Intel Core-i7, 4 cores).
  static CacheConfig CoreI7() { return CacheConfig{}; }

  /// A hypothetical machine WITHOUT a shared last level (private L3s):
  /// used by the ablation to show the paper's "migration ~= local switch"
  /// finding is a property of the shared L3, not of migration per se.
  static CacheConfig PrivateLlcOnly() {
    CacheConfig c;
    c.l3_bytes = 0;
    return c;
  }
};

}  // namespace sps::cache
