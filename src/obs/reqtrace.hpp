#pragma once
// Request-scoped tracing with tail-based sampling (DESIGN.md §16).
//
// Where the span profiler (obs/spans.hpp) aggregates every stage into
// per-stage histograms, the RequestTracer keeps the CAUSAL view: for one
// ADMIT or LEAVE it records the parent-linked tree of spans the request
// actually walked (placement → util screen → memo probe → analysis,
// ladder rungs, the fallback repartition) with wall durations and
// stage-local attributes (memo hit/miss, cores probed, ladder rung
// reached). That answers "WHY was request #812404 slow", which no
// aggregate can.
//
// Tail-based sampling keeps memory O(K·depth) at a million requests:
// a finished trace is retained only when it is (a) among the K slowest
// by admit-total root duration (streaming bounded min-heap), or (b)
// "interesting" — it walked the overload ladder, fell back to a full
// repartition, or diverged from the journal (bounded to the K most
// recent). Everything else is dropped on EndTrace; its durations
// already live in the profiler's histograms.
//
// Determinism firewall (DESIGN.md §15): trace ids derive from the
// request seq (DeriveSeed(cfg.seed, seq, kTraceIdAxis) — pure, replay-
// stable), but every RETAINED artifact carries wall-clock durations and
// a wall-clock-dependent membership, so exports go to their own files /
// stderr only, never stdout or a byte-compared artifact. Tracing must
// not change a single decision: the tracer is configured through
// ReplayObserver (deliberately outside the durability fingerprint) and
// only observes spans the profiler already times.
//
// Threading: one tracer may serve many replay threads (ReplayBatch).
// Each thread lazily claims its own context — span stack, trace buffer,
// flight ring — under a mutex taken once per (thread, tracer); the
// shared top-K / interesting reservoirs are mutex-guarded and touched
// once per FINISHED trace, not per span.

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/flight.hpp"
#include "obs/perfetto.hpp"
#include "obs/spans.hpp"

namespace sps::obs {

/// Seed-derivation axis for trace ids: trace_id =
/// util::DeriveSeed(replay seed, request seq, kTraceIdAxis).
inline constexpr std::uint64_t kTraceIdAxis = 0x7ACEull;

/// One node of a request's span tree. `parent` indexes the owning
/// trace's span array (-1 = root); children always have larger indices
/// (spans are appended in open order).
struct SpanRecord {
  std::uint64_t t0 = 0;
  std::uint64_t dur_ns = 0;
  std::int64_t attr = -1;  ///< stage-local attribute, -1 = none
  std::int32_t parent = -1;
  SpanStage stage = SpanStage::kCount;
};

/// One retained request trace (span tree + outcome).
struct RequestTrace {
  std::uint64_t trace_id = 0;
  std::uint64_t seq = 0;
  bool is_admit = true;
  bool via_ladder = false;
  bool via_fallback = false;
  bool diverged = false;
  bool slow = false;  ///< retained by the top-K rule (else: interesting)
  std::uint64_t root_dur_ns = 0;  ///< admit_total / leave wall duration
  std::vector<SpanRecord> spans;  ///< index 0 is the root
};

class RequestTracer {
 public:
  struct Options {
    /// Tail-sampling K: slowest-K traces retained, and at most K most
    /// recent "interesting" ones. 0 disables retention (spans still
    /// feed the flight ring).
    std::uint32_t top_k = 32;
    /// Flight-ring slots per thread; 0 disables the flight recorder.
    std::uint32_t flight_slots = 256;
    /// Directory flight-<pid>.json dumps land in.
    std::string flight_dir = ".";
  };

  explicit RequestTracer(Options opt);
  explicit RequestTracer(std::uint32_t top_k = 32)
      : RequestTracer(Options{top_k, 256, "."}) {}
  ~RequestTracer();
  RequestTracer(const RequestTracer&) = delete;
  RequestTracer& operator=(const RequestTracer&) = delete;

  // --- replay-loop hooks (per request, on the replaying thread) -------

  /// Open a trace; every span closing on this thread until EndTrace is
  /// recorded into its tree.
  void BeginTrace(std::uint64_t trace_id, std::uint64_t seq, bool is_admit);

  /// Close the current trace and run the tail-sampling decision.
  void EndTrace(bool via_ladder, bool via_fallback, bool diverged);

  /// Epoch-boundary registry delta for the flight ring (cumulative
  /// admits/rejects/leaves + resident gauge).
  void NoteEpoch(std::uint64_t epoch_index, std::uint64_t admits,
                 std::uint64_t rejects, std::uint64_t leaves,
                 std::uint64_t resident);

  // --- span hooks (called via ScopedSpan / TraceAttr, any thread) -----

  /// Returns the span's slot in the current trace, or -1 when no trace
  /// is open on this thread (the span still reaches the flight ring).
  int OpenSpan(SpanStage stage);
  void CloseSpan(int slot, SpanStage stage, std::uint64_t t0,
                 std::uint64_t dur_ns);
  /// Set the attribute of the innermost open span on this thread.
  void AttrInnermost(std::int64_t v);

  // --- retained data --------------------------------------------------

  struct RetainStats {
    std::uint64_t traces_seen = 0;
    std::uint64_t retained_slow = 0;         ///< current top-K size
    std::uint64_t retained_interesting = 0;  ///< current, ≤ K
    /// High-water mark of span records held across both reservoirs —
    /// the O(K·depth) bound the tail-sampling rule promises.
    std::uint64_t peak_retained_spans = 0;
  };
  [[nodiscard]] RetainStats retain_stats() const;

  /// All retained traces, sorted by (seq, trace_id) — deterministic
  /// given deterministic durations (fake clock), export-stable always.
  [[nodiscard]] std::vector<RequestTrace> Retained() const;

  /// Chrome trace-event document: every retained span tree as async
  /// ("b"/"e") slices on a per-request track keyed by trace id, plus
  /// caller-supplied counter tracks (the CLI adds thread-pool gauges),
  /// plus a structured "sps_reqtrace" top-level key that
  /// tools/trace_summary.py consumes. Wall-clock data: never a
  /// byte-compared artifact.
  [[nodiscard]] std::string ToPerfettoJson(
      const std::vector<CounterSeries>& extra_counters = {}) const;

  /// Dump every thread's flight ring to <flight_dir>/flight-<pid>.json
  /// (atomic write). Safe concurrently with tracing threads.
  bool DumpFlight(const std::string& reason, std::string* path_out = nullptr,
                  std::string* error = nullptr);

  void set_flight_dir(std::string dir);
  [[nodiscard]] std::uint32_t top_k() const { return opt_.top_k; }

 private:
  struct ThreadCtx {
    bool active = false;
    std::uint64_t trace_id = 0;
    std::uint64_t seq = 0;
    bool is_admit = true;
    std::vector<SpanRecord> spans;
    std::vector<std::int32_t> stack;  ///< open span slots, innermost last
    std::unique_ptr<FlightRing> ring;
  };

  [[nodiscard]] ThreadCtx* CtxForThisThread();

  Options opt_;
  const std::uint64_t serial_;  ///< distinguishes address-reused tracers
  mutable std::mutex mu_;       ///< guards ctxs_ growth + reservoirs
  std::vector<std::unique_ptr<ThreadCtx>> ctxs_;
  std::vector<RequestTrace> slow_;  ///< min-heap by root_dur_ns, ≤ top_k
  std::deque<RequestTrace> interesting_;  ///< most recent ≤ top_k
  std::uint64_t traces_seen_ = 0;
  std::uint64_t retained_spans_ = 0;
  std::uint64_t peak_retained_spans_ = 0;
};

}  // namespace sps::obs
