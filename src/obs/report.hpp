#pragma once
// MetricsReport (DESIGN.md §10): the exportable assembly of one run's
// observability data — SimResult counters joined with the streaming
// metrics (histograms, occupancy rows) into a flat document with JSON
// and CSV writers. This is the layer above the kernel: obs/metrics.hpp
// stays sim-free so SimResult can embed RunMetrics; this header depends
// on the kernel types and nothing depends back on it.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "rt/task.hpp"
#include "rt/time.hpp"
#include "sim/kernel.hpp"

namespace sps::obs {

struct MetricsReport {
  struct TaskRow {
    rt::TaskId id = 0;
    std::uint64_t released = 0;
    std::uint64_t completed = 0;
    std::uint64_t deadline_misses = 0;
    std::uint64_t shed = 0;
    std::uint64_t preemptions = 0;
    std::uint64_t migrations = 0;
    Time max_response = 0;
    double avg_response = 0.0;
    /// Log2-histogram quantiles (bucket upper bounds; factor-of-two
    /// resolution — see LogHistogram::Quantile).
    Time p50_response = 0;
    Time p99_response = 0;
    Time max_tardiness = 0;
    LogHistogram response;
    LogHistogram tardiness;

    bool operator==(const TaskRow&) const = default;
  };
  struct CoreRow {
    std::uint32_t core = 0;
    Time busy = 0;      ///< wall occupancy by task code (CPMD included)
    Time overhead = 0;  ///< wall occupancy by scheduler overhead
    Time idle = 0;      ///< busy + overhead + idle == span
    Time cpmd = 0;      ///< CPMD portion inside busy (booked progress)
    std::uint64_t context_switches = 0;

    bool operator==(const CoreRow&) const = default;
  };

  /// The span the per-core rows cover: the horizon, or — for a halted
  /// stop-on-first-miss run — the end of the last booked activity
  /// (>= the halt instant; see obs::RunMetrics::span).
  Time span = 0;
  std::uint64_t total_misses = 0;
  std::vector<TaskRow> tasks;
  std::vector<CoreRow> cores;

  [[nodiscard]] std::string ToJson() const;
  /// One row per task / per core; headers included. Two tables because
  /// the row schemas differ.
  [[nodiscard]] std::string TaskCsv() const;
  [[nodiscard]] std::string CoreCsv() const;

  bool operator==(const MetricsReport&) const = default;
};

/// Join a SimResult that carries metrics (SimConfig::record_metrics)
/// into a report. Requires r.metrics.enabled().
[[nodiscard]] MetricsReport BuildMetricsReport(const sim::SimResult& r);

}  // namespace sps::obs
