#pragma once
// Wall-clock span profiler for the online service pipeline (DESIGN.md
// §15). A span wraps one stage of real work — an admission screen, a
// ladder step, an epoch phase — and records its WALL duration into a
// per-thread log2 histogram per stage. The profiler answers "where does
// a million-request replay spend its milliseconds" (p50/p99/p999 per
// stage), which the deterministic sim-time metrics of §10 cannot see.
//
// The determinism firewall: wall-clock readings NEVER feed decision
// logic and never reach stdout or any byte-compared artifact — reports
// go to stderr / the --profile-out channel only. The instrumented code
// paths read the profiler through a thread-local install slot
// (InstalledProfiler()), so the analysis layer needs no config plumbing
// and the hooks cost one thread-local load + branch when profiling is
// off (gated <3% on the calm path by bench_obs_overhead).
//
// Threading: Record() is safe from any thread — each thread lazily
// claims its own shard (histograms + optional slice vector) under a
// mutex taken once per (thread, profiler) pair; the merged report is a
// commutative sum over shards. The clock is injectable (ClockFn) so
// tests pin the output byte-for-byte under a fake clock.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace sps::obs {

/// The instrumented stages of the online pipeline. Histogram storage is
/// indexed by this enum; keep kCount last.
enum class SpanStage : std::uint8_t {
  kUtilScreen = 0,   ///< O(1) per-core utilization screen
  kMemoProbe,        ///< analysis-memo key combine + table lookup
  kAnalysis,         ///< density screen + demand test (EDF) / LL/HYP/RTA (FP)
  kPlacement,        ///< controller placement walk for one admit
  kAdmitTotal,       ///< one ADMIT request end to end
  kLeave,            ///< one LEAVE request end to end
  kLadderDegrade,    ///< overload ladder: degrade step
  kLadderShed,       ///< overload ladder: shed step
  kFallback,         ///< full repartition fallback
  kEpochApply,       ///< epoch entry: retries, restores, overload react
  kEpochValidate,    ///< validation simulations of the standing partition
  kCheckpointWrite,  ///< durability checkpoint serialize + write
  kRecoveryRedo,     ///< recovery: checkpoint load + journal redo
  kCount
};

[[nodiscard]] const char* ToString(SpanStage s);

class SpanProfiler {
 public:
  /// Nanosecond wall clock; nullptr = std::chrono::steady_clock.
  using ClockFn = std::uint64_t (*)();

  explicit SpanProfiler(ClockFn clock = nullptr);

  [[nodiscard]] std::uint64_t NowNs() const { return clock_(); }

  /// Record one completed span. `t0` is the span's start (only kept when
  /// slice collection is on).
  void Record(SpanStage stage, std::uint64_t t0, std::uint64_t dur_ns);

  /// Keep (t0, dur) slices per record for the Perfetto wall track —
  /// off by default (unbounded memory on long replays).
  void set_collect_slices(bool on) { collect_slices_ = on; }

  struct StageReport {
    SpanStage stage = SpanStage::kCount;
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    Time p50 = 0, p99 = 0, p999 = 0;  ///< log2-bucket upper bounds
  };

  /// Merged per-stage rows (stages with zero records omitted), in enum
  /// order — deterministic given deterministic inputs.
  [[nodiscard]] std::vector<StageReport> Report() const;

  /// Merged histogram of one stage (for delta-based per-epoch columns).
  [[nodiscard]] LogHistogram StageHistogram(SpanStage stage) const;

  /// Human table / flat JSON of Report(). Wall-clock data: stderr and
  /// --profile-out only, never a byte-compared artifact.
  [[nodiscard]] std::string ToText() const;
  [[nodiscard]] std::string ToJson() const;

  /// Chrome trace-event document with one "wall" track of duration
  /// slices (requires set_collect_slices(true)). Slices are ordered by
  /// (t0, stage, dur): byte-deterministic under an injected fake clock
  /// (golden-file tested); real-clock documents are for humans only.
  [[nodiscard]] std::string SlicesToPerfettoJson() const;

 private:
  struct Shard {
    LogHistogram hist[static_cast<std::size_t>(SpanStage::kCount)];
    std::uint64_t total_ns[static_cast<std::size_t>(SpanStage::kCount)] = {};
    std::vector<std::uint64_t> slice_t0;
    std::vector<std::uint64_t> slice_dur;
    std::vector<SpanStage> slice_stage;
  };

  [[nodiscard]] Shard* ShardForThisThread();

  ClockFn clock_;
  bool collect_slices_ = false;
  const std::uint64_t serial_;  ///< distinguishes address-reused profilers
  mutable std::mutex mu_;       ///< guards shards_ growth
  std::vector<std::unique_ptr<Shard>> shards_;
};

class RequestTracer;

namespace internal {
// Out-of-line request-tracer hooks (defined in reqtrace.cpp) so this
// header does not pull in the tracer. Only reached when a profiler is
// installed — the profiling-off null path stays two branches.
[[nodiscard]] RequestTracer* ActiveTracer();
[[nodiscard]] int TracerOpenSpan(RequestTracer* t, SpanStage stage);
void TracerCloseSpan(RequestTracer* t, int slot, SpanStage stage,
                     std::uint64_t t0, std::uint64_t dur_ns);
}  // namespace internal

/// RAII span: reads the clock on entry and records on exit. A null
/// profiler costs two branches — the profiling-off path. When a request
/// tracer is ALSO installed on this thread (obs/reqtrace.hpp), the span
/// additionally lands in the active request's span tree and the flight
/// ring; the tracer reuses the profiler's clock readings, so tracing
/// requires a profiler.
class ScopedSpan {
 public:
  ScopedSpan(SpanProfiler* p, SpanStage stage) : p_(p), stage_(stage) {
    if (p_ != nullptr) {
      t0_ = p_->NowNs();
      if ((tr_ = internal::ActiveTracer()) != nullptr) {
        slot_ = internal::TracerOpenSpan(tr_, stage_);
      }
    }
  }
  ~ScopedSpan() {
    if (p_ != nullptr) {
      const std::uint64_t dur = p_->NowNs() - t0_;
      p_->Record(stage_, t0_, dur);
      if (tr_ != nullptr) {
        internal::TracerCloseSpan(tr_, slot_, stage_, t0_, dur);
      }
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  SpanProfiler* p_;
  SpanStage stage_;
  std::uint64_t t0_ = 0;
  RequestTracer* tr_ = nullptr;
  int slot_ = -1;
};

/// Stage-local attribute on the innermost OPEN traced span of this
/// thread — memo hit/miss, cores probed, ladder rung reached. A cheap
/// no-op (one thread-local load + branch) when no tracer is installed;
/// attributes are trace-export data only and never feed decisions.
void TraceAttr(std::int64_t v);

/// The thread-local install slot. ReplayStream installs its configured
/// profiler for the duration of the replay; the admission/analysis/
/// controller layers read it here instead of threading a pointer through
/// every config struct (nothing observability-related may enter the
/// fingerprinted configs — DESIGN.md §15).
[[nodiscard]] SpanProfiler* InstalledProfiler();

class ProfilerInstallation {
 public:
  explicit ProfilerInstallation(SpanProfiler* p);
  ~ProfilerInstallation();
  ProfilerInstallation(const ProfilerInstallation&) = delete;
  ProfilerInstallation& operator=(const ProfilerInstallation&) = delete;

 private:
  SpanProfiler* prev_;
};

/// Request-tracer analogue of InstalledProfiler()/ProfilerInstallation:
/// the replay loop installs its configured tracer for the thread's
/// replay duration; ScopedSpan picks it up via internal::ActiveTracer().
/// Definitions live in reqtrace.cpp.
[[nodiscard]] RequestTracer* InstalledTracer();

class TracerInstallation {
 public:
  explicit TracerInstallation(RequestTracer* t);
  ~TracerInstallation();
  TracerInstallation(const TracerInstallation&) = delete;
  TracerInstallation& operator=(const TracerInstallation&) = delete;

 private:
  RequestTracer* prev_;
};

}  // namespace sps::obs
