#pragma once
// Streaming per-run metrics (DESIGN.md §10): fixed-bucket log2 histograms
// of response time and tardiness per task, and wall-occupancy accounting
// (busy / overhead / idle) per core. Everything here is accumulated
// ONLINE by the recording sink (obs/sink.hpp) — plain integer adds into
// fixed-size storage, no allocation on the simulation hot path — and is
// merged across shard lanes by commutative sums/maxes, so a sharded run
// reports exactly the metrics of the serial run (the same determinism
// contract as SimResult itself).
//
// This header is layering-bottom: it depends only on rt/time.hpp so the
// kernel can embed RunMetrics in SimResult without a cycle. Assembly of
// metrics + SimResult stats into an exportable document lives in
// obs/report.hpp.

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <vector>

#include "rt/time.hpp"

namespace sps::obs {

/// Number of log2 buckets. Bucket i holds values v with bit_width(v) == i
/// (v in nanoseconds), i.e. v in [2^(i-1), 2^i); bucket 0 holds v <= 0.
/// 2^(kHistBuckets-1) ns ≈ 9.1 minutes — far past any response time a
/// bounded-horizon simulation can produce; larger values saturate into
/// the last bucket rather than being dropped.
inline constexpr std::size_t kHistBuckets = 40;

/// Fixed-storage log2 histogram. Add() is a shift + increment; merging is
/// element-wise addition (order-insensitive, hence shard-safe).
struct LogHistogram {
  std::array<std::uint64_t, kHistBuckets> buckets{};

  void Add(Time v) {
    const std::size_t b =
        v <= 0 ? 0
               : std::min<std::size_t>(
                     std::bit_width(static_cast<std::uint64_t>(v)),
                     kHistBuckets - 1);
    ++buckets[b];
  }

  [[nodiscard]] std::uint64_t count() const {
    std::uint64_t n = 0;
    for (const std::uint64_t b : buckets) n += b;
    return n;
  }

  /// Upper bound of the bucket holding the q-quantile sample (q in
  /// [0,1]). Log2 resolution: the answer is exact to within a factor of
  /// two, which is what a schedulability dashboard needs (orders of
  /// magnitude, not microseconds). Returns 0 for an empty histogram.
  [[nodiscard]] Time Quantile(double q) const;

  LogHistogram& operator+=(const LogHistogram& o) {
    for (std::size_t i = 0; i < kHistBuckets; ++i) buckets[i] += o.buckets[i];
    return *this;
  }
  /// Delta against an earlier snapshot of the SAME monotone histogram
  /// (per-epoch columns in the stats registry); saturates at zero so a
  /// mismatched pair cannot underflow.
  LogHistogram& operator-=(const LogHistogram& o) {
    for (std::size_t i = 0; i < kHistBuckets; ++i) {
      buckets[i] -= std::min(buckets[i], o.buckets[i]);
    }
    return *this;
  }
  bool operator==(const LogHistogram&) const = default;
};

/// Per-task streaming metrics: one Add() per completed job.
struct TaskMetrics {
  LogHistogram response;   ///< completion - release, every completed job
  LogHistogram tardiness;  ///< completion - deadline, late completions only
  Time max_tardiness = 0;

  TaskMetrics& operator+=(const TaskMetrics& o) {
    response += o.response;
    tardiness += o.tardiness;
    max_tardiness = std::max(max_tardiness, o.max_tardiness);
    return *this;
  }
  bool operator==(const TaskMetrics&) const = default;
};

/// Per-core wall-occupancy over the observed span (the horizon, or —
/// for a halted stop-on-first-miss run — the end of the last booked
/// activity, which the halting dispatch may push slightly past the
/// halt instant): every nanosecond of the
/// span is exactly one of busy (task code incl. CPMD — including the
/// truncated in-flight segment at the span end, which SimResult's
/// booked-progress busy_exec excludes), overhead (rls/sch/cnt1/cnt2
/// windows, clamped to the span), or idle (gap-accumulated between
/// activities). busy + overhead + idle == span is the §10 conservation
/// invariant, checked in tests/test_obs.cpp.
struct CoreMetrics {
  Time busy = 0;
  Time overhead = 0;
  Time idle = 0;

  bool operator==(const CoreMetrics&) const = default;
};

/// The metrics slice of a run, surfaced in sim::SimResult. Empty (both
/// vectors) unless the run was configured to record metrics.
struct RunMetrics {
  std::vector<TaskMetrics> tasks;
  std::vector<CoreMetrics> cores;
  /// The observed span the per-core accounting covers: the horizon for
  /// completed runs; for halted ones the end of the last booked
  /// activity (>= the halt instant, <= the horizon).
  Time span = 0;

  [[nodiscard]] bool enabled() const { return !tasks.empty(); }
  bool operator==(const RunMetrics&) const = default;
};

}  // namespace sps::obs
