#include "obs/spans.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <unordered_map>

#include "util/json_writer.hpp"

namespace sps::obs {

namespace {

constexpr std::size_t kStages = static_cast<std::size_t>(SpanStage::kCount);

std::uint64_t SteadyNowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::atomic<std::uint64_t> g_profiler_serial{1};

thread_local SpanProfiler* t_installed = nullptr;

}  // namespace

const char* ToString(SpanStage s) {
  switch (s) {
    case SpanStage::kUtilScreen: return "util_screen";
    case SpanStage::kMemoProbe: return "memo_probe";
    case SpanStage::kAnalysis: return "analysis";
    case SpanStage::kPlacement: return "placement";
    case SpanStage::kAdmitTotal: return "admit_total";
    case SpanStage::kLeave: return "leave";
    case SpanStage::kLadderDegrade: return "ladder_degrade";
    case SpanStage::kLadderShed: return "ladder_shed";
    case SpanStage::kFallback: return "fallback";
    case SpanStage::kEpochApply: return "epoch_apply";
    case SpanStage::kEpochValidate: return "epoch_validate";
    case SpanStage::kCheckpointWrite: return "checkpoint_write";
    case SpanStage::kRecoveryRedo: return "recovery_redo";
    case SpanStage::kCount: break;
  }
  return "?";
}

SpanProfiler::SpanProfiler(ClockFn clock)
    : clock_(clock != nullptr ? clock : &SteadyNowNs),
      serial_(g_profiler_serial.fetch_add(1, std::memory_order_relaxed)) {}

SpanProfiler::Shard* SpanProfiler::ShardForThisThread() {
  // Single-entry fast path: the steady state (one profiler, millions of
  // Record calls per thread) pays a pointer + serial compare, not a
  // hash lookup. The map behind it is keyed by (address, serial): a
  // destroyed profiler's address can be reused, so a bare pointer key
  // could alias a stale shard.
  struct Entry {
    std::uint64_t serial = 0;
    Shard* shard = nullptr;
  };
  thread_local const SpanProfiler* last_prof = nullptr;
  thread_local Entry last{};
  if (last_prof == this && last.serial == serial_) return last.shard;
  thread_local std::unordered_map<const SpanProfiler*, Entry> cache;
  Entry& e = cache[this];
  if (e.serial != serial_ || e.shard == nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    shards_.push_back(std::make_unique<Shard>());
    e = Entry{serial_, shards_.back().get()};
  }
  last_prof = this;
  last = e;
  return e.shard;
}

void SpanProfiler::Record(SpanStage stage, std::uint64_t t0,
                          std::uint64_t dur_ns) {
  Shard* s = ShardForThisThread();
  const std::size_t i = static_cast<std::size_t>(stage);
  s->hist[i].Add(static_cast<Time>(dur_ns));
  s->total_ns[i] += dur_ns;
  if (collect_slices_) {
    s->slice_t0.push_back(t0);
    s->slice_dur.push_back(dur_ns);
    s->slice_stage.push_back(stage);
  }
}

LogHistogram SpanProfiler::StageHistogram(SpanStage stage) const {
  LogHistogram out;
  const std::size_t i = static_cast<std::size_t>(stage);
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::unique_ptr<Shard>& s : shards_) out += s->hist[i];
  return out;
}

std::vector<SpanProfiler::StageReport> SpanProfiler::Report() const {
  std::vector<StageReport> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < kStages; ++i) {
    StageReport row;
    row.stage = static_cast<SpanStage>(i);
    LogHistogram merged;
    for (const std::unique_ptr<Shard>& s : shards_) {
      merged += s->hist[i];
      row.total_ns += s->total_ns[i];
    }
    row.count = merged.count();
    if (row.count == 0) continue;
    row.p50 = merged.Quantile(0.5);
    row.p99 = merged.Quantile(0.99);
    row.p999 = merged.Quantile(0.999);
    out.push_back(row);
  }
  return out;
}

std::string SpanProfiler::ToText() const {
  std::string out =
      "stage                 count     total_ms   p50_us   p99_us  p999_us\n";
  char buf[160];
  for (const StageReport& r : Report()) {
    std::snprintf(buf, sizeof(buf), "%-18s %9llu %12.3f %8.1f %8.1f %8.1f\n",
                  ToString(r.stage), static_cast<unsigned long long>(r.count),
                  static_cast<double>(r.total_ns) / 1e6,
                  static_cast<double>(r.p50) / 1e3,
                  static_cast<double>(r.p99) / 1e3,
                  static_cast<double>(r.p999) / 1e3);
    out += buf;
  }
  return out;
}

std::string SpanProfiler::ToJson() const {
  util::JsonWriter j;
  j.BeginObject();
  j.Key("stages").BeginArray();
  for (const StageReport& r : Report()) {
    j.BeginObject();
    j.Key("stage").Value(ToString(r.stage));
    j.Key("count").Value(r.count);
    j.Key("total_ns").Value(r.total_ns);
    j.Key("p50_ns").Value(static_cast<std::uint64_t>(r.p50));
    j.Key("p99_ns").Value(static_cast<std::uint64_t>(r.p99));
    j.Key("p999_ns").Value(static_cast<std::uint64_t>(r.p999));
    j.EndObject();
  }
  j.EndArray();
  j.EndObject();
  return j.str();
}

std::string SpanProfiler::SlicesToPerfettoJson() const {
  struct Slice {
    std::uint64_t t0, dur;
    SpanStage stage;
  };
  std::vector<Slice> slices;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const std::unique_ptr<Shard>& s : shards_) {
      for (std::size_t i = 0; i < s->slice_t0.size(); ++i) {
        slices.push_back(
            Slice{s->slice_t0[i], s->slice_dur[i], s->slice_stage[i]});
      }
    }
  }
  std::sort(slices.begin(), slices.end(), [](const Slice& a, const Slice& b) {
    if (a.t0 != b.t0) return a.t0 < b.t0;
    if (a.stage != b.stage) return a.stage < b.stage;
    return a.dur < b.dur;
  });

  util::JsonWriter j;
  j.BeginObject();
  j.Key("displayTimeUnit").Value("ms");
  j.Key("traceEvents").BeginArray();
  j.BeginObject();
  j.Key("name").Value("process_name");
  j.Key("ph").Value("M");
  j.Key("pid").Value(1);
  j.Key("args").BeginObject().Key("name").Value("sps wall profiler")
      .EndObject();
  j.EndObject();
  j.BeginObject();
  j.Key("name").Value("thread_name");
  j.Key("ph").Value("M");
  j.Key("pid").Value(1);
  j.Key("tid").Value(0);
  j.Key("args").BeginObject().Key("name").Value("wall").EndObject();
  j.EndObject();
  for (const Slice& s : slices) {
    j.BeginObject();
    j.Key("name").Value(ToString(s.stage));
    j.Key("cat").Value("wall");
    j.Key("ph").Value("X");
    j.Key("ts").Value(static_cast<double>(s.t0) / 1e3);
    j.Key("dur").Value(static_cast<double>(s.dur) / 1e3);
    j.Key("pid").Value(1);
    j.Key("tid").Value(0);
    j.EndObject();
  }
  j.EndArray();
  j.EndObject();
  return j.str();
}

SpanProfiler* InstalledProfiler() { return t_installed; }

ProfilerInstallation::ProfilerInstallation(SpanProfiler* p)
    : prev_(t_installed) {
  t_installed = p;
}

ProfilerInstallation::~ProfilerInstallation() { t_installed = prev_; }

}  // namespace sps::obs
