#include "obs/perfetto.hpp"

#include <algorithm>
#include <cstdio>
#include <unordered_map>
#include <vector>

#include "util/json_writer.hpp"

namespace sps::obs {

namespace {

using trace::Event;
using trace::EventKind;

/// Timestamps: the trace-event format counts in microseconds (doubles);
/// our nanosecond integers convert exactly for every horizon this
/// simulator runs (2^53 ns-as-µs headroom).
double Us(Time t) { return static_cast<double>(t) / 1e3; }

std::string TaskLabel(const Event& e) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "tau%u job%llu", e.task,
                static_cast<unsigned long long>(e.job));
  return buf;
}

/// True for the kinds that terminate the currently-open execution slice
/// on their core: the job left the CPU (preempt / finish / migrate out),
/// the core entered an overhead window (a release interrupt suspends the
/// running job before any PREEMPT event is recorded), or went idle.
bool ClosesExecSlice(EventKind k) {
  switch (k) {
    case EventKind::kPreempt:
    case EventKind::kFinish:
    case EventKind::kMigrateOut:
    case EventKind::kOverheadBegin:
    case EventKind::kIdle:
      return true;
    default:
      return false;
  }
}

const char* InstantName(EventKind k) {
  switch (k) {
    case EventKind::kRelease: return "release";
    case EventKind::kDeadlineMiss: return "DEADLINE MISS";
    case EventKind::kMigrateOut: return "migrate out";
    case EventKind::kMigrateIn: return "migrate in";
    case EventKind::kJobShed: return "job shed";
    default: return nullptr;
  }
}

struct OpenSlice {
  bool open = false;
  Time start = 0;
  Event ev;  // the kStart that opened it
};

void EmitCounter(util::JsonWriter& j, const std::string& name, Time t,
                 double value) {
  j.BeginObject();
  j.Key("name").Value(name);
  j.Key("ph").Value("C");
  j.Key("ts").Value(Us(t));
  j.Key("pid").Value(0);
  j.Key("args").BeginObject().Key("value").Value(value).EndObject();
  j.EndObject();
}

void EmitSlice(util::JsonWriter& j, const char* name, const char* cat,
               unsigned core, Time t0, Time t1) {
  j.BeginObject();
  j.Key("name").Value(name);
  j.Key("cat").Value(cat);
  j.Key("ph").Value("X");
  j.Key("ts").Value(Us(t0));
  j.Key("dur").Value(Us(t1 - t0));
  j.Key("pid").Value(0);
  j.Key("tid").Value(core);
  j.EndObject();
}

}  // namespace

// ---------------------------------------------------------------------------
// PerfettoStreamWriter — the one serializer behind both export paths.
// ---------------------------------------------------------------------------

struct PerfettoStreamWriter::Impl {
  PerfettoOptions opt;
  unsigned cores = 1;
  Time last_time = 0;

  util::JsonWriter j;   ///< the document: prelude + slices/instants
  util::JsonWriter cj;  ///< derived counter events, spliced at Finish

  /// Per-core slice reconstruction (a kStart opens; the next closing
  /// kind on that core ends it).
  std::vector<OpenSlice> open;

  /// Derived counter state, booked PER TASK: each task remembers the
  /// core where its ready increment / live job is currently booked, and
  /// the matching decrement lands on that core. This keeps the counters
  /// exact for the GLOBAL engine too, whose stream releases on the irq
  /// core, starts on whatever core dispatches, and emits kMigrateIn with
  /// no kMigrateOut — a naive same-core state machine would drift
  /// unboundedly there.
  std::vector<std::int64_t> ready;
  std::vector<std::int64_t> jobs;
  struct Booked {
    int ready_core = -1;  ///< core holding this task's ready increment
    int job_core = -1;    ///< core holding this task's live job
  };
  std::unordered_map<rt::TaskId, Booked> booked;

  explicit Impl(const PerfettoOptions& o) : opt(o) {
    cores = std::max(1u, opt.num_cores);
    open.resize(cores);
    ready.assign(cores, 0);
    jobs.assign(cores, 0);

    j.BeginObject();
    j.Key("displayTimeUnit").Value("ms");
    j.Key("traceEvents").BeginArray();

    // Track metadata: name the process and one thread per core.
    j.BeginObject();
    j.Key("name").Value("process_name");
    j.Key("ph").Value("M");
    j.Key("pid").Value(0);
    j.Key("args").BeginObject().Key("name").Value(opt.process_name)
        .EndObject();
    j.EndObject();
    for (unsigned c = 0; c < cores; ++c) {
      char name[24];
      std::snprintf(name, sizeof(name), "core %u", c);
      j.BeginObject();
      j.Key("name").Value("thread_name");
      j.Key("ph").Value("M");
      j.Key("pid").Value(0);
      j.Key("tid").Value(c);
      j.Key("args").BeginObject().Key("name").Value(name).EndObject();
      j.EndObject();
    }

    cj.BeginArray();  // counter buffer; '[' stripped at splice time
  }

  void Bump(std::vector<std::int64_t>& v, unsigned core, Time t, int d,
            const char* what) {
    v[core] = std::max<std::int64_t>(0, v[core] + d);
    char name[32];
    std::snprintf(name, sizeof(name), "%s core%u", what, core);
    EmitCounter(cj, name, t, static_cast<double>(v[core]));
  }

  void MoveJob(Booked& b, const Event& e) {
    if (b.job_core == static_cast<int>(e.core)) return;
    if (b.job_core >= 0) {
      Bump(jobs, static_cast<unsigned>(b.job_core), e.time, -1, "jobs");
    }
    Bump(jobs, e.core, e.time, +1, "jobs");
    b.job_core = static_cast<int>(e.core);
  }

  void CountEvent(const Event& e) {
    if (e.core >= cores) return;
    Booked& b = booked[e.task];
    switch (e.kind) {
      case EventKind::kRelease:
      case EventKind::kMigrateIn:
        if (b.ready_core < 0) {
          Bump(ready, e.core, e.time, +1, "ready");
          b.ready_core = static_cast<int>(e.core);
        }
        MoveJob(b, e);
        break;
      case EventKind::kPreempt:
        if (b.ready_core < 0) {
          Bump(ready, e.core, e.time, +1, "ready");
          b.ready_core = static_cast<int>(e.core);
        }
        break;
      case EventKind::kStart:
        if (b.ready_core >= 0) {
          Bump(ready, static_cast<unsigned>(b.ready_core), e.time, -1,
               "ready");
          b.ready_core = -1;
        }
        MoveJob(b, e);
        break;
      case EventKind::kFinish:
        if (b.job_core >= 0) {
          Bump(jobs, static_cast<unsigned>(b.job_core), e.time, -1, "jobs");
          b.job_core = -1;
        }
        break;
      default:
        break;
    }
  }

  void AppendOne(const Event& e) {
    last_time = std::max(last_time, e.time + e.duration);

    // Execution slices are reconstructed per core: a kStart opens one;
    // the next closing kind on that core ends it. Overhead slices carry
    // their duration directly. Everything else becomes an instant.
    if (e.core < open.size()) {
      OpenSlice& slice = open[e.core];
      if (slice.open && ClosesExecSlice(e.kind) && e.time >= slice.start) {
        if (e.time > slice.start) {
          EmitSlice(j, TaskLabel(slice.ev).c_str(), "exec", e.core,
                    slice.start, e.time);
        }
        slice.open = false;
      }
    }
    switch (e.kind) {
      case EventKind::kStart:
        if (e.core < open.size()) {
          open[e.core].open = true;
          open[e.core].start = e.time;
          open[e.core].ev = e;
        }
        break;
      case EventKind::kOverheadBegin:
        if (e.duration > 0) {
          EmitSlice(j, trace::ToString(e.overhead), "overhead", e.core,
                    e.time, e.time + e.duration);
        }
        break;
      default:
        if (const char* name = InstantName(e.kind)) {
          j.BeginObject();
          j.Key("name").Value(name);
          j.Key("cat").Value("sched");
          j.Key("ph").Value("i");
          j.Key("s").Value("t");
          j.Key("ts").Value(Us(e.time));
          j.Key("pid").Value(0);
          j.Key("tid").Value(e.core);
          j.Key("args").BeginObject().Key("task").Value(TaskLabel(e))
              .EndObject();
          j.EndObject();
        }
        break;
    }
    if (opt.counter_tracks) CountEvent(e);
  }

  std::string Finish() {
    // Close slices still running when the trace ends.
    for (unsigned c = 0; c < open.size(); ++c) {
      if (open[c].open && last_time > open[c].start) {
        EmitSlice(j, TaskLabel(open[c].ev).c_str(), "exec", c,
                  open[c].start, last_time);
      }
    }
    // Counter tracks, appended after the slices (Perfetto orders by
    // ts): splice the buffered derived-counter events, then the
    // caller-supplied series.
    if (opt.counter_tracks && cj.str().size() > 1) {
      j.Raw(std::string_view(cj.str()).substr(1));  // strip the '['
    }
    for (const CounterSeries& s : opt.extra_counters) {
      for (const auto& [t, v] : s.points) EmitCounter(j, s.name, t, v);
    }
    j.EndArray();
    j.EndObject();
    return j.str();
  }
};

PerfettoStreamWriter::PerfettoStreamWriter(const PerfettoOptions& opt)
    : impl_(std::make_unique<Impl>(opt)) {}
PerfettoStreamWriter::~PerfettoStreamWriter() = default;
PerfettoStreamWriter::PerfettoStreamWriter(PerfettoStreamWriter&&) noexcept =
    default;
PerfettoStreamWriter& PerfettoStreamWriter::operator=(
    PerfettoStreamWriter&&) noexcept = default;

void PerfettoStreamWriter::Append(const std::vector<Event>& batch) {
  for (const Event& e : batch) impl_->AppendOne(e);
}

std::string PerfettoStreamWriter::Finish() { return impl_->Finish(); }

// ---------------------------------------------------------------------------
// One-shot export: a pre-pass resolves the track count (streaming cannot
// infer it), then the same writer serializes — byte-identical paths.
// ---------------------------------------------------------------------------

std::string ToPerfettoJson(const std::vector<Event>& events,
                           const PerfettoOptions& opt) {
  unsigned cores = opt.num_cores;
  for (const Event& e : events) cores = std::max(cores, e.core + 1);
  if (cores == 0) cores = 1;

  PerfettoOptions resolved = opt;
  resolved.num_cores = cores;
  PerfettoStreamWriter w(resolved);
  w.Append(events);
  return w.Finish();
}

bool WritePerfettoJson(const std::vector<Event>& events,
                       const std::string& path, const PerfettoOptions& opt,
                       std::string* error) {
  return util::WriteTextFile(path, ToPerfettoJson(events, opt), error);
}

}  // namespace sps::obs
