#include "obs/perfetto.hpp"

#include <algorithm>
#include <cstdio>
#include <unordered_map>
#include <vector>

#include "util/json_writer.hpp"

namespace sps::obs {

namespace {

using trace::Event;
using trace::EventKind;

/// Timestamps: the trace-event format counts in microseconds (doubles);
/// our nanosecond integers convert exactly for every horizon this
/// simulator runs (2^53 ns-as-µs headroom).
double Us(Time t) { return static_cast<double>(t) / 1e3; }

std::string TaskLabel(const Event& e) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "tau%u job%llu", e.task,
                static_cast<unsigned long long>(e.job));
  return buf;
}

/// True for the kinds that terminate the currently-open execution slice
/// on their core: the job left the CPU (preempt / finish / migrate out),
/// the core entered an overhead window (a release interrupt suspends the
/// running job before any PREEMPT event is recorded), or went idle.
bool ClosesExecSlice(EventKind k) {
  switch (k) {
    case EventKind::kPreempt:
    case EventKind::kFinish:
    case EventKind::kMigrateOut:
    case EventKind::kOverheadBegin:
    case EventKind::kIdle:
      return true;
    default:
      return false;
  }
}

const char* InstantName(EventKind k) {
  switch (k) {
    case EventKind::kRelease: return "release";
    case EventKind::kDeadlineMiss: return "DEADLINE MISS";
    case EventKind::kMigrateOut: return "migrate out";
    case EventKind::kMigrateIn: return "migrate in";
    case EventKind::kJobShed: return "job shed";
    default: return nullptr;
  }
}

struct OpenSlice {
  bool open = false;
  Time start = 0;
  Event ev;  // the kStart that opened it
};

void EmitCounter(util::JsonWriter& j, const std::string& name, Time t,
                 double value) {
  j.BeginObject();
  j.Key("name").Value(name);
  j.Key("ph").Value("C");
  j.Key("ts").Value(Us(t));
  j.Key("pid").Value(0);
  j.Key("args").BeginObject().Key("value").Value(value).EndObject();
  j.EndObject();
}

/// Derive the per-core counter tracks (header: ready-queue depth and
/// jobs in flight) in one pass over the events. Pure function of the
/// stream — the document stays deterministic.
///
/// Counts are booked PER TASK: each task remembers the core where its
/// ready increment / live job is currently booked, and the matching
/// decrement lands on that core. This keeps the counters exact for the
/// GLOBAL engine too, whose stream releases on the irq core, starts on
/// whatever core dispatches, and emits kMigrateIn with no kMigrateOut —
/// a naive same-core state machine would drift unboundedly there.
void EmitDerivedCounters(util::JsonWriter& j,
                         const std::vector<Event>& events, unsigned cores) {
  std::vector<std::int64_t> ready(cores, 0);
  std::vector<std::int64_t> jobs(cores, 0);
  struct Booked {
    int ready_core = -1;  ///< core holding this task's ready increment
    int job_core = -1;    ///< core holding this task's live job
  };
  std::unordered_map<rt::TaskId, Booked> booked;
  auto bump = [&](std::vector<std::int64_t>& v, unsigned core, Time t,
                  int d, const char* what) {
    v[core] = std::max<std::int64_t>(0, v[core] + d);
    char name[32];
    std::snprintf(name, sizeof(name), "%s core%u", what, core);
    EmitCounter(j, name, t, static_cast<double>(v[core]));
  };
  auto move_job = [&](Booked& b, const Event& e) {
    if (b.job_core == static_cast<int>(e.core)) return;
    if (b.job_core >= 0) {
      bump(jobs, static_cast<unsigned>(b.job_core), e.time, -1, "jobs");
    }
    bump(jobs, e.core, e.time, +1, "jobs");
    b.job_core = static_cast<int>(e.core);
  };
  for (const Event& e : events) {
    if (e.core >= cores) continue;
    Booked& b = booked[e.task];
    switch (e.kind) {
      case EventKind::kRelease:
      case EventKind::kMigrateIn:
        if (b.ready_core < 0) {
          bump(ready, e.core, e.time, +1, "ready");
          b.ready_core = static_cast<int>(e.core);
        }
        move_job(b, e);
        break;
      case EventKind::kPreempt:
        if (b.ready_core < 0) {
          bump(ready, e.core, e.time, +1, "ready");
          b.ready_core = static_cast<int>(e.core);
        }
        break;
      case EventKind::kStart:
        if (b.ready_core >= 0) {
          bump(ready, static_cast<unsigned>(b.ready_core), e.time, -1,
               "ready");
          b.ready_core = -1;
        }
        move_job(b, e);
        break;
      case EventKind::kFinish:
        if (b.job_core >= 0) {
          bump(jobs, static_cast<unsigned>(b.job_core), e.time, -1,
               "jobs");
          b.job_core = -1;
        }
        break;
      default:
        break;
    }
  }
}

void EmitSlice(util::JsonWriter& j, const char* name, const char* cat,
               unsigned core, Time t0, Time t1) {
  j.BeginObject();
  j.Key("name").Value(name);
  j.Key("cat").Value(cat);
  j.Key("ph").Value("X");
  j.Key("ts").Value(Us(t0));
  j.Key("dur").Value(Us(t1 - t0));
  j.Key("pid").Value(0);
  j.Key("tid").Value(core);
  j.EndObject();
}

}  // namespace

std::string ToPerfettoJson(const std::vector<Event>& events,
                           const PerfettoOptions& opt) {
  unsigned cores = opt.num_cores;
  Time last_time = 0;
  for (const Event& e : events) {
    cores = std::max(cores, e.core + 1);
    last_time = std::max(last_time, e.time + e.duration);
  }
  if (cores == 0) cores = 1;

  util::JsonWriter j;
  j.BeginObject();
  j.Key("displayTimeUnit").Value("ms");
  j.Key("traceEvents").BeginArray();

  // Track metadata: name the process and one thread per core.
  j.BeginObject();
  j.Key("name").Value("process_name");
  j.Key("ph").Value("M");
  j.Key("pid").Value(0);
  j.Key("args").BeginObject().Key("name").Value(opt.process_name).EndObject();
  j.EndObject();
  for (unsigned c = 0; c < cores; ++c) {
    char name[24];
    std::snprintf(name, sizeof(name), "core %u", c);
    j.BeginObject();
    j.Key("name").Value("thread_name");
    j.Key("ph").Value("M");
    j.Key("pid").Value(0);
    j.Key("tid").Value(c);
    j.Key("args").BeginObject().Key("name").Value(name).EndObject();
    j.EndObject();
  }

  // Execution slices are reconstructed per core: a kStart opens one; the
  // next closing kind on that core ends it. Overhead slices carry their
  // duration directly. Everything else becomes an instant.
  std::vector<OpenSlice> open(cores);
  for (const Event& e : events) {
    OpenSlice& slice = open[e.core];
    if (slice.open && ClosesExecSlice(e.kind) && e.time >= slice.start) {
      if (e.time > slice.start) {
        EmitSlice(j, TaskLabel(slice.ev).c_str(), "exec", e.core,
                  slice.start, e.time);
      }
      slice.open = false;
    }
    switch (e.kind) {
      case EventKind::kStart:
        slice.open = true;
        slice.start = e.time;
        slice.ev = e;
        break;
      case EventKind::kOverheadBegin:
        if (e.duration > 0) {
          EmitSlice(j, trace::ToString(e.overhead), "overhead", e.core,
                    e.time, e.time + e.duration);
        }
        break;
      default:
        if (const char* name = InstantName(e.kind)) {
          j.BeginObject();
          j.Key("name").Value(name);
          j.Key("cat").Value("sched");
          j.Key("ph").Value("i");
          j.Key("s").Value("t");
          j.Key("ts").Value(Us(e.time));
          j.Key("pid").Value(0);
          j.Key("tid").Value(e.core);
          j.Key("args").BeginObject().Key("task").Value(TaskLabel(e))
              .EndObject();
          j.EndObject();
        }
        break;
    }
  }
  // Close slices still running when the trace ends.
  for (unsigned c = 0; c < cores; ++c) {
    if (open[c].open && last_time > open[c].start) {
      EmitSlice(j, TaskLabel(open[c].ev).c_str(), "exec", c, open[c].start,
                last_time);
    }
  }

  // Counter tracks, appended after the slices (Perfetto orders by ts).
  if (opt.counter_tracks) EmitDerivedCounters(j, events, cores);
  for (const CounterSeries& s : opt.extra_counters) {
    for (const auto& [t, v] : s.points) EmitCounter(j, s.name, t, v);
  }

  j.EndArray();
  j.EndObject();
  return j.str();
}

bool WritePerfettoJson(const std::vector<Event>& events,
                       const std::string& path, const PerfettoOptions& opt,
                       std::string* error) {
  return util::WriteTextFile(path, ToPerfettoJson(events, opt), error);
}

}  // namespace sps::obs
