#pragma once
// Chrome trace-event exporter (DESIGN.md §10): turns a simulator trace
// into the JSON array format that Perfetto (ui.perfetto.dev) and
// chrome://tracing load directly — one named track per core, execution
// and overhead slices as complete ("X") events, scheduler happenings
// (release / deadline miss / migration / shed) as instants. The third
// way to look at a run, next to the ASCII Gantt and the CSV dump
// (trace/gantt.hpp), and the one that survives zooming into a
// million-event trace.

#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace sps::obs {

struct PerfettoOptions {
  /// Number of core tracks to declare; 0 = infer from the events.
  unsigned num_cores = 0;
  /// Process name shown in the UI.
  std::string process_name = "sps simulation";
};

/// Serialize the (dispatch-ordered) event stream to Chrome trace-event
/// JSON. Deterministic: a byte-identical event stream yields a
/// byte-identical document (golden-file tested).
[[nodiscard]] std::string ToPerfettoJson(
    const std::vector<trace::Event>& events,
    const PerfettoOptions& opt = {});

/// Convenience: serialize and write to `path`. Returns success.
[[nodiscard]] bool WritePerfettoJson(const std::vector<trace::Event>& events,
                                     const std::string& path,
                                     const PerfettoOptions& opt = {});

}  // namespace sps::obs
