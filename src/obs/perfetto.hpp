#pragma once
// Chrome trace-event exporter (DESIGN.md §10): turns a simulator trace
// into the JSON array format that Perfetto (ui.perfetto.dev) and
// chrome://tracing load directly — one named track per core, execution
// and overhead slices as complete ("X") events, scheduler happenings
// (release / deadline miss / migration / shed) as instants, and COUNTER
// ("C") tracks: per-core ready-queue depth and in-flight job count
// (approximating the job arena's occupancy) derived deterministically
// from the event stream, plus any caller-supplied series (the online
// subsystem exports churn / resident-count / utilization per epoch this
// way). The third way to look at a run, next to the ASCII Gantt and the
// CSV dump (trace/gantt.hpp), and the one that survives zooming into a
// million-event trace.

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace_buffer.hpp"
#include "rt/time.hpp"
#include "trace/trace.hpp"

namespace sps::obs {

/// One counter track: (timestamp, value) points, emitted in order as
/// Chrome counter events. The exporter derives the per-core tracks
/// itself; this is the vehicle for EXTRA series (e.g. the online
/// controller's churn per epoch).
struct CounterSeries {
  std::string name;
  std::vector<std::pair<Time, double>> points;
};

struct PerfettoOptions {
  /// Number of core tracks to declare; 0 = infer from the events.
  unsigned num_cores = 0;
  /// Process name shown in the UI.
  std::string process_name = "sps simulation";
  /// Derive per-core "ready depth" / "jobs in flight" counter tracks
  /// from the event stream (ROADMAP observability item). Depth counts
  /// jobs that are ready but not running (release / migrate-in /
  /// preempt add one; start removes one); jobs-in-flight counts
  /// released-but-unfinished jobs on the core — the arena-occupancy
  /// proxy (the kernel recycles a job's slab slot at the task's next
  /// release).
  bool counter_tracks = true;
  /// Extra counter tracks appended verbatim (points must be
  /// time-ordered for a deterministic document).
  std::vector<CounterSeries> extra_counters;
};

/// Serialize the (dispatch-ordered) event stream to Chrome trace-event
/// JSON. Deterministic: a byte-identical event stream yields a
/// byte-identical document (golden-file tested). Implemented on top of
/// PerfettoStreamWriter — the one-shot and streaming paths share one
/// serializer, so their documents are byte-identical by construction.
[[nodiscard]] std::string ToPerfettoJson(
    const std::vector<trace::Event>& events,
    const PerfettoOptions& opt = {});

/// Incremental Perfetto serializer (DESIGN.md §15): feed stamp-ordered
/// event batches as they drain from the streaming trace window, get the
/// complete document at Finish(). Holds O(output-bytes) of JSON text but
/// only O(1) of EVENT state (per-core open slices + per-task counter
/// booking) — the bounded-memory claim of the streaming window is about
/// the stamped-event storage, which this writer lets the kernel recycle
/// mid-run. The derived counter events are buffered in a side JsonWriter
/// and spliced after the slices at Finish(), reproducing the one-shot
/// document's layout exactly.
///
/// opt.num_cores must cover every event core (streaming cannot wait to
/// infer the track count); 0 is treated as 1.
class PerfettoStreamWriter {
 public:
  explicit PerfettoStreamWriter(const PerfettoOptions& opt);
  ~PerfettoStreamWriter();
  PerfettoStreamWriter(PerfettoStreamWriter&&) noexcept;
  PerfettoStreamWriter& operator=(PerfettoStreamWriter&&) noexcept;

  void Append(const std::vector<trace::Event>& batch);
  /// Close trailing slices, splice the counter tracks, and return the
  /// finished document. Call exactly once.
  [[nodiscard]] std::string Finish();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// TraceDrain adapter: plugs the streaming window straight into the
/// Perfetto serializer (sim::SimConfig::trace_drain). After the run,
/// document() is byte-identical to ToPerfettoJson over the full-buffer
/// trace, and stats() carries the streaming bounds for assertions.
class PerfettoStreamDrain final : public TraceDrain {
 public:
  explicit PerfettoStreamDrain(const PerfettoOptions& opt)
      : writer_(opt) {}
  void OnEvents(const std::vector<trace::Event>& batch) override {
    writer_.Append(batch);
  }
  void OnFinish(const TraceStreamStats& stats) override {
    stats_ = stats;
    doc_ = writer_.Finish();
  }
  [[nodiscard]] const std::string& document() const { return doc_; }
  [[nodiscard]] const TraceStreamStats& stats() const { return stats_; }

 private:
  PerfettoStreamWriter writer_;
  TraceStreamStats stats_;
  std::string doc_;
};

/// Convenience: serialize and write to `path`. Returns success; on
/// failure a non-null `error` receives the failing path and errno.
[[nodiscard]] bool WritePerfettoJson(const std::vector<trace::Event>& events,
                                     const std::string& path,
                                     const PerfettoOptions& opt = {},
                                     std::string* error = nullptr);

}  // namespace sps::obs
