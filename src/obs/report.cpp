#include "obs/report.hpp"

#include <cassert>
#include <cstdio>

#include "util/json_writer.hpp"

namespace sps::obs {

MetricsReport BuildMetricsReport(const sim::SimResult& r) {
  assert(r.metrics.enabled() &&
         "BuildMetricsReport needs a run with record_metrics");
  MetricsReport rep;
  rep.span = r.metrics.span;
  rep.total_misses = r.total_misses;

  rep.tasks.reserve(r.tasks.size());
  for (std::size_t i = 0; i < r.tasks.size(); ++i) {
    const sim::TaskStats& s = r.tasks[i];
    const TaskMetrics& m = r.metrics.tasks[i];
    MetricsReport::TaskRow row;
    row.id = s.id;
    row.released = s.released;
    row.completed = s.completed;
    row.deadline_misses = s.deadline_misses;
    row.shed = s.shed;
    row.preemptions = s.preemptions;
    row.migrations = s.migrations;
    row.max_response = s.max_response;
    row.avg_response = s.avg_response;
    row.p50_response = m.response.Quantile(0.50);
    row.p99_response = m.response.Quantile(0.99);
    row.max_tardiness = m.max_tardiness;
    row.response = m.response;
    row.tardiness = m.tardiness;
    rep.tasks.push_back(std::move(row));
  }

  rep.cores.reserve(r.cores.size());
  for (std::size_t c = 0; c < r.cores.size(); ++c) {
    const sim::CoreStats& s = r.cores[c];
    const CoreMetrics& m = r.metrics.cores[c];
    MetricsReport::CoreRow row;
    row.core = static_cast<std::uint32_t>(c);
    row.busy = m.busy;
    row.overhead = m.overhead;
    row.idle = m.idle;
    row.cpmd = s.cpmd_charged;
    row.context_switches = s.context_switches;
    rep.cores.push_back(row);
  }
  return rep;
}

namespace {

void HistJson(util::JsonWriter& j, const char* key, const LogHistogram& h) {
  j.Key(key).BeginArray();
  // Trailing zero buckets are elided; consumers index from bucket 0.
  std::size_t last = 0;
  for (std::size_t i = 0; i < kHistBuckets; ++i) {
    if (h.buckets[i] != 0) last = i + 1;
  }
  for (std::size_t i = 0; i < last; ++i) j.Value(h.buckets[i]);
  j.EndArray();
}

}  // namespace

std::string MetricsReport::ToJson() const {
  util::JsonWriter j;
  j.BeginObject();
  j.Key("span_ns").Value(static_cast<std::int64_t>(span));
  j.Key("total_misses").Value(total_misses);
  j.Key("hist_bucket_ns").Value("bucket i counts values in [2^(i-1), 2^i)");
  j.Key("tasks").BeginArray();
  for (const TaskRow& t : tasks) {
    j.BeginObject();
    j.Key("id").Value(static_cast<std::uint64_t>(t.id));
    j.Key("released").Value(t.released);
    j.Key("completed").Value(t.completed);
    j.Key("deadline_misses").Value(t.deadline_misses);
    j.Key("shed").Value(t.shed);
    j.Key("preemptions").Value(t.preemptions);
    j.Key("migrations").Value(t.migrations);
    j.Key("max_response_ns").Value(static_cast<std::int64_t>(t.max_response));
    j.Key("avg_response_ns").Value(t.avg_response);
    j.Key("p50_response_ns").Value(static_cast<std::int64_t>(t.p50_response));
    j.Key("p99_response_ns").Value(static_cast<std::int64_t>(t.p99_response));
    j.Key("max_tardiness_ns")
        .Value(static_cast<std::int64_t>(t.max_tardiness));
    HistJson(j, "response_hist", t.response);
    HistJson(j, "tardiness_hist", t.tardiness);
    j.EndObject();
  }
  j.EndArray();
  j.Key("cores").BeginArray();
  for (const CoreRow& c : cores) {
    j.BeginObject();
    j.Key("core").Value(c.core);
    j.Key("busy_ns").Value(static_cast<std::int64_t>(c.busy));
    j.Key("overhead_ns").Value(static_cast<std::int64_t>(c.overhead));
    j.Key("idle_ns").Value(static_cast<std::int64_t>(c.idle));
    j.Key("cpmd_ns").Value(static_cast<std::int64_t>(c.cpmd));
    j.Key("context_switches").Value(c.context_switches);
    j.EndObject();
  }
  j.EndArray();
  j.EndObject();
  return j.str();
}

std::string MetricsReport::TaskCsv() const {
  std::string out =
      "task,released,completed,deadline_misses,shed,preemptions,"
      "migrations,max_response_ns,avg_response_ns,p50_response_ns,"
      "p99_response_ns,max_tardiness_ns\n";
  char buf[256];
  for (const TaskRow& t : tasks) {
    std::snprintf(buf, sizeof(buf),
                  "%u,%llu,%llu,%llu,%llu,%llu,%llu,%lld,%.1f,%lld,%lld,"
                  "%lld\n",
                  t.id, static_cast<unsigned long long>(t.released),
                  static_cast<unsigned long long>(t.completed),
                  static_cast<unsigned long long>(t.deadline_misses),
                  static_cast<unsigned long long>(t.shed),
                  static_cast<unsigned long long>(t.preemptions),
                  static_cast<unsigned long long>(t.migrations),
                  static_cast<long long>(t.max_response), t.avg_response,
                  static_cast<long long>(t.p50_response),
                  static_cast<long long>(t.p99_response),
                  static_cast<long long>(t.max_tardiness));
    out += buf;
  }
  return out;
}

std::string MetricsReport::CoreCsv() const {
  std::string out =
      "core,busy_ns,overhead_ns,idle_ns,cpmd_ns,context_switches\n";
  char buf[160];
  for (const CoreRow& c : cores) {
    std::snprintf(buf, sizeof(buf), "%u,%lld,%lld,%lld,%lld,%llu\n", c.core,
                  static_cast<long long>(c.busy),
                  static_cast<long long>(c.overhead),
                  static_cast<long long>(c.idle),
                  static_cast<long long>(c.cpmd),
                  static_cast<unsigned long long>(c.context_switches));
    out += buf;
  }
  return out;
}

}  // namespace sps::obs
