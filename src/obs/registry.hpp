#pragma once
// Unified stats registry (DESIGN.md §15): one named home for the
// counters, gauges, and histograms the subsystems used to keep in
// scattered ad-hoc structs (AdmitStats, OverloadStats, churn counters,
// MemoStats, recovery counters). A StatsSnapshot is a value: snapshot it
// mid-run for a heartbeat, subtract an earlier snapshot for per-epoch
// deltas, merge across workers, and export as JSON or CSV (map-backed,
// so export order is deterministic — the --stats-out dump is
// byte-comparable between runs with identical decisions).
//
// Everything in here is DETERMINISTIC data (decision counters, resident
// counts, sim-time histograms). Wall-clock profiling lives in
// obs/spans.hpp and stays on its own channel; do not register wall
// readings here (the §15 firewall).

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"

namespace sps::util {
class ThreadPool;
}  // namespace sps::util

namespace sps::obs {

struct StatsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, LogHistogram> hists;

  /// Counters and histograms subtract (saturating at zero — they are
  /// monotone within a run); gauges keep THIS snapshot's value (a gauge
  /// is a level, not a rate).
  [[nodiscard]] StatsSnapshot Delta(const StatsSnapshot& earlier) const;

  /// Counters and histograms add; gauges sum (callers merging shards
  /// register per-shard gauges under distinct names when a sum is not
  /// the right aggregate).
  void Merge(const StatsSnapshot& other);

  [[nodiscard]] std::string ToJson() const;
  /// Flat "name,kind,value" rows; histograms export count and the log2
  /// p50/p99 upper bounds.
  [[nodiscard]] std::string ToCsv() const;

  bool operator==(const StatsSnapshot&) const = default;
};

/// The mutable registry: subsystems (or the adapter functions that read
/// their existing stats structs) set named values; consumers snapshot.
/// Single-writer by design — the online replay loop owns one registry
/// and updates it between epochs.
class StatsRegistry {
 public:
  void SetCounter(std::string_view name, std::uint64_t v) {
    snap_.counters[std::string(name)] = v;
  }
  void AddCounter(std::string_view name, std::uint64_t v) {
    snap_.counters[std::string(name)] += v;
  }
  void SetGauge(std::string_view name, double v) {
    snap_.gauges[std::string(name)] = v;
  }
  void SetHistogram(std::string_view name, const LogHistogram& h) {
    snap_.hists[std::string(name)] = h;
  }

  [[nodiscard]] const StatsSnapshot& snapshot() const { return snap_; }
  [[nodiscard]] StatsSnapshot TakeSnapshot() const { return snap_; }

 private:
  StatsSnapshot snap_;
};

/// Register the thread pool's per-worker busy/steal counters and
/// queue-depth gauges ("pool.worker.<i>.indices", "pool.batches",
/// "pool.queue_peak", "pool.steal_ratio", ...). EXCEPTION to the
/// header's determinism note, on purpose: which worker claimed which
/// index is scheduling-dependent, so a registry holding pool stats is
/// wall-channel data (stderr / --profile-out) and must never feed the
/// byte-compared --stats-out registry. Keep them in separate
/// StatsRegistry instances.
void FillPoolStatsRegistry(StatsRegistry& reg, const util::ThreadPool& pool);

}  // namespace sps::obs
