#include "obs/flight.hpp"

#include <csignal>

#include "obs/reqtrace.hpp"

namespace sps::obs {

namespace {

std::uint64_t AttrBits(std::int64_t v) {
  return static_cast<std::uint64_t>(v);
}

std::int64_t BitsAttr(std::uint64_t w) { return static_cast<std::int64_t>(w); }

}  // namespace

FlightRing::FlightRing(std::uint32_t slots)
    : slots_(std::make_unique<Slot[]>(slots > 0 ? slots : 1)),
      n_(slots > 0 ? slots : 1) {}

void FlightRing::Push(const FlightRecord& r) {
  const std::uint64_t h = head_.load(std::memory_order_relaxed);
  Slot& s = slots_[h % n_];
  s.ver.fetch_add(1, std::memory_order_acq_rel);  // odd: write in flight
  s.w[0].store(static_cast<std::uint64_t>(r.kind) |
                   (static_cast<std::uint64_t>(r.stage) << 8),
               std::memory_order_relaxed);
  s.w[1].store(r.trace_id, std::memory_order_relaxed);
  s.w[2].store(r.seq, std::memory_order_relaxed);
  s.w[3].store(r.t0, std::memory_order_relaxed);
  s.w[4].store(r.dur_ns, std::memory_order_relaxed);
  s.w[5].store(AttrBits(r.attr), std::memory_order_relaxed);
  s.w[6].store(r.aux0, std::memory_order_relaxed);
  s.w[7].store(r.aux1, std::memory_order_relaxed);
  s.ver.fetch_add(1, std::memory_order_release);  // even: stable
  head_.store(h + 1, std::memory_order_release);
}

std::vector<FlightRecord> FlightRing::Snapshot() const {
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t count = head < n_ ? head : n_;
  std::vector<FlightRecord> out;
  out.reserve(count);
  for (std::uint64_t i = head - count; i < head; ++i) {
    const Slot& s = slots_[i % n_];
    const std::uint64_t v1 = s.ver.load(std::memory_order_acquire);
    if ((v1 & 1) != 0) continue;  // mid-write
    std::uint64_t w[8];
    for (int k = 0; k < 8; ++k) w[k] = s.w[k].load(std::memory_order_acquire);
    if (s.ver.load(std::memory_order_acquire) != v1) continue;  // torn
    FlightRecord r;
    r.kind = static_cast<FlightRecord::Kind>(w[0] & 0xff);
    r.stage = static_cast<std::uint8_t>((w[0] >> 8) & 0xff);
    r.trace_id = w[1];
    r.seq = w[2];
    r.t0 = w[3];
    r.dur_ns = w[4];
    r.attr = BitsAttr(w[5]);
    r.aux0 = w[6];
    r.aux1 = w[7];
    out.push_back(r);
  }
  return out;
}

namespace {

std::atomic<RequestTracer*> g_crash_tracer{nullptr};

void CrashHandler(int sig) {
  // One shot: restore the default disposition first, so a second fault
  // inside the (deliberately non-async-signal-safe) dump path kills the
  // process instead of recursing.
  std::signal(sig, SIG_DFL);
  if (RequestTracer* t = g_crash_tracer.load(std::memory_order_acquire)) {
    (void)t->DumpFlight("signal_" + std::to_string(sig));
  }
  std::raise(sig);
}

}  // namespace

void SetCrashDumpTracer(RequestTracer* t) {
  g_crash_tracer.store(t, std::memory_order_release);
}

RequestTracer* CrashDumpTracer() {
  return g_crash_tracer.load(std::memory_order_acquire);
}

void InstallCrashSignalHandlers() {
  for (const int sig : {SIGSEGV, SIGBUS, SIGILL, SIGFPE, SIGABRT}) {
    std::signal(sig, &CrashHandler);
  }
}

}  // namespace sps::obs
