#pragma once
// Per-lane trace recording (DESIGN.md §10). The kernel no longer streams
// trace events into a shared vector (which is what forced traced runs
// onto the serial path): each lane appends STAMPED events to its own
// arena-backed TraceBuffer, and the canonical trace of a run — serial or
// sharded, byte-identical either way — is produced afterwards by a
// deterministic k-way merge over the lane buffers.
//
// The stamp is what makes the merge exact. Every record carries the
// identity of the DISPATCH that emitted it:
//
//   key      the dispatched event's packed (time, kind) key — the same
//            total order the event queue pops in;
//   tiebreak the dispatch's subject among equal keys: the core for
//            core-owned kinds (segment end, overhead end), the task
//            index for task-owned kinds (timer, migration arrival).
//            Kinds never collide across the two spaces because the kind
//            sits in the key's low bits;
//   chain    which same-(key, tiebreak) dispatch this is. Zero-cost
//            overhead windows make back-to-back overhead-end dispatches
//            for one core at one instant the NORM, so a per-subject
//            counter disambiguates them. The chain index is lane-local
//            state, and it is shard-invariant because a subject's events
//            are only ever pushed by that subject's own lane, in the
//            lane's deterministic dispatch order;
//   ordinal  position within the dispatch (a handler emits several
//            events: release + overhead begin, ...).
//
// (key, tiebreak, chain, ordinal) is a total order over all records of a
// run, and every component is a pure function of the simulation — not of
// the shard count or thread interleaving. Sorting by it therefore yields
// the same byte sequence from any execution mode. Note the canonical
// order refines the serial dispatch order only up to same-key ties
// across DIFFERENT subjects (serial interleaves those by insertion
// order, the canonical order by subject index); per-core subsequences —
// what the Gantt renderer and every existing consumer read — are
// unchanged.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "trace/trace.hpp"
#include "util/arena.hpp"

namespace sps::obs {

struct Stamp {
  std::uint64_t key = 0;
  std::uint64_t tiebreak = 0;
  std::uint32_t chain = 0;
  std::uint32_t ordinal = 0;

  friend bool operator<(const Stamp& a, const Stamp& b) {
    if (a.key != b.key) return a.key < b.key;
    if (a.tiebreak != b.tiebreak) return a.tiebreak < b.tiebreak;
    if (a.chain != b.chain) return a.chain < b.chain;
    return a.ordinal < b.ordinal;
  }
};

struct StampedEvent {
  Stamp stamp;
  trace::Event event;
};

/// Append-only event storage with stable chunks carved from a SlabArena —
/// the same O(log n)-real-allocations story as every other hot-path
/// container here (util/arena.hpp). A lane appends millions of records
/// without ever touching the global allocator in steady state.
///
/// Streaming-window mode (DESIGN.md §15) additionally POPS from the
/// front: DrainBelow() removes the finalized prefix (records whose key
/// is below a watermark the driver proves no future dispatch can
/// undercut), recycling fully-consumed chunks back into the arena — so
/// a horizon-scale traced run holds O(window) records instead of
/// O(events).
class TraceBuffer {
  static constexpr std::size_t kChunkEvents = 512;
  struct Chunk {
    StampedEvent ev[kChunkEvents];
  };

 public:
  void Append(const Stamp& s, const trace::Event& e) {
    if (used_ == kChunkEvents || chunks_.empty()) {
      chunks_.push_back(arena_.create());
      used_ = 0;
    }
    chunks_.back()->ev[used_++] = StampedEvent{s, e};
    ++size_;
  }

  /// Live (appended minus drained) record count.
  [[nodiscard]] std::size_t size() const { return size_; }

  /// Pop the finalized prefix: every record whose stamp key is strictly
  /// below `key_limit`, appended (stamp-sorted) to `out`. Valid because
  /// a lane's append order is key-monotone — DES dispatch time never
  /// decreases — so the below-limit records form exactly the front of
  /// the buffer; the sort only settles same-key ties (chain/ordinal).
  /// Fully-consumed chunks are recycled into the arena.
  void DrainBelow(std::uint64_t key_limit, std::vector<StampedEvent>& out) {
    const std::size_t start = out.size();
    while (size_ > 0) {
      Chunk* front = chunks_.front();
      const StampedEvent& e = front->ev[head_];
      if (e.stamp.key >= key_limit) break;
      out.push_back(e);
      ++head_;
      --size_;
      if (head_ == kChunkEvents) {
        arena_.destroy(front);
        chunks_.erase(chunks_.begin());
        head_ = 0;
      } else if (size_ == 0 && chunks_.size() == 1 && head_ == used_) {
        // The partially-filled tail chunk is fully consumed: reset so
        // the next Append starts a fresh chunk at offset 0.
        arena_.destroy(front);
        chunks_.clear();
        head_ = 0;
        used_ = 0;
      }
    }
    std::sort(out.begin() + static_cast<std::ptrdiff_t>(start), out.end(),
              [](const StampedEvent& a, const StampedEvent& b) {
                return a.stamp < b.stamp;
              });
  }

  /// Copy out every live record, sorted by stamp. Lane-local append order
  /// is already key-sorted (DES time never goes backwards), so this sort
  /// only reorders same-key ties — near-linear in practice.
  [[nodiscard]] std::vector<StampedEvent> Sorted() const {
    std::vector<StampedEvent> out;
    out.reserve(size());
    for (std::size_t c = 0; c < chunks_.size(); ++c) {
      const std::size_t b = c == 0 ? head_ : 0;
      const std::size_t n =
          c + 1 == chunks_.size() ? used_ : kChunkEvents;
      out.insert(out.end(), chunks_[c]->ev + b, chunks_[c]->ev + n);
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const StampedEvent& a, const StampedEvent& b) {
                       return a.stamp < b.stamp;
                     });
    return out;
  }

 private:
  util::SlabArena<Chunk> arena_;  // chunks are trivially destructible
  std::vector<Chunk*> chunks_;
  std::size_t used_ = 0;  ///< fill of the back chunk
  std::size_t head_ = 0;  ///< drained offset into the front chunk
  std::size_t size_ = 0;  ///< live records
};

/// Statistics of one streamed run, handed to TraceDrain::OnFinish.
/// peak_resident is the maximum LIVE stamped-record count observed at
/// the drain points (summed over lanes) — the bounded-memory claim the
/// streaming-window tests assert against the configured window.
struct TraceStreamStats {
  std::size_t events = 0;
  std::size_t batches = 0;
  std::size_t peak_resident = 0;
};

/// Consumer of a streaming-window traced run. The driver calls OnEvents
/// with stamp-ordered batches — concatenated, they are byte-for-byte the
/// canonical full-buffer trace (the §10 merge order) — then OnFinish
/// exactly once with the run's streaming stats.
class TraceDrain {
 public:
  virtual ~TraceDrain() = default;
  virtual void OnEvents(const std::vector<trace::Event>& batch) = 0;
  virtual void OnFinish(const TraceStreamStats& stats) = 0;
};

/// K-way merge of per-lane stamp-SORTED runs, appended to `out` in
/// stamp order. The heap repeatedly takes the lane whose head stamp is
/// smallest (ties impossible: a stamp identifies one dispatch of one
/// subject, and a subject's dispatches all happen on one lane). Shared
/// by the post-run full-buffer merge and the streaming-window drain —
/// one merge order, so the two paths are byte-identical by
/// construction.
inline void MergeSortedRuns(const std::vector<std::vector<StampedEvent>>& sorted,
                            std::vector<trace::Event>& out) {
  std::size_t total = 0;
  for (const std::vector<StampedEvent>& run : sorted) total += run.size();
  out.reserve(out.size() + total);

  // Binary min-heap of lane heads, keyed by stamp.
  std::vector<std::size_t> head(sorted.size(), 0);
  std::vector<std::size_t> heap;
  heap.reserve(sorted.size());
  auto stamp_of = [&](std::size_t lane) -> const Stamp& {
    return sorted[lane][head[lane]].stamp;
  };
  auto heap_less = [&](std::size_t a, std::size_t b) {
    return stamp_of(b) < stamp_of(a);  // min-heap via greater-than
  };
  for (std::size_t l = 0; l < sorted.size(); ++l) {
    if (!sorted[l].empty()) heap.push_back(l);
  }
  std::make_heap(heap.begin(), heap.end(), heap_less);
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), heap_less);
    const std::size_t lane = heap.back();
    heap.pop_back();
    out.push_back(sorted[lane][head[lane]].event);
    if (++head[lane] < sorted[lane].size()) {
      heap.push_back(lane);
      std::push_heap(heap.begin(), heap.end(), heap_less);
    }
  }
}

/// Deterministic k-way merge of per-lane buffers into the canonical
/// event sequence (the full-buffer path).
[[nodiscard]] inline std::vector<trace::Event> MergeTraceBuffers(
    const std::vector<const TraceBuffer*>& lanes) {
  std::vector<std::vector<StampedEvent>> sorted;
  sorted.reserve(lanes.size());
  for (const TraceBuffer* b : lanes) sorted.push_back(b->Sorted());
  std::vector<trace::Event> out;
  MergeSortedRuns(sorted, out);
  return out;
}

}  // namespace sps::obs
