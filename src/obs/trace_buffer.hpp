#pragma once
// Per-lane trace recording (DESIGN.md §10). The kernel no longer streams
// trace events into a shared vector (which is what forced traced runs
// onto the serial path): each lane appends STAMPED events to its own
// arena-backed TraceBuffer, and the canonical trace of a run — serial or
// sharded, byte-identical either way — is produced afterwards by a
// deterministic k-way merge over the lane buffers.
//
// The stamp is what makes the merge exact. Every record carries the
// identity of the DISPATCH that emitted it:
//
//   key      the dispatched event's packed (time, kind) key — the same
//            total order the event queue pops in;
//   tiebreak the dispatch's subject among equal keys: the core for
//            core-owned kinds (segment end, overhead end), the task
//            index for task-owned kinds (timer, migration arrival).
//            Kinds never collide across the two spaces because the kind
//            sits in the key's low bits;
//   chain    which same-(key, tiebreak) dispatch this is. Zero-cost
//            overhead windows make back-to-back overhead-end dispatches
//            for one core at one instant the NORM, so a per-subject
//            counter disambiguates them. The chain index is lane-local
//            state, and it is shard-invariant because a subject's events
//            are only ever pushed by that subject's own lane, in the
//            lane's deterministic dispatch order;
//   ordinal  position within the dispatch (a handler emits several
//            events: release + overhead begin, ...).
//
// (key, tiebreak, chain, ordinal) is a total order over all records of a
// run, and every component is a pure function of the simulation — not of
// the shard count or thread interleaving. Sorting by it therefore yields
// the same byte sequence from any execution mode. Note the canonical
// order refines the serial dispatch order only up to same-key ties
// across DIFFERENT subjects (serial interleaves those by insertion
// order, the canonical order by subject index); per-core subsequences —
// what the Gantt renderer and every existing consumer read — are
// unchanged.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "trace/trace.hpp"
#include "util/arena.hpp"

namespace sps::obs {

struct Stamp {
  std::uint64_t key = 0;
  std::uint64_t tiebreak = 0;
  std::uint32_t chain = 0;
  std::uint32_t ordinal = 0;

  friend bool operator<(const Stamp& a, const Stamp& b) {
    if (a.key != b.key) return a.key < b.key;
    if (a.tiebreak != b.tiebreak) return a.tiebreak < b.tiebreak;
    if (a.chain != b.chain) return a.chain < b.chain;
    return a.ordinal < b.ordinal;
  }
};

struct StampedEvent {
  Stamp stamp;
  trace::Event event;
};

/// Append-only event storage with stable chunks carved from a SlabArena —
/// the same O(log n)-real-allocations story as every other hot-path
/// container here (util/arena.hpp). A lane appends millions of records
/// without ever touching the global allocator in steady state.
class TraceBuffer {
  static constexpr std::size_t kChunkEvents = 512;
  struct Chunk {
    StampedEvent ev[kChunkEvents];
  };

 public:
  void Append(const Stamp& s, const trace::Event& e) {
    if (used_ == kChunkEvents || chunks_.empty()) {
      chunks_.push_back(arena_.create());
      used_ = 0;
    }
    chunks_.back()->ev[used_++] = StampedEvent{s, e};
  }

  [[nodiscard]] std::size_t size() const {
    return chunks_.empty() ? 0 : (chunks_.size() - 1) * kChunkEvents + used_;
  }

  /// Copy out every record, sorted by stamp. Lane-local dispatch order is
  /// already key-sorted (DES time never goes backwards), so this sort
  /// only reorders same-key ties — near-linear in practice.
  [[nodiscard]] std::vector<StampedEvent> Sorted() const {
    std::vector<StampedEvent> out;
    out.reserve(size());
    for (std::size_t c = 0; c < chunks_.size(); ++c) {
      const std::size_t n =
          c + 1 == chunks_.size() ? used_ : kChunkEvents;
      out.insert(out.end(), chunks_[c]->ev, chunks_[c]->ev + n);
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const StampedEvent& a, const StampedEvent& b) {
                       return a.stamp < b.stamp;
                     });
    return out;
  }

 private:
  util::SlabArena<Chunk> arena_;  // chunks are trivially destructible
  std::vector<Chunk*> chunks_;
  std::size_t used_ = 0;
};

/// Deterministic k-way merge of per-lane buffers into the canonical
/// event sequence. Each lane's records are sorted by stamp first; the
/// merge then repeatedly takes the lane whose head stamp is smallest
/// (ties impossible: a stamp identifies one dispatch of one subject, and
/// a subject's dispatches all happen on one lane).
[[nodiscard]] inline std::vector<trace::Event> MergeTraceBuffers(
    const std::vector<const TraceBuffer*>& lanes) {
  std::vector<std::vector<StampedEvent>> sorted;
  sorted.reserve(lanes.size());
  std::size_t total = 0;
  for (const TraceBuffer* b : lanes) {
    sorted.push_back(b->Sorted());
    total += sorted.back().size();
  }
  std::vector<trace::Event> out;
  out.reserve(total);

  // Binary min-heap of lane heads, keyed by stamp.
  std::vector<std::size_t> head(sorted.size(), 0);
  std::vector<std::size_t> heap;
  heap.reserve(sorted.size());
  auto stamp_of = [&](std::size_t lane) -> const Stamp& {
    return sorted[lane][head[lane]].stamp;
  };
  auto heap_less = [&](std::size_t a, std::size_t b) {
    return stamp_of(b) < stamp_of(a);  // min-heap via greater-than
  };
  for (std::size_t l = 0; l < sorted.size(); ++l) {
    if (!sorted[l].empty()) heap.push_back(l);
  }
  std::make_heap(heap.begin(), heap.end(), heap_less);
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), heap_less);
    const std::size_t lane = heap.back();
    heap.pop_back();
    out.push_back(sorted[lane][head[lane]].event);
    if (++head[lane] < sorted[lane].size()) {
      heap.push_back(lane);
      std::push_heap(heap.begin(), heap.end(), heap_less);
    }
  }
  return out;
}

}  // namespace sps::obs
