#include "obs/registry.hpp"

#include <cstdio>

#include "util/json_writer.hpp"
#include "util/thread_pool.hpp"

namespace sps::obs {

StatsSnapshot StatsSnapshot::Delta(const StatsSnapshot& earlier) const {
  StatsSnapshot out = *this;
  for (auto& [name, v] : out.counters) {
    const auto it = earlier.counters.find(name);
    if (it != earlier.counters.end()) v -= std::min(v, it->second);
  }
  for (auto& [name, h] : out.hists) {
    const auto it = earlier.hists.find(name);
    if (it != earlier.hists.end()) h -= it->second;
  }
  return out;
}

void StatsSnapshot::Merge(const StatsSnapshot& other) {
  for (const auto& [name, v] : other.counters) counters[name] += v;
  for (const auto& [name, v] : other.gauges) gauges[name] += v;
  for (const auto& [name, h] : other.hists) hists[name] += h;
}

std::string StatsSnapshot::ToJson() const {
  util::JsonWriter j;
  j.BeginObject();
  j.Key("counters").BeginObject();
  for (const auto& [name, v] : counters) j.Key(name).Value(v);
  j.EndObject();
  j.Key("gauges").BeginObject();
  for (const auto& [name, v] : gauges) j.Key(name).Value(v);
  j.EndObject();
  j.Key("hists").BeginObject();
  for (const auto& [name, h] : hists) {
    j.Key(name).BeginObject();
    j.Key("count").Value(h.count());
    j.Key("p50_ns").Value(static_cast<std::uint64_t>(h.Quantile(0.5)));
    j.Key("p99_ns").Value(static_cast<std::uint64_t>(h.Quantile(0.99)));
    j.Key("buckets").BeginArray();
    // Trailing zero buckets trimmed: the dump stays readable and the
    // full histogram still reconstructs exactly.
    std::size_t last = 0;
    for (std::size_t i = 0; i < kHistBuckets; ++i) {
      if (h.buckets[i] != 0) last = i + 1;
    }
    for (std::size_t i = 0; i < last; ++i) j.Value(h.buckets[i]);
    j.EndArray();
    j.EndObject();
  }
  j.EndObject();
  j.EndObject();
  return j.str();
}

std::string StatsSnapshot::ToCsv() const {
  std::string out = "name,kind,value\n";
  char buf[160];
  for (const auto& [name, v] : counters) {
    std::snprintf(buf, sizeof(buf), "%s,counter,%llu\n", name.c_str(),
                  static_cast<unsigned long long>(v));
    out += buf;
  }
  for (const auto& [name, v] : gauges) {
    std::snprintf(buf, sizeof(buf), "%s,gauge,%.9g\n", name.c_str(), v);
    out += buf;
  }
  for (const auto& [name, h] : hists) {
    std::snprintf(buf, sizeof(buf), "%s.count,hist,%llu\n", name.c_str(),
                  static_cast<unsigned long long>(h.count()));
    out += buf;
    std::snprintf(buf, sizeof(buf), "%s.p50_ns,hist,%llu\n", name.c_str(),
                  static_cast<unsigned long long>(h.Quantile(0.5)));
    out += buf;
    std::snprintf(buf, sizeof(buf), "%s.p99_ns,hist,%llu\n", name.c_str(),
                  static_cast<unsigned long long>(h.Quantile(0.99)));
    out += buf;
  }
  return out;
}

void FillPoolStatsRegistry(StatsRegistry& reg, const util::ThreadPool& pool) {
  const util::ThreadPool::PoolStats s = pool.Stats();
  reg.SetCounter("pool.batches", s.batches);
  reg.SetCounter("pool.oneoffs", s.oneoffs);
  reg.SetCounter("pool.queue_peak", s.queue_peak);
  reg.SetCounter("pool.caller.indices", s.caller.indices);
  reg.SetCounter("pool.stolen_indices", s.stolen_indices());
  for (std::size_t i = 0; i < s.workers.size(); ++i) {
    const std::string base = "pool.worker." + std::to_string(i);
    reg.SetCounter(base + ".indices", s.workers[i].indices);
    reg.SetCounter(base + ".batches", s.workers[i].batches);
    reg.SetCounter(base + ".oneoffs", s.workers[i].oneoffs);
  }
  reg.SetGauge("pool.steal_ratio", s.steal_ratio());
  reg.SetGauge("pool.workers", static_cast<double>(s.workers.size()));
}

}  // namespace sps::obs
