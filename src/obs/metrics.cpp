#include "obs/metrics.hpp"

#include <cmath>

namespace sps::obs {

Time LogHistogram::Quantile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the q-quantile sample, 1-based, nearest-rank definition:
  // ceil(q*n), clamped into [1, n] (the float product can overshoot n).
  const std::uint64_t rank = std::min<std::uint64_t>(
      n, std::max<std::uint64_t>(
             1, static_cast<std::uint64_t>(
                    std::ceil(q * static_cast<double>(n)))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kHistBuckets; ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      return i == 0 ? 0 : static_cast<Time>(1ull << i);
    }
  }
  return static_cast<Time>(1ull << (kHistBuckets - 1));
}

}  // namespace sps::obs
