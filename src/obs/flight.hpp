#pragma once
// Flight recorder (DESIGN.md §16): a fixed-size lock-free ring of the
// most recent span records + per-epoch registry deltas, one ring per
// replay thread. The ring answers the black-box question "what was the
// service doing in the last N steps before it died" — it is dumped to
// flight-<pid>.json on crash signals, on journal divergence
// (kJournalDivergence), right before injected SIGKILL crashes, and on
// demand (sps_cli --flight-dump).
//
// Memory model: every ring is written by exactly ONE thread (the thread
// that owns the tracer context it belongs to) and read by whichever
// thread dumps. Writers never block and never allocate: a slot is a
// fixed array of relaxed atomics guarded by a per-slot version counter
// (odd = write in progress). The dumper validates the version before and
// after reading a slot and drops slots that changed underneath it — a
// torn read costs one dropped record, never a lock on the hot path and
// never a data race (every shared word is a std::atomic).

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace sps::obs {

/// One flight-ring entry: either a completed span (kSpan) or an
/// epoch-boundary counter snapshot (kEpoch — the "registry delta" view:
/// cumulative admits/rejects/leaves plus the resident gauge).
struct FlightRecord {
  enum class Kind : std::uint8_t { kSpan = 0, kEpoch = 1 };
  Kind kind = Kind::kSpan;
  std::uint8_t stage = 0;      ///< SpanStage (kSpan only)
  std::uint64_t trace_id = 0;  ///< 0 = span outside any request trace
  std::uint64_t seq = 0;       ///< request seq (kSpan) / epoch index (kEpoch)
  std::uint64_t t0 = 0;        ///< span start, tracer clock ns (kSpan)
  std::uint64_t dur_ns = 0;    ///< span duration (kSpan) / admits (kEpoch)
  std::int64_t attr = -1;      ///< stage attribute (kSpan) / rejects (kEpoch)
  std::uint64_t aux0 = 0;      ///< unused (kSpan) / leaves (kEpoch)
  std::uint64_t aux1 = 0;      ///< unused (kSpan) / resident (kEpoch)
};

class FlightRing {
 public:
  explicit FlightRing(std::uint32_t slots);
  FlightRing(const FlightRing&) = delete;
  FlightRing& operator=(const FlightRing&) = delete;

  /// Append one record, overwriting the oldest when full. Lock-free and
  /// allocation-free; must be called from the ring's single owner thread.
  void Push(const FlightRecord& r);

  /// Stable records, oldest first — safe from any thread concurrently
  /// with Push (in-flight slots are skipped, see header comment).
  [[nodiscard]] std::vector<FlightRecord> Snapshot() const;

  /// Total records ever pushed (≥ Snapshot().size()).
  [[nodiscard]] std::uint64_t pushed() const {
    return head_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint32_t capacity() const { return n_; }

 private:
  struct Slot {
    std::atomic<std::uint64_t> ver{0};  ///< odd while a write is in flight
    std::atomic<std::uint64_t> w[8];
  };

  std::unique_ptr<Slot[]> slots_;
  std::uint32_t n_;
  std::atomic<std::uint64_t> head_{0};
};

class RequestTracer;

/// Register `t` as the process-wide crash-dump tracer (nullptr clears;
/// a destructing tracer deregisters itself). The crash signal handlers
/// dump ITS flight rings.
void SetCrashDumpTracer(RequestTracer* t);
[[nodiscard]] RequestTracer* CrashDumpTracer();

/// Install best-effort handlers for fatal signals (SIGSEGV, SIGBUS,
/// SIGILL, SIGFPE, SIGABRT) that dump the registered crash-dump
/// tracer's flight rings to flight-<pid>.json, then re-raise with the
/// default disposition (the process still dies with the original
/// signal). Best-effort by design: the dump path allocates, which
/// strict async-signal-safety forbids — acceptable for a diagnostic of
/// a process that is dying anyway. SIGKILL cannot be caught; the
/// injected-crash path (DurabilityConfig::crash_after_appends) dumps
/// explicitly before raising it. Idempotent.
void InstallCrashSignalHandlers();

}  // namespace sps::obs
