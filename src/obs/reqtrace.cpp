#include "obs/reqtrace.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <unordered_map>
#include <utility>

#include "util/file_io.hpp"
#include "util/json_writer.hpp"

namespace sps::obs {

namespace {

std::atomic<std::uint64_t> g_tracer_serial{1};

thread_local RequestTracer* t_tracer = nullptr;

/// Min-heap comparator over root duration: slow_.front() is the FASTEST
/// retained trace — the one the next slower trace evicts. Ties break on
/// seq so heap behaviour is reproducible under a fake clock.
bool SlowerOnTop(const RequestTrace& a, const RequestTrace& b) {
  if (a.root_dur_ns != b.root_dur_ns) return a.root_dur_ns > b.root_dur_ns;
  return a.seq < b.seq;
}

}  // namespace

RequestTracer* InstalledTracer() { return t_tracer; }

TracerInstallation::TracerInstallation(RequestTracer* t) : prev_(t_tracer) {
  t_tracer = t;
}

TracerInstallation::~TracerInstallation() { t_tracer = prev_; }

namespace internal {

RequestTracer* ActiveTracer() { return t_tracer; }

int TracerOpenSpan(RequestTracer* t, SpanStage stage) {
  return t->OpenSpan(stage);
}

void TracerCloseSpan(RequestTracer* t, int slot, SpanStage stage,
                     std::uint64_t t0, std::uint64_t dur_ns) {
  t->CloseSpan(slot, stage, t0, dur_ns);
}

}  // namespace internal

void TraceAttr(std::int64_t v) {
  if (t_tracer != nullptr) t_tracer->AttrInnermost(v);
}

RequestTracer::RequestTracer(Options opt)
    : opt_(std::move(opt)),
      serial_(g_tracer_serial.fetch_add(1, std::memory_order_relaxed)) {}

RequestTracer::~RequestTracer() {
  // Deregister from the crash-signal path before the rings die.
  if (CrashDumpTracer() == this) SetCrashDumpTracer(nullptr);
}

RequestTracer::ThreadCtx* RequestTracer::CtxForThisThread() {
  // Same single-entry fast path as SpanProfiler::ShardForThisThread:
  // keyed by (address, serial) so an address-reused tracer cannot alias
  // a stale context.
  struct Entry {
    std::uint64_t serial = 0;
    ThreadCtx* ctx = nullptr;
  };
  thread_local const RequestTracer* last_tracer = nullptr;
  thread_local Entry last{};
  if (last_tracer == this && last.serial == serial_) return last.ctx;
  thread_local std::unordered_map<const RequestTracer*, Entry> cache;
  Entry& e = cache[this];
  if (e.serial != serial_ || e.ctx == nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    ctxs_.push_back(std::make_unique<ThreadCtx>());
    if (opt_.flight_slots > 0) {
      ctxs_.back()->ring = std::make_unique<FlightRing>(opt_.flight_slots);
    }
    e = Entry{serial_, ctxs_.back().get()};
  }
  last_tracer = this;
  last = e;
  return e.ctx;
}

void RequestTracer::BeginTrace(std::uint64_t trace_id, std::uint64_t seq,
                               bool is_admit) {
  ThreadCtx* c = CtxForThisThread();
  c->active = true;
  c->trace_id = trace_id;
  c->seq = seq;
  c->is_admit = is_admit;
  c->spans.clear();
  c->stack.clear();
}

int RequestTracer::OpenSpan(SpanStage stage) {
  ThreadCtx* c = CtxForThisThread();
  if (!c->active) return -1;
  SpanRecord r;
  r.stage = stage;
  r.parent = c->stack.empty() ? -1 : c->stack.back();
  const int slot = static_cast<int>(c->spans.size());
  c->spans.push_back(r);
  c->stack.push_back(slot);
  return slot;
}

void RequestTracer::CloseSpan(int slot, SpanStage stage, std::uint64_t t0,
                              std::uint64_t dur_ns) {
  ThreadCtx* c = CtxForThisThread();
  std::int64_t attr = -1;
  if (slot >= 0 && static_cast<std::size_t>(slot) < c->spans.size()) {
    SpanRecord& r = c->spans[static_cast<std::size_t>(slot)];
    r.t0 = t0;
    r.dur_ns = dur_ns;
    attr = r.attr;
    if (!c->stack.empty() && c->stack.back() == slot) c->stack.pop_back();
  }
  // Every span — inside a request trace or not (epoch apply, checkpoint
  // write) — feeds the thread's flight ring: the black box records what
  // the thread was DOING, not only what it was doing for a request.
  if (c->ring != nullptr) {
    FlightRecord f;
    f.kind = FlightRecord::Kind::kSpan;
    f.stage = static_cast<std::uint8_t>(stage);
    f.trace_id = c->active ? c->trace_id : 0;
    f.seq = c->active ? c->seq : 0;
    f.t0 = t0;
    f.dur_ns = dur_ns;
    f.attr = attr;
    c->ring->Push(f);
  }
}

void RequestTracer::AttrInnermost(std::int64_t v) {
  ThreadCtx* c = CtxForThisThread();
  if (c->stack.empty()) return;
  c->spans[static_cast<std::size_t>(c->stack.back())].attr = v;
}

void RequestTracer::EndTrace(bool via_ladder, bool via_fallback,
                             bool diverged) {
  ThreadCtx* c = CtxForThisThread();
  if (!c->active) return;
  c->active = false;
  RequestTrace t;
  t.trace_id = c->trace_id;
  t.seq = c->seq;
  t.is_admit = c->is_admit;
  t.via_ladder = via_ladder;
  t.via_fallback = via_fallback;
  t.diverged = diverged;
  t.spans = std::move(c->spans);
  c->spans.clear();
  c->stack.clear();
  if (t.spans.empty()) return;  // no profiler installed: nothing recorded
  t.root_dur_ns = t.spans.front().dur_ns;
  const bool interesting = via_ladder || via_fallback || diverged;
  const std::uint64_t incoming = t.spans.size();

  std::lock_guard<std::mutex> lock(mu_);
  ++traces_seen_;
  // The finished tree exists in memory while the decision runs — the
  // honest high-water mark includes it.
  peak_retained_spans_ =
      std::max(peak_retained_spans_, retained_spans_ + incoming);
  if (opt_.top_k == 0) return;
  if (interesting) {
    retained_spans_ += incoming;
    interesting_.push_back(std::move(t));
    if (interesting_.size() > opt_.top_k) {
      retained_spans_ -= interesting_.front().spans.size();
      interesting_.pop_front();
    }
  } else if (slow_.size() < opt_.top_k) {
    retained_spans_ += incoming;
    slow_.push_back(std::move(t));
    std::push_heap(slow_.begin(), slow_.end(), &SlowerOnTop);
  } else if (t.root_dur_ns > slow_.front().root_dur_ns) {
    std::pop_heap(slow_.begin(), slow_.end(), &SlowerOnTop);
    retained_spans_ -= slow_.back().spans.size();
    retained_spans_ += incoming;
    slow_.back() = std::move(t);
    std::push_heap(slow_.begin(), slow_.end(), &SlowerOnTop);
  }
  peak_retained_spans_ = std::max(peak_retained_spans_, retained_spans_);
}

void RequestTracer::NoteEpoch(std::uint64_t epoch_index, std::uint64_t admits,
                              std::uint64_t rejects, std::uint64_t leaves,
                              std::uint64_t resident) {
  ThreadCtx* c = CtxForThisThread();
  if (c->ring == nullptr) return;
  FlightRecord f;
  f.kind = FlightRecord::Kind::kEpoch;
  f.seq = epoch_index;
  f.dur_ns = admits;
  f.attr = static_cast<std::int64_t>(rejects);
  f.aux0 = leaves;
  f.aux1 = resident;
  c->ring->Push(f);
}

RequestTracer::RetainStats RequestTracer::retain_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  RetainStats s;
  s.traces_seen = traces_seen_;
  s.retained_slow = slow_.size();
  s.retained_interesting = interesting_.size();
  s.peak_retained_spans = peak_retained_spans_;
  return s;
}

std::vector<RequestTrace> RequestTracer::Retained() const {
  std::vector<RequestTrace> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(slow_.size() + interesting_.size());
    for (const RequestTrace& t : slow_) {
      out.push_back(t);
      out.back().slow = true;
    }
    for (const RequestTrace& t : interesting_) out.push_back(t);
  }
  std::sort(out.begin(), out.end(),
            [](const RequestTrace& a, const RequestTrace& b) {
              if (a.seq != b.seq) return a.seq < b.seq;
              return a.trace_id < b.trace_id;
            });
  return out;
}

namespace {

void WriteTraceFields(util::JsonWriter& j, const RequestTrace& t) {
  j.Key("trace_id").Value(t.trace_id);
  j.Key("seq").Value(t.seq);
  j.Key("kind").Value(t.is_admit ? "admit" : "leave");
  j.Key("root_dur_ns").Value(t.root_dur_ns);
  j.Key("sampled").Value(t.slow ? "slow" : "interesting");
  j.Key("via_ladder").Value(t.via_ladder);
  j.Key("via_fallback").Value(t.via_fallback);
  j.Key("diverged").Value(t.diverged);
}

}  // namespace

std::string RequestTracer::ToPerfettoJson(
    const std::vector<CounterSeries>& extra_counters) const {
  const std::vector<RequestTrace> traces = Retained();
  const RetainStats stats = retain_stats();

  util::JsonWriter j;
  j.BeginObject();
  j.Key("displayTimeUnit").Value("ms");
  j.Key("traceEvents").BeginArray();
  j.BeginObject();
  j.Key("name").Value("process_name");
  j.Key("ph").Value("M");
  j.Key("pid").Value(1);
  j.Key("args").BeginObject().Key("name").Value("sps request traces")
      .EndObject();
  j.EndObject();
  for (const RequestTrace& t : traces) {
    const std::string id = std::to_string(t.trace_id);
    // Async "b" events in open order, "e" events in reverse — children
    // close before parents, so viewers that pair by (id, name, order)
    // and viewers that nest by timestamp both reconstruct the tree.
    for (std::size_t i = 0; i < t.spans.size(); ++i) {
      const SpanRecord& s = t.spans[i];
      j.BeginObject();
      j.Key("name").Value(ToString(s.stage));
      j.Key("cat").Value("request");
      j.Key("ph").Value("b");
      j.Key("id").Value(id);
      j.Key("ts").Value(static_cast<double>(s.t0) / 1e3);
      j.Key("pid").Value(1);
      j.Key("args").BeginObject();
      j.Key("seq").Value(t.seq);
      j.Key("span").Value(static_cast<std::int64_t>(i));
      j.Key("parent").Value(static_cast<std::int64_t>(s.parent));
      j.Key("attr").Value(s.attr);
      j.EndObject();
      j.EndObject();
    }
    for (std::size_t i = t.spans.size(); i-- > 0;) {
      const SpanRecord& s = t.spans[i];
      j.BeginObject();
      j.Key("name").Value(ToString(s.stage));
      j.Key("cat").Value("request");
      j.Key("ph").Value("e");
      j.Key("id").Value(id);
      j.Key("ts").Value(static_cast<double>(s.t0 + s.dur_ns) / 1e3);
      j.Key("pid").Value(1);
      j.EndObject();
    }
  }
  for (const CounterSeries& s : extra_counters) {
    for (const auto& [t, v] : s.points) {
      j.BeginObject();
      j.Key("name").Value(s.name);
      j.Key("ph").Value("C");
      j.Key("ts").Value(static_cast<double>(t));
      j.Key("pid").Value(1);
      j.Key("args").BeginObject().Key("value").Value(v).EndObject();
      j.EndObject();
    }
  }
  j.EndArray();

  // Structured sidecar (ignored by trace viewers, consumed by
  // tools/trace_summary.py and the tests).
  j.Key("sps_reqtrace").BeginObject();
  j.Key("k").Value(opt_.top_k);
  j.Key("traces_seen").Value(stats.traces_seen);
  j.Key("peak_retained_spans").Value(stats.peak_retained_spans);
  j.Key("traces").BeginArray();
  for (const RequestTrace& t : traces) {
    j.BeginObject();
    WriteTraceFields(j, t);
    j.Key("spans").BeginArray();
    for (const SpanRecord& s : t.spans) {
      j.BeginObject();
      j.Key("stage").Value(ToString(s.stage));
      j.Key("parent").Value(static_cast<std::int64_t>(s.parent));
      j.Key("t0").Value(s.t0);
      j.Key("dur_ns").Value(s.dur_ns);
      j.Key("attr").Value(s.attr);
      j.EndObject();
    }
    j.EndArray();
    j.EndObject();
  }
  j.EndArray();
  j.EndObject();

  j.EndObject();
  return j.str();
}

bool RequestTracer::DumpFlight(const std::string& reason,
                               std::string* path_out, std::string* error) {
  util::JsonWriter j;
  j.BeginObject();
  j.Key("reason").Value(reason);
  j.Key("pid").Value(static_cast<std::int64_t>(::getpid()));
  std::string dir;
  {
    std::lock_guard<std::mutex> lock(mu_);
    dir = opt_.flight_dir;
    j.Key("traces_seen").Value(traces_seen_);
    j.Key("threads").BeginArray();
    for (const std::unique_ptr<ThreadCtx>& c : ctxs_) {
      j.BeginObject();
      j.Key("pushed").Value(c->ring != nullptr ? c->ring->pushed() : 0);
      j.Key("records").BeginArray();
      if (c->ring != nullptr) {
        for (const FlightRecord& r : c->ring->Snapshot()) {
          j.BeginObject();
          if (r.kind == FlightRecord::Kind::kSpan) {
            j.Key("kind").Value("span");
            j.Key("stage").Value(ToString(static_cast<SpanStage>(r.stage)));
            j.Key("trace_id").Value(r.trace_id);
            j.Key("seq").Value(r.seq);
            j.Key("t0").Value(r.t0);
            j.Key("dur_ns").Value(r.dur_ns);
            j.Key("attr").Value(r.attr);
          } else {
            j.Key("kind").Value("epoch");
            j.Key("epoch").Value(r.seq);
            j.Key("admits").Value(r.dur_ns);
            j.Key("rejects").Value(r.attr);
            j.Key("leaves").Value(r.aux0);
            j.Key("resident").Value(r.aux1);
          }
          j.EndObject();
        }
      }
      j.EndArray();
      j.EndObject();
    }
    j.EndArray();
  }
  j.EndObject();

  const std::string path =
      dir + "/flight-" + std::to_string(::getpid()) + ".json";
  if (path_out != nullptr) *path_out = path;
  return util::WriteFileAtomic(path, j.str(), /*durable=*/false, error);
}

void RequestTracer::set_flight_dir(std::string dir) {
  std::lock_guard<std::mutex> lock(mu_);
  opt_.flight_dir = std::move(dir);
}

}  // namespace sps::obs
