#pragma once
// The kernel's observability policy slot (DESIGN.md §10). Like the event
// queue, the sink is a compile-time template parameter of KernelBase:
//
//   * NullSink — every hook is an empty inline function and
//     kActive == false lets the kernel's call sites compile away
//     entirely (`if constexpr`), so a non-recording simulation pays
//     EXACTLY what it paid before the subsystem existed. This is the
//     path every sweep/bench/acceptance run takes.
//   * RecordSink — instantiated only when a run asks for a trace or for
//     metrics. Appends stamped events to a per-lane TraceBuffer
//     (obs/trace_buffer.hpp) and accumulates streaming metrics
//     (obs/metrics.hpp) into fixed preallocated storage. Strictly
//     lane-local: the sharded driver gives each lane its own sink and
//     merges afterwards, so recording needs no locks and no longer
//     forces the serial fallback.
//
// Trace and metrics recording are independent runtime switches WITHIN
// RecordSink (one extra branch per hook on the already-recording path);
// only the null/recording split is compile-time, keeping the engines'
// instantiation count at 2x instead of 4x.

#include <cassert>
#include <cstdint>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace_buffer.hpp"
#include "rt/time.hpp"
#include "trace/trace.hpp"

namespace sps::obs {

struct SinkConfig {
  bool trace = false;
  bool metrics = false;
  std::size_t num_tasks = 0;
  std::uint32_t num_cores = 1;
  /// Sharded lanes store per-core state for their OWN core only (the
  /// per-lane-state sizing contract of DESIGN.md §10); serial sinks for
  /// all cores.
  bool sharded = false;
  std::uint32_t lane = 0;
  Time horizon = 0;
};

/// The zero-overhead default. Methods mirror RecordSink's; kActive lets
/// the kernel skip even argument evaluation.
class NullSink {
 public:
  static constexpr bool kActive = false;
  explicit NullSink(const SinkConfig&) {}
  [[nodiscard]] static constexpr bool tracing() { return false; }
  [[nodiscard]] static constexpr bool metrics() { return false; }
  void BeginDispatch(std::uint64_t, bool, std::uint64_t) {}
  void Record(const trace::Event&) {}
  void OnExec(std::uint32_t, Time, Time) {}
  void OnOverhead(std::uint32_t, Time, Time) {}
  void OnCompletion(std::size_t, Time, Time) {}
  void CloseSpan(bool) {}
};

class RecordSink {
 public:
  static constexpr bool kActive = true;

  explicit RecordSink(const SinkConfig& cfg) : cfg_(cfg) {
    const std::size_t core_slots = cfg.sharded ? 1 : cfg.num_cores;
    if (cfg_.trace) {
      core_chain_.resize(core_slots);
      task_chain_.resize(cfg.num_tasks);
    }
    if (cfg_.metrics) {
      met_.tasks.resize(cfg.num_tasks);
      met_.cores.resize(core_slots);
      core_clock_.resize(core_slots, 0);
    }
  }

  [[nodiscard]] bool tracing() const { return cfg_.trace; }
  [[nodiscard]] bool metrics() const { return cfg_.metrics; }

  // ---- trace pillar ------------------------------------------------------

  /// Called by the kernel before every Dispatch. `core_keyed` selects the
  /// tiebreak space (see obs/trace_buffer.hpp for why the stamp is a
  /// shard-invariant total order).
  void BeginDispatch(std::uint64_t key, bool core_keyed, std::uint64_t idx) {
    if (!cfg_.trace) return;
    Chain& c = core_keyed ? core_chain_[CoreSlot(static_cast<std::uint32_t>(
                                idx))]
                          : task_chain_[idx];
    if (c.last_key == key) {
      ++c.chain;
    } else {
      c.last_key = key;
      c.chain = 0;
    }
    cur_ = Stamp{key, idx, c.chain, 0};
  }

  void Record(const trace::Event& e) {
    buffer_.Append(cur_, e);
    ++cur_.ordinal;
  }

  [[nodiscard]] const TraceBuffer& buffer() const { return buffer_; }
  /// Mutable access for the streaming-window drain (DESIGN.md §15).
  [[nodiscard]] TraceBuffer& buffer_mut() { return buffer_; }

  // ---- metrics pillar ----------------------------------------------------

  /// An execution interval [t0, t1] on `core` (task code, CPMD included).
  void OnExec(std::uint32_t core, Time t0, Time t1) {
    AddInterval(core, t0, t1, &CoreMetrics::busy);
  }

  /// An overhead window of length `dur` starting at t0 on `core`.
  void OnOverhead(std::uint32_t core, Time t0, Time dur) {
    AddInterval(core, t0, t0 + dur, &CoreMetrics::overhead);
  }

  void OnCompletion(std::size_t task, Time response, Time tardiness) {
    if (!cfg_.metrics) return;
    TaskMetrics& t = met_.tasks[task];
    t.response.Add(response);
    if (tardiness > 0) {
      t.tardiness.Add(tardiness);
      t.max_tardiness = std::max(t.max_tardiness, tardiness);
    }
  }

  /// Close the per-core accounting: fill trailing idle up to the span.
  /// The span is the horizon, or — for a halted (stop-on-first-miss)
  /// serial run — the end of the last booked activity (>= the halt
  /// instant: the halting dispatch may book an overhead window past
  /// it), so that busy + overhead + idle == span holds in both cases.
  void CloseSpan(bool halted) {
    if (!cfg_.metrics) return;
    Time span = cfg_.horizon;
    if (halted) {
      span = 0;
      for (const Time c : core_clock_) span = std::max(span, c);
      span = std::min(span, cfg_.horizon);
    }
    for (std::size_t i = 0; i < core_clock_.size(); ++i) {
      if (span > core_clock_[i]) {
        met_.cores[i].idle += span - core_clock_[i];
        core_clock_[i] = span;
      }
    }
    met_.span = span;
  }

  [[nodiscard]] const RunMetrics& run_metrics() const { return met_; }
  [[nodiscard]] RunMetrics&& TakeMetrics() { return std::move(met_); }

 private:
  struct Chain {
    std::uint64_t last_key = ~0ull;
    std::uint32_t chain = 0;
  };

  [[nodiscard]] std::size_t CoreSlot(std::uint32_t core) const {
    if (!cfg_.sharded) return core;
    assert(core == cfg_.lane && "sharded sink fed a remote core");
    (void)core;
    return 0;
  }

  /// Book a clamped interval into `field`, accumulating the idle gap
  /// since the previous activity. Intervals arrive begin-ordered and
  /// non-overlapping per core (the kernel's per-core timeline is a
  /// chain of exec segments and overhead windows); booking the FULL
  /// interval — rather than only the part past the core clock — is what
  /// makes the conservation invariant a real check of hook placement.
  void AddInterval(std::uint32_t core, Time t0, Time t1,
                   Time CoreMetrics::*field) {
    if (!cfg_.metrics) return;
    const std::size_t s = CoreSlot(core);
    const Time b = std::min(t0, cfg_.horizon);
    const Time e = std::min(t1, cfg_.horizon);
    Time& clock = core_clock_[s];
    assert(b >= clock && "overlapping per-core activity intervals");
    if (b > clock) met_.cores[s].idle += b - clock;
    if (e > b) met_.cores[s].*field += e - b;
    clock = std::max(clock, e);
  }

  SinkConfig cfg_;
  TraceBuffer buffer_;
  Stamp cur_;
  std::vector<Chain> core_chain_;
  std::vector<Chain> task_chain_;
  RunMetrics met_;
  std::vector<Time> core_clock_;  ///< end of the last booked activity
};

}  // namespace sps::obs
