#pragma once
// Online admission controller (DESIGN.md §11): the component that turns a
// stream of ADMIT/LEAVE requests into a continuously valid partition.
//
//   * Placement policy slot: first-fit (the EDF-WM default), worst-fit
//     (load spreading), or SPA ordering (fill the busiest admitting core
//     first, the paper's fill-one-core-at-a-time spirit). Whole-task
//     placement first; EDF controllers then try the window-split search.
//   * Churn accounting: moved / split / unsplit task counts are reported
//     metrics, not accidents. A plain incremental admit moves nothing; a
//     full-repartition fallback charges every resident task whose
//     placement changed.
//   * Full-repartition fallback: when the incremental step cannot place a
//     request, the matching OFFLINE partitioner runs on the resident set
//     plus the candidate. Success adopts the new placement (and pays the
//     churn); failure rejects the request and leaves the resident system
//     untouched.
//   * Epoch replay: requests are folded in timestamp order; at each epoch
//     boundary the controller snapshots per-epoch stats and can validate
//     the current partition by actually simulating it through sim/batch
//     (the PR-3 validate_by_simulation machinery). Batches of independent
//     streams fan out over util/thread_pool bit-identically for any job
//     count.

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "online/admission.hpp"
#include "online/workload_stream.hpp"
#include "partition/placement.hpp"
#include "sim/engine.hpp"

namespace sps::online {

enum class PlacePolicy {
  kFirstFit,  ///< lowest-numbered admitting core
  kWorstFit,  ///< emptiest admitting core (spreads load)
  kSpaOrder,  ///< fullest admitting core (SPA's fill-up ordering)
};

const char* ToString(PlacePolicy p);

struct ControllerConfig {
  AdmissionConfig admission;
  PlacePolicy place = PlacePolicy::kFirstFit;
  /// EDF only: allow window-splitting a request that fits nowhere whole.
  bool allow_split = true;
  /// Re-partition the resident set + candidate offline when the
  /// incremental step fails (churn is charged; failure still rejects).
  bool repartition_fallback = true;
  /// After a LEAVE, try to consolidate one resident split task onto a
  /// single core (migration churn down; charged as an unsplit).
  bool unsplit_on_leave = false;
};

/// Tasks whose placement changed, split, or consolidated — the online
/// subsystem's headline cost metric next to acceptance.
struct ChurnStats {
  std::uint64_t moved = 0;    ///< resident tasks whose placement changed
  std::uint64_t split = 0;    ///< tasks split (admission or fallback)
  std::uint64_t unsplit = 0;  ///< split tasks consolidated onto one core
  std::uint64_t repartitions = 0;  ///< fallback runs that were adopted

  ChurnStats& operator+=(const ChurnStats& o);
  ChurnStats& operator-=(const ChurnStats& o);  ///< epoch deltas
  [[nodiscard]] std::uint64_t total() const {
    return moved + split + unsplit;
  }
  friend bool operator==(const ChurnStats&, const ChurnStats&) = default;
};

struct AdmitOutcome {
  bool accepted = false;
  bool via_fallback = false;  ///< placed by the full repartition
  unsigned parts = 0;         ///< subtask count of the accepted placement
};

class Controller {
 public:
  explicit Controller(const ControllerConfig& cfg);

  /// Decide one ADMIT. Touches only candidate cores unless the fallback
  /// runs. Rejection leaves every resident task untouched.
  AdmitOutcome Admit(const rt::Task& t);

  /// Retire a resident task, reclaiming its capacity on exactly the
  /// cores it occupied. Returns false (and does nothing) for unknown
  /// ids.
  bool Leave(rt::TaskId id);

  /// The resident system as a simulatable/verifiable partition. Tasks
  /// appear in ascending id order, so equal resident sets compare equal.
  [[nodiscard]] partition::Partition CurrentPartition() const;

  [[nodiscard]] std::size_t resident() const { return placements_.size(); }
  [[nodiscard]] double total_utilization() const {
    return state_.total_utilization();
  }
  [[nodiscard]] const ChurnStats& churn() const { return churn_; }
  [[nodiscard]] const partition::AdmitStats& admission_stats() const {
    return state_.stats();
  }
  [[nodiscard]] const ControllerConfig& config() const { return cfg_; }

 private:
  /// Placement probe order per the configured policy, ranked by the
  /// utilizations of `state` (pass the probe copy when testing
  /// hypothetical states, e.g. TryUnsplit's entries-removed view).
  std::vector<unsigned> CoreOrder(const AdmissionState& state) const;
  /// Offline repartition of resident + cand; adopts + charges churn on
  /// success.
  AdmitOutcome FallbackRepartition(const rt::Task& t);
  void TryUnsplit();

  ControllerConfig cfg_;
  AdmissionState state_;
  /// id -> current placement (parts) + the task itself.
  std::unordered_map<rt::TaskId, partition::PlacedTask> placements_;
  ChurnStats churn_;
};

// ---- epoch replay ----------------------------------------------------------

struct ReplayConfig {
  ControllerConfig controller;
  /// Epoch length; stats snapshot per epoch. 0 = one epoch spanning the
  /// whole stream.
  Time epoch = Millis(1000);
  /// Simulate the partition standing at each epoch boundary through
  /// sim/batch and record its deadline misses (0 expected — the
  /// admission analysis is sound).
  bool validate_by_simulation = false;
  sim::SimConfig validate_sim;
  /// Seed for the validation simulations' derived RNG streams.
  std::uint64_t seed = 20110318;
};

struct EpochStats {
  Time start = 0;
  Time end = 0;
  std::uint32_t admits = 0;
  std::uint32_t rejects = 0;
  std::uint32_t leaves = 0;
  ChurnStats churn;              ///< churn incurred within this epoch
  std::size_t resident = 0;      ///< at epoch end
  double utilization = 0.0;      ///< at epoch end
  bool validated = false;
  std::uint64_t sim_misses = 0;

  friend bool operator==(const EpochStats&, const EpochStats&) = default;
};

struct ReplayResult {
  std::vector<EpochStats> epochs;
  std::uint64_t admits = 0;
  std::uint64_t rejects = 0;
  std::uint64_t leaves = 0;
  ChurnStats churn;
  partition::AdmitStats admission;
  partition::Partition final_partition;

  [[nodiscard]] double acceptance_ratio() const {
    const std::uint64_t n = admits + rejects;
    return n == 0 ? 1.0 : static_cast<double>(admits) /
                              static_cast<double>(n);
  }
  /// Fixed-width per-epoch table for the CLI.
  [[nodiscard]] std::string Table() const;
};

/// Fold one stream through a fresh controller. Pure in (stream, cfg).
ReplayResult ReplayStream(const WorkloadStream& s, const ReplayConfig& cfg);

/// Replay independent streams over the worker pool (jobs as in
/// util::ParallelFor: 1 = serial, 0 = hardware). Stream i's result is
/// identical for every job count — each replay owns its controller and
/// derives its validation seeds from (cfg.seed, i).
std::vector<ReplayResult> ReplayBatch(std::span<const WorkloadStream> streams,
                                      const ReplayConfig& cfg,
                                      unsigned jobs = 1);

}  // namespace sps::online
