#pragma once
// Online admission controller (DESIGN.md §11): the component that turns a
// stream of ADMIT/LEAVE requests into a continuously valid partition.
//
//   * Placement policy slot: first-fit (the EDF-WM default), worst-fit
//     (load spreading), or SPA ordering (fill the busiest admitting core
//     first, the paper's fill-one-core-at-a-time spirit). Whole-task
//     placement first; EDF controllers then try the window-split search.
//   * Churn accounting: moved / split / unsplit task counts are reported
//     metrics, not accidents. A plain incremental admit moves nothing; a
//     full-repartition fallback charges every resident task whose
//     placement changed.
//   * Full-repartition fallback: when the incremental step cannot place a
//     request, the matching OFFLINE partitioner runs on the resident set
//     plus the candidate. Success adopts the new placement (and pays the
//     churn); failure rejects the request and leaves the resident system
//     untouched.
//   * Epoch replay: requests are folded in timestamp order; at each epoch
//     boundary the controller snapshots per-epoch stats and can validate
//     the current partition by actually simulating it through sim/batch
//     (the PR-3 validate_by_simulation machinery). Batches of independent
//     streams fan out over util/thread_pool bit-identically for any job
//     count.

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "online/admission.hpp"
#include "online/durability.hpp"
#include "online/workload_stream.hpp"
#include "partition/placement.hpp"
#include "partition/verify.hpp"
#include "sim/engine.hpp"

namespace sps::obs {
class RequestTracer;
class SpanProfiler;
class StatsRegistry;
}  // namespace sps::obs

namespace sps::online {

enum class PlacePolicy {
  kFirstFit,  ///< lowest-numbered admitting core
  kWorstFit,  ///< emptiest admitting core (spreads load)
  kSpaOrder,  ///< fullest admitting core (SPA's fill-up ordering)
};

const char* ToString(PlacePolicy p);

/// Overload / graceful-degradation policy (DESIGN.md §13). The ladder is
/// strictly ordered: degrade soft tasks (reduced-service WCET), then
/// shed the lowest-value soft tasks (LIFO within a value class), and
/// only then run the full repartition — each rung is cheaper in churn
/// than the next. Every decision is deterministic: victims are chosen by
/// (value asc, admission sequence desc), both total orders.
struct OverloadConfig {
  /// Walk the degrade/shed ladder when an admission fails or an epoch
  /// signals overload. Off = PR 6 behavior (reject / fallback only).
  bool ladder = true;
  /// Repartition-fallback hysteresis: after an adopted repartition,
  /// further adoptions are suppressed until `cooldown_epochs` epochs
  /// pass OR total utilization moves by more than `util_band` — the
  /// near-saturation adopt-thrash damper. Default-on (the CLI escape is
  /// --no-hysteresis).
  bool hysteresis = true;
  std::uint32_t cooldown_epochs = 4;
  double util_band = 0.10;
  /// Shed re-admission retry backoff, in epochs: first retry after
  /// `retry_backoff_min`, doubling per failed retry, capped at
  /// `retry_backoff_max`.
  std::uint32_t retry_backoff_min = 1;
  std::uint32_t retry_backoff_max = 16;
  /// Exec-spike multiplier the overload reaction plans for: the epoch
  /// reaction sheds/degrades until the partition with every WCET
  /// inflated by this factor re-analyzes schedulable.
  double spike_magnitude = 1.3;
};

struct ControllerConfig {
  AdmissionConfig admission;
  PlacePolicy place = PlacePolicy::kFirstFit;
  /// EDF only: allow window-splitting a request that fits nowhere whole.
  bool allow_split = true;
  /// Re-partition the resident set + candidate offline when the
  /// incremental step fails (churn is charged; failure still rejects).
  bool repartition_fallback = true;
  /// After a LEAVE (and after an epoch's shed/degrade restores), run the
  /// multi-task consolidation pass: every resident split task that now
  /// fits whole somewhere is unsplit (migration churn down; each charged
  /// as an unsplit).
  bool unsplit_on_leave = false;
  /// Overload ladder + hysteresis knobs (DESIGN.md §13).
  OverloadConfig overload;
};

/// Tasks whose placement changed, split, or consolidated — the online
/// subsystem's headline cost metric next to acceptance.
struct ChurnStats {
  std::uint64_t moved = 0;    ///< resident tasks whose placement changed
  std::uint64_t split = 0;    ///< tasks split (admission or fallback)
  std::uint64_t unsplit = 0;  ///< split tasks consolidated onto one core
  std::uint64_t repartitions = 0;  ///< fallback runs that were adopted

  ChurnStats& operator+=(const ChurnStats& o);
  ChurnStats& operator-=(const ChurnStats& o);  ///< epoch deltas
  [[nodiscard]] std::uint64_t total() const {
    return moved + split + unsplit;
  }
  friend bool operator==(const ChurnStats&, const ChurnStats&) = default;
};

/// Counted degradation-ladder decisions (DESIGN.md §13) — like ChurnStats,
/// these are reported metrics, not accidents.
struct OverloadStats {
  std::uint64_t degrades = 0;         ///< soft tasks switched to degraded mode
  std::uint64_t degrade_restores = 0; ///< degraded tasks back at full service
  std::uint64_t sheds = 0;            ///< soft tasks evicted from the system
  std::uint64_t shed_restores = 0;    ///< shed tasks re-admitted by a retry
  std::uint64_t retry_attempts = 0;   ///< failed shed re-admission probes
  std::uint64_t hysteresis_blocks = 0;  ///< fallback runs suppressed

  OverloadStats& operator+=(const OverloadStats& o);
  OverloadStats& operator-=(const OverloadStats& o);  ///< epoch deltas
  friend bool operator==(const OverloadStats&, const OverloadStats&) =
      default;
};

struct AdmitOutcome {
  bool accepted = false;
  bool via_fallback = false;  ///< placed by the full repartition
  bool via_ladder = false;    ///< placed after degrading/shedding residents
  unsigned parts = 0;         ///< subtask count of the accepted placement
};

/// The complete logical state of a Controller, as plain sorted data —
/// what the durability checkpoint serializes (DESIGN.md §14) and what
/// ImportState restores bit-identically. Map contents are flattened in
/// ascending id order (so equal states serialize equally); the shed
/// ledger keeps its SHED ORDER (AdvanceEpoch drains it in that order).
struct ControllerSnapshot {
  struct ShedEntry {
    rt::Task task;
    std::uint64_t admit_seq = 0;
    std::uint32_t retry_in = 0;
    std::uint32_t backoff = 0;
  };
  std::vector<partition::PlacedTask> placements;  ///< ascending id
  std::vector<std::pair<rt::TaskId, rt::Task>> degraded_full;
  std::vector<std::pair<rt::TaskId, std::uint64_t>> admit_seq_of;
  std::vector<std::pair<rt::TaskId, std::uint32_t>> generation_of;
  std::vector<ShedEntry> shed;
  ChurnStats churn;
  OverloadStats overload;
  std::uint64_t admit_seq = 0;
  std::uint64_t epoch = 0;
  std::uint64_t last_fallback_epoch = 0;
  double last_fallback_util = 0.0;
  bool any_fallback = false;
  AdmissionSnapshot admission;
};

class Controller {
 public:
  explicit Controller(const ControllerConfig& cfg);

  /// Decide one ADMIT. Touches only candidate cores unless the ladder or
  /// the fallback runs. Rejection leaves every resident task untouched
  /// (ladder actions taken for an ultimately rejected candidate are
  /// rolled back exactly).
  AdmitOutcome Admit(const rt::Task& t);

  /// Retire a resident task, reclaiming its capacity on exactly the
  /// cores it occupied. A LEAVE for a currently-shed task drops it from
  /// the shed set (the stream says it is gone for good). Returns false
  /// (and does nothing) for unknown ids.
  bool Leave(rt::TaskId id);

  /// Epoch tick (the replay calls this once per closed epoch): advances
  /// the hysteresis cooldown and — when the system is NOT overloaded —
  /// retries due shed tasks for re-admission (incremental placement
  /// only; a failed retry doubles the task's backoff, capped) and
  /// restores degraded residents to full service where capacity allows.
  void AdvanceEpoch(bool overloaded);

  /// Overload reaction (DESIGN.md §13): walk the degrade-then-shed
  /// ladder until the resident partition with every WCET inflated by
  /// `spike_magnitude` re-analyzes schedulable, or no eligible soft
  /// victims remain. Hard tasks are never touched. Returns the number
  /// of ladder actions taken.
  unsigned ReactToOverload(double spike_magnitude);

  /// The resident system as a simulatable/verifiable partition. Tasks
  /// appear in ascending id order, so equal resident sets compare equal.
  [[nodiscard]] partition::Partition CurrentPartition() const;

  /// Per-task admission generations aligned with CurrentPartition()'s
  /// task order — plumb into sim::SimConfig::exec_generations so a
  /// re-admitted id never resumes its old incarnation's RNG streams.
  [[nodiscard]] std::vector<std::uint32_t> ExecGenerations() const;

  [[nodiscard]] std::size_t resident() const { return placements_.size(); }
  [[nodiscard]] double total_utilization() const {
    return state_.total_utilization();
  }
  [[nodiscard]] const ChurnStats& churn() const { return churn_; }
  [[nodiscard]] const OverloadStats& overload_stats() const {
    return overload_;
  }
  /// Tasks currently shed (evicted, awaiting re-admission retries).
  [[nodiscard]] std::size_t shed_resident() const { return shed_.size(); }
  /// Residents currently running in degraded mode.
  [[nodiscard]] std::size_t degraded_resident() const {
    std::size_t n = 0;
    for (const auto& [id, full] : degraded_full_) {
      (void)full;
      n += placements_.count(id);
    }
    return n;
  }
  [[nodiscard]] const partition::AdmitStats& admission_stats() const {
    return state_.stats();
  }
  [[nodiscard]] const ControllerConfig& config() const { return cfg_; }

  /// Snapshot / restore the complete logical state (durability
  /// checkpoints, DESIGN.md §14). ImportState replaces everything —
  /// including the admission state's per-core entry vectors and
  /// utilization caches VERBATIM, so a restored controller's subsequent
  /// decisions are bit-identical to the original's. Returns false (state
  /// unspecified) if the snapshot's core layout does not match this
  /// controller's config.
  [[nodiscard]] ControllerSnapshot ExportState() const;
  [[nodiscard]] bool ImportState(ControllerSnapshot snap);

 private:
  /// A shed task awaiting re-admission (the record keeps the FULL task;
  /// a degraded victim is shed at full service and retried as such).
  struct ShedRecord {
    rt::Task task;
    std::uint64_t admit_seq = 0;  ///< LIFO order within a value class
    std::uint32_t retry_in = 0;   ///< epochs until the next retry
    std::uint32_t backoff = 0;    ///< current backoff width (epochs)
  };

  /// Placement probe order per the configured policy, ranked by the
  /// utilizations of `state` (pass the probe copy when testing
  /// hypothetical states, e.g. TryUnsplit's entries-removed view).
  std::vector<unsigned> CoreOrder(const AdmissionState& state) const;
  /// Offline repartition of resident + cand; adopts + charges churn on
  /// success.
  AdmitOutcome FallbackRepartition(const rt::Task& t);
  /// Multi-task unsplit pass (unsplit_on_leave): consolidate EVERY
  /// resident split task that fits whole, looping until a full pass
  /// makes no progress (one consolidation can free the window capacity
  /// the next needs). Shared by Leave and AdvanceEpoch's restore phase;
  /// returns consolidations made (each charged to churn.unsplit).
  unsigned ConsolidateSplits();

  /// Hysteresis gate for FallbackRepartition (counts blocks).
  [[nodiscard]] bool FallbackAllowed();
  /// Plain incremental placement of `t`; on success registers the
  /// placement and bumps the id's admission generation.
  AdmitOutcome TryPlace(const rt::Task& t);

  /// One reversible ladder step, logged so a rejected candidate's
  /// actions can be undone EXACTLY (reverse order), or committed (stats
  /// counted, shed records created) once the candidate is placed.
  struct LadderAction {
    enum class Kind : std::uint8_t { kDegrade, kShed };
    Kind kind = Kind::kDegrade;
    partition::PlacedTask placed;  ///< exact pre-action placement
    rt::Task full_task;            ///< original full-service task
    bool was_degraded = false;     ///< kShed: victim was in degraded mode
    std::uint64_t admit_seq = 0;   ///< pre-action admission sequence
  };
  /// Ladder rung 1: switch one eligible resident (soft, whole-placed,
  /// has a degraded mode, not yet degraded) to degraded service.
  /// `for_admit` restricts victims to those less important than the
  /// candidate; nullptr (epoch reaction) allows any soft resident.
  bool DegradeOne(const rt::Task* for_admit,
                  std::vector<LadderAction>& log);
  /// Ladder rung 2: shed the least-valuable eligible soft resident
  /// (LIFO within a value class).
  bool ShedOne(const rt::Task* for_admit, std::vector<LadderAction>& log);
  void CommitLadder(std::vector<LadderAction>& log);
  void UndoLadder(std::vector<LadderAction>& log);
  /// Victim choice shared by both rungs: minimum (value, then NEWEST
  /// admission) over eligible soft residents — a total order, so the
  /// decision is deterministic and independent of hash iteration.
  template <typename Pred>
  [[nodiscard]] rt::TaskId PickVictim(Pred&& pred) const;
  /// Would the resident partition survive every WCET inflating by
  /// `magnitude`? O(1)-screened (per-core inflated utilization > 1 can
  /// never pass) before the full analysis.
  [[nodiscard]] bool InflatedSchedulable(double magnitude) const;

  ControllerConfig cfg_;
  AdmissionState state_;
  /// id -> current placement (parts) + the task itself (degraded
  /// residents carry their degraded WCET here — CurrentPartition and
  /// the analyses see the service actually provided).
  std::unordered_map<rt::TaskId, partition::PlacedTask> placements_;
  /// id -> ORIGINAL task of residents currently in degraded mode.
  std::unordered_map<rt::TaskId, rt::Task> degraded_full_;
  /// id -> admission sequence number (LIFO tie-break within a value
  /// class; assigned per successful admission).
  std::unordered_map<rt::TaskId, std::uint64_t> admit_seq_of_;
  /// id -> how many times the id has been admitted (the RNG-generation
  /// counter; first admission = generation 0).
  std::unordered_map<rt::TaskId, std::uint32_t> generation_of_;
  /// Shed set in shed order (drained by AdvanceEpoch retries).
  std::vector<ShedRecord> shed_;
  ChurnStats churn_;
  OverloadStats overload_;
  std::uint64_t admit_seq_ = 0;
  std::uint64_t epoch_ = 0;
  /// Hysteresis state: epoch/utilization at the last adopted fallback.
  std::uint64_t last_fallback_epoch_ = 0;
  double last_fallback_util_ = 0.0;
  bool any_fallback_ = false;
};

// ---- epoch replay ----------------------------------------------------------

/// Injected fault windows over the replay timeline (DESIGN.md §13). The
/// replay treats a window's onset as the overload ALARM: the controller
/// reacts at the first epoch boundary at or inside the window, and the
/// epoch validation simulates under the faulted exec/arrival model — so
/// "zero hard misses" is proven against the fault, not the nominal load.
struct SpikeEpoch {
  Time start = 0;
  Time end = 0;  ///< half-open [start, end)
  double prob = 0.2;
  double magnitude = 1.3;
};

struct BurstStorm {
  Time start = 0;
  Time end = 0;
  double burst_prob = 0.9;  ///< ArrivalModel::kBursty burst probability
};

struct FaultPlan {
  std::vector<SpikeEpoch> spikes;
  std::vector<BurstStorm> storms;

  [[nodiscard]] bool any() const {
    return !spikes.empty() || !storms.empty();
  }
  /// The spike/storm overlapping [start, end), if any (first wins).
  [[nodiscard]] const SpikeEpoch* SpikeAt(Time start, Time end) const;
  [[nodiscard]] const BurstStorm* StormAt(Time start, Time end) const;
};

struct EpochStats;
struct ReplayResult;

/// Observability side-channel for a replay (DESIGN.md §15/§16): a
/// wall-clock span profiler installed for the replay thread's duration,
/// an optional request tracer (span trees + tail sampling + flight
/// ring — requires `profiler`, which supplies the clock readings), and
/// an optional per-epoch hook (the CLI's heartbeat / augmented table).
/// Deliberately OUTSIDE the durability fingerprint and never
/// decision-relevant — wall-clock data must stay off stdout and out of
/// every byte-compared artifact.
struct ReplayObserver {
  obs::SpanProfiler* profiler = nullptr;
  obs::RequestTracer* tracer = nullptr;
  /// Called after each epoch closes, with the epoch's index, its stats,
  /// and the accumulating result. Must not mutate anything the replay
  /// reads.
  std::function<void(std::size_t, const EpochStats&, const ReplayResult&)>
      on_epoch;
};

struct ReplayConfig {
  ControllerConfig controller;
  /// Epoch length; stats snapshot per epoch. 0 = one epoch spanning the
  /// whole stream.
  Time epoch = Millis(1000);
  /// Simulate the partition standing at each epoch boundary through
  /// sim/batch and record its deadline misses (0 expected — the
  /// admission analysis is sound).
  bool validate_by_simulation = false;
  sim::SimConfig validate_sim;
  /// Seed for the validation simulations' derived RNG streams.
  std::uint64_t seed = 20110318;
  /// Injected overload windows (exec spikes / arrival storms).
  FaultPlan faults;
  /// Keep closing (empty) epochs after the last request for this many
  /// epochs — gives shed-re-admission retries room to drain when the
  /// stream ends right after a fault window. 0 = PR 6 behavior.
  std::uint32_t drain_epochs = 0;
  /// Durable-service knobs (DESIGN.md §14): checkpoint + journal dir,
  /// fsync policy, recovery. Default-off (dir empty) — the replay then
  /// runs exactly the PR 7 path.
  DurabilityConfig durability;
  /// Observability side-channel (DESIGN.md §15). NOT fingerprinted.
  ReplayObserver obs;
};

struct EpochStats {
  Time start = 0;
  Time end = 0;
  std::uint32_t admits = 0;
  std::uint32_t rejects = 0;
  std::uint32_t leaves = 0;
  ChurnStats churn;              ///< churn incurred within this epoch
  OverloadStats overload;        ///< ladder decisions within this epoch
  std::size_t resident = 0;      ///< at epoch end
  std::size_t shed_resident = 0;     ///< shed set size at epoch end
  std::size_t degraded_resident = 0; ///< degraded residents at epoch end
  double utilization = 0.0;      ///< at epoch end
  bool validated = false;
  bool fault_active = false;     ///< a fault window overlapped this epoch
  std::uint64_t sim_misses = 0;
  std::uint64_t hard_misses = 0;  ///< misses attributed to HARD tasks

  friend bool operator==(const EpochStats&, const EpochStats&) = default;
};

struct ReplayResult {
  std::vector<EpochStats> epochs;
  std::uint64_t admits = 0;
  std::uint64_t rejects = 0;
  std::uint64_t leaves = 0;
  ChurnStats churn;
  OverloadStats overload;
  /// Shed tasks still awaiting re-admission when the replay ended.
  std::size_t shed_outstanding = 0;
  partition::AdmitStats admission;
  partition::Partition final_partition;
  /// Durability outcome (only meaningful when cfg.durability.enabled()).
  /// A non-ok error means the replay ABORTED — the stats above cover
  /// only what ran before the failure.
  RecoveryInfo recovery;
  DurabilityError durability_error;

  [[nodiscard]] double acceptance_ratio() const {
    const std::uint64_t n = admits + rejects;
    return n == 0 ? 1.0 : static_cast<double>(admits) /
                              static_cast<double>(n);
  }
  /// Fixed-width per-epoch table for the CLI.
  [[nodiscard]] std::string Table() const;
};

/// Fold one stream through a fresh controller. Pure in (stream, cfg).
ReplayResult ReplayStream(const WorkloadStream& s, const ReplayConfig& cfg);

/// Register the replay's scattered counters (admission, overload ladder,
/// churn, durability recovery) into the unified stats registry
/// (obs/registry.hpp) under stable names. Deterministic: identical
/// results produce identical snapshots — `--stats-out` is byte-compared
/// across profile on/off in CI.
void FillStatsRegistry(obs::StatsRegistry& reg, const ReplayResult& r);

/// Replay independent streams over the worker pool (jobs as in
/// util::ParallelFor: 1 = serial, 0 = hardware). Stream i's result is
/// identical for every job count — each replay owns its controller and
/// derives its validation seeds from (cfg.seed, i).
std::vector<ReplayResult> ReplayBatch(std::span<const WorkloadStream> streams,
                                      const ReplayConfig& cfg,
                                      unsigned jobs = 1);

}  // namespace sps::online
