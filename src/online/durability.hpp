#pragma once
// Durable online service (DESIGN.md §14): fail-stop crash recovery for
// the epoch replay, ARIES-style redo specialized to a DETERMINISTIC
// state machine. The stream file is already a replayable request log, so
// the write-ahead journal does not need to carry state — it records each
// applied request's (seq, decision, churn/overload delta) under a
// per-record CRC, serving two jobs: (1) it marks exactly how far the
// crashed run got, and (2) during recovery the redo pass re-executes the
// stream from the newest valid checkpoint and CROSS-CHECKS every
// re-derived decision against the journaled one — a divergence is
// corruption (or a different stream/config), surfaced as a typed error,
// never silently absorbed.
//
// Artifacts, all CRC32-framed (util/crc32.hpp):
//   <dir>/ckpt-<epoch>.sps  versioned full-state checkpoint, written via
//                           atomic temp-file + rename (util/file_io.hpp)
//                           every K epoch entries; the newest VALID one
//                           wins at recovery, corrupt ones are skipped.
//   <dir>/journal.wal       append-only request journal; a torn tail
//                           (crash mid-append) is truncated at the last
//                           valid record instead of failing.
//
// This header is self-contained (config/error/info types plus the
// journal/checkpoint file helpers the tests poke); the recovery engine
// and the durable replay loop live in durability.cpp behind
// online::ReplayStream (controller.hpp).

#include <cstdint>
#include <string>
#include <vector>

namespace sps::online {

/// When journal appends reach the disk (the knob is about POWER-loss
/// durability; process crashes never lose an appended record — the page
/// cache survives the process).
enum class FsyncPolicy : std::uint8_t {
  kOff,         ///< no fsync (still crash-consistent, not power-durable)
  kEveryN,      ///< fsync after every `fsync_every_n` journal records
  kEveryEpoch,  ///< fsync at epoch boundaries and checkpoints
};

const char* ToString(FsyncPolicy p);
/// Parse the CLI spelling: "off", "every-epoch", "every-n" or
/// "every-n:<N>". Returns false on anything else.
[[nodiscard]] bool ParseFsyncPolicy(const char* s, FsyncPolicy& policy,
                                    std::uint32_t& every_n);

struct DurabilityConfig {
  /// Checkpoint/journal directory; empty = durability off (the replay
  /// runs exactly as before, zero overhead).
  std::string dir;
  /// Write a checkpoint every K-th epoch ENTRY (0 = never; the journal
  /// alone still recovers — redo just starts from scratch).
  std::uint32_t checkpoint_every = 4;
  /// Checkpoint files kept on disk (older ones are pruned). >= 2 keeps a
  /// fallback for a corrupt newest checkpoint.
  std::uint32_t keep_checkpoints = 4;
  FsyncPolicy fsync = FsyncPolicy::kEveryEpoch;
  std::uint32_t fsync_every_n = 64;
  /// Recover from `dir` before replaying: load the newest valid
  /// checkpoint, scan + truncate the journal, redo the stream tail with
  /// the journal cross-check, resume. false wipes any previous run's
  /// artifacts from `dir` and starts fresh.
  bool recover = false;
  /// Crash injection (tests/CI): raise SIGKILL immediately after the
  /// N-th journal append of this run (0 = off). A real kill -9 at a
  /// deterministic point — the recovery differential's input.
  std::uint32_t crash_after_appends = 0;
  /// Soft variant for in-process harnesses (tests, bench): abort the
  /// replay cleanly after the N-th append instead of dying (0 = off).
  std::uint32_t halt_after_appends = 0;

  [[nodiscard]] bool enabled() const { return !dir.empty(); }
};

/// Typed durability failure. Every malformed artifact maps to one kind;
/// `path` names the offending file, `offset` the byte offset where
/// framing/parsing stopped (0 when not byte-scoped). Never UB, never a
/// silent false.
struct DurabilityError {
  enum class Kind : std::uint8_t {
    kNone,
    kIo,            ///< open/read/write/mkdir failed (errno in message)
    kBadMagic,      ///< file is not a checkpoint/journal (bad magic)
    kBadVersion,    ///< a future/unknown format version
    kCrcMismatch,   ///< frame CRC does not cover the bytes present
    kTruncated,     ///< file shorter than its framing promises
    kParse,         ///< framing valid but payload undecodable
    kFingerprintMismatch,  ///< artifact was written for a different
                           ///< stream/config than the one replaying
    kJournalDivergence,    ///< redo decision != journaled decision
    kStateMismatch,        ///< checkpoint state fails its integrity
                           ///< cross-check (zobrist/placement recount)
  };
  Kind kind = Kind::kNone;
  std::string path;
  std::uint64_t offset = 0;
  std::string message;

  [[nodiscard]] bool ok() const { return kind == Kind::kNone; }
};

const char* ToString(DurabilityError::Kind k);

/// What recovery did (reported by the CLI on stderr, asserted by tests).
struct RecoveryInfo {
  bool attempted = false;   ///< cfg.recover was set and durability on
  bool recovered = false;   ///< a checkpoint was loaded (else: scratch)
  std::uint64_t checkpoint_epoch = 0;  ///< epoch index of the loaded one
  std::uint64_t resume_seq = 0;     ///< first request index re-applied
  std::uint64_t journal_records = 0;   ///< valid records at recovery
  std::uint64_t journal_truncated_bytes = 0;  ///< torn tail dropped
  std::uint32_t checkpoints_skipped = 0;  ///< corrupt newer ckpts skipped
  bool halted_by_injection = false;  ///< halt_after_appends fired
};

/// Journal scan summary (exposed for tests/tools): how many records
/// frame-validate and where the valid prefix ends.
struct JournalScan {
  std::uint64_t records = 0;
  std::uint64_t valid_bytes = 0;  ///< header + every CRC-valid record
  std::uint64_t total_bytes = 0;
};

/// Scan `path` (header + records), stopping at the first invalid frame.
/// A torn tail is NOT an error — the scan reports the valid prefix; only
/// a missing/unreadable file or a bad header fails.
[[nodiscard]] bool ScanJournal(const std::string& path, JournalScan& out,
                               DurabilityError* error = nullptr);

/// Checkpoint files in `dir`, newest (highest epoch) first. Missing or
/// unreadable directories yield an empty list.
[[nodiscard]] std::vector<std::string> ListCheckpoints(
    const std::string& dir);

}  // namespace sps::online
