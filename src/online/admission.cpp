#include "online/admission.hpp"

#include <algorithm>

namespace sps::online {

partition::EdfPartitionConfig DeriveEdfPartitionConfig(
    const AdmissionConfig& cfg) {
  partition::EdfPartitionConfig out;
  out.num_cores = cfg.num_cores;
  out.model = cfg.model;
  out.budget_granularity = cfg.budget_granularity;
  out.min_budget = cfg.min_budget;
  out.memo = cfg.memo;
  return out;
}

partition::BinPackConfig DeriveBinPackConfig(const AdmissionConfig& cfg) {
  partition::BinPackConfig out;
  out.num_cores = cfg.num_cores;
  out.admission = cfg.fp_admission;
  out.model = cfg.model;
  out.memo = cfg.memo;
  return out;
}

AdmissionState::AdmissionState(const AdmissionConfig& cfg)
    : cfg_(cfg),
      edf_cfg_(DeriveEdfPartitionConfig(cfg)),
      fp_cfg_(DeriveBinPackConfig(cfg)) {
  if (cfg.policy == partition::SchedPolicy::kEdf) {
    memo_ = analysis::MakeEdfMemoContext(cfg.memo, cfg.model);
    edf_cores_.resize(cfg.num_cores);
  } else {
    memo_ = analysis::MakeFpMemoContext(
        cfg.memo, cfg.model, static_cast<int>(cfg.fp_admission));
    fp_cores_.resize(cfg.num_cores);
  }
}

partition::EdfPlacement AdmissionState::Place(
    const rt::Task& t, std::span<const unsigned> core_order,
    bool allow_split) {
  if (cfg_.policy == partition::SchedPolicy::kEdf) {
    return partition::PlaceEdfTask(edf_cores_, t, core_order, allow_split,
                                   edf_cfg_, &stats_, &memo_);
  }
  // Fixed priority: whole-task placement only (splitting in this repo is
  // the EDF-WM window mechanism; FP splitting is the offline SPA
  // preassignment, which is not an incremental step).
  partition::EdfPlacement out;
  for (const unsigned c : core_order) {
    ++out.probes;
    if (partition::FpCoreAdmits(fp_cores_[c], t, fp_cfg_, &stats_,
                                &memo_)) {
      fp_cores_[c].Commit(t);
      out.placed = true;
      out.parts.push_back(partition::SubtaskPlacement{
          c, t.wcet, t.priority + partition::kNormalPriorityBase, 0});
      return out;
    }
  }
  return out;
}

void AdmissionState::Remove(
    rt::TaskId id, std::span<const partition::SubtaskPlacement> parts) {
  for (const partition::SubtaskPlacement& p : parts) {
    if (cfg_.policy == partition::SchedPolicy::kEdf) {
      edf_cores_[p.core].RemoveTask(id);
    } else {
      fp_cores_[p.core].RemoveTask(id);
    }
  }
}

std::vector<AdmissionState::TakenEntry> AdmissionState::TakeEdf(
    rt::TaskId id, std::span<const partition::SubtaskPlacement> parts) {
  std::vector<TakenEntry> taken;
  for (const partition::SubtaskPlacement& p : parts) {
    partition::EdfCoreState& core = edf_cores_[p.core];
    for (auto it = core.entries.begin(); it != core.entries.end();) {
      if (it->id == id) {
        taken.push_back(TakenEntry{p.core, *it});
        core.utilization -= static_cast<double>(it->exec) /
                            static_cast<double>(it->period);
        core.zobrist ^= analysis::EdfEntryCode(*it);
        it = core.entries.erase(it);
      } else {
        ++it;
      }
    }
    if (core.entries.empty()) core.utilization = 0.0;
  }
  return taken;
}

void AdmissionState::RestoreEdf(std::span<const TakenEntry> taken) {
  for (const TakenEntry& t : taken) edf_cores_[t.core].Commit(t.entry);
}

void AdmissionState::Adopt(const partition::Partition& p) {
  const partition::AdmitStats kept = stats_;
  *this = AdmissionState(cfg_);
  stats_ = kept;
  for (const partition::PlacedTask& pt : p.tasks) CommitPlaced(pt);
}

void AdmissionState::CommitPlaced(const partition::PlacedTask& pt) {
  if (cfg_.policy != partition::SchedPolicy::kEdf) {
    fp_cores_[pt.parts[0].core].Commit(pt.task);
    return;
  }
  if (!pt.split()) {
    edf_cores_[pt.parts[0].core].Commit(partition::MakeEdfEntry(pt.task));
    return;
  }
  Time window_start = 0;
  for (std::size_t k = 0; k < pt.parts.size(); ++k) {
    const partition::SubtaskPlacement& sp = pt.parts[k];
    const Time window_end =
        sp.rel_deadline > 0 ? sp.rel_deadline : pt.task.deadline;
    edf_cores_[sp.core].Commit(partition::MakeEdfWindowEntry(
        pt.task, sp.budget, window_end - window_start, k == 0,
        k + 1 == pt.parts.size()));
    window_start = window_end;
  }
}

AdmissionSnapshot AdmissionState::ExportState() const {
  AdmissionSnapshot snap;
  snap.edf_cores = edf_cores_;
  snap.fp_cores = fp_cores_;
  snap.stats = stats_;
  return snap;
}

bool AdmissionState::ImportState(AdmissionSnapshot snap) {
  const bool edf = cfg_.policy == partition::SchedPolicy::kEdf;
  if (edf && (snap.edf_cores.size() != cfg_.num_cores ||
              !snap.fp_cores.empty())) {
    return false;
  }
  if (!edf && (snap.fp_cores.size() != cfg_.num_cores ||
               !snap.edf_cores.empty())) {
    return false;
  }
  edf_cores_ = std::move(snap.edf_cores);
  fp_cores_ = std::move(snap.fp_cores);
  stats_ = snap.stats;
  return true;
}

double AdmissionState::core_utilization(unsigned c) const {
  return cfg_.policy == partition::SchedPolicy::kEdf
             ? edf_cores_[c].utilization
             : fp_cores_[c].utilization;
}

std::size_t AdmissionState::entries_on(unsigned c) const {
  return cfg_.policy == partition::SchedPolicy::kEdf
             ? edf_cores_[c].entries.size()
             : fp_cores_[c].tasks.size();
}

double AdmissionState::total_utilization() const {
  double u = 0.0;
  for (unsigned c = 0; c < cfg_.num_cores; ++c) u += core_utilization(c);
  return u;
}

}  // namespace sps::online
