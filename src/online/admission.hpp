#pragma once
// Incremental admission-control state (DESIGN.md §11): the per-core
// schedulability bookkeeping that lets an ADMIT request be decided by
// testing only candidate cores — never by re-analyzing the whole system —
// and a LEAVE reclaim capacity by subtracting exactly the leaver's
// entries.
//
// Per core this caches what the offline partitioners recompute from
// scratch on every run: the resident analysis entries (whole tasks and
// split-window reservations), their raw utilization sum (the O(1) reject
// filter), and — through partition::EdfCoreAdmits — the density screen
// that settles most EDF admissions in O(resident-on-core) without the
// full demand test. The placement step itself IS the offline one
// (partition::PlaceEdfTask / partition::FpCoreAdmits), so an ADMIT-only
// replay reproduces the offline partition bit-for-bit
// (tests/test_online.cpp differentials).

#include <cstdint>
#include <span>
#include <vector>

#include "overhead/model.hpp"
#include "partition/binpack.hpp"
#include "partition/edf_wm.hpp"
#include "partition/placement.hpp"
#include "rt/task.hpp"
#include "rt/time.hpp"

namespace sps::online {

struct AdmissionConfig {
  unsigned num_cores = 4;
  partition::SchedPolicy policy = partition::SchedPolicy::kEdf;
  overhead::OverheadModel model = overhead::OverheadModel::Zero();
  /// EDF split search knobs (partition::EdfPartitionConfig).
  Time budget_granularity = Micros(10);
  Time min_budget = Micros(100);
  /// Fixed-priority per-core admission test (partition::BinPackConfig).
  partition::AdmissionTest fp_admission = partition::AdmissionTest::kRta;
  /// Admission-verdict transposition table (analysis/memo.hpp), shared
  /// with the offline configs the builders below derive.
  analysis::MemoConfig memo;
};

/// The offline partitioner configs an AdmissionConfig implies — ONE
/// builder pair shared by AdmissionState (incremental steps) and the
/// controller's repartition fallback, so no knob (granularity, model,
/// memo, ...) can drift between the online and offline paths.
[[nodiscard]] partition::EdfPartitionConfig DeriveEdfPartitionConfig(
    const AdmissionConfig& cfg);
[[nodiscard]] partition::BinPackConfig DeriveBinPackConfig(
    const AdmissionConfig& cfg);

/// The complete LOGICAL state of an AdmissionState, detached from its
/// memo context — what the durability checkpoint serializes (DESIGN.md
/// §14). Per-core entry vectors are captured VERBATIM (order included):
/// the utilization caches are floating-point accumulation histories, so
/// re-deriving them from placements would reproduce the same value only
/// up to rounding — and the controller's worst-fit/SPA orderings and
/// hysteresis band compare those doubles. Restoring the exact bits is
/// what makes recovery decision-identical.
struct AdmissionSnapshot {
  std::vector<partition::EdfCoreState> edf_cores;
  std::vector<partition::FpCoreState> fp_cores;
  partition::AdmitStats stats;
};

/// The mutable analysis state of all cores plus the admission primitives.
/// Owns no task registry — that is the controller's job; this layer is
/// purely "would it fit / it now occupies / it no longer occupies".
class AdmissionState {
 public:
  explicit AdmissionState(const AdmissionConfig& cfg);

  /// Try to place `t`, probing whole-task placement on the cores in
  /// `core_order` and then (EDF with allow_split) the window-split
  /// search. Commits the winning entries. Only probed cores are ever
  /// analyzed.
  [[nodiscard]] partition::EdfPlacement Place(
      const rt::Task& t, std::span<const unsigned> core_order,
      bool allow_split);

  /// Reclaim the capacity of a departed task: subtract its entries from
  /// exactly the cores in `parts`.
  void Remove(rt::TaskId id,
              std::span<const partition::SubtaskPlacement> parts);

  /// An entry lifted by TakeEdf, remembering its core, so a failed probe
  /// restores the state exactly — no full-state copies.
  struct TakenEntry {
    unsigned core = 0;
    analysis::EdfCoreEntry entry;
  };

  /// EDF only: remove AND return the task's committed entries (from the
  /// cores in `parts`). Pair with RestoreEdf to undo a hypothetical
  /// probe (the controller's unsplit-on-leave) in O(task entries).
  [[nodiscard]] std::vector<TakenEntry> TakeEdf(
      rt::TaskId id, std::span<const partition::SubtaskPlacement> parts);
  void RestoreEdf(std::span<const TakenEntry> taken);

  /// Drop everything and re-host the state of a full repartition (the
  /// controller's fallback path).
  void Adopt(const partition::Partition& p);

  /// Commit a task's entries for a KNOWN placement without re-running
  /// the admission test — the single entry-materialization step shared
  /// by Adopt and the overload ladder's exact undo path (restoring a
  /// degraded or shed task to the cores it occupied is always safe: the
  /// state is returned to one that passed admission before).
  void CommitPlaced(const partition::PlacedTask& pt);

  [[nodiscard]] double core_utilization(unsigned c) const;
  [[nodiscard]] std::size_t entries_on(unsigned c) const;
  [[nodiscard]] double total_utilization() const;
  [[nodiscard]] unsigned num_cores() const { return cfg_.num_cores; }
  [[nodiscard]] const AdmissionConfig& config() const { return cfg_; }

  /// How admissions were decided (EDF fast/full counters; the bench
  /// reports these).
  [[nodiscard]] const partition::AdmitStats& stats() const {
    return stats_;
  }

  /// Snapshot / restore the logical state (durability checkpoints). The
  /// memo context is NOT part of the snapshot — cache contents are not
  /// logical state (decision counters are cache-independent by §12's
  /// contract; only memo_hits/misses/evicts depend on it). ImportState
  /// returns false (state untouched) if the snapshot's core counts do
  /// not match this state's config.
  [[nodiscard]] AdmissionSnapshot ExportState() const;
  [[nodiscard]] bool ImportState(AdmissionSnapshot snap);

 private:
  AdmissionConfig cfg_;
  partition::EdfPartitionConfig edf_cfg_;  // derived from cfg_
  partition::BinPackConfig fp_cfg_;        // derived from cfg_
  analysis::MemoContext memo_;             // resolved once from cfg_.memo
  std::vector<partition::EdfCoreState> edf_cores_;
  std::vector<partition::FpCoreState> fp_cores_;
  partition::AdmitStats stats_;
};

}  // namespace sps::online
