#include "online/workload_stream.hpp"

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <random>
#include <unordered_map>
#include <unordered_set>

#include "rt/generator.hpp"
#include "util/crc32.hpp"
#include "util/json_writer.hpp"
#include "util/rng.hpp"

namespace sps::online {

namespace {

/// Axes of the per-request seed derivation — one independent stream per
/// drawn quantity so adding a draw never shifts any other.
enum : std::uint64_t {
  kAxisPeriod = 0,
  kAxisUtil = 1,
  kAxisAdmitAt = 2,
  kAxisLeaves = 3,
  kAxisLifetime = 4,
  kAxisSoft = 5,   ///< soft/hard draw (overload axis)
  kAxisValue = 6,  ///< soft task's shed-order value class
};

double UniformDouble(std::uint64_t seed, double lo, double hi) {
  util::SplitMix64 rng(seed);
  std::uniform_real_distribution<double> d(lo, hi);
  return d(rng);
}

Time UniformTime(std::uint64_t seed, Time lo, Time hi) {
  util::SplitMix64 rng(seed);
  std::uniform_int_distribution<Time> d(lo, hi);
  return d(rng);
}

std::string PathError(const std::string& path, const char* verb) {
  return path + ": cannot " + verb + ": " + std::strerror(errno);
}

}  // namespace

WorkloadStream::WorkloadStream(std::vector<Request> reqs)
    : requests_(std::move(reqs)) {
  std::stable_sort(requests_.begin(), requests_.end(),
                   [](const Request& a, const Request& b) {
                     return a.at < b.at;
                   });
}

std::size_t WorkloadStream::num_admits() const {
  std::size_t n = 0;
  for (const Request& r : requests_) {
    if (r.kind == RequestKind::kAdmit) ++n;
  }
  return n;
}

bool WorkloadStream::valid() const {
  std::unordered_set<rt::TaskId> resident;
  std::unordered_set<rt::TaskId> ever;
  Time last = 0;
  for (const Request& r : requests_) {
    if (r.at < last) return false;
    last = r.at;
    if (r.kind == RequestKind::kAdmit) {
      if (!r.task.valid() || r.task.id != r.id) return false;
      if (!ever.insert(r.id).second) return false;  // duplicate admit id
      resident.insert(r.id);
    } else {
      if (resident.erase(r.id) == 0) return false;  // leave without admit
    }
  }
  return true;
}

Time WorkloadStream::span() const {
  return requests_.empty() ? 0 : requests_.back().at;
}

WorkloadStream GenerateStream(const StreamConfig& cfg) {
  rt::GeneratorConfig gen;
  gen.period_min = cfg.period_min;
  gen.period_max = cfg.period_max;
  gen.period_granularity = cfg.period_granularity;

  std::vector<Request> reqs;
  reqs.reserve(cfg.num_admits * 2);
  std::vector<std::pair<Time, rt::TaskId>> dm_order;  // (deadline, id)
  dm_order.reserve(cfg.num_admits);

  for (std::size_t i = 0; i < cfg.num_admits; ++i) {
    // Period via the offline generator's recipe, on a per-request stream.
    rt::Rng prng(util::DeriveSeed(cfg.seed, i, kAxisPeriod));
    const Time period = rt::DrawPeriod(gen, prng);
    const double u = UniformDouble(util::DeriveSeed(cfg.seed, i, kAxisUtil),
                                   cfg.util_min, cfg.util_max);
    Time wcet =
        static_cast<Time>(u * static_cast<double>(period) + 0.5);
    wcet = std::max<Time>(1, std::min(wcet, period));

    Request admit;
    admit.at = UniformTime(util::DeriveSeed(cfg.seed, i, kAxisAdmitAt), 0,
                           cfg.span > 0 ? cfg.span - 1 : 0);
    admit.kind = RequestKind::kAdmit;
    admit.id = static_cast<rt::TaskId>(i);
    admit.task = rt::MakeTask(admit.id, wcet, period);
    // Overload axis: soft tasks carry value / tardiness / degraded-mode
    // attributes. Each draw lives on its own axis, so soft_fraction = 0
    // (the default) regenerates pre-overload streams bit-identically.
    if (cfg.soft_fraction > 0.0 &&
        UniformDouble(util::DeriveSeed(cfg.seed, i, kAxisSoft), 0.0, 1.0) <
            cfg.soft_fraction) {
      admit.task.crit = rt::Criticality::kSoft;
      admit.task.value = static_cast<std::uint32_t>(UniformDouble(
          util::DeriveSeed(cfg.seed, i, kAxisValue), 0.0,
          static_cast<double>(std::max<std::uint32_t>(1,
                                                      cfg.value_classes))));
      admit.task.tardiness_bound = static_cast<Time>(
          cfg.tardiness_factor * static_cast<double>(period));
      if (cfg.degraded_fraction > 0.0) {
        const Time dw = static_cast<Time>(
            cfg.degraded_fraction * static_cast<double>(wcet));
        if (dw > 0 && dw < wcet) admit.task.degraded_wcet = dw;
      }
    }
    dm_order.emplace_back(admit.task.deadline, admit.id);
    reqs.push_back(admit);

    const double leave_draw = UniformDouble(
        util::DeriveSeed(cfg.seed, i, kAxisLeaves), 0.0, 1.0);
    if (leave_draw < cfg.leave_fraction) {
      Request leave;
      leave.at =
          admit.at +
          UniformTime(util::DeriveSeed(cfg.seed, i, kAxisLifetime),
                      cfg.min_lifetime, std::max(cfg.min_lifetime,
                                                 cfg.max_lifetime));
      leave.kind = RequestKind::kLeave;
      leave.id = admit.id;
      reqs.push_back(leave);
    }
  }

  // Unique deadline-monotonic priorities over the whole stream (ties by
  // id), so fixed-priority controllers can consume the tasks directly.
  std::sort(dm_order.begin(), dm_order.end());
  std::unordered_map<rt::TaskId, rt::Priority> prio;
  for (std::size_t rank = 0; rank < dm_order.size(); ++rank) {
    prio[dm_order[rank].second] = static_cast<rt::Priority>(rank);
  }
  for (Request& r : reqs) {
    if (r.kind == RequestKind::kAdmit) r.task.priority = prio[r.id];
  }

  return WorkloadStream(std::move(reqs));
}

WorkloadStream MakeAdmitOnlyStream(const rt::TaskSet& ts,
                                   const std::vector<std::size_t>& order) {
  std::vector<Request> reqs;
  reqs.reserve(order.size());
  for (std::size_t k = 0; k < order.size(); ++k) {
    Request r;
    r.at = static_cast<Time>(k);
    r.kind = RequestKind::kAdmit;
    r.task = ts[order[k]];
    r.id = r.task.id;
    reqs.push_back(r);
  }
  return WorkloadStream(std::move(reqs));
}

const char* ToString(StreamError::Kind k) {
  switch (k) {
    case StreamError::Kind::kNone: return "none";
    case StreamError::Kind::kIo: return "io";
    case StreamError::Kind::kMissingHeader: return "missing-header";
    case StreamError::Kind::kParse: return "parse";
    case StreamError::Kind::kTruncated: return "truncated";
    case StreamError::Kind::kOverlongLine: return "overlong-line";
    case StreamError::Kind::kMalformedTask: return "malformed-task";
    case StreamError::Kind::kDuplicateAdmit: return "duplicate-admit";
    case StreamError::Kind::kLeaveWithoutAdmit:
      return "leave-without-admit";
    case StreamError::Kind::kNonMonotoneTime: return "non-monotone-time";
    case StreamError::Kind::kCrcMismatch: return "crc-mismatch";
  }
  return "?";
}

bool SaveStream(const WorkloadStream& s, const std::string& path,
                std::string* error) {
  // Render the whole trace, then go through the one shared text-file
  // writer (util::WriteTextFile) for the open/write/close + errno
  // reporting. Note the writer appends the trailing newline.
  // Streams with overload attributes (soft tasks) need the v2 admit
  // shape; pure hard streams keep writing v1 byte-for-byte.
  bool v2 = false;
  for (const Request& r : s.requests()) {
    if (r.kind == RequestKind::kAdmit &&
        (r.task.soft() || r.task.value != 0 ||
         r.task.tardiness_bound != 0 || r.task.degraded_wcet != 0)) {
      v2 = true;
      break;
    }
  }
  std::string body =
      v2 ? "# sps-online-stream v2" : "# sps-online-stream v1";
  char line[200];
  for (const Request& r : s.requests()) {
    if (r.kind == RequestKind::kAdmit) {
      if (v2) {
        std::snprintf(line, sizeof(line),
                      "\nadmit %" PRId64 " %u %" PRId64 " %" PRId64
                      " %" PRId64 " %u %u %u %" PRId64 " %" PRId64,
                      r.at, r.id, r.task.wcet, r.task.period,
                      r.task.deadline, r.task.priority,
                      r.task.soft() ? 1u : 0u, r.task.value,
                      r.task.tardiness_bound, r.task.degraded_wcet);
      } else {
        std::snprintf(line, sizeof(line),
                      "\nadmit %" PRId64 " %u %" PRId64 " %" PRId64
                      " %" PRId64 " %u",
                      r.at, r.id, r.task.wcet, r.task.period,
                      r.task.deadline, r.task.priority);
      }
    } else {
      std::snprintf(line, sizeof(line), "\nleave %" PRId64 " %u", r.at,
                    r.id);
    }
    body += line;
  }
  // Integrity footer (DESIGN.md §14): a trailing comment carrying the
  // CRC32 of every byte before it (including the newline terminating the
  // last request line). Loaders that predate it skip it as a comment.
  std::snprintf(line, sizeof(line), "\n# crc32 %08x",
                util::Crc32Of(body + "\n"));
  body += line;
  return util::WriteTextFile(path, body, error);
}

namespace {

StreamError MakeError(StreamError::Kind kind, const std::string& path,
                      int line, const std::string& detail) {
  StreamError e;
  e.kind = kind;
  e.line = line;
  e.message = line > 0 ? path + ":" + std::to_string(line) + ": " + detail
                       : path + ": " + detail;
  return e;
}

}  // namespace

bool LoadStream(const std::string& path, WorkloadStream& out,
                StreamError* error) {
  const auto fail = [&](StreamError::Kind kind, int line,
                        const std::string& detail) {
    if (error != nullptr) *error = MakeError(kind, path, line, detail);
    return false;
  };
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return fail(StreamError::Kind::kIo, 0, PathError("", "open for reading")
                                               .substr(2));
  }
  std::vector<Request> reqs;
  // Incremental validation state, so every malformed input is rejected
  // AT its line (the fuzz-negative tests key on these):
  std::unordered_set<rt::TaskId> resident;  // admitted, not yet left
  std::unordered_set<rt::TaskId> ever;      // admitted at any point
  Time last_at = 0;
  bool any_request = false;
  bool saw_header = false;
  char line[256];
  int lineno = 0;
  StreamError err;
  bool ok = true;
  // Running CRC of every byte before the current line — what a
  // '# crc32' footer (written by SaveStream) must match. Footer-less
  // files (pre-§14 captures) are loaded unchanged.
  util::Crc32 crc;
  while (ok && std::fgets(line, sizeof(line), f) != nullptr) {
    ++lineno;
    const std::size_t len = std::strlen(line);
    if (len + 1 == sizeof(line) && line[len - 1] != '\n') {
      // Buffer filled without a newline: either a line past the format's
      // length bound or a truncation mid-giant-line; peeking one char
      // distinguishes them.
      const StreamError::Kind k = std::fgetc(f) == EOF
                                      ? StreamError::Kind::kTruncated
                                      : StreamError::Kind::kOverlongLine;
      err = MakeError(k, path, lineno,
                      std::string("line exceeds ") +
                          std::to_string(sizeof(line) - 2) + " characters");
      ok = false;
      break;
    }
    if (len > 0 && line[len - 1] != '\n') {
      // EOF without a final newline: the writer always terminates the
      // file, so this is a truncated capture.
      err = MakeError(StreamError::Kind::kTruncated, path, lineno,
                      "file ends mid-line (truncated?)");
      ok = false;
      break;
    }
    if (line[0] == '#') {
      unsigned stored = 0;
      if (saw_header && std::sscanf(line, "# crc32 %x", &stored) == 1) {
        if (stored != crc.value()) {
          err = MakeError(StreamError::Kind::kCrcMismatch, path, lineno,
                          "crc32 footer does not match the file contents "
                          "(corrupt or edited capture)");
          ok = false;
          break;
        }
        continue;  // footer verified; not part of its own CRC
      }
      crc.Update(line, len);
      if (!saw_header) {
        if (std::strncmp(line, "# sps-online-stream v", 21) != 0) {
          err = MakeError(StreamError::Kind::kMissingHeader, path, lineno,
                          "not an sps-online-stream file (bad header)");
          ok = false;
          break;
        }
        saw_header = true;
      }
      continue;
    }
    crc.Update(line, len);
    if (line[0] == '\n' || line[0] == '\0') continue;
    if (!saw_header) {
      err = MakeError(StreamError::Kind::kMissingHeader, path, lineno,
                      "missing '# sps-online-stream v1/v2' header");
      ok = false;
      break;
    }
    Request r;
    std::int64_t at = 0, wcet = 0, period = 0, deadline = 0;
    std::int64_t tardiness = 0, degraded = 0;
    unsigned id = 0, priority = 0, crit = 0, value = 0;
    // One scan covers both admit shapes: 6 converted fields is a v1
    // line, 10 is a v2 line carrying the overload attributes.
    const int n = std::sscanf(line,
                              "admit %" SCNd64 " %u %" SCNd64 " %" SCNd64
                              " %" SCNd64 " %u %u %u %" SCNd64 " %" SCNd64,
                              &at, &id, &wcet, &period, &deadline,
                              &priority, &crit, &value, &tardiness,
                              &degraded);
    if (n == 6 || n == 10) {
      r.at = at;
      r.kind = RequestKind::kAdmit;
      r.id = id;
      r.task = rt::Task{.id = id,
                        .wcet = wcet,
                        .period = period,
                        .deadline = deadline,
                        .priority = priority};
      if (n == 10) {
        if (crit > 1 || tardiness < 0 || degraded < 0 ||
            degraded >= wcet) {
          err = MakeError(StreamError::Kind::kMalformedTask, path, lineno,
                          "bad overload attributes on admit line");
          ok = false;
          break;
        }
        r.task.crit = crit == 1 ? rt::Criticality::kSoft
                                : rt::Criticality::kHard;
        r.task.value = value;
        r.task.tardiness_bound = tardiness;
        r.task.degraded_wcet = degraded;
      }
      if (!r.task.valid()) {
        err = MakeError(StreamError::Kind::kMalformedTask, path, lineno,
                        "malformed task (need 0 < C <= D <= T)");
        ok = false;
        break;
      }
      if (!ever.insert(r.id).second) {
        err = MakeError(StreamError::Kind::kDuplicateAdmit, path, lineno,
                        "duplicate admit of task id " + std::to_string(id));
        ok = false;
        break;
      }
      resident.insert(r.id);
    } else if (std::sscanf(line, "leave %" SCNd64 " %u", &at, &id) == 2) {
      r.at = at;
      r.kind = RequestKind::kLeave;
      r.id = id;
      if (resident.erase(r.id) == 0) {
        err = MakeError(StreamError::Kind::kLeaveWithoutAdmit, path,
                        lineno,
                        "leave of task id " + std::to_string(id) +
                            " which is not resident");
        ok = false;
        break;
      }
    } else {
      err = MakeError(StreamError::Kind::kParse, path, lineno,
                      std::string("unparseable request line: ") + line);
      ok = false;
      break;
    }
    if (any_request && r.at < last_at) {
      err = MakeError(StreamError::Kind::kNonMonotoneTime, path, lineno,
                      "timestamp earlier than the previous request");
      ok = false;
      break;
    }
    any_request = true;
    last_at = r.at;
    reqs.push_back(r);
  }
  if (ok && std::ferror(f) != 0) {
    err = MakeError(StreamError::Kind::kIo, path, 0,
                    PathError("", "read").substr(2));
    ok = false;
  }
  std::fclose(f);
  if (!ok) {
    if (error != nullptr) *error = err;
    return false;
  }
  out = WorkloadStream(std::move(reqs));
  return true;
}

bool LoadStream(const std::string& path, WorkloadStream& out,
                std::string* error) {
  StreamError e;
  if (LoadStream(path, out, &e)) return true;
  if (error != nullptr) *error = e.message;
  return false;
}

}  // namespace sps::online
