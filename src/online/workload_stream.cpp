#include "online/workload_stream.hpp"

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <random>
#include <unordered_map>
#include <unordered_set>

#include "rt/generator.hpp"
#include "util/json_writer.hpp"
#include "util/rng.hpp"

namespace sps::online {

namespace {

/// Axes of the per-request seed derivation — one independent stream per
/// drawn quantity so adding a draw never shifts any other.
enum : std::uint64_t {
  kAxisPeriod = 0,
  kAxisUtil = 1,
  kAxisAdmitAt = 2,
  kAxisLeaves = 3,
  kAxisLifetime = 4,
};

double UniformDouble(std::uint64_t seed, double lo, double hi) {
  util::SplitMix64 rng(seed);
  std::uniform_real_distribution<double> d(lo, hi);
  return d(rng);
}

Time UniformTime(std::uint64_t seed, Time lo, Time hi) {
  util::SplitMix64 rng(seed);
  std::uniform_int_distribution<Time> d(lo, hi);
  return d(rng);
}

std::string PathError(const std::string& path, const char* verb) {
  return path + ": cannot " + verb + ": " + std::strerror(errno);
}

}  // namespace

WorkloadStream::WorkloadStream(std::vector<Request> reqs)
    : requests_(std::move(reqs)) {
  std::stable_sort(requests_.begin(), requests_.end(),
                   [](const Request& a, const Request& b) {
                     return a.at < b.at;
                   });
}

std::size_t WorkloadStream::num_admits() const {
  std::size_t n = 0;
  for (const Request& r : requests_) {
    if (r.kind == RequestKind::kAdmit) ++n;
  }
  return n;
}

bool WorkloadStream::valid() const {
  std::unordered_set<rt::TaskId> resident;
  std::unordered_set<rt::TaskId> ever;
  Time last = 0;
  for (const Request& r : requests_) {
    if (r.at < last) return false;
    last = r.at;
    if (r.kind == RequestKind::kAdmit) {
      if (!r.task.valid() || r.task.id != r.id) return false;
      if (!ever.insert(r.id).second) return false;  // duplicate admit id
      resident.insert(r.id);
    } else {
      if (resident.erase(r.id) == 0) return false;  // leave without admit
    }
  }
  return true;
}

Time WorkloadStream::span() const {
  return requests_.empty() ? 0 : requests_.back().at;
}

WorkloadStream GenerateStream(const StreamConfig& cfg) {
  rt::GeneratorConfig gen;
  gen.period_min = cfg.period_min;
  gen.period_max = cfg.period_max;
  gen.period_granularity = cfg.period_granularity;

  std::vector<Request> reqs;
  reqs.reserve(cfg.num_admits * 2);
  std::vector<std::pair<Time, rt::TaskId>> dm_order;  // (deadline, id)
  dm_order.reserve(cfg.num_admits);

  for (std::size_t i = 0; i < cfg.num_admits; ++i) {
    // Period via the offline generator's recipe, on a per-request stream.
    rt::Rng prng(util::DeriveSeed(cfg.seed, i, kAxisPeriod));
    const Time period = rt::DrawPeriod(gen, prng);
    const double u = UniformDouble(util::DeriveSeed(cfg.seed, i, kAxisUtil),
                                   cfg.util_min, cfg.util_max);
    Time wcet =
        static_cast<Time>(u * static_cast<double>(period) + 0.5);
    wcet = std::max<Time>(1, std::min(wcet, period));

    Request admit;
    admit.at = UniformTime(util::DeriveSeed(cfg.seed, i, kAxisAdmitAt), 0,
                           cfg.span > 0 ? cfg.span - 1 : 0);
    admit.kind = RequestKind::kAdmit;
    admit.id = static_cast<rt::TaskId>(i);
    admit.task = rt::MakeTask(admit.id, wcet, period);
    dm_order.emplace_back(admit.task.deadline, admit.id);
    reqs.push_back(admit);

    const double leave_draw = UniformDouble(
        util::DeriveSeed(cfg.seed, i, kAxisLeaves), 0.0, 1.0);
    if (leave_draw < cfg.leave_fraction) {
      Request leave;
      leave.at =
          admit.at +
          UniformTime(util::DeriveSeed(cfg.seed, i, kAxisLifetime),
                      cfg.min_lifetime, std::max(cfg.min_lifetime,
                                                 cfg.max_lifetime));
      leave.kind = RequestKind::kLeave;
      leave.id = admit.id;
      reqs.push_back(leave);
    }
  }

  // Unique deadline-monotonic priorities over the whole stream (ties by
  // id), so fixed-priority controllers can consume the tasks directly.
  std::sort(dm_order.begin(), dm_order.end());
  std::unordered_map<rt::TaskId, rt::Priority> prio;
  for (std::size_t rank = 0; rank < dm_order.size(); ++rank) {
    prio[dm_order[rank].second] = static_cast<rt::Priority>(rank);
  }
  for (Request& r : reqs) {
    if (r.kind == RequestKind::kAdmit) r.task.priority = prio[r.id];
  }

  return WorkloadStream(std::move(reqs));
}

WorkloadStream MakeAdmitOnlyStream(const rt::TaskSet& ts,
                                   const std::vector<std::size_t>& order) {
  std::vector<Request> reqs;
  reqs.reserve(order.size());
  for (std::size_t k = 0; k < order.size(); ++k) {
    Request r;
    r.at = static_cast<Time>(k);
    r.kind = RequestKind::kAdmit;
    r.task = ts[order[k]];
    r.id = r.task.id;
    reqs.push_back(r);
  }
  return WorkloadStream(std::move(reqs));
}

bool SaveStream(const WorkloadStream& s, const std::string& path,
                std::string* error) {
  // Render the whole trace, then go through the one shared text-file
  // writer (util::WriteTextFile) for the open/write/close + errno
  // reporting. Note the writer appends the trailing newline.
  std::string body = "# sps-online-stream v1";
  char line[160];
  for (const Request& r : s.requests()) {
    if (r.kind == RequestKind::kAdmit) {
      std::snprintf(line, sizeof(line),
                    "\nadmit %" PRId64 " %u %" PRId64 " %" PRId64
                    " %" PRId64 " %u",
                    r.at, r.id, r.task.wcet, r.task.period,
                    r.task.deadline, r.task.priority);
    } else {
      std::snprintf(line, sizeof(line), "\nleave %" PRId64 " %u", r.at,
                    r.id);
    }
    body += line;
  }
  return util::WriteTextFile(path, body, error);
}

bool LoadStream(const std::string& path, WorkloadStream& out,
                std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    if (error != nullptr) *error = PathError(path, "open for reading");
    return false;
  }
  std::vector<Request> reqs;
  char line[256];
  int lineno = 0;
  bool ok = true;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    ++lineno;
    if (line[0] == '#' || line[0] == '\n' || line[0] == '\0') continue;
    Request r;
    std::int64_t at = 0, wcet = 0, period = 0, deadline = 0;
    unsigned id = 0, priority = 0;
    if (std::sscanf(line,
                    "admit %" SCNd64 " %u %" SCNd64 " %" SCNd64 " %" SCNd64
                    " %u",
                    &at, &id, &wcet, &period, &deadline, &priority) == 6) {
      r.at = at;
      r.kind = RequestKind::kAdmit;
      r.id = id;
      r.task = rt::Task{.id = id,
                        .wcet = wcet,
                        .period = period,
                        .deadline = deadline,
                        .priority = priority};
    } else if (std::sscanf(line, "leave %" SCNd64 " %u", &at, &id) == 2) {
      r.at = at;
      r.kind = RequestKind::kLeave;
      r.id = id;
    } else {
      if (error != nullptr) {
        *error = path + ":" + std::to_string(lineno) +
                 ": unparseable request line: " + line;
      }
      ok = false;
      break;
    }
    reqs.push_back(r);
  }
  if (ok && std::ferror(f) != 0) {
    if (error != nullptr) *error = PathError(path, "read");
    ok = false;
  }
  std::fclose(f);
  if (!ok) return false;
  out = WorkloadStream(std::move(reqs));
  if (!out.valid()) {
    if (error != nullptr) {
      *error = path + ": stream invalid (duplicate admit, leave without "
                      "admit, or malformed task)";
    }
    return false;
  }
  return true;
}

}  // namespace sps::online
