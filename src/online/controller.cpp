#include "online/controller.hpp"

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "sim/batch.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace sps::online {

namespace {

bool SameParts(const std::vector<partition::SubtaskPlacement>& a,
               const std::vector<partition::SubtaskPlacement>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].core != b[i].core || a[i].budget != b[i].budget ||
        a[i].local_priority != b[i].local_priority ||
        a[i].rel_deadline != b[i].rel_deadline) {
      return false;
    }
  }
  return true;
}

partition::FitPolicy ToFitPolicy(PlacePolicy p) {
  switch (p) {
    case PlacePolicy::kFirstFit: return partition::FitPolicy::kFirstFit;
    case PlacePolicy::kWorstFit: return partition::FitPolicy::kWorstFit;
    case PlacePolicy::kSpaOrder: return partition::FitPolicy::kBestFit;
  }
  return partition::FitPolicy::kFirstFit;
}

}  // namespace

const char* ToString(PlacePolicy p) {
  switch (p) {
    case PlacePolicy::kFirstFit: return "first-fit";
    case PlacePolicy::kWorstFit: return "worst-fit";
    case PlacePolicy::kSpaOrder: return "spa-order";
  }
  return "?";
}

ChurnStats& ChurnStats::operator+=(const ChurnStats& o) {
  moved += o.moved;
  split += o.split;
  unsplit += o.unsplit;
  repartitions += o.repartitions;
  return *this;
}

ChurnStats& ChurnStats::operator-=(const ChurnStats& o) {
  moved -= o.moved;
  split -= o.split;
  unsplit -= o.unsplit;
  repartitions -= o.repartitions;
  return *this;
}

Controller::Controller(const ControllerConfig& cfg)
    : cfg_(cfg), state_(cfg.admission) {}

std::vector<unsigned> Controller::CoreOrder(
    const AdmissionState& state) const {
  std::vector<unsigned> order(state.num_cores());
  std::iota(order.begin(), order.end(), 0u);
  if (cfg_.place == PlacePolicy::kFirstFit) return order;
  std::stable_sort(order.begin(), order.end(), [&](unsigned a, unsigned b) {
    return cfg_.place == PlacePolicy::kWorstFit
               ? state.core_utilization(a) < state.core_utilization(b)
               : state.core_utilization(a) > state.core_utilization(b);
  });
  return order;
}

AdmitOutcome Controller::Admit(const rt::Task& t) {
  AdmitOutcome out;
  if (!t.valid() || placements_.count(t.id) != 0) return out;

  const std::vector<unsigned> order = CoreOrder(state_);
  const bool allow_split =
      cfg_.allow_split &&
      cfg_.admission.policy == partition::SchedPolicy::kEdf;
  partition::EdfPlacement placed = state_.Place(t, order, allow_split);
  if (placed.placed) {
    out.accepted = true;
    out.parts = static_cast<unsigned>(placed.parts.size());
    if (out.parts > 1) ++churn_.split;
    partition::PlacedTask pt;
    pt.task = t;
    pt.parts = std::move(placed.parts);
    placements_.emplace(t.id, std::move(pt));
    return out;
  }
  if (cfg_.repartition_fallback) return FallbackRepartition(t);
  return out;
}

AdmitOutcome Controller::FallbackRepartition(const rt::Task& t) {
  AdmitOutcome out;
  // O(1) hopelessness guard: no partitioner can place a set whose total
  // utilization exceeds the core count — skip the offline run entirely.
  if (state_.total_utilization() + t.utilization() >
      static_cast<double>(cfg_.admission.num_cores) + 1e-12) {
    return out;
  }
  // Resident set + candidate, in ascending id order (the offline
  // partitioners impose their own heuristic order internally).
  std::vector<rt::Task> tasks;
  tasks.reserve(placements_.size() + 1);
  for (const auto& [id, pt] : placements_) tasks.push_back(pt.task);
  tasks.push_back(t);
  std::sort(tasks.begin(), tasks.end(),
            [](const rt::Task& a, const rt::Task& b) { return a.id < b.id; });
  const rt::TaskSet ts(std::move(tasks));

  // Shared derived-config builders (admission.hpp): the fallback runs
  // the offline partitioner under EXACTLY the config the incremental
  // state uses — no hand-copied knobs to drift.
  partition::PartitionResult pr;
  if (cfg_.admission.policy == partition::SchedPolicy::kEdf) {
    const partition::EdfPartitionConfig ecfg =
        DeriveEdfPartitionConfig(cfg_.admission);
    pr = cfg_.allow_split
             ? partition::EdfWm(ts, ecfg)
             : partition::EdfBinPack(ts, ToFitPolicy(cfg_.place), ecfg);
  } else {
    pr = partition::BinPackDecreasing(
        ts, ToFitPolicy(cfg_.place), DeriveBinPackConfig(cfg_.admission));
  }
  if (!pr.success) return out;

  // Adopted: charge the churn — every RESIDENT task whose placement
  // changed moved; residents newly split (and the candidate if split)
  // count as splits.
  std::unordered_map<rt::TaskId, partition::PlacedTask> next;
  for (const partition::PlacedTask& pt : pr.partition.tasks) {
    next.emplace(pt.task.id, pt);
  }
  for (const auto& [id, old_pt] : placements_) {
    const partition::PlacedTask& new_pt = next.at(id);
    if (!SameParts(old_pt.parts, new_pt.parts)) {
      ++churn_.moved;
      if (!old_pt.split() && new_pt.split()) ++churn_.split;
      if (old_pt.split() && !new_pt.split()) ++churn_.unsplit;
    }
  }
  if (next.at(t.id).split()) ++churn_.split;
  ++churn_.repartitions;

  state_.Adopt(pr.partition);
  placements_ = std::move(next);
  out.accepted = true;
  out.via_fallback = true;
  out.parts = static_cast<unsigned>(placements_.at(t.id).parts.size());
  return out;
}

bool Controller::Leave(rt::TaskId id) {
  const auto it = placements_.find(id);
  if (it == placements_.end()) return false;
  state_.Remove(id, it->second.parts);
  placements_.erase(it);
  if (cfg_.unsplit_on_leave &&
      cfg_.admission.policy == partition::SchedPolicy::kEdf) {
    TryUnsplit();
  }
  return true;
}

void Controller::TryUnsplit() {
  // Deterministic scan: the lowest-id resident split task that now fits
  // whole somewhere is consolidated (at most one per LEAVE — the freed
  // capacity is what made this worth probing).
  std::vector<rt::TaskId> split_ids;
  for (const auto& [id, pt] : placements_) {
    if (pt.split()) split_ids.push_back(id);
  }
  std::sort(split_ids.begin(), split_ids.end());

  for (const rt::TaskId id : split_ids) {
    partition::PlacedTask& pt = placements_.at(id);
    // Probe: would the whole task fit on some core once its own window
    // reservations are lifted? Lift exactly the task's entries (and the
    // core order is ranked with them lifted — what the policy should
    // see), place, and restore on failure: O(task entries), no state
    // copies.
    const std::vector<AdmissionState::TakenEntry> taken =
        state_.TakeEdf(id, pt.parts);
    const std::vector<unsigned> order = CoreOrder(state_);
    partition::EdfPlacement whole =
        state_.Place(pt.task, order, /*allow_split=*/false);
    if (!whole.placed) {
      state_.RestoreEdf(taken);
      continue;
    }
    pt.parts = std::move(whole.parts);
    ++churn_.unsplit;
    return;
  }
}

partition::Partition Controller::CurrentPartition() const {
  partition::Partition p;
  p.num_cores = cfg_.admission.num_cores;
  p.policy = cfg_.admission.policy;
  p.tasks.reserve(placements_.size());
  for (const auto& [id, pt] : placements_) p.tasks.push_back(pt);
  std::sort(p.tasks.begin(), p.tasks.end(),
            [](const partition::PlacedTask& a,
               const partition::PlacedTask& b) {
              return a.task.id < b.task.id;
            });
  return p;
}

// ---- epoch replay ----------------------------------------------------------

namespace {

void CloseEpoch(const Controller& ctrl, const ReplayConfig& cfg,
                std::size_t epoch_index, Time start, Time end,
                const ChurnStats& churn_before, EpochStats& e,
                ReplayResult& out) {
  e.start = start;
  e.end = end;
  e.resident = ctrl.resident();
  e.utilization = ctrl.total_utilization();
  ChurnStats delta = ctrl.churn();
  delta -= churn_before;
  e.churn = delta;
  if (cfg.validate_by_simulation && ctrl.resident() > 0) {
    sim::SimConfig scfg = cfg.validate_sim;
    scfg.overheads = cfg.controller.admission.model;
    scfg.exec.seed = util::DeriveSeed(cfg.seed, epoch_index, 0);
    scfg.arrivals.seed = util::DeriveSeed(cfg.seed, epoch_index, 1);
    const std::vector<sim::BatchRun> runs = sim::RunConfigSweep(
        ctrl.CurrentPartition(), {{"epoch", scfg}}, {.jobs = 1});
    e.validated = true;
    e.sim_misses = runs.front().result.total_misses;
  }
  out.epochs.push_back(e);
  e = EpochStats{};
}

}  // namespace

ReplayResult ReplayStream(const WorkloadStream& s, const ReplayConfig& cfg) {
  ReplayResult out;
  Controller ctrl(cfg.controller);
  const Time epoch_len = cfg.epoch > 0 ? cfg.epoch : s.span() + 1;
  // Idle spans longer than this many empty epochs are compressed: the
  // skipped epochs produce no rows (nothing happened in them; their
  // validation would re-simulate an unchanged partition). Bounds the
  // result against a far-future timestamp in a loaded trace or a tiny
  // --online-epoch-ms against a long stream.
  constexpr Time kMaxIdleEpochs = 1024;

  EpochStats cur;
  ChurnStats churn_before;
  Time epoch_start = 0;
  std::size_t epoch_index = 0;

  for (const Request& r : s.requests()) {
    // (r.at - epoch_start is non-negative: requests are time-sorted and
    // epoch_start never passes a request — so the subtraction form is
    // overflow-safe where `epoch_start + epoch_len` is not.)
    while (r.at - epoch_start >= epoch_len) {
      CloseEpoch(ctrl, cfg, epoch_index, epoch_start,
                 epoch_start + epoch_len, churn_before, cur, out);
      churn_before = ctrl.churn();
      epoch_start += epoch_len;
      ++epoch_index;
      const Time idle_epochs = (r.at - epoch_start) / epoch_len;
      if (idle_epochs > kMaxIdleEpochs) {
        epoch_start += idle_epochs * epoch_len;
        epoch_index += static_cast<std::size_t>(idle_epochs);
      }
    }
    if (r.kind == RequestKind::kAdmit) {
      if (ctrl.Admit(r.task).accepted) {
        ++cur.admits;
        ++out.admits;
      } else {
        ++cur.rejects;
        ++out.rejects;
      }
    } else {
      if (ctrl.Leave(r.id)) {
        ++cur.leaves;
        ++out.leaves;
      }
    }
  }
  // Final epoch; its nominal end can exceed the representable range when
  // the last request sits near kTimeNever — clamp.
  const Time final_end = epoch_start > kTimeNever - epoch_len
                             ? kTimeNever
                             : epoch_start + epoch_len;
  CloseEpoch(ctrl, cfg, epoch_index, epoch_start, final_end, churn_before,
             cur, out);

  out.churn = ctrl.churn();
  out.admission = ctrl.admission_stats();
  out.final_partition = ctrl.CurrentPartition();
  return out;
}

std::vector<ReplayResult> ReplayBatch(std::span<const WorkloadStream> streams,
                                      const ReplayConfig& cfg,
                                      unsigned jobs) {
  std::vector<ReplayResult> results(streams.size());
  util::ParallelFor(jobs, streams.size(), [&](std::size_t i) {
    // Per-stream config: only the validation seed varies, derived from
    // the stream index — results are pure in (stream, cfg, i), hence
    // bit-identical for any job count.
    ReplayConfig c = cfg;
    c.seed = util::DeriveSeed(cfg.seed, i, 0xB47C4);
    results[i] = ReplayStream(streams[i], c);
  });
  return results;
}

std::string ReplayResult::Table() const {
  std::string out =
      "epoch      [ms, ms)   admit reject leave resident   util"
      "   moved split unsplit  sim-miss\n";
  char buf[160];
  for (std::size_t i = 0; i < epochs.size(); ++i) {
    const EpochStats& e = epochs[i];
    const std::string miss =
        e.validated ? std::to_string(e.sim_misses) : std::string("-");
    std::snprintf(buf, sizeof(buf),
                  "%5zu %7.0f %7.0f %7u %6u %5u %8zu %6.3f %7llu %5llu"
                  " %7llu %9s\n",
                  i, ToMillis(e.start), ToMillis(e.end), e.admits,
                  e.rejects, e.leaves, e.resident, e.utilization,
                  static_cast<unsigned long long>(e.churn.moved),
                  static_cast<unsigned long long>(e.churn.split),
                  static_cast<unsigned long long>(e.churn.unsplit),
                  miss.c_str());
    out += buf;
  }
  return out;
}

}  // namespace sps::online
