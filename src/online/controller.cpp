#include "online/controller.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <numeric>

#include "obs/registry.hpp"
#include "obs/spans.hpp"

namespace sps::online {

namespace {

bool SameParts(const std::vector<partition::SubtaskPlacement>& a,
               const std::vector<partition::SubtaskPlacement>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].core != b[i].core || a[i].budget != b[i].budget ||
        a[i].local_priority != b[i].local_priority ||
        a[i].rel_deadline != b[i].rel_deadline) {
      return false;
    }
  }
  return true;
}

partition::FitPolicy ToFitPolicy(PlacePolicy p) {
  switch (p) {
    case PlacePolicy::kFirstFit: return partition::FitPolicy::kFirstFit;
    case PlacePolicy::kWorstFit: return partition::FitPolicy::kWorstFit;
    case PlacePolicy::kSpaOrder: return partition::FitPolicy::kBestFit;
  }
  return partition::FitPolicy::kFirstFit;
}

/// "Nobody eligible" sentinel for PickVictim (no stream id reaches it).
constexpr rt::TaskId kNoVictim = std::numeric_limits<rt::TaskId>::max();

/// Importance guard of the admission-path ladder: a candidate may only
/// displace residents strictly less important than itself — a hard
/// candidate outranks every soft resident; a soft candidate outranks
/// only lower-value soft residents (equal value never thrashes). The
/// epoch reaction (for_admit == nullptr) may pick any soft resident.
bool VictimEligible(const rt::Task& victim, const rt::Task* for_admit) {
  if (!victim.soft()) return false;
  if (for_admit == nullptr) return true;
  if (for_admit->crit == rt::Criticality::kHard) return true;
  return victim.value < for_admit->value;
}

}  // namespace

const char* ToString(PlacePolicy p) {
  switch (p) {
    case PlacePolicy::kFirstFit: return "first-fit";
    case PlacePolicy::kWorstFit: return "worst-fit";
    case PlacePolicy::kSpaOrder: return "spa-order";
  }
  return "?";
}

ChurnStats& ChurnStats::operator+=(const ChurnStats& o) {
  moved += o.moved;
  split += o.split;
  unsplit += o.unsplit;
  repartitions += o.repartitions;
  return *this;
}

ChurnStats& ChurnStats::operator-=(const ChurnStats& o) {
  moved -= o.moved;
  split -= o.split;
  unsplit -= o.unsplit;
  repartitions -= o.repartitions;
  return *this;
}

OverloadStats& OverloadStats::operator+=(const OverloadStats& o) {
  degrades += o.degrades;
  degrade_restores += o.degrade_restores;
  sheds += o.sheds;
  shed_restores += o.shed_restores;
  retry_attempts += o.retry_attempts;
  hysteresis_blocks += o.hysteresis_blocks;
  return *this;
}

OverloadStats& OverloadStats::operator-=(const OverloadStats& o) {
  degrades -= o.degrades;
  degrade_restores -= o.degrade_restores;
  sheds -= o.sheds;
  shed_restores -= o.shed_restores;
  retry_attempts -= o.retry_attempts;
  hysteresis_blocks -= o.hysteresis_blocks;
  return *this;
}

Controller::Controller(const ControllerConfig& cfg)
    : cfg_(cfg), state_(cfg.admission) {}

std::vector<unsigned> Controller::CoreOrder(
    const AdmissionState& state) const {
  std::vector<unsigned> order(state.num_cores());
  std::iota(order.begin(), order.end(), 0u);
  if (cfg_.place == PlacePolicy::kFirstFit) return order;
  std::stable_sort(order.begin(), order.end(), [&](unsigned a, unsigned b) {
    return cfg_.place == PlacePolicy::kWorstFit
               ? state.core_utilization(a) < state.core_utilization(b)
               : state.core_utilization(a) > state.core_utilization(b);
  });
  return order;
}

AdmitOutcome Controller::TryPlace(const rt::Task& t) {
  obs::ScopedSpan span(obs::InstalledProfiler(), obs::SpanStage::kPlacement);
  AdmitOutcome out;
  const std::vector<unsigned> order = CoreOrder(state_);
  const bool allow_split =
      cfg_.allow_split &&
      cfg_.admission.policy == partition::SchedPolicy::kEdf;
  partition::EdfPlacement placed = state_.Place(t, order, allow_split);
  // kPlacement span attribute: cores probed during the walk.
  obs::TraceAttr(static_cast<std::int64_t>(placed.probes));
  if (!placed.placed) return out;
  out.accepted = true;
  out.parts = static_cast<unsigned>(placed.parts.size());
  if (out.parts > 1) ++churn_.split;
  partition::PlacedTask pt;
  pt.task = t;
  pt.parts = std::move(placed.parts);
  placements_.emplace(t.id, std::move(pt));
  admit_seq_of_[t.id] = admit_seq_++;
  // Admission generation: 0 on the first admission of this id (so pure
  // admit streams match the legacy RNG derivation bit-for-bit), bumped
  // on every re-admission so a returning id never resumes its previous
  // incarnation's exec/arrival RNG position.
  const auto [it, inserted] = generation_of_.try_emplace(t.id, 0u);
  if (!inserted) ++it->second;
  return out;
}

AdmitOutcome Controller::Admit(const rt::Task& t) {
  obs::ScopedSpan span(obs::InstalledProfiler(), obs::SpanStage::kAdmitTotal);
  AdmitOutcome out;
  if (!t.valid() || placements_.count(t.id) != 0) return out;
  for (const ShedRecord& r : shed_) {
    if (r.task.id == t.id) return out;  // id still logically in-system
  }

  out = TryPlace(t);
  if (out.accepted) return out;

  // Ladder (DESIGN.md §13): make room by degrading, then shedding,
  // strictly less important residents — retrying the incremental
  // placement after each step. All steps are logged; a candidate the
  // ladder still cannot place rolls every step back exactly.
  if (cfg_.overload.ladder) {
    std::vector<LadderAction> log;
    while (DegradeOne(&t, log) || ShedOne(&t, log)) {
      out = TryPlace(t);
      if (out.accepted) {
        out.via_ladder = true;
        // kAdmitTotal span attribute: ladder rung reached (steps taken).
        obs::TraceAttr(static_cast<std::int64_t>(log.size()));
        CommitLadder(log);
        return out;
      }
    }
    UndoLadder(log);
  }
  if (cfg_.repartition_fallback) return FallbackRepartition(t);
  return out;
}

bool Controller::FallbackAllowed() {
  if (!cfg_.overload.hysteresis || !any_fallback_) return true;
  if (epoch_ - last_fallback_epoch_ >= cfg_.overload.cooldown_epochs) {
    return true;
  }
  if (std::abs(state_.total_utilization() - last_fallback_util_) >
      cfg_.overload.util_band) {
    return true;
  }
  ++overload_.hysteresis_blocks;
  return false;
}

AdmitOutcome Controller::FallbackRepartition(const rt::Task& t) {
  obs::ScopedSpan span(obs::InstalledProfiler(), obs::SpanStage::kFallback);
  AdmitOutcome out;
  // O(1) hopelessness guard: no partitioner can place a set whose total
  // utilization exceeds the core count — skip the offline run entirely.
  // (Checked before the hysteresis gate: a hopeless request is not a
  // suppressed repartition, it is an unplaceable one.)
  if (state_.total_utilization() + t.utilization() >
      static_cast<double>(cfg_.admission.num_cores) + 1e-12) {
    return out;
  }
  if (!FallbackAllowed()) return out;
  // Resident set + candidate, in ascending id order (the offline
  // partitioners impose their own heuristic order internally).
  std::vector<rt::Task> tasks;
  tasks.reserve(placements_.size() + 1);
  for (const auto& [id, pt] : placements_) tasks.push_back(pt.task);
  tasks.push_back(t);
  std::sort(tasks.begin(), tasks.end(),
            [](const rt::Task& a, const rt::Task& b) { return a.id < b.id; });
  const rt::TaskSet ts(std::move(tasks));

  // Shared derived-config builders (admission.hpp): the fallback runs
  // the offline partitioner under EXACTLY the config the incremental
  // state uses — no hand-copied knobs to drift.
  partition::PartitionResult pr;
  if (cfg_.admission.policy == partition::SchedPolicy::kEdf) {
    const partition::EdfPartitionConfig ecfg =
        DeriveEdfPartitionConfig(cfg_.admission);
    pr = cfg_.allow_split
             ? partition::EdfWm(ts, ecfg)
             : partition::EdfBinPack(ts, ToFitPolicy(cfg_.place), ecfg);
  } else {
    pr = partition::BinPackDecreasing(
        ts, ToFitPolicy(cfg_.place), DeriveBinPackConfig(cfg_.admission));
  }
  if (!pr.success) return out;

  // Adopted: charge the churn — every RESIDENT task whose placement
  // changed moved; residents newly split (and the candidate if split)
  // count as splits.
  std::unordered_map<rt::TaskId, partition::PlacedTask> next;
  for (const partition::PlacedTask& pt : pr.partition.tasks) {
    next.emplace(pt.task.id, pt);
  }
  for (const auto& [id, old_pt] : placements_) {
    const partition::PlacedTask& new_pt = next.at(id);
    if (!SameParts(old_pt.parts, new_pt.parts)) {
      ++churn_.moved;
      if (!old_pt.split() && new_pt.split()) ++churn_.split;
      if (old_pt.split() && !new_pt.split()) ++churn_.unsplit;
    }
  }
  if (next.at(t.id).split()) ++churn_.split;
  ++churn_.repartitions;

  state_.Adopt(pr.partition);
  placements_ = std::move(next);
  admit_seq_of_[t.id] = admit_seq_++;
  const auto [git, inserted] = generation_of_.try_emplace(t.id, 0u);
  if (!inserted) ++git->second;
  any_fallback_ = true;
  last_fallback_epoch_ = epoch_;
  last_fallback_util_ = state_.total_utilization();
  out.accepted = true;
  out.via_fallback = true;
  out.parts = static_cast<unsigned>(placements_.at(t.id).parts.size());
  // kFallback span attribute: size of the repartitioned set.
  obs::TraceAttr(static_cast<std::int64_t>(ts.size()));
  return out;
}

bool Controller::Leave(rt::TaskId id) {
  obs::ScopedSpan span(obs::InstalledProfiler(), obs::SpanStage::kLeave);
  const auto it = placements_.find(id);
  if (it == placements_.end()) {
    // A currently-shed task leaving for good: drop its retry record (no
    // capacity to reclaim — it holds none).
    for (auto s = shed_.begin(); s != shed_.end(); ++s) {
      if (s->task.id == id) {
        shed_.erase(s);
        return true;
      }
    }
    return false;
  }
  state_.Remove(id, it->second.parts);
  placements_.erase(it);
  degraded_full_.erase(id);
  admit_seq_of_.erase(id);
  if (cfg_.unsplit_on_leave &&
      cfg_.admission.policy == partition::SchedPolicy::kEdf) {
    ConsolidateSplits();
  }
  return true;
}

template <typename Pred>
rt::TaskId Controller::PickVictim(Pred&& pred) const {
  // Minimum (value, then NEWEST admission): a total order over residents
  // (admission sequences are unique), so the pick is independent of the
  // unordered_map iteration order.
  rt::TaskId best = kNoVictim;
  std::uint32_t best_value = 0;
  std::uint64_t best_seq = 0;
  for (const auto& [id, pt] : placements_) {
    if (!pt.task.soft() || !pred(pt)) continue;
    const std::uint32_t v = pt.task.value;
    const std::uint64_t seq = admit_seq_of_.at(id);
    if (best == kNoVictim || v < best_value ||
        (v == best_value && seq > best_seq)) {
      best = id;
      best_value = v;
      best_seq = seq;
    }
  }
  return best;
}

bool Controller::DegradeOne(const rt::Task* for_admit,
                            std::vector<LadderAction>& log) {
  obs::ScopedSpan span(obs::InstalledProfiler(),
                       obs::SpanStage::kLadderDegrade);
  const rt::TaskId id = PickVictim([&](const partition::PlacedTask& pt) {
    return pt.task.can_degrade() && !pt.split() &&
           degraded_full_.count(pt.task.id) == 0 &&
           VictimEligible(pt.task, for_admit);
  });
  if (id == kNoVictim) return false;

  partition::PlacedTask& pt = placements_.at(id);
  LadderAction a;
  a.kind = LadderAction::Kind::kDegrade;
  a.placed = pt;
  a.full_task = pt.task;
  a.admit_seq = admit_seq_of_.at(id);

  state_.Remove(id, pt.parts);
  rt::Task degraded = pt.task;
  degraded.wcet = pt.task.degraded_wcet;
  partition::PlacedTask dp;
  dp.task = degraded;
  dp.parts = pt.parts;
  dp.parts[0].budget = degraded.wcet;
  // Commit without an admission test: a smaller C on the very core that
  // admitted the larger C is monotonically safe.
  state_.CommitPlaced(dp);
  pt = std::move(dp);
  degraded_full_.emplace(id, a.full_task);
  log.push_back(std::move(a));
  return true;
}

bool Controller::ShedOne(const rt::Task* for_admit,
                         std::vector<LadderAction>& log) {
  obs::ScopedSpan span(obs::InstalledProfiler(), obs::SpanStage::kLadderShed);
  const rt::TaskId id = PickVictim([&](const partition::PlacedTask& pt) {
    return VictimEligible(pt.task, for_admit);
  });
  if (id == kNoVictim) return false;

  LadderAction a;
  a.kind = LadderAction::Kind::kShed;
  a.placed = placements_.at(id);
  a.admit_seq = admit_seq_of_.at(id);
  const auto df = degraded_full_.find(id);
  a.was_degraded = df != degraded_full_.end();
  // The shed record keeps the FULL task: a degraded victim is shed as a
  // whole and retried for re-admission at full service.
  a.full_task = a.was_degraded ? df->second : a.placed.task;

  state_.Remove(id, a.placed.parts);
  placements_.erase(id);
  degraded_full_.erase(id);
  admit_seq_of_.erase(id);
  log.push_back(std::move(a));
  return true;
}

void Controller::CommitLadder(std::vector<LadderAction>& log) {
  for (LadderAction& a : log) {
    if (a.kind == LadderAction::Kind::kDegrade) {
      ++overload_.degrades;
      continue;
    }
    ++overload_.sheds;
    const std::uint32_t b = std::max(1u, cfg_.overload.retry_backoff_min);
    shed_.push_back(ShedRecord{std::move(a.full_task), a.admit_seq, b, b});
  }
  log.clear();
}

void Controller::UndoLadder(std::vector<LadderAction>& log) {
  // Reverse order: each undo returns the state to one that existed (and
  // had passed admission) just before the action, so CommitPlaced needs
  // no re-test.
  for (auto it = log.rbegin(); it != log.rend(); ++it) {
    LadderAction& a = *it;
    const rt::TaskId id = a.placed.task.id;
    if (a.kind == LadderAction::Kind::kDegrade) {
      state_.Remove(id, placements_.at(id).parts);
      state_.CommitPlaced(a.placed);
      placements_[id] = std::move(a.placed);
      degraded_full_.erase(id);
    } else {
      state_.CommitPlaced(a.placed);
      if (a.was_degraded) degraded_full_.emplace(id, a.full_task);
      admit_seq_of_[id] = a.admit_seq;
      placements_.emplace(id, std::move(a.placed));
    }
  }
  log.clear();
}

bool Controller::InflatedSchedulable(double magnitude) const {
  partition::Partition p = CurrentPartition();
  std::vector<double> core_util(p.num_cores, 0.0);
  for (partition::PlacedTask& pt : p.tasks) {
    Time inflated_wcet = 0;
    for (partition::SubtaskPlacement& sp : pt.parts) {
      sp.budget = std::max<Time>(
          1, static_cast<Time>(magnitude * static_cast<double>(sp.budget)));
      inflated_wcet += sp.budget;
      core_util[sp.core] += static_cast<double>(sp.budget) /
                            static_cast<double>(pt.task.period);
    }
    pt.task.wcet = inflated_wcet;
  }
  // Screen before the full analysis: an over-unit core can never pass,
  // and skipping it keeps the analysis' busy-period fixpoints off
  // pathological inputs.
  for (const double u : core_util) {
    if (u > 1.0) return false;
  }
  return partition::AnalyzePartition(p, cfg_.admission.model).schedulable;
}

unsigned Controller::ReactToOverload(double spike_magnitude) {
  if (!cfg_.overload.ladder || placements_.empty()) return 0;
  unsigned actions = 0;
  while (!InflatedSchedulable(spike_magnitude)) {
    std::vector<LadderAction> log;
    if (!DegradeOne(nullptr, log) && !ShedOne(nullptr, log)) break;
    CommitLadder(log);  // epoch-path actions commit immediately
    ++actions;
  }
  return actions;
}

void Controller::AdvanceEpoch(bool overloaded) {
  ++epoch_;
  if (overloaded) return;  // freeze retries/restores during the storm

  // Shed re-admission retries, in shed order. A failed probe doubles the
  // record's backoff (capped); a successful one is a normal incremental
  // admission (new admission generation, new admit sequence).
  std::vector<ShedRecord> still;
  still.reserve(shed_.size());
  bool restored_any = false;
  for (ShedRecord& r : shed_) {
    if (r.retry_in > 1) {
      --r.retry_in;
      still.push_back(std::move(r));
      continue;
    }
    if (TryPlace(r.task).accepted) {
      ++overload_.shed_restores;
      restored_any = true;
      continue;
    }
    ++overload_.retry_attempts;
    r.backoff = std::min(std::max(1u, r.backoff) * 2,
                         std::max(1u, cfg_.overload.retry_backoff_max));
    r.retry_in = r.backoff;
    still.push_back(std::move(r));
  }
  shed_ = std::move(still);

  // Degraded-service restores: in place (same core — no migration
  // churn), ascending id order, each guarded by a real admission probe
  // with the degraded entry lifted.
  std::vector<rt::TaskId> ids;
  ids.reserve(degraded_full_.size());
  for (const auto& [id, full] : degraded_full_) {
    (void)full;
    if (placements_.count(id) != 0) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  for (const rt::TaskId id : ids) {
    partition::PlacedTask& pt = placements_.at(id);
    const rt::Task full = degraded_full_.at(id);
    const unsigned core[] = {pt.parts[0].core};
    state_.Remove(id, pt.parts);
    partition::EdfPlacement placed =
        state_.Place(full, core, /*allow_split=*/false);
    if (placed.placed) {
      pt.task = full;
      pt.parts = std::move(placed.parts);
      degraded_full_.erase(id);
      ++overload_.degrade_restores;
      restored_any = true;
    } else {
      state_.CommitPlaced(pt);  // keep degraded: exact re-commit
    }
  }

  // Restore-time consolidation: a shed-retry re-admission may have come
  // back SPLIT (TryPlace probes the split search); the same multi-task
  // unsplit pass a LEAVE runs cleans that up once capacity allows —
  // recovery-time re-admission and normal leaves share one code path.
  if (restored_any && cfg_.unsplit_on_leave &&
      cfg_.admission.policy == partition::SchedPolicy::kEdf) {
    ConsolidateSplits();
  }
}

partition::Partition Controller::CurrentPartition() const {
  partition::Partition p;
  p.num_cores = cfg_.admission.num_cores;
  p.policy = cfg_.admission.policy;
  p.tasks.reserve(placements_.size());
  for (const auto& [id, pt] : placements_) p.tasks.push_back(pt);
  std::sort(p.tasks.begin(), p.tasks.end(),
            [](const partition::PlacedTask& a,
               const partition::PlacedTask& b) {
              return a.task.id < b.task.id;
            });
  return p;
}

std::vector<std::uint32_t> Controller::ExecGenerations() const {
  std::vector<rt::TaskId> ids;
  ids.reserve(placements_.size());
  for (const auto& [id, pt] : placements_) {
    (void)pt;
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  std::vector<std::uint32_t> gens;
  gens.reserve(ids.size());
  for (const rt::TaskId id : ids) {
    const auto it = generation_of_.find(id);
    gens.push_back(it == generation_of_.end() ? 0u : it->second);
  }
  return gens;
}

unsigned Controller::ConsolidateSplits() {
  // Deterministic multi-task pass: scan resident split tasks in
  // ascending id order and consolidate EVERY one that now fits whole
  // somewhere, repeating until a full pass makes no progress — one
  // consolidation frees its window reservations, which can be exactly
  // the capacity the next split task needs.
  unsigned total = 0;
  bool progress = true;
  while (progress) {
    progress = false;
    std::vector<rt::TaskId> split_ids;
    for (const auto& [id, pt] : placements_) {
      if (pt.split()) split_ids.push_back(id);
    }
    std::sort(split_ids.begin(), split_ids.end());

    for (const rt::TaskId id : split_ids) {
      partition::PlacedTask& pt = placements_.at(id);
      // Probe: would the whole task fit on some core once its own window
      // reservations are lifted? Lift exactly the task's entries (and
      // the core order is ranked with them lifted — what the policy
      // should see), place, and restore on failure: O(task entries), no
      // state copies.
      const std::vector<AdmissionState::TakenEntry> taken =
          state_.TakeEdf(id, pt.parts);
      const std::vector<unsigned> order = CoreOrder(state_);
      partition::EdfPlacement whole =
          state_.Place(pt.task, order, /*allow_split=*/false);
      if (!whole.placed) {
        state_.RestoreEdf(taken);
        continue;
      }
      pt.parts = std::move(whole.parts);
      ++churn_.unsplit;
      ++total;
      progress = true;
    }
  }
  return total;
}

ControllerSnapshot Controller::ExportState() const {
  ControllerSnapshot s;
  s.placements.reserve(placements_.size());
  for (const auto& [id, pt] : placements_) {
    (void)id;
    s.placements.push_back(pt);
  }
  std::sort(s.placements.begin(), s.placements.end(),
            [](const partition::PlacedTask& a,
               const partition::PlacedTask& b) {
              return a.task.id < b.task.id;
            });
  s.degraded_full.assign(degraded_full_.begin(), degraded_full_.end());
  s.admit_seq_of.assign(admit_seq_of_.begin(), admit_seq_of_.end());
  s.generation_of.assign(generation_of_.begin(), generation_of_.end());
  const auto by_id = [](const auto& a, const auto& b) {
    return a.first < b.first;
  };
  std::sort(s.degraded_full.begin(), s.degraded_full.end(), by_id);
  std::sort(s.admit_seq_of.begin(), s.admit_seq_of.end(), by_id);
  std::sort(s.generation_of.begin(), s.generation_of.end(), by_id);
  s.shed.reserve(shed_.size());
  for (const ShedRecord& r : shed_) {
    s.shed.push_back(ControllerSnapshot::ShedEntry{r.task, r.admit_seq,
                                                   r.retry_in, r.backoff});
  }
  s.churn = churn_;
  s.overload = overload_;
  s.admit_seq = admit_seq_;
  s.epoch = epoch_;
  s.last_fallback_epoch = last_fallback_epoch_;
  s.last_fallback_util = last_fallback_util_;
  s.any_fallback = any_fallback_;
  s.admission = state_.ExportState();
  return s;
}

bool Controller::ImportState(ControllerSnapshot snap) {
  if (!state_.ImportState(std::move(snap.admission))) return false;
  placements_.clear();
  for (partition::PlacedTask& pt : snap.placements) {
    const rt::TaskId id = pt.task.id;
    placements_.emplace(id, std::move(pt));
  }
  degraded_full_.clear();
  degraded_full_.insert(snap.degraded_full.begin(),
                        snap.degraded_full.end());
  admit_seq_of_.clear();
  admit_seq_of_.insert(snap.admit_seq_of.begin(), snap.admit_seq_of.end());
  generation_of_.clear();
  generation_of_.insert(snap.generation_of.begin(),
                        snap.generation_of.end());
  shed_.clear();
  shed_.reserve(snap.shed.size());
  for (ControllerSnapshot::ShedEntry& e : snap.shed) {
    shed_.push_back(ShedRecord{std::move(e.task), e.admit_seq, e.retry_in,
                               e.backoff});
  }
  churn_ = snap.churn;
  overload_ = snap.overload;
  admit_seq_ = snap.admit_seq;
  epoch_ = snap.epoch;
  last_fallback_epoch_ = snap.last_fallback_epoch;
  last_fallback_util_ = snap.last_fallback_util;
  any_fallback_ = snap.any_fallback;
  return true;
}

// ---- epoch replay ----------------------------------------------------------

const SpikeEpoch* FaultPlan::SpikeAt(Time start, Time end) const {
  for (const SpikeEpoch& s : spikes) {
    if (s.start < end && start < s.end) return &s;
  }
  return nullptr;
}

const BurstStorm* FaultPlan::StormAt(Time start, Time end) const {
  for (const BurstStorm& s : storms) {
    if (s.start < end && start < s.end) return &s;
  }
  return nullptr;
}

// ReplayStream / ReplayBatch live in durability.cpp: the epoch-replay
// loop is the surface the checkpoint/journal engine hooks into (the
// plain and durable paths share ONE loop, so they cannot drift).

std::string ReplayResult::Table() const {
  std::string out =
      "epoch      [ms, ms)   admit reject leave resident   util"
      "   moved split unsplit  shed degr flt  sim-miss hard\n";
  char buf[200];
  for (std::size_t i = 0; i < epochs.size(); ++i) {
    const EpochStats& e = epochs[i];
    const std::string miss =
        e.validated ? std::to_string(e.sim_misses) : std::string("-");
    const std::string hard =
        e.validated ? std::to_string(e.hard_misses) : std::string("-");
    std::snprintf(buf, sizeof(buf),
                  "%5zu %7.0f %7.0f %7u %6u %5u %8zu %6.3f %7llu %5llu"
                  " %7llu %5zu %4zu %3s %9s %4s\n",
                  i, ToMillis(e.start), ToMillis(e.end), e.admits,
                  e.rejects, e.leaves, e.resident, e.utilization,
                  static_cast<unsigned long long>(e.churn.moved),
                  static_cast<unsigned long long>(e.churn.split),
                  static_cast<unsigned long long>(e.churn.unsplit),
                  e.shed_resident, e.degraded_resident,
                  e.fault_active ? "*" : "-", miss.c_str(), hard.c_str());
    out += buf;
  }
  return out;
}

void FillStatsRegistry(obs::StatsRegistry& reg, const ReplayResult& r) {
  reg.SetCounter("admit.accepted", r.admits);
  reg.SetCounter("admit.rejected", r.rejects);
  reg.SetCounter("admit.leaves", r.leaves);
  reg.SetCounter("admit.util_rejects", r.admission.util_rejects);
  reg.SetCounter("admit.density_accepts", r.admission.density_accepts);
  reg.SetCounter("admit.full_tests", r.admission.full_tests);
  reg.SetCounter("memo.hits", r.admission.memo_hits);
  reg.SetCounter("memo.misses", r.admission.memo_misses);
  reg.SetCounter("memo.evicts", r.admission.memo_evicts);
  reg.SetCounter("churn.moved", r.churn.moved);
  reg.SetCounter("churn.split", r.churn.split);
  reg.SetCounter("churn.unsplit", r.churn.unsplit);
  reg.SetCounter("churn.repartitions", r.churn.repartitions);
  reg.SetCounter("overload.degrades", r.overload.degrades);
  reg.SetCounter("overload.degrade_restores", r.overload.degrade_restores);
  reg.SetCounter("overload.sheds", r.overload.sheds);
  reg.SetCounter("overload.shed_restores", r.overload.shed_restores);
  reg.SetCounter("overload.retry_attempts", r.overload.retry_attempts);
  reg.SetCounter("overload.hysteresis_blocks", r.overload.hysteresis_blocks);
  reg.SetCounter("epochs.closed", r.epochs.size());
  reg.SetGauge("overload.shed_outstanding",
               static_cast<double>(r.shed_outstanding));
  if (!r.epochs.empty()) {
    const EpochStats& last = r.epochs.back();
    reg.SetGauge("resident.count", static_cast<double>(last.resident));
    reg.SetGauge("resident.utilization", last.utilization);
    reg.SetGauge("resident.degraded",
                 static_cast<double>(last.degraded_resident));
  }
  reg.SetCounter("recovery.attempted", r.recovery.attempted ? 1 : 0);
  reg.SetCounter("recovery.recovered", r.recovery.recovered ? 1 : 0);
  reg.SetCounter("recovery.journal_records", r.recovery.journal_records);
  reg.SetCounter("recovery.journal_truncated_bytes",
                 r.recovery.journal_truncated_bytes);
  reg.SetCounter("recovery.checkpoints_skipped",
                 r.recovery.checkpoints_skipped);
  reg.SetCounter("recovery.resume_seq", r.recovery.resume_seq);
}

}  // namespace sps::online
