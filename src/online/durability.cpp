#include "online/durability.hpp"

#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <unordered_map>

#include "analysis/memo.hpp"
#include "obs/reqtrace.hpp"
#include "obs/spans.hpp"
#include "online/controller.hpp"
#include "sim/batch.hpp"
#include "util/crc32.hpp"
#include "util/file_io.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace sps::online {

const char* ToString(FsyncPolicy p) {
  switch (p) {
    case FsyncPolicy::kOff: return "off";
    case FsyncPolicy::kEveryN: return "every-n";
    case FsyncPolicy::kEveryEpoch: return "every-epoch";
  }
  return "?";
}

bool ParseFsyncPolicy(const char* s, FsyncPolicy& policy,
                      std::uint32_t& every_n) {
  if (std::strcmp(s, "off") == 0) {
    policy = FsyncPolicy::kOff;
    return true;
  }
  if (std::strcmp(s, "every-epoch") == 0) {
    policy = FsyncPolicy::kEveryEpoch;
    return true;
  }
  if (std::strcmp(s, "every-n") == 0) {
    policy = FsyncPolicy::kEveryN;
    return true;
  }
  if (std::strncmp(s, "every-n:", 8) == 0) {
    char* end = nullptr;
    const unsigned long n = std::strtoul(s + 8, &end, 10);
    if (end == s + 8 || *end != '\0' || n == 0) return false;
    policy = FsyncPolicy::kEveryN;
    every_n = static_cast<std::uint32_t>(n);
    return true;
  }
  return false;
}

const char* ToString(DurabilityError::Kind k) {
  switch (k) {
    case DurabilityError::Kind::kNone: return "none";
    case DurabilityError::Kind::kIo: return "io";
    case DurabilityError::Kind::kBadMagic: return "bad-magic";
    case DurabilityError::Kind::kBadVersion: return "bad-version";
    case DurabilityError::Kind::kCrcMismatch: return "crc-mismatch";
    case DurabilityError::Kind::kTruncated: return "truncated";
    case DurabilityError::Kind::kParse: return "parse";
    case DurabilityError::Kind::kFingerprintMismatch:
      return "fingerprint-mismatch";
    case DurabilityError::Kind::kJournalDivergence:
      return "journal-divergence";
    case DurabilityError::Kind::kStateMismatch: return "state-mismatch";
  }
  return "?";
}

namespace {

namespace fs = std::filesystem;

// ---- binary framing --------------------------------------------------------
// Explicit little-endian byte encoding (no memcpy of structs): the
// artifacts are a FORMAT, stable across compilers/ABIs, and every decode
// is bounds-checked — a malicious or bit-flipped file can fail parsing
// but never read out of bounds.

constexpr char kCheckpointMagic[8] = {'S', 'P', 'S', 'C', 'K', 'P',
                                      'T', '\x01'};
constexpr char kJournalMagic[8] = {'S', 'P', 'S', 'J', 'R', 'N',
                                   'L', '\x01'};
constexpr std::size_t kJournalHeaderSize = 8 + 8 + 4;
constexpr std::uint32_t kMaxRecordLen = 1024;

struct ByteWriter {
  std::string buf;

  void U8(std::uint8_t v) { buf.push_back(static_cast<char>(v)); }
  void U32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buf.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
    }
  }
  void U64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      buf.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
    }
  }
  void I64(std::int64_t v) { U64(static_cast<std::uint64_t>(v)); }
  void F64(double v) { U64(std::bit_cast<std::uint64_t>(v)); }
};

struct ByteReader {
  const unsigned char* p = nullptr;
  std::size_t n = 0;
  std::size_t pos = 0;
  bool ok = true;

  explicit ByteReader(std::string_view s)
      : p(reinterpret_cast<const unsigned char*>(s.data())), n(s.size()) {}

  [[nodiscard]] std::size_t remaining() const { return n - pos; }

  std::uint8_t U8() {
    if (pos + 1 > n) {
      ok = false;
      return 0;
    }
    return p[pos++];
  }
  std::uint32_t U32() {
    if (pos + 4 > n) {
      ok = false;
      return 0;
    }
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(p[pos + i]) << (8 * i);
    }
    pos += 4;
    return v;
  }
  std::uint64_t U64() {
    if (pos + 8 > n) {
      ok = false;
      return 0;
    }
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(p[pos + i]) << (8 * i);
    }
    pos += 8;
    return v;
  }
  std::int64_t I64() { return static_cast<std::int64_t>(U64()); }
  double F64() { return std::bit_cast<double>(U64()); }

  /// A claimed element count is plausible only if `count * min_size`
  /// bytes can still be present — the huge-bogus-count guard.
  [[nodiscard]] bool PlausibleCount(std::uint64_t count,
                                    std::size_t min_size) {
    if (count > remaining() / (min_size == 0 ? 1 : min_size)) {
      ok = false;
      return false;
    }
    return true;
  }
};

void EncodeTask(ByteWriter& w, const rt::Task& t) {
  w.U32(t.id);
  w.I64(t.wcet);
  w.I64(t.period);
  w.I64(t.deadline);
  w.U32(t.priority);
  w.U8(static_cast<std::uint8_t>(t.crit));
  w.I64(t.tardiness_bound);
  w.I64(t.degraded_wcet);
  w.U32(t.value);
}

rt::Task DecodeTask(ByteReader& r) {
  rt::Task t;
  t.id = r.U32();
  t.wcet = r.I64();
  t.period = r.I64();
  t.deadline = r.I64();
  t.priority = r.U32();
  t.crit = r.U8() == 1 ? rt::Criticality::kSoft : rt::Criticality::kHard;
  t.tardiness_bound = r.I64();
  t.degraded_wcet = r.I64();
  t.value = r.U32();
  return t;
}

void EncodeChurn(ByteWriter& w, const ChurnStats& c) {
  w.U64(c.moved);
  w.U64(c.split);
  w.U64(c.unsplit);
  w.U64(c.repartitions);
}

ChurnStats DecodeChurn(ByteReader& r) {
  ChurnStats c;
  c.moved = r.U64();
  c.split = r.U64();
  c.unsplit = r.U64();
  c.repartitions = r.U64();
  return c;
}

void EncodeOverload(ByteWriter& w, const OverloadStats& o) {
  w.U64(o.degrades);
  w.U64(o.degrade_restores);
  w.U64(o.sheds);
  w.U64(o.shed_restores);
  w.U64(o.retry_attempts);
  w.U64(o.hysteresis_blocks);
}

OverloadStats DecodeOverload(ByteReader& r) {
  OverloadStats o;
  o.degrades = r.U64();
  o.degrade_restores = r.U64();
  o.sheds = r.U64();
  o.shed_restores = r.U64();
  o.retry_attempts = r.U64();
  o.hysteresis_blocks = r.U64();
  return o;
}

void EncodeAdmitStats(ByteWriter& w, const partition::AdmitStats& s) {
  w.U64(s.util_rejects);
  w.U64(s.density_accepts);
  w.U64(s.full_tests);
  w.U64(s.memo_hits);
  w.U64(s.memo_misses);
  w.U64(s.memo_evicts);
}

partition::AdmitStats DecodeAdmitStats(ByteReader& r) {
  partition::AdmitStats s;
  s.util_rejects = r.U64();
  s.density_accepts = r.U64();
  s.full_tests = r.U64();
  s.memo_hits = r.U64();
  s.memo_misses = r.U64();
  s.memo_evicts = r.U64();
  return s;
}

// ---- fingerprint -----------------------------------------------------------
// A 64-bit digest of (replay-relevant config, stream content). Artifacts
// carry it so recovery against the WRONG stream or config is a typed
// error instead of a journal-divergence surprise mid-redo.

std::uint64_t Mix(std::uint64_t h, std::uint64_t v) {
  return util::DeriveSeed(h, v, 0xD47A);
}

std::uint64_t MixF(std::uint64_t h, double v) {
  return Mix(h, std::bit_cast<std::uint64_t>(v));
}

std::uint64_t Fingerprint(const WorkloadStream& s, const ReplayConfig& cfg) {
  std::uint64_t h = 0x5350531Eull;  // "SPS" + format nonce
  const ControllerConfig& cc = cfg.controller;
  h = Mix(h, cc.admission.num_cores);
  h = Mix(h, static_cast<std::uint64_t>(cc.admission.policy));
  h = Mix(h, static_cast<std::uint64_t>(cc.admission.budget_granularity));
  h = Mix(h, static_cast<std::uint64_t>(cc.admission.min_budget));
  h = Mix(h, static_cast<std::uint64_t>(cc.admission.fp_admission));
  h = Mix(h, static_cast<std::uint64_t>(cc.place));
  h = Mix(h, (cc.allow_split ? 1u : 0u) | (cc.repartition_fallback ? 2u : 0u) |
                 (cc.unsplit_on_leave ? 4u : 0u) |
                 (cc.overload.ladder ? 8u : 0u) |
                 (cc.overload.hysteresis ? 16u : 0u) |
                 (cfg.validate_by_simulation ? 32u : 0u));
  h = Mix(h, cc.overload.cooldown_epochs);
  h = MixF(h, cc.overload.util_band);
  h = Mix(h, cc.overload.retry_backoff_min);
  h = Mix(h, cc.overload.retry_backoff_max);
  h = MixF(h, cc.overload.spike_magnitude);
  h = Mix(h, static_cast<std::uint64_t>(cfg.epoch));
  h = Mix(h, cfg.seed);
  h = Mix(h, cfg.drain_epochs);
  for (const SpikeEpoch& sp : cfg.faults.spikes) {
    h = Mix(h, static_cast<std::uint64_t>(sp.start));
    h = Mix(h, static_cast<std::uint64_t>(sp.end));
    h = MixF(h, sp.prob);
    h = MixF(h, sp.magnitude);
  }
  for (const BurstStorm& st : cfg.faults.storms) {
    h = Mix(h, static_cast<std::uint64_t>(st.start));
    h = Mix(h, static_cast<std::uint64_t>(st.end));
    h = MixF(h, st.burst_prob);
  }
  // Stream content: CRC32 over the canonical request encoding (cheap,
  // and any edit to any request perturbs it).
  ByteWriter w;
  for (const Request& r : s.requests()) {
    w.I64(r.at);
    w.U8(static_cast<std::uint8_t>(r.kind));
    w.U32(r.id);
    if (r.kind == RequestKind::kAdmit) EncodeTask(w, r.task);
  }
  h = Mix(h, s.size());
  h = Mix(h, util::Crc32Of(w.buf));
  return h;
}

// ---- checkpoint ------------------------------------------------------------

/// Everything a checkpoint restores: the replay cursor, the accumulated
/// result prefix, and the controller snapshot.
struct CheckpointState {
  std::uint64_t next_request = 0;
  Time epoch_start = 0;
  std::uint64_t epoch_index = 0;
  ChurnStats churn_before;
  OverloadStats overload_before;
  std::uint64_t admits = 0;
  std::uint64_t rejects = 0;
  std::uint64_t leaves = 0;
  std::vector<EpochStats> epochs;
  ControllerSnapshot ctrl;
};

void EncodeEpochStats(ByteWriter& w, const EpochStats& e) {
  w.I64(e.start);
  w.I64(e.end);
  w.U32(e.admits);
  w.U32(e.rejects);
  w.U32(e.leaves);
  EncodeChurn(w, e.churn);
  EncodeOverload(w, e.overload);
  w.U64(e.resident);
  w.U64(e.shed_resident);
  w.U64(e.degraded_resident);
  w.F64(e.utilization);
  w.U8(e.validated ? 1 : 0);
  w.U8(e.fault_active ? 1 : 0);
  w.U64(e.sim_misses);
  w.U64(e.hard_misses);
}

EpochStats DecodeEpochStats(ByteReader& r) {
  EpochStats e;
  e.start = r.I64();
  e.end = r.I64();
  e.admits = r.U32();
  e.rejects = r.U32();
  e.leaves = r.U32();
  e.churn = DecodeChurn(r);
  e.overload = DecodeOverload(r);
  e.resident = r.U64();
  e.shed_resident = r.U64();
  e.degraded_resident = r.U64();
  e.utilization = r.F64();
  e.validated = r.U8() != 0;
  e.fault_active = r.U8() != 0;
  e.sim_misses = r.U64();
  e.hard_misses = r.U64();
  return e;
}

void EncodePlacedTask(ByteWriter& w, const partition::PlacedTask& pt) {
  EncodeTask(w, pt.task);
  w.U32(static_cast<std::uint32_t>(pt.parts.size()));
  for (const partition::SubtaskPlacement& sp : pt.parts) {
    w.U32(sp.core);
    w.I64(sp.budget);
    w.U32(sp.local_priority);
    w.I64(sp.rel_deadline);
  }
}

partition::PlacedTask DecodePlacedTask(ByteReader& r) {
  partition::PlacedTask pt;
  pt.task = DecodeTask(r);
  const std::uint32_t nparts = r.U32();
  if (!r.PlausibleCount(nparts, 24)) return pt;
  pt.parts.reserve(nparts);
  for (std::uint32_t k = 0; k < nparts && r.ok; ++k) {
    partition::SubtaskPlacement sp;
    sp.core = r.U32();
    sp.budget = r.I64();
    sp.local_priority = r.U32();
    sp.rel_deadline = r.I64();
    pt.parts.push_back(sp);
  }
  return pt;
}

std::string EncodeCheckpoint(const CheckpointState& st,
                             std::uint64_t fingerprint) {
  ByteWriter w;
  w.U64(st.next_request);
  w.I64(st.epoch_start);
  w.U64(st.epoch_index);
  EncodeChurn(w, st.churn_before);
  EncodeOverload(w, st.overload_before);
  w.U64(st.admits);
  w.U64(st.rejects);
  w.U64(st.leaves);
  w.U64(st.epochs.size());
  for (const EpochStats& e : st.epochs) EncodeEpochStats(w, e);

  const ControllerSnapshot& c = st.ctrl;
  w.U64(c.placements.size());
  for (const partition::PlacedTask& pt : c.placements) {
    EncodePlacedTask(w, pt);
  }
  w.U64(c.degraded_full.size());
  for (const auto& [id, t] : c.degraded_full) {
    w.U32(id);
    EncodeTask(w, t);
  }
  w.U64(c.admit_seq_of.size());
  for (const auto& [id, seq] : c.admit_seq_of) {
    w.U32(id);
    w.U64(seq);
  }
  w.U64(c.generation_of.size());
  for (const auto& [id, gen] : c.generation_of) {
    w.U32(id);
    w.U32(gen);
  }
  w.U64(c.shed.size());
  for (const ControllerSnapshot::ShedEntry& e : c.shed) {
    EncodeTask(w, e.task);
    w.U64(e.admit_seq);
    w.U32(e.retry_in);
    w.U32(e.backoff);
  }
  EncodeChurn(w, c.churn);
  EncodeOverload(w, c.overload);
  w.U64(c.admit_seq);
  w.U64(c.epoch);
  w.U64(c.last_fallback_epoch);
  w.F64(c.last_fallback_util);
  w.U8(c.any_fallback ? 1 : 0);

  const AdmissionSnapshot& a = c.admission;
  const bool edf = !a.edf_cores.empty() || a.fp_cores.empty();
  w.U8(edf ? 0 : 1);
  if (edf) {
    w.U64(a.edf_cores.size());
    for (const partition::EdfCoreState& core : a.edf_cores) {
      w.U64(core.entries.size());
      for (const analysis::EdfCoreEntry& e : core.entries) {
        w.I64(e.exec);
        w.I64(e.period);
        w.I64(e.deadline);
        w.I64(e.jitter);
        w.I64(e.kind);
        w.U64(e.dest_queue_size);
        w.U64(e.first_core_queue_size);
        w.U32(e.id);
      }
      w.F64(core.utilization);
      w.U64(core.zobrist.lo);
      w.U64(core.zobrist.hi);
    }
  } else {
    w.U64(a.fp_cores.size());
    for (const partition::FpCoreState& core : a.fp_cores) {
      w.U64(core.tasks.size());
      for (const rt::Task& t : core.tasks) EncodeTask(w, t);
      w.F64(core.utilization);
      w.U64(core.zobrist.lo);
      w.U64(core.zobrist.hi);
    }
  }
  EncodeAdmitStats(w, a.stats);

  // Frame: magic, fingerprint, payload length, payload, CRC over all of
  // the preceding bytes.
  std::string out(kCheckpointMagic, sizeof(kCheckpointMagic));
  ByteWriter hdr;
  hdr.U64(fingerprint);
  hdr.U64(w.buf.size());
  out += hdr.buf;
  out += w.buf;
  ByteWriter crc;
  crc.U32(util::Crc32Of(out));
  out += crc.buf;
  return out;
}

bool DecodeCheckpoint(std::string_view bytes, const std::string& path,
                      std::uint64_t expect_fingerprint, CheckpointState& st,
                      DurabilityError& err) {
  const auto fail = [&](DurabilityError::Kind kind, std::uint64_t offset,
                        const std::string& detail) {
    err.kind = kind;
    err.path = path;
    err.offset = offset;
    err.message = path + ": " + detail;
    return false;
  };
  if (bytes.size() < sizeof(kCheckpointMagic) + 16 + 4) {
    return fail(DurabilityError::Kind::kTruncated, bytes.size(),
                "checkpoint shorter than its frame");
  }
  if (std::memcmp(bytes.data(), kCheckpointMagic, 7) != 0) {
    return fail(DurabilityError::Kind::kBadMagic, 0,
                "not a checkpoint file (bad magic)");
  }
  if (bytes[7] != kCheckpointMagic[7]) {
    return fail(DurabilityError::Kind::kBadVersion, 7,
                "unknown checkpoint format version");
  }
  ByteReader tail(bytes.substr(bytes.size() - 4));
  const std::uint32_t file_crc = tail.U32();
  const std::uint32_t computed =
      util::Crc32Of(bytes.substr(0, bytes.size() - 4));
  if (file_crc != computed) {
    return fail(DurabilityError::Kind::kCrcMismatch, bytes.size() - 4,
                "checkpoint CRC mismatch (corrupt)");
  }
  ByteReader r(bytes.substr(sizeof(kCheckpointMagic), bytes.size() - 12));
  const std::uint64_t fp = r.U64();
  if (fp != expect_fingerprint) {
    return fail(DurabilityError::Kind::kFingerprintMismatch, 8,
                "checkpoint was written for a different stream/config");
  }
  const std::uint64_t payload_len = r.U64();
  if (payload_len != r.remaining()) {
    return fail(DurabilityError::Kind::kTruncated, 16,
                "checkpoint payload length does not match the file");
  }

  st.next_request = r.U64();
  st.epoch_start = r.I64();
  st.epoch_index = r.U64();
  st.churn_before = DecodeChurn(r);
  st.overload_before = DecodeOverload(r);
  st.admits = r.U64();
  st.rejects = r.U64();
  st.leaves = r.U64();
  const std::uint64_t n_epochs = r.U64();
  if (!r.PlausibleCount(n_epochs, 100)) {
    return fail(DurabilityError::Kind::kParse, r.pos,
                "implausible epoch count");
  }
  st.epochs.reserve(n_epochs);
  for (std::uint64_t i = 0; i < n_epochs && r.ok; ++i) {
    st.epochs.push_back(DecodeEpochStats(r));
  }

  ControllerSnapshot& c = st.ctrl;
  const std::uint64_t n_pl = r.U64();
  if (!r.PlausibleCount(n_pl, 41 + 4)) {
    return fail(DurabilityError::Kind::kParse, r.pos,
                "implausible placement count");
  }
  c.placements.reserve(n_pl);
  for (std::uint64_t i = 0; i < n_pl && r.ok; ++i) {
    c.placements.push_back(DecodePlacedTask(r));
  }
  const std::uint64_t n_df = r.U64();
  if (!r.PlausibleCount(n_df, 45)) {
    return fail(DurabilityError::Kind::kParse, r.pos,
                "implausible degraded count");
  }
  for (std::uint64_t i = 0; i < n_df && r.ok; ++i) {
    const rt::TaskId id = r.U32();
    c.degraded_full.emplace_back(id, DecodeTask(r));
  }
  const std::uint64_t n_as = r.U64();
  if (!r.PlausibleCount(n_as, 12)) {
    return fail(DurabilityError::Kind::kParse, r.pos,
                "implausible admit-seq count");
  }
  for (std::uint64_t i = 0; i < n_as && r.ok; ++i) {
    const rt::TaskId id = r.U32();
    const std::uint64_t seq = r.U64();
    c.admit_seq_of.emplace_back(id, seq);
  }
  const std::uint64_t n_gen = r.U64();
  if (!r.PlausibleCount(n_gen, 8)) {
    return fail(DurabilityError::Kind::kParse, r.pos,
                "implausible generation count");
  }
  for (std::uint64_t i = 0; i < n_gen && r.ok; ++i) {
    const rt::TaskId id = r.U32();
    const std::uint32_t gen = r.U32();
    c.generation_of.emplace_back(id, gen);
  }
  const std::uint64_t n_shed = r.U64();
  if (!r.PlausibleCount(n_shed, 57)) {
    return fail(DurabilityError::Kind::kParse, r.pos,
                "implausible shed count");
  }
  for (std::uint64_t i = 0; i < n_shed && r.ok; ++i) {
    ControllerSnapshot::ShedEntry e;
    e.task = DecodeTask(r);
    e.admit_seq = r.U64();
    e.retry_in = r.U32();
    e.backoff = r.U32();
    c.shed.push_back(std::move(e));
  }
  c.churn = DecodeChurn(r);
  c.overload = DecodeOverload(r);
  c.admit_seq = r.U64();
  c.epoch = r.U64();
  c.last_fallback_epoch = r.U64();
  c.last_fallback_util = r.F64();
  c.any_fallback = r.U8() != 0;

  AdmissionSnapshot& a = c.admission;
  const bool edf = r.U8() == 0;
  const std::uint64_t n_cores = r.U64();
  if (!r.PlausibleCount(n_cores, 24)) {
    return fail(DurabilityError::Kind::kParse, r.pos,
                "implausible core count");
  }
  for (std::uint64_t ci = 0; ci < n_cores && r.ok; ++ci) {
    if (edf) {
      partition::EdfCoreState core;
      const std::uint64_t n_e = r.U64();
      if (!r.PlausibleCount(n_e, 56)) {
        return fail(DurabilityError::Kind::kParse, r.pos,
                    "implausible entry count");
      }
      core.entries.reserve(n_e);
      for (std::uint64_t k = 0; k < n_e && r.ok; ++k) {
        analysis::EdfCoreEntry e;
        e.exec = r.I64();
        e.period = r.I64();
        e.deadline = r.I64();
        e.jitter = r.I64();
        e.kind = static_cast<int>(r.I64());
        e.dest_queue_size = r.U64();
        e.first_core_queue_size = r.U64();
        e.id = r.U32();
        core.entries.push_back(e);
      }
      core.utilization = r.F64();
      core.zobrist.lo = r.U64();
      core.zobrist.hi = r.U64();
      a.edf_cores.push_back(std::move(core));
    } else {
      partition::FpCoreState core;
      const std::uint64_t n_t = r.U64();
      if (!r.PlausibleCount(n_t, 45)) {
        return fail(DurabilityError::Kind::kParse, r.pos,
                    "implausible task count");
      }
      core.tasks.reserve(n_t);
      for (std::uint64_t k = 0; k < n_t && r.ok; ++k) {
        core.tasks.push_back(DecodeTask(r));
      }
      core.utilization = r.F64();
      core.zobrist.lo = r.U64();
      core.zobrist.hi = r.U64();
      a.fp_cores.push_back(std::move(core));
    }
  }
  a.stats = DecodeAdmitStats(r);
  if (!r.ok || r.remaining() != 0) {
    return fail(DurabilityError::Kind::kParse, r.pos,
                "checkpoint payload undecodable");
  }

  // Integrity cross-check beyond the CRC: the per-core Zobrist hashes
  // must re-derive from the entries they claim to cover (order-free XOR,
  // so this catches mixed-up sections that still CRC fine), and the
  // placement parts must account for exactly the per-core entry counts.
  std::vector<std::size_t> parts_on(n_cores, 0);
  for (const partition::PlacedTask& pt : c.placements) {
    for (const partition::SubtaskPlacement& sp : pt.parts) {
      if (sp.core >= n_cores) {
        return fail(DurabilityError::Kind::kStateMismatch, 0,
                    "placement names a core outside the configuration");
      }
      ++parts_on[sp.core];
    }
  }
  for (std::uint64_t ci = 0; ci < n_cores; ++ci) {
    if (edf) {
      const partition::EdfCoreState& core = a.edf_cores[ci];
      if (analysis::ZobristOfEdfEntries(core.entries) != core.zobrist) {
        return fail(DurabilityError::Kind::kStateMismatch, 0,
                    "core zobrist does not match its entries");
      }
      if (core.entries.size() != parts_on[ci]) {
        return fail(DurabilityError::Kind::kStateMismatch, 0,
                    "per-core entries disagree with placements");
      }
    } else {
      const partition::FpCoreState& core = a.fp_cores[ci];
      if (analysis::ZobristOfFpTasks(core.tasks) != core.zobrist) {
        return fail(DurabilityError::Kind::kStateMismatch, 0,
                    "core zobrist does not match its tasks");
      }
      if (core.tasks.size() != parts_on[ci]) {
        return fail(DurabilityError::Kind::kStateMismatch, 0,
                    "per-core tasks disagree with placements");
      }
    }
  }
  return true;
}

// ---- journal ---------------------------------------------------------------

/// One applied request's journaled decision: what redo must reproduce.
struct JournalRecord {
  std::uint64_t seq = 0;  ///< request index in the stream
  std::uint8_t kind = 0;  ///< RequestKind
  std::uint8_t flags = 0; ///< bit0 accepted/left, bit1 fallback, bit2 ladder
  std::uint32_t parts = 0;
  std::uint32_t id = 0;
  ChurnStats churn_delta;
  OverloadStats overload_delta;

  friend bool operator==(const JournalRecord&, const JournalRecord&) =
      default;
};

std::string EncodeRecord(const JournalRecord& rec) {
  ByteWriter p;
  p.U64(rec.seq);
  p.U8(rec.kind);
  p.U8(rec.flags);
  p.U32(rec.parts);
  p.U32(rec.id);
  EncodeChurn(p, rec.churn_delta);
  EncodeOverload(p, rec.overload_delta);
  ByteWriter f;
  f.U32(static_cast<std::uint32_t>(p.buf.size()));
  f.buf += p.buf;
  f.U32(util::Crc32Of(p.buf));
  return f.buf;
}

bool DecodeRecordPayload(std::string_view payload, JournalRecord& rec) {
  ByteReader r(payload);
  rec.seq = r.U64();
  rec.kind = r.U8();
  rec.flags = r.U8();
  rec.parts = r.U32();
  rec.id = r.U32();
  rec.churn_delta = DecodeChurn(r);
  rec.overload_delta = DecodeOverload(r);
  return r.ok && r.remaining() == 0;
}

std::string JournalHeader(std::uint64_t fingerprint) {
  std::string out(kJournalMagic, sizeof(kJournalMagic));
  ByteWriter w;
  w.U64(fingerprint);
  out += w.buf;
  ByteWriter crc;
  crc.U32(util::Crc32Of(out));
  out += crc.buf;
  return out;
}

/// Scan `bytes`: header check, then records until the first invalid
/// frame. Reports records + valid prefix; fills `records` when non-null.
bool ScanJournalBytes(std::string_view bytes, const std::string& path,
                      JournalScan& out,
                      std::vector<JournalRecord>* records,
                      std::uint64_t* fingerprint, DurabilityError* error) {
  const auto fail = [&](DurabilityError::Kind kind, std::uint64_t offset,
                        const std::string& detail) {
    if (error != nullptr) {
      error->kind = kind;
      error->path = path;
      error->offset = offset;
      error->message = path + ": " + detail;
    }
    return false;
  };
  out = JournalScan{};
  out.total_bytes = bytes.size();
  if (bytes.size() < kJournalHeaderSize) {
    return fail(DurabilityError::Kind::kTruncated, bytes.size(),
                "journal shorter than its header");
  }
  if (std::memcmp(bytes.data(), kJournalMagic, 7) != 0) {
    return fail(DurabilityError::Kind::kBadMagic, 0,
                "not a journal file (bad magic)");
  }
  if (bytes[7] != kJournalMagic[7]) {
    return fail(DurabilityError::Kind::kBadVersion, 7,
                "unknown journal format version");
  }
  ByteReader hdr(bytes.substr(8, 12));
  const std::uint64_t fp = hdr.U64();
  const std::uint32_t hcrc = hdr.U32();
  if (hcrc != util::Crc32Of(bytes.substr(0, 16))) {
    return fail(DurabilityError::Kind::kCrcMismatch, 16,
                "journal header CRC mismatch");
  }
  if (fingerprint != nullptr) *fingerprint = fp;

  std::size_t pos = kJournalHeaderSize;
  while (pos + 4 <= bytes.size()) {
    ByteReader lenr(bytes.substr(pos, 4));
    const std::uint32_t len = lenr.U32();
    if (len == 0 || len > kMaxRecordLen) break;          // torn/garbage
    if (pos + 4 + len + 4 > bytes.size()) break;         // torn tail
    const std::string_view payload = bytes.substr(pos + 4, len);
    ByteReader crcr(bytes.substr(pos + 4 + len, 4));
    if (crcr.U32() != util::Crc32Of(payload)) break;     // torn/corrupt
    JournalRecord rec;
    if (!DecodeRecordPayload(payload, rec)) break;
    if (records != nullptr) records->push_back(rec);
    pos += 4 + len + 4;
    ++out.records;
  }
  out.valid_bytes = pos;
  return true;
}

// ---- engine ----------------------------------------------------------------

std::string CheckpointPath(const std::string& dir, std::uint64_t epoch) {
  char name[32];
  std::snprintf(name, sizeof(name), "ckpt-%010llu.sps",
                static_cast<unsigned long long>(epoch));
  return dir + "/" + name;
}

/// The checkpoint/journal sink the replay loop drives. Inactive (all
/// no-ops) when the config has no directory.
class DurabilityEngine {
 public:
  ~DurabilityEngine() {
    if (journal_ != nullptr) std::fclose(journal_);
  }

  [[nodiscard]] const DurabilityError& error() const { return error_; }
  [[nodiscard]] const RecoveryInfo& recovery() const { return recovery_; }
  [[nodiscard]] bool halted() const { return halted_; }

  /// Prepare the directory, run recovery when asked, open the journal.
  /// On success `st` holds the state to resume from (default = scratch).
  bool Init(const WorkloadStream& s, const ReplayConfig& cfg,
            CheckpointState& st) {
    obs::ScopedSpan span(obs::InstalledProfiler(),
                         obs::SpanStage::kRecoveryRedo);
    cfg_ = cfg.durability;
    fingerprint_ = Fingerprint(s, cfg);
    journal_path_ = cfg_.dir + "/journal.wal";

    std::error_code ec;
    fs::create_directories(cfg_.dir, ec);
    if (ec) {
      return Fail(DurabilityError::Kind::kIo, cfg_.dir, 0,
                  "cannot create checkpoint directory: " + ec.message());
    }

    if (!cfg_.recover) {
      // Fresh run: a stale journal or checkpoints from a previous run
      // would poison recovery semantics — wipe them.
      for (const std::string& p : ListCheckpoints(cfg_.dir)) {
        fs::remove(p, ec);
      }
      fs::remove(journal_path_, ec);
    } else {
      recovery_.attempted = true;
      if (!Recover(st)) return false;
    }

    // Open (or create) the journal for appending; a fresh journal gets
    // its header first.
    if (!fs::exists(journal_path_)) {
      std::string err;
      if (!util::WriteFileAtomic(journal_path_, JournalHeader(fingerprint_),
                                 cfg_.fsync != FsyncPolicy::kOff, &err)) {
        return Fail(DurabilityError::Kind::kIo, journal_path_, 0, err);
      }
    }
    journal_ = std::fopen(journal_path_.c_str(), "ab");
    if (journal_ == nullptr) {
      return Fail(DurabilityError::Kind::kIo, journal_path_, 0,
                  journal_path_ + ": cannot open journal for append: " +
                      std::strerror(errno));
    }
    return true;
  }

  /// Journal hook, called after each applied request. Redo of an already
  /// journaled seq cross-checks; new seqs append (+ crash/halt
  /// injection). Returns false on divergence (error() set).
  bool OnApplied(const JournalRecord& rec) {
    const auto it = seen_.find(rec.seq);
    if (it != seen_.end()) {
      if (it->second == rec) return true;
      // Black-box dump BEFORE reporting: divergence is exactly the "what
      // was the service doing" moment the flight recorder exists for.
      if (obs::RequestTracer* tr = obs::InstalledTracer()) {
        (void)tr->DumpFlight("journal_divergence");
      }
      return Fail(DurabilityError::Kind::kJournalDivergence,
                  journal_path_, 0,
                  journal_path_ + ": redo decision for request " +
                      std::to_string(rec.seq) +
                      " diverges from the journaled one (corrupt journal "
                      "or mismatched stream)");
    }
    const std::string frame = EncodeRecord(rec);
    if (std::fwrite(frame.data(), 1, frame.size(), journal_) !=
        frame.size()) {
      return Fail(DurabilityError::Kind::kIo, journal_path_, 0,
                  journal_path_ + ": journal append failed: " +
                      std::strerror(errno));
    }
    seen_.emplace(rec.seq, rec);
    ++appends_;
    if (cfg_.fsync == FsyncPolicy::kEveryN &&
        appends_ % std::max(1u, cfg_.fsync_every_n) == 0) {
      FlushJournal(/*sync=*/true);
    }
    if (cfg_.crash_after_appends != 0 &&
        appends_ == cfg_.crash_after_appends) {
      // The record above is in the page cache (flushed, not necessarily
      // fsync'd) — visible to the recovering process. Then die the hard
      // way, exactly like kill -9 mid-service. SIGKILL cannot be caught,
      // so the flight recorder dumps HERE — the artifact a real crashed
      // deployment would have from its last periodic dump.
      FlushJournal(cfg_.fsync != FsyncPolicy::kOff);
      if (obs::RequestTracer* tr = obs::InstalledTracer()) {
        (void)tr->DumpFlight("crash_injection");
      }
      std::raise(SIGKILL);
    }
    if (cfg_.halt_after_appends != 0 &&
        appends_ == cfg_.halt_after_appends) {
      FlushJournal(/*sync=*/false);
      halted_ = true;
      recovery_.halted_by_injection = true;
    }
    return true;
  }

  /// Epoch-boundary hook: per-epoch fsync and the every-K checkpoint.
  bool OnEpochEntered(const Controller& ctrl, const ReplayResult& out,
                      std::uint64_t next_request, Time epoch_start,
                      std::uint64_t epoch_index,
                      const ChurnStats& churn_before,
                      const OverloadStats& overload_before) {
    obs::ScopedSpan span(obs::InstalledProfiler(),
                         obs::SpanStage::kCheckpointWrite);
    if (cfg_.fsync == FsyncPolicy::kEveryEpoch) {
      FlushJournal(/*sync=*/true);
    }
    if (cfg_.checkpoint_every == 0 ||
        epoch_index % cfg_.checkpoint_every != 0) {
      return true;
    }
    const std::string path = CheckpointPath(cfg_.dir, epoch_index);
    if (fs::exists(path)) return true;  // redo re-entered a covered epoch
    CheckpointState st;
    st.next_request = next_request;
    st.epoch_start = epoch_start;
    st.epoch_index = epoch_index;
    st.churn_before = churn_before;
    st.overload_before = overload_before;
    st.admits = out.admits;
    st.rejects = out.rejects;
    st.leaves = out.leaves;
    st.epochs = out.epochs;
    st.ctrl = ctrl.ExportState();
    std::string err;
    if (!util::WriteFileAtomic(path, EncodeCheckpoint(st, fingerprint_),
                               cfg_.fsync != FsyncPolicy::kOff, &err)) {
      return Fail(DurabilityError::Kind::kIo, path, 0, err);
    }
    PruneCheckpoints();
    return true;
  }

  void Finish() {
    FlushJournal(cfg_.fsync != FsyncPolicy::kOff);
  }

 private:
  bool Fail(DurabilityError::Kind kind, const std::string& path,
            std::uint64_t offset, const std::string& message) {
    error_.kind = kind;
    error_.path = path;
    error_.offset = offset;
    error_.message = message;
    return false;
  }

  void FlushJournal(bool sync) {
    if (journal_ == nullptr) return;
    std::fflush(journal_);
    if (sync) ::fsync(::fileno(journal_));
  }

  void PruneCheckpoints() {
    const std::vector<std::string> all = ListCheckpoints(cfg_.dir);
    const std::uint32_t keep = std::max(1u, cfg_.keep_checkpoints);
    std::error_code ec;
    for (std::size_t i = keep; i < all.size(); ++i) fs::remove(all[i], ec);
  }

  /// Load the newest valid checkpoint (skipping corrupt ones), scan the
  /// journal, truncate its torn tail, keep the valid records for the
  /// redo cross-check.
  bool Recover(CheckpointState& st) {
    for (const std::string& path : ListCheckpoints(cfg_.dir)) {
      std::string bytes;
      std::string io_err;
      if (!util::ReadFileBytes(path, bytes, &io_err)) {
        ++recovery_.checkpoints_skipped;
        continue;
      }
      CheckpointState cand;
      DurabilityError derr;
      if (!DecodeCheckpoint(bytes, path, fingerprint_, cand, derr)) {
        // A checkpoint for a DIFFERENT stream/config is not corruption —
        // the caller pointed recovery at the wrong directory; surface it
        // instead of silently replaying from scratch.
        if (derr.kind == DurabilityError::Kind::kFingerprintMismatch) {
          error_ = derr;
          return false;
        }
        ++recovery_.checkpoints_skipped;
        continue;
      }
      st = std::move(cand);
      recovery_.recovered = true;
      recovery_.checkpoint_epoch = st.epoch_index;
      recovery_.resume_seq = st.next_request;
      break;
    }

    if (fs::exists(journal_path_)) {
      std::string bytes;
      std::string io_err;
      if (!util::ReadFileBytes(journal_path_, bytes, &io_err)) {
        return Fail(DurabilityError::Kind::kIo, journal_path_, 0, io_err);
      }
      JournalScan scan;
      std::vector<JournalRecord> records;
      std::uint64_t fp = 0;
      DurabilityError derr;
      if (!ScanJournalBytes(bytes, journal_path_, scan, &records, &fp,
                            &derr)) {
        error_ = derr;
        return false;
      }
      if (fp != fingerprint_) {
        return Fail(DurabilityError::Kind::kFingerprintMismatch,
                    journal_path_, 8,
                    journal_path_ +
                        ": journal was written for a different "
                        "stream/config");
      }
      recovery_.journal_records = scan.records;
      recovery_.journal_truncated_bytes =
          scan.total_bytes - scan.valid_bytes;
      if (recovery_.journal_truncated_bytes > 0 &&
          ::truncate(journal_path_.c_str(),
                     static_cast<off_t>(scan.valid_bytes)) != 0) {
        return Fail(DurabilityError::Kind::kIo, journal_path_, 0,
                    journal_path_ + ": cannot truncate torn tail: " +
                        std::strerror(errno));
      }
      seen_.reserve(records.size());
      for (const JournalRecord& rec : records) seen_.emplace(rec.seq, rec);
    }
    return true;
  }

  DurabilityConfig cfg_;
  std::string journal_path_;
  std::FILE* journal_ = nullptr;
  std::uint64_t fingerprint_ = 0;
  std::unordered_map<std::uint64_t, JournalRecord> seen_;
  std::uint64_t appends_ = 0;
  bool halted_ = false;
  DurabilityError error_;
  RecoveryInfo recovery_;
};

// ---- epoch close (moved with the replay loop from controller.cpp) ----------

void CloseEpoch(const Controller& ctrl, const ReplayConfig& cfg,
                std::size_t epoch_index, Time start, Time end,
                const ChurnStats& churn_before,
                const OverloadStats& overload_before, EpochStats& e,
                ReplayResult& out) {
  e.start = start;
  e.end = end;
  e.resident = ctrl.resident();
  e.shed_resident = ctrl.shed_resident();
  e.degraded_resident = ctrl.degraded_resident();
  e.utilization = ctrl.total_utilization();
  ChurnStats delta = ctrl.churn();
  delta -= churn_before;
  e.churn = delta;
  OverloadStats odelta = ctrl.overload_stats();
  odelta -= overload_before;
  e.overload = odelta;
  const SpikeEpoch* spike = cfg.faults.SpikeAt(start, end);
  const BurstStorm* storm = cfg.faults.StormAt(start, end);
  e.fault_active = spike != nullptr || storm != nullptr;
  if (cfg.validate_by_simulation && ctrl.resident() > 0) {
    obs::ScopedSpan span(obs::InstalledProfiler(),
                         obs::SpanStage::kEpochValidate);
    sim::SimConfig scfg = cfg.validate_sim;
    scfg.overheads = cfg.controller.admission.model;
    scfg.exec.seed = util::DeriveSeed(cfg.seed, epoch_index, 0);
    scfg.arrivals.seed = util::DeriveSeed(cfg.seed, epoch_index, 1);
    // Fault windows validate against the FAULTED models — "zero hard
    // misses" is proven under the spike/storm, not the nominal load.
    if (spike != nullptr) {
      scfg.exec.kind = sim::ExecModel::Kind::kSpiky;
      scfg.exec.spike_prob = spike->prob;
      scfg.exec.spike_magnitude = spike->magnitude;
    }
    if (storm != nullptr) {
      scfg.arrivals.kind = sim::ArrivalModel::Kind::kBursty;
      scfg.arrivals.burst_prob = storm->burst_prob;
    }
    const partition::Partition p = ctrl.CurrentPartition();
    scfg.exec_generations = ctrl.ExecGenerations();
    const std::vector<sim::BatchRun> runs =
        sim::RunConfigSweep(p, {{"epoch", scfg}}, {.jobs = 1});
    e.validated = true;
    e.sim_misses = runs.front().result.total_misses;
    // Hard-miss attribution: SimResult.tasks is index-aligned with
    // p.tasks (the engine copies ids positionally).
    const auto& tstats = runs.front().result.tasks;
    for (std::size_t i = 0; i < tstats.size() && i < p.tasks.size(); ++i) {
      if (p.tasks[i].task.crit == rt::Criticality::kHard) {
        e.hard_misses += tstats[i].deadline_misses;
      }
    }
  }
  out.epochs.push_back(e);
  // Observability hook (DESIGN.md §15): heartbeats / augmented tables.
  // Runs after the epoch is final; must not influence the replay.
  if (cfg.obs.on_epoch) cfg.obs.on_epoch(epoch_index, out.epochs.back(), out);
  // Flight-ring registry delta (§16): the black box records the epoch's
  // cumulative counters so a post-crash dump shows progress context.
  if (cfg.obs.tracer != nullptr) {
    cfg.obs.tracer->NoteEpoch(epoch_index, out.admits, out.rejects,
                              out.leaves, ctrl.resident());
  }
  e = EpochStats{};
}

}  // namespace

// ---- public file helpers ---------------------------------------------------

bool ScanJournal(const std::string& path, JournalScan& out,
                 DurabilityError* error) {
  std::string bytes;
  std::string io_err;
  if (!util::ReadFileBytes(path, bytes, &io_err)) {
    if (error != nullptr) {
      error->kind = DurabilityError::Kind::kIo;
      error->path = path;
      error->message = io_err;
    }
    return false;
  }
  return ScanJournalBytes(bytes, path, out, nullptr, nullptr, error);
}

std::vector<std::string> ListCheckpoints(const std::string& dir) {
  std::vector<std::pair<std::uint64_t, std::string>> found;
  std::error_code ec;
  for (const fs::directory_entry& e : fs::directory_iterator(dir, ec)) {
    const std::string name = e.path().filename().string();
    unsigned long long epoch = 0;
    int consumed = 0;
    if (std::sscanf(name.c_str(), "ckpt-%10llu.sps%n", &epoch,
                    &consumed) == 1 &&
        consumed == static_cast<int>(name.size())) {
      found.emplace_back(epoch, e.path().string());
    }
  }
  std::sort(found.begin(), found.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<std::string> out;
  out.reserve(found.size());
  for (auto& [epoch, path] : found) out.push_back(std::move(path));
  return out;
}

// ---- the replay loop (one loop for the plain and durable paths) ------------

ReplayResult ReplayStream(const WorkloadStream& s, const ReplayConfig& cfg) {
  // Install the replay's wall-clock profiler for this thread; every
  // layer below (controller, admission analysis, durability engine)
  // reads it via obs::InstalledProfiler(). Uninstalls on every return.
  // The request tracer (§16) rides the same pattern — and needs the
  // profiler's clock, so it only records when a profiler is installed.
  obs::ProfilerInstallation profiler_install(cfg.obs.profiler);
  obs::RequestTracer* const tracer =
      cfg.obs.profiler != nullptr ? cfg.obs.tracer : nullptr;
  obs::TracerInstallation tracer_install(tracer);
  ReplayResult out;
  Controller ctrl(cfg.controller);
  const Time epoch_len = cfg.epoch > 0 ? cfg.epoch : s.span() + 1;
  // Idle spans longer than this many empty epochs are compressed: the
  // skipped epochs produce no rows (nothing happened in them; their
  // validation would re-simulate an unchanged partition). Bounds the
  // result against a far-future timestamp in a loaded trace or a tiny
  // --online-epoch-ms against a long stream.
  constexpr Time kMaxIdleEpochs = 1024;

  EpochStats cur;
  ChurnStats churn_before;
  OverloadStats overload_before;
  Time epoch_start = 0;
  std::size_t epoch_index = 0;
  std::size_t next_request = 0;

  const bool durable = cfg.durability.enabled();
  DurabilityEngine dur;
  if (durable) {
    CheckpointState st;
    if (!dur.Init(s, cfg, st)) {
      out.recovery = dur.recovery();
      out.durability_error = dur.error();
      return out;
    }
    out.recovery = dur.recovery();
    if (out.recovery.recovered) {
      if (!ctrl.ImportState(std::move(st.ctrl))) {
        out.durability_error = DurabilityError{
            DurabilityError::Kind::kStateMismatch, cfg.durability.dir, 0,
            cfg.durability.dir +
                ": checkpoint does not fit this controller config"};
        return out;
      }
      next_request = static_cast<std::size_t>(st.next_request);
      epoch_start = st.epoch_start;
      epoch_index = static_cast<std::size_t>(st.epoch_index);
      churn_before = st.churn_before;
      overload_before = st.overload_before;
      out.admits = st.admits;
      out.rejects = st.rejects;
      out.leaves = st.leaves;
      out.epochs = std::move(st.epochs);
    }
  }

  // Called as the replay ENTERS the epoch starting at `start`: the
  // controller ticks (shed retries and degrade restores run only in
  // calm epochs), and a fault window covering the new epoch is the
  // overload ALARM — the controller walks the ladder until the
  // spike-inflated partition re-analyzes schedulable, BEFORE this
  // epoch's requests and validation run.
  const auto enter_epoch = [&](Time start) {
    obs::ScopedSpan span(obs::InstalledProfiler(),
                         obs::SpanStage::kEpochApply);
    const Time end =
        start > kTimeNever - epoch_len ? kTimeNever : start + epoch_len;
    const SpikeEpoch* spike = cfg.faults.SpikeAt(start, end);
    const BurstStorm* storm = cfg.faults.StormAt(start, end);
    ctrl.AdvanceEpoch(spike != nullptr || storm != nullptr);
    if (spike != nullptr) {
      ctrl.ReactToOverload(spike->magnitude);
    } else if (storm != nullptr) {
      ctrl.ReactToOverload(cfg.controller.overload.spike_magnitude);
    }
  };

  const auto fail_durability = [&]() {
    out.durability_error = dur.error();
    out.churn = ctrl.churn();
    out.overload = ctrl.overload_stats();
    out.shed_outstanding = ctrl.shed_resident();
    out.admission = ctrl.admission_stats();
    out.final_partition = ctrl.CurrentPartition();
    return out;
  };

  const std::vector<Request>& reqs = s.requests();
  for (std::size_t seq = next_request; seq < reqs.size(); ++seq) {
    const Request& r = reqs[seq];
    // (r.at - epoch_start is non-negative: requests are time-sorted and
    // epoch_start never passes a request — so the subtraction form is
    // overflow-safe where `epoch_start + epoch_len` is not.)
    while (r.at - epoch_start >= epoch_len) {
      CloseEpoch(ctrl, cfg, epoch_index, epoch_start,
                 epoch_start + epoch_len, churn_before, overload_before,
                 cur, out);
      churn_before = ctrl.churn();
      overload_before = ctrl.overload_stats();
      epoch_start += epoch_len;
      ++epoch_index;
      const Time idle_epochs = (r.at - epoch_start) / epoch_len;
      if (idle_epochs > kMaxIdleEpochs) {
        epoch_start += idle_epochs * epoch_len;
        epoch_index += static_cast<std::size_t>(idle_epochs);
      }
      enter_epoch(epoch_start);
      if (durable &&
          !dur.OnEpochEntered(ctrl, out, seq, epoch_start, epoch_index,
                              churn_before, overload_before)) {
        return fail_durability();
      }
    }
    ChurnStats churn_pre;
    OverloadStats overload_pre;
    if (durable) {
      churn_pre = ctrl.churn();
      overload_pre = ctrl.overload_stats();
    }
    // Request-scoped trace: seq-derived deterministic id, opened before
    // the controller call so every stage span below lands in its tree.
    if (tracer != nullptr) {
      tracer->BeginTrace(util::DeriveSeed(cfg.seed, seq, obs::kTraceIdAxis),
                         seq, r.kind == RequestKind::kAdmit);
    }
    std::uint8_t flags = 0;
    std::uint32_t parts = 0;
    if (r.kind == RequestKind::kAdmit) {
      const AdmitOutcome o = ctrl.Admit(r.task);
      if (o.accepted) {
        ++cur.admits;
        ++out.admits;
      } else {
        ++cur.rejects;
        ++out.rejects;
      }
      flags = static_cast<std::uint8_t>((o.accepted ? 1u : 0u) |
                                        (o.via_fallback ? 2u : 0u) |
                                        (o.via_ladder ? 4u : 0u));
      parts = o.parts;
    } else {
      if (ctrl.Leave(r.id)) {
        ++cur.leaves;
        ++out.leaves;
        flags = 1;
      }
    }
    if (durable) {
      JournalRecord rec;
      rec.seq = seq;
      rec.kind = static_cast<std::uint8_t>(r.kind);
      rec.flags = flags;
      rec.parts = parts;
      rec.id = r.id;
      rec.churn_delta = ctrl.churn();
      rec.churn_delta -= churn_pre;
      rec.overload_delta = ctrl.overload_stats();
      rec.overload_delta -= overload_pre;
      if (!dur.OnApplied(rec)) {
        // Close the trace as diverged so it is retained by the
        // "interesting" rule before the replay aborts.
        if (tracer != nullptr) {
          tracer->EndTrace((flags & 4u) != 0, (flags & 2u) != 0,
                           /*diverged=*/true);
        }
        return fail_durability();
      }
      if (dur.halted()) {
        // Clean in-process "crash": the artifacts on disk are exactly
        // what a SIGKILL here would leave; the partial stats below are
        // for the harness's convenience only.
        if (tracer != nullptr) {
          tracer->EndTrace((flags & 4u) != 0, (flags & 2u) != 0, false);
        }
        out.recovery.halted_by_injection = true;
        out.churn = ctrl.churn();
        out.overload = ctrl.overload_stats();
        out.shed_outstanding = ctrl.shed_resident();
        out.admission = ctrl.admission_stats();
        out.final_partition = ctrl.CurrentPartition();
        return out;
      }
    }
    // Tail-sampling decision: ladder/fallback traces always retained,
    // the rest compete for the slowest-K slots.
    if (tracer != nullptr) {
      tracer->EndTrace((flags & 4u) != 0, (flags & 2u) != 0, false);
    }
  }
  // Final epoch; its nominal end can exceed the representable range when
  // the last request sits near kTimeNever — clamp.
  const Time final_end = epoch_start > kTimeNever - epoch_len
                             ? kTimeNever
                             : epoch_start + epoch_len;
  CloseEpoch(ctrl, cfg, epoch_index, epoch_start, final_end, churn_before,
             overload_before, cur, out);

  // Drain epochs: keep ticking past the last request so shed-re-admission
  // retries (whose backoff is measured in epochs) get room to run when
  // the stream ends right after a fault window.
  for (std::uint32_t k = 0; k < cfg.drain_epochs; ++k) {
    if (epoch_start > kTimeNever - epoch_len) break;
    churn_before = ctrl.churn();
    overload_before = ctrl.overload_stats();
    epoch_start += epoch_len;
    ++epoch_index;
    enter_epoch(epoch_start);
    const Time drain_end = epoch_start > kTimeNever - epoch_len
                               ? kTimeNever
                               : epoch_start + epoch_len;
    CloseEpoch(ctrl, cfg, epoch_index, epoch_start, drain_end,
               churn_before, overload_before, cur, out);
  }
  if (durable) dur.Finish();

  out.churn = ctrl.churn();
  out.overload = ctrl.overload_stats();
  out.shed_outstanding = ctrl.shed_resident();
  out.admission = ctrl.admission_stats();
  out.final_partition = ctrl.CurrentPartition();
  return out;
}

std::vector<ReplayResult> ReplayBatch(std::span<const WorkloadStream> streams,
                                      const ReplayConfig& cfg,
                                      unsigned jobs) {
  std::vector<ReplayResult> results(streams.size());
  util::ParallelFor(jobs, streams.size(), [&](std::size_t i) {
    // Per-stream config: only the validation seed varies, derived from
    // the stream index — results are pure in (stream, cfg, i), hence
    // bit-identical for any job count. Durable batches give each stream
    // its own artifact subdirectory.
    ReplayConfig c = cfg;
    c.seed = util::DeriveSeed(cfg.seed, i, 0xB47C4);
    if (cfg.durability.enabled()) {
      c.durability.dir =
          cfg.durability.dir + "/stream-" + std::to_string(i);
    }
    results[i] = ReplayStream(streams[i], c);
  });
  return results;
}

}  // namespace sps::online
