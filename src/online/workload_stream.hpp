#pragma once
// Streaming workload model (DESIGN.md §11): a deterministic, timestamped
// sequence of ADMIT / LEAVE requests — the input of the online admission
// controller (controller.hpp). Everything offline in this repo consumes
// one immutable task set; this is the runtime-facing counterpart where
// tasks arrive and retire while the system keeps running.
//
// Determinism contract (the same one the batch harness lives by,
// DESIGN.md §8): every request's parameters are drawn from an RNG stream
// derived by util::DeriveSeed(seed, request index, axis) — request i's
// task never depends on how many requests precede it or on which thread
// generates it, so streams regenerate bit-identically from (config, seed)
// and batches of streams fan out over the pool bit-identically for any
// job count.
//
// Streams also round-trip through a line-oriented request-trace file
// ("sps-online-stream v1"/"v2": one `admit`/`leave` line per request;
// v2 admit lines append the overload attributes crit/value/tardiness/
// degraded-WCET, and the loader reads both), so captured workloads can
// be replayed, diffed, and shipped into benches. The writer appends a
// trailing `# crc32 <hex>` footer covering every preceding byte
// (DESIGN.md §14); the loader verifies it when present and still loads
// footer-less captures unchanged (old loaders skip it as a comment). The loader is a
// fault-injection surface (DESIGN.md §13): truncated files, overlong
// lines, duplicate admits, LEAVE-before-ADMIT and non-monotone
// timestamps each yield a TYPED StreamError with the offending line
// number — never UB, never a silent false.

#include <cstdint>
#include <string>
#include <vector>

#include "rt/task.hpp"
#include "rt/taskset.hpp"
#include "rt/time.hpp"

namespace sps::online {

enum class RequestKind : std::uint8_t {
  kAdmit,  ///< a new task asks to enter the system
  kLeave,  ///< a resident task retires; its capacity is reclaimed
};

struct Request {
  Time at = 0;                ///< request timestamp
  RequestKind kind = RequestKind::kAdmit;
  rt::TaskId id = 0;          ///< admit: the new task's id; leave: whose
  rt::Task task;              ///< admit only (task.id == id)

  friend bool operator==(const Request&, const Request&) = default;
};

/// A time-ordered request sequence. Ties on `at` keep generation order
/// (the sort below is stable on the sequence index), so replay order is
/// total and deterministic.
class WorkloadStream {
 public:
  WorkloadStream() = default;
  explicit WorkloadStream(std::vector<Request> reqs);

  [[nodiscard]] const std::vector<Request>& requests() const {
    return requests_;
  }
  [[nodiscard]] std::size_t size() const { return requests_.size(); }
  [[nodiscard]] bool empty() const { return requests_.empty(); }
  [[nodiscard]] std::size_t num_admits() const;

  /// Every leave refers to an earlier admit, ids of admits unique,
  /// timestamps non-decreasing, admitted tasks well-formed.
  [[nodiscard]] bool valid() const;

  /// End of the request timeline (0 for an empty stream).
  [[nodiscard]] Time span() const;

 private:
  std::vector<Request> requests_;
};

/// Synthetic stream generator — the online counterpart of
/// rt::GeneratorConfig, reusing its period recipe (log-uniform decade
/// range, granularity rounding) per request.
struct StreamConfig {
  std::size_t num_admits = 128;
  /// Fraction of admits that later LEAVE (drawn per request).
  double leave_fraction = 0.5;
  /// Admit timestamps are uniform over [0, span).
  Time span = Millis(10000);
  /// Resident lifetime of leaving tasks, uniform in [min, max].
  Time min_lifetime = Millis(200);
  Time max_lifetime = Millis(4000);
  /// Per-task utilization, uniform in [util_min, util_max].
  double util_min = 0.05;
  double util_max = 0.40;
  /// Period recipe (rt::DrawPeriod).
  Time period_min = Millis(10);
  Time period_max = Millis(1000);
  Time period_granularity = Millis(1);
  /// Overload axis (DESIGN.md §13): fraction of admits generated SOFT
  /// (criticality kSoft), drawn per request from its own seed axis so
  /// soft_fraction = 0 regenerates historical streams bit-identically.
  double soft_fraction = 0.0;
  /// Soft tasks draw value uniformly in [0, value_classes).
  std::uint32_t value_classes = 4;
  /// Soft tasks tolerate tardiness up to this fraction of their period.
  double tardiness_factor = 1.0;
  /// Soft tasks' degraded-mode WCET as a fraction of the full WCET
  /// (0 disables the degraded mode).
  double degraded_fraction = 0.6;
  /// Deadline-monotonic priorities pre-assigned over the whole stream
  /// (unique; needed by fixed-priority controllers). Always done.
  std::uint64_t seed = 20110318;
};

/// Generate one stream per the config. Request i draws only from streams
/// seeded by DeriveSeed(cfg.seed, i, axis) — see header contract.
WorkloadStream GenerateStream(const StreamConfig& cfg);

/// ADMIT-only stream visiting `ts`'s tasks in the given index order with
/// consecutive timestamps — the bridge from an offline task set to a
/// replayable stream (the differential tests feed the offline
/// partitioners' decreasing-utilization order through this).
WorkloadStream MakeAdmitOnlyStream(const rt::TaskSet& ts,
                                   const std::vector<std::size_t>& order);

/// Typed stream-file failure (DESIGN.md §13). Every malformed input the
/// loader can see maps to exactly one kind; `line` is the 1-based
/// offending line (0 when the failure is not line-scoped, e.g. open()).
/// `message` is the human-readable rendering, always naming the path.
struct StreamError {
  enum class Kind : std::uint8_t {
    kNone,              ///< no error
    kIo,                ///< open/read failed (errno in message)
    kMissingHeader,     ///< first line is not the sps-online-stream magic
    kParse,             ///< line matches neither admit nor leave shape
    kTruncated,         ///< file ends mid-line (no trailing newline)
    kOverlongLine,      ///< line exceeds the loader's line-length bound
    kMalformedTask,     ///< admit with invalid C/D/T or attributes
    kDuplicateAdmit,    ///< second admit of an already-seen task id
    kLeaveWithoutAdmit, ///< leave of an id that is not resident
    kNonMonotoneTime,   ///< timestamp earlier than the previous request
    kCrcMismatch,       ///< the '# crc32' footer does not cover the bytes
  };
  Kind kind = Kind::kNone;
  int line = 0;
  std::string message;

  [[nodiscard]] bool ok() const { return kind == Kind::kNone; }
};

const char* ToString(StreamError::Kind k);

/// Save/load the request-trace file format. On failure returns false and,
/// when `error` is non-null, stores a message naming the path and errno
/// (or the offending line for parse errors).
[[nodiscard]] bool SaveStream(const WorkloadStream& s,
                              const std::string& path,
                              std::string* error = nullptr);
[[nodiscard]] bool LoadStream(const std::string& path, WorkloadStream& out,
                              std::string* error = nullptr);
/// Typed-error overload: the legacy string overload delegates here and
/// renders `error->message`.
[[nodiscard]] bool LoadStream(const std::string& path, WorkloadStream& out,
                              StreamError* error);

}  // namespace sps::online
