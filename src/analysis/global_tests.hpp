#pragma once
// Global-scheduling schedulability tests — the third paradigm of the
// paper's introduction ("In the global approach, each task can execute on
// any available processor at run time"). The paper's premise, which the
// bench bench_global_vs_partitioned reproduces, is that partitioned (and
// a fortiori semi-partitioned) scheduling beats global scheduling for
// hard real-time guarantees; these are the standard sufficient tests that
// make the comparison concrete:
//
//   * G-RM utilization test (Andersson, Baruah, Jonsson 2001):
//     schedulable on m processors if every u_i <= m/(3m-2) and
//     sum u_i <= m^2/(3m-2);
//   * G-EDF "GFB" test (Goossens, Funk, Baruah 2003):
//     schedulable if sum u_i <= m (1 - u_max) + u_max;
//   * the Dhall-effect constructor: a task set with utilization barely
//     above 1 that global RM cannot schedule on ANY number of processors
//     — the classic reason global scheduling loses.

#include <cstddef>
#include <span>

#include "rt/task.hpp"
#include "rt/taskset.hpp"

namespace sps::analysis {

/// Andersson-Baruah-Jonsson utilization test for global RM on m cores.
bool GlobalRmAbjTest(std::span<const rt::Task> tasks, unsigned m);

/// ABJ utilization cap m^2 / (3m - 2).
double GlobalRmAbjBound(unsigned m);

/// Goossens-Funk-Baruah test for global EDF on m cores.
bool GlobalEdfGfbTest(std::span<const rt::Task> tasks, unsigned m);

/// Build the classic Dhall-effect set for m processors: m tasks with
/// (C = 2e, T = 1) and one task with (C = 1, T = 1 + e'), scaled to
/// `period` as the unit. Global RM misses the long task's deadline for
/// any m; partitioned/semi-partitioned RM schedules it trivially.
rt::TaskSet DhallEffectSet(unsigned m, Time period = Millis(100));

}  // namespace sps::analysis
