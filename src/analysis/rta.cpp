#include "analysis/rta.hpp"

#include <algorithm>

namespace sps::analysis {

Time ResponseTime(std::span<const RtaTask> tasks, std::size_t index,
                  Time limit) {
  const RtaTask& ti = tasks[index];
  Time r = ti.wcet + ti.release_cost;
  while (true) {
    Time next = ti.wcet + ti.release_cost;
    for (std::size_t j = 0; j < tasks.size(); ++j) {
      if (j == index) continue;
      const RtaTask& tj = tasks[j];
      const Time arrivals = CeilDiv(r + tj.jitter, tj.period);
      // Higher-priority tasks interfere with their full execution;
      // every task's releases interfere with their release overhead.
      if (tj.priority < ti.priority) next += arrivals * tj.wcet;
      next += arrivals * tj.release_cost;
    }
    if (next == r) return r;
    if (next > limit) return kTimeNever;
    r = next;
  }
}

Time ResponseTimeArbitrary(std::span<const RtaTask> tasks,
                           std::size_t index, Time limit) {
  const RtaTask& ti = tasks[index];

  // Level-i busy window: all of tau_i's own arrivals plus everything of
  // higher priority (and every task's release overhead).
  Time window = ti.wcet + ti.release_cost;
  while (true) {
    Time next = 0;
    {
      const Time own_arrivals = CeilDiv(window + ti.jitter, ti.period);
      next += own_arrivals * (ti.wcet + ti.release_cost);
    }
    for (std::size_t j = 0; j < tasks.size(); ++j) {
      if (j == index) continue;
      const RtaTask& tj = tasks[j];
      const Time arrivals = CeilDiv(window + tj.jitter, tj.period);
      if (tj.priority < ti.priority) next += arrivals * tj.wcet;
      next += arrivals * tj.release_cost;
    }
    if (next == window) break;
    if (next > limit) return kTimeNever;
    window = next;
  }

  const Time instances = CeilDiv(window + ti.jitter, ti.period);
  Time worst = 0;
  for (Time q = 0; q < instances; ++q) {
    // Finish time of the (q+1)-th job in the busy window.
    Time f = (q + 1) * ti.wcet + ti.release_cost;
    while (true) {
      Time next = (q + 1) * (ti.wcet + ti.release_cost);
      for (std::size_t j = 0; j < tasks.size(); ++j) {
        if (j == index) continue;
        const RtaTask& tj = tasks[j];
        const Time arrivals = CeilDiv(f + tj.jitter, tj.period);
        if (tj.priority < ti.priority) next += arrivals * tj.wcet;
        next += arrivals * tj.release_cost;
      }
      if (next == f) break;
      if (next > limit) return kTimeNever;
      f = next;
    }
    // Response measured from the q-th NOMINAL release (q*T into the
    // window); callers add the task's own jitter for the deadline check,
    // matching the ResponseTime/AnalyzeCore convention.
    worst = std::max(worst, f - q * ti.period);
  }
  return worst;
}

RtaResult AnalyzeCore(std::span<const RtaTask> tasks) {
  RtaResult res;
  res.schedulable = true;
  res.response.assign(tasks.size(), 0);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    if (!tasks[i].check) {
      res.response[i] = 0;
      continue;
    }
    const Time budget = tasks[i].deadline - tasks[i].jitter;
    if (budget < tasks[i].wcet) {
      res.response[i] = kTimeNever;
      res.schedulable = false;
      if (res.first_failure == SIZE_MAX) res.first_failure = i;
      continue;
    }
    // Arbitrary deadlines (D > T) need the busy-window analysis: the
    // window legitimately spans several jobs, so its fixpoint limit must
    // be far beyond one deadline.
    const bool arbitrary = tasks[i].deadline > tasks[i].period;
    const Time r =
        arbitrary
            ? ResponseTimeArbitrary(tasks, i,
                                    std::max<Time>(budget,
                                                   64 * tasks[i].period))
            : ResponseTime(tasks, i, budget);
    res.response[i] = r;
    if (r == kTimeNever || r + tasks[i].jitter > tasks[i].deadline) {
      res.schedulable = false;
      if (res.first_failure == SIZE_MAX) res.first_failure = i;
    }
  }
  return res;
}

bool RtaSchedulable(std::span<const rt::Task> tasks) {
  std::vector<RtaTask> v;
  v.reserve(tasks.size());
  for (const rt::Task& t : tasks) {
    v.push_back(RtaTask{.wcet = t.wcet,
                        .period = t.period,
                        .deadline = t.deadline,
                        .jitter = 0,
                        .priority = t.priority,
                        .release_cost = 0,
                        .check = true,
                        .id = t.id});
  }
  return AnalyzeCore(v).schedulable;
}

}  // namespace sps::analysis
