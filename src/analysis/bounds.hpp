#pragma once
// Closed-form fixed-priority schedulability bounds used as fast admission
// tests inside the bin-packing partitioners (and as the fill threshold of
// the SPA/FP-TS algorithms, whose design goal is precisely to achieve the
// Liu & Layland bound on every core).

#include <cstddef>
#include <span>

namespace sps::analysis {

/// Liu & Layland (1973): n tasks are RM-schedulable on one processor if
/// their total utilization is at most n(2^(1/n) - 1). Monotonically
/// decreasing in n, limit ln 2 ~= 0.693.
double LiuLaylandBound(std::size_t n);

/// ln 2, the n -> infinity limit of the bound; the per-core fill threshold
/// FP-TS style algorithms can guarantee regardless of task count.
inline constexpr double kLiuLaylandLimit = 0.6931471805599453;

/// Sufficient L&L utilization test for RM on one core.
bool LiuLaylandTest(std::span<const double> utilizations);

/// Bini & Buttazzo's hyperbolic bound (2003): RM-schedulable if
/// prod (u_i + 1) <= 2. Strictly dominates the L&L test.
bool HyperbolicTest(std::span<const double> utilizations);

}  // namespace sps::analysis
