#pragma once
// EDF schedulability analysis — the dynamic-priority counterpart of
// rta.hpp. The paper (§2) notes its scheduler "can be easily extended to
// support a wide range of semi-partitioned algorithms based on both
// fixed-priority and EDF scheduling"; this module provides the analysis
// side of that extension (the runtime side is sim/'s EDF policy, the
// partitioning side is partition/edf_wm.hpp).
//
// Tooling:
//   * demand bound function dbf(tau, t), with optional release jitter —
//     the standard sporadic-task demand of jobs released AND due within
//     an interval of length t (Baruah/Mok/Rosier);
//   * the processor-demand criterion: a constrained-deadline task set is
//     EDF-schedulable on one core iff sum dbf_i(t) <= t for all t up to a
//     bounded horizon (we use the busy-period / utilization-slack bound,
//     checking only deadline points — the QPA-style exact test);
//   * split-task windows are modeled per EDF-WM's ORIGINAL per-window
//     analysis: window j is a plain sporadic (B_j, T, window length) task
//     with zero jitter (partition/edf_wm.hpp documents the
//     assume-guarantee induction that makes this sound). The jitter field
//     remains for genuinely jittered workloads — it is no longer used to
//     (doubly, conservatively) widen split-window demand;
//   * overhead-aware inflation mirroring overhead_aware.hpp: per-job
//     release, scheduling, context-switch, finish and CPMD charges are
//     folded into the demand.

#include <cstddef>
#include <span>
#include <vector>

#include "overhead/model.hpp"
#include "rt/task.hpp"
#include "rt/time.hpp"

namespace sps::analysis {

/// One task (or split-task window) on an EDF core.
struct EdfTask {
  Time wcet = 0;      ///< possibly inflated C'
  Time period = 0;    ///< minimum inter-arrival
  Time deadline = 0;  ///< relative deadline (constrained: D <= T)
  Time jitter = 0;    ///< release jitter (subtask chains)
  bool check = true;  ///< participate in the demand (always true for EDF;
                      ///< kept for symmetry with RtaTask)
  rt::TaskId id = 0;
};

/// Demand of one task in any interval of length t: jobs that are both
/// released and due inside the interval, worst case over alignments.
/// With jitter J the window effectively widens: floor((t + J - D)/T) + 1
/// jobs (clamped at 0).
Time Dbf(const EdfTask& task, Time t);

/// Total utilization of the core's tasks (inflated WCETs).
double EdfUtilization(std::span<const EdfTask> tasks);

struct EdfResult {
  bool schedulable = false;
  /// First interval length where demand exceeded supply (diagnostics);
  /// 0 when schedulable.
  Time violation_at = 0;
  /// The horizon up to which demand was checked.
  Time horizon = 0;
};

/// Exact processor-demand test for constrained-deadline sporadic tasks on
/// one EDF core. Returns unschedulable immediately if utilization > 1.
/// `max_horizon` caps the analysis effort (defaults to 1s); demand points
/// beyond the theoretical bound min(busy-period, slack bound) are never
/// tested, so the cap only matters for pathological parameter choices —
/// if the cap is hit before the bound, the test conservatively fails.
EdfResult EdfDemandTest(std::span<const EdfTask> tasks,
                        Time max_horizon = kSecond);

/// Convenience: plain task-set fragment, no jitter, no overheads.
bool EdfSchedulable(std::span<const rt::Task> tasks);

/// Overhead-aware inflation for an EDF core. Every job is charged its
/// release path (timer variant: sleep-del + release() + ready-add, or the
/// scheduler trigger for migrated-in subtasks), two scheduler passes, a
/// context-switch in, the matching finish path (normal sleep / remote
/// ready insert / remote sleep insert), and CPMD exactly as in the
/// fixed-priority inflation (overhead_aware.hpp); under EDF a job arrival
/// preempts at most one running job, so the same per-arrival victim
/// charges are sound.
struct EdfCoreEntry {
  Time exec = 0;
  Time period = 0;
  Time deadline = 0;  ///< window deadline for split parts, else task D
  Time jitter = 0;
  /// Reuses the fixed-priority entry kinds (normal/body/tail semantics
  /// are policy-independent).
  int kind = 0;  ///< static_cast<int>(EntryKind)
  std::size_t dest_queue_size = 4;
  std::size_t first_core_queue_size = 4;
  rt::TaskId id = 0;
};

std::vector<EdfTask> InflateEdfCore(std::span<const EdfCoreEntry> entries,
                                    const overhead::OverheadModel& model,
                                    std::size_t n_local = 0);

}  // namespace sps::analysis
