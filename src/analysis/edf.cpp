#include "analysis/edf.hpp"

#include <algorithm>
#include <cmath>

#include "analysis/overhead_aware.hpp"

namespace sps::analysis {

Time Dbf(const EdfTask& task, Time t) {
  const Time effective = t + task.jitter - task.deadline;
  if (effective < 0) return 0;
  return (effective / task.period + 1) * task.wcet;
}

double EdfUtilization(std::span<const EdfTask> tasks) {
  double u = 0.0;
  for (const EdfTask& t : tasks) {
    u += static_cast<double>(t.wcet) / static_cast<double>(t.period);
  }
  return u;
}

EdfResult EdfDemandTest(std::span<const EdfTask> tasks, Time max_horizon) {
  EdfResult res;
  if (tasks.empty()) {
    res.schedulable = true;
    return res;
  }
  const double u = EdfUtilization(tasks);
  if (u > 1.0 + 1e-12) return res;

  // Demand needs checking only up to the utilization-slack bound
  // L_a = sum u_i (T_i - D_i + J_i) / (1 - U), and no earlier than the
  // first absolute deadline.
  Time horizon = 0;
  if (u < 1.0 - 1e-9) {
    double la = 0.0;
    for (const EdfTask& t : tasks) {
      const double ui =
          static_cast<double>(t.wcet) / static_cast<double>(t.period);
      la += ui * static_cast<double>(t.period - t.deadline + t.jitter);
    }
    la /= (1.0 - u);
    horizon = static_cast<Time>(la) + 1;
  } else {
    // U == 1: the theoretical bound is the hyperperiod; fall back to the
    // configured cap (conservatively fail if demand keeps fitting only
    // because we stopped looking — handled below by requiring the bound
    // to fit the cap).
    horizon = max_horizon;
  }
  for (const EdfTask& t : tasks) {
    horizon = std::max(horizon, t.deadline - t.jitter);
  }
  const bool capped = horizon > max_horizon && u >= 1.0 - 1e-9;
  horizon = std::min(horizon, max_horizon);
  res.horizon = horizon;

  // Check every absolute-deadline point up to the horizon.
  std::vector<Time> points;
  for (const EdfTask& t : tasks) {
    for (Time d = t.deadline - t.jitter; d <= horizon; d += t.period) {
      if (d > 0) points.push_back(d);
      if (d > horizon - t.period) break;  // avoid overflow on huge T
    }
  }
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());

  for (const Time t : points) {
    Time demand = 0;
    for (const EdfTask& task : tasks) demand += Dbf(task, t);
    if (demand > t) {
      res.violation_at = t;
      return res;
    }
  }
  if (capped) {
    // Demand fit everywhere we looked, but the sound bound exceeded the
    // cap: reject conservatively.
    return res;
  }
  res.schedulable = true;
  return res;
}

bool EdfSchedulable(std::span<const rt::Task> tasks) {
  std::vector<EdfTask> v;
  v.reserve(tasks.size());
  for (const rt::Task& t : tasks) {
    v.push_back(EdfTask{.wcet = t.wcet,
                        .period = t.period,
                        .deadline = t.deadline,
                        .jitter = 0,
                        .check = true,
                        .id = t.id});
  }
  return EdfDemandTest(v).schedulable;
}

std::vector<EdfTask> InflateEdfCore(std::span<const EdfCoreEntry> entries,
                                    const overhead::OverheadModel& model,
                                    std::size_t n_local) {
  if (n_local == 0) n_local = entries.size();
  std::vector<EdfTask> out;
  out.reserve(entries.size());
  for (const EdfCoreEntry& e : entries) {
    // Reuse the fixed-priority inflation arithmetic via a CoreEntry
    // facade; the per-job charges are policy-independent.
    CoreEntry fp;
    fp.exec = e.exec;
    fp.period = e.period;
    fp.deadline = e.deadline;
    fp.kind = static_cast<EntryKind>(e.kind);
    fp.dest_queue_size = e.dest_queue_size;
    fp.first_core_queue_size = e.first_core_queue_size;
    fp.id = e.id;
    Time c = InflatedExec(fp, model, n_local);
    // Demand analysis has no separate per-arrival interference term, so
    // the release-path cost is folded straight into the job's demand.
    const bool migrated = fp.kind == EntryKind::kBodyMiddle ||
                          fp.kind == EntryKind::kTail;
    c += migrated ? model.sched_overhead(n_local, true)
                  : model.release_overhead(n_local);
    out.push_back(EdfTask{.wcet = c,
                          .period = e.period,
                          .deadline = e.deadline,
                          .jitter = e.jitter,
                          .check = true,
                          .id = e.id});
  }
  return out;
}

}  // namespace sps::analysis
