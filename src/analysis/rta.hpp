#pragma once
// Exact response-time analysis (RTA) for preemptive fixed-priority
// scheduling on one core (Joseph & Pandya / Audsley et al.), extended with
// the two features the semi-partitioned setting needs:
//
//   * release jitter — subtasks of a split task are released when the
//     previous subtask exhausts its budget on another core, which wanders
//     within a bounded window; jitter J models that (interference term
//     ceil((R + J_j)/T_j), deadline condition R + J_i <= D_i);
//
//   * per-task release overhead — in the paper's scheduler EVERY job
//     release on a core (even of a lower-priority task) executes
//     release() + a ready-queue insert on that core, delaying whatever
//     runs. RtaTask::release_cost is charged once per arrival of every
//     task on the core, regardless of priority, mirroring how release
//     interrupts behave (Figure 1's "rls" segment).

#include <cstddef>
#include <span>
#include <vector>

#include "rt/task.hpp"
#include "rt/time.hpp"

namespace sps::analysis {

struct RtaTask {
  Time wcet = 0;      ///< possibly overhead-inflated C'
  Time period = 0;
  Time deadline = 0;  ///< relative, measured from nominal release
  Time jitter = 0;    ///< release jitter J
  rt::Priority priority = 0;  ///< lower value = higher priority
  Time release_cost = 0;  ///< charged per arrival to every analysis below
  /// Interference-only entries (e.g. a subtask budget that merely steals
  /// time on this core) contribute interference but are not themselves
  /// checked against a deadline here.
  bool check = true;
  rt::TaskId id = 0;
};

struct RtaResult {
  bool schedulable = false;
  /// Worst-case response times (from actual release), one per input task;
  /// kTimeNever where the fixpoint exceeded the deadline and was abandoned.
  std::vector<Time> response;
  /// Index of the first task that failed, or SIZE_MAX if none.
  std::size_t first_failure = SIZE_MAX;
};

/// Worst-case response time of tasks[index] among all tasks on the core.
/// Returns kTimeNever if the fixpoint exceeds `limit` (divergence guard;
/// pass the deadline budget: D_i - J_i).
/// Precondition: single-job analysis is only exact while a job finishes
/// before its successor arrives (D <= T); use ResponseTimeArbitrary for
/// arbitrary deadlines.
Time ResponseTime(std::span<const RtaTask> tasks, std::size_t index,
                  Time limit);

/// Worst-case response time for ARBITRARY deadlines (D may exceed T):
/// Lehoczky's busy-window analysis. Examines every job instance inside
/// the level-i busy window; successive jobs of the same task can overlap
/// in backlog, which the single-job fixpoint misses. Falls back to the
/// same result as ResponseTime when the busy window contains one job.
/// Returns kTimeNever if the busy window (or any instance's response)
/// exceeds `limit` — pass a generous cap, e.g. 64 * period.
/// The paper's reference [1] (Andersson/Bletsas/Baruah 2008) is exactly
/// semi-partitioning for this task class, so the analysis layer supports
/// it even though the PPES evaluation sticks to implicit deadlines.
Time ResponseTimeArbitrary(std::span<const RtaTask> tasks,
                           std::size_t index, Time limit);

/// Full-core analysis: every task with check=true must satisfy
/// R_i + J_i <= D_i.
RtaResult AnalyzeCore(std::span<const RtaTask> tasks);

/// Convenience: exact RTA schedulability of a plain task set fragment
/// (no jitter, no overheads); priorities must be assigned.
bool RtaSchedulable(std::span<const rt::Task> tasks);

}  // namespace sps::analysis
