#include "analysis/overhead_aware.hpp"

namespace sps::analysis {

namespace {

Time FinishCost(const CoreEntry& e, const overhead::OverheadModel& m,
                std::size_t n_local) {
  switch (e.kind) {
    case EntryKind::kNormal:
      return m.finish_overhead_normal(n_local);
    case EntryKind::kBodyFirst:
    case EntryKind::kBodyMiddle:
      return m.migrate_overhead(e.dest_queue_size);
    case EntryKind::kTail:
      return m.finish_overhead_tail(e.first_core_queue_size);
  }
  return 0;
}

bool ArrivesByMigration(EntryKind k) {
  return k == EntryKind::kBodyMiddle || k == EntryKind::kTail;
}

}  // namespace

Time InflatedExec(const CoreEntry& e, const overhead::OverheadModel& m,
                  std::size_t n_local) {
  Time c = e.exec;
  // Start-path scheduling (with possible preemption handling) + switch in.
  c += m.sched_overhead(n_local, /*preemption=*/true);
  c += m.ctxsw_in_overhead();
  // Finish-path scheduling + the appropriate cnt2 case.
  c += m.sched_overhead(n_local, /*preemption=*/false);
  c += FinishCost(e, m, n_local);
  // This entry's arrival can preempt a lower-priority task, which then
  // pays a local CPMD on resume; charge it to the preemptor (conservative,
  // charged per arrival via the RTA interference sum).
  c += m.cpmd(/*migration=*/false);
  // The preempted victim is also re-dispatched later: one extra scheduler
  // pass + switch-in per preemption, likewise charged to the preemptor.
  c += m.sched_overhead(n_local, /*preemption=*/false);
  c += m.ctxsw_in_overhead();
  // A migrated-in subtask resumes with a cold private cache.
  if (ArrivesByMigration(e.kind)) c += m.cpmd(/*migration=*/true);
  return c;
}

std::vector<RtaTask> InflateCore(std::span<const CoreEntry> entries,
                                 const overhead::OverheadModel& model,
                                 std::size_t n_local) {
  if (n_local == 0) n_local = entries.size();
  std::vector<RtaTask> out;
  out.reserve(entries.size());
  for (const CoreEntry& e : entries) {
    RtaTask t;
    t.wcet = InflatedExec(e, model, n_local);
    t.period = e.period;
    t.deadline = e.deadline;
    t.jitter = e.jitter;
    t.priority = e.priority;
    // Timer releases run release() + a local ready-queue insert here;
    // migration arrivals were inserted by the source core but still
    // trigger this core's scheduler.
    t.release_cost = ArrivesByMigration(e.kind)
                         ? model.sched_overhead(n_local, true)
                         : model.release_overhead(n_local);
    t.check = e.check;
    t.id = e.id;
    out.push_back(t);
  }
  return out;
}

RtaResult AnalyzeCoreWithOverheads(std::span<const CoreEntry> entries,
                                   const overhead::OverheadModel& model,
                                   std::size_t n_local) {
  const std::vector<RtaTask> inflated = InflateCore(entries, model, n_local);
  return AnalyzeCore(inflated);
}

}  // namespace sps::analysis
