#include "analysis/memo.hpp"

#include <algorithm>
#include <bit>
#include <mutex>

#include "util/rng.hpp"

namespace sps::analysis {

namespace {

// Independent base seeds for the lo/hi halves of every code family.
// Arbitrary odd constants; what matters is that the two halves of a
// code come from decorrelated DeriveSeed chains.
constexpr std::uint64_t kEdfLo = 0x5a75c3b1e0f9d247ull;
constexpr std::uint64_t kEdfHi = 0x9d86a4f17c3e5b09ull;
constexpr std::uint64_t kFpLo = 0x3c1f8e6b5a29d471ull;
constexpr std::uint64_t kFpHi = 0xe7b2d905f16c83a5ull;
constexpr std::uint64_t kCfgLo = 0x81d3f6a92c5e70b3ull;
constexpr std::uint64_t kCfgHi = 0x4f9b2e8d17a6c035ull;

constexpr std::uint64_t U(Time t) { return static_cast<std::uint64_t>(t); }

// Fold a field list into one 64-bit stream: a DeriveSeed chain where
// each link mixes (accumulator, field, position). The position keeps
// field transpositions (e.g. swapping exec and period) from colliding.
template <std::size_t N>
std::uint64_t Chain(std::uint64_t base, const std::uint64_t (&fields)[N]) {
  std::uint64_t h = base;
  for (std::size_t i = 0; i < N; ++i) {
    h = util::DeriveSeed(h, fields[i], i);
  }
  return h;
}

std::uint64_t ModelChain(std::uint64_t base,
                         const overhead::OverheadModel& m) {
  const std::uint64_t fields[] = {
      U(m.ready_add_local.at_n4),  U(m.ready_add_local.at_n64),
      U(m.ready_add_remote.at_n4), U(m.ready_add_remote.at_n64),
      U(m.ready_del_local.at_n4),  U(m.ready_del_local.at_n64),
      U(m.sleep_add_local.at_n4),  U(m.sleep_add_local.at_n64),
      U(m.sleep_add_remote.at_n4), U(m.sleep_add_remote.at_n64),
      U(m.sleep_del_local.at_n4),  U(m.sleep_del_local.at_n64),
      U(m.release_exec),           U(m.sched_exec),
      U(m.ctxsw_exec),             U(m.cpmd_local),
      U(m.cpmd_migration),         std::bit_cast<std::uint64_t>(m.scale)};
  return Chain(base, fields);
}

}  // namespace

MemoKey EdfEntryCode(const EdfCoreEntry& e) {
  const std::uint64_t fields[] = {e.id,
                                  static_cast<std::uint64_t>(e.kind),
                                  U(e.exec),
                                  U(e.period),
                                  U(e.deadline),
                                  U(e.jitter),
                                  e.dest_queue_size,
                                  e.first_core_queue_size};
  return MemoKey{Chain(kEdfLo, fields), Chain(kEdfHi, fields)};
}

MemoKey FpTaskCode(const rt::Task& t) {
  const std::uint64_t fields[] = {t.id, U(t.wcet), U(t.period),
                                  U(t.deadline), t.priority};
  return MemoKey{Chain(kFpLo, fields), Chain(kFpHi, fields)};
}

MemoKey ZobristOfEdfEntries(std::span<const EdfCoreEntry> es) {
  MemoKey k;
  for (const EdfCoreEntry& e : es) k ^= EdfEntryCode(e);
  return k;
}

MemoKey ZobristOfFpTasks(std::span<const rt::Task> ts) {
  MemoKey k;
  for (const rt::Task& t : ts) k ^= FpTaskCode(t);
  return k;
}

// ---- table -----------------------------------------------------------------

AnalysisMemo::AnalysisMemo(std::size_t entries) {
  const std::size_t cap = std::bit_ceil(std::max<std::size_t>(entries, 1));
  slots_ = std::make_unique<Slot[]>(cap);
  mask_ = cap - 1;
}

std::optional<AnalysisMemo::Verdict> AnalysisMemo::Lookup(
    std::uint64_t slot_hash, const MemoKey& verify) {
  Slot& s = slots_[slot_hash & mask_];
  // Seqlock read: snapshot the sequence, read the words, re-check the
  // sequence. A torn or in-progress publication reads as a miss — the
  // caller just computes the verdict itself.
  const std::uint64_t seq1 = s.seq.load(std::memory_order_acquire);
  if (seq1 < 2 || (seq1 & 1) != 0) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  const std::uint64_t lo = s.lo.load(std::memory_order_relaxed);
  const std::uint64_t hi = s.hi.load(std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_acquire);
  const std::uint64_t seq2 = s.seq.load(std::memory_order_relaxed);
  if (seq2 != seq1 || lo != verify.lo || (hi >> 2) != (verify.hi >> 2)) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return Verdict{.admitted = (hi & 1) != 0, .via_density = (hi & 2) != 0};
}

bool AnalysisMemo::Store(std::uint64_t slot_hash, const MemoKey& verify,
                         Verdict v) {
  Slot& s = slots_[slot_hash & mask_];
  std::uint64_t seq = s.seq.load(std::memory_order_relaxed);
  if ((seq & 1) != 0) return false;  // another writer owns the slot
  // Claim with one CAS (even -> odd); losing the race skips the store —
  // replace-on-collision tolerates dropped publications.
  if (!s.seq.compare_exchange_strong(seq, seq + 1,
                                     std::memory_order_acq_rel,
                                     std::memory_order_relaxed)) {
    return false;
  }
  const std::uint64_t old_lo = s.lo.load(std::memory_order_relaxed);
  const std::uint64_t old_hi = s.hi.load(std::memory_order_relaxed);
  const bool evict =
      seq >= 2 &&
      (old_lo != verify.lo || (old_hi >> 2) != (verify.hi >> 2));
  const std::uint64_t packed = (verify.hi & ~std::uint64_t{3}) |
                               (v.admitted ? 1u : 0u) |
                               (v.via_density ? 2u : 0u);
  s.lo.store(verify.lo, std::memory_order_relaxed);
  s.hi.store(packed, std::memory_order_relaxed);
  s.seq.store(seq + 2, std::memory_order_release);
  stores_.fetch_add(1, std::memory_order_relaxed);
  if (evict) evicts_.fetch_add(1, std::memory_order_relaxed);
  return evict;
}

MemoStats AnalysisMemo::stats() const {
  MemoStats st;
  st.hits = hits_.load(std::memory_order_relaxed);
  st.misses = misses_.load(std::memory_order_relaxed);
  st.stores = stores_.load(std::memory_order_relaxed);
  st.evicts = evicts_.load(std::memory_order_relaxed);
  return st;
}

// ---- shared table + contexts -----------------------------------------------

namespace {
std::mutex g_shared_mu;
std::unique_ptr<AnalysisMemo> g_shared;  // NOLINT: intentional singleton
}  // namespace

AnalysisMemo& SharedMemo(std::size_t entries_hint) {
  const std::lock_guard<std::mutex> lock(g_shared_mu);
  if (!g_shared) g_shared = std::make_unique<AnalysisMemo>(entries_hint);
  return *g_shared;
}

void ResizeSharedMemo(std::size_t entries) {
  const std::lock_guard<std::mutex> lock(g_shared_mu);
  g_shared = std::make_unique<AnalysisMemo>(entries);
}

namespace {

MemoContext MakeContext(const MemoConfig& cfg, std::uint64_t domain,
                        std::uint64_t extra,
                        const overhead::OverheadModel& model) {
  MemoContext ctx;
  if (!cfg.enabled) return ctx;
  ctx.table = cfg.table != nullptr ? cfg.table : &SharedMemo(cfg.entries);
  ctx.cfg_lo = ModelChain(util::DeriveSeed(kCfgLo, domain, extra), model);
  ctx.cfg_hi = ModelChain(util::DeriveSeed(kCfgHi, domain, extra), model);
  return ctx;
}

}  // namespace

MemoContext MakeEdfMemoContext(const MemoConfig& cfg,
                               const overhead::OverheadModel& model) {
  return MakeContext(cfg, /*domain=*/1, /*extra=*/0, model);
}

MemoContext MakeFpMemoContext(const MemoConfig& cfg,
                              const overhead::OverheadModel& model,
                              int admission_kind) {
  return MakeContext(cfg, /*domain=*/2,
                     static_cast<std::uint64_t>(admission_kind), model);
}

MemoKey CombineQuery(const MemoKey& core, const MemoKey& cand,
                     const MemoContext& ctx) {
  // Asymmetric 6-word mix: both halves see all of (resident hash,
  // candidate code, config fingerprint) through differently-ordered
  // DeriveSeed chains, so the two words stay decorrelated and the
  // candidate can never XOR-cancel a resident entry.
  MemoKey k;
  k.lo = util::DeriveSeed(util::DeriveSeed(ctx.cfg_lo, core.lo, cand.lo),
                          core.hi, cand.hi);
  k.hi = util::DeriveSeed(util::DeriveSeed(ctx.cfg_hi, core.hi, cand.hi),
                          core.lo, cand.lo);
  return k;
}

}  // namespace sps::analysis
