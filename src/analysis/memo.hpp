#pragma once
// Memoized schedulability: a Zobrist-keyed, lock-free transposition
// table for analysis verdicts (DESIGN.md §12, ROADMAP item 2).
//
// The demand test / RTA is the hot kernel of every decision path in this
// repo — admission screens, repartition fallbacks, unsplit probes, EDF
// split-window budget searches, and acceptance-sweep partitioning all
// recompute it for per-core resident sets that recur thousands of
// times. Both per-core admission tests are PURE functions of
// (resident entry multiset, candidate entry, overhead model / test
// kind), so their verdicts are safely memoizable — the same trick chess
// engines use for position evaluation:
//
//   * ZOBRIST HASH: every analysis entry (task id, kind, exec, window
//     deadline, ...) gets a 128-bit code from independent
//     splitmix64-derived streams. A core's resident-set hash is the XOR
//     of its entries' codes — XORed in on Commit/Restore and out on
//     Remove/Take, so maintenance is O(1) per entry in the online
//     AdmissionState and recomputable from scratch by the offline
//     partitioners' probe loops (ZobristOfEdfEntries / ZobristOfFpTasks).
//     Codes include the task id, so a legal resident set never holds two
//     identical codes (one entry per task per core) and XOR cancellation
//     cannot alias two reachable states.
//
//   * QUERY KEY: the candidate's code is NOT XORed into the resident
//     hash (that would alias "e resident, probing e" with the empty
//     core); resident hash, candidate code and the config fingerprint
//     (overhead model + test domain) are mixed asymmetrically into a
//     128-bit verification key. The low word doubles as the slot index.
//
//   * TABLE: fixed-size, power-of-two, replace-on-collision. Entries
//     publish via a per-slot seqlock (sequence word + two key/payload
//     words, all std::atomic) — readers detect torn reads by re-checking
//     the sequence, writers claim a slot with one CAS and never block
//     (a lost claim race just skips the store; the verdict was computed
//     anyway). No locks, no waiting, shared across util::SharedPool
//     threads by acceptance sweeps, ReplayBatch and epoch validation.
//
//   * COLLISION SAFETY: a slot hit counts only if the full 126-bit
//     verification key matches — the slot index is never trusted. The
//     1-entry-table differential in tests/test_memo.cpp proves index
//     collisions are survived by key verification alone.
//
// The cached verdict also records WHICH screen decided (density accept
// vs full test), so the AdmitStats decision counters stay bit-identical
// to the uncached path — only the memo_* counters depend on cache state.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>

#include "analysis/edf.hpp"
#include "overhead/model.hpp"
#include "rt/task.hpp"

namespace sps::analysis {

/// 128-bit XOR-combinable hash value (a Zobrist code or an accumulated
/// resident-set hash).
struct MemoKey {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  MemoKey& operator^=(const MemoKey& o) {
    lo ^= o.lo;
    hi ^= o.hi;
    return *this;
  }
  friend bool operator==(const MemoKey&, const MemoKey&) = default;
};

/// Zobrist code of one EDF analysis entry (hashes every field the
/// inflation + demand test read: id, kind, exec, period, window
/// deadline, jitter, queue sizes).
[[nodiscard]] MemoKey EdfEntryCode(const EdfCoreEntry& e);

/// Zobrist code of one fixed-priority resident task (id, C, T, D,
/// priority — everything FpCoreAdmits reads).
[[nodiscard]] MemoKey FpTaskCode(const rt::Task& t);

/// From-scratch resident-set hashes (offline probe loops, tests).
[[nodiscard]] MemoKey ZobristOfEdfEntries(std::span<const EdfCoreEntry> es);
[[nodiscard]] MemoKey ZobristOfFpTasks(std::span<const rt::Task> ts);

/// Global (whole-table) counters — the acceptance sweep has no
/// AdmitStats plumbing, so the CLI reports these snapshots instead.
struct MemoStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;    ///< lookups that found no matching key
  std::uint64_t stores = 0;
  std::uint64_t evicts = 0;    ///< stores that displaced a different live key

  MemoStats& operator-=(const MemoStats& o) {
    hits -= o.hits;
    misses -= o.misses;
    stores -= o.stores;
    evicts -= o.evicts;
    return *this;
  }
  [[nodiscard]] double hit_rate() const {
    const std::uint64_t n = hits + misses;
    return n == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(n);
  }
};

/// The lock-free transposition table. All methods are safe to call
/// concurrently from any number of threads; construction/destruction
/// must be quiescent (no concurrent calls), as usual.
class AnalysisMemo {
 public:
  /// Capacity is rounded up to a power of two (>= 1).
  explicit AnalysisMemo(std::size_t entries);

  /// A cached admission verdict plus which screen produced it (the
  /// stage keeps AdmitStats decision counters cache-oblivious).
  struct Verdict {
    bool admitted = false;
    bool via_density = false;  ///< EDF density screen (else full test)
  };

  /// Probe slot `slot_hash & mask`; a hit requires the stored
  /// verification key to equal `verify` exactly. Torn (mid-publish)
  /// slots read as misses.
  [[nodiscard]] std::optional<Verdict> Lookup(std::uint64_t slot_hash,
                                              const MemoKey& verify);

  /// Publish a verdict (replace-on-collision). Returns true when a
  /// DIFFERENT live key was displaced (an eviction). May silently skip
  /// when racing another writer on the same slot.
  bool Store(std::uint64_t slot_hash, const MemoKey& verify, Verdict v);

  [[nodiscard]] MemoStats stats() const;
  [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }

 private:
  // One slot: seqlock word + verification key with the verdict packed
  // into the low 2 bits of `hi` (the key comparison masks them off, so
  // verification is 126 bits wide). seq == 0 means never written; odd
  // means a writer holds the slot; live slots have even seq >= 2.
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> lo{0};
    std::atomic<std::uint64_t> hi{0};
  };

  std::unique_ptr<Slot[]> slots_;
  std::uint64_t mask_ = 0;

  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> stores_{0};
  std::atomic<std::uint64_t> evicts_{0};
};

/// Memoization knob threaded through AdmissionConfig,
/// EdfPartitionConfig, BinPackConfig and AcceptanceConfig
/// (sps_cli --analysis-cache=off|<N>).
struct MemoConfig {
  bool enabled = true;
  /// Size hint for the process-wide shared table; only the FIRST
  /// resolution creates it (explicitly resizable via ResizeSharedMemo).
  std::size_t entries = kDefaultSharedEntries;
  /// Optional table override (tests/benches isolate their cache here);
  /// null means the shared table.
  AnalysisMemo* table = nullptr;

  static constexpr std::size_t kDefaultSharedEntries = std::size_t{1} << 15;
};

/// The process-wide table every default-config analysis shares; created
/// on first use with `entries_hint` slots.
AnalysisMemo& SharedMemo(
    std::size_t entries_hint = MemoConfig::kDefaultSharedEntries);

/// Replace the shared table (CLI --analysis-cache=<N>). NOT safe while
/// analyses run concurrently — call before starting work.
void ResizeSharedMemo(std::size_t entries);

/// Per-run resolved memoization state: the table (null = off) and the
/// config fingerprint (overhead model + test domain) mixed into every
/// query key so verdicts can never leak across configs. Built once per
/// partitioner run / AdmissionState, passed down the admission tests.
struct MemoContext {
  AnalysisMemo* table = nullptr;
  std::uint64_t cfg_lo = 0;
  std::uint64_t cfg_hi = 0;

  [[nodiscard]] bool active() const { return table != nullptr; }
};

/// EDF demand-test domain: fingerprint = model fields + EDF tag.
[[nodiscard]] MemoContext MakeEdfMemoContext(
    const MemoConfig& cfg, const overhead::OverheadModel& model);

/// Fixed-priority domain: fingerprint additionally folds the admission
/// test kind (LL / hyperbolic / RTA verdicts never alias).
[[nodiscard]] MemoContext MakeFpMemoContext(
    const MemoConfig& cfg, const overhead::OverheadModel& model,
    int admission_kind);

/// The query key for "would `cand` fit on a core whose resident hash is
/// `core`": asymmetric mix of resident hash, candidate code and config
/// fingerprint (NOT an XOR — the candidate must not cancel against an
/// identical resident entry). key.lo doubles as the slot hash.
[[nodiscard]] MemoKey CombineQuery(const MemoKey& core, const MemoKey& cand,
                                   const MemoContext& ctx);

}  // namespace sps::analysis
