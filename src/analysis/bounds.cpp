#include "analysis/bounds.hpp"

#include <cmath>

namespace sps::analysis {

double LiuLaylandBound(std::size_t n) {
  if (n == 0) return 1.0;
  const double nn = static_cast<double>(n);
  return nn * (std::pow(2.0, 1.0 / nn) - 1.0);
}

bool LiuLaylandTest(std::span<const double> utilizations) {
  double sum = 0.0;
  for (double u : utilizations) sum += u;
  return sum <= LiuLaylandBound(utilizations.size()) + 1e-12;
}

bool HyperbolicTest(std::span<const double> utilizations) {
  double prod = 1.0;
  for (double u : utilizations) prod *= (u + 1.0);
  return prod <= 2.0 + 1e-12;
}

}  // namespace sps::analysis
