#pragma once
// Overhead-aware schedulability analysis — the paper's methodological
// contribution (§4): "we integrate the obtained overhead into the
// state-of-the-art partitioned and semi-partitioned scheduling algorithms".
//
// Every scheduler action of the paper's implementation (Figure 1) is
// charged to the analysis as follows, with queue-operation costs taken at
// the actual per-core queue size N (the paper's delta/theta depend on N):
//
//   rls  (release() + ready-queue insert)
//        Charged once per arrival of EVERY entry on the core — a release
//        delays whatever is running regardless of relative priority.
//        -> RtaTask::release_cost, summed over all entries by the RTA.
//        For subtasks that ARRIVE BY MIGRATION the insert was already paid
//        by the source core (part of its cnt2); the destination still runs
//        its scheduler, so such entries carry the sch() cost instead.
//
//   sch  (scheduler invocation: ready-queue pop, preemption handling)
//        Charged to each job twice: once when it starts (release-path
//        sch(), including the possible re-insert of a preempted task) and
//        once when it finishes (finish-path sch()).
//
//   cnt1 (context-switch in: store + load contexts)
//        Charged once per job.
//
//   cnt2 (finish-path context switch; three paper cases)
//        kNormal:     cnt_swth() + LOCAL  sleep-queue insert
//        kBody*:      cnt_swth() + REMOTE ready-queue insert at the
//                     migration destination (destination queue size)
//        kTail:       cnt_swth() + REMOTE sleep-queue insert at the core
//                     hosting the first subtask
//
//   cache (CPMD)
//        A preemption makes the PREEMPTED task reload working set on
//        resume: charged per higher-priority arrival, i.e. added to every
//        interfering entry's inflated cost (standard conservative
//        accounting). Subtasks that arrive by migration additionally pay
//        the migration CPMD once themselves.
//
// With OverheadModel::Zero() all charges vanish and the analysis reduces
// to exact overhead-oblivious RTA — that is how the "theoretical" curves
// of the acceptance-ratio experiment are produced.

#include <cstddef>
#include <span>
#include <vector>

#include "analysis/rta.hpp"
#include "overhead/model.hpp"
#include "rt/task.hpp"
#include "rt/time.hpp"

namespace sps::analysis {

/// How one entry on a core begins and ends its per-period execution there.
enum class EntryKind {
  kNormal,      ///< timer-released here, finishes here (not split)
  kBodyFirst,   ///< first subtask: timer-released here, migrates out
  kBodyMiddle,  ///< arrives by migration, migrates out again
  kTail,        ///< arrives by migration, finishes here
};

/// One task or subtask placed on the core under analysis.
struct CoreEntry {
  Time exec = 0;            ///< uninflated budget (subtask) or WCET (task)
  Time period = 0;
  Time deadline = 0;        ///< full task deadline (chain slack handled by caller)
  rt::Priority priority = 0;  ///< resolved per-core priority, unique
  Time jitter = 0;          ///< release jitter (subtask chains; else 0)
  EntryKind kind = EntryKind::kNormal;
  /// Queue size at the migration destination (kBody* only) — remote
  /// ready-add cost depends on it.
  std::size_t dest_queue_size = 4;
  /// Queue size at the first subtask's core (kTail only) — remote
  /// sleep-add cost depends on it.
  std::size_t first_core_queue_size = 4;
  bool check = true;
  rt::TaskId id = 0;
};

/// Inflate a core's entries per the accounting above. `n_local` is the
/// core's own queue-size parameter N (defaults to the number of entries).
std::vector<RtaTask> InflateCore(std::span<const CoreEntry> entries,
                                 const overhead::OverheadModel& model,
                                 std::size_t n_local = 0);

/// Inflate + exact RTA in one call.
RtaResult AnalyzeCoreWithOverheads(std::span<const CoreEntry> entries,
                                   const overhead::OverheadModel& model,
                                   std::size_t n_local = 0);

/// Inflated cost of one entry (exposed for the Figure-1 bench and tests).
Time InflatedExec(const CoreEntry& e, const overhead::OverheadModel& model,
                  std::size_t n_local);

}  // namespace sps::analysis
