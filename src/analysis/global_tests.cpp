#include "analysis/global_tests.hpp"

#include <algorithm>

namespace sps::analysis {

double GlobalRmAbjBound(unsigned m) {
  const double mm = static_cast<double>(m);
  return mm * mm / (3.0 * mm - 2.0);
}

bool GlobalRmAbjTest(std::span<const rt::Task> tasks, unsigned m) {
  if (m == 0) return tasks.empty();
  const double per_task_cap =
      static_cast<double>(m) / (3.0 * static_cast<double>(m) - 2.0);
  double total = 0.0;
  for (const rt::Task& t : tasks) {
    const double u = t.utilization();
    if (u > per_task_cap + 1e-12) return false;
    total += u;
  }
  return total <= GlobalRmAbjBound(m) + 1e-12;
}

bool GlobalEdfGfbTest(std::span<const rt::Task> tasks, unsigned m) {
  if (m == 0) return tasks.empty();
  double total = 0.0;
  double umax = 0.0;
  for (const rt::Task& t : tasks) {
    const double u = t.utilization();
    total += u;
    umax = std::max(umax, u);
  }
  return total <= static_cast<double>(m) * (1.0 - umax) + umax + 1e-12;
}

rt::TaskSet DhallEffectSet(unsigned m, Time period) {
  // m short tasks: C = 2e*T with tiny e; 1 long task: C = T, T' slightly
  // above T. All short tasks are released together, hog every processor
  // for 2e, and the long task (lowest RM priority) then cannot finish a
  // full period of work by its deadline under global RM.
  rt::TaskSet ts;
  const Time eps = period / 50;  // e = 2% of the period
  for (unsigned i = 0; i < m; ++i) {
    ts.add(rt::MakeTask(static_cast<rt::TaskId>(i), 2 * eps, period));
  }
  ts.add(rt::MakeTask(static_cast<rt::TaskId>(m), period, period + eps));
  rt::AssignRateMonotonic(ts);
  return ts;
}

}  // namespace sps::analysis
