#pragma once
// Red-black tree — the sleep-queue data structure of the semi-partitioned
// scheduler (Zhang/Guan/Yi, PPES 2011, Section 2: "the sleep queue is
// implemented by a red-black tree").
//
// The sleep queue stores inactive tasks keyed by their next release
// (wake-up) time; the scheduler repeatedly asks for the earliest wake-up.
// This is a multimap: duplicate keys are allowed (two tasks may wake at the
// same instant) and are ordered FIFO among equals (a new duplicate is
// inserted after existing equal keys).
//
// Operations (n = queue size):
//   insert    O(log n)  -> stable handle
//   min/top   O(log n)  (leftmost node)
//   pop_min   O(log n)
//   erase     O(log n)  by handle; all other handles stay valid
//   find_ge   O(log n)  first element with key >= k
//
// Implementation: classic CLRS red-black tree with a per-tree nil sentinel.
// Erase-by-handle uses pointer transplanting (never copies values between
// nodes), so handles other than the erased one are never invalidated.

#include <cassert>
#include <cstddef>
#include <functional>
#include <utility>

#include "util/arena.hpp"

namespace sps::containers {

template <typename Key, typename T, typename Compare = std::less<Key>>
class RbTree {
 public:
  enum class Color : unsigned char { kRed, kBlack };

  struct Node {
    Key key;
    T value;
    Node* left;
    Node* right;
    Node* parent;
    Color color = Color::kRed;

    Node(Key k, T v, Node* nil)
        : key(std::move(k)), value(std::move(v)),
          left(nil), right(nil), parent(nil) {}
    // Sentinel constructor.
    Node() : key(), value(), left(this), right(this), parent(this),
             color(Color::kBlack) {}
  };

  /// Stable identifier for an inserted element.
  using handle = Node*;

  RbTree() : nil_(arena_.create()), root_(nil_) {}
  explicit RbTree(Compare cmp)
      : cmp_(std::move(cmp)), nil_(arena_.create()), root_(nil_) {}

  RbTree(const RbTree&) = delete;
  RbTree& operator=(const RbTree&) = delete;

  RbTree(RbTree&& other) noexcept
      : cmp_(std::move(other.cmp_)),
        arena_(std::move(other.arena_)),
        nil_(std::exchange(other.nil_, nullptr)),
        root_(std::exchange(other.root_, nullptr)),
        size_(std::exchange(other.size_, 0)) {
    // Re-arm the moved-from tree (fresh arena, fresh sentinel) so it
    // stays usable.
    other.nil_ = other.arena_.create();
    other.root_ = other.nil_;
  }

  ~RbTree() {
    clear();
    if (nil_ != nullptr) arena_.destroy(nil_);
  }

  [[nodiscard]] bool empty() const noexcept { return root_ == nil_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Insert (key, value); duplicates allowed, placed after equal keys.
  handle insert(Key key, T value) {
    Node* z = arena_.create(std::move(key), std::move(value), nil_);
    Node* y = nil_;
    Node* x = root_;
    while (x != nil_) {
      y = x;
      x = cmp_(z->key, x->key) ? x->left : x->right;
    }
    z->parent = y;
    if (y == nil_) {
      root_ = z;
    } else if (cmp_(z->key, y->key)) {
      y->left = z;
    } else {
      y->right = z;
    }
    insert_fixup(z);
    ++size_;
    return z;
  }

  /// Leftmost (minimum-key) element. Precondition: !empty().
  [[nodiscard]] handle min_handle() const {
    assert(!empty());
    return subtree_min(root_);
  }

  [[nodiscard]] const Key& min_key() const { return min_handle()->key; }
  [[nodiscard]] const T& min_value() const { return min_handle()->value; }

  /// Remove the minimum element and return its (key, value).
  std::pair<Key, T> pop_min() {
    Node* m = min_handle();
    std::pair<Key, T> out{std::move(m->key), std::move(m->value)};
    erase_node(m);
    return out;
  }

  /// Remove an arbitrary element by handle; other handles stay valid.
  T erase(handle h) {
    assert(h != nullptr && h != nil_);
    T out = std::move(h->value);
    erase_node(h);
    return out;
  }

  /// First element with key not less than k, or nullptr if none.
  [[nodiscard]] handle find_ge(const Key& k) const {
    Node* best = nullptr;
    Node* x = root_;
    while (x != nil_) {
      if (!cmp_(x->key, k)) {  // x->key >= k
        best = x;
        x = x->left;
      } else {
        x = x->right;
      }
    }
    return best;
  }

  /// In-order successor of h, or nullptr at the end.
  [[nodiscard]] handle next(handle h) const {
    if (h->right != nil_) return subtree_min(h->right);
    Node* p = h->parent;
    while (p != nil_ && h == p->right) {
      h = p;
      p = p->parent;
    }
    return p == nil_ ? nullptr : p;
  }

  void clear() noexcept {
    destroy_subtree(root_);
    root_ = nil_;
    size_ = 0;
  }

  /// Structural self-check used by the test suite. Verifies the red-black
  /// invariants: root is black, no red node has a red child, every
  /// root-to-leaf path has the same black height, BST order holds, and the
  /// node count matches size().
  [[nodiscard]] bool validate() const {
    if (root_->color != Color::kBlack) return false;
    std::size_t counted = 0;
    const int bh = check_subtree(root_, counted);
    return bh >= 0 && counted == size_;
  }

 private:
  [[nodiscard]] Node* subtree_min(Node* x) const {
    while (x->left != nil_) x = x->left;
    return x;
  }

  void left_rotate(Node* x) noexcept {
    Node* y = x->right;
    x->right = y->left;
    if (y->left != nil_) y->left->parent = x;
    y->parent = x->parent;
    if (x->parent == nil_) {
      root_ = y;
    } else if (x == x->parent->left) {
      x->parent->left = y;
    } else {
      x->parent->right = y;
    }
    y->left = x;
    x->parent = y;
  }

  void right_rotate(Node* x) noexcept {
    Node* y = x->left;
    x->left = y->right;
    if (y->right != nil_) y->right->parent = x;
    y->parent = x->parent;
    if (x->parent == nil_) {
      root_ = y;
    } else if (x == x->parent->right) {
      x->parent->right = y;
    } else {
      x->parent->left = y;
    }
    y->right = x;
    x->parent = y;
  }

  void insert_fixup(Node* z) noexcept {
    while (z->parent->color == Color::kRed) {
      if (z->parent == z->parent->parent->left) {
        Node* uncle = z->parent->parent->right;
        if (uncle->color == Color::kRed) {
          z->parent->color = Color::kBlack;
          uncle->color = Color::kBlack;
          z->parent->parent->color = Color::kRed;
          z = z->parent->parent;
        } else {
          if (z == z->parent->right) {
            z = z->parent;
            left_rotate(z);
          }
          z->parent->color = Color::kBlack;
          z->parent->parent->color = Color::kRed;
          right_rotate(z->parent->parent);
        }
      } else {
        Node* uncle = z->parent->parent->left;
        if (uncle->color == Color::kRed) {
          z->parent->color = Color::kBlack;
          uncle->color = Color::kBlack;
          z->parent->parent->color = Color::kRed;
          z = z->parent->parent;
        } else {
          if (z == z->parent->left) {
            z = z->parent;
            right_rotate(z);
          }
          z->parent->color = Color::kBlack;
          z->parent->parent->color = Color::kRed;
          left_rotate(z->parent->parent);
        }
      }
    }
    root_->color = Color::kBlack;
  }

  void transplant(Node* u, Node* v) noexcept {
    if (u->parent == nil_) {
      root_ = v;
    } else if (u == u->parent->left) {
      u->parent->left = v;
    } else {
      u->parent->right = v;
    }
    v->parent = u->parent;
  }

  void erase_node(Node* z) noexcept {
    Node* y = z;
    Color y_original = y->color;
    Node* x = nil_;
    if (z->left == nil_) {
      x = z->right;
      transplant(z, z->right);
    } else if (z->right == nil_) {
      x = z->left;
      transplant(z, z->left);
    } else {
      y = subtree_min(z->right);
      y_original = y->color;
      x = y->right;
      if (y->parent == z) {
        x->parent = y;  // matters when x == nil_
      } else {
        transplant(y, y->right);
        y->right = z->right;
        y->right->parent = y;
      }
      transplant(z, y);
      y->left = z->left;
      y->left->parent = y;
      y->color = z->color;
    }
    arena_.destroy(z);
    --size_;
    if (y_original == Color::kBlack) erase_fixup(x);
    nil_->parent = nil_;  // scrub any sentinel-parent left by the fixup
  }

  void erase_fixup(Node* x) noexcept {
    while (x != root_ && x->color == Color::kBlack) {
      if (x == x->parent->left) {
        Node* w = x->parent->right;
        if (w->color == Color::kRed) {
          w->color = Color::kBlack;
          x->parent->color = Color::kRed;
          left_rotate(x->parent);
          w = x->parent->right;
        }
        if (w->left->color == Color::kBlack &&
            w->right->color == Color::kBlack) {
          w->color = Color::kRed;
          x = x->parent;
        } else {
          if (w->right->color == Color::kBlack) {
            w->left->color = Color::kBlack;
            w->color = Color::kRed;
            right_rotate(w);
            w = x->parent->right;
          }
          w->color = x->parent->color;
          x->parent->color = Color::kBlack;
          w->right->color = Color::kBlack;
          left_rotate(x->parent);
          x = root_;
        }
      } else {
        Node* w = x->parent->left;
        if (w->color == Color::kRed) {
          w->color = Color::kBlack;
          x->parent->color = Color::kRed;
          right_rotate(x->parent);
          w = x->parent->left;
        }
        if (w->right->color == Color::kBlack &&
            w->left->color == Color::kBlack) {
          w->color = Color::kRed;
          x = x->parent;
        } else {
          if (w->left->color == Color::kBlack) {
            w->right->color = Color::kBlack;
            w->color = Color::kRed;
            left_rotate(w);
            w = x->parent->left;
          }
          w->color = x->parent->color;
          x->parent->color = Color::kBlack;
          w->left->color = Color::kBlack;
          right_rotate(x->parent);
          x = root_;
        }
      }
    }
    x->color = Color::kBlack;
  }

  void destroy_subtree(Node* n) noexcept {
    if (n == nil_) return;
    destroy_subtree(n->left);
    destroy_subtree(n->right);
    arena_.destroy(n);
  }

  /// Returns black height of the subtree, or -1 on any invariant violation.
  int check_subtree(const Node* n, std::size_t& counted) const {
    if (n == nil_) return 0;
    ++counted;
    if (n->color == Color::kRed &&
        (n->left->color == Color::kRed || n->right->color == Color::kRed)) {
      return -1;
    }
    if (n->left != nil_ && cmp_(n->key, n->left->key)) return -1;
    if (n->right != nil_ && cmp_(n->right->key, n->key)) return -1;
    const int lh = check_subtree(n->left, counted);
    const int rh = check_subtree(n->right, counted);
    if (lh < 0 || rh < 0 || lh != rh) return -1;
    return lh + (n->color == Color::kBlack ? 1 : 0);
  }

  [[no_unique_address]] Compare cmp_{};
  /// Node storage: slab/free-list arena (util/arena.hpp); also hosts the
  /// nil sentinel. Declared before nil_/root_ — the constructors carve
  /// the sentinel out of it.
  util::SlabArena<Node> arena_;
  Node* nil_;
  Node* root_;
  std::size_t size_ = 0;
};

}  // namespace sps::containers
