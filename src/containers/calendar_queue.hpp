#pragma once
// Calendar queue — the bucketed event-queue structure of discrete-event
// simulation (R. Brown, CACM 1988), behind the same KeyedMinQueue
// contract as every other scheduler queue (DESIGN.md §4). Time is hashed
// into an array of "days": bucket(key) = (key / width) % num_buckets.
// When the bucket width matches the typical key spacing, push and
// pop_min touch O(1) elements — the reason calendar queues dominate
// binary/binomial heaps as THE event queue of large simulations, and the
// ROADMAP's "kernel fast path" candidate (the event priority-queue
// dominates sim throughput at large core counts).
//
// Contract fit:
//   * nodes are individually arena-allocated and never move, so the node
//     pointer is a stable handle (erase(h) never invalidates others);
//   * FIFO among equal keys via an insertion sequence number; min
//     selection uses the (key, seq) total order, so whole simulations
//     stay bit-identical against every other backend;
//   * counters() / validate() as everywhere else.
//
// Bucket-width policy (DESIGN.md §8): the bucket count follows the live
// size between resize thresholds (grow to 2N buckets when size > 2N,
// shrink to N/2 when size < N/2 — factor-2 hysteresis, so churn around a
// steady size never thrashes). Every resize walks all nodes anyway, so
// the width is recomputed there from the observed key span:
// width = span / size + 1, i.e. ~one element per bucket-day. Resizes are
// O(n) but amortize against the Ω(n) pushes/pops between thresholds.
//
// pop_min scans days forward from the last-known minimum day (a floor
// maintained on every push of a smaller key). The scan is lazy about
// empty buckets (PR 3): the queue tracks its non-empty bucket count,
// every node inspected during the day scan feeds a running "best seen"
// candidate, and the moment all non-empty buckets have been visited the
// candidate IS the minimum — so a sparse population (width
// mis-estimation, the classical calendar failure mode) costs at most
// one partial round instead of a full empty round PLUS a second
// direct-search rescan as before. The found minimum is cached until a
// smaller push / pop / erase invalidates it, so
// min_key()/min_value()/pop_min() triples cost one search.
//
// Keys must be non-negative integers (days are key/width); the scheduler
// keys all qualify: priorities, absolute deadlines, wake-up times, and
// the kernel's packed (t << 2 | rank) event keys.

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "containers/op_counters.hpp"
#include "util/arena.hpp"

namespace sps::containers {

template <typename Key, typename Value, typename Less = std::less<Key>>
class CalendarQueue {
  static_assert(std::is_integral_v<Key>,
                "calendar buckets need integer keys (days are key/width)");
  static_assert(std::is_same_v<Less, std::less<Key>>,
                "calendar bucketing assumes the natural numeric order");

  struct Node {
    Node* prev = nullptr;
    Node* next = nullptr;
    Key key{};
    std::uint64_t seq = 0;
    Value value{};
  };

 public:
  using key_type = Key;
  using mapped_type = Value;
  using handle = Node*;

  CalendarQueue() { buckets_.resize(kInitialBuckets, nullptr); }
  CalendarQueue(const CalendarQueue&) = delete;
  CalendarQueue& operator=(const CalendarQueue&) = delete;
  CalendarQueue(CalendarQueue&&) noexcept = default;

  ~CalendarQueue() {
    for (Node* head : buckets_) {
      for (Node* n = head; n != nullptr;) {
        Node* next = n->next;
        arena_.destroy(n);
        n = next;
      }
    }
  }

  handle push(Key key, Value value) {
    if constexpr (std::is_signed_v<Key>) assert(key >= 0);
    Node* n = arena_.create();
    n->key = key;
    n->seq = ++seq_;
    n->value = std::move(value);
    Link(n);
    ++size_;
    ++counters_.pushes;
    const std::uint64_t d = DayOf(key);
    if (size_ == 1 || d < cur_day_) cur_day_ = d;
    // Only a LIVE cache may be updated: when it was invalidated by a
    // pop/erase, a new non-minimal node must not masquerade as the min.
    if (size_ == 1 || (min_node_ != nullptr && BeforeMin(n))) {
      min_node_ = n;
    }
    if (size_ > 2 * buckets_.size()) Resize(2 * buckets_.size());
    return n;
  }

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }

  [[nodiscard]] const Key& min_key() const { return FindMin()->key; }
  [[nodiscard]] const Value& min_value() const { return FindMin()->value; }

  std::pair<Key, Value> pop_min() {
    Node* m = FindMin();
    // The minimum's day is a valid scan floor for everything that remains.
    cur_day_ = DayOf(m->key);
    Unlink(m);
    min_node_ = nullptr;
    --size_;
    ++counters_.pops;
    std::pair<Key, Value> out{m->key, std::move(m->value)};
    arena_.destroy(m);
    MaybeShrink();
    return out;
  }

  Value erase(handle h) {
    assert(h != nullptr);
    Unlink(h);
    if (h == min_node_) min_node_ = nullptr;
    --size_;
    ++counters_.erases;
    Value out = std::move(h->value);
    arena_.destroy(h);
    MaybeShrink();
    return out;
  }

  [[nodiscard]] const QueueOpCounters& counters() const { return counters_; }

  [[nodiscard]] bool validate() const {
    std::size_t counted = 0;
    std::size_t counted_nonempty = 0;
    const Node* true_min = nullptr;
    for (std::size_t b = 0; b < buckets_.size(); ++b) {
      if (buckets_[b] != nullptr) ++counted_nonempty;
      for (const Node* n = buckets_[b]; n != nullptr; n = n->next) {
        if constexpr (std::is_signed_v<Key>) {
          if (n->key < 0) return false;
        }
        if (BucketOf(n->key) != b) return false;
        if (n->next != nullptr && n->next->prev != n) return false;
        if (n->prev == nullptr && buckets_[b] != n) return false;
        if (DayOf(n->key) < cur_day_) return false;  // scan-floor invariant
        if (true_min == nullptr || n->key < true_min->key ||
            (n->key == true_min->key && n->seq < true_min->seq)) {
          true_min = n;
        }
        ++counted;
      }
    }
    if (counted != size_) return false;
    if (counted_nonempty != nonempty_buckets_) return false;
    if (min_node_ != nullptr && min_node_ != true_min) return false;
    return width_ >= 1;
  }

  /// Introspection for the resizing-policy tests.
  [[nodiscard]] std::size_t num_buckets() const { return buckets_.size(); }
  [[nodiscard]] Key bucket_width() const { return width_; }

 private:
  static constexpr std::size_t kInitialBuckets = 8;

  [[nodiscard]] std::uint64_t DayOf(Key key) const {
    return static_cast<std::uint64_t>(key) /
           static_cast<std::uint64_t>(width_);
  }

  [[nodiscard]] std::size_t BucketOf(Key key) const {
    return static_cast<std::size_t>(DayOf(key) % buckets_.size());
  }

  [[nodiscard]] bool BeforeMin(const Node* n) const {
    return n->key < min_node_->key ||
           (n->key == min_node_->key && n->seq < min_node_->seq);
  }

  void Link(Node* n) {
    Node*& head = buckets_[BucketOf(n->key)];
    if (head == nullptr) ++nonempty_buckets_;
    n->prev = nullptr;
    n->next = head;
    if (head != nullptr) head->prev = n;
    head = n;
  }

  void Unlink(Node* n) {
    if (n->prev != nullptr) {
      n->prev->next = n->next;
    } else {
      Node*& head = buckets_[BucketOf(n->key)];
      head = n->next;
      if (head == nullptr) --nonempty_buckets_;
    }
    if (n->next != nullptr) n->next->prev = n->prev;
    n->prev = n->next = nullptr;
  }

  static bool Before(const Node* a, const Node* b) {
    return a->key < b->key || (a->key == b->key && a->seq < b->seq);
  }

  /// Locate (and cache) the minimum: scan days forward from the floor,
  /// lazily with respect to empty buckets. Every node inspected on the
  /// way feeds a running best-seen candidate and a count of non-empty
  /// buckets visited; the moment that count reaches the queue's
  /// non-empty total, the candidate is the true minimum — a sparse
  /// population (keys spread far beyond one bucket round) resolves in
  /// one partial pass, where the pre-PR-3 scan walked a full empty
  /// round and then re-scanned every bucket from scratch.
  Node* FindMin() const {
    assert(size_ > 0);
    if (min_node_ != nullptr) return min_node_;
    const std::size_t nb = buckets_.size();
    Node* best_seen = nullptr;
    std::size_t nonempty_seen = 0;
    std::uint64_t d = cur_day_;
    for (std::size_t visited = 0; visited < nb; ++visited, ++d) {
      Node* head = buckets_[d % nb];
      if (head == nullptr) continue;
      ++nonempty_seen;
      Node* day_best = nullptr;
      for (Node* n = head; n != nullptr; n = n->next) {
        if (DayOf(n->key) == d &&
            (day_best == nullptr || Before(n, day_best))) {
          day_best = n;
        }
        if (best_seen == nullptr || Before(n, best_seen)) best_seen = n;
      }
      if (day_best != nullptr) {
        // Nothing lives on a day in [cur_day_, d) — those days' buckets
        // were all visited at exactly their day — so this is the min.
        cur_day_ = d;
        min_node_ = day_best;
        return day_best;
      }
      if (nonempty_seen == nonempty_buckets_) break;  // seen every node
    }
    // Sparse: every live node was inspected above; jump to the best.
    cur_day_ = DayOf(best_seen->key);
    min_node_ = best_seen;
    return best_seen;
  }

  void MaybeShrink() {
    if (buckets_.size() > kInitialBuckets && size_ < buckets_.size() / 2) {
      Resize(buckets_.size() / 2);
    }
  }

  void Resize(std::size_t new_buckets) {
    std::vector<Node*> nodes;
    nodes.reserve(size_);
    for (Node* head : buckets_) {
      for (Node* n = head; n != nullptr;) {
        Node* next = n->next;
        n->prev = n->next = nullptr;
        nodes.push_back(n);
        n = next;
      }
    }
    Key lo = 0;
    Key hi = 0;
    if (!nodes.empty()) {
      lo = hi = nodes.front()->key;
      for (const Node* n : nodes) {
        lo = n->key < lo ? n->key : lo;
        hi = n->key > hi ? n->key : hi;
      }
    }
    // ~one element per bucket-day: average spacing of the live keys,
    // floored at 1 (duplicates / empty queue).
    width_ = nodes.empty()
                 ? Key{1}
                 : static_cast<Key>((hi - lo) /
                                    static_cast<Key>(nodes.size())) +
                       Key{1};
    buckets_.assign(new_buckets, nullptr);
    nonempty_buckets_ = 0;  // Link() recounts as it re-buckets
    for (Node* n : nodes) Link(n);
    cur_day_ = nodes.empty() ? 0 : DayOf(lo);
    // min_node_ still points at a live node; the cache stays valid.
  }

  std::vector<Node*> buckets_;
  Key width_ = 1;
  std::size_t size_ = 0;
  std::size_t nonempty_buckets_ = 0;  ///< buckets with a non-null head
  std::uint64_t seq_ = 0;
  mutable std::uint64_t cur_day_ = 0;  ///< no live element has a smaller day
  mutable Node* min_node_ = nullptr;   ///< cached minimum (lazy)
  /// Node storage: slab/free-list arena (util/arena.hpp); nodes never
  /// move, so the node pointer stays a stable handle.
  util::SlabArena<Node> arena_;
  QueueOpCounters counters_;
};

}  // namespace sps::containers
